module cad

go 1.22
