package cad_test

import (
	"testing"

	"cad"
)

// countingObserver records the rounds it sees.
type countingObserver struct {
	rounds, alarms int
	lastMu         float64
}

func (o *countingObserver) ObserveRound(rep cad.RoundReport, _ cad.StageTimings, mu, _ float64) {
	o.rounds++
	if rep.Abnormal {
		o.alarms++
	}
	o.lastMu = mu
}

// TestWithObserver checks the functional-option constructor: the observer
// sees every round, and the two-argument call without options keeps
// working unchanged.
func TestWithObserver(t *testing.T) {
	his := buildSeries(1, 8, 600, -1, -1)
	test := buildSeries(2, 8, 600, 300, 400)
	cfg := cad.Config{
		Window: cad.Windowing{W: 40, S: 4}, K: 3, Tau: 0.4, Theta: 0.15,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8, RCMode: cad.RCSliding, RCHorizon: 8,
	}

	obs := &countingObserver{}
	det, err := cad.NewDetector(8, cfg, cad.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if err := det.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	if obs.rounds != det.Rounds() {
		t.Errorf("observer saw %d rounds, detector processed %d", obs.rounds, det.Rounds())
	}
	wantAlarms := 0
	for _, rep := range res.Rounds {
		if rep.Abnormal {
			wantAlarms++
		}
	}
	if obs.alarms != wantAlarms {
		t.Errorf("observer saw %d alarms, detector flagged %d", obs.alarms, wantAlarms)
	}

	// The plain two-argument form still works and detects the same rounds.
	plain, err := cad.NewDetector(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	res2, err := plain.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rounds) != len(res.Rounds) {
		t.Errorf("observer changed detection: %d vs %d rounds", len(res.Rounds), len(res2.Rounds))
	}
	for i := range res.Rounds {
		if res.Rounds[i].Abnormal != res2.Rounds[i].Abnormal {
			t.Fatalf("observer changed round %d verdict", i)
		}
	}
}
