package cad_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"cad"
)

// buildSeries creates two correlated sensor groups with sensors 0 and 1
// decoupling on [breakFrom, breakTo). Two sensors break because CAD's 3σ
// rule (with the default σ floor) needs at least two simultaneous outlier
// transitions to alarm.
func buildSeries(seed int64, n, length, breakFrom, breakTo int) *cad.Series {
	rng := rand.New(rand.NewSource(seed))
	s := cad.ZeroSeries(n, length)
	for t := 0; t < length; t++ {
		a := math.Sin(2 * math.Pi * float64(t) / 24)
		b := math.Cos(2 * math.Pi * float64(t) / 17)
		for i := 0; i < n; i++ {
			latent := a
			if i >= n/2 {
				latent = b
			}
			v := latent*(1+0.1*float64(i)) + 0.05*rng.NormFloat64()
			if i <= 1 && t >= breakFrom && t < breakTo {
				v = rng.NormFloat64()
			}
			s.Set(i, t, v)
		}
	}
	return s
}

func TestPublicAPIDetect(t *testing.T) {
	his := buildSeries(1, 8, 600, -1, -1)
	test := buildSeries(2, 8, 600, 300, 400)
	cfg := cad.Config{
		Window: cad.Windowing{W: 40, S: 4}, K: 3, Tau: 0.4, Theta: 0.15,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8, RCMode: cad.RCSliding, RCHorizon: 8,
	}
	det, err := cad.NewDetector(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) == 0 {
		t.Fatal("no anomalies through the public API")
	}
	found := false
	for _, a := range res.Anomalies {
		if a.Start < 400 && a.End > 300 {
			for _, sensor := range a.Sensors {
				if sensor == 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("expected sensor 0 blamed in [300,400); got %+v", res.Anomalies)
	}
}

func TestPublicAPIStreaming(t *testing.T) {
	his := buildSeries(3, 6, 400, -1, -1)
	cfg := cad.DefaultConfig(6, 400)
	cfg.Window = cad.Windowing{W: 30, S: 3}
	cfg.K = 2
	cfg.Theta = 0.15
	det, err := cad.NewDetector(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	st := cad.NewStreamer(det)
	live := buildSeries(4, 6, 300, 150, 220)
	col := make([]float64, 6)
	rounds := 0
	for p := 0; p < live.Len(); p++ {
		live.Column(p, col)
		if _, ok, err := st.Push(col); err != nil {
			t.Fatal(err)
		} else if ok {
			rounds++
		}
	}
	if rounds == 0 {
		t.Error("streamer emitted no rounds")
	}
}

func TestPublicAPIEval(t *testing.T) {
	truth := make([]bool, 20)
	for i := 5; i < 10; i++ {
		truth[i] = true
	}
	pred := make([]bool, 20)
	pred[7] = true
	pa, err := cad.EvalF1(pred, truth, cad.EvalPA)
	if err != nil {
		t.Fatal(err)
	}
	dpa, err := cad.EvalF1(pred, truth, cad.EvalDPA)
	if err != nil {
		t.Fatal(err)
	}
	if dpa > pa {
		t.Errorf("DPA %v must not exceed PA %v", dpa, pa)
	}
	rel, err := cad.EvalAheadMiss(pred, make([]bool, 20), truth)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Ahead != 1 {
		t.Errorf("Ahead = %v, want 1 (other method missed)", rel.Ahead)
	}
	delays, err := cad.EvalDetectionDelay(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 1 || delays[0] != 2 {
		t.Errorf("delays = %v", delays)
	}
}

func TestPublicAPICSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "series.csv")
	s := buildSeries(5, 4, 50, -1, -1)
	if err := s.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := cad.LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sensors() != 4 || got.Len() != 50 {
		t.Errorf("loaded shape (%d,%d)", got.Sensors(), got.Len())
	}
}

func TestPublicAPIHelpers(t *testing.T) {
	wd := cad.SuggestWindowing(10000)
	if wd.W <= 0 || wd.S <= 0 || wd.S >= wd.W {
		t.Errorf("SuggestWindowing = %+v", wd)
	}
	cfg := cad.DefaultConfig(26, 10000)
	if err := cfg.Validate(26); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if _, err := cad.NewSeries(nil, nil); err == nil {
		t.Error("NewSeries(nil) should error")
	}
	if _, err := cad.NewDetector(5, cad.Config{}); err == nil {
		t.Error("zero config should error")
	}
}
