// Assembly line: predictive maintenance on a simulated production line with
// four stations (motor, conveyor, press, oven), each instrumented with
// several sensors. A bearing in the press station begins to degrade: its
// sensors drift out of correlation with their station long before their
// readings leave the nominal range. CAD localizes the affected sensors so
// the maintenance crew knows which station to service — the paper's
// headline use case (§I, §VI-C).
//
//	go run ./examples/assemblyline
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cad"
)

// Station layout: name and how many sensors it carries.
var stations = []struct {
	name    string
	sensors int
}{
	{"motor", 6},
	{"conveyor", 5},
	{"press", 6},
	{"oven", 5},
}

const (
	historyLen  = 1500
	liveLen     = 1500
	degradeFrom = 700 // bearing degradation starts here (live time)
)

// degrading are the press-station sensors touched by the failing bearing.
var degrading = []int{11, 12, 13} // first three press sensors

func sensorCount() int {
	n := 0
	for _, st := range stations {
		n += st.sensors
	}
	return n
}

func stationOf(sensor int) string {
	for _, st := range stations {
		if sensor < st.sensors {
			return st.name
		}
		sensor -= st.sensors
	}
	return "?"
}

// simulate produces the line's readings. Each station has its own duty
// cycle; sensors observe it with different gains. During degradation the
// affected press sensors progressively mix in an independent vibration
// signature — amplitude stays nominal, correlation collapses.
func simulate(seed int64, length int, degrade bool) *cad.Series {
	rng := rand.New(rand.NewSource(seed))
	n := sensorCount()
	s := cad.ZeroSeries(n, length)
	periods := []float64{23, 37, 29, 53}
	for t := 0; t < length; t++ {
		i := 0
		for si, st := range stations {
			duty := math.Sin(2*math.Pi*float64(t)/periods[si]) +
				0.3*math.Sin(2*math.Pi*float64(t)/(periods[si]*4.7))
			for j := 0; j < st.sensors; j++ {
				v := duty*(0.8+0.2*float64(j)) + 0.05*rng.NormFloat64()
				if degrade && t >= degradeFrom && isDegrading(i) {
					// Fault severity ramps from 0 to 1 over 600 points.
					sev := math.Min(1, float64(t-degradeFrom)/600)
					vib := math.Sin(2*math.Pi*float64(t)/7.3) + 0.6*rng.NormFloat64()
					v = (1-sev)*v + sev*vib
				}
				s.Set(i, t, v)
				i++
			}
		}
	}
	return s
}

func isDegrading(sensor int) bool {
	for _, d := range degrading {
		if d == sensor {
			return true
		}
	}
	return false
}

func main() {
	n := sensorCount()
	history := simulate(41, historyLen, false)
	live := simulate(42, liveLen, true)

	cfg := cad.Config{
		Window: cad.Windowing{W: 80, S: 8}, K: 4, Tau: 0.4,
		Theta: 0.15, Eta: 3, SigmaFloor: 0.5, MinHistory: 10,
		RCMode: cad.RCSliding, RCHorizon: 5,
	}
	det, err := cad.NewDetector(n, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := det.WarmUp(history); err != nil {
		log.Fatal(err)
	}
	res, err := det.Detect(live)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("line with %d sensors across %d stations; bearing degradation on press sensors %v from t=%d\n",
		n, len(stations), degrading, degradeFrom)
	if len(res.Anomalies) == 0 {
		fmt.Println("no anomalies detected — increase sensitivity (lower Theta) or check the data")
		return
	}
	blame := map[string]int{}
	for i, a := range res.Anomalies {
		fmt.Printf("anomaly %d: t ∈ [%d, %d), %.1fσ — ", i+1, a.Start, a.End, a.Score)
		for j, sensor := range a.Sensors {
			if j > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("s%d(%s)", sensor, stationOf(sensor))
			blame[stationOf(sensor)]++
		}
		fmt.Println()
	}
	// Maintenance verdict: the most-blamed station, and within the first
	// anomaly, the sensors ranked by how early they decorrelated — the
	// best root-cause candidates.
	best, bestN := "", 0
	for st, c := range blame {
		if c > bestN {
			best, bestN = st, c
		}
	}
	fmt.Printf("\nmaintenance verdict: inspect the %s station first (%d sensor implications)\n", best, bestN)
	ranked := res.Anomalies[0].RootCauses()
	fmt.Printf("root-cause ranking of the first alarm: %v (earliest decorrelation first)\n", ranked)
	first := res.Anomalies[0].Start
	fmt.Printf("first alarm at t=%d — %d points after degradation onset, while severity was still %.0f%%\n",
		first, first-degradeFrom, 100*math.Min(1, float64(first-degradeFrom)/600))
}
