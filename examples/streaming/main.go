// Streaming: feed a warm-started CAD detector one sensor reading at a time,
// as a plant-floor data collector would, and alarm the moment a round turns
// abnormal. Demonstrates §IV-F of the paper: CAD sustains real-time
// detection as long as its time-per-round stays below the step period.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"cad"
)

const (
	sensors  = 10
	warmTill = 800  // ticks of fault-free history used for warm-up
	fault    = 1300 // the latent fault begins at this absolute tick
	liveTill = 1800 // last tick of the live stream
)

// plant simulates a machine with two sensor banks; after the fault tick,
// sensors 3 and 4 gradually decouple from their bank.
type plant struct {
	rng  *rand.Rand
	tick int
}

func (p *plant) read() []float64 {
	col := make([]float64, sensors)
	a := math.Sin(2 * math.Pi * float64(p.tick) / 27)
	b := math.Cos(2 * math.Pi * float64(p.tick) / 40)
	for i := range col {
		latent := a
		if i >= sensors/2 {
			latent = b
		}
		col[i] = latent*(1+0.2*float64(i%5)) + 0.04*p.rng.NormFloat64()
	}
	if p.tick >= fault {
		col[3] = 0.9 * p.rng.NormFloat64()
		col[4] = 0.9 * p.rng.NormFloat64()
	}
	p.tick++
	return col
}

func main() {
	cfg := cad.Config{
		Window: cad.Windowing{W: 60, S: 6}, K: 3, Tau: 0.4,
		Theta: 0.25, Eta: 3, SigmaFloor: 0.5, MinHistory: 10,
		RCMode: cad.RCSliding, RCHorizon: 5,
	}
	det, err := cad.NewDetector(sensors, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Warm up from the plant's fault-free history, then keep streaming the
	// same plant so live data continues seamlessly where history ended.
	machine := &plant{rng: rand.New(rand.NewSource(7))}
	history := cad.ZeroSeries(sensors, warmTill)
	for t := 0; t < history.Len(); t++ {
		for i, v := range machine.read() {
			history.Set(i, t, v)
		}
	}
	if err := det.WarmUp(history); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm-up: %d rounds, μ=%.2f σ=%.2f\n", det.Rounds(), det.HistoryMean(), det.HistoryStdDev())

	// Go live. Each Push is one sampling instant.
	stream := cad.NewStreamer(det)
	var perRound time.Duration
	rounds, alarms, firstAlarm := 0, 0, -1
	for tick := warmTill; tick < liveTill; tick++ {
		start := time.Now()
		rep, done, err := stream.Push(machine.read())
		if err != nil {
			log.Fatal(err)
		}
		if !done {
			continue
		}
		perRound += time.Since(start)
		rounds++
		if rep.Abnormal {
			alarms++
			if firstAlarm < 0 {
				firstAlarm = tick
			}
			fmt.Printf("tick %4d: ALARM — %d outlier transitions (%.1fσ), outliers %v\n",
				tick, rep.Variations, rep.Score, rep.Outliers)
		}
	}
	fmt.Printf("\nfault started at tick %d; first alarm at tick %d (delay %d points)\n", fault, firstAlarm, firstAlarm-fault)
	tpr := perRound / time.Duration(rounds)
	fmt.Printf("%d rounds, %d alarms, time per round %v\n", rounds, alarms, tpr)
	maxHz := float64(cfg.Window.S) / tpr.Seconds()
	fmt.Printf("real-time budget: sustains sampling up to %.0f Hz with step s=%d\n", maxHz, cfg.Window.S)
}
