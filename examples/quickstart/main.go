// Quickstart: generate a small correlated sensor series with one planted
// fault, run CAD over it, and print the detected anomalies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cad"
)

// makeSeries simulates 12 sensors in three correlated groups. Between
// points 600 and 720, sensors 0 and 1 decouple from their group — the
// signature of a developing mechanical fault: readings still look plausible
// individually, but the correlation structure is broken.
func makeSeries(seed int64, length int, withFault bool) *cad.Series {
	rng := rand.New(rand.NewSource(seed))
	s := cad.ZeroSeries(12, length)
	for t := 0; t < length; t++ {
		latents := []float64{
			math.Sin(2 * math.Pi * float64(t) / 31),
			math.Sin(2*math.Pi*float64(t)/22 + 1.0),
			math.Cos(2 * math.Pi * float64(t) / 45),
		}
		for i := 0; i < 12; i++ {
			v := latents[i/4]*(1+0.15*float64(i%4)) + 0.05*rng.NormFloat64()
			if withFault && i <= 1 && t >= 600 && t < 720 {
				v = rng.NormFloat64() // decoupled from the group latent
			}
			s.Set(i, t, v)
		}
	}
	return s
}

func main() {
	history := makeSeries(1, 1000, false) // fault-free history for warm-up
	live := makeSeries(2, 1000, true)     // live data with the fault

	cfg := cad.DefaultConfig(live.Sensors(), live.Len())
	cfg.Window = cad.Windowing{W: 50, S: 5}
	cfg.K = 3
	cfg.Theta = 0.2   // just below the normal RC plateau ≈ 3/11 for groups of 4
	cfg.RCHorizon = 5 // short horizon → outlier transitions stay synchronized

	det, err := cad.NewDetector(live.Sensors(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := det.WarmUp(history); err != nil {
		log.Fatal(err)
	}
	result, err := det.Detect(live)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d rounds (w=%d, s=%d)\n", len(result.Rounds), cfg.Window.W, cfg.Window.S)
	if len(result.Anomalies) == 0 {
		fmt.Println("no anomalies detected")
		return
	}
	fmt.Println("fault injected on sensors 0,1 during [600, 720)")
	for i, a := range result.Anomalies {
		fmt.Printf("anomaly %d: time [%d, %d), peak score %.1fσ, sensors %v\n",
			i+1, a.Start, a.End, a.Score, a.Sensors)
	}
}
