// Compare: evaluate CAD against a classic magnitude-based detector with the
// paper's Delay-aware Evaluation scheme (§V) — F1 under PA and DPA plus the
// relative Ahead/Miss measures. The scenario plants correlation-break
// faults whose readings stay inside the nominal amplitude range, the case
// the paper argues magnitude rules are blind to until late.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cad"
)

const (
	sensors = 12
	length  = 2000
)

// faults lists the planted anomalies: [start, end) and affected sensors.
var faults = []struct {
	from, to int
	sensors  []int
}{
	{500, 620, []int{0, 1}},
	{1100, 1250, []int{4, 5, 6}},
	{1600, 1700, []int{8, 9}},
}

func makeSeries(seed int64, withFaults bool) (*cad.Series, []bool) {
	rng := rand.New(rand.NewSource(seed))
	s := cad.ZeroSeries(sensors, length)
	truth := make([]bool, length)
	inFault := func(i, t int) bool {
		if !withFaults {
			return false
		}
		for _, f := range faults {
			if t >= f.from && t < f.to {
				for _, fs := range f.sensors {
					if fs == i {
						return true
					}
				}
			}
		}
		return false
	}
	for t := 0; t < length; t++ {
		latents := []float64{
			math.Sin(2 * math.Pi * float64(t) / 30),
			math.Sin(2*math.Pi*float64(t)/21 + 2),
			math.Cos(2 * math.Pi * float64(t) / 47),
		}
		for i := 0; i < sensors; i++ {
			v := latents[i/4]*(1+0.15*float64(i%4)) + 0.05*rng.NormFloat64()
			if inFault(i, t) {
				// Same marginal scale, broken correlation.
				v = math.Sin(2*math.Pi*float64(t)/11.7) + 0.4*rng.NormFloat64()
			}
			s.Set(i, t, v)
		}
	}
	if withFaults {
		for _, f := range faults {
			for t := f.from; t < f.to; t++ {
				truth[t] = true
			}
		}
	}
	return s, truth
}

// magnitudeDetector is the classic rule CAD is contrasted with: flag a time
// point when any sensor's |z-score| (against training statistics) exceeds
// the threshold.
type magnitudeDetector struct {
	mean, std []float64
	threshold float64
}

func newMagnitudeDetector(train *cad.Series, threshold float64) *magnitudeDetector {
	d := &magnitudeDetector{
		mean:      make([]float64, train.Sensors()),
		std:       make([]float64, train.Sensors()),
		threshold: threshold,
	}
	for i := 0; i < train.Sensors(); i++ {
		row := train.Row(i)
		var sum float64
		for _, v := range row {
			sum += v
		}
		d.mean[i] = sum / float64(len(row))
		var ss float64
		for _, v := range row {
			diff := v - d.mean[i]
			ss += diff * diff
		}
		d.std[i] = math.Sqrt(ss/float64(len(row))) + 1e-12
	}
	return d
}

func (d *magnitudeDetector) predict(test *cad.Series) []bool {
	out := make([]bool, test.Len())
	for t := 0; t < test.Len(); t++ {
		for i := 0; i < test.Sensors(); i++ {
			if math.Abs((test.At(i, t)-d.mean[i])/d.std[i]) > d.threshold {
				out[t] = true
				break
			}
		}
	}
	return out
}

func main() {
	history, _ := makeSeries(1, false)
	live, truth := makeSeries(2, true)

	// CAD.
	cfg := cad.Config{
		Window: cad.Windowing{W: 60, S: 6}, K: 3, Tau: 0.4,
		Theta: 0.2, Eta: 3, SigmaFloor: 0.5, MinHistory: 10,
		RCMode: cad.RCSliding, RCHorizon: 5,
	}
	det, err := cad.NewDetector(sensors, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := det.WarmUp(history); err != nil {
		log.Fatal(err)
	}
	res, err := det.Detect(live)
	if err != nil {
		log.Fatal(err)
	}
	cadPred := res.PointLabels

	// Magnitude rule at 3σ.
	mag := newMagnitudeDetector(history, 3)
	magPred := mag.predict(live)

	report := func(name string, pred []bool) {
		raw, _ := cad.EvalF1(pred, truth, cad.EvalNone)
		pa, _ := cad.EvalF1(pred, truth, cad.EvalPA)
		dpa, _ := cad.EvalF1(pred, truth, cad.EvalDPA)
		delays, _ := cad.EvalDetectionDelay(pred, truth)
		fmt.Printf("%-10s F1=%5.1f%%  F1_PA=%5.1f%%  F1_DPA=%5.1f%%  delays=%v\n",
			name, 100*raw, 100*pa, 100*dpa, delays)
	}
	fmt.Printf("%d planted correlation-break faults in %d points\n\n", len(faults), length)
	report("CAD", cadPred)
	report("magnitude", magPred)

	rel, err := cad.EvalAheadMiss(cadPred, magPred, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDaE relative comparison (CAD vs magnitude): Ahead=%.0f%% Miss=%.0f%% (detected %d/%d)\n",
		100*rel.Ahead, 100*rel.Miss, rel.Detected, rel.Total)
}
