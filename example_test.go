package cad_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"cad"
)

// twoBankSeries builds 8 sensors in two correlated banks; sensors 0 and 1
// decouple during [300, 400) when broken is true.
func twoBankSeries(seed int64, broken bool) *cad.Series {
	rng := rand.New(rand.NewSource(seed))
	s := cad.ZeroSeries(8, 600)
	for t := 0; t < 600; t++ {
		a := math.Sin(2 * math.Pi * float64(t) / 24)
		b := math.Cos(2 * math.Pi * float64(t) / 17)
		for i := 0; i < 8; i++ {
			latent := a
			if i >= 4 {
				latent = b
			}
			v := latent*(1+0.1*float64(i)) + 0.05*rng.NormFloat64()
			if broken && i <= 1 && t >= 300 && t < 400 {
				v = rng.NormFloat64()
			}
			s.Set(i, t, v)
		}
	}
	return s
}

func ExampleDetector() {
	history := twoBankSeries(1, false)
	live := twoBankSeries(2, true)

	cfg := cad.Config{
		Window: cad.Windowing{W: 40, S: 4}, K: 3, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8,
		RCMode: cad.RCSliding, RCHorizon: 5,
	}
	det, err := cad.NewDetector(8, cfg)
	if err != nil {
		panic(err)
	}
	if err := det.WarmUp(history); err != nil {
		panic(err)
	}
	res, err := det.Detect(live)
	if err != nil {
		panic(err)
	}
	a := res.Anomalies[0]
	blamed := map[int]bool{}
	for _, s := range a.Sensors {
		blamed[s] = true
	}
	// The faulty sensors are blamed; their community peers may appear too,
	// since losing two members also perturbs the peers' co-appearance.
	fmt.Printf("faulty sensors blamed: %v\n", blamed[0] && blamed[1])
	fmt.Printf("alarm inside the fault window: %v\n", a.Start >= 300 && a.Start < 400)
	// Output:
	// faulty sensors blamed: true
	// alarm inside the fault window: true
}

func ExampleStreamer() {
	history := twoBankSeries(3, false)
	cfg := cad.Config{
		Window: cad.Windowing{W: 40, S: 4}, K: 3, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8,
		RCMode: cad.RCSliding, RCHorizon: 5,
	}
	det, _ := cad.NewDetector(8, cfg)
	if err := det.WarmUp(history); err != nil {
		panic(err)
	}
	st := cad.NewStreamer(det)

	live := twoBankSeries(4, true)
	col := make([]float64, 8)
	firstAlarm := -1
	for t := 0; t < live.Len(); t++ {
		live.Column(t, col)
		rep, done, err := st.Push(col)
		if err != nil {
			panic(err)
		}
		if done && rep.Abnormal && firstAlarm < 0 {
			firstAlarm = t
		}
	}
	fmt.Printf("fault begins at t=300; first streaming alarm soon after: %v\n",
		firstAlarm >= 300 && firstAlarm < 420)
	// Output:
	// fault begins at t=300; first streaming alarm soon after: true
}

func ExampleEvalAheadMiss() {
	truth := make([]bool, 12)
	for i := 2; i < 5; i++ {
		truth[i] = true // anomaly 1
	}
	for i := 7; i < 11; i++ {
		truth[i] = true // anomaly 2
	}
	m1 := make([]bool, 12)
	m1[2], m1[10] = true, true // early on anomaly 1, late on anomaly 2
	m2 := make([]bool, 12)
	m2[3], m2[8] = true, true // late on anomaly 1, early on anomaly 2

	rel, _ := cad.EvalAheadMiss(m1, m2, truth)
	fmt.Printf("Ahead=%.0f%% Miss=%.0f%%\n", 100*rel.Ahead, 100*rel.Miss)

	pa, _ := cad.EvalF1(m1, truth, cad.EvalPA)
	dpa, _ := cad.EvalF1(m1, truth, cad.EvalDPA)
	fmt.Printf("F1_PA=%.1f%% F1_DPA=%.1f%%\n", 100*pa, 100*dpa)
	// Output:
	// Ahead=50% Miss=0%
	// F1_PA=100.0% F1_DPA=72.7%
}

func ExampleWriteHTMLReport() {
	history := twoBankSeries(5, false)
	live := twoBankSeries(6, true)
	cfg := cad.Config{
		Window: cad.Windowing{W: 40, S: 4}, K: 3, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8,
		RCMode: cad.RCSliding, RCHorizon: 5,
	}
	det, _ := cad.NewDetector(8, cfg)
	if err := det.WarmUp(history); err != nil {
		panic(err)
	}
	res, err := det.Detect(live)
	if err != nil {
		panic(err)
	}
	var report strings.Builder
	if err := cad.WriteHTMLReport(&report, "press line", live, res, nil, cfg); err != nil {
		panic(err)
	}
	fmt.Println("report has a score chart:", strings.Contains(report.String(), "<svg"))
	fmt.Println("report names the job:", strings.Contains(report.String(), "press line"))
	// Output:
	// report has a score chart: true
	// report names the job: true
}

func ExampleLoadDetector() {
	history := twoBankSeries(7, false)
	cfg := cad.Config{
		Window: cad.Windowing{W: 40, S: 4}, K: 3, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8,
		RCMode: cad.RCSliding, RCHorizon: 5,
	}
	det, _ := cad.NewDetector(8, cfg)
	if err := det.WarmUp(history); err != nil {
		panic(err)
	}
	// Snapshot the warmed detector, e.g. to disk before a restart…
	var snapshot bytes.Buffer
	if err := det.SaveState(&snapshot); err != nil {
		panic(err)
	}
	// …and resume in a new process without re-running the warm-up.
	restored, err := cad.LoadDetector(&snapshot)
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds preserved:", restored.Rounds() == det.Rounds())
	// Output:
	// rounds preserved: true
}
