// Command caddetect runs the CAD detector over a sensors-as-columns CSV
// file and prints the detected anomalies: time span, abnormal sensors, and
// peak deviation score.
//
// Usage:
//
//	caddetect -input readings.csv [-warmup history.csv]
//	          [-config detector.json | -w 200 -s 4 -k 10 -tau 0.5 -theta 0.3]
//
// Without -w/-s the paper-recommended windowing for the input length is
// used. -config loads the full detector configuration from a JSON file in
// the wire format shared with cadserve and POST /v1/streams, replacing the
// individual tuning flags. Exit status 0 regardless of whether anomalies
// were found; errors exit 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cad"
	"cad/internal/viz"
)

func main() {
	var (
		input   = flag.String("input", "", "CSV file to analyze (required)")
		warmup  = flag.String("warmup", "", "optional anomaly-free CSV for the warm-up process")
		cfgFile = flag.String("config", "", "detector config JSON file (replaces -w/-s/-k/-tau/-theta)")
		w       = flag.Int("w", 0, "sliding window length (0 = auto)")
		s       = flag.Int("s", 0, "window step (0 = auto)")
		k       = flag.Int("k", 0, "correlation neighbors per sensor (0 = auto)")
		tau     = flag.Float64("tau", 0.5, "correlation threshold τ")
		theta   = flag.Float64("theta", 0.3, "outlier threshold θ")
		names   = flag.Bool("names", false, "print sensor names instead of indices")
		report  = flag.String("report", "", "also write a self-contained HTML report to this path")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "caddetect: -input is required")
		flag.Usage()
		os.Exit(1)
	}
	if err := detect(*input, *warmup, *cfgFile, *w, *s, *k, *tau, *theta, *names, *report); err != nil {
		fmt.Fprintf(os.Stderr, "caddetect: %v\n", err)
		os.Exit(1)
	}
}

func detect(input, warmup, cfgFile string, w, s, k int, tau, theta float64, useNames bool, reportPath string) error {
	series, err := cad.LoadCSV(input)
	if err != nil {
		return fmt.Errorf("load %s: %w", input, err)
	}
	var cfg cad.Config
	if cfgFile != "" {
		buf, err := os.ReadFile(cfgFile)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(buf, &cfg); err != nil {
			return fmt.Errorf("%s: %w", cfgFile, err)
		}
	} else {
		cfg = cad.DefaultConfig(series.Sensors(), series.Len())
		cfg.Tau = tau
		cfg.Theta = theta
		if w > 0 && s > 0 {
			cfg.Window = cad.Windowing{W: w, S: s}
		}
		if k > 0 {
			cfg.K = k
		}
	}
	det, err := cad.NewDetector(series.Sensors(), cfg)
	if err != nil {
		return err
	}
	if warmup != "" {
		his, err := cad.LoadCSV(warmup)
		if err != nil {
			return fmt.Errorf("load %s: %w", warmup, err)
		}
		if err := det.WarmUp(his); err != nil {
			return fmt.Errorf("warm-up: %w", err)
		}
	}
	res, err := det.Detect(series)
	if err != nil {
		return err
	}
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		if err := viz.HTMLReport(f, fmt.Sprintf("CAD report — %s", input), series, res, nil, cfg); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote report to %s\n", reportPath)
	}
	fmt.Printf("%s: %d sensors, %d points, %d rounds (w=%d s=%d k=%d τ=%.2f θ=%.2f)\n",
		input, series.Sensors(), series.Len(), len(res.Rounds),
		cfg.Window.W, cfg.Window.S, cfg.K, cfg.Tau, cfg.Theta)
	if len(res.Anomalies) == 0 {
		fmt.Println("no anomalies detected")
		return nil
	}
	for i, a := range res.Anomalies {
		fmt.Printf("anomaly %d: time [%d, %d) rounds [%d, %d] score %.2f sensors ",
			i+1, a.Start, a.End, a.FirstRound, a.LastRound, a.Score)
		for j, sensor := range a.Sensors {
			if j > 0 {
				fmt.Print(",")
			}
			if useNames {
				fmt.Print(series.Names()[sensor])
			} else {
				fmt.Print(sensor)
			}
		}
		fmt.Println()
	}
	return nil
}
