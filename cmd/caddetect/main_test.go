package main

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cad"
)

func writeSeries(t *testing.T, path string, seed int64, broken bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := cad.ZeroSeries(8, 600)
	for tick := 0; tick < 600; tick++ {
		a := math.Sin(2 * math.Pi * float64(tick) / 25)
		b := math.Cos(2 * math.Pi * float64(tick) / 40)
		for i := 0; i < 8; i++ {
			latent := a
			if i >= 4 {
				latent = b
			}
			v := latent*(1+0.1*float64(i)) + 0.05*rng.NormFloat64()
			if broken && i <= 1 && tick >= 300 && tick < 420 {
				v = rng.NormFloat64()
			}
			s.Set(i, tick, v)
		}
	}
	if err := s.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
}

func TestDetectEndToEnd(t *testing.T) {
	dir := t.TempDir()
	warm := filepath.Join(dir, "warm.csv")
	live := filepath.Join(dir, "live.csv")
	writeSeries(t, warm, 1, false)
	writeSeries(t, live, 2, true)

	if err := detect(live, warm, "", 40, 4, 3, 0.4, 0.2, false, filepath.Join(dir, "report.html")); err != nil {
		t.Fatalf("detect: %v", err)
	}
	// With names, without warm-up, auto windowing.
	if err := detect(live, "", "", 0, 0, 0, 0.5, 0.3, true, ""); err != nil {
		t.Fatalf("detect without warm-up: %v", err)
	}
}

func TestDetectErrors(t *testing.T) {
	dir := t.TempDir()
	if err := detect(filepath.Join(dir, "missing.csv"), "", "", 0, 0, 0, 0.5, 0.3, false, ""); err == nil {
		t.Error("missing input should error")
	}
	live := filepath.Join(dir, "live.csv")
	writeSeries(t, live, 3, false)
	if err := detect(live, filepath.Join(dir, "missing.csv"), "", 0, 0, 0, 0.5, 0.3, false, ""); err == nil {
		t.Error("missing warm-up should error")
	}
	// Invalid explicit windowing.
	if err := detect(live, "", "", 4, 4, 0, 0.5, 0.3, false, ""); err == nil {
		t.Error("s == w should error")
	}
}

func TestReportWritten(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.csv")
	writeSeries(t, live, 4, true)
	out := filepath.Join(dir, "out.html")
	if err := detect(live, "", "", 40, 4, 3, 0.4, 0.2, false, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("report missing SVG chart")
	}
	// Unwritable report path errors.
	if err := detect(live, "", "", 40, 4, 3, 0.4, 0.2, false, "/nonexistent/x.html"); err == nil {
		t.Error("bad report path should error")
	}
}

func TestDetectWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.csv")
	writeSeries(t, live, 2, true)
	path := filepath.Join(dir, "detector.json")
	doc := `{"window":{"w":40,"s":4},"k":3,"tau":0.4,"theta":0.2,"eta":3,
	         "sigmaFloor":0.5,"minHistory":8,"rcMode":"sliding","rcHorizon":8}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := detect(live, "", path, 0, 0, 0, 0.5, 0.3, false, ""); err != nil {
		t.Fatalf("detect with config file: %v", err)
	}
	// Unknown fields in the file fail loudly.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"taw":0.4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := detect(live, "", bad, 0, 0, 0, 0.5, 0.3, false, ""); err == nil {
		t.Error("typoed config field should error")
	}
	if err := detect(live, "", filepath.Join(dir, "missing.json"), 0, 0, 0, 0.5, 0.3, false, ""); err == nil {
		t.Error("missing config file should error")
	}
}
