// Command benchrecord measures the streaming ingest hot path — batch
// recompute vs the incremental pipeline — and records the result as a JSON
// baseline checked into the repository (BENCH_ingest.json).
//
// Unlike `go test -bench`, the output is a stable machine-readable file, so
// successive baselines can be diffed in review and CI can smoke-run the same
// loop. For every sensor count it streams an identical simulated series
// through two detectors that differ only in Config.Incremental and reports
// rounds/sec, ns/round, and allocs/round. Two manager-level rows ride along
// per size — the incremental config behind manager.Ingest, without and with
// a write-ahead log — so the cost of the service layers (locking, alarm
// rings, durability) above the raw detector is part of the same committed
// trajectory.
//
// Usage:
//
//	benchrecord -out BENCH_ingest.json
//	benchrecord -sizes 100,500 -rounds 40 -out /dev/stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cad/internal/core"
	"cad/internal/manager"
	"cad/internal/mts"
	"cad/internal/simulator"
)

// Case is one (sensor count, mode) measurement.
type Case struct {
	Sensors        int     `json:"sensors"`
	Mode           string  `json:"mode"` // "batch", "incremental", "manager", "manager-wal"
	Rounds         int     `json:"rounds"`
	RoundsPerSec   float64 `json:"roundsPerSec"`
	NsPerRound     int64   `json:"nsPerRound"`
	AllocsPerRound int64   `json:"allocsPerRound"`
	// SpeedupVsBatch is the incremental row's rounds/sec over the batch
	// row's at the same sensor count; zero on batch rows.
	SpeedupVsBatch float64 `json:"speedupVsBatch,omitempty"`
}

// Baseline is the file format of BENCH_ingest.json.
type Baseline struct {
	Generated    string `json:"generated"`
	GoVersion    string `json:"goVersion"`
	GOARCH       string `json:"goarch"`
	Window       int    `json:"window"`
	Stride       int    `json:"stride"`
	K            int    `json:"k"`
	RefreshEvery int    `json:"refreshEvery"`
	Cases        []Case `json:"cases"`
}

func main() {
	var (
		out    = flag.String("out", "BENCH_ingest.json", "output path")
		sizes  = flag.String("sizes", "100,500,1000", "comma-separated sensor counts")
		rounds = flag.Int("rounds", 20, "measured detection rounds per case")
	)
	flag.Parse()

	cfg := benchConfig(false)
	base := Baseline{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOARCH:       runtime.GOARCH,
		Window:       cfg.Window.W,
		Stride:       cfg.Window.S,
		K:            cfg.K,
		RefreshEvery: 64,
	}

	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatalf("bad -sizes entry %q: %v", s, err)
		}
		series, err := dataset(n, cfg, *rounds)
		if err != nil {
			fatalf("dataset n=%d: %v", n, err)
		}
		batch, err := measure(series, benchConfig(false), *rounds)
		if err != nil {
			fatalf("batch n=%d: %v", n, err)
		}
		batch.Sensors, batch.Mode = n, "batch"
		inc, err := measure(series, benchConfig(true), *rounds)
		if err != nil {
			fatalf("incremental n=%d: %v", n, err)
		}
		inc.Sensors, inc.Mode = n, "incremental"
		inc.SpeedupVsBatch = round2(inc.RoundsPerSec / batch.RoundsPerSec)
		mgr, err := measureManager(series, benchConfig(true), *rounds, "")
		if err != nil {
			fatalf("manager n=%d: %v", n, err)
		}
		mgr.Sensors, mgr.Mode = n, "manager"
		mgr.SpeedupVsBatch = round2(mgr.RoundsPerSec / batch.RoundsPerSec)
		walDir, err := os.MkdirTemp("", "benchrecord-wal-")
		if err != nil {
			fatalf("wal dir: %v", err)
		}
		mgrWAL, err := measureManager(series, benchConfig(true), *rounds, walDir)
		os.RemoveAll(walDir)
		if err != nil {
			fatalf("manager-wal n=%d: %v", n, err)
		}
		mgrWAL.Sensors, mgrWAL.Mode = n, "manager-wal"
		mgrWAL.SpeedupVsBatch = round2(mgrWAL.RoundsPerSec / batch.RoundsPerSec)
		base.Cases = append(base.Cases, batch, inc, mgr, mgrWAL)
		fmt.Fprintf(os.Stderr, "n=%d: batch %.1f rounds/s, incremental %.1f rounds/s (%.1fx), manager %.1f, manager-wal %.1f\n",
			n, batch.RoundsPerSec, inc.RoundsPerSec, inc.SpeedupVsBatch, mgr.RoundsPerSec, mgrWAL.RoundsPerSec)
	}

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
}

// benchConfig is the fixed detector configuration both modes run under;
// only the Incremental flag differs between the two measurements.
func benchConfig(incremental bool) core.Config {
	return core.Config{
		Window: mts.Windowing{W: 64, S: 4}, K: 10, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8,
		RCMode: core.RCSliding, RCHorizon: 8,
		Incremental: incremental, RefreshEvery: 64,
	}
}

// dataset generates a deterministic clean series long enough for warm-up
// plus the measured rounds.
func dataset(n int, cfg core.Config, rounds int) (*mts.MTS, error) {
	length := cfg.Window.W + (warmupRounds+rounds+1)*cfg.Window.S
	gen, err := simulator.New(simulator.Config{
		Seed: 7, Sensors: n, Communities: intMax(2, n/25), Length: length,
	})
	if err != nil {
		return nil, err
	}
	return gen.Clean(), nil
}

const warmupRounds = 3

// measure streams the series through a fresh detector and times the pushes
// that complete `rounds` detection rounds, after warm-up rounds that pay
// one-time costs (first window fill, lazy allocations) outside the clock.
func measure(series *mts.MTS, cfg core.Config, rounds int) (Case, error) {
	det, err := core.NewDetector(series.Sensors(), cfg)
	if err != nil {
		return Case{}, err
	}
	sr := core.NewStreamer(det)
	col := make([]float64, series.Sensors())
	tick := 0
	push := func() (bool, error) {
		series.Column(tick, col)
		tick++
		_, done, err := sr.Push(col)
		return done, err
	}
	for done := 0; done < warmupRounds; {
		ok, err := push()
		if err != nil {
			return Case{}, err
		}
		if ok {
			done++
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	start := time.Now()
	for done := 0; done < rounds; {
		ok, err := push()
		if err != nil {
			return Case{}, err
		}
		if ok {
			done++
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)

	return Case{
		Rounds:         rounds,
		RoundsPerSec:   round2(float64(rounds) / elapsed.Seconds()),
		NsPerRound:     elapsed.Nanoseconds() / int64(rounds),
		AllocsPerRound: int64(ms.Mallocs-startMallocs) / int64(rounds),
	}, nil
}

// measureManager mirrors measure through the manager's ingest path: the
// same series, the same detector config, but every column passes the
// registry lock, alarm rings, and — when walDir is non-empty — a per-stream
// write-ahead log (interval fsync, the recommended production policy).
func measureManager(series *mts.MTS, cfg core.Config, rounds int, walDir string) (Case, error) {
	opts := manager.Options{Capacity: 1, MaxAlarms: 64}
	if walDir != "" {
		opts.WALDir = walDir
		opts.Fsync = manager.FsyncInterval
	}
	m := manager.New(opts)
	const id = "bench"
	if _, err := m.Create(id, series.Sensors(), cfg); err != nil {
		return Case{}, err
	}
	col := make([]float64, series.Sensors())
	tick := 0
	push := func() (bool, error) {
		series.Column(tick, col)
		tick++
		res, err := m.Ingest(id, col)
		return res.RoundCompleted, err
	}
	for done := 0; done < warmupRounds; {
		ok, err := push()
		if err != nil {
			return Case{}, err
		}
		if ok {
			done++
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	start := time.Now()
	for done := 0; done < rounds; {
		ok, err := push()
		if err != nil {
			return Case{}, err
		}
		if ok {
			done++
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)

	return Case{
		Rounds:         rounds,
		RoundsPerSec:   round2(float64(rounds) / elapsed.Seconds()),
		NsPerRound:     elapsed.Nanoseconds() / int64(rounds),
		AllocsPerRound: int64(ms.Mallocs-startMallocs) / int64(rounds),
	}, nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func intMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchrecord: "+format+"\n", args...)
	os.Exit(1)
}
