package main

import (
	"strings"
	"testing"
)

func TestPickScenarios(t *testing.T) {
	all, err := pickScenarios("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 10 {
		t.Fatalf("full corpus has %d scenarios, want ≥ 10", len(all))
	}
	two, err := pickScenarios("crash-loop, oom-kill")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "crash-loop" || two[1].Name != "oom-kill" {
		t.Fatalf("filtered = %v", two)
	}
	if _, err := pickScenarios("nope"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario error = %v", err)
	}
}

func TestPickVariants(t *testing.T) {
	all, err := pickVariants("", "incremental")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Fatalf("full grid has %d variants, want ≥ 4", len(all))
	}
	// Filters keep grid order regardless of the filter's order, so the
	// first kept variant stays the Ahead/Miss reference.
	picked, err := pickVariants("incremental,batch", "incremental")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "batch" || picked[1].Name != "incremental" {
		t.Fatalf("picked = %v", picked)
	}
	if _, err := pickVariants("batch,bogus", "batch"); err == nil || !strings.Contains(err.Error(), "unknown config") {
		t.Fatalf("unknown config error = %v", err)
	}
	if _, err := pickVariants("batch", "incremental"); err == nil || !strings.Contains(err.Error(), "gate") {
		t.Fatalf("dropped-gate error = %v", err)
	}
}
