// Command cadeval runs the scenario × config evaluation matrix and records
// the result as a JSON baseline checked into the repository
// (BENCH_scenarios.json) — the quality counterpart of benchrecord's
// BENCH_ingest.json speed baseline.
//
// Every corpus scenario (internal/scenario) is streamed through every
// detector config variant; each cell reports DaE quality metrics (DPA-F1,
// Ahead/Miss vs the batch reference, detection delay, false-alarm rate,
// sensor-localization F1) plus rounds/sec. All quality metrics are
// deterministic under the scenarios' pinned seeds; only roundsPerSec varies
// between machines. The artifact also records a per-scenario DPA-F1 floor
// (the gate config's score minus slack) that `make scenariotest` asserts
// against, so a detector change that silently degrades a failure mode fails
// CI until the floor is consciously re-recorded.
//
// Usage:
//
//	cadeval -out BENCH_scenarios.json
//	cadeval -scenarios crash-loop,oom-kill -configs batch,incremental -out /dev/stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cad/internal/scenario"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_scenarios.json", "output path")
		only    = flag.String("scenarios", "", "comma-separated scenario filter (default: full corpus)")
		configs = flag.String("configs", "", "comma-separated config filter (default: full grid)")
		gate    = flag.String("gate", "incremental", "config variant whose DPA-F1 sets each scenario's committed floor")
		slack   = flag.Float64("slack", 0.10, "floor slack subtracted from the gate DPA-F1")
	)
	flag.Parse()

	scenarios, err := pickScenarios(*only)
	if err != nil {
		fatalf("%v", err)
	}
	variants, err := pickVariants(*configs, *gate)
	if err != nil {
		fatalf("%v", err)
	}

	m, err := scenario.Run(scenarios, variants)
	if err != nil {
		fatalf("run: %v", err)
	}
	if err := m.SetFloors(*gate, *slack); err != nil {
		fatalf("floors: %v", err)
	}
	m.Generated = time.Now().UTC().Format(time.RFC3339)
	m.GoVersion = runtime.Version()
	m.GOARCH = runtime.GOARCH
	if err := m.Validate(len(scenarios), len(variants)); err != nil {
		fatalf("self-check: %v", err)
	}

	printSummary(m)

	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
}

// pickScenarios resolves the -scenarios filter against the corpus.
func pickScenarios(filter string) ([]scenario.Scenario, error) {
	if filter == "" {
		return scenario.Corpus(), nil
	}
	var out []scenario.Scenario
	for _, name := range strings.Split(filter, ",") {
		s, ok := scenario.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// pickVariants resolves the -configs filter against the grid, keeping grid
// order (the first kept variant is the Ahead/Miss reference) and requiring
// the gate variant to survive the filter.
func pickVariants(filter, gate string) ([]scenario.ConfigVariant, error) {
	all := scenario.Variants()
	if filter == "" {
		return all, nil
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(filter, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var out []scenario.ConfigVariant
	for _, v := range all {
		if want[v.Name] {
			out = append(out, v)
			delete(want, v.Name)
		}
	}
	for name := range want {
		return nil, fmt.Errorf("unknown config %q", name)
	}
	hasGate := false
	for _, v := range out {
		hasGate = hasGate || v.Name == gate
	}
	if !hasGate {
		return nil, fmt.Errorf("config filter drops the gate variant %q", gate)
	}
	return out, nil
}

// printSummary renders the matrix as a DPA-F1 table on stderr.
func printSummary(m *scenario.Matrix) {
	fmt.Fprintf(os.Stderr, "%-26s", "scenario \\ config")
	for _, v := range m.Configs {
		fmt.Fprintf(os.Stderr, " %13s", v.Name)
	}
	fmt.Fprintf(os.Stderr, " %6s\n", "floor")
	for _, s := range m.Scenarios {
		fmt.Fprintf(os.Stderr, "%-26s", s.Name)
		for _, v := range m.Configs {
			c, _ := s.Cell(v.Name)
			fmt.Fprintf(os.Stderr, " %13.2f", c.DPAF1)
		}
		fmt.Fprintf(os.Stderr, " %6.2f\n", s.Floor)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cadeval: "+format+"\n", args...)
	os.Exit(1)
}
