// Command cadeval runs the scenario × config evaluation matrix and records
// the result as a JSON baseline checked into the repository
// (BENCH_scenarios.json) — the quality counterpart of benchrecord's
// BENCH_ingest.json speed baseline.
//
// Every corpus scenario (internal/scenario) is streamed through every
// detector config variant; each cell reports DaE quality metrics (DPA-F1,
// Ahead/Miss vs the batch reference, detection delay, false-alarm rate,
// sensor-localization F1) plus rounds/sec. All quality metrics are
// deterministic under the scenarios' pinned seeds; only roundsPerSec varies
// between machines. The artifact also records a per-scenario DPA-F1 floor
// (the gate config's score minus slack) that `make scenariotest` asserts
// against, so a detector change that silently degrades a failure mode fails
// CI until the floor is consciously re-recorded.
//
// With -fleet the matrix is skipped and the fleet-level replay runs
// instead: the corpus is fanned across -fleet-streams staggered streams
// through the internal/fleet dedup + correlation pipeline (the same
// evaluation `make fleettest` gates on), a per-scenario table goes to
// stderr, and the JSON ReplayResult goes to stdout.
//
// Usage:
//
//	cadeval -out BENCH_scenarios.json
//	cadeval -scenarios crash-loop,oom-kill -configs batch,incremental -out /dev/stdout
//	cadeval -fleet [-fleet-streams 32]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cad/internal/fleet"
	"cad/internal/scenario"
)

func main() {
	var (
		out      = flag.String("out", "BENCH_scenarios.json", "output path")
		only     = flag.String("scenarios", "", "comma-separated scenario filter (default: full corpus)")
		configs  = flag.String("configs", "", "comma-separated config filter (default: full grid)")
		gate     = flag.String("gate", "incremental", "config variant whose DPA-F1 sets each scenario's committed floor")
		slack    = flag.Float64("slack", 0.10, "floor slack subtracted from the gate DPA-F1")
		fleetOn  = flag.Bool("fleet", false, "run the fleet incident-correlation replay instead of the config matrix")
		fleetStr = flag.Int("fleet-streams", 0, "fleet width for -fleet (0 = default 32)")
	)
	flag.Parse()

	if *fleetOn {
		if err := runFleet(*fleetStr); err != nil {
			fatalf("fleet replay: %v", err)
		}
		return
	}

	scenarios, err := pickScenarios(*only)
	if err != nil {
		fatalf("%v", err)
	}
	variants, err := pickVariants(*configs, *gate)
	if err != nil {
		fatalf("%v", err)
	}

	m, err := scenario.Run(scenarios, variants)
	if err != nil {
		fatalf("run: %v", err)
	}
	if err := m.SetFloors(*gate, *slack); err != nil {
		fatalf("floors: %v", err)
	}
	m.Generated = time.Now().UTC().Format(time.RFC3339)
	m.GoVersion = runtime.Version()
	m.GOARCH = runtime.GOARCH
	if err := m.Validate(len(scenarios), len(variants)); err != nil {
		fatalf("self-check: %v", err)
	}

	printSummary(m)

	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
}

// runFleet runs the fleet replay evaluation: stderr gets the per-scenario
// table, stdout the JSON ReplayResult.
func runFleet(streams int) error {
	r, err := fleet.Replay(fleet.ReplayConfig{Streams: streams})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet replay: %d streams, %d raw signals, %d passed, dedup %.2f%%\n",
		r.Streams, r.RawSignals, r.Passed, 100*r.DedupRatio)
	fmt.Fprintf(os.Stderr, "%-26s %6s %6s %7s %9s %7s %8s\n",
		"scenario", "rounds", "raw", "dedup", "incidents", "order", "surprise")
	for _, s := range r.Scenarios {
		order := "ok"
		if !s.OrderOK {
			order = "BAD"
		}
		fmt.Fprintf(os.Stderr, "%-26s %6d %6d %6.2f%% %9d %7s %8.2f\n",
			s.Name, s.AlarmRounds, s.RawSignals, 100*s.DedupRatio, s.Incidents, order, s.Surprise)
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = os.Stdout.Write(buf)
	return err
}

// pickScenarios resolves the -scenarios filter against the corpus.
func pickScenarios(filter string) ([]scenario.Scenario, error) {
	if filter == "" {
		return scenario.Corpus(), nil
	}
	var out []scenario.Scenario
	for _, name := range strings.Split(filter, ",") {
		s, ok := scenario.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// pickVariants resolves the -configs filter against the grid, keeping grid
// order (the first kept variant is the Ahead/Miss reference) and requiring
// the gate variant to survive the filter.
func pickVariants(filter, gate string) ([]scenario.ConfigVariant, error) {
	all := scenario.Variants()
	if filter == "" {
		return all, nil
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(filter, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var out []scenario.ConfigVariant
	for _, v := range all {
		if want[v.Name] {
			out = append(out, v)
			delete(want, v.Name)
		}
	}
	for name := range want {
		return nil, fmt.Errorf("unknown config %q", name)
	}
	hasGate := false
	for _, v := range out {
		hasGate = hasGate || v.Name == gate
	}
	if !hasGate {
		return nil, fmt.Errorf("config filter drops the gate variant %q", gate)
	}
	return out, nil
}

// printSummary renders the matrix as a DPA-F1 table on stderr.
func printSummary(m *scenario.Matrix) {
	fmt.Fprintf(os.Stderr, "%-26s", "scenario \\ config")
	for _, v := range m.Configs {
		fmt.Fprintf(os.Stderr, " %13s", v.Name)
	}
	fmt.Fprintf(os.Stderr, " %6s\n", "floor")
	for _, s := range m.Scenarios {
		fmt.Fprintf(os.Stderr, "%-26s", s.Name)
		for _, v := range m.Configs {
			c, _ := s.Cell(v.Name)
			fmt.Fprintf(os.Stderr, " %13.2f", c.DPAF1)
		}
		fmt.Fprintf(os.Stderr, " %6.2f\n", s.Floor)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cadeval: "+format+"\n", args...)
	os.Exit(1)
}
