package main

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"cad"
	"cad/internal/serve"
)

func writeWarmup(t *testing.T, path string, sensors, length int) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	s := cad.ZeroSeries(sensors, length)
	for tick := 0; tick < length; tick++ {
		a := math.Sin(2 * math.Pi * float64(tick) / 25)
		for i := 0; i < sensors; i++ {
			s.Set(i, tick, a*(1+0.2*float64(i%4))+0.05*rng.NormFloat64())
		}
	}
	if err := s.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
}

func TestSetupWithWarmup(t *testing.T) {
	dir := t.TempDir()
	warm := filepath.Join(dir, "warm.csv")
	writeWarmup(t, warm, 8, 600)
	det, err := setup(0, warm, 40, 4, 3, 0.4, 0.2, false)
	if err != nil {
		t.Fatal(err)
	}
	if det.Sensors() != 8 {
		t.Errorf("sensors = %d (should derive from warm-up)", det.Sensors())
	}
	if det.Rounds() == 0 {
		t.Error("warm-up did not run")
	}
	if det.Config().Window.W != 40 || det.Config().K != 3 {
		t.Errorf("config overrides lost: %+v", det.Config())
	}
}

func TestSetupWithoutWarmup(t *testing.T) {
	det, err := setup(10, "", 0, 0, 0, 0.5, 0.3, true)
	if err != nil {
		t.Fatal(err)
	}
	if det.Sensors() != 10 || !det.Config().ApproxTSG {
		t.Errorf("setup: sensors=%d approx=%v", det.Sensors(), det.Config().ApproxTSG)
	}
	if det.Rounds() != 0 {
		t.Error("no warm-up expected")
	}
}

func TestSetupErrors(t *testing.T) {
	if _, err := setup(0, "", 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("no sensors and no warm-up should error")
	}
	if _, err := setup(1, "", 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("1 sensor should error")
	}
	if _, err := setup(0, "/nonexistent.csv", 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("missing warm-up file should error")
	}
	dir := t.TempDir()
	warm := filepath.Join(dir, "warm.csv")
	writeWarmup(t, warm, 8, 300)
	if _, err := setup(5, warm, 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("sensor-count mismatch should error")
	}
	// Invalid windowing flows through as a config error.
	if _, err := setup(8, "", 4, 4, 0, 0.5, 0.3, false); err == nil {
		t.Error("w == s should error")
	}
}

func TestNewServerRouting(t *testing.T) {
	det, err := setup(8, "", 0, 0, 0, 0.5, 0.3, false)
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.NewWithOptions(det, serve.Options{})
	srv := newServer(svc, ":0", false)

	rec := httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/status", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/status: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `http_requests_total{code="200",method="GET",path="/status"} 1`) {
		t.Error("/metrics missing request metrics")
	}

	// pprof must be opt-in.
	rec = httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code == http.StatusOK {
		t.Error("/debug/pprof/ should not be mounted without -pprof")
	}

	det2, err := setup(8, "", 0, 0, 0, 0.5, 0.3, false)
	if err != nil {
		t.Fatal(err)
	}
	srv = newServer(serve.NewWithOptions(det2, serve.Options{}), ":0", true)
	rec = httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/ with -pprof: status %d", rec.Code)
	}
	if srv.ReadTimeout == 0 || srv.WriteTimeout == 0 || srv.ReadHeaderTimeout == 0 {
		t.Error("server timeouts must be set")
	}
}
