package main

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cad"
	"cad/internal/core"
	"cad/internal/serve"
)

func writeWarmup(t *testing.T, path string, sensors, length int) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	s := cad.ZeroSeries(sensors, length)
	for tick := 0; tick < length; tick++ {
		a := math.Sin(2 * math.Pi * float64(tick) / 25)
		for i := 0; i < sensors; i++ {
			s.Set(i, tick, a*(1+0.2*float64(i%4))+0.05*rng.NormFloat64())
		}
	}
	if err := s.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
}

func TestSetupWithWarmup(t *testing.T) {
	dir := t.TempDir()
	warm := filepath.Join(dir, "warm.csv")
	writeWarmup(t, warm, 8, 600)
	det, err := setup(0, warm, "", 40, 4, 3, 0.4, 0.2, false)
	if err != nil {
		t.Fatal(err)
	}
	if det.Sensors() != 8 {
		t.Errorf("sensors = %d (should derive from warm-up)", det.Sensors())
	}
	if det.Rounds() == 0 {
		t.Error("warm-up did not run")
	}
	if det.Config().Window.W != 40 || det.Config().K != 3 {
		t.Errorf("config overrides lost: %+v", det.Config())
	}
}

func TestSetupWithoutWarmup(t *testing.T) {
	det, err := setup(10, "", "", 0, 0, 0, 0.5, 0.3, true)
	if err != nil {
		t.Fatal(err)
	}
	if det.Sensors() != 10 || !det.Config().ApproxTSG {
		t.Errorf("setup: sensors=%d approx=%v", det.Sensors(), det.Config().ApproxTSG)
	}
	if det.Rounds() != 0 {
		t.Error("no warm-up expected")
	}
}

func TestSetupErrors(t *testing.T) {
	if _, err := setup(0, "", "", 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("no sensors and no warm-up should error")
	}
	if _, err := setup(1, "", "", 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("1 sensor should error")
	}
	if _, err := setup(0, "/nonexistent.csv", "", 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("missing warm-up file should error")
	}
	dir := t.TempDir()
	warm := filepath.Join(dir, "warm.csv")
	writeWarmup(t, warm, 8, 300)
	if _, err := setup(5, warm, "", 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("sensor-count mismatch should error")
	}
	// Invalid windowing flows through as a config error.
	if _, err := setup(8, "", "", 4, 4, 0, 0.5, 0.3, false); err == nil {
		t.Error("w == s should error")
	}
}

func TestNewServerRouting(t *testing.T) {
	det, err := setup(8, "", "", 0, 0, 0, 0.5, 0.3, false)
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.NewWithOptions(det, serve.Options{})
	srv := newServer(svc, ":0", false)

	rec := httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/status", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/status: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `http_requests_total{code="200",method="GET",path="/status"} 1`) {
		t.Error("/metrics missing request metrics")
	}

	// pprof must be opt-in.
	rec = httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code == http.StatusOK {
		t.Error("/debug/pprof/ should not be mounted without -pprof")
	}

	det2, err := setup(8, "", "", 0, 0, 0, 0.5, 0.3, false)
	if err != nil {
		t.Fatal(err)
	}
	srv = newServer(serve.NewWithOptions(det2, serve.Options{}), ":0", true)
	rec = httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/ with -pprof: status %d", rec.Code)
	}
	if srv.ReadTimeout == 0 || srv.WriteTimeout == 0 || srv.ReadHeaderTimeout == 0 {
		t.Error("server timeouts must be set")
	}
}

func TestSetupWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "detector.json")
	doc := `{"window":{"w":50,"s":5},"k":4,"tau":0.45,"theta":0.25,"eta":3,
	         "sigmaFloor":0.5,"minHistory":8,"rcMode":"cumulative"}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	det, err := setup(8, "", path, 0, 0, 0, 0.5, 0.3, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := det.Config()
	if cfg.Window.W != 50 || cfg.Window.S != 5 || cfg.K != 4 || cfg.RCMode != core.RCCumulative {
		t.Errorf("config file not applied: %+v", cfg)
	}
	// A typoed field fails loudly instead of running with defaults.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"windw":{"w":50,"s":5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := setup(8, "", bad, 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("unknown config field should error")
	}
	if _, err := setup(8, "", filepath.Join(dir, "missing.json"), 0, 0, 0, 0.5, 0.3, false); err == nil {
		t.Error("missing config file should error")
	}
}

func TestNewManagerFromFlags(t *testing.T) {
	dir := t.TempDir()
	mgr := newManager(serverOptions{capacity: 2, idleTTL: time.Hour, snapdir: dir}, nil, nil, nil)
	det, err := setup(8, "", "", 0, 0, 0, 0.5, 0.3, false)
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.NewWithOptions(det, serve.Options{Manager: mgr})
	// Fill past capacity through the API: with a snapshot dir the overflow
	// is evicted, not rejected.
	h := svc.Handler()
	for _, id := range []string{"a", "b"} {
		body := strings.NewReader(`{"id":"` + id + `","sensors":8}`)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/streams", body))
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %s = %d: %s", id, rec.Code, rec.Body)
		}
	}
	if mgr.Len() != 2 {
		t.Errorf("resident = %d, want capacity 2", mgr.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Errorf("snapshot dir entries = %v (%v), want 1 eviction", entries, err)
	}
}

func TestSweepInterval(t *testing.T) {
	cases := []struct {
		ttl, want time.Duration
	}{
		{time.Second, 10 * time.Second},
		{2 * time.Minute, 30 * time.Second},
		{24 * time.Hour, 5 * time.Minute},
	}
	for _, c := range cases {
		if got := sweepInterval(c.ttl); got != c.want {
			t.Errorf("sweepInterval(%v) = %v, want %v", c.ttl, got, c.want)
		}
	}
}
