// Command cadserve runs the streaming CAD detector as an HTTP service.
//
// Usage:
//
//	cadserve -sensors 26 -addr :8080 [-warmup history.csv]
//	         [-w 200 -s 4] [-k 10] [-tau 0.5] [-theta 0.3]
//
// Collectors POST readings to /ingest; operators read /status and /alarms;
// /detect accepts a CSV for one-shot batch analysis. See internal/serve for
// the payloads.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"cad"
	"cad/internal/core"
	"cad/internal/serve"
)

func main() {
	var (
		sensors = flag.Int("sensors", 0, "number of sensors (required unless -warmup is given)")
		addr    = flag.String("addr", ":8080", "listen address")
		warmup  = flag.String("warmup", "", "anomaly-free CSV for the warm-up process")
		w       = flag.Int("w", 0, "sliding window length (0 = auto)")
		s       = flag.Int("s", 0, "window step (0 = auto)")
		k       = flag.Int("k", 0, "correlation neighbors per sensor (0 = auto)")
		tau     = flag.Float64("tau", 0.5, "correlation threshold τ")
		theta   = flag.Float64("theta", 0.3, "outlier threshold θ")
		approx  = flag.Bool("approx", false, "build TSGs with the HNSW index (for very wide sensor arrays)")
	)
	flag.Parse()
	if err := run(*sensors, *addr, *warmup, *w, *s, *k, *tau, *theta, *approx); err != nil {
		fmt.Fprintf(os.Stderr, "cadserve: %v\n", err)
		os.Exit(1)
	}
}

// setup loads the optional warm-up series, derives the configuration, and
// returns the warmed detector (split from run so tests can exercise it
// without binding a socket).
func setup(sensors int, warmup string, w, s, k int, tau, theta float64, approx bool) (*core.Detector, error) {
	var history *cad.Series
	if warmup != "" {
		var err error
		history, err = cad.LoadCSV(warmup)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", warmup, err)
		}
		if sensors == 0 {
			sensors = history.Sensors()
		}
		if sensors != history.Sensors() {
			return nil, fmt.Errorf("-sensors %d but warm-up has %d", sensors, history.Sensors())
		}
	}
	if sensors < 2 {
		return nil, fmt.Errorf("need -sensors ≥ 2 or a -warmup file")
	}
	length := 10000
	if history != nil {
		length = history.Len()
	}
	cfg := core.DefaultConfig(sensors, length)
	cfg.Tau = tau
	cfg.Theta = theta
	cfg.ApproxTSG = approx
	if w > 0 && s > 0 {
		cfg.Window = cad.Windowing{W: w, S: s}
	}
	if k > 0 {
		cfg.K = k
	}
	det, err := core.NewDetector(sensors, cfg)
	if err != nil {
		return nil, err
	}
	if history != nil {
		start := time.Now()
		if err := det.WarmUp(history); err != nil {
			return nil, fmt.Errorf("warm-up: %w", err)
		}
		log.Printf("warm-up: %d rounds in %v (μ=%.2f σ=%.2f)",
			det.Rounds(), time.Since(start), det.HistoryMean(), det.HistoryStdDev())
	}
	return det, nil
}

func run(sensors int, addr, warmup string, w, s, k int, tau, theta float64, approx bool) error {
	det, err := setup(sensors, warmup, w, s, k, tau, theta, approx)
	if err != nil {
		return err
	}
	cfg := det.Config()
	svc := serve.New(det, 1024)
	srv := &http.Server{
		Addr:         addr,
		Handler:      svc.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	log.Printf("cadserve listening on %s (%d sensors, w=%d s=%d k=%d τ=%.2f θ=%.2f approx=%v)",
		addr, det.Sensors(), cfg.Window.W, cfg.Window.S, cfg.K, cfg.Tau, cfg.Theta, approx)
	return srv.ListenAndServe()
}
