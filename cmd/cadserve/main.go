// Command cadserve runs the streaming CAD detector as an HTTP service.
//
// Usage:
//
//	cadserve -sensors 26 -addr :8080 [-warmup history.csv]
//	         [-w 200 -s 4] [-k 10] [-tau 0.5] [-theta 0.3]
//	         [-pprof] [-logjson]
//
// Collectors POST readings to /ingest; operators read /status, /alarms,
// /anomalies, and scrape Prometheus metrics from /metrics; /detect accepts
// a CSV for one-shot batch analysis. See internal/serve for the payloads
// and the exported metric names. -pprof additionally mounts the
// net/http/pprof profiling handlers under /debug/pprof/.
//
// The server logs one structured line per request (text to stderr, or JSON
// with -logjson), enforces read/write timeouts, and shuts down gracefully
// on SIGINT/SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cad"
	"cad/internal/core"
	"cad/internal/serve"
)

func main() {
	var (
		sensors = flag.Int("sensors", 0, "number of sensors (required unless -warmup is given)")
		addr    = flag.String("addr", ":8080", "listen address")
		warmup  = flag.String("warmup", "", "anomaly-free CSV for the warm-up process")
		w       = flag.Int("w", 0, "sliding window length (0 = auto)")
		s       = flag.Int("s", 0, "window step (0 = auto)")
		k       = flag.Int("k", 0, "correlation neighbors per sensor (0 = auto)")
		tau     = flag.Float64("tau", 0.5, "correlation threshold τ")
		theta   = flag.Float64("theta", 0.3, "outlier threshold θ")
		approx  = flag.Bool("approx", false, "build TSGs with the HNSW index (for very wide sensor arrays)")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		logJSON = flag.Bool("logjson", false, "emit JSON logs instead of text")
	)
	flag.Parse()
	logger := newLogger(*logJSON)
	if err := run(*sensors, *addr, *warmup, *w, *s, *k, *tau, *theta, *approx, *pprofOn, logger); err != nil {
		fmt.Fprintf(os.Stderr, "cadserve: %v\n", err)
		os.Exit(1)
	}
}

func newLogger(logJSON bool) *slog.Logger {
	if logJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// setup loads the optional warm-up series, derives the configuration, and
// returns the warmed detector (split from run so tests can exercise it
// without binding a socket).
func setup(sensors int, warmup string, w, s, k int, tau, theta float64, approx bool) (*core.Detector, error) {
	var history *cad.Series
	if warmup != "" {
		var err error
		history, err = cad.LoadCSV(warmup)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", warmup, err)
		}
		if sensors == 0 {
			sensors = history.Sensors()
		}
		if sensors != history.Sensors() {
			return nil, fmt.Errorf("-sensors %d but warm-up has %d", sensors, history.Sensors())
		}
	}
	if sensors < 2 {
		return nil, fmt.Errorf("need -sensors ≥ 2 or a -warmup file")
	}
	length := 10000
	if history != nil {
		length = history.Len()
	}
	cfg := core.DefaultConfig(sensors, length)
	cfg.Tau = tau
	cfg.Theta = theta
	cfg.ApproxTSG = approx
	if w > 0 && s > 0 {
		cfg.Window = cad.Windowing{W: w, S: s}
	}
	if k > 0 {
		cfg.K = k
	}
	det, err := core.NewDetector(sensors, cfg)
	if err != nil {
		return nil, err
	}
	if history != nil {
		start := time.Now()
		if err := det.WarmUp(history); err != nil {
			return nil, fmt.Errorf("warm-up: %w", err)
		}
		slog.Info("warm-up done", "rounds", det.Rounds(), "elapsed", time.Since(start),
			"mu", det.HistoryMean(), "sigma", det.HistoryStdDev())
	}
	return det, nil
}

// newServer assembles the HTTP server around svc: service routes, optional
// pprof handlers, and conservative timeouts. Split from run so tests can
// exercise the routing without binding a socket. The write timeout is
// generous because /detect runs a full batch detection inline.
func newServer(svc *serve.Service, addr string, pprofOn bool) *http.Server {
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

func run(sensors int, addr, warmup string, w, s, k int, tau, theta float64, approx, pprofOn bool, logger *slog.Logger) error {
	det, err := setup(sensors, warmup, w, s, k, tau, theta, approx)
	if err != nil {
		return err
	}
	cfg := det.Config()
	svc := serve.NewWithOptions(det, serve.Options{MaxAlarms: 1024, Logger: logger})
	srv := newServer(svc, addr, pprofOn)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("cadserve listening", "addr", addr, "sensors", det.Sensors(),
		"w", cfg.Window.W, "s", cfg.Window.S, "k", cfg.K,
		"tau", cfg.Tau, "theta", cfg.Theta, "approx", approx, "pprof", pprofOn)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		logger.Info("shutting down", "reason", "signal")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
