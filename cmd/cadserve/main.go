// Command cadserve runs a multi-tenant fleet of streaming CAD detectors as
// an HTTP service.
//
// Usage:
//
//	cadserve -sensors 26 -addr :8080 [-warmup history.csv]
//	         [-config detector.json | -w 200 -s 4 -k 10 -tau 0.5 -theta 0.3]
//	         [-capacity 64] [-idle-ttl 30m] [-snapdir /var/lib/cadserve]
//	         [-wal /var/lib/cadserve/wal] [-fsync always|interval|never]
//	         [-fsync-interval 100ms] [-pprof] [-logjson]
//	         [-webhook https://ops.example/hook] [-webhook-secret s3cret]
//	         [-alert-queue 256] [-alert-dlq /var/lib/cadserve/dlq]
//	         [-fleet] [-fleet-bucket 30s] [-fleet-window 60s]
//	         [-fleet-quiet 5m] [-fleet-min-streams 2]
//	         [-node-id n1 -advertise http://host1:8080
//	          -peers n2=http://host2:8080,n3=http://host3:8080]
//
// Operators create streams with POST /v1/streams and drive them through
// /v1/streams/{id}/…; the legacy unversioned routes (/ingest, /status,
// /alarms, /anomalies, /detect) serve the built-in "default" stream, which
// -sensors/-warmup configure. See internal/serve for the payloads, error
// codes, and exported metric names. -pprof additionally mounts the
// net/http/pprof profiling handlers under /debug/pprof/.
//
// -config loads the detector configuration from a JSON file in the same
// wire format POST /v1/streams accepts (and caddetect -config reads); it
// replaces the individual tuning flags. -capacity bounds how many streams
// stay resident; with -snapdir, overflowing and idle streams (-idle-ttl)
// are snapshotted to disk instead of rejected and restored transparently
// on their next request.
//
// -wal makes the fleet crash-safe: every ingested column is appended to a
// per-stream checksummed write-ahead log before it touches detector state,
// snapshots become persistent checkpoints (defaulting to <wal>/snapshots
// when -snapdir is not given), and on boot every persisted stream is
// recovered — newest checkpoint plus WAL replay — to the exact state of
// the previous run, including a warmed-up default stream (the -warmup
// detector then yields to the recovered one). -fsync picks when writes
// reach stable storage: "always" (default, one fsync per append),
// "interval" (batched, at most one per -fsync-interval per stream), or
// "never" (leave it to the OS). If the disk fails while serving, cadserve
// degrades to memory-only ingest and reports it on GET /readyz.
//
// Alerts are pushed as they happen: every server exposes the live SSE feed
// (GET /v1/streams/{id}/events) and the sink CRUD (POST/GET /v1/sinks,
// DELETE /v1/sinks/{name}). -webhook registers an HTTP sink named
// "webhook" at boot; -webhook-secret makes it sign each body into the
// X-CAD-Signature header. Deliveries retry with exponential backoff behind
// a per-sink circuit breaker, and with -alert-dlq events that exhaust
// their retries are dead-lettered to disk and redelivered once on the next
// boot.
//
// -node-id/-advertise/-peers turn the server into a member of a static
// cadserve cluster: the stream fleet is sharded across the members by
// consistent hashing, any node accepts any /v1 request and transparently
// forwards stream-scoped traffic to the stream's owner (responses carry
// X-CAD-Node naming the serving node), collection reads (/v1/streams,
// /v1/incidents, the /v1/events SSE feed) scatter-gather across the live
// membership, and GET /v1/cluster reports this node's membership view.
// Each node health-checks its peers' /readyz and routes around members
// that stop answering; when a peer joins or recovers, the streams that
// hash to it are migrated over as snapshot + WAL-tail bundles, and a
// SIGTERM'd node drains its streams to the surviving members before
// exiting. The built-in default stream stays node-local. All members
// should be started with the same membership (each node lists the others
// in -peers) and, for durable migration, a -wal directory.
//
// -fleet enables the second-stage incident correlator: per-stream alarms
// from the bus are deduplicated (Stable Bloom filter keyed by stream and
// -fleet-bucket sized time bucket), clustered across streams within
// -fleet-window, and published back onto the bus as
// incident_opened/updated/closed events once -fleet-min-streams streams are
// implicated; an incident quiet for -fleet-quiet closes. Incidents are
// served on GET /v1/incidents (+ /v1/incidents/{id} and the SSE feed
// /v1/incidents/events) and reach every registered sink.
//
// The server logs one structured line per request (text to stderr, or JSON
// with -logjson), enforces read/write timeouts, and shuts down gracefully
// on SIGINT/SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cad"
	"cad/internal/alert"
	"cad/internal/cluster"
	"cad/internal/core"
	"cad/internal/fleet"
	"cad/internal/manager"
	"cad/internal/obs"
	"cad/internal/serve"
)

func main() {
	var (
		sensors  = flag.Int("sensors", 0, "number of sensors of the default stream (required unless -warmup is given)")
		addr     = flag.String("addr", ":8080", "listen address")
		warmup   = flag.String("warmup", "", "anomaly-free CSV warming up the default stream")
		cfgFile  = flag.String("config", "", "detector config JSON file (replaces -w/-s/-k/-tau/-theta/-approx)")
		w        = flag.Int("w", 0, "sliding window length (0 = auto)")
		s        = flag.Int("s", 0, "window step (0 = auto)")
		k        = flag.Int("k", 0, "correlation neighbors per sensor (0 = auto)")
		tau      = flag.Float64("tau", 0.5, "correlation threshold τ")
		theta    = flag.Float64("theta", 0.3, "outlier threshold θ")
		approx   = flag.Bool("approx", false, "build TSGs with the HNSW index (for very wide sensor arrays)")
		capacity = flag.Int("capacity", 64, "max resident streams before eviction (needs -snapdir) or rejection")
		idleTTL  = flag.Duration("idle-ttl", 0, "evict streams idle this long (0 = never; needs -snapdir)")
		snapdir  = flag.String("snapdir", "", "directory for evicted-stream snapshots ('' disables eviction)")
		walDir   = flag.String("wal", "", "write-ahead-log directory enabling crash-safe durability ('' disables)")
		fsync    = flag.String("fsync", "always", "WAL/snapshot fsync policy: always, interval, or never")
		fsyncIv  = flag.Duration("fsync-interval", 100*time.Millisecond, "max time between fsyncs under -fsync interval")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		logJSON  = flag.Bool("logjson", false, "emit JSON logs instead of text")
		webhook  = flag.String("webhook", "", "alert webhook URL, registered as sink \"webhook\" ('' disables)")
		whSecret = flag.String("webhook-secret", "", "shared secret signing webhook bodies (X-CAD-Signature)")
		alertQ   = flag.Int("alert-queue", 256, "per-sink alert queue capacity")
		alertDLQ = flag.String("alert-dlq", "", "directory for the alert dead-letter queue ('' keeps failures in metrics only)")
		fleetOn  = flag.Bool("fleet", false, "enable the fleet-level incident correlator (serves /v1/incidents)")
		flBucket = flag.Duration("fleet-bucket", 0, "dedup time-bucket size (0 = default 30s)")
		flWindow = flag.Duration("fleet-window", 0, "cross-stream clustering window (0 = default 60s)")
		flQuiet  = flag.Duration("fleet-quiet", 0, "event-time silence closing an incident (0 = default 5m)")
		flMinStr = flag.Int("fleet-min-streams", 0, "distinct streams opening an incident (0 = default 2)")
		nodeID   = flag.String("node-id", "", "this node's id in a cadserve cluster ('' = single-node mode)")
		advert   = flag.String("advertise", "", "base URL peers reach this node at (required with -node-id)")
		peers    = flag.String("peers", "", "comma-separated id=url peer list forming the static cluster membership")
	)
	flag.Parse()
	logger := newLogger(*logJSON)
	fleetCfg := fleet.DefaultConfig()
	fleetCfg.BucketSize = *flBucket
	fleetCfg.ClusterWindow = *flWindow
	fleetCfg.QuietClose = *flQuiet
	fleetCfg.MinStreams = *flMinStr
	opts := serverOptions{
		addr: *addr, capacity: *capacity, idleTTL: *idleTTL, snapdir: *snapdir,
		walDir: *walDir, fsync: *fsync, fsyncIv: *fsyncIv,
		pprofOn: *pprofOn,
		webhook: *webhook, webhookSecret: *whSecret,
		alertQueue: *alertQ, alertDLQ: *alertDLQ,
		fleetOn: *fleetOn, fleetCfg: fleetCfg,
		nodeID: *nodeID, advertise: *advert, peers: *peers,
	}
	if err := run(*sensors, *warmup, *cfgFile, *w, *s, *k, *tau, *theta, *approx, opts, logger); err != nil {
		fmt.Fprintf(os.Stderr, "cadserve: %v\n", err)
		os.Exit(1)
	}
}

func newLogger(logJSON bool) *slog.Logger {
	if logJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// loadConfigFile reads a detector configuration in the shared JSON wire
// format (see core.Config.UnmarshalJSON) used by POST /v1/streams and
// caddetect -config.
func loadConfigFile(path string) (core.Config, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return core.Config{}, err
	}
	var cfg core.Config
	if err := json.Unmarshal(buf, &cfg); err != nil {
		return core.Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// setup loads the optional warm-up series, derives the configuration — from
// the config file when given, from the tuning flags otherwise — and returns
// the warmed detector for the default stream (split from run so tests can
// exercise it without binding a socket).
func setup(sensors int, warmup, cfgFile string, w, s, k int, tau, theta float64, approx bool) (*core.Detector, error) {
	var history *cad.Series
	if warmup != "" {
		var err error
		history, err = cad.LoadCSV(warmup)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", warmup, err)
		}
		if sensors == 0 {
			sensors = history.Sensors()
		}
		if sensors != history.Sensors() {
			return nil, fmt.Errorf("-sensors %d but warm-up has %d", sensors, history.Sensors())
		}
	}
	if sensors < 2 {
		return nil, fmt.Errorf("need -sensors ≥ 2 or a -warmup file")
	}
	var cfg core.Config
	if cfgFile != "" {
		var err error
		cfg, err = loadConfigFile(cfgFile)
		if err != nil {
			return nil, err
		}
	} else {
		length := 10000
		if history != nil {
			length = history.Len()
		}
		cfg = core.DefaultConfig(sensors, length)
		cfg.Tau = tau
		cfg.Theta = theta
		cfg.ApproxTSG = approx
		if approx {
			// ApproxTSG excludes the incremental hot path DefaultConfig
			// turns on.
			cfg.Incremental = false
		}
		if w > 0 && s > 0 {
			cfg.Window = cad.Windowing{W: w, S: s}
		}
		if k > 0 {
			cfg.K = k
		}
	}
	det, err := core.NewDetector(sensors, cfg)
	if err != nil {
		return nil, err
	}
	if history != nil {
		start := time.Now()
		if err := det.WarmUp(history); err != nil {
			return nil, fmt.Errorf("warm-up: %w", err)
		}
		slog.Info("warm-up done", "rounds", det.Rounds(), "elapsed", time.Since(start),
			"mu", det.HistoryMean(), "sigma", det.HistoryStdDev())
	}
	return det, nil
}

// serverOptions bundles the service-level (not per-detector) flags.
type serverOptions struct {
	addr     string
	capacity int
	idleTTL  time.Duration
	snapdir  string
	walDir   string
	fsync    string
	fsyncIv  time.Duration
	pprofOn  bool

	webhook       string
	webhookSecret string
	alertQueue    int
	alertDLQ      string

	fleetOn  bool
	fleetCfg fleet.Config

	nodeID    string
	advertise string
	peers     string
}

// parsePeers parses the -peers list: comma-separated id=url entries.
func parsePeers(raw string) ([]cluster.Node, error) {
	if raw == "" {
		return nil, nil
	}
	var nodes []cluster.Node
	for _, entry := range strings.Split(raw, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, ok := strings.Cut(entry, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers entry %q: want id=url", entry)
		}
		nodes = append(nodes, cluster.Node{ID: id, URL: url})
	}
	return nodes, nil
}

// newCluster builds this node's cluster view from the flags, or returns
// nil in single-node mode. The OnPeerUp hook rebalances: a peer that
// joins (or comes back) immediately receives the local streams the ring
// says it owns.
func newCluster(o serverOptions, reg *obs.Registry, logger *slog.Logger, mover func() cluster.StreamMover) (*cluster.Cluster, error) {
	if o.nodeID == "" && o.peers == "" {
		return nil, nil
	}
	if o.nodeID == "" || o.advertise == "" {
		return nil, fmt.Errorf("cluster mode needs both -node-id and -advertise")
	}
	nodes, err := parsePeers(o.peers)
	if err != nil {
		return nil, err
	}
	var cl *cluster.Cluster
	cl, err = cluster.New(cluster.Config{
		Self:      o.nodeID,
		Advertise: o.advertise,
		Peers:     nodes,
		Registry:  reg,
		Logger:    logger,
		OnPeerUp: func(p cluster.Node) {
			if n, err := cl.Rebalance(context.Background(), mover()); err != nil {
				logger.Warn("cluster rebalance", "peer", p.ID, "err", err)
			} else if n > 0 {
				logger.Info("cluster rebalanced", "peer", p.ID, "moved", n)
			}
		},
	})
	return cl, err
}

// newManager builds the stream registry from the service flags, publishing
// detection events onto bus. A non-nil fl is attached as a bus consumer.
func newManager(o serverOptions, reg *obs.Registry, bus *alert.Bus, fl *fleet.Fleet) *manager.Manager {
	return manager.New(manager.Options{
		Capacity:      o.capacity,
		IdleTTL:       o.idleTTL,
		SnapshotDir:   o.snapdir,
		WALDir:        o.walDir,
		Fsync:         o.fsync,
		FsyncInterval: o.fsyncIv,
		MaxAlarms:     1024,
		Registry:      reg,
		Alerts:        bus,
		Fleet:         fl,
	})
}

// newBus builds the alert bus and registers the flag-configured sinks. The
// bus always exists — the SSE feed and sink CRUD work without any flag —
// and a webhook flag adds the "webhook" sink before the DLQ backlog is
// drained, so dead letters from the previous run reach it.
func newBus(o serverOptions, reg *obs.Registry, logger *slog.Logger) (*alert.Bus, error) {
	bus, err := alert.NewBus(alert.Options{Registry: reg, DLQDir: o.alertDLQ, Logger: logger})
	if err != nil {
		return nil, fmt.Errorf("alert dlq: %w", err)
	}
	if o.webhook != "" {
		sink, err := alert.NewWebhookSink(o.webhook, []byte(o.webhookSecret), 0)
		if err != nil {
			_ = bus.Close()
			return nil, err
		}
		if err := bus.AddSink("webhook", sink, alert.SinkConfig{Queue: o.alertQueue}); err != nil {
			_ = bus.Close()
			return nil, err
		}
	}
	return bus, nil
}

// newServer assembles the HTTP server around svc: service routes, optional
// pprof handlers, and conservative timeouts. Split from run so tests can
// exercise the routing without binding a socket. The write timeout is
// generous because /detect runs a full batch detection inline.
func newServer(svc *serve.Service, addr string, pprofOn bool) *http.Server {
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// advanceInterval picks how often the fleet's event-time clock is nudged
// forward: a quarter of the quiet-close window, clamped to [1s, 1m], so
// incidents close within ~1.25× their quiet window.
func advanceInterval(quiet time.Duration) time.Duration {
	iv := quiet / 4
	if iv < time.Second {
		iv = time.Second
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

// sweepInterval picks how often the janitor runs: a quarter of the TTL,
// clamped to [10s, 5m], so an idle stream is evicted within ~1.25× its TTL
// without busy-looping on short TTLs.
func sweepInterval(ttl time.Duration) time.Duration {
	iv := ttl / 4
	if iv < 10*time.Second {
		iv = 10 * time.Second
	}
	if iv > 5*time.Minute {
		iv = 5 * time.Minute
	}
	return iv
}

func run(sensors int, warmup, cfgFile string, w, s, k int, tau, theta float64, approx bool, o serverOptions, logger *slog.Logger) error {
	det, err := setup(sensors, warmup, cfgFile, w, s, k, tau, theta, approx)
	if err != nil {
		return err
	}
	cfg := det.Config()
	if o.fsync != manager.FsyncAlways && o.fsync != manager.FsyncInterval && o.fsync != manager.FsyncNever {
		return fmt.Errorf("-fsync %q: want always, interval, or never", o.fsync)
	}
	reg := obs.NewRegistry()
	bus, err := newBus(o, reg, logger)
	if err != nil {
		return err
	}
	defer bus.Close()
	var fl *fleet.Fleet
	if o.fleetOn {
		fl = fleet.New(o.fleetCfg, reg)
	}
	mgr := newManager(o, reg, bus, fl)
	// Recover persisted streams before the service adopts the default
	// stream, so a recovered default (warm state, alarm history) wins over
	// the freshly built detector.
	if stats, err := mgr.Recover(); err != nil {
		return fmt.Errorf("recover: %w", err)
	} else if o.walDir != "" {
		logger.Info("recovery done", "streams", stats.Recovered,
			"replayed", stats.Replayed, "quarantined", stats.Quarantined)
	}
	// With the sinks registered and recovery done, give the previous run's
	// dead letters their second chance.
	if n, err := bus.DrainDLQ(); err != nil {
		logger.Warn("draining alert dead-letter queue", "err", err)
	} else if n > 0 {
		logger.Info("redelivering dead-lettered alerts", "events", n)
	}
	cl, err := newCluster(o, reg, logger, func() cluster.StreamMover {
		return serve.ClusterMover{Mgr: mgr}
	})
	if err != nil {
		return err
	}
	svc := serve.NewWithOptions(det, serve.Options{Manager: mgr, Logger: logger, Alerts: bus, Cluster: cl})
	srv := newServer(svc, o.addr, o.pprofOn)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cl != nil {
		cl.Start(ctx)
		logger.Info("cluster member", "node", o.nodeID, "advertise", o.advertise,
			"peers", cl.Ring().Len()-1)
	}

	if o.snapdir != "" && o.idleTTL > 0 {
		iv := sweepInterval(o.idleTTL)
		go func() {
			tick := time.NewTicker(iv)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n := mgr.Sweep(); n > 0 {
						logger.Info("swept idle streams", "evicted", n, "resident", mgr.Len())
					}
				}
			}
		}()
	}

	if fl != nil {
		// Quiet incidents must close even when no further alarms arrive to
		// move the event-time clock, so a ticker feeds wall-clock time in.
		iv := advanceInterval(fl.Config().QuietClose)
		go func() {
			tick := time.NewTicker(iv)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					fl.Advance(time.Now())
				}
			}
		}()
		fcfg := fl.Config()
		logger.Info("fleet correlator on", "bucket", fcfg.BucketSize,
			"window", fcfg.ClusterWindow, "quiet", fcfg.QuietClose,
			"minStreams", fcfg.MinStreams)
	}

	logger.Info("cadserve listening", "addr", o.addr, "sensors", det.Sensors(),
		"w", cfg.Window.W, "s", cfg.Window.S, "k", cfg.K,
		"tau", cfg.Tau, "theta", cfg.Theta, "approx", cfg.ApproxTSG,
		"capacity", o.capacity, "idleTTL", o.idleTTL, "snapdir", o.snapdir,
		"wal", o.walDir, "fsync", o.fsync, "pprof", o.pprofOn)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		logger.Info("shutting down", "reason", "signal")
		// Drain before anything closes: hand every local stream to the
		// surviving peers so the membership loses a node, not its streams.
		// Failures are non-fatal — the WAL still recovers them on restart.
		if cl != nil {
			dctx, dcancel := context.WithTimeout(context.Background(), 15*time.Second)
			if n, err := cl.Drain(dctx, serve.ClusterMover{Mgr: mgr}); err != nil {
				logger.Warn("cluster drain", "moved", n, "err", err)
			} else if n > 0 {
				logger.Info("cluster drained", "moved", n)
			}
			dcancel()
		}
		// Close the bus first: open SSE feeds block on it, and Shutdown
		// cannot drain them until their channels close. Sink queues get one
		// final delivery attempt per event; failures dead-letter.
		if err := bus.Close(); err != nil {
			logger.Warn("closing alert bus", "err", err)
		}
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
