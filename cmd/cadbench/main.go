// Command cadbench regenerates the paper's tables and figures on the
// simulated dataset recipes.
//
// Usage:
//
//	cadbench -exp table3            # one experiment
//	cadbench -exp all -scale 0.5    # everything, half-size datasets
//
// Experiments: table3 table4 table5 table6 table7 table8 fig4 fig5 fig6
// fig7 fig8 ablation all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cad/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table3..table8, fig4..fig8, ablation, all)")
		scale   = flag.Float64("scale", 1.0, "dataset length scale factor")
		repeats = flag.Int("repeats", 3, "repeats for randomized methods (paper: 10)")
		smd     = flag.Int("smd", 28, "number of SMD subsets (paper: 28)")
		grid    = flag.Int("grid", 200, "F1 threshold grid steps (paper: 1000)")
		methods = flag.String("methods", "", "comma-separated method subset (default: all ten)")
		maxIS   = flag.Int("maxis", 5, "largest IS dataset for fig6 (1..5)")
	)
	flag.Parse()

	opts := experiments.Options{Scale: *scale, Repeats: *repeats, GridSteps: *grid}
	if *methods != "" {
		for _, m := range strings.Split(*methods, ",") {
			opts.Methods = append(opts.Methods, experiments.MethodID(strings.TrimSpace(m)))
		}
	}
	suite := experiments.NewSuite(opts)
	suite.SMDCount = *smd

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table3", "table4", "table5", "table6", "table7", "table8",
			"fig4", "fig5", "fig6", "fig7", "fig8", "ablation"}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := run(suite, id, *maxIS)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cadbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, time.Since(start).Seconds(), out)
	}
}

type renderer interface{ Render() string }

func run(s *experiments.Suite, id string, maxIS int) (string, error) {
	var (
		r   renderer
		err error
	)
	switch id {
	case "table3":
		r, err = s.TableIII()
	case "table4":
		r, err = s.TableIV()
	case "table5":
		r, err = s.TableV()
	case "table6":
		r, err = s.TableVI()
	case "table7":
		r, err = s.TableVII()
	case "table8":
		r, err = s.TableVIII()
	case "fig4":
		r, err = s.Figure4()
	case "fig5":
		r, err = s.Figure5()
	case "fig6":
		r, err = s.Figure6(maxIS)
	case "fig7":
		r, err = s.Figure7(5) // SMD 1_6, as in the paper's case study
	case "fig8":
		r, err = s.Figure8()
	case "ablation":
		r, err = s.Ablation()
	default:
		return "", fmt.Errorf("unknown experiment %q", id)
	}
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}
