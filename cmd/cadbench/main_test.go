package main

import (
	"strings"
	"testing"

	"cad/internal/experiments"
)

func tinySuite() *experiments.Suite {
	s := experiments.NewSuite(experiments.Options{
		Scale:     0.3,
		Repeats:   1,
		GridSteps: 50,
		Methods:   []experiments.MethodID{experiments.MCAD, experiments.MECOD},
	})
	s.SMDCount = 2
	return s
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := run(tinySuite(), "nope", 5); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunEachExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pass is expensive")
	}
	s := tinySuite()
	// table3 first warms the headline cache; the rest reuse it.
	for _, id := range []string{"table3", "table4", "table5", "table6", "table7", "table8", "fig4", "fig5", "fig7", "ablation"} {
		out, err := run(s, id, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if strings.TrimSpace(out) == "" {
			t.Errorf("%s produced empty output", id)
		}
	}
	// fig6 with the smallest IS only.
	out, err := run(s, "fig6", 1)
	if err != nil {
		t.Fatalf("fig6: %v", err)
	}
	if !strings.Contains(out, "IS-1") {
		t.Errorf("fig6 output:\n%s", out)
	}
}
