// Command datagen generates the simulated benchmark datasets (PSM-, SMD-,
// SWaT-, IS-like; see internal/dataset) as CSV files, plus a labels CSV
// marking the injected anomalies.
//
// Usage:
//
//	datagen -recipe PSM -out ./data           # writes PSM_train.csv,
//	                                          # PSM_test.csv, PSM_labels.csv
//	datagen -recipe SMD-3 -scale 0.5 -out .   # SMD subset 3, half size
//	datagen -recipe IS-2 -out ./data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cad/internal/dataset"
	"cad/internal/simulator"
)

func main() {
	var (
		recipe = flag.String("recipe", "PSM", "PSM, SWaT, SMD-<0..27>, or IS-<1..5>")
		scale  = flag.Float64("scale", 1.0, "length scale factor")
		out    = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := generate(*recipe, *scale, *out); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func lookup(name string) (dataset.Recipe, error) {
	switch {
	case name == "PSM":
		return dataset.PSM(), nil
	case name == "SWaT":
		return dataset.SWaT(), nil
	case strings.HasPrefix(name, "SMD-"):
		i, err := strconv.Atoi(strings.TrimPrefix(name, "SMD-"))
		if err != nil || i < 0 || i >= dataset.SMDSubsets {
			return dataset.Recipe{}, fmt.Errorf("bad SMD subset %q (want SMD-0..SMD-%d)", name, dataset.SMDSubsets-1)
		}
		return dataset.SMD(i), nil
	case strings.HasPrefix(name, "IS-"):
		i, err := strconv.Atoi(strings.TrimPrefix(name, "IS-"))
		if err != nil {
			return dataset.Recipe{}, fmt.Errorf("bad IS index %q", name)
		}
		return dataset.IS(i)
	default:
		return dataset.Recipe{}, fmt.Errorf("unknown recipe %q", name)
	}
}

func generate(name string, scale float64, outDir string) error {
	r, err := lookup(name)
	if err != nil {
		return err
	}
	ds, err := r.Scaled(scale).Build()
	if err != nil {
		return err
	}
	base := strings.ReplaceAll(ds.Name, "/", "_")
	trainPath := filepath.Join(outDir, base+"_train.csv")
	testPath := filepath.Join(outDir, base+"_test.csv")
	labelPath := filepath.Join(outDir, base+"_labels.csv")
	if err := ds.Train.SaveCSV(trainPath); err != nil {
		return err
	}
	if err := ds.Test.SaveCSV(testPath); err != nil {
		return err
	}
	if err := writeLabels(labelPath, ds); err != nil {
		return err
	}
	fmt.Printf("%s: %d sensors, train %d / test %d points, %d anomalies\n",
		ds.Name, ds.Test.Sensors(), ds.Train.Len(), ds.Test.Len(), len(ds.Injections))
	fmt.Printf("wrote %s, %s, %s\n", trainPath, testPath, labelPath)
	return nil
}

// writeLabels writes one row per time point: label (0/1) plus, on anomalous
// points, the kind and affected sensors of the covering injection.
func writeLabels(path string, ds *simulator.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"t", "label", "kind", "sensors"}); err != nil {
		return err
	}
	covering := make([]*simulator.Injection, len(ds.Labels))
	for i := range ds.Injections {
		inj := &ds.Injections[i]
		for t := inj.Start; t < inj.End && t < len(covering); t++ {
			covering[t] = inj
		}
	}
	for t, lab := range ds.Labels {
		rec := []string{strconv.Itoa(t), "0", "", ""}
		if lab && covering[t] != nil {
			rec[1] = "1"
			rec[2] = covering[t].Kind.String()
			parts := make([]string, len(covering[t].Sensors))
			for i, s := range covering[t].Sensors {
				parts[i] = strconv.Itoa(s)
			}
			rec[3] = strings.Join(parts, ";")
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
