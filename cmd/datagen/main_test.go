package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLookup(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"PSM", "PSM", true},
		{"SWaT", "SWaT", true},
		{"SMD-0", "SMD-1_1", true},
		{"SMD-27", "SMD-4_4", true},
		{"SMD-28", "", false},
		{"SMD-x", "", false},
		{"IS-1", "IS-1", true},
		{"IS-5", "IS-5", true},
		{"IS-9", "", false},
		{"IS-x", "", false},
		{"nope", "", false},
	}
	for _, c := range cases {
		r, err := lookup(c.in)
		if c.ok != (err == nil) {
			t.Errorf("lookup(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && r.Name != c.want {
			t.Errorf("lookup(%q).Name = %q, want %q", c.in, r.Name, c.want)
		}
	}
}

func TestGenerateWritesFiles(t *testing.T) {
	dir := t.TempDir()
	if err := generate("SMD-0", 0.3, dir); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"_train.csv", "_test.csv", "_labels.csv"} {
		path := filepath.Join(dir, "SMD-1_1"+suffix)
		if _, err := os.Stat(path); err != nil {
			t.Errorf("missing %s: %v", path, err)
		}
	}
	// Labels file has the right header and at least one anomalous row
	// carrying kind + sensors.
	f, err := os.Open(filepath.Join(dir, "SMD-1_1_labels.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 || strings.Join(recs[0], ",") != "t,label,kind,sensors" {
		t.Fatalf("labels header = %v", recs[0])
	}
	anomalous := 0
	for _, rec := range recs[1:] {
		if rec[1] == "1" {
			anomalous++
			if rec[2] == "" || rec[3] == "" {
				t.Fatalf("anomalous row missing kind/sensors: %v", rec)
			}
		}
	}
	if anomalous == 0 {
		t.Error("no anomalous rows written")
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := generate("nope", 1, t.TempDir()); err == nil {
		t.Error("unknown recipe should error")
	}
	if err := generate("PSM", 0.3, "/nonexistent-dir/xyz"); err == nil {
		t.Error("unwritable dir should error")
	}
}
