// Package cad is a correlation-analysis-based anomaly detector for
// sensor-based multivariate time series, reproducing "A Stitch in Time
// Saves Nine: Enabling Early Anomaly Detection with Correlation Analysis"
// (ICDE 2023).
//
// CAD converts the series into a sequence of Time-Series Graphs (TSGs):
// per-window correlation k-NN graphs over the sensors. Louvain community
// detection partitions each TSG; co-appearance mining tracks how
// consistently each sensor stays with its community peers; and a 3σ rule on
// the per-round count of outlier transitions flags abnormal rounds together
// with the affected sensors — typically much earlier than magnitude-based
// detectors, because correlations break before readings visibly deviate.
//
// Quick start:
//
//	series, _ := cad.LoadCSV("readings.csv")       // sensors as columns
//	det, _ := cad.NewDetector(series.Sensors(), cad.DefaultConfig(series.Sensors(), series.Len()))
//	_ = det.WarmUp(history)                        // optional but recommended
//	result, _ := det.Detect(series)
//	for _, a := range result.Anomalies {
//	    fmt.Printf("anomaly at [%d,%d): sensors %v\n", a.Start, a.End, a.Sensors)
//	}
//
// For streaming ingestion, wrap the detector in a Streamer and Push one
// column of readings at a time. The package also exports the paper's
// Delay-aware Evaluation scheme (DPA, Ahead/Miss) under the Eval* names.
package cad

import (
	"io"

	"cad/internal/core"
	"cad/internal/eval"
	"cad/internal/mts"
	"cad/internal/viz"
)

// Series is a multivariate time series: one row per sensor, one column per
// time point.
type Series = mts.MTS

// Windowing is the sliding window (w) and step (s) configuration.
type Windowing = mts.Windowing

// NewSeries builds a Series from rows (one slice per sensor). names may be
// nil for default names s1..sn.
func NewSeries(rows [][]float64, names []string) (*Series, error) { return mts.New(rows, names) }

// ZeroSeries allocates an n×length zero-filled series.
func ZeroSeries(n, length int) *Series { return mts.Zeros(n, length) }

// LoadCSV reads a sensors-as-columns CSV file into a Series.
func LoadCSV(path string) (*Series, error) { return mts.LoadCSV(path) }

// SuggestWindowing returns the paper-recommended windowing for a series of
// the given length (w ≈ 0.02·|T|, s ≈ 0.015·w).
func SuggestWindowing(length int) Windowing { return mts.SuggestWindowing(length) }

// Config parameterizes the detector; see DefaultConfig for the recommended
// values.
type Config = core.Config

// RCMode selects how the ratio of co-appearance number accumulates across
// rounds.
type RCMode = core.RCMode

// RC accumulation modes.
const (
	RCSliding     = core.RCSliding
	RCCumulative  = core.RCCumulative
	RCExponential = core.RCExponential
)

// ParseRCMode maps a mode name ("sliding", "cumulative", "exponential") back
// to the RCMode, the inverse of RCMode.String. Config JSON files and API
// bodies spell modes by name.
func ParseRCMode(s string) (RCMode, error) { return core.ParseRCMode(s) }

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = core.ErrBadConfig

// DefaultConfig returns the paper-recommended configuration for n sensors
// and a series of the given length.
func DefaultConfig(n, length int) Config { return core.DefaultConfig(n, length) }

// Detector runs CAD over batches of data. It is stateful (warm-up and
// streaming state persist) and not safe for concurrent use.
type Detector = core.Detector

// StageTimings breaks one detection round into its pipeline stages.
type StageTimings = core.StageTimings

// RoundObserver receives telemetry after every processed round (warm-up
// included); see WithObserver. Implementations must be fast — they run
// synchronously on the detection path.
type RoundObserver = core.RoundObserver

// Option configures optional detector behavior at construction, so callers
// never need the internal setter API.
type Option func(*Detector)

// WithObserver attaches a per-round telemetry observer to the detector
// (metrics, tracing, progress reporting). The observer is called
// synchronously after every processed round.
func WithObserver(o RoundObserver) Option {
	return func(d *Detector) { d.SetObserver(o) }
}

// NewDetector validates cfg for n sensors and returns a fresh detector.
// Options, when given, configure optional behavior such as WithObserver;
// the two-argument form keeps working unchanged.
func NewDetector(n int, cfg Config, opts ...Option) (*Detector, error) {
	det, err := core.NewDetector(n, cfg)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(det)
	}
	return det, nil
}

// LoadDetector restores a detector from a Detector.SaveState snapshot; it
// resumes exactly where the saved detector stopped (no repeated warm-up).
func LoadDetector(r io.Reader) (*Detector, error) { return core.LoadDetector(r) }

// Anomaly is one detected anomaly: its abnormal sensors, round range, time
// span, and peak deviation score.
type Anomaly = core.Anomaly

// Result is the output of Detector.Detect.
type Result = core.Result

// RoundReport describes one processed round.
type RoundReport = core.RoundReport

// Streamer feeds a Detector one time point at a time.
type Streamer = core.Streamer

// NewStreamer wraps det for streaming ingestion.
func NewStreamer(det *Detector) *Streamer { return core.NewStreamer(det) }

// LoadStreamer restores a streamer from a Streamer.SaveState snapshot,
// including the in-flight window, so ingestion resumes mid-window with
// bit-identical round reports.
func LoadStreamer(r io.Reader) (*Streamer, error) { return core.LoadStreamer(r) }

// Adjuster selects the prediction adjustment of the evaluation scheme.
type Adjuster = eval.Adjuster

// Evaluation adjusters: None (raw), PA (classic point adjustment), and DPA
// (the paper's delay-point adjustment, which penalizes late detection).
const (
	EvalNone = eval.None
	EvalPA   = eval.PA
	EvalDPA  = eval.DPA
)

// EvalF1 scores binary predictions against ground-truth labels under the
// adjuster.
func EvalF1(pred, truth []bool, a Adjuster) (float64, error) { return eval.BinaryF1(pred, truth, a) }

// RelativeResult carries the DaE relative measures of one method against
// another.
type RelativeResult = eval.RelativeResult

// EvalAheadMiss computes the paper's Ahead and Miss measures of method M1's
// predictions against method M2's on the same ground truth.
func EvalAheadMiss(pred1, pred2, truth []bool) (RelativeResult, error) {
	return eval.AheadMiss(pred1, pred2, truth)
}

// EvalDetectionDelay returns, per ground-truth anomaly, the number of time
// points between onset and the first alarm (−1 when missed).
func EvalDetectionDelay(pred, truth []bool) ([]int, error) {
	return eval.DetectionDelay(pred, truth)
}

// WriteHTMLReport renders a self-contained HTML report of a detection run:
// the deviation-score timeline with detected (and optional ground-truth)
// spans, the anomaly table with root-cause-ordered sensors, and sparklines
// of the implicated sensors. truth may be nil.
func WriteHTMLReport(w io.Writer, title string, series *Series, res *Result, truth []bool, cfg Config) error {
	return viz.HTMLReport(w, title, series, res, truth, cfg)
}
