// Package viz renders detection artifacts for human review: Graphviz DOT
// exports of Time-Series Graphs with their communities, SVG score
// timelines with anomaly shading, per-sensor sparkline small-multiples,
// and a self-contained HTML report combining them.
//
// Colors follow a validated brand-neutral palette: categorical hues are
// assigned to communities in a fixed order (never cycled — communities
// beyond the eighth fold into a muted "other" gray), detected anomaly
// bands use the reserved critical status color, ground-truth bands the
// warning color, and all chrome (axes, grid, labels) stays in ink tones
// so color carries identity only.
package viz

// Categorical palette, light mode, in the fixed assignment order. The
// ordering maximizes adjacent-pair colorblind separation; do not reorder.
var categorical = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

// Chrome and status roles (light surface).
const (
	colorSurface   = "#fcfcfb"
	colorPrimary   = "#0b0b0b"
	colorSecondary = "#52514e"
	colorMuted     = "#898781"
	colorGrid      = "#e1e0d9"
	colorBaseline  = "#c3c2b7"
	colorCritical  = "#d03b3b" // detected anomaly bands
	colorWarning   = "#fab219" // ground-truth bands
	colorOther     = "#898781" // communities beyond the categorical slots
)

// CommunityColor returns the fill for community c: one of the eight fixed
// categorical slots, or the muted "other" gray beyond them.
func CommunityColor(c int) string {
	if c >= 0 && c < len(categorical) {
		return categorical[c]
	}
	return colorOther
}
