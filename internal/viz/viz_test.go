package viz

import (
	"bytes"
	"encoding/xml"
	"math"
	"math/rand"
	"strings"
	"testing"

	"cad/internal/core"
	"cad/internal/eval"
	"cad/internal/louvain"
	"cad/internal/mts"
	"cad/internal/tsg"
)

func TestCommunityColor(t *testing.T) {
	if CommunityColor(0) != "#2a78d6" {
		t.Errorf("slot 0 = %s", CommunityColor(0))
	}
	seen := map[string]bool{}
	for c := 0; c < 8; c++ {
		col := CommunityColor(c)
		if seen[col] {
			t.Errorf("duplicate categorical color %s", col)
		}
		seen[col] = true
	}
	// Beyond the palette: folds into the muted other, never cycles.
	if CommunityColor(8) != colorOther || CommunityColor(99) != colorOther {
		t.Error("overflow communities must use the other-gray")
	}
	if CommunityColor(-1) != colorOther {
		t.Error("invalid community must use the other-gray")
	}
}

func TestWriteDOT(t *testing.T) {
	g := tsg.NewGraph(4)
	g.SetEdge(0, 1, 0.9)
	g.SetEdge(2, 3, -0.8)
	p := louvain.Partition{Of: []int{0, 0, 1, 1}, Count: 2}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, p, []string{"pump", "valve", "fan", "belt"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph tsg {", `label="pump"`, `label="belt"`, "n0 -- n1", "n2 -- n3", "style=dashed", CommunityColor(0), CommunityColor(1)} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Each edge exactly once.
	if strings.Count(out, " -- ") != 2 {
		t.Errorf("edge count wrong:\n%s", out)
	}
}

func validXML(t *testing.T, svg []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(svg))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid SVG XML: %v\n%s", err, svg)
		}
	}
}

func TestScoreTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 200)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	scores[100] = 6
	detected := []eval.Segment{{Start: 95, End: 110}}
	truth := []eval.Segment{{Start: 90, End: 112}}
	var buf bytes.Buffer
	if err := ScoreTimeline(&buf, scores, detected, truth, 3, ChartConfig{Title: "scores"}); err != nil {
		t.Fatal(err)
	}
	validXML(t, buf.Bytes())
	out := buf.String()
	for _, want := range []string{colorCritical, colorWarning, "stroke-dasharray", "detected [95,110)", "ground truth [90,112)", categorical[0]} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if err := ScoreTimeline(&buf, nil, nil, nil, 3, ChartConfig{}); err == nil {
		t.Error("empty scores should error")
	}
	// Single-point series must not divide by zero.
	buf.Reset()
	if err := ScoreTimeline(&buf, []float64{1}, nil, nil, 0, ChartConfig{}); err != nil {
		t.Fatal(err)
	}
	validXML(t, buf.Bytes())
}

func TestScoreTimelineNaN(t *testing.T) {
	scores := []float64{1, math.NaN(), 2, math.Inf(1), 3}
	var buf bytes.Buffer
	if err := ScoreTimeline(&buf, scores, nil, nil, 0, ChartConfig{}); err != nil {
		t.Fatal(err)
	}
	validXML(t, buf.Bytes())
	if strings.Contains(buf.String(), "NaN") {
		t.Error("NaN leaked into the SVG")
	}
}

func TestSparklines(t *testing.T) {
	rows := [][]float64{
		{1, 2, 3, 2, 1, 2, 3, 2},
		{5, 5, 5, 5, 5, 5, 5, 5}, // constant row: no division by zero
		{0, -1, 0, 1, 0, -1, 0, 1},
	}
	var buf bytes.Buffer
	err := Sparklines(&buf, rows, []string{"a", "b", "c"}, map[int]bool{0: true},
		[]eval.Segment{{Start: 2, End: 5}}, ChartConfig{Title: "sensors"})
	if err != nil {
		t.Fatal(err)
	}
	validXML(t, buf.Bytes())
	out := buf.String()
	if !strings.Contains(out, ">a</text>") || !strings.Contains(out, ">c</text>") {
		t.Errorf("sparkline labels missing:\n%s", out)
	}
	if !strings.Contains(out, categorical[0]) {
		t.Error("highlight color missing")
	}
	if err := Sparklines(&buf, nil, nil, nil, nil, ChartConfig{}); err == nil {
		t.Error("empty rows should error")
	}
}

func TestEscape(t *testing.T) {
	if escape(`<a&"b">`) != "&lt;a&amp;&quot;b&quot;&gt;" {
		t.Errorf("escape = %q", escape(`<a&"b">`))
	}
}

func TestHTMLReport(t *testing.T) {
	// Build a small real detection to feed the report.
	rng := rand.New(rand.NewSource(2))
	series := mts.Zeros(8, 500)
	for tt := 0; tt < 500; tt++ {
		a := math.Sin(2 * math.Pi * float64(tt) / 25)
		b := math.Cos(2 * math.Pi * float64(tt) / 40)
		for i := 0; i < 8; i++ {
			latent := a
			if i >= 4 {
				latent = b
			}
			v := latent*(1+0.2*float64(i%4)) + 0.05*rng.NormFloat64()
			if i <= 1 && tt >= 250 && tt < 360 {
				v = rng.NormFloat64()
			}
			series.Set(i, tt, v)
		}
	}
	cfg := core.Config{
		Window: mts.Windowing{W: 40, S: 4}, K: 3, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8, RCMode: core.RCSliding, RCHorizon: 5,
	}
	det, err := core.NewDetector(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(series)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]bool, 500)
	for tt := 250; tt < 360; tt++ {
		truth[tt] = true
	}
	var buf bytes.Buffer
	if err := HTMLReport(&buf, "unit test", series, res, truth, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "unit test", "Deviation score", "Detected anomalies", "<svg"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(res.Anomalies) > 0 && !strings.Contains(out, "Implicated sensors") {
		t.Error("report missing sparkline section despite anomalies")
	}

	// Empty result renders the "none" row.
	empty := &core.Result{PointScores: make([]float64, 500), Rounds: make([]core.RoundReport, 10)}
	buf.Reset()
	if err := HTMLReport(&buf, "empty", series, empty, nil, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "none") {
		t.Error("empty report missing the none row")
	}
}
