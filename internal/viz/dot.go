package viz

import (
	"fmt"
	"io"
	"strings"

	"cad/internal/louvain"
	"cad/internal/tsg"
)

// WriteDOT renders the TSG with its community partition as a Graphviz DOT
// graph: one node per sensor filled with its community's color, one edge
// per correlation link labeled with the weight (negative correlations are
// dashed). names may be nil for numeric labels.
func WriteDOT(w io.Writer, g *tsg.Graph, p louvain.Partition, names []string) error {
	var b strings.Builder
	b.WriteString("graph tsg {\n")
	b.WriteString("  layout=neato;\n  overlap=false;\n")
	b.WriteString(fmt.Sprintf("  bgcolor=%q;\n", colorSurface))
	b.WriteString(fmt.Sprintf("  node [style=filled, fontname=\"sans-serif\", fontcolor=%q];\n", colorSurface))
	b.WriteString(fmt.Sprintf("  edge [color=%q, fontcolor=%q, fontsize=9];\n", colorBaseline, colorMuted))
	for v := 0; v < g.N(); v++ {
		label := fmt.Sprintf("s%d", v+1)
		if names != nil && v < len(names) {
			label = names[v]
		}
		comm := -1
		if v < len(p.Of) {
			comm = p.Of[v]
		}
		b.WriteString(fmt.Sprintf("  n%d [label=%q, fillcolor=%q];\n", v, label, CommunityColor(comm)))
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.NeighborsSorted(u) {
			if v < u {
				continue // each undirected edge once
			}
			wt, _ := g.Weight(u, v)
			style := ""
			if wt < 0 {
				style = ", style=dashed"
			}
			b.WriteString(fmt.Sprintf("  n%d -- n%d [label=\"%.2f\"%s];\n", u, v, wt, style))
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
