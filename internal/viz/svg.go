package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cad/internal/eval"
)

// ChartConfig sizes an SVG chart.
type ChartConfig struct {
	// Width and Height in pixels (defaults 960×240).
	Width, Height int
	// Title drawn above the plot; for a single series the title names it,
	// so no legend box is needed.
	Title string
}

func (c *ChartConfig) fill() {
	if c.Width <= 0 {
		c.Width = 960
	}
	if c.Height <= 0 {
		c.Height = 240
	}
}

const (
	padLeft   = 48
	padRight  = 12
	padTop    = 28
	padBottom = 24
)

// ScoreTimeline renders the per-point anomaly score as a 2px line with
// shaded spans: detected anomalies in the critical status color, ground
// truth (when given) in the warning color, and an optional dashed
// threshold rule. Each shaded band carries a native SVG <title> tooltip.
func ScoreTimeline(w io.Writer, scores []float64, detected, truth []eval.Segment, threshold float64, cfg ChartConfig) error {
	cfg.fill()
	if len(scores) == 0 {
		return fmt.Errorf("viz: no scores")
	}
	plotW := float64(cfg.Width - padLeft - padRight)
	plotH := float64(cfg.Height - padTop - padBottom)
	maxY := threshold
	for _, s := range scores {
		if !math.IsNaN(s) && !math.IsInf(s, 0) && s > maxY {
			maxY = s
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.08 // headroom
	x := func(t int) float64 { return float64(padLeft) + plotW*float64(t)/float64(len(scores)-1) }
	y := func(v float64) float64 { return float64(padTop) + plotH*(1-v/maxY) }
	if len(scores) == 1 {
		x = func(int) float64 { return float64(padLeft) }
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label=%q>`,
		cfg.Width, cfg.Height, cfg.Width, cfg.Height, cfg.Title)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, cfg.Width, cfg.Height, colorSurface)
	if cfg.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="18" font-family="system-ui,sans-serif" font-size="13" fill="%s">%s</text>`,
			padLeft, colorPrimary, escape(cfg.Title))
	}
	// Shaded bands first (under the line). Ground truth below detected.
	for _, seg := range truth {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.18"><title>ground truth [%d,%d)</title></rect>`,
			x(seg.Start), padTop, x(clampIdx(seg.End, len(scores)))-x(seg.Start), plotH, colorWarning, seg.Start, seg.End)
	}
	for _, seg := range detected {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.22"><title>detected [%d,%d)</title></rect>`,
			x(seg.Start), padTop, x(clampIdx(seg.End, len(scores)))-x(seg.Start), plotH, colorCritical, seg.Start, seg.End)
	}
	// Recessive grid: 4 hairlines + labels in muted ink.
	for i := 0; i <= 4; i++ {
		v := maxY * float64(i) / 4
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			padLeft, y(v), cfg.Width-padRight, y(v), colorGrid)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="system-ui,sans-serif" font-size="10" fill="%s" text-anchor="end" style="font-variant-numeric:tabular-nums">%.1f</text>`,
			padLeft-6, y(v)+3, colorMuted, v)
	}
	// Threshold rule.
	if threshold > 0 {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="4 3"/>`,
			padLeft, y(threshold), cfg.Width-padRight, y(threshold), colorSecondary)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="system-ui,sans-serif" font-size="10" fill="%s">η</text>`,
			cfg.Width-padRight-12, y(threshold)-4, colorSecondary)
	}
	// Baseline.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`,
		padLeft, y(0), cfg.Width-padRight, y(0), colorBaseline)
	// The score line, 2px, series slot 1.
	fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`,
		linePath(scores, x, y), categorical[0])
	b.WriteString(`</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// Sparklines renders one small-multiple row per sensor: a 2px line on a
// shared time axis, highlighted sensors in the first categorical hue and
// the rest in muted ink, with the sensor name as a direct label. Detected
// spans shade every row so the anomaly context lines up across sensors.
func Sparklines(w io.Writer, rows [][]float64, names []string, highlight map[int]bool, detected []eval.Segment, cfg ChartConfig) error {
	cfg.fill()
	if len(rows) == 0 || len(rows[0]) == 0 {
		return fmt.Errorf("viz: no rows")
	}
	const rowH = 34
	const labelW = 96
	height := padTop + rowH*len(rows) + 8
	plotW := float64(cfg.Width - labelW - padRight)
	length := len(rows[0])
	x := func(t int) float64 { return float64(labelW) + plotW*float64(t)/float64(length-1) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label=%q>`,
		cfg.Width, height, cfg.Width, height, cfg.Title)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, cfg.Width, height, colorSurface)
	if cfg.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="18" font-family="system-ui,sans-serif" font-size="13" fill="%s">%s</text>`,
			labelW, colorPrimary, escape(cfg.Title))
	}
	for _, seg := range detected {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="0.14"><title>detected [%d,%d)</title></rect>`,
			x(seg.Start), padTop, x(clampIdx(seg.End, length))-x(seg.Start), rowH*len(rows), colorCritical, seg.Start, seg.End)
	}
	for i, row := range rows {
		top := float64(padTop + i*rowH)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if !(hi > lo) { // constant or all-NaN rows flatten to mid-row
			lo, hi = lo-0.5, lo+0.5
			if math.IsInf(lo, 0) {
				lo, hi = 0, 1
			}
		}
		y := func(v float64) float64 { return top + 4 + float64(rowH-10)*(1-(v-lo)/(hi-lo)) }
		color := colorMuted
		ink := colorSecondary
		if highlight[i] {
			color = categorical[0]
			ink = colorPrimary
		}
		name := fmt.Sprintf("s%d", i+1)
		if names != nil && i < len(names) {
			name = names[i]
		}
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="system-ui,sans-serif" font-size="11" fill="%s" text-anchor="end">%s</text>`,
			labelW-8, top+float64(rowH)/2+4, ink, escape(name))
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"><title>%s</title></path>`,
			linePath(row, x, y), color, escape(name))
	}
	b.WriteString(`</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// linePath builds the SVG path of a series, skipping NaNs.
func linePath(vals []float64, x func(int) float64, y func(float64) float64) string {
	var b strings.Builder
	pen := false
	for t, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			pen = false
			continue
		}
		if pen {
			fmt.Fprintf(&b, "L%.1f %.1f", x(t), y(v))
		} else {
			fmt.Fprintf(&b, "M%.1f %.1f", x(t), y(v))
			pen = true
		}
	}
	return b.String()
}

func clampIdx(i, n int) int {
	if i >= n {
		return n - 1
	}
	if i < 0 {
		return 0
	}
	return i
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
