package norma

import (
	"math"
	"math/rand"
	"testing"
)

// periodic builds a sine series with an anomalous flat (or noisy) segment.
func periodic(seed int64, length, anomFrom, anomTo int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, length)
	for t := range x {
		x[t] = math.Sin(2*math.Pi*float64(t)/25) + 0.05*rng.NormFloat64()
		if t >= anomFrom && t < anomTo {
			x[t] = 0.8 * rng.NormFloat64()
		}
	}
	return x
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestNormASeparates(t *testing.T) {
	train := periodic(1, 1200, -1, -1)
	test := periodic(2, 1200, 500, 600)
	n := New(3)
	if err := n.FitSeries(train); err != nil {
		t.Fatal(err)
	}
	scores, err := n.ScoreSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(test) {
		t.Fatalf("scores len %d", len(scores))
	}
	anom := meanOver(scores, 510, 590)
	norm := meanOver(scores, 100, 400)
	if anom <= norm*1.2 {
		t.Errorf("anomaly %v vs normal %v: not separated", anom, norm)
	}
}

func TestNormASelfFit(t *testing.T) {
	test := periodic(4, 1500, 700, 780)
	n := New(5)
	scores, err := n.ScoreSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 710, 770) <= meanOver(scores, 100, 600) {
		t.Error("self-fit NormA failed to separate")
	}
}

func TestNormAExplicitPatternLen(t *testing.T) {
	train := periodic(6, 800, -1, -1)
	n := New(7)
	n.PatternLen = 50
	if err := n.FitSeries(train); err != nil {
		t.Fatal(err)
	}
	if len(n.patterns) == 0 || len(n.patterns[0]) != 50 {
		t.Errorf("pattern length %d, want 50", len(n.patterns[0]))
	}
}

func TestNormAErrors(t *testing.T) {
	n := New(1)
	n.PatternLen = 64
	if err := n.FitSeries(make([]float64, 10)); err == nil {
		t.Error("too-short series should error")
	}
	if n.Name() != "NormA" || n.Deterministic() {
		t.Error("metadata wrong")
	}
}

func TestNormAWeightsSumToOne(t *testing.T) {
	train := periodic(8, 1000, -1, -1)
	n := New(9)
	if err := n.FitSeries(train); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range n.weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
}
