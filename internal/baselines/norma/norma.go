// Package norma implements a NormA-style univariate subsequence anomaly
// detector (Boniol et al., VLDBJ 2021): a normal model — a weighted set of
// recurring patterns — is built by clustering z-normalized training
// subsequences; each test subsequence is scored by its weighted distance to
// the normal patterns, so subsequences unlike any frequent behavior score
// high. The pattern length is estimated from the autocorrelation function
// when not set, as the paper's experimental setup describes.
package norma

import (
	"fmt"

	"cad/internal/baselines"
	"cad/internal/fft"
	"cad/internal/kshape"
	"cad/internal/stats"
)

// NormA is the detector for one univariate series. Use New.
type NormA struct {
	// PatternLen ℓ; 0 means estimate from the ACF at fit/score time.
	PatternLen int
	// Clusters in the normal model (default 4).
	Clusters int
	// Stride between extracted subsequences (default ℓ/4).
	Stride int
	// Seed drives clustering initialization.
	Seed int64

	patterns [][]float64
	weights  []float64
	fitted   bool
}

// New returns a NormA detector with the given seed.
func New(seed int64) *NormA { return &NormA{Clusters: 4, Seed: seed} }

// Name implements baselines.Univariate.
func (n *NormA) Name() string { return "NormA" }

// Deterministic implements baselines.Univariate: clustering initialization
// is seed-dependent, so independent repeats differ.
func (n *NormA) Deterministic() bool { return false }

func (n *NormA) patternLen(x []float64) int {
	if n.PatternLen > 0 {
		return n.PatternLen
	}
	maxLag := len(x) / 4
	if maxLag > 200 {
		maxLag = 200
	}
	p := stats.DominantPeriod(x, 4, maxLag, 0.2, 20)
	// The paper sets the normal-model length to 4·ℓ_ACF; cap to the data.
	l := 4 * p
	if l > len(x)/4 {
		l = len(x) / 4
	}
	if l < 8 {
		l = 8
	}
	return l
}

func subsequences(x []float64, l, stride int) [][]float64 {
	if l > len(x) {
		return nil
	}
	var out [][]float64
	for i := 0; i+l <= len(x); i += stride {
		out = append(out, x[i:i+l])
	}
	return out
}

// FitSeries builds the normal model from a training series.
func (n *NormA) FitSeries(x []float64) error {
	l := n.patternLen(x)
	stride := n.Stride
	if stride <= 0 {
		stride = l / 4
		if stride < 1 {
			stride = 1
		}
	}
	subs := subsequences(x, l, stride)
	if len(subs) < 2 {
		return fmt.Errorf("%w: series of %d points yields %d subsequences of length %d", baselines.ErrBadInput, len(x), len(subs), l)
	}
	k := n.Clusters
	if k > len(subs) {
		k = len(subs)
	}
	res, err := kshape.Cluster(subs, k, 10, n.Seed)
	if err != nil {
		return fmt.Errorf("norma: %w", err)
	}
	total := float64(len(subs))
	n.patterns = n.patterns[:0]
	n.weights = n.weights[:0]
	for c, size := range res.Sizes {
		if size == 0 {
			continue
		}
		n.patterns = append(n.patterns, res.Centroids[c])
		n.weights = append(n.weights, float64(size)/total)
	}
	n.fitted = true
	return nil
}

// ScoreSeries assigns each point the weighted distance of its covering
// subsequences to the normal model. Without a prior fit the model is built
// from the scored series itself (anomalies are a minority, so the frequent
// patterns still dominate the model).
func (n *NormA) ScoreSeries(x []float64) ([]float64, error) {
	if !n.fitted {
		if err := n.FitSeries(x); err != nil {
			return nil, err
		}
	}
	l := len(n.patterns[0])
	out := make([]float64, len(x))
	counts := make([]float64, len(x))
	if l > len(x) {
		return nil, fmt.Errorf("%w: series shorter than pattern length %d", baselines.ErrBadInput, l)
	}
	stride := l / 8
	if stride < 1 {
		stride = 1
	}
	for i := 0; i+l <= len(x); i += stride {
		sub := stats.ZNormalize(x[i : i+l])
		var score float64
		for p, pat := range n.patterns {
			// Shape-based distance: shift-invariant, so a normal pattern
			// occurring at any phase scores low (plain Euclidean distance
			// would penalize phase offsets as much as genuine anomalies).
			score += n.weights[p] * fft.SBD(pat, sub)
		}
		for t := i; t < i+l; t++ {
			out[t] += score
			counts[t]++
		}
	}
	for t := range out {
		if counts[t] > 0 {
			out[t] /= counts[t]
		}
	}
	// Edge points covered by no subsequence inherit their neighbor.
	for t := 1; t < len(out); t++ {
		if counts[t] == 0 {
			out[t] = out[t-1]
		}
	}
	return out, nil
}
