// Package lof implements the Local Outlier Factor (Breunig et al., SIGMOD
// 2000) over time-point vectors: each time point of the MTS is one point in
// R^n, and its LOF is computed against the training set's density
// structure, matching how the paper deploys LOF on MTS benchmarks (fit on
// training data, score test points).
package lof

import (
	"fmt"
	"math"
	"sort"

	"cad/internal/baselines"
	"cad/internal/mts"
	"cad/internal/stats"
)

// LOF is the detector. Zero value is not usable; use New.
type LOF struct {
	// K is the neighborhood size (MinPts). Defaults to 20.
	K int
	// MaxTrain subsamples the training set to at most this many points to
	// bound the O(N²) fit. Defaults to 1500. Subsampling is deterministic
	// (evenly strided).
	MaxTrain int

	train  [][]float64 // training points (normalized)
	kdist  []float64   // k-distance of each training point
	lrd    []float64   // local reachability density of each training point
	knn    [][]int     // k nearest training neighbors of each training point
	mean   []float64
	std    []float64
	fitted bool
}

// New returns a LOF detector with the given neighborhood size (≤ 0 means
// the default of 20).
func New(k int) *LOF {
	if k <= 0 {
		k = 20
	}
	return &LOF{K: k, MaxTrain: 1500}
}

// Name implements baselines.Detector.
func (l *LOF) Name() string { return "LOF" }

// Deterministic implements baselines.Detector: LOF has no randomness.
func (l *LOF) Deterministic() bool { return true }

func euclid2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Fit builds the k-NN density structure over the training points.
func (l *LOF) Fit(train *mts.MTS) error {
	n, length := train.Sensors(), train.Len()
	if length < l.K+1 {
		return fmt.Errorf("%w: %d training points for k=%d", baselines.ErrBadInput, length, l.K)
	}
	// Per-sensor standardization fitted on train.
	l.mean = make([]float64, n)
	l.std = make([]float64, n)
	for i := 0; i < n; i++ {
		l.mean[i] = stats.Mean(train.Row(i))
		l.std[i] = stats.StdDev(train.Row(i))
		if l.std[i] == 0 {
			l.std[i] = 1
		}
	}
	// Strided subsample.
	m := length
	stride := 1
	if l.MaxTrain > 0 && m > l.MaxTrain {
		stride = (m + l.MaxTrain - 1) / l.MaxTrain
		m = (length + stride - 1) / stride
	}
	l.train = make([][]float64, 0, m)
	for t := 0; t < length; t += stride {
		p := make([]float64, n)
		for i := 0; i < n; i++ {
			p[i] = (train.At(i, t) - l.mean[i]) / l.std[i]
		}
		l.train = append(l.train, p)
	}
	N := len(l.train)
	if N < l.K+1 {
		return fmt.Errorf("%w: %d subsampled points for k=%d", baselines.ErrBadInput, N, l.K)
	}

	// k-NN among training points.
	l.knn = make([][]int, N)
	l.kdist = make([]float64, N)
	type nd struct {
		i int
		d float64
	}
	dists := make([]nd, 0, N-1)
	reachable := make([][]float64, N) // distance to each of the k neighbors
	for i := 0; i < N; i++ {
		dists = dists[:0]
		for j := 0; j < N; j++ {
			if j == i {
				continue
			}
			dists = append(dists, nd{j, euclid2(l.train[i], l.train[j])})
		}
		sort.Slice(dists, func(a, b int) bool {
			if dists[a].d != dists[b].d {
				return dists[a].d < dists[b].d
			}
			return dists[a].i < dists[b].i
		})
		l.knn[i] = make([]int, l.K)
		reachable[i] = make([]float64, l.K)
		for k := 0; k < l.K; k++ {
			l.knn[i][k] = dists[k].i
			reachable[i][k] = math.Sqrt(dists[k].d)
		}
		l.kdist[i] = math.Sqrt(dists[l.K-1].d)
	}
	// Local reachability density.
	l.lrd = make([]float64, N)
	for i := 0; i < N; i++ {
		var sum float64
		for k, j := range l.knn[i] {
			rd := reachable[i][k]
			if l.kdist[j] > rd {
				rd = l.kdist[j]
			}
			sum += rd
		}
		if sum == 0 {
			l.lrd[i] = math.Inf(1)
		} else {
			l.lrd[i] = float64(l.K) / sum
		}
	}
	l.fitted = true
	return nil
}

// Score returns the LOF of each test time point against the training
// density structure.
func (l *LOF) Score(test *mts.MTS) ([]float64, error) {
	if !l.fitted {
		// Unsupervised fallback: fit on the test series itself.
		if err := l.Fit(test); err != nil {
			return nil, err
		}
	}
	if test.Sensors() != len(l.mean) {
		return nil, fmt.Errorf("%w: %d sensors, fitted for %d", baselines.ErrBadInput, test.Sensors(), len(l.mean))
	}
	n := test.Sensors()
	out := make([]float64, test.Len())
	p := make([]float64, n)
	type nd struct {
		i int
		d float64
	}
	N := len(l.train)
	dists := make([]nd, N)
	for t := 0; t < test.Len(); t++ {
		for i := 0; i < n; i++ {
			p[i] = (test.At(i, t) - l.mean[i]) / l.std[i]
		}
		for j := 0; j < N; j++ {
			dists[j] = nd{j, euclid2(p, l.train[j])}
		}
		sort.Slice(dists, func(a, b int) bool {
			if dists[a].d != dists[b].d {
				return dists[a].d < dists[b].d
			}
			return dists[a].i < dists[b].i
		})
		// lrd of the query point.
		var sum float64
		for k := 0; k < l.K; k++ {
			rd := math.Sqrt(dists[k].d)
			j := dists[k].i
			if l.kdist[j] > rd {
				rd = l.kdist[j]
			}
			sum += rd
		}
		var lrdP float64
		if sum == 0 {
			lrdP = math.Inf(1)
		} else {
			lrdP = float64(l.K) / sum
		}
		// LOF = mean(lrd of neighbors) / lrd of point.
		var ratio float64
		for k := 0; k < l.K; k++ {
			nb := l.lrd[dists[k].i]
			switch {
			case math.IsInf(nb, 1) && math.IsInf(lrdP, 1):
				ratio++
			case math.IsInf(lrdP, 1):
				// Denser than anything seen: not an outlier.
			default:
				ratio += nb / lrdP
			}
		}
		out[t] = ratio / float64(l.K)
	}
	return out, nil
}
