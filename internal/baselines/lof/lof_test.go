package lof

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

// gaussTrainTest builds train data from N(0,1) columns in 3 dims and test
// data with an injected far-out segment.
func gaussTrainTest(seed int64, trainLen, testLen, anomFrom, anomTo int) (*mts.MTS, *mts.MTS) {
	rng := rand.New(rand.NewSource(seed))
	train := mts.Zeros(3, trainLen)
	test := mts.Zeros(3, testLen)
	for t := 0; t < trainLen; t++ {
		for i := 0; i < 3; i++ {
			train.Set(i, t, rng.NormFloat64())
		}
	}
	for t := 0; t < testLen; t++ {
		for i := 0; i < 3; i++ {
			v := rng.NormFloat64()
			if t >= anomFrom && t < anomTo {
				v += 8
			}
			test.Set(i, t, v)
		}
	}
	return train, test
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestLOFSeparatesOutliers(t *testing.T) {
	train, test := gaussTrainTest(1, 400, 200, 80, 100)
	l := New(10)
	if err := l.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := l.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 200 {
		t.Fatalf("scores len %d", len(scores))
	}
	anom := meanOver(scores, 80, 100)
	norm := meanOver(scores, 0, 80)
	if anom < 2*norm {
		t.Errorf("anomalous LOF %v vs normal %v: not separated", anom, norm)
	}
	for i, s := range scores {
		if math.IsNaN(s) {
			t.Fatalf("NaN score at %d", i)
		}
	}
}

func TestLOFUnfittedFallsBack(t *testing.T) {
	// Keep the injected cluster smaller than k so its points cannot form
	// their own dense neighborhood (a known LOF failure mode).
	_, test := gaussTrainTest(2, 0, 300, 100, 106)
	l := New(10)
	scores, err := l.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 100, 106) <= meanOver(scores, 0, 100) {
		t.Error("self-fit LOF failed to rank the outliers higher")
	}
}

func TestLOFErrors(t *testing.T) {
	l := New(10)
	short := mts.Zeros(2, 5)
	if err := l.Fit(short); err == nil {
		t.Error("short train should error")
	}
	train, _ := gaussTrainTest(3, 100, 0, 0, 0)
	if err := l.Fit(train); err != nil {
		t.Fatal(err)
	}
	wrong := mts.Zeros(7, 50)
	if _, err := l.Score(wrong); err == nil {
		t.Error("sensor mismatch should error")
	}
}

func TestLOFDeterministic(t *testing.T) {
	train, test := gaussTrainTest(4, 200, 100, 40, 50)
	run := func() []float64 {
		l := New(8)
		if err := l.Fit(train); err != nil {
			t.Fatal(err)
		}
		s, err := l.Score(test)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	if !New(8).Deterministic() {
		t.Error("LOF should report deterministic")
	}
	if New(0).K != 20 {
		t.Error("default k")
	}
	if New(8).Name() != "LOF" {
		t.Error("name")
	}
}

func TestLOFSubsampling(t *testing.T) {
	train, test := gaussTrainTest(5, 2000, 100, 40, 60)
	l := New(10)
	l.MaxTrain = 300
	if err := l.Fit(train); err != nil {
		t.Fatal(err)
	}
	if len(l.train) > 334 { // ceil(2000/ceil(2000/300)) bounded near MaxTrain
		t.Errorf("subsample too large: %d", len(l.train))
	}
	scores, err := l.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 40, 60) <= meanOver(scores, 0, 40) {
		t.Error("subsampled LOF lost separation")
	}
}

func TestLOFInliersNearOne(t *testing.T) {
	train, test := gaussTrainTest(6, 500, 100, 1000, 1000) // no anomaly
	l := New(15)
	if err := l.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, _ := l.Score(test)
	m := meanOver(scores, 0, 100)
	if m < 0.7 || m > 1.6 {
		t.Errorf("inlier mean LOF = %v, want ≈ 1", m)
	}
}
