// Package iforest implements Isolation Forest (Liu et al., ICDM 2008):
// anomalies are isolated by fewer random axis-parallel splits than normal
// points. Trees are built from subsamples of the training time points; a
// test point's score is 2^(−E[h(x)]/c(ψ)), the canonical anomaly score. The
// method is randomized; the paper reports mean±std over 10 repeats, so the
// seed is part of the construction.
package iforest

import (
	"fmt"
	"math"
	"math/rand"

	"cad/internal/baselines"
	"cad/internal/mts"
)

// Forest is the detector. Use New.
type Forest struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// SampleSize ψ per tree (default 256).
	SampleSize int
	// Seed drives subsampling and split choices.
	Seed int64

	trees  []*node
	c      float64 // normalizer c(ψ)
	dims   int
	fitted bool
}

type node struct {
	splitDim   int
	splitValue float64
	left       *node
	right      *node
	size       int // leaf: number of training points
}

// New returns an isolation forest with the given seed.
func New(seed int64) *Forest {
	return &Forest{Trees: 100, SampleSize: 256, Seed: seed}
}

// Name implements baselines.Detector.
func (f *Forest) Name() string { return "IForest" }

// Deterministic implements baselines.Detector: the ensemble depends on the
// seed, so distinct repeats (distinct seeds) differ.
func (f *Forest) Deterministic() bool { return false }

// cFactor is the average path length of an unsuccessful BST search over n
// points.
func cFactor(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649
	return 2*h - 2*float64(n-1)/float64(n)
}

func build(points [][]float64, idx []int, depth, maxDepth int, rng *rand.Rand) *node {
	if len(idx) <= 1 || depth >= maxDepth {
		return &node{size: len(idx), splitDim: -1}
	}
	dims := len(points[0])
	// Pick a dimension with spread; give up after a few tries.
	for try := 0; try < 8; try++ {
		d := rng.Intn(dims)
		lo, hi := points[idx[0]][d], points[idx[0]][d]
		for _, i := range idx[1:] {
			v := points[i][d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		split := lo + rng.Float64()*(hi-lo)
		var l, r []int
		for _, i := range idx {
			if points[i][d] < split {
				l = append(l, i)
			} else {
				r = append(r, i)
			}
		}
		if len(l) == 0 || len(r) == 0 {
			continue
		}
		return &node{
			splitDim:   d,
			splitValue: split,
			left:       build(points, l, depth+1, maxDepth, rng),
			right:      build(points, r, depth+1, maxDepth, rng),
		}
	}
	return &node{size: len(idx), splitDim: -1}
}

func pathLength(n *node, p []float64, depth int) float64 {
	if n.splitDim < 0 {
		return float64(depth) + cFactor(n.size)
	}
	if p[n.splitDim] < n.splitValue {
		return pathLength(n.left, p, depth+1)
	}
	return pathLength(n.right, p, depth+1)
}

// Fit grows the ensemble on the training time points.
func (f *Forest) Fit(train *mts.MTS) error {
	length := train.Len()
	if length < 2 {
		return fmt.Errorf("%w: training series too short", baselines.ErrBadInput)
	}
	f.dims = train.Sensors()
	points := make([][]float64, length)
	for t := 0; t < length; t++ {
		points[t] = train.Column(t, nil)
	}
	psi := f.SampleSize
	if psi > length {
		psi = length
	}
	maxDepth := int(math.Ceil(math.Log2(float64(psi)))) + 1
	rng := rand.New(rand.NewSource(f.Seed))
	f.trees = make([]*node, f.Trees)
	idx := make([]int, psi)
	for k := 0; k < f.Trees; k++ {
		perm := rng.Perm(length)
		copy(idx, perm[:psi])
		f.trees[k] = build(points, idx, 0, maxDepth, rng)
	}
	f.c = cFactor(psi)
	f.fitted = true
	return nil
}

// Score returns the isolation score of each test time point.
func (f *Forest) Score(test *mts.MTS) ([]float64, error) {
	if !f.fitted {
		if err := f.Fit(test); err != nil {
			return nil, err
		}
	}
	if test.Sensors() != f.dims {
		return nil, fmt.Errorf("%w: %d sensors, fitted for %d", baselines.ErrBadInput, test.Sensors(), f.dims)
	}
	out := make([]float64, test.Len())
	p := make([]float64, f.dims)
	for t := 0; t < test.Len(); t++ {
		test.Column(t, p)
		var sum float64
		for _, tr := range f.trees {
			sum += pathLength(tr, p, 0)
		}
		mean := sum / float64(len(f.trees))
		if f.c == 0 {
			out[t] = 0.5
		} else {
			out[t] = math.Pow(2, -mean/f.c)
		}
	}
	return out, nil
}
