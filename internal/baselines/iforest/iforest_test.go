package iforest

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

func gauss(seed int64, n, length int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	m := mts.Zeros(n, length)
	for t := 0; t < length; t++ {
		for i := 0; i < n; i++ {
			m.Set(i, t, rng.NormFloat64())
		}
	}
	return m
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestForestSeparatesOutliers(t *testing.T) {
	train := gauss(1, 4, 800)
	test := gauss(2, 4, 300)
	for tt := 100; tt < 130; tt++ {
		for i := 0; i < 4; i++ {
			test.Set(i, tt, test.At(i, tt)+7)
		}
	}
	f := New(42)
	if err := f.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := f.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	anom, norm := meanOver(scores, 100, 130), meanOver(scores, 0, 100)
	if anom <= norm+0.1 {
		t.Errorf("anomaly score %v vs normal %v", anom, norm)
	}
	for i, s := range scores {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score out of [0,1] at %d: %v", i, s)
		}
	}
}

func TestForestSeedReproducible(t *testing.T) {
	train := gauss(3, 3, 400)
	test := gauss(4, 3, 100)
	run := func(seed int64) []float64 {
		f := New(seed)
		if err := f.Fit(train); err != nil {
			t.Fatal(err)
		}
		s, err := f.Score(test)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
	if New(1).Deterministic() {
		t.Error("IForest reports non-deterministic (paper repeats it)")
	}
	if New(1).Name() != "IForest" {
		t.Error("name")
	}
}

func TestForestUnfittedFallsBack(t *testing.T) {
	test := gauss(5, 3, 400)
	for tt := 200; tt < 210; tt++ {
		for i := 0; i < 3; i++ {
			test.Set(i, tt, 10)
		}
	}
	f := New(1)
	scores, err := f.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 200, 210) <= meanOver(scores, 0, 200) {
		t.Error("self-fit forest failed")
	}
}

func TestForestErrors(t *testing.T) {
	f := New(1)
	if err := f.Fit(mts.Zeros(2, 1)); err == nil {
		t.Error("short train should error")
	}
	if err := f.Fit(gauss(6, 3, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Score(mts.Zeros(9, 10)); err == nil {
		t.Error("sensor mismatch should error")
	}
}

func TestCFactor(t *testing.T) {
	if cFactor(1) != 0 || cFactor(0) != 0 {
		t.Error("cFactor of ≤1 should be 0")
	}
	// c(256) ≈ 10.something; monotone increasing.
	if cFactor(256) <= cFactor(64) {
		t.Error("cFactor should grow with n")
	}
}

func TestConstantData(t *testing.T) {
	// All-identical points: no split possible; scores should be uniform,
	// not NaN.
	m := mts.Zeros(3, 100)
	f := New(2)
	if err := f.Fit(m); err != nil {
		t.Fatal(err)
	}
	scores, err := f.Score(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if math.IsNaN(s) {
			t.Fatalf("NaN at %d", i)
		}
	}
}
