package baselines

import (
	"errors"
	"strings"
	"testing"

	"cad/internal/mts"
)

// fakeUni is a controllable univariate detector for adapter tests.
type fakeUni struct {
	sensor   int
	fitCalls int
	fitErr   error
	scoreErr error
	scoreLen int // 0 = match input
	constant float64
}

func (f *fakeUni) Name() string        { return "fake" }
func (f *fakeUni) Deterministic() bool { return true }
func (f *fakeUni) FitSeries(x []float64) error {
	f.fitCalls++
	return f.fitErr
}
func (f *fakeUni) ScoreSeries(x []float64) ([]float64, error) {
	if f.scoreErr != nil {
		return nil, f.scoreErr
	}
	n := len(x)
	if f.scoreLen > 0 {
		n = f.scoreLen
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = f.constant
	}
	return out, nil
}

func TestPerSensorAveraging(t *testing.T) {
	// Sensor i scores constant i; the mean over 4 sensors is 1.5.
	p := NewPerSensor("fake", true, func(sensor int) Univariate {
		return &fakeUni{sensor: sensor, constant: float64(sensor)}
	})
	if p.Name() != "fake" || !p.Deterministic() {
		t.Error("metadata wrong")
	}
	train := mts.Zeros(4, 50)
	test := mts.Zeros(4, 30)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := p.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 30 {
		t.Fatalf("scores len %d", len(scores))
	}
	for i, s := range scores {
		if s != 1.5 {
			t.Fatalf("scores[%d] = %v, want 1.5 (mean of 0..3)", i, s)
		}
	}
}

func TestPerSensorFitError(t *testing.T) {
	p := NewPerSensor("fake", true, func(sensor int) Univariate {
		f := &fakeUni{}
		if sensor == 2 {
			f.fitErr = errors.New("boom")
		}
		return f
	})
	err := p.Fit(mts.Zeros(4, 10))
	if err == nil || !strings.Contains(err.Error(), "sensor 2") {
		t.Errorf("fit error = %v, want sensor-2 wrapped error", err)
	}
}

func TestPerSensorScoreError(t *testing.T) {
	p := NewPerSensor("fake", true, func(sensor int) Univariate {
		f := &fakeUni{}
		if sensor == 1 {
			f.scoreErr = errors.New("bad")
		}
		return f
	})
	if _, err := p.Score(mts.Zeros(3, 10)); err == nil {
		t.Error("expected score error")
	}
}

func TestPerSensorLengthMismatch(t *testing.T) {
	p := NewPerSensor("fake", true, func(sensor int) Univariate {
		return &fakeUni{scoreLen: 7}
	})
	_, err := p.Score(mts.Zeros(2, 10))
	if !errors.Is(err, ErrBadInput) {
		t.Errorf("want ErrBadInput, got %v", err)
	}
}

func TestPerSensorLazyInstances(t *testing.T) {
	// Score without Fit must construct instances lazily.
	built := 0
	p := NewPerSensor("fake", false, func(sensor int) Univariate {
		built++
		return &fakeUni{constant: 1}
	})
	scores, err := p.Score(mts.Zeros(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if built != 3 || len(scores) != 5 {
		t.Errorf("built %d instances, %d scores", built, len(scores))
	}
	// A different sensor count on the next Score rebuilds instances.
	if _, err := p.Score(mts.Zeros(5, 5)); err != nil {
		t.Fatal(err)
	}
	if built != 8 {
		t.Errorf("expected rebuild to 8 total instances, got %d", built)
	}
}
