package usad

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

// latentMTS builds series where all sensors follow one latent sine; the
// anomaly decouples them into noise.
func latentMTS(seed int64, n, length, anomFrom, anomTo int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	m := mts.Zeros(n, length)
	for t := 0; t < length; t++ {
		latent := math.Sin(2 * math.Pi * float64(t) / 30)
		for i := 0; i < n; i++ {
			v := latent*(1+0.3*float64(i)) + 0.05*rng.NormFloat64()
			if t >= anomFrom && t < anomTo {
				v = rng.NormFloat64()
			}
			m.Set(i, t, v)
		}
	}
	return m
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestUSADSeparates(t *testing.T) {
	train := latentMTS(1, 6, 800, -1, -1)
	test := latentMTS(2, 6, 600, 300, 380)
	u := New(3)
	u.Epochs = 8
	if err := u.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := u.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 600 {
		t.Fatalf("scores len %d", len(scores))
	}
	anom, norm := meanOver(scores, 310, 370), meanOver(scores, 50, 250)
	if anom <= 2*norm {
		t.Errorf("USAD separation weak: anomaly %v vs normal %v", anom, norm)
	}
	for i, s := range scores {
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("bad score at %d: %v", i, s)
		}
	}
}

func TestUSADSeedReproducible(t *testing.T) {
	train := latentMTS(4, 4, 400, -1, -1)
	test := latentMTS(5, 4, 200, 100, 130)
	run := func(seed int64) []float64 {
		u := New(seed)
		u.Epochs = 3
		if err := u.Fit(train); err != nil {
			t.Fatal(err)
		}
		s, err := u.Score(test)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(9), run(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	if New(1).Deterministic() {
		t.Error("USAD is randomized")
	}
	if New(1).Name() != "USAD" {
		t.Error("name")
	}
}

func TestUSADErrors(t *testing.T) {
	u := New(1)
	if err := u.Fit(mts.Zeros(3, 2)); err == nil {
		t.Error("short train should error")
	}
	train := latentMTS(6, 4, 300, -1, -1)
	u = New(1)
	u.Epochs = 2
	if err := u.Fit(train); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Score(mts.Zeros(9, 50)); err == nil {
		t.Error("sensor mismatch should error")
	}
	if _, err := u.Score(mts.Zeros(4, 2)); err == nil {
		t.Error("too-short test should error")
	}
}

func TestUSADSelfFit(t *testing.T) {
	test := latentMTS(7, 4, 600, 400, 450)
	u := New(8)
	u.Epochs = 5
	scores, err := u.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 410, 440) <= meanOver(scores, 50, 350) {
		t.Error("self-fit USAD failed")
	}
}
