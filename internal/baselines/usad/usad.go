// Package usad reproduces USAD (Audibert et al., KDD 2020): an adversarially
// trained pair of autoencoders sharing one encoder. AE1 = D1∘E learns to
// reconstruct input windows; AE2 = D2∘E is trained both to reconstruct and
// to discriminate reconstructions from real data, via the two-phase loss
//
//	L_AE1 = (1/n)·‖W − D1(E(W))‖² + (1 − 1/n)·‖W − D2(E(D1(E(W))))‖²
//	L_AE2 = (1/n)·‖W − D2(E(W))‖² − (1 − 1/n)·‖W − D2(E(D1(E(W))))‖²
//
// and the anomaly score α·‖W − D1(E(W))‖² + β·‖W − D2(E(D1(E(W))))‖².
//
// Implementation note (documented in DESIGN.md): the candidate
// reconstruction D1(E(W)) is treated as a constant (gradient-detached) in
// the adversarial terms, so each term backpropagates through one
// encoder/decoder pass. This keeps the two-phase adversarial structure and
// the scoring function while avoiding double-visitation of the shared
// encoder in a single backward pass.
package usad

import (
	"fmt"
	"math/rand"

	"cad/internal/baselines"
	"cad/internal/mts"
	"cad/internal/nn"
	"cad/internal/stats"
)

// USAD is the detector. Use New.
type USAD struct {
	// WindowSize q: each training sample is q consecutive columns
	// flattened (default 5).
	WindowSize int
	// Hidden is the latent dimension (default 32, clamped below input).
	Hidden int
	// Epochs of training (default 10).
	Epochs int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Alpha and Beta weight the two reconstruction errors in the score
	// (default 0.5 / 0.5).
	Alpha, Beta float64
	// Stride subsamples training windows (default 2).
	Stride int
	// Seed drives initialization and shuffling.
	Seed int64

	enc, dec1, dec2 *nn.Network
	mean, std       []float64
	n               int
	fitted          bool
}

// New returns a USAD detector with the given seed.
func New(seed int64) *USAD {
	return &USAD{WindowSize: 5, Hidden: 32, Epochs: 10, LR: 1e-3, Alpha: 0.5, Beta: 0.5, Stride: 2, Seed: seed}
}

// Name implements baselines.Detector.
func (u *USAD) Name() string { return "USAD" }

// Deterministic implements baselines.Detector: training depends on the
// seed.
func (u *USAD) Deterministic() bool { return false }

// window flattens columns [t−q+1 … t] (standardized) into dst.
func (u *USAD) window(m *mts.MTS, t int, dst []float64) {
	q := u.WindowSize
	idx := 0
	for dt := q - 1; dt >= 0; dt-- {
		tt := t - dt
		for i := 0; i < u.n; i++ {
			dst[idx] = (m.At(i, tt) - u.mean[i]) / u.std[i]
			idx++
		}
	}
}

// Fit trains the adversarial autoencoder pair on the anomaly-free series.
func (u *USAD) Fit(train *mts.MTS) error {
	u.n = train.Sensors()
	q := u.WindowSize
	if train.Len() < q+1 {
		return fmt.Errorf("%w: %d points for window %d", baselines.ErrBadInput, train.Len(), q)
	}
	u.mean = make([]float64, u.n)
	u.std = make([]float64, u.n)
	for i := 0; i < u.n; i++ {
		u.mean[i] = stats.Mean(train.Row(i))
		u.std[i] = stats.StdDev(train.Row(i))
		if u.std[i] == 0 {
			u.std[i] = 1
		}
	}
	d := u.n * q
	h := u.Hidden
	if h >= d {
		h = d / 2
		if h < 1 {
			h = 1
		}
	}
	rng := rand.New(rand.NewSource(u.Seed))
	var err error
	if u.enc, err = nn.NewNetwork([]int{d, h}, nn.ReLU, nn.Tanh, rng); err != nil {
		return err
	}
	if u.dec1, err = nn.NewNetwork([]int{h, d}, nn.ReLU, nn.Identity, rng); err != nil {
		return err
	}
	if u.dec2, err = nn.NewNetwork([]int{h, d}, nn.ReLU, nn.Identity, rng); err != nil {
		return err
	}
	opt1 := nn.NewAdam(u.LR)
	opt2 := nn.NewAdam(u.LR)

	var ts []int
	for t := q - 1; t < train.Len(); t += u.Stride {
		ts = append(ts, t)
	}
	w := make([]float64, d)
	w1 := make([]float64, d)
	grad := make([]float64, d)
	for epoch := 1; epoch <= u.Epochs; epoch++ {
		a := 1 / float64(epoch)
		b := 1 - a
		rng.Shuffle(len(ts), func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })
		for _, t := range ts {
			u.window(train, t, w)

			// Phase 1: update E, D1.
			u.enc.ZeroGrad()
			u.dec1.ZeroGrad()
			u.dec2.ZeroGrad()
			out1 := u.dec1.Forward(u.enc.Forward(w))
			if _, err := nn.MSE(out1, w, grad); err != nil {
				return err
			}
			scaleGrad(grad, a)
			u.enc.Backward(u.dec1.Backward(grad))
			copy(w1, out1) // detached candidate
			out3 := u.dec2.Forward(u.enc.Forward(w1))
			if _, err := nn.MSE(out3, w, grad); err != nil {
				return err
			}
			scaleGrad(grad, b)
			u.enc.Backward(u.dec2.Backward(grad))
			opt1.Step(1, u.enc, u.dec1)

			// Phase 2: update E, D2 (D1 candidate detached).
			u.enc.ZeroGrad()
			u.dec1.ZeroGrad()
			u.dec2.ZeroGrad()
			cand := u.dec1.Forward(u.enc.Forward(w))
			copy(w1, cand)
			out3 = u.dec2.Forward(u.enc.Forward(w1))
			if _, err := nn.MSE(out3, w, grad); err != nil {
				return err
			}
			scaleGrad(grad, -b) // maximize the discrepancy
			u.enc.Backward(u.dec2.Backward(grad))
			out2 := u.dec2.Forward(u.enc.Forward(w))
			if _, err := nn.MSE(out2, w, grad); err != nil {
				return err
			}
			scaleGrad(grad, a)
			u.enc.Backward(u.dec2.Backward(grad))
			opt2.Step(1, u.enc, u.dec2)
		}
	}
	u.fitted = true
	return nil
}

func scaleGrad(g []float64, f float64) {
	for i := range g {
		g[i] *= f
	}
}

// Score returns per-point anomaly scores: the USAD score of the window
// ending at each point (early points reuse the first full window's score).
func (u *USAD) Score(test *mts.MTS) ([]float64, error) {
	if !u.fitted {
		if err := u.Fit(test); err != nil {
			return nil, err
		}
	}
	if test.Sensors() != u.n {
		return nil, fmt.Errorf("%w: %d sensors, fitted for %d", baselines.ErrBadInput, test.Sensors(), u.n)
	}
	q := u.WindowSize
	if test.Len() < q {
		return nil, fmt.Errorf("%w: series shorter than window %d", baselines.ErrBadInput, q)
	}
	d := u.n * q
	w := make([]float64, d)
	w1 := make([]float64, d)
	out := make([]float64, test.Len())
	for t := q - 1; t < test.Len(); t++ {
		u.window(test, t, w)
		rec1 := u.dec1.Forward(u.enc.Forward(w))
		l1, _ := nn.MSE(rec1, w, nil)
		copy(w1, rec1)
		rec2 := u.dec2.Forward(u.enc.Forward(w1))
		l2, _ := nn.MSE(rec2, w, nil)
		out[t] = u.Alpha*l1 + u.Beta*l2
	}
	for t := 0; t < q-1; t++ {
		out[t] = out[q-1]
	}
	return out, nil
}
