// Package pca implements the classic PCA anomaly detector (Shyu et al.
// 2003, surveyed in the paper's related work): training time points are
// standardized, the top-q principal components of their covariance are
// extracted by deterministic power iteration with deflation, and a test
// point's anomaly score is its squared reconstruction error — the energy
// that falls outside the normal subspace. Deterministic and training-cheap,
// it complements the paper's nine baselines as the canonical linear method.
package pca

import (
	"fmt"
	"math"

	"cad/internal/baselines"
	"cad/internal/mts"
	"cad/internal/stats"
)

// PCA is the detector. Use New.
type PCA struct {
	// Components is the subspace dimension q; 0 picks the smallest q
	// explaining ≥ 90% of the training variance.
	Components int

	mean, std []float64
	comps     [][]float64 // orthonormal rows
	n         int
	fitted    bool
	explained float64
}

// New returns a PCA detector with q components (0 = auto by explained
// variance).
func New(q int) *PCA { return &PCA{Components: q} }

// Name implements baselines.Detector.
func (p *PCA) Name() string { return "PCA" }

// Deterministic implements baselines.Detector.
func (p *PCA) Deterministic() bool { return true }

// Explained returns the fraction of training variance captured by the
// chosen subspace.
func (p *PCA) Explained() float64 { return p.explained }

// Fit standardizes per sensor and extracts the principal subspace.
func (p *PCA) Fit(train *mts.MTS) error {
	p.n = train.Sensors()
	length := train.Len()
	if length < 2 {
		return fmt.Errorf("%w: training series too short", baselines.ErrBadInput)
	}
	p.mean = make([]float64, p.n)
	p.std = make([]float64, p.n)
	for i := 0; i < p.n; i++ {
		p.mean[i] = stats.Mean(train.Row(i))
		p.std[i] = stats.StdDev(train.Row(i))
		if p.std[i] == 0 {
			p.std[i] = 1
		}
	}
	// Covariance of standardized columns (n×n).
	cov := make([][]float64, p.n)
	for i := range cov {
		cov[i] = make([]float64, p.n)
	}
	x := make([]float64, p.n)
	for t := 0; t < length; t++ {
		for i := 0; i < p.n; i++ {
			x[i] = (train.At(i, t) - p.mean[i]) / p.std[i]
		}
		for i := 0; i < p.n; i++ {
			xi := x[i]
			if xi == 0 {
				continue
			}
			row := cov[i]
			for j := 0; j < p.n; j++ {
				row[j] += xi * x[j]
			}
		}
	}
	inv := 1 / float64(length)
	var totalVar float64
	for i := range cov {
		for j := range cov[i] {
			cov[i][j] *= inv
		}
		totalVar += cov[i][i]
	}
	if totalVar == 0 {
		return fmt.Errorf("%w: training data is constant", baselines.ErrBadInput)
	}
	maxQ := p.Components
	if maxQ <= 0 || maxQ > p.n {
		maxQ = p.n
	}
	var captured float64
	p.comps = p.comps[:0]
	for q := 0; q < maxQ; q++ {
		vec, lambda := powerIteration(cov)
		if lambda <= 1e-12 {
			break
		}
		p.comps = append(p.comps, vec)
		captured += lambda
		// Deflate.
		for i := 0; i < p.n; i++ {
			for j := 0; j < p.n; j++ {
				cov[i][j] -= lambda * vec[i] * vec[j]
			}
		}
		if p.Components <= 0 && captured/totalVar >= 0.9 {
			break
		}
	}
	if len(p.comps) == 0 {
		return fmt.Errorf("%w: no principal components found", baselines.ErrBadInput)
	}
	p.explained = captured / totalVar
	p.fitted = true
	return nil
}

// powerIteration returns the dominant eigenvector and eigenvalue of the
// symmetric matrix, starting from a fixed non-degenerate vector.
func powerIteration(m [][]float64) ([]float64, float64) {
	n := len(m)
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Sin(float64(i)+1) + 0.5
	}
	tmp := make([]float64, n)
	var lambda float64
	for iter := 0; iter < 100; iter++ {
		for i := 0; i < n; i++ {
			var sum float64
			row := m[i]
			for j := 0; j < n; j++ {
				sum += row[j] * v[j]
			}
			tmp[i] = sum
		}
		var norm float64
		for _, x := range tmp {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return v, 0
		}
		lambda = norm
		for i := range v {
			v[i] = tmp[i] / norm
		}
	}
	return v, lambda
}

// Score returns the squared reconstruction error of each test point.
func (p *PCA) Score(test *mts.MTS) ([]float64, error) {
	if !p.fitted {
		if err := p.Fit(test); err != nil {
			return nil, err
		}
	}
	if test.Sensors() != p.n {
		return nil, fmt.Errorf("%w: %d sensors, fitted for %d", baselines.ErrBadInput, test.Sensors(), p.n)
	}
	out := make([]float64, test.Len())
	x := make([]float64, p.n)
	proj := make([]float64, len(p.comps))
	for t := 0; t < test.Len(); t++ {
		var energy float64
		for i := 0; i < p.n; i++ {
			x[i] = (test.At(i, t) - p.mean[i]) / p.std[i]
			energy += x[i] * x[i]
		}
		var inSubspace float64
		for c, comp := range p.comps {
			var dot float64
			for i := 0; i < p.n; i++ {
				dot += comp[i] * x[i]
			}
			proj[c] = dot
			inSubspace += dot * dot
		}
		resid := energy - inSubspace
		if resid < 0 {
			resid = 0
		}
		out[t] = resid
	}
	return out, nil
}
