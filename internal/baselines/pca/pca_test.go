package pca

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

// manifold builds points on a 2-D latent manifold in 6 dims plus noise;
// anomalies leave the manifold (correlation break) without leaving the
// marginal ranges.
func manifold(seed int64, length, anomFrom, anomTo int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	m := mts.Zeros(6, length)
	for t := 0; t < length; t++ {
		a := math.Sin(2 * math.Pi * float64(t) / 23)
		b := math.Cos(2 * math.Pi * float64(t) / 31)
		vals := []float64{a, 2 * a, a - b, b, -b, 0.5*a + 0.5*b}
		for i := 0; i < 6; i++ {
			v := vals[i] + 0.05*rng.NormFloat64()
			if t >= anomFrom && t < anomTo {
				v = 1.2 * rng.NormFloat64() // off-manifold, in-range
			}
			m.Set(i, t, v)
		}
	}
	return m
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestPCASeparatesOffManifold(t *testing.T) {
	train := manifold(1, 800, -1, -1)
	test := manifold(2, 400, 150, 250)
	p := New(0)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	if p.Explained() < 0.85 {
		t.Errorf("explained variance %v, want ≥ 0.9 target", p.Explained())
	}
	scores, err := p.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	anom, norm := meanOver(scores, 160, 240), meanOver(scores, 0, 140)
	if anom < 3*norm {
		t.Errorf("PCA separation weak: %v vs %v", anom, norm)
	}
}

func TestPCAFixedComponents(t *testing.T) {
	train := manifold(3, 600, -1, -1)
	p := New(2)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	if len(p.comps) != 2 {
		t.Errorf("components = %d, want 2", len(p.comps))
	}
	// Components are orthonormal.
	for i := range p.comps {
		var norm float64
		for _, v := range p.comps[i] {
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-6 {
			t.Errorf("component %d norm %v", i, norm)
		}
		for j := i + 1; j < len(p.comps); j++ {
			var dot float64
			for k := range p.comps[i] {
				dot += p.comps[i][k] * p.comps[j][k]
			}
			if math.Abs(dot) > 1e-3 {
				t.Errorf("components %d,%d not orthogonal: %v", i, j, dot)
			}
		}
	}
}

func TestPCADeterministic(t *testing.T) {
	train := manifold(4, 500, -1, -1)
	test := manifold(5, 200, 80, 120)
	run := func() []float64 {
		p := New(3)
		if err := p.Fit(train); err != nil {
			t.Fatal(err)
		}
		s, err := p.Score(test)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PCA must be deterministic")
		}
	}
	if !New(0).Deterministic() || New(0).Name() != "PCA" {
		t.Error("metadata wrong")
	}
}

func TestPCAErrors(t *testing.T) {
	p := New(0)
	if err := p.Fit(mts.Zeros(3, 1)); err == nil {
		t.Error("short train should error")
	}
	if err := p.Fit(mts.Zeros(3, 50)); err == nil {
		t.Error("constant train should error")
	}
	if err := p.Fit(manifold(6, 300, -1, -1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Score(mts.Zeros(9, 10)); err == nil {
		t.Error("sensor mismatch should error")
	}
}

func TestPCASelfFit(t *testing.T) {
	test := manifold(7, 600, 400, 460)
	p := New(0)
	scores, err := p.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 410, 450) <= meanOver(scores, 0, 350) {
		t.Error("self-fit PCA failed to separate")
	}
}

func TestPCAScoresNonNegative(t *testing.T) {
	train := manifold(8, 400, -1, -1)
	test := manifold(9, 200, -1, -1)
	p := New(0)
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, _ := p.Score(test)
	for i, s := range scores {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
}
