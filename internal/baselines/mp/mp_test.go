package mp

import (
	"math"
	"math/rand"
	"testing"
)

func periodic(seed int64, length, anomFrom, anomTo int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, length)
	for t := range x {
		x[t] = math.Sin(2*math.Pi*float64(t)/25) + 0.05*rng.NormFloat64()
		if t >= anomFrom && t < anomTo {
			x[t] = 0.8 * rng.NormFloat64()
		}
	}
	return x
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

// naiveProfile is the brute-force reference for the STOMP recurrence.
func naiveProfile(a, b []float64, l, selfExcl int) []float64 {
	na := len(a) - l + 1
	nb := len(b) - l + 1
	znorm := func(x []float64) []float64 {
		var mu float64
		for _, v := range x {
			mu += v
		}
		mu /= float64(len(x))
		var ss float64
		for _, v := range x {
			ss += (v - mu) * (v - mu)
		}
		sd := math.Sqrt(ss / float64(len(x)))
		out := make([]float64, len(x))
		if sd == 0 {
			return out
		}
		for i, v := range x {
			out[i] = (v - mu) / sd
		}
		return out
	}
	prof := make([]float64, na)
	for i := range prof {
		prof[i] = math.Inf(1)
		za := znorm(a[i : i+l])
		for j := 0; j < nb; j++ {
			if selfExcl > 0 {
				d := i - j
				if d < 0 {
					d = -d
				}
				if d < selfExcl {
					continue
				}
			}
			zb := znorm(b[j : j+l])
			var dist float64
			for t := 0; t < l; t++ {
				diff := za[t] - zb[t]
				dist += diff * diff
			}
			if dist < prof[i] {
				prof[i] = dist
			}
		}
		if math.IsInf(prof[i], 1) {
			prof[i] = 0
		} else {
			prof[i] = math.Sqrt(prof[i])
		}
	}
	return prof
}

func TestSTOMPMatchesNaive(t *testing.T) {
	a := periodic(1, 150, 60, 80)
	b := periodic(2, 120, -1, -1)
	const l = 16
	got := abJoin(a, b, l, 0)
	want := naiveProfile(a, b, l, 0)
	if len(got) != len(want) {
		t.Fatalf("lengths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("profile[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Self-join with exclusion.
	got = abJoin(a, a, l, l/2)
	want = naiveProfile(a, a, l, l/2)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("self profile[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMPSelfJoinFindsDiscord(t *testing.T) {
	x := periodic(3, 1200, 600, 680)
	m := New(0)
	scores, err := m.ScoreSeries(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(x) {
		t.Fatalf("scores len %d", len(scores))
	}
	if meanOver(scores, 610, 670) <= 1.5*meanOver(scores, 100, 500) {
		t.Errorf("discord not separated: %v vs %v", meanOver(scores, 610, 670), meanOver(scores, 100, 500))
	}
}

func TestMPABJoin(t *testing.T) {
	train := periodic(4, 1000, -1, -1)
	test := periodic(5, 800, 400, 470)
	m := New(25)
	if err := m.FitSeries(train); err != nil {
		t.Fatal(err)
	}
	scores, err := m.ScoreSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 410, 460) <= 2*meanOver(scores, 100, 350) {
		t.Errorf("AB-join separation weak: %v vs %v", meanOver(scores, 410, 460), meanOver(scores, 100, 350))
	}
}

func TestMPConstantRegions(t *testing.T) {
	// Flat series with one bump: constants must not produce NaN.
	x := make([]float64, 300)
	for i := 150; i < 160; i++ {
		x[i] = 5
	}
	m := New(16)
	scores, err := m.ScoreSeries(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
	if meanOver(scores, 150, 160) <= meanOver(scores, 0, 100) {
		t.Error("bump in flat series should be the discord")
	}
}

func TestMPErrors(t *testing.T) {
	m := New(0)
	if err := m.FitSeries(make([]float64, 3)); err == nil {
		t.Error("short train should error")
	}
	m = New(64)
	if _, err := m.ScoreSeries(make([]float64, 100)); err == nil {
		t.Error("series shorter than 2·m should error")
	}
	m = New(16)
	if err := m.FitSeries(make([]float64, 10)); err == nil {
		t.Error("train shorter than m should error at fit")
	}
	if m.Name() != "MP" || !m.Deterministic() {
		t.Error("metadata wrong")
	}
}

func BenchmarkSelfJoin1000(b *testing.B) {
	x := periodic(6, 1000, -1, -1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		abJoin(x, x, 32, 16)
	}
}
