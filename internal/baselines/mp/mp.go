// Package mp implements Matrix Profile discord detection (Yeh et al., ICDM
// 2016, in the paper's related work): every length-m subsequence is scored
// by its z-normalized Euclidean distance to its nearest neighbor — large
// values are discords, i.e. subsequences unlike anything else. The profile
// is computed with the STOMP recurrence (rolling dot products), O(n²) total
// but O(1) per cell. Fitted mode does an AB-join against the training
// series (distance to the nearest *normal* subsequence); unfitted mode is
// the classic self-join with an exclusion zone.
package mp

import (
	"fmt"
	"math"

	"cad/internal/baselines"
	"cad/internal/stats"
)

// MP is the univariate detector. Use New.
type MP struct {
	// SubLen m; 0 estimates the ACF period (min 8).
	SubLen int

	train  []float64
	fitted bool
}

// New returns a Matrix Profile detector with the given subsequence length
// (0 = auto).
func New(subLen int) *MP { return &MP{SubLen: subLen} }

// Name implements baselines.Univariate.
func (m *MP) Name() string { return "MP" }

// Deterministic implements baselines.Univariate.
func (m *MP) Deterministic() bool { return true }

func (m *MP) subLen(x []float64) int {
	if m.SubLen > 0 {
		return m.SubLen
	}
	maxLag := len(x) / 4
	if maxLag > 200 {
		maxLag = 200
	}
	l := stats.DominantPeriod(x, 4, maxLag, 0.2, 16)
	if l < 8 {
		l = 8
	}
	if l > len(x)/4 {
		l = len(x) / 4
	}
	if l < 4 {
		l = 4
	}
	return l
}

// FitSeries stores the training series for AB-joins.
func (m *MP) FitSeries(x []float64) error {
	min := 8
	if m.SubLen > min {
		min = m.SubLen
	}
	if len(x) < min {
		return fmt.Errorf("%w: training series of %d points for subsequence length %d", baselines.ErrBadInput, len(x), min)
	}
	m.train = append(m.train[:0], x...)
	m.fitted = true
	return nil
}

// rollingStats returns per-window mean and std of length-l windows of x.
func rollingStats(x []float64, l int) (mean, std []float64) {
	n := len(x) - l + 1
	mean = make([]float64, n)
	std = make([]float64, n)
	var sum, sum2 float64
	for i := 0; i < l; i++ {
		sum += x[i]
		sum2 += x[i] * x[i]
	}
	for i := 0; i < n; i++ {
		mu := sum / float64(l)
		mean[i] = mu
		v := sum2/float64(l) - mu*mu
		if v < 0 {
			v = 0
		}
		std[i] = math.Sqrt(v)
		if i+l < len(x) {
			sum += x[i+l] - x[i]
			sum2 += x[i+l]*x[i+l] - x[i]*x[i]
		}
	}
	return mean, std
}

// abJoin computes, for each subsequence of a, the z-normalized distance to
// its nearest subsequence of b, via the STOMP recurrence. When selfExcl > 0
// (self-join), matches within that index distance are ignored.
func abJoin(a, b []float64, l, selfExcl int) []float64 {
	na := len(a) - l + 1
	nb := len(b) - l + 1
	if na <= 0 || nb <= 0 {
		return nil
	}
	muA, sdA := rollingStats(a, l)
	muB, sdB := rollingStats(b, l)
	prof := make([]float64, na)
	for i := range prof {
		prof[i] = math.Inf(1)
	}
	// QT[j] = dot(a[i:i+l], b[j:j+l]); row 0 computed directly, later rows
	// by the rolling update.
	qt := make([]float64, nb)
	for j := 0; j < nb; j++ {
		var dot float64
		for t := 0; t < l; t++ {
			dot += a[t] * b[j+t]
		}
		qt[j] = dot
	}
	fl := float64(l)
	update := func(i int) {
		for j := 0; j < nb; j++ {
			if selfExcl > 0 {
				d := i - j
				if d < 0 {
					d = -d
				}
				if d < selfExcl {
					continue
				}
			}
			var dist float64
			if sdA[i] == 0 || sdB[j] == 0 {
				// Constant subsequences: distance 0 to other constants,
				// max to everything else.
				if sdA[i] == 0 && sdB[j] == 0 {
					dist = 0
				} else {
					dist = 2 * fl
				}
			} else {
				corr := (qt[j] - fl*muA[i]*muB[j]) / (fl * sdA[i] * sdB[j])
				if corr > 1 {
					corr = 1
				} else if corr < -1 {
					corr = -1
				}
				dist = 2 * fl * (1 - corr)
			}
			if dist < prof[i] {
				prof[i] = dist
			}
		}
	}
	update(0)
	for i := 1; i < na; i++ {
		// Shift QT in place from the previous row, back-to-front.
		for j := nb - 1; j > 0; j-- {
			qt[j] = qt[j-1] - a[i-1]*b[j-1] + a[i+l-1]*b[j+l-1]
		}
		var dot float64
		for t := 0; t < l; t++ {
			dot += a[i+t] * b[t]
		}
		qt[0] = dot
		update(i)
	}
	for i := range prof {
		if math.IsInf(prof[i], 1) {
			prof[i] = 0
		} else {
			prof[i] = math.Sqrt(prof[i])
		}
	}
	return prof
}

// ScoreSeries maps the matrix profile onto points: each point receives the
// maximum profile value of the subsequences covering it (a discord marks
// all its points).
func (m *MP) ScoreSeries(x []float64) ([]float64, error) {
	l := m.subLen(x)
	if len(x) < 2*l {
		return nil, fmt.Errorf("%w: series of %d points for subsequence length %d", baselines.ErrBadInput, len(x), l)
	}
	var prof []float64
	if m.fitted {
		if len(m.train) < l {
			return nil, fmt.Errorf("%w: training series shorter than subsequence length %d", baselines.ErrBadInput, l)
		}
		prof = abJoin(x, m.train, l, 0)
	} else {
		prof = abJoin(x, x, l, l/2)
	}
	out := make([]float64, len(x))
	for i, p := range prof {
		for t := i; t < i+l && t < len(out); t++ {
			if p > out[t] {
				out[t] = p
			}
		}
	}
	return out, nil
}
