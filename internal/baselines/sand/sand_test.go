package sand

import (
	"math"
	"math/rand"
	"testing"
)

func periodic(seed int64, length, anomFrom, anomTo int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, length)
	for t := range x {
		x[t] = math.Sin(2*math.Pi*float64(t)/25) + 0.05*rng.NormFloat64()
		if t >= anomFrom && t < anomTo {
			x[t] = 0.8 * rng.NormFloat64()
		}
	}
	return x
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestSANDOffline(t *testing.T) {
	train := periodic(1, 1200, -1, -1)
	test := periodic(2, 1200, 600, 700)
	s := New(3)
	if err := s.FitSeries(train); err != nil {
		t.Fatal(err)
	}
	scores, err := s.ScoreSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(test) {
		t.Fatalf("scores len %d", len(scores))
	}
	if meanOver(scores, 610, 690) <= meanOver(scores, 100, 500)*1.2 {
		t.Errorf("offline SAND failed: anomaly %v vs normal %v",
			meanOver(scores, 610, 690), meanOver(scores, 100, 500))
	}
}

func TestSANDSelfFit(t *testing.T) {
	test := periodic(4, 1500, 900, 1000)
	s := New(5)
	scores, err := s.ScoreSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 910, 990) <= meanOver(scores, 100, 800) {
		t.Error("self-fit SAND failed")
	}
}

func TestSANDOnline(t *testing.T) {
	test := periodic(6, 2000, 1400, 1500)
	s := NewOnline(7)
	scores, err := s.ScoreSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(test) {
		t.Fatalf("scores len %d", len(scores))
	}
	if meanOver(scores, 1410, 1490) <= meanOver(scores, 200, 1200)*1.1 {
		t.Errorf("SAND* failed: anomaly %v vs normal %v",
			meanOver(scores, 1410, 1490), meanOver(scores, 200, 1200))
	}
	if s.Name() != "SAND*" {
		t.Errorf("online name %q", s.Name())
	}
	if New(1).Name() != "SAND" {
		t.Error("offline name")
	}
	if New(1).Deterministic() {
		t.Error("SAND should be randomized")
	}
}

func TestSANDOnlineModelGrowth(t *testing.T) {
	// After an online pass the model must still have normalized-ish
	// weights (all positive, bounded count).
	test := periodic(8, 1500, -1, -1)
	s := NewOnline(9)
	if _, err := s.ScoreSeries(test); err != nil {
		t.Fatal(err)
	}
	if len(s.centroids) == 0 || len(s.centroids) != len(s.weights) {
		t.Fatalf("model: %d centroids, %d weights", len(s.centroids), len(s.weights))
	}
	for i, w := range s.weights {
		if w <= 0 {
			t.Errorf("weight[%d] = %v", i, w)
		}
	}
}

func TestSANDErrors(t *testing.T) {
	s := New(1)
	s.PatternLen = 64
	if err := s.FitSeries(make([]float64, 10)); err == nil {
		t.Error("too-short series should error")
	}
}
