// Package sand implements SAND (Boniol et al., PVLDB 2021) and its online
// variant SAND*: streaming subsequence anomaly detection built on k-Shape.
// A set of weighted shape centroids summarizes normal behavior; each test
// subsequence is scored by its (weight-discounted) shape-based distance to
// the nearest centroid. The online variant processes the series in batches,
// re-clustering each batch and merging the new centroids into the model
// with an update rate α, as the paper's SAND* configuration describes.
package sand

import (
	"fmt"
	"math"

	"cad/internal/baselines"
	"cad/internal/fft"
	"cad/internal/kshape"
	"cad/internal/stats"
)

// SAND is the detector for one univariate series. Use New or NewOnline.
type SAND struct {
	// PatternLen ℓ; 0 estimates 4·ACF-period, the paper's setting for the
	// centroid length.
	PatternLen int
	// Clusters k in the model (default 3).
	Clusters int
	// Stride between training subsequences (default ℓ/4).
	Stride int
	// Seed drives clustering initialization.
	Seed int64
	// Online enables the SAND* batch-update mode.
	Online bool
	// Alpha is the SAND* update rate (paper: 0.5).
	Alpha float64
	// BatchFrac is the SAND* batch size as a fraction of the series
	// (paper: 0.1); InitFrac the initial model fraction (paper: 0.5).
	BatchFrac, InitFrac float64

	centroids [][]float64
	weights   []float64
	fitted    bool
}

// New returns an offline SAND detector.
func New(seed int64) *SAND {
	return &SAND{Clusters: 3, Seed: seed}
}

// NewOnline returns the SAND* configuration from the paper: α = 0.5,
// initial model from the first half, batches of 10%.
func NewOnline(seed int64) *SAND {
	return &SAND{Clusters: 3, Seed: seed, Online: true, Alpha: 0.5, BatchFrac: 0.1, InitFrac: 0.5}
}

// Name implements baselines.Univariate.
func (s *SAND) Name() string {
	if s.Online {
		return "SAND*"
	}
	return "SAND"
}

// Deterministic implements baselines.Univariate.
func (s *SAND) Deterministic() bool { return false }

func (s *SAND) patternLen(x []float64) int {
	if s.PatternLen > 0 {
		return s.PatternLen
	}
	maxLag := len(x) / 4
	if maxLag > 200 {
		maxLag = 200
	}
	p := stats.DominantPeriod(x, 4, maxLag, 0.2, 16)
	l := 4 * p
	if l > len(x)/4 {
		l = len(x) / 4
	}
	if l < 8 {
		l = 8
	}
	return l
}

func (s *SAND) cluster(x []float64, l int) ([][]float64, []float64, error) {
	stride := s.Stride
	if stride <= 0 {
		stride = l / 4
		if stride < 1 {
			stride = 1
		}
	}
	var subs [][]float64
	for i := 0; i+l <= len(x); i += stride {
		subs = append(subs, x[i:i+l])
	}
	if len(subs) < 2 {
		return nil, nil, fmt.Errorf("%w: %d subsequences of length %d from %d points", baselines.ErrBadInput, len(subs), l, len(x))
	}
	k := s.Clusters
	if k > len(subs) {
		k = len(subs)
	}
	res, err := kshape.Cluster(subs, k, 8, s.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("sand: %w", err)
	}
	var cents [][]float64
	var weights []float64
	total := float64(len(subs))
	for c, size := range res.Sizes {
		if size == 0 {
			continue
		}
		cents = append(cents, res.Centroids[c])
		weights = append(weights, float64(size)/total)
	}
	return cents, weights, nil
}

// FitSeries builds the initial centroid model.
func (s *SAND) FitSeries(x []float64) error {
	l := s.patternLen(x)
	cents, weights, err := s.cluster(x, l)
	if err != nil {
		return err
	}
	s.centroids, s.weights = cents, weights
	s.fitted = true
	return nil
}

// merge folds batch centroids into the model with update rate α: existing
// weights decay by (1−α) and close shapes are merged.
func (s *SAND) merge(cents [][]float64, weights []float64) {
	for i := range s.weights {
		s.weights[i] *= 1 - s.Alpha
	}
	for j, c := range cents {
		// Merge into the closest existing centroid when very close.
		bestI, bestD := -1, 0.25
		for i, ex := range s.centroids {
			if d := fft.SBD(ex, c); d < bestD {
				bestI, bestD = i, d
			}
		}
		if bestI >= 0 {
			s.weights[bestI] += s.Alpha * weights[j]
		} else {
			s.centroids = append(s.centroids, c)
			s.weights = append(s.weights, s.Alpha*weights[j])
		}
	}
}

// scoreInto accumulates subsequence scores for x[from:to] into out/counts.
func (s *SAND) scoreInto(x []float64, from, to, l int, out, counts []float64) {
	stride := l / 8
	if stride < 1 {
		stride = 1
	}
	for i := from; i+l <= to; i += stride {
		sub := stats.ZNormalize(x[i : i+l])
		best := math.Inf(1)
		for c, cent := range s.centroids {
			d := fft.SBD(cent, sub) / (s.weights[c] + 0.5)
			if d < best {
				best = d
			}
		}
		for t := i; t < i+l && t < len(out); t++ {
			out[t] += best
			counts[t]++
		}
	}
}

// ScoreSeries scores every point. Offline mode scores against the fitted
// model (self-fitting when none exists); online mode initializes the model
// from the first InitFrac of the series and then alternates batch scoring
// and model updates.
func (s *SAND) ScoreSeries(x []float64) ([]float64, error) {
	out := make([]float64, len(x))
	counts := make([]float64, len(x))
	if s.Online {
		l := s.patternLen(x)
		init := int(s.InitFrac * float64(len(x)))
		if init < 2*l {
			init = 2 * l
		}
		if init > len(x) {
			init = len(x)
		}
		cents, weights, err := s.cluster(x[:init], l)
		if err != nil {
			return nil, err
		}
		s.centroids, s.weights = cents, weights
		s.fitted = true
		s.scoreInto(x, 0, init, l, out, counts)
		batch := int(s.BatchFrac * float64(len(x)))
		if batch < l+1 {
			batch = l + 1
		}
		for from := init; from < len(x); from += batch {
			to := from + batch
			if to > len(x) {
				to = len(x)
			}
			// Score the batch with the current model, then update.
			lo := from - l + 1 // cover points at the seam
			if lo < 0 {
				lo = 0
			}
			s.scoreInto(x, lo, to, l, out, counts)
			if to-from > l {
				if cents, weights, err := s.cluster(x[from:to], l); err == nil {
					s.merge(cents, weights)
				}
			}
		}
	} else {
		if !s.fitted {
			if err := s.FitSeries(x); err != nil {
				return nil, err
			}
		}
		l := len(s.centroids[0])
		if l > len(x) {
			return nil, fmt.Errorf("%w: series shorter than centroid length %d", baselines.ErrBadInput, l)
		}
		s.scoreInto(x, 0, len(x), l, out, counts)
	}
	for t := range out {
		if counts[t] > 0 {
			out[t] /= counts[t]
		}
	}
	for t := 1; t < len(out); t++ {
		if counts[t] == 0 {
			out[t] = out[t-1]
		}
	}
	return out, nil
}
