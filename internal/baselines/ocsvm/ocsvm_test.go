package ocsvm

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

// ringData builds points on a correlated 2-D latent ring in 4 dims;
// anomalies jump off it.
func ringData(seed int64, length, anomFrom, anomTo int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	m := mts.Zeros(4, length)
	for t := 0; t < length; t++ {
		a := math.Sin(2 * math.Pi * float64(t) / 19)
		b := math.Cos(2 * math.Pi * float64(t) / 19)
		vals := []float64{a, b, a + b, a - b}
		for i := 0; i < 4; i++ {
			v := vals[i] + 0.05*rng.NormFloat64()
			if t >= anomFrom && t < anomTo {
				v = 1.5 * rng.NormFloat64()
			}
			m.Set(i, t, v)
		}
	}
	return m
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestOCSVMSeparates(t *testing.T) {
	train := ringData(1, 700, -1, -1)
	test := ringData(2, 400, 150, 250)
	o := New()
	if err := o.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := o.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	anom, norm := meanOver(scores, 160, 240), meanOver(scores, 0, 140)
	if anom <= norm {
		t.Errorf("OC-SVM failed to separate: %v vs %v", anom, norm)
	}
	// Normal points sit near or inside the boundary (score ≈ ≤ small).
	if norm > anom/2 {
		t.Errorf("normal score %v too close to anomalous %v", norm, anom)
	}
}

func TestOCSVMConstraints(t *testing.T) {
	train := ringData(3, 500, -1, -1)
	o := New()
	if err := o.Fit(train); err != nil {
		t.Fatal(err)
	}
	var sum float64
	// The training series has 500 points, under MaxTrain, so l = 500.
	c := 1 / (o.Nu * 500)
	for _, a := range o.alpha {
		if a < -1e-12 {
			t.Errorf("negative α %v", a)
		}
		if a > c+1e-9 {
			t.Errorf("α %v exceeds box %v", a, c)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σα = %v, want 1", sum)
	}
	if len(o.sv) == 0 || len(o.sv) > o.MaxTrain {
		t.Errorf("%d support vectors", len(o.sv))
	}
}

func TestOCSVMDeterministic(t *testing.T) {
	train := ringData(4, 400, -1, -1)
	test := ringData(5, 150, 60, 90)
	run := func() []float64 {
		o := New()
		if err := o.Fit(train); err != nil {
			t.Fatal(err)
		}
		s, err := o.Score(test)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("OC-SVM must be deterministic")
		}
	}
	if !New().Deterministic() || New().Name() != "OC-SVM" {
		t.Error("metadata wrong")
	}
}

func TestOCSVMErrors(t *testing.T) {
	o := New()
	if err := o.Fit(mts.Zeros(3, 2)); err == nil {
		t.Error("short train should error")
	}
	o = New()
	o.Nu = 0
	if err := o.Fit(ringData(6, 100, -1, -1)); err == nil {
		t.Error("ν=0 should error")
	}
	o = New()
	if err := o.Fit(ringData(7, 200, -1, -1)); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Score(mts.Zeros(9, 10)); err == nil {
		t.Error("sensor mismatch should error")
	}
}

func TestOCSVMSelfFit(t *testing.T) {
	test := ringData(8, 600, 400, 460)
	o := New()
	scores, err := o.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 410, 450) <= meanOver(scores, 0, 350) {
		t.Error("self-fit OC-SVM failed")
	}
}

func TestOCSVMExplicitGamma(t *testing.T) {
	train := ringData(9, 300, -1, -1)
	o := New()
	o.Gamma = 0.5
	if err := o.Fit(train); err != nil {
		t.Fatal(err)
	}
	if o.gamma != 0.5 {
		t.Errorf("gamma = %v, want 0.5", o.gamma)
	}
}
