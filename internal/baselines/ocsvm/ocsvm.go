// Package ocsvm implements a one-class support vector machine (Schölkopf
// et al. 2001, the paper's related work [74]) with an RBF kernel, trained
// by SMO-style pairwise coordinate optimization on the dual:
//
//	min ½ αᵀQα   s.t.  0 ≤ αᵢ ≤ 1/(ν·l),  Σαᵢ = 1,  Q_ij = k(x_i, x_j)
//
// The decision value f(x) = Σ αᵢ·k(x_i, x) − ρ is positive inside the
// learned support region; the anomaly score is ρ − Σ αᵢ·k(x_i, x), rising
// as points leave the region. Training subsamples to MaxTrain points to
// bound the kernel matrix.
package ocsvm

import (
	"fmt"
	"math"

	"cad/internal/baselines"
	"cad/internal/mts"
	"cad/internal/stats"
)

// OCSVM is the detector. Use New.
type OCSVM struct {
	// Nu ∈ (0,1] bounds the fraction of training outliers (default 0.1).
	Nu float64
	// Gamma is the RBF width k(x,y)=exp(−γ‖x−y‖²); 0 uses 1/(n·median
	// pairwise distance²) — the "scale" heuristic.
	Gamma float64
	// MaxTrain subsamples training points (default 600; the kernel matrix
	// is MaxTrain²).
	MaxTrain int
	// Iters caps SMO sweeps (default 200).
	Iters int

	sv        [][]float64
	alpha     []float64
	rho       float64
	gamma     float64
	mean, std []float64
	n         int
	fitted    bool
}

// New returns an OC-SVM with ν = 0.1.
func New() *OCSVM { return &OCSVM{Nu: 0.1, MaxTrain: 600, Iters: 200} }

// Name implements baselines.Detector.
func (o *OCSVM) Name() string { return "OC-SVM" }

// Deterministic implements baselines.Detector: subsampling is strided and
// SMO sweeps are ordered, so runs are reproducible.
func (o *OCSVM) Deterministic() bool { return true }

func (o *OCSVM) kernel(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Exp(-o.gamma * d)
}

// Fit learns the support region of the training time points.
func (o *OCSVM) Fit(train *mts.MTS) error {
	o.n = train.Sensors()
	length := train.Len()
	if length < 8 {
		return fmt.Errorf("%w: training series too short", baselines.ErrBadInput)
	}
	if o.Nu <= 0 || o.Nu > 1 {
		return fmt.Errorf("%w: ν=%v out of (0,1]", baselines.ErrBadInput, o.Nu)
	}
	o.mean = make([]float64, o.n)
	o.std = make([]float64, o.n)
	for i := 0; i < o.n; i++ {
		o.mean[i] = stats.Mean(train.Row(i))
		o.std[i] = stats.StdDev(train.Row(i))
		if o.std[i] == 0 {
			o.std[i] = 1
		}
	}
	// Strided subsample of standardized points.
	stride := 1
	if o.MaxTrain > 0 && length > o.MaxTrain {
		stride = (length + o.MaxTrain - 1) / o.MaxTrain
	}
	var pts [][]float64
	for t := 0; t < length; t += stride {
		p := make([]float64, o.n)
		for i := 0; i < o.n; i++ {
			p[i] = (train.At(i, t) - o.mean[i]) / o.std[i]
		}
		pts = append(pts, p)
	}
	l := len(pts)
	if l < 4 {
		return fmt.Errorf("%w: %d subsampled points", baselines.ErrBadInput, l)
	}
	// Gamma heuristic: median pairwise squared distance over a sample.
	if o.Gamma > 0 {
		o.gamma = o.Gamma
	} else {
		var dists []float64
		step := l/64 + 1
		for i := 0; i < l; i += step {
			for j := i + step; j < l; j += step {
				var d float64
				for k := range pts[i] {
					diff := pts[i][k] - pts[j][k]
					d += diff * diff
				}
				dists = append(dists, d)
			}
		}
		med := stats.Quantile(dists, 0.5)
		if med <= 0 || math.IsNaN(med) {
			med = float64(o.n)
		}
		o.gamma = 1 / med
	}
	// Kernel matrix.
	q := make([][]float64, l)
	for i := range q {
		q[i] = make([]float64, l)
	}
	for i := 0; i < l; i++ {
		q[i][i] = 1
		for j := i + 1; j < l; j++ {
			v := o.kernel(pts[i], pts[j])
			q[i][j] = v
			q[j][i] = v
		}
	}
	// Initialize α feasibly: the first ⌈ν·l⌉ points get 1/(ν·l), matching
	// Σα = 1 with the box constraint.
	c := 1 / (o.Nu * float64(l))
	alpha := make([]float64, l)
	remaining := 1.0
	for i := 0; i < l && remaining > 1e-12; i++ {
		a := math.Min(c, remaining)
		alpha[i] = a
		remaining -= a
	}
	// Gradient g_i = (Qα)_i.
	g := make([]float64, l)
	for i := 0; i < l; i++ {
		var sum float64
		for j := 0; j < l; j++ {
			if alpha[j] > 0 {
				sum += q[i][j] * alpha[j]
			}
		}
		g[i] = sum
	}
	// SMO sweeps: pick the maximal-violating pair (i: smallest gradient
	// among α_i < C; j: largest gradient among α_j > 0) and shift weight.
	for iter := 0; iter < o.Iters; iter++ {
		up, down := -1, -1
		for i := 0; i < l; i++ {
			if alpha[i] < c-1e-12 && (up < 0 || g[i] < g[up]) {
				up = i
			}
			if alpha[i] > 1e-12 && (down < 0 || g[i] > g[down]) {
				down = i
			}
		}
		if up < 0 || down < 0 || g[down]-g[up] < 1e-8 {
			break
		}
		// Optimal unconstrained step along e_up − e_down.
		denom := q[up][up] + q[down][down] - 2*q[up][down]
		if denom <= 1e-12 {
			denom = 1e-12
		}
		delta := (g[down] - g[up]) / denom
		if delta > alpha[down] {
			delta = alpha[down]
		}
		if delta > c-alpha[up] {
			delta = c - alpha[up]
		}
		if delta <= 0 {
			break
		}
		alpha[up] += delta
		alpha[down] -= delta
		for i := 0; i < l; i++ {
			g[i] += delta * (q[i][up] - q[i][down])
		}
	}
	// Keep support vectors; ρ = median decision value over margin SVs
	// (0 < α < C), falling back to all SVs.
	var margin []float64
	for i := 0; i < l; i++ {
		if alpha[i] > 1e-10 {
			o.sv = append(o.sv, pts[i])
			o.alpha = append(o.alpha, alpha[i])
		}
	}
	for i := 0; i < l; i++ {
		if alpha[i] > 1e-10 && alpha[i] < c-1e-10 {
			margin = append(margin, g[i])
		}
	}
	if len(margin) == 0 {
		for i := 0; i < l; i++ {
			if alpha[i] > 1e-10 {
				margin = append(margin, g[i])
			}
		}
	}
	o.rho = stats.Quantile(margin, 0.5)
	o.fitted = true
	return nil
}

// Score returns ρ − f(x) per test point: ≤ 0 inside the support region,
// growing positive outside it.
func (o *OCSVM) Score(test *mts.MTS) ([]float64, error) {
	if !o.fitted {
		if err := o.Fit(test); err != nil {
			return nil, err
		}
	}
	if test.Sensors() != o.n {
		return nil, fmt.Errorf("%w: %d sensors, fitted for %d", baselines.ErrBadInput, test.Sensors(), o.n)
	}
	out := make([]float64, test.Len())
	x := make([]float64, o.n)
	for t := 0; t < test.Len(); t++ {
		for i := 0; i < o.n; i++ {
			x[i] = (test.At(i, t) - o.mean[i]) / o.std[i]
		}
		var f float64
		for s, sv := range o.sv {
			f += o.alpha[s] * o.kernel(sv, x)
		}
		out[t] = o.rho - f
	}
	return out, nil
}
