// Package s2g implements a Series2Graph-style univariate subsequence
// anomaly detector (Boniol & Palpanas, PVLDB 2020): overlapping z-normalized
// subsequences are embedded into a low-dimensional space (here the top two
// principal components, found by power iteration), the embedding is
// discretized into graph nodes (angular × radial bins), and consecutive
// subsequences trace weighted edges. Trajectories along rare edges are
// anomalous: the normality of a subsequence is the weight of the edges its
// neighborhood traverses, degraded by node rarity. S2G is deterministic.
package s2g

import (
	"fmt"
	"math"

	"cad/internal/baselines"
	"cad/internal/stats"
)

// S2G is the detector for one univariate series. Use New.
type S2G struct {
	// QueryLen ℓ is the subsequence (query) length; the paper's setup uses
	// 100 for all datasets. 0 means 100, clamped to len(series)/4.
	QueryLen int
	// AngularBins and RadialBins discretize the embedding (defaults 16, 4).
	AngularBins, RadialBins int

	// Model state after Fit (optional; Score self-fits when absent).
	pc1, pc2 []float64
	edges    map[[2]int]float64
	nodeCnt  map[int]float64
	total    float64
	l        int
	maxR     float64
	fitted   bool
}

// New returns an S2G detector.
func New() *S2G { return &S2G{QueryLen: 100, AngularBins: 16, RadialBins: 4} }

// Name implements baselines.Univariate.
func (s *S2G) Name() string { return "S2G" }

// Deterministic implements baselines.Univariate: projection and binning are
// deterministic (power iteration starts from a fixed vector).
func (s *S2G) Deterministic() bool { return true }

func (s *S2G) queryLen(x []float64) int {
	l := s.QueryLen
	if l <= 0 {
		l = 100
	}
	if l > len(x)/4 {
		l = len(x) / 4
	}
	if l < 4 {
		l = 4
	}
	return l
}

// principalComponents finds the top two eigenvectors of the covariance of
// the z-normalized subsequences by deterministic power iteration with
// deflation.
func principalComponents(subs [][]float64) (pc1, pc2 []float64) {
	if len(subs) == 0 {
		return nil, nil
	}
	l := len(subs[0])
	cov := make([][]float64, l)
	for i := range cov {
		cov[i] = make([]float64, l)
	}
	for _, sub := range subs {
		for i := 0; i < l; i++ {
			si := sub[i]
			if si == 0 {
				continue
			}
			row := cov[i]
			for j := 0; j < l; j++ {
				row[j] += si * sub[j]
			}
		}
	}
	power := func() []float64 {
		v := make([]float64, l)
		for i := range v {
			// Deterministic, non-degenerate start.
			v[i] = math.Sin(float64(i)+1) + 0.5
		}
		tmp := make([]float64, l)
		for iter := 0; iter < 50; iter++ {
			for i := 0; i < l; i++ {
				var sum float64
				row := cov[i]
				for j := 0; j < l; j++ {
					sum += row[j] * v[j]
				}
				tmp[i] = sum
			}
			var norm float64
			for _, x := range tmp {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				return v
			}
			for i := range v {
				v[i] = tmp[i] / norm
			}
		}
		return v
	}
	pc1 = append([]float64(nil), power()...)
	// Deflate: cov ← cov − λ·v·vᵀ with λ = vᵀ·cov·v.
	var lambda float64
	for i := 0; i < l; i++ {
		var sum float64
		for j := 0; j < l; j++ {
			sum += cov[i][j] * pc1[j]
		}
		lambda += pc1[i] * sum
	}
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			cov[i][j] -= lambda * pc1[i] * pc1[j]
		}
	}
	pc2 = append([]float64(nil), power()...)
	return pc1, pc2
}

func project(sub, pc []float64) float64 {
	var d float64
	for i := range sub {
		d += sub[i] * pc[i]
	}
	return d
}

// embed maps a subsequence to its node id.
func (s *S2G) embed(sub []float64) int {
	x := project(sub, s.pc1)
	y := project(sub, s.pc2)
	ang := math.Atan2(y, x) + math.Pi // [0, 2π]
	ai := int(ang / (2 * math.Pi) * float64(s.AngularBins))
	if ai >= s.AngularBins {
		ai = s.AngularBins - 1
	}
	radius := math.Hypot(x, y)
	ri := 0
	if s.maxR > 0 {
		ri = int(radius / s.maxR * float64(s.RadialBins))
		if ri >= s.RadialBins {
			ri = s.RadialBins - 1
		}
	}
	return ai*s.RadialBins + ri
}

// buildModel constructs the transition graph from a series.
func (s *S2G) buildModel(x []float64) error {
	l := s.queryLen(x)
	if len(x) < 2*l {
		return fmt.Errorf("%w: series of %d points for query length %d", baselines.ErrBadInput, len(x), l)
	}
	s.l = l
	stride := l / 8
	if stride < 1 {
		stride = 1
	}
	var subs [][]float64
	for i := 0; i+l <= len(x); i += stride {
		subs = append(subs, stats.ZNormalize(x[i:i+l]))
	}
	s.pc1, s.pc2 = principalComponents(subs)
	// Radius scale from the embedding spread.
	s.maxR = 0
	coords := make([][2]float64, len(subs))
	for i, sub := range subs {
		cx, cy := project(sub, s.pc1), project(sub, s.pc2)
		coords[i] = [2]float64{cx, cy}
		if r := math.Hypot(cx, cy); r > s.maxR {
			s.maxR = r
		}
	}
	s.edges = make(map[[2]int]float64)
	s.nodeCnt = make(map[int]float64)
	prev := -1
	for _, sub := range subs {
		nd := s.embed(sub)
		s.nodeCnt[nd]++
		if prev >= 0 {
			s.edges[[2]int{prev, nd}]++
			s.total++
		}
		prev = nd
	}
	s.fitted = true
	return nil
}

// FitSeries builds the graph model from a training series.
func (s *S2G) FitSeries(x []float64) error { return s.buildModel(x) }

// ScoreSeries scores each point by the rarity of the graph path its
// subsequences traverse: score = −log of the traversed edge frequencies.
func (s *S2G) ScoreSeries(x []float64) ([]float64, error) {
	if !s.fitted {
		if err := s.buildModel(x); err != nil {
			return nil, err
		}
	}
	l := s.l
	if len(x) < 2*l {
		return nil, fmt.Errorf("%w: series of %d points for query length %d", baselines.ErrBadInput, len(x), l)
	}
	stride := l / 8
	if stride < 1 {
		stride = 1
	}
	out := make([]float64, len(x))
	counts := make([]float64, len(x))
	prev := -1
	prevStart := 0
	for i := 0; i+l <= len(x); i += stride {
		nd := s.embed(stats.ZNormalize(x[i : i+l]))
		if prev >= 0 {
			w := s.edges[[2]int{prev, nd}]
			// Rare transitions score high; unseen ones highest.
			score := -math.Log((w + 0.5) / (s.total + 1))
			for t := prevStart; t < i+l && t < len(out); t++ {
				out[t] += score
				counts[t]++
			}
		}
		prev = nd
		prevStart = i
	}
	for t := range out {
		if counts[t] > 0 {
			out[t] /= counts[t]
		}
	}
	for t := 1; t < len(out); t++ {
		if counts[t] == 0 {
			out[t] = out[t-1]
		}
	}
	return out, nil
}
