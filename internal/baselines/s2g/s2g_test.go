package s2g

import (
	"math"
	"math/rand"
	"testing"
)

func periodic(seed int64, length, anomFrom, anomTo int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, length)
	for t := range x {
		x[t] = math.Sin(2*math.Pi*float64(t)/25) + 0.05*rng.NormFloat64()
		if t >= anomFrom && t < anomTo {
			x[t] = 0.8 * rng.NormFloat64()
		}
	}
	return x
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestS2GSeparates(t *testing.T) {
	test := periodic(1, 1500, 800, 900)
	s := New()
	scores, err := s.ScoreSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(test) {
		t.Fatalf("scores len %d", len(scores))
	}
	anom := meanOver(scores, 810, 890)
	norm := meanOver(scores, 100, 700)
	if anom <= norm {
		t.Errorf("S2G failed: anomaly %v vs normal %v", anom, norm)
	}
}

func TestS2GFitThenScore(t *testing.T) {
	train := periodic(2, 1500, -1, -1)
	test := periodic(3, 1500, 700, 800)
	s := New()
	if err := s.FitSeries(train); err != nil {
		t.Fatal(err)
	}
	scores, err := s.ScoreSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 710, 790) <= meanOver(scores, 100, 600) {
		t.Error("fitted S2G failed to separate")
	}
}

func TestS2GDeterministic(t *testing.T) {
	test := periodic(4, 1200, 500, 560)
	run := func() []float64 {
		s := New()
		out, err := s.ScoreSeries(test)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("S2G must be deterministic")
		}
	}
	if !New().Deterministic() || New().Name() != "S2G" {
		t.Error("metadata wrong")
	}
}

func TestS2GQueryLenClamping(t *testing.T) {
	s := New() // QueryLen 100 but series is short
	x := periodic(5, 240, -1, -1)
	if _, err := s.ScoreSeries(x); err != nil {
		t.Fatalf("clamped query length should work: %v", err)
	}
	if s.l > 60 {
		t.Errorf("query length %d not clamped to len/4", s.l)
	}
}

func TestS2GErrors(t *testing.T) {
	s := New()
	if err := s.FitSeries(make([]float64, 6)); err == nil {
		t.Error("tiny series should error")
	}
	// Fitted on long series, scoring a much shorter one must fail.
	s2 := New()
	if err := s2.FitSeries(periodic(6, 1000, -1, -1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ScoreSeries(make([]float64, 30)); err == nil {
		t.Error("short score series should error")
	}
}

func TestPrincipalComponents(t *testing.T) {
	// Subsequences lying on a 1-D subspace: pc1 should capture it.
	subs := [][]float64{}
	dir := []float64{1, 2, 3, 4}
	for i := 1; i <= 8; i++ {
		row := make([]float64, 4)
		for j := range row {
			row[j] = float64(i) * dir[j]
		}
		subs = append(subs, row)
	}
	pc1, pc2 := principalComponents(subs)
	if pc1 == nil || pc2 == nil {
		t.Fatal("nil components")
	}
	// pc1 ∝ dir (up to sign).
	var dot, nd, np float64
	for j := range dir {
		dot += dir[j] * pc1[j]
		nd += dir[j] * dir[j]
		np += pc1[j] * pc1[j]
	}
	cos := math.Abs(dot) / math.Sqrt(nd*np)
	if cos < 0.999 {
		t.Errorf("pc1 misaligned: |cos| = %v", cos)
	}
	if p1, p2 := principalComponents(nil); p1 != nil || p2 != nil {
		t.Error("empty input should return nils")
	}
}
