// Package ecod implements ECOD (Li et al., TKDE 2022): unsupervised outlier
// detection from empirical cumulative distribution functions. Each
// dimension's left and right tail probabilities are estimated from the
// training ECDF; a point's outlier score aggregates the negative log tail
// probabilities across dimensions, choosing per dimension between left,
// right, or skewness-corrected tails. ECOD is deterministic and naturally
// decomposes per sensor, which is why the paper uses it as one of only two
// baselines able to localize abnormal sensors.
package ecod

import (
	"fmt"
	"math"
	"sort"

	"cad/internal/baselines"
	"cad/internal/mts"
)

// ECOD is the detector. Use New.
type ECOD struct {
	sorted [][]float64 // per-sensor sorted training values
	skew   []float64   // per-sensor sample skewness
	fitted bool
}

// New returns an ECOD detector.
func New() *ECOD { return &ECOD{} }

// Name implements baselines.Detector.
func (e *ECOD) Name() string { return "ECOD" }

// Deterministic implements baselines.Detector.
func (e *ECOD) Deterministic() bool { return true }

func skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2, m3 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Fit records per-sensor ECDFs from the training series.
func (e *ECOD) Fit(train *mts.MTS) error {
	n := train.Sensors()
	if train.Len() < 2 {
		return fmt.Errorf("%w: training series too short", baselines.ErrBadInput)
	}
	e.sorted = make([][]float64, n)
	e.skew = make([]float64, n)
	for i := 0; i < n; i++ {
		row := train.Row(i)
		s := make([]float64, len(row))
		copy(s, row)
		sort.Float64s(s)
		e.sorted[i] = s
		e.skew[i] = skewness(row)
	}
	e.fitted = true
	return nil
}

// ecdf returns P(X ≤ x) with a 1/(m+1) floor so tails never hit zero.
func ecdf(sorted []float64, x float64) float64 {
	m := len(sorted)
	// Count of values ≤ x.
	c := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	p := float64(c) / float64(m)
	lo := 1 / float64(m+1)
	if p < lo {
		p = lo
	}
	if p > 1-lo {
		p = 1 - lo
	}
	return p
}

// dimScore is the per-dimension ECOD tail score of value x for sensor i.
func (e *ECOD) dimScore(i int, x float64) (left, right, auto float64) {
	p := ecdf(e.sorted[i], x)
	left = -math.Log(p)
	right = -math.Log(1 - p)
	if e.skew[i] < 0 {
		auto = left
	} else {
		auto = right
	}
	return left, right, auto
}

// SensorScores implements baselines.SensorLocalizer: per-sensor, per-point
// tail scores. For localization the stronger of the two tails is used (a
// sensor is implicated whichever direction it deviates), matching how ECOD's
// dimensional outlier graphs are read.
func (e *ECOD) SensorScores(test *mts.MTS) ([][]float64, error) {
	if err := e.ensureFitted(test); err != nil {
		return nil, err
	}
	n := test.Sensors()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, test.Len())
		for t := 0; t < test.Len(); t++ {
			left, right, _ := e.dimScore(i, test.At(i, t))
			out[i][t] = math.Max(left, right)
		}
	}
	return out, nil
}

func (e *ECOD) ensureFitted(test *mts.MTS) error {
	if !e.fitted {
		if err := e.Fit(test); err != nil {
			return err
		}
	}
	if test.Sensors() != len(e.sorted) {
		return fmt.Errorf("%w: %d sensors, fitted for %d", baselines.ErrBadInput, test.Sensors(), len(e.sorted))
	}
	return nil
}

// Score aggregates dimensions with ECOD's max-of-three rule:
// O(x) = max(Σ left, Σ right, Σ auto).
func (e *ECOD) Score(test *mts.MTS) ([]float64, error) {
	if err := e.ensureFitted(test); err != nil {
		return nil, err
	}
	n := test.Sensors()
	out := make([]float64, test.Len())
	for t := 0; t < test.Len(); t++ {
		var sl, sr, sa float64
		for i := 0; i < n; i++ {
			l, r, a := e.dimScore(i, test.At(i, t))
			sl += l
			sr += r
			sa += a
		}
		out[t] = math.Max(sl, math.Max(sr, sa))
	}
	return out, nil
}
