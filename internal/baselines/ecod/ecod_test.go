package ecod

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

func gauss(seed int64, n, length int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	m := mts.Zeros(n, length)
	for t := 0; t < length; t++ {
		for i := 0; i < n; i++ {
			m.Set(i, t, rng.NormFloat64())
		}
	}
	return m
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestECODTails(t *testing.T) {
	train := gauss(1, 4, 1000)
	test := gauss(2, 4, 300)
	// Right-tail anomaly on [100,120), left-tail on [200,220).
	for tt := 100; tt < 120; tt++ {
		for i := 0; i < 4; i++ {
			test.Set(i, tt, test.At(i, tt)+6)
		}
	}
	for tt := 200; tt < 220; tt++ {
		for i := 0; i < 4; i++ {
			test.Set(i, tt, test.At(i, tt)-6)
		}
	}
	e := New()
	if err := e.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := e.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	norm := meanOver(scores, 0, 100)
	if meanOver(scores, 100, 120) < 2*norm {
		t.Errorf("right-tail anomaly not separated: %v vs %v", meanOver(scores, 100, 120), norm)
	}
	if meanOver(scores, 200, 220) < 2*norm {
		t.Errorf("left-tail anomaly not separated: %v vs %v", meanOver(scores, 200, 220), norm)
	}
}

func TestECODSensorScores(t *testing.T) {
	train := gauss(3, 5, 800)
	test := gauss(4, 5, 200)
	// Only sensor 2 is anomalous.
	for tt := 50; tt < 80; tt++ {
		test.Set(2, tt, test.At(2, tt)+7)
	}
	e := New()
	if err := e.Fit(train); err != nil {
		t.Fatal(err)
	}
	per, err := e.SensorScores(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 5 || len(per[0]) != 200 {
		t.Fatalf("shape %dx%d", len(per), len(per[0]))
	}
	s2 := meanOver(per[2], 50, 80)
	s0 := meanOver(per[0], 50, 80)
	if s2 < 3*s0 {
		t.Errorf("sensor 2 score %v should dominate sensor 0 %v", s2, s0)
	}
}

func TestECODDeterministicAndMeta(t *testing.T) {
	e := New()
	if e.Name() != "ECOD" || !e.Deterministic() {
		t.Error("metadata wrong")
	}
	train := gauss(5, 3, 500)
	test := gauss(6, 3, 100)
	a := New()
	b := New()
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	sa, _ := a.Score(test)
	sb, _ := b.Score(test)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestECODUnfittedFallsBack(t *testing.T) {
	test := gauss(7, 3, 400)
	for tt := 100; tt < 110; tt++ {
		for i := 0; i < 3; i++ {
			test.Set(i, tt, 9)
		}
	}
	e := New()
	scores, err := e.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 100, 110) <= meanOver(scores, 0, 100) {
		t.Error("self-fit ECOD failed")
	}
}

func TestECODErrors(t *testing.T) {
	e := New()
	if err := e.Fit(mts.Zeros(2, 1)); err == nil {
		t.Error("short train should error")
	}
	if err := e.Fit(gauss(8, 3, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Score(mts.Zeros(9, 10)); err == nil {
		t.Error("sensor mismatch should error")
	}
	if _, err := e.SensorScores(mts.Zeros(9, 10)); err == nil {
		t.Error("sensor mismatch should error")
	}
}

func TestECDFBounds(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if p := ecdf(sorted, -10); p <= 0 || p > 0.5 {
		t.Errorf("left-of-range ecdf = %v", p)
	}
	if p := ecdf(sorted, 10); p >= 1 || p < 0.5 {
		t.Errorf("right-of-range ecdf = %v", p)
	}
	if p := ecdf(sorted, 3); math.Abs(p-0.6) > 1e-9 {
		t.Errorf("ecdf(3) = %v, want 0.6", p)
	}
}

func TestSkewness(t *testing.T) {
	if s := skewness([]float64{1, 2, 3, 4, 5}); math.Abs(s) > 1e-9 {
		t.Errorf("symmetric skewness = %v", s)
	}
	if s := skewness([]float64{0, 0, 0, 0, 100}); s <= 0 {
		t.Errorf("right-skewed skewness = %v", s)
	}
	if skewness([]float64{1, 2}) != 0 {
		t.Error("too-short skewness should be 0")
	}
	if skewness([]float64{3, 3, 3, 3}) != 0 {
		t.Error("constant skewness should be 0")
	}
}
