package hbos

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

func gauss(seed int64, n, length int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	m := mts.Zeros(n, length)
	for t := 0; t < length; t++ {
		for i := 0; i < n; i++ {
			m.Set(i, t, rng.NormFloat64())
		}
	}
	return m
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestHBOSSeparates(t *testing.T) {
	train := gauss(1, 4, 1000)
	test := gauss(2, 4, 300)
	for tt := 100; tt < 130; tt++ {
		for i := 0; i < 4; i++ {
			test.Set(i, tt, test.At(i, tt)+6)
		}
	}
	h := New(0)
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := h.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 100, 130) <= 1.5*meanOver(scores, 0, 100) {
		t.Errorf("HBOS failed to separate: %v vs %v", meanOver(scores, 100, 130), meanOver(scores, 0, 100))
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("bad score at %d: %v", i, s)
		}
	}
}

func TestHBOSOutOfRange(t *testing.T) {
	train := gauss(3, 2, 500)
	test := mts.Zeros(2, 10)
	for tt := 0; tt < 10; tt++ {
		test.Set(0, tt, 1e6) // far outside every histogram
		test.Set(1, tt, -1e6)
	}
	h := New(10)
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := h.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	inTrain, _ := h.Score(train)
	if scores[0] <= meanOver(inTrain, 0, 500) {
		t.Errorf("out-of-range points should score above in-range: %v", scores[0])
	}
}

func TestHBOSConstantSensor(t *testing.T) {
	train := mts.Zeros(2, 100)
	for tt := 0; tt < 100; tt++ {
		train.Set(0, tt, 5)
		train.Set(1, tt, float64(tt%7))
	}
	h := New(0)
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := h.Score(train)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("constant sensor produced bad score at %d: %v", i, s)
		}
	}
}

func TestHBOSMetaAndErrors(t *testing.T) {
	h := New(0)
	if !h.Deterministic() || h.Name() != "HBOS" {
		t.Error("metadata wrong")
	}
	if err := h.Fit(mts.Zeros(2, 1)); err == nil {
		t.Error("short train should error")
	}
	if err := h.Fit(gauss(4, 3, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Score(mts.Zeros(9, 10)); err == nil {
		t.Error("sensor mismatch should error")
	}
	// Self-fit path.
	h2 := New(0)
	if _, err := h2.Score(gauss(5, 3, 200)); err != nil {
		t.Fatal(err)
	}
}
