// Package hbos implements the Histogram-Based Outlier Score (Goldstein &
// Dengel 2012, the paper's related work [30]): each sensor gets an
// equal-width histogram fitted on training data, and a point's score is the
// sum over sensors of −log of its bin's (height-normalized) density —
// assuming feature independence, which makes HBOS extremely fast and a
// useful lower bound on how far marginal densities alone go.
package hbos

import (
	"fmt"
	"math"

	"cad/internal/baselines"
	"cad/internal/mts"
)

// HBOS is the detector. Use New.
type HBOS struct {
	// Bins per histogram (default: ⌈√train length⌉ capped at 50).
	Bins int

	lo, hi  []float64
	density [][]float64 // per sensor, per bin, normalized to max 1
	n       int
	fitted  bool
}

// New returns an HBOS detector (bins ≤ 0 means automatic).
func New(bins int) *HBOS { return &HBOS{Bins: bins} }

// Name implements baselines.Detector.
func (h *HBOS) Name() string { return "HBOS" }

// Deterministic implements baselines.Detector.
func (h *HBOS) Deterministic() bool { return true }

// Fit builds the per-sensor histograms.
func (h *HBOS) Fit(train *mts.MTS) error {
	h.n = train.Sensors()
	length := train.Len()
	if length < 2 {
		return fmt.Errorf("%w: training series too short", baselines.ErrBadInput)
	}
	bins := h.Bins
	if bins <= 0 {
		bins = int(math.Ceil(math.Sqrt(float64(length))))
		if bins > 50 {
			bins = 50
		}
	}
	if bins < 2 {
		bins = 2
	}
	h.lo = make([]float64, h.n)
	h.hi = make([]float64, h.n)
	h.density = make([][]float64, h.n)
	for i := 0; i < h.n; i++ {
		row := train.Row(i)
		lo, hi := row[0], row[0]
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi == lo {
			hi = lo + 1
		}
		// Widen slightly so max values fall inside the last bin.
		span := hi - lo
		lo -= span * 1e-9
		hi += span * 1e-9
		h.lo[i], h.hi[i] = lo, hi
		counts := make([]float64, bins)
		for _, v := range row {
			b := int(float64(bins) * (v - lo) / (hi - lo))
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
			counts[b]++
		}
		var maxC float64
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		for b := range counts {
			counts[b] /= maxC
		}
		h.density[i] = counts
	}
	h.fitted = true
	return nil
}

// Score sums per-sensor −log densities; unseen bins get a pseudo-density so
// the log stays finite.
func (h *HBOS) Score(test *mts.MTS) ([]float64, error) {
	if !h.fitted {
		if err := h.Fit(test); err != nil {
			return nil, err
		}
	}
	if test.Sensors() != h.n {
		return nil, fmt.Errorf("%w: %d sensors, fitted for %d", baselines.ErrBadInput, test.Sensors(), h.n)
	}
	const floor = 1e-3
	out := make([]float64, test.Len())
	for t := 0; t < test.Len(); t++ {
		var score float64
		for i := 0; i < h.n; i++ {
			bins := len(h.density[i])
			v := test.At(i, t)
			d := floor
			if v >= h.lo[i] && v <= h.hi[i] {
				b := int(float64(bins) * (v - h.lo[i]) / (h.hi[i] - h.lo[i]))
				if b >= bins {
					b = bins - 1
				}
				if h.density[i][b] > floor {
					d = h.density[i][b]
				}
			}
			score += -math.Log(d)
		}
		out[t] = score
	}
	return out, nil
}
