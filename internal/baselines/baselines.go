// Package baselines defines the common interface of the nine comparison
// methods the paper evaluates against CAD (§VI-A): the data mining-based
// LOF, ECOD, and IForest; the deep learning-based USAD and RCoders; and the
// univariate S2G, SAND, SAND*, and NormA, which are lifted to the MTS
// setting by running them per sensor and averaging the scores, exactly as
// the paper does.
package baselines

import (
	"errors"
	"fmt"

	"cad/internal/mts"
)

// ErrNotFitted is returned when Score is called before a required Fit.
var ErrNotFitted = errors.New("baselines: detector not fitted")

// ErrBadInput reports malformed input series.
var ErrBadInput = errors.New("baselines: bad input")

// Detector scores every time point of a multivariate series; higher scores
// are more anomalous.
type Detector interface {
	// Name of the method as it appears in the paper's tables.
	Name() string
	// Deterministic reports whether repeated Fit+Score runs on identical
	// input produce identical scores (paper §VI-E).
	Deterministic() bool
	// Fit trains on an anomaly-free series. Methods that need no training
	// accept any call cheaply.
	Fit(train *mts.MTS) error
	// Score returns one anomaly score per time point of test.
	Score(test *mts.MTS) ([]float64, error)
}

// SensorLocalizer is implemented by detectors that can attribute anomalies
// to individual sensors (the paper: only ECOD and RCoders can). The result
// is an n×|T| matrix of per-sensor scores.
type SensorLocalizer interface {
	SensorScores(test *mts.MTS) ([][]float64, error)
}

// Univariate scores a single time series; used by the per-sensor adapter.
type Univariate interface {
	Name() string
	Deterministic() bool
	// FitSeries observes one training series (may be a no-op).
	FitSeries(x []float64) error
	// ScoreSeries returns one score per point of x.
	ScoreSeries(x []float64) ([]float64, error)
}

// PerSensor lifts a univariate method to the MTS interface: an independent
// instance runs on every sensor and the per-point scores are averaged
// (§VI-A: "we perform these methods on each time series and treat the mean
// of the abnormal scores as the output").
type PerSensor struct {
	// NewInstance constructs a fresh univariate detector for one sensor;
	// the argument is the sensor index (lets randomized methods vary
	// seeds).
	NewInstance func(sensor int) Univariate

	name          string
	deterministic bool
	instances     []Univariate
	fitted        bool
}

// NewPerSensor builds the adapter. name and deterministic describe the
// wrapped method.
func NewPerSensor(name string, deterministic bool, newInstance func(sensor int) Univariate) *PerSensor {
	return &PerSensor{NewInstance: newInstance, name: name, deterministic: deterministic}
}

// Name implements Detector.
func (p *PerSensor) Name() string { return p.name }

// Deterministic implements Detector.
func (p *PerSensor) Deterministic() bool { return p.deterministic }

// Fit trains one instance per sensor on the sensor's training series.
func (p *PerSensor) Fit(train *mts.MTS) error {
	p.instances = make([]Univariate, train.Sensors())
	for i := range p.instances {
		p.instances[i] = p.NewInstance(i)
		if err := p.instances[i].FitSeries(train.Row(i)); err != nil {
			return fmt.Errorf("%s: sensor %d: %w", p.name, i, err)
		}
	}
	p.fitted = true
	return nil
}

// Score averages the per-sensor score series. If Fit was never called the
// instances are created lazily without training (the univariate methods are
// unsupervised and can run fit-free).
func (p *PerSensor) Score(test *mts.MTS) ([]float64, error) {
	n := test.Sensors()
	if !p.fitted || len(p.instances) != n {
		p.instances = make([]Univariate, n)
		for i := range p.instances {
			p.instances[i] = p.NewInstance(i)
		}
	}
	out := make([]float64, test.Len())
	for i := 0; i < n; i++ {
		s, err := p.instances[i].ScoreSeries(test.Row(i))
		if err != nil {
			return nil, fmt.Errorf("%s: sensor %d: %w", p.name, i, err)
		}
		if len(s) != test.Len() {
			return nil, fmt.Errorf("%s: sensor %d: %w: got %d scores for %d points", p.name, i, ErrBadInput, len(s), test.Len())
		}
		for t, v := range s {
			out[t] += v
		}
	}
	for t := range out {
		out[t] /= float64(n)
	}
	return out, nil
}
