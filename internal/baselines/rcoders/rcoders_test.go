package rcoders

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

func latentMTS(seed int64, n, length, anomFrom, anomTo int, anomSensors []int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	anom := map[int]bool{}
	for _, s := range anomSensors {
		anom[s] = true
	}
	m := mts.Zeros(n, length)
	for t := 0; t < length; t++ {
		latent := math.Sin(2 * math.Pi * float64(t) / 30)
		for i := 0; i < n; i++ {
			v := latent*(1+0.3*float64(i)) + 0.05*rng.NormFloat64()
			if anom[i] && t >= anomFrom && t < anomTo {
				v = rng.NormFloat64() * 2
			}
			m.Set(i, t, v)
		}
	}
	return m
}

func meanOver(s []float64, from, to int) float64 {
	var sum float64
	for i := from; i < to; i++ {
		sum += s[i]
	}
	return sum / float64(to-from)
}

func TestRCodersSeparates(t *testing.T) {
	train := latentMTS(1, 6, 700, -1, -1, nil)
	test := latentMTS(2, 6, 500, 250, 330, []int{0, 1, 2, 3, 4, 5})
	r := New(3)
	r.Epochs = 10
	if err := r.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores, err := r.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	anom, norm := meanOver(scores, 260, 320), meanOver(scores, 30, 220)
	if anom <= 2*norm {
		t.Errorf("RCoders separation weak: %v vs %v", anom, norm)
	}
}

func TestRCodersLocalizes(t *testing.T) {
	train := latentMTS(4, 6, 700, -1, -1, nil)
	test := latentMTS(5, 6, 500, 250, 330, []int{1, 2})
	r := New(6)
	r.Epochs = 10
	if err := r.Fit(train); err != nil {
		t.Fatal(err)
	}
	per, err := r.SensorScores(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 6 || len(per[0]) != 500 {
		t.Fatalf("shape %dx%d", len(per), len(per[0]))
	}
	bad := (meanOver(per[1], 260, 320) + meanOver(per[2], 260, 320)) / 2
	good := (meanOver(per[0], 260, 320) + meanOver(per[4], 260, 320)) / 2
	if bad <= 2*good {
		t.Errorf("localization weak: affected %v vs unaffected %v", bad, good)
	}
}

func TestRCodersSeedReproducible(t *testing.T) {
	train := latentMTS(7, 4, 300, -1, -1, nil)
	test := latentMTS(8, 4, 150, 70, 100, []int{0})
	run := func() []float64 {
		r := New(9)
		r.Epochs = 3
		if err := r.Fit(train); err != nil {
			t.Fatal(err)
		}
		s, err := r.Score(test)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	if New(1).Deterministic() || New(1).Name() != "RCoders" {
		t.Error("metadata wrong")
	}
}

func TestRCodersErrors(t *testing.T) {
	r := New(1)
	if err := r.Fit(mts.Zeros(3, 2)); err == nil {
		t.Error("short train should error")
	}
	r = New(1)
	r.Epochs = 2
	if err := r.Fit(latentMTS(10, 4, 200, -1, -1, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Score(mts.Zeros(9, 20)); err == nil {
		t.Error("sensor mismatch should error")
	}
}

func TestRCodersSelfFit(t *testing.T) {
	test := latentMTS(11, 4, 600, 450, 500, []int{0, 1, 2, 3})
	r := New(12)
	r.Epochs = 6
	scores, err := r.Score(test)
	if err != nil {
		t.Fatal(err)
	}
	if meanOver(scores, 460, 490) <= meanOver(scores, 50, 400) {
		t.Error("self-fit RCoders failed")
	}
}
