// Package rcoders reproduces the behaviour of RCoders / RANSynCoders
// (Abdulaal et al., KDD 2021): an ensemble of bootstrap-trained
// autoencoders whose per-sensor reconstruction errors both score anomalies
// and localize the responsible sensors. The published system adds spectral
// synchronization of asynchronous series; here each sensor is standardized
// and the ensemble reconstructs whole sensor columns, which preserves the
// two properties the paper's comparison uses — reconstruction-based scores
// with per-sensor attributions and run-to-run variance from random
// bootstraps (DESIGN.md documents the simplification).
package rcoders

import (
	"fmt"
	"math/rand"

	"cad/internal/baselines"
	"cad/internal/mts"
	"cad/internal/nn"
	"cad/internal/stats"
)

// RCoders is the detector. Use New.
type RCoders struct {
	// Ensemble is the number of bootstrap autoencoders (default 3).
	Ensemble int
	// Hidden is the latent dimension (default 16, clamped below n).
	Hidden int
	// Epochs per member (default 15).
	Epochs int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Seed drives initialization and bootstrap sampling.
	Seed int64

	nets      []*nn.Network
	mean, std []float64
	n         int
	fitted    bool
}

// New returns an RCoders detector with the given seed.
func New(seed int64) *RCoders {
	return &RCoders{Ensemble: 3, Hidden: 16, Epochs: 15, LR: 1e-3, Seed: seed}
}

// Name implements baselines.Detector.
func (r *RCoders) Name() string { return "RCoders" }

// Deterministic implements baselines.Detector.
func (r *RCoders) Deterministic() bool { return false }

// Fit trains the bootstrap ensemble on the anomaly-free series.
func (r *RCoders) Fit(train *mts.MTS) error {
	r.n = train.Sensors()
	length := train.Len()
	if length < 4 {
		return fmt.Errorf("%w: training series too short", baselines.ErrBadInput)
	}
	r.mean = make([]float64, r.n)
	r.std = make([]float64, r.n)
	for i := 0; i < r.n; i++ {
		r.mean[i] = stats.Mean(train.Row(i))
		r.std[i] = stats.StdDev(train.Row(i))
		if r.std[i] == 0 {
			r.std[i] = 1
		}
	}
	h := r.Hidden
	if h >= r.n {
		h = r.n / 2
		if h < 1 {
			h = 1
		}
	}
	rng := rand.New(rand.NewSource(r.Seed))
	r.nets = make([]*nn.Network, r.Ensemble)
	x := make([]float64, r.n)
	grad := make([]float64, r.n)
	for m := range r.nets {
		net, err := nn.NewNetwork([]int{r.n, h, r.n}, nn.Tanh, nn.Identity, rng)
		if err != nil {
			return err
		}
		opt := nn.NewAdam(r.LR)
		// Bootstrap sample of time points for this member.
		sample := make([]int, length)
		for i := range sample {
			sample[i] = rng.Intn(length)
		}
		for epoch := 0; epoch < r.Epochs; epoch++ {
			rng.Shuffle(len(sample), func(a, b int) { sample[a], sample[b] = sample[b], sample[a] })
			for _, t := range sample {
				r.standardize(train, t, x)
				net.ZeroGrad()
				out := net.Forward(x)
				if _, err := nn.MSE(out, x, grad); err != nil {
					return err
				}
				net.Backward(grad)
				opt.Step(1, net)
			}
		}
		r.nets[m] = net
	}
	r.fitted = true
	return nil
}

func (r *RCoders) standardize(m *mts.MTS, t int, dst []float64) {
	for i := 0; i < r.n; i++ {
		dst[i] = (m.At(i, t) - r.mean[i]) / r.std[i]
	}
}

func (r *RCoders) ensureFitted(test *mts.MTS) error {
	if !r.fitted {
		if err := r.Fit(test); err != nil {
			return err
		}
	}
	if test.Sensors() != r.n {
		return fmt.Errorf("%w: %d sensors, fitted for %d", baselines.ErrBadInput, test.Sensors(), r.n)
	}
	return nil
}

// SensorScores implements baselines.SensorLocalizer: the ensemble-mean
// squared reconstruction error of each sensor at each point.
func (r *RCoders) SensorScores(test *mts.MTS) ([][]float64, error) {
	if err := r.ensureFitted(test); err != nil {
		return nil, err
	}
	out := make([][]float64, r.n)
	for i := range out {
		out[i] = make([]float64, test.Len())
	}
	x := make([]float64, r.n)
	for t := 0; t < test.Len(); t++ {
		r.standardize(test, t, x)
		for _, net := range r.nets {
			rec := net.Forward(x)
			for i := 0; i < r.n; i++ {
				d := rec[i] - x[i]
				out[i][t] += d * d
			}
		}
	}
	inv := 1 / float64(len(r.nets))
	for i := range out {
		for t := range out[i] {
			out[i][t] *= inv
		}
	}
	return out, nil
}

// Score returns the per-point anomaly score: the mean over sensors of the
// per-sensor reconstruction errors.
func (r *RCoders) Score(test *mts.MTS) ([]float64, error) {
	per, err := r.SensorScores(test)
	if err != nil {
		return nil, err
	}
	out := make([]float64, test.Len())
	for t := range out {
		var sum float64
		for i := 0; i < r.n; i++ {
			sum += per[i][t]
		}
		out[t] = sum / float64(r.n)
	}
	return out, nil
}
