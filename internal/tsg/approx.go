package tsg

import (
	"fmt"
	"math"

	"cad/internal/hnsw"
	"cad/internal/mts"
)

// ApproxConfig enables HNSW-backed TSG construction (the paper's §IV-F
// complexity analysis assumes such an index to build the k-NN graph in
// O(n log n) instead of the exact O(n²) correlation matrix). The trade-off
// is a small recall loss on the weakest edges, which τ-pruning mostly
// removes anyway. The exact builder's tight O(n²·w) loop wins below
// roughly n ≈ 500 sensors; the HNSW build is ~2× faster by n ≈ 1200 (see
// BenchmarkBuildExact400/BenchmarkBuildApprox400).
type ApproxConfig struct {
	// M is the HNSW connectivity (default 12).
	M int
	// EfConstruction is the HNSW insertion beam (default 80).
	EfConstruction int
	// EfSearch is the query beam (default max(2k, 48)).
	EfSearch int
	// Seed drives the HNSW level draws.
	Seed int64
}

// BuildApprox converts one window into a TSG using an HNSW index over the
// standardized sensor rows under correlation distance, avoiding the full
// O(n²·w) Pearson matrix. Constant rows are isolated vertices, as in the
// exact builder.
func (b Builder) BuildApprox(window *mts.MTS, ac ApproxConfig) (*Graph, error) {
	n := window.Sensors()
	if err := b.Validate(n); err != nil {
		return nil, err
	}
	if ac.M <= 0 {
		ac.M = 12
	}
	if ac.EfConstruction <= 0 {
		ac.EfConstruction = 80
	}
	if ac.EfSearch <= 0 {
		ac.EfSearch = 2 * b.K
		if ac.EfSearch < 48 {
			ac.EfSearch = 48
		}
	}
	w := window.Len()
	// Standardize rows to unit norm so dot products are Pearson
	// correlations.
	unit := make([][]float64, n)
	constant := make([]bool, n)
	for i := 0; i < n; i++ {
		row := window.Row(i)
		var mean float64
		for _, x := range row {
			mean += x
		}
		mean /= float64(w)
		z := make([]float64, w)
		var ss float64
		for j, x := range row {
			z[j] = x - mean
			ss += z[j] * z[j]
		}
		if ss == 0 {
			constant[i] = true
		} else {
			inv := 1 / math.Sqrt(ss)
			for j := range z {
				z[j] *= inv
			}
		}
		unit[i] = z
	}
	ix := hnsw.New(hnsw.CorrelationDistance, hnsw.Config{
		M: ac.M, EfConstruction: ac.EfConstruction, Seed: ac.Seed,
	})
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		if constant[i] {
			ids[i] = -1
			continue
		}
		ids[i] = ix.Add(unit[i])
	}
	if ix.Len() == 0 {
		return NewGraph(n), nil
	}
	// Map index ids back to sensor ids.
	back := make([]int, ix.Len())
	for sensor, id := range ids {
		if id >= 0 {
			back[id] = sensor
		}
	}
	g := NewGraph(n)
	for sensor := 0; sensor < n; sensor++ {
		if ids[sensor] < 0 {
			continue
		}
		res, err := ix.Search(unit[sensor], b.K+1, ac.EfSearch)
		if err != nil {
			return nil, fmt.Errorf("tsg: approx knn: %w", err)
		}
		added := 0
		for _, r := range res {
			other := back[r.ID]
			if other == sensor {
				continue
			}
			// Recover the signed correlation: the index uses |r|, the TSG
			// stores the sign too.
			var dot float64
			zu, zv := unit[sensor], unit[other]
			for t := 0; t < w; t++ {
				dot += zu[t] * zv[t]
			}
			if math.Abs(dot) < b.Tau {
				// Results come closest-first under |r|; all later ones
				// are weaker.
				break
			}
			if dot > 1 {
				dot = 1
			} else if dot < -1 {
				dot = -1
			}
			g.SetEdge(sensor, other, dot)
			added++
			if added == b.K {
				break
			}
		}
	}
	return g, nil
}
