package tsg

import (
	"math"
	"sort"
)

// edge is one k-NN candidate: neighbor id and signed correlation.
type edge struct {
	v int
	w float64
}

// rankBefore orders candidates the way fromCorrelation sorts them: by
// |correlation| descending, ties toward the lower vertex id. The incremental
// repairer must select under exactly this order to stay bit-identical with
// the batch builder.
func rankBefore(aw float64, av int, bw float64, bv int) bool {
	aa, ab := math.Abs(aw), math.Abs(bw)
	if aa != ab {
		return aa > ab
	}
	return av < bv
}

// Incremental maintains a TSG across a sliding sequence of correlation
// matrices, repairing only the edges that can actually have changed instead
// of rebuilding the graph (and its adjacency maps) from scratch every round.
//
// The maintained invariant is exact: after every Repair the graph equals
// Builder.FromCorrelation(corr) edge for edge and weight for weight. The
// saving comes from two places: vertices whose k-NN selection provably did
// not change are skipped entirely (see the dirty contract on Repair), and
// for the rest the top-k candidates are found by partial selection instead
// of a full sort, with the surviving edges written into the long-lived
// graph via SetEdge/RemoveEdge.
//
// An Incremental is not safe for concurrent use.
type Incremental struct {
	b    Builder
	n    int
	g    *Graph
	init bool

	// byID[u] is u's current top-K candidate list sorted by neighbor id
	// (weights included, pre-τ-pruning). kthW/kthV is the rank-K boundary
	// candidate deciding whether an improved outsider enters the top-K.
	byID [][]edge
	kthW []float64
	kthV []int

	// Scratch reused across rounds.
	cand    []edge
	need    []bool
	staged  [][]edge // newly selected byID lists for repaired vertices
	dirtyIx []int
}

// NewIncremental returns an incremental builder over n vertices with an
// empty graph; the first Repair populates it fully.
func NewIncremental(b Builder, n int) (*Incremental, error) {
	if err := b.Validate(n); err != nil {
		return nil, err
	}
	return &Incremental{
		b:      b,
		n:      n,
		g:      NewGraph(n),
		byID:   make([][]edge, n),
		kthW:   make([]float64, n),
		kthV:   make([]int, n),
		cand:   make([]edge, 0, n-1),
		need:   make([]bool, n),
		staged: make([][]edge, n),
	}, nil
}

// Graph returns the maintained graph. It is mutated in place by Repair;
// callers must not modify it.
func (inc *Incremental) Graph() *Graph { return inc.g }

// Repair brings the maintained graph to Builder.FromCorrelation(corr).
// corr must be the full n×n symmetric correlation matrix. It returns the
// number of structural changes applied — edges inserted or removed, not
// counting weight-only updates — which callers use to decide whether the
// graph's topology is stable enough for warm-started community detection.
//
// dirty is the caller's promise about what changed since the previous
// Repair: dirty[i] == false asserts sensor i's window data — and therefore
// every corr entry involving i — is unchanged. A nil dirty (or the first
// call) treats everything as changed. Over-marking is always safe;
// under-marking breaks the equivalence invariant.
func (inc *Incremental) Repair(corr [][]float64, dirty []bool) (structural int) {
	n := inc.n
	inc.dirtyIx = inc.dirtyIx[:0]
	all := !inc.init || dirty == nil || len(dirty) != n
	if !all {
		for j, d := range dirty {
			if d {
				inc.dirtyIx = append(inc.dirtyIx, j)
			}
		}
		if len(inc.dirtyIx) == 0 {
			return 0 // nothing changed, graph already exact
		}
	}
	for u := 0; u < n; u++ {
		if all {
			inc.need[u] = true
			continue
		}
		inc.need[u] = dirty[u] || inc.touched(u, corr)
	}

	// Phase A: recompute the top-K of every vertex that needs it. Staged
	// so phase B can consult each endpoint's up-to-date selection.
	for u := 0; u < n; u++ {
		if inc.need[u] {
			inc.staged[u] = inc.selectFor(u, corr)
		}
	}

	// Phase B: apply edge diffs. An undirected edge (u,v) exists iff at
	// least one endpoint selects the other with |w| ≥ τ, so removal needs
	// both endpoints' current view while insertion needs only one.
	tau := inc.b.Tau
	for u := 0; u < n; u++ {
		if !inc.need[u] {
			continue
		}
		for _, e := range inc.byID[u] {
			if math.Abs(e.w) < tau {
				continue
			}
			if !wants(inc.staged[u], e.v, tau) && !wants(inc.current(e.v), u, tau) {
				if inc.g.HasEdge(u, e.v) {
					structural++
				}
				inc.g.RemoveEdge(u, e.v)
			}
		}
		for _, e := range inc.staged[u] {
			if math.Abs(e.w) >= tau {
				if !inc.g.HasEdge(u, e.v) {
					structural++
				}
				inc.g.SetEdge(u, e.v, e.w)
			}
		}
	}

	// Phase C: commit the staged selections. The swap keeps the old list's
	// backing array around for the next round's staging.
	for u := 0; u < n; u++ {
		if !inc.need[u] {
			continue
		}
		inc.byID[u], inc.staged[u] = inc.staged[u], inc.byID[u]
		inc.commitBoundary(u)
	}
	inc.init = true
	return structural
}

// current returns v's selection as of this Repair: the staged list when v
// was recomputed this round, its committed list otherwise.
func (inc *Incremental) current(v int) []edge {
	if inc.need[v] {
		return inc.staged[v]
	}
	return inc.byID[v]
}

// wants reports whether the id-sorted selection list keeps v as a τ-passing
// neighbor.
func wants(list []edge, v int, tau float64) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i].v >= v })
	return i < len(list) && list[i].v == v && math.Abs(list[i].w) >= tau
}

// touched reports whether any dirty sensor can change clean vertex u's
// top-K selection: either it already sits in u's top-K (its weight changed,
// which can reorder the list or cross τ), or its new correlation now ranks
// at or above u's rank-K boundary.
func (inc *Incremental) touched(u int, corr [][]float64) bool {
	row := corr[u]
	for _, j := range inc.dirtyIx {
		if j == u {
			continue
		}
		if wantsAny(inc.byID[u], j) {
			return true
		}
		if rankBefore(row[j], j, inc.kthW[u], inc.kthV[u]) {
			return true
		}
	}
	return false
}

// wantsAny reports membership in the id-sorted selection regardless of τ.
func wantsAny(list []edge, v int) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i].v >= v })
	return i < len(list) && list[i].v == v
}

// selectFor computes u's top-K candidates under the batch builder's exact
// order and returns them sorted by neighbor id, reusing u's retired staging
// buffer to keep the steady state allocation-free.
func (inc *Incremental) selectFor(u int, corr [][]float64) []edge {
	n, k := inc.n, inc.b.K
	cand := inc.cand[:0]
	row := corr[u]
	for v := 0; v < n; v++ {
		if v != u {
			cand = append(cand, edge{v, row[v]})
		}
	}
	inc.cand = cand
	topK(cand, k)
	sel := inc.staged[u][:0]
	if cap(sel) < k {
		sel = make([]edge, 0, k)
	}
	sel = append(sel, cand[:k]...)
	sort.Slice(sel, func(i, j int) bool { return sel[i].v < sel[j].v })
	return sel
}

// commitBoundary recomputes the rank-K boundary of u's committed selection.
func (inc *Incremental) commitBoundary(u int) {
	list := inc.byID[u]
	first := true
	for _, e := range list {
		if first || rankBefore(inc.kthW[u], inc.kthV[u], e.w, e.v) {
			inc.kthW[u], inc.kthV[u] = e.w, e.v
			first = false
		}
	}
}

// topK partially selects the k rank-first candidates into cand[:k] using
// quickselect under rankBefore. The comparator is a strict total order, so
// the selected set is unique regardless of pivot choices.
func topK(cand []edge, k int) {
	if k >= len(cand) {
		return
	}
	lo, hi := 0, len(cand)-1
	for lo < hi {
		p := partitionRank(cand, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

// partitionRank is a Hoare-style partition with a median-of-three pivot
// under rankBefore, returning the pivot's final index.
func partitionRank(cand []edge, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if rankBefore(cand[mid].w, cand[mid].v, cand[lo].w, cand[lo].v) {
		cand[lo], cand[mid] = cand[mid], cand[lo]
	}
	if rankBefore(cand[hi].w, cand[hi].v, cand[lo].w, cand[lo].v) {
		cand[lo], cand[hi] = cand[hi], cand[lo]
	}
	if rankBefore(cand[hi].w, cand[hi].v, cand[mid].w, cand[mid].v) {
		cand[mid], cand[hi] = cand[hi], cand[mid]
	}
	pivot := cand[mid]
	cand[mid], cand[hi-1] = cand[hi-1], cand[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if rankBefore(cand[j].w, cand[j].v, pivot.w, pivot.v) {
			cand[i], cand[j] = cand[j], cand[i]
			i++
		}
	}
	cand[i], cand[hi-1] = cand[hi-1], cand[i]
	return i
}
