package tsg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randCorr returns a random symmetric matrix with unit diagonal and entries
// in [-1, 1], quantized so exact ties between |entries| actually occur.
func randCorr(rng *rand.Rand, n int, quant float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 2*rng.Float64() - 1
			if quant > 0 {
				v = math.Round(v/quant) * quant
			}
			m[i][j], m[j][i] = v, v
		}
	}
	return m
}

// perturbSensors changes every correlation involving each chosen sensor and
// returns the dirty mask.
func perturbSensors(rng *rand.Rand, corr [][]float64, count int, quant float64) []bool {
	n := len(corr)
	dirty := make([]bool, n)
	for c := 0; c < count; c++ {
		s := rng.Intn(n)
		dirty[s] = true
		for j := 0; j < n; j++ {
			if j == s {
				continue
			}
			v := 2*rng.Float64() - 1
			if quant > 0 {
				v = math.Round(v/quant) * quant
			}
			corr[s][j], corr[j][s] = v, v
		}
	}
	return dirty
}

func sameGraph(a, b *Graph) error {
	if a.N() != b.N() {
		return fmt.Errorf("vertex count %d vs %d", a.N(), b.N())
	}
	if a.Edges() != b.Edges() {
		return fmt.Errorf("edge count %d vs %d", a.Edges(), b.Edges())
	}
	for u := 0; u < a.N(); u++ {
		for _, v := range a.NeighborsSorted(u) {
			wa, _ := a.Weight(u, v)
			wb, ok := b.Weight(u, v)
			if !ok {
				return fmt.Errorf("edge (%d,%d) missing", u, v)
			}
			if wa != wb {
				return fmt.Errorf("edge (%d,%d) weight %v vs %v", u, v, wa, wb)
			}
		}
	}
	return nil
}

func TestIncrementalMatchesBatchRandomized(t *testing.T) {
	cases := []struct {
		n, k  int
		tau   float64
		quant float64
	}{
		{n: 20, k: 4, tau: 0.3, quant: 0},
		{n: 20, k: 4, tau: 0, quant: 0},     // τ=0: no pruning
		{n: 16, k: 5, tau: 0.4, quant: 0.2}, // coarse quantization: many exact ties
		{n: 30, k: 29, tau: 0.5, quant: 0},  // k = n-1: everything is a candidate
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n%d_k%d_tau%v_q%v", tc.n, tc.k, tc.tau, tc.quant), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(tc.n)*1000 + int64(tc.k)))
			b := Builder{K: tc.k, Tau: tc.tau}
			inc, err := NewIncremental(b, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			corr := randCorr(rng, tc.n, tc.quant)
			inc.Repair(corr, nil)
			for step := 0; step < 60; step++ {
				var dirty []bool
				switch step % 4 {
				case 0:
					dirty = perturbSensors(rng, corr, 1, tc.quant)
				case 1:
					dirty = perturbSensors(rng, corr, 3, tc.quant)
				case 2:
					dirty = make([]bool, tc.n) // nothing changed
				case 3:
					perturbSensors(rng, corr, 2, tc.quant)
					dirty = nil // all-dirty fallback
				}
				inc.Repair(corr, dirty)
				want, err := b.FromCorrelation(corr)
				if err != nil {
					t.Fatal(err)
				}
				if err := sameGraph(inc.Graph(), want); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		})
	}
}

func TestIncrementalConstantRows(t *testing.T) {
	const n, k = 10, 3
	rng := rand.New(rand.NewSource(99))
	b := Builder{K: k, Tau: 0.25}
	inc, err := NewIncremental(b, n)
	if err != nil {
		t.Fatal(err)
	}
	corr := randCorr(rng, n, 0)
	// Sensor 4 goes constant: PearsonMatrix zeroes its whole row/column
	// including the diagonal.
	for j := 0; j < n; j++ {
		corr[4][j], corr[j][4] = 0, 0
	}
	inc.Repair(corr, nil)
	want, _ := b.FromCorrelation(corr)
	if err := sameGraph(inc.Graph(), want); err != nil {
		t.Fatal(err)
	}
	if inc.Graph().Degree(4) != 0 {
		t.Fatalf("constant sensor has degree %d, want 0", inc.Graph().Degree(4))
	}
	// It comes back to life: only sensor 4 is dirty.
	for j := 0; j < n; j++ {
		if j == 4 {
			corr[4][4] = 1
			continue
		}
		v := 2*rng.Float64() - 1
		corr[4][j], corr[j][4] = v, v
	}
	dirty := make([]bool, n)
	dirty[4] = true
	inc.Repair(corr, dirty)
	want, _ = b.FromCorrelation(corr)
	if err := sameGraph(inc.Graph(), want); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalRejectsBadBuilder(t *testing.T) {
	if _, err := NewIncremental(Builder{K: 0, Tau: 0.5}, 5); err == nil {
		t.Fatal("NewIncremental accepted k=0")
	}
	if _, err := NewIncremental(Builder{K: 5, Tau: 0.5}, 5); err == nil {
		t.Fatal("NewIncremental accepted k=n")
	}
}

func TestIncrementalCleanRepairIsNoop(t *testing.T) {
	const n, k = 12, 4
	rng := rand.New(rand.NewSource(5))
	b := Builder{K: k, Tau: 0.3}
	inc, _ := NewIncremental(b, n)
	corr := randCorr(rng, n, 0)
	inc.Repair(corr, nil)
	before := inc.Graph().Edges()
	inc.Repair(corr, make([]bool, n))
	if inc.Graph().Edges() != before {
		t.Fatalf("clean repair changed edges: %d vs %d", inc.Graph().Edges(), before)
	}
	want, _ := b.FromCorrelation(corr)
	if err := sameGraph(inc.Graph(), want); err != nil {
		t.Fatal(err)
	}
}
