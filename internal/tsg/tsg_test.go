package tsg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cad/internal/mts"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	if g.N() != 4 || g.Edges() != 0 {
		t.Fatalf("fresh graph: n=%d edges=%d", g.N(), g.Edges())
	}
	g.SetEdge(0, 1, 0.9)
	g.SetEdge(1, 2, -0.8)
	g.SetEdge(0, 0, 1) // self-loop ignored
	if g.Edges() != 2 {
		t.Errorf("edges = %d, want 2", g.Edges())
	}
	if w, ok := g.Weight(1, 0); !ok || w != 0.9 {
		t.Errorf("Weight(1,0) = %v,%v", w, ok)
	}
	if !g.HasEdge(2, 1) || g.HasEdge(0, 3) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees: %d %d", g.Degree(1), g.Degree(3))
	}
	if math.Abs(g.TotalWeight()-1.7) > 1e-12 {
		t.Errorf("TotalWeight = %v, want 1.7 (abs weights)", g.TotalWeight())
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.Edges() != 1 {
		t.Error("RemoveEdge failed")
	}
	got := g.NeighborsSorted(1)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("NeighborsSorted = %v", got)
	}
	count := 0
	g.Neighbors(2, func(v int, w float64) {
		count++
		if v != 1 || w != -0.8 {
			t.Errorf("neighbor (%d,%v)", v, w)
		}
	})
	if count != 1 {
		t.Errorf("visited %d neighbors", count)
	}
}

func TestBuilderValidate(t *testing.T) {
	cases := []struct {
		b  Builder
		n  int
		ok bool
	}{
		{Builder{K: 1, Tau: 0.5}, 3, true},
		{Builder{K: 0, Tau: 0.5}, 3, false},
		{Builder{K: 3, Tau: 0.5}, 3, false},
		{Builder{K: 1, Tau: -0.1}, 3, false},
		{Builder{K: 1, Tau: 1.1}, 3, false},
	}
	for _, c := range cases {
		err := c.b.Validate(c.n)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v, n=%d) = %v", c.b, c.n, err)
		}
		if err != nil && !errors.Is(err, ErrBadParams) {
			t.Errorf("error should wrap ErrBadParams: %v", err)
		}
	}
}

// correlatedMTS returns 6 sensors in two perfectly separated groups:
// sensors 0-2 follow signal A, sensors 3-5 follow signal B, A ⟂ B.
func correlatedMTS(t *testing.T) *mts.MTS {
	t.Helper()
	const w = 64
	rows := make([][]float64, 6)
	for i := range rows {
		rows[i] = make([]float64, w)
	}
	for j := 0; j < w; j++ {
		a := math.Sin(2 * math.Pi * float64(j) / 16)
		b := math.Cos(2 * math.Pi * float64(j) / 5)
		rows[0][j], rows[1][j], rows[2][j] = a, 2*a+1, -a
		rows[3][j], rows[4][j], rows[5][j] = b, 3*b-2, b*0.5
	}
	m, err := mts.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildGroups(t *testing.T) {
	m := correlatedMTS(t)
	g, err := Builder{K: 2, Tau: 0.5}.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	// Within-group edges must exist; cross-group must not.
	inGroup := func(u, v int) bool { return (u < 3) == (v < 3) }
	for u := 0; u < 6; u++ {
		g.Neighbors(u, func(v int, w float64) {
			if !inGroup(u, v) {
				t.Errorf("cross-group edge (%d,%d) w=%v", u, v, w)
			}
			if math.Abs(w) < 0.5 {
				t.Errorf("edge below τ survived: (%d,%d) w=%v", u, v, w)
			}
		})
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d, want 2 (both same-group partners)", u, g.Degree(u))
		}
	}
	// Negative correlation should be preserved as a negative weight.
	if w, ok := g.Weight(0, 2); !ok || w > -0.99 {
		t.Errorf("Weight(0,2) = %v,%v; want ≈ -1", w, ok)
	}
}

func TestBuildTauPrunesAll(t *testing.T) {
	// Independent noise: with τ=0.99 almost surely no edges survive.
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 5)
	for i := range rows {
		rows[i] = make([]float64, 128)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	m, _ := mts.New(rows, nil)
	g, err := Builder{K: 2, Tau: 0.99}.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 0 {
		t.Errorf("expected full pruning, got %d edges", g.Edges())
	}
}

func TestFromCorrelation(t *testing.T) {
	corr := [][]float64{
		{1, 0.9, 0.1},
		{0.9, 1, 0.2},
		{0.1, 0.2, 1},
	}
	g, err := Builder{K: 1, Tau: 0.5}.FromCorrelation(corr)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("missing (0,1)")
	}
	// Vertex 2's best neighbor is 1 at 0.2 < τ → pruned.
	if g.Degree(2) != 0 {
		t.Errorf("degree(2) = %d, want 0", g.Degree(2))
	}
	if _, err := (Builder{K: 1, Tau: 0.5}).FromCorrelation([][]float64{{1, 2}}); err == nil {
		t.Error("non-square matrix should error")
	}
}

// Property: every vertex has degree in [0, n-1]; its own-selected neighbors
// are ≤ K but incoming selections may add more; all |weights| ≥ τ; graph is
// symmetric.
func TestBuildProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		w := 16 + rng.Intn(32)
		k := 1 + rng.Intn(n-1)
		tau := rng.Float64() * 0.9
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, w)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		m, err := mts.New(rows, nil)
		if err != nil {
			return false
		}
		g, err := Builder{K: k, Tau: tau}.Build(m)
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			ok := true
			g.Neighbors(u, func(v int, wt float64) {
				if math.Abs(wt) < tau || math.Abs(wt) > 1 {
					ok = false
				}
				w2, exists := g.Weight(v, u)
				if !exists || w2 != wt {
					ok = false
				}
			})
			if !ok || g.Degree(u) > n-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildSequence(t *testing.T) {
	m := correlatedMTS(t)
	wd := mts.Windowing{W: 16, S: 8}
	graphs, err := Builder{K: 2, Tau: 0.3}.BuildSequence(m, wd)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != wd.Rounds(m.Len()) {
		t.Fatalf("got %d graphs, want %d", len(graphs), wd.Rounds(m.Len()))
	}
	for r, g := range graphs {
		if g.N() != 6 {
			t.Errorf("round %d: n = %d", r, g.N())
		}
	}
	// Invalid windowing propagates an error.
	if _, err := (Builder{K: 2, Tau: 0.3}).BuildSequence(m, mts.Windowing{W: 1000, S: 1}); err == nil {
		t.Error("expected windowing error")
	}
}

func TestPaperExample2(t *testing.T) {
	// §III Example 1/2: four sensors, s4 drops in the final window. In the
	// final window's TSG, s4's correlation structure must differ from the
	// earlier windows.
	rows := [][]float64{
		{1, 2, 1, 2, 1, 2, 1, 2},
		{10, 20, 10, 20, 10, 20, 10, 20},
		{5, 5.5, 5, 5.5, 5, 5.5, 5, 5.5},
		{100, 200, 100, 200, 100, 200, 20, 20},
	}
	m, _ := mts.New(rows, nil)
	wd := mts.Windowing{W: 4, S: 2}
	graphs, err := Builder{K: 2, Tau: 0.5}.BuildSequence(m, wd)
	if err != nil {
		t.Fatal(err)
	}
	first, last := graphs[0], graphs[len(graphs)-1]
	// Early: s4 (index 3) strongly correlated with s1/s2.
	if w, ok := first.Weight(3, 0); !ok || w < 0.9 {
		t.Errorf("early round: s4~s1 weight %v,%v; want strong", w, ok)
	}
	// Last window [4:8): s4 = {1,2,20,20}-pattern breaks; its correlation
	// with the periodic sensors must have weakened or flipped.
	if w, ok := last.Weight(3, 0); ok && w > 0.9 {
		t.Errorf("late round: s4~s1 still %v; anomaly should disturb it", w)
	}
}

func BenchmarkBuild100Sensors(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = make([]float64, 100)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	m, _ := mts.New(rows, nil)
	bu := Builder{K: 10, Tau: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bu.Build(m); err != nil {
			b.Fatal(err)
		}
	}
}
