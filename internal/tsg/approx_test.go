package tsg

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

// groupedMTS builds `groups` blocks of `per` sensors driven by independent
// latents plus noise.
func groupedMTS(seed int64, groups, per, w int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	n := groups * per
	m := mts.Zeros(n, w)
	phase := make([]float64, groups)
	for g := range phase {
		phase[g] = rng.Float64() * 2 * math.Pi
	}
	for t := 0; t < w; t++ {
		for g := 0; g < groups; g++ {
			latent := math.Sin(2*math.Pi*float64(t)/(13+5*float64(g)) + phase[g])
			for j := 0; j < per; j++ {
				i := g*per + j
				m.Set(i, t, latent*(1+0.1*float64(j))+0.05*rng.NormFloat64())
			}
		}
	}
	return m
}

func TestBuildApproxMatchesExactStructure(t *testing.T) {
	m := groupedMTS(1, 4, 8, 96) // 32 sensors
	b := Builder{K: 5, Tau: 0.5}
	exact, err := b.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := b.BuildApprox(m, ApproxConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if approx.N() != exact.N() {
		t.Fatalf("vertex counts differ")
	}
	// Edge overlap: the approximate graph should recover the bulk of the
	// exact strong edges.
	total, shared := 0, 0
	for u := 0; u < exact.N(); u++ {
		exact.Neighbors(u, func(v int, w float64) {
			if u < v {
				total++
				if approx.HasEdge(u, v) {
					shared++
				}
			}
		})
	}
	if total == 0 {
		t.Fatal("exact graph has no edges")
	}
	if overlap := float64(shared) / float64(total); overlap < 0.85 {
		t.Errorf("edge overlap = %.3f, want ≥ 0.85", overlap)
	}
	// No cross-group edges (independent latents correlate weakly).
	for u := 0; u < approx.N(); u++ {
		approx.Neighbors(u, func(v int, w float64) {
			if u/8 != v/8 {
				t.Errorf("approx cross-group edge (%d,%d) w=%v", u, v, w)
			}
			if math.Abs(w) < 0.5 {
				t.Errorf("edge below τ: (%d,%d) %v", u, v, w)
			}
		})
	}
}

func TestBuildApproxPreservesSign(t *testing.T) {
	// Sensor 1 anti-correlates with sensor 0.
	w := 64
	m := mts.Zeros(3, w)
	for t := 0; t < w; t++ {
		v := math.Sin(2 * math.Pi * float64(t) / 16)
		m.Set(0, t, v)
		m.Set(1, t, -v)
		m.Set(2, t, v*2)
	}
	g, err := (Builder{K: 2, Tau: 0.5}).BuildApprox(m, ApproxConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if wt, ok := g.Weight(0, 1); !ok || wt > -0.99 {
		t.Errorf("anti-correlated edge weight %v, %v; want ≈ −1", wt, ok)
	}
	if wt, ok := g.Weight(0, 2); !ok || wt < 0.99 {
		t.Errorf("correlated edge weight %v, %v; want ≈ 1", wt, ok)
	}
}

func TestBuildApproxConstantRows(t *testing.T) {
	m := groupedMTS(4, 2, 4, 48)
	// Make one row constant.
	row := m.Row(3)
	for t := range row {
		row[t] = 7
	}
	g, err := (Builder{K: 3, Tau: 0.3}).BuildApprox(m, ApproxConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(3) != 0 {
		t.Errorf("constant sensor has degree %d", g.Degree(3))
	}
}

func TestBuildApproxAllConstant(t *testing.T) {
	m := mts.Zeros(4, 20)
	g, err := (Builder{K: 2, Tau: 0.3}).BuildApprox(m, ApproxConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 0 {
		t.Errorf("all-constant series produced %d edges", g.Edges())
	}
}

// TestBuildApproxConstantRowsMatchExact is the regression test for the
// constant-row k-NN hazard: a standardized constant row is the zero vector,
// which sits at correlation distance 1 from everything — if inserted into
// the HNSW index it could still fill k-NN result slots for vertices with
// fewer than k genuinely correlated neighbors. The exact and approx
// builders must agree that constant rows are isolated, on a window where
// one sparse vertex has only a single real correlate (so any leaked
// zero-vector neighbor would surface as a spurious edge).
func TestBuildApproxConstantRowsMatchExact(t *testing.T) {
	const w = 64
	m := groupedMTS(9, 2, 4, w)
	// Sensors 2, 5, 6 go constant at different levels.
	for _, s := range []int{2, 5, 6} {
		row := m.Row(s)
		for t := range row {
			row[t] = float64(3 + s)
		}
	}
	// Sensor 7's only strong correlate is sensor 4: overwrite it with
	// sensor 4's negated values plus noise, leaving it weakly related to
	// everything else. With k=3 its remaining slots are exactly where a
	// zero vector could sneak in.
	rng := rand.New(rand.NewSource(77))
	src := m.Row(4)
	dst := m.Row(7)
	for t := range dst {
		dst[t] = -src[t] + 0.02*rng.NormFloat64()
	}
	b := Builder{K: 3, Tau: 0.3}
	exact, err := b.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := b.BuildApprox(m, ApproxConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 5, 6} {
		if d := exact.Degree(s); d != 0 {
			t.Errorf("exact: constant sensor %d has degree %d", s, d)
		}
		if d := approx.Degree(s); d != 0 {
			t.Errorf("approx: constant sensor %d has degree %d", s, d)
		}
	}
	// No approx edge may touch a constant sensor, and the sparse vertex
	// must keep its one genuine correlate in both graphs.
	if !exact.HasEdge(4, 7) || !approx.HasEdge(4, 7) {
		t.Errorf("sparse vertex lost its real correlate: exact %v approx %v",
			exact.HasEdge(4, 7), approx.HasEdge(4, 7))
	}
}

func TestBuildApproxValidation(t *testing.T) {
	m := groupedMTS(7, 2, 3, 32)
	if _, err := (Builder{K: 0, Tau: 0.3}).BuildApprox(m, ApproxConfig{}); err == nil {
		t.Error("invalid builder should error")
	}
}

func BenchmarkBuildExact400(b *testing.B) {
	m := groupedMTS(8, 20, 20, 64)
	bu := Builder{K: 10, Tau: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bu.Build(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildApprox400(b *testing.B) {
	m := groupedMTS(8, 20, 20, 64)
	bu := Builder{K: 10, Tau: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bu.BuildApprox(m, ApproxConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
