// Package tsg builds the Time-Series Graphs at the heart of CAD (§III-B of
// the paper): for each window of the MTS, a weighted k-nearest-neighbor
// graph over sensors where edge weights are Pearson correlations, pruned of
// edges whose absolute correlation falls below a threshold τ.
package tsg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cad/internal/mts"
	"cad/internal/stats"
)

// ErrBadParams reports an invalid builder configuration.
var ErrBadParams = errors.New("tsg: invalid parameters")

// Graph is an undirected weighted graph over n vertices (sensors).
// Adjacency is stored per vertex; every undirected edge appears in both
// endpoints' lists.
type Graph struct {
	n   int
	adj []map[int]float64
}

// NewGraph returns an empty graph over n vertices.
func NewGraph(n int) *Graph {
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = make(map[int]float64)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// SetEdge inserts or updates the undirected edge (u,v) with the given
// weight. Self-loops are ignored.
func (g *Graph) SetEdge(u, v int, w float64) {
	if u == v {
		return
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
}

// RemoveEdge deletes the undirected edge (u,v) if present.
func (g *Graph) RemoveEdge(u, v int) {
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// Weight returns the weight of edge (u,v) and whether it exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	w, ok := g.adj[u][v]
	return w, ok
}

// HasEdge reports whether (u,v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors calls fn for every neighbor of u with the edge weight. Iteration
// order is unspecified.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	for v, w := range g.adj[u] {
		fn(v, w)
	}
}

// NeighborsSorted returns u's neighbors in ascending vertex order, for
// deterministic iteration.
func (g *Graph) NeighborsSorted(u int) []int {
	vs := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// TotalWeight returns the sum of |w| over undirected edges. CAD graphs carry
// correlations in [-1,1]; community detection treats edge strength as the
// magnitude of correlation, since strong negative correlation is still a
// strong relationship between sensors.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for u, a := range g.adj {
		for v, w := range a {
			if u < v {
				s += math.Abs(w)
			}
		}
	}
	return s
}

// Builder constructs TSGs from MTS windows.
type Builder struct {
	// K is the number of highest-|correlation| neighbors each vertex
	// connects to (paper's k, Table II).
	K int
	// Tau is the correlation threshold τ: edges with |weight| < Tau are
	// pruned (§III-B).
	Tau float64
}

// Validate checks the builder configuration for n sensors.
func (b Builder) Validate(n int) error {
	if b.K < 1 {
		return fmt.Errorf("%w: k=%d must be ≥ 1", ErrBadParams, b.K)
	}
	if b.K >= n {
		return fmt.Errorf("%w: k=%d must be < n=%d", ErrBadParams, b.K, n)
	}
	if b.Tau < 0 || b.Tau > 1 {
		return fmt.Errorf("%w: τ=%v must be in [0,1]", ErrBadParams, b.Tau)
	}
	return nil
}

// Build converts one MTS window into a TSG: an exact k-NN graph under
// absolute Pearson correlation, pruned at τ. Cost is O(n²·w + n²·log k).
func (b Builder) Build(window *mts.MTS) (*Graph, error) {
	n := window.Sensors()
	if err := b.Validate(n); err != nil {
		return nil, err
	}
	corr, err := stats.PearsonMatrix(window.Rows())
	if err != nil {
		return nil, fmt.Errorf("tsg: correlation: %w", err)
	}
	return b.fromCorrelation(corr), nil
}

// FromCorrelation builds a TSG directly from a precomputed correlation
// matrix. The matrix must be square and symmetric.
func (b Builder) FromCorrelation(corr [][]float64) (*Graph, error) {
	n := len(corr)
	if err := b.Validate(n); err != nil {
		return nil, err
	}
	for _, row := range corr {
		if len(row) != n {
			return nil, fmt.Errorf("%w: correlation matrix is not square", ErrBadParams)
		}
	}
	return b.fromCorrelation(corr), nil
}

func (b Builder) fromCorrelation(corr [][]float64) *Graph {
	n := len(corr)
	g := NewGraph(n)
	type cand struct {
		v int
		w float64
	}
	cands := make([]cand, 0, n-1)
	for u := 0; u < n; u++ {
		cands = cands[:0]
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			cands = append(cands, cand{v, corr[u][v]})
		}
		// Select the K strongest by |correlation|; ties break on lower
		// vertex id for determinism.
		sort.Slice(cands, func(i, j int) bool {
			ai, aj := math.Abs(cands[i].w), math.Abs(cands[j].w)
			if ai != aj {
				return ai > aj
			}
			return cands[i].v < cands[j].v
		})
		for _, c := range cands[:b.K] {
			if math.Abs(c.w) < b.Tau {
				break // sorted by |w|: everything after is weaker
			}
			g.SetEdge(u, c.v, c.w)
		}
	}
	return g
}

// BuildSequence converts every round of the windowed MTS into a TSG,
// returning R graphs.
func (b Builder) BuildSequence(m *mts.MTS, wd mts.Windowing) ([]*Graph, error) {
	R := wd.Rounds(m.Len())
	if R == 0 {
		return nil, fmt.Errorf("tsg: %w", wd.Validate(m.Len()))
	}
	out := make([]*Graph, R)
	for r := 0; r < R; r++ {
		win, err := wd.Window(m, r)
		if err != nil {
			return nil, err
		}
		g, err := b.Build(win)
		if err != nil {
			return nil, fmt.Errorf("tsg: round %d: %w", r, err)
		}
		out[r] = g
	}
	return out, nil
}
