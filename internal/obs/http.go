package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// statusWriter records the status code and body size the handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// streaming handlers (SSE) can flush and move write deadlines through the
// instrumentation.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Middleware wraps next with per-endpoint instrumentation:
//
//	http_requests_total{path,method,code}     counter
//	http_request_duration_seconds{path}       histogram
//	http_requests_in_flight                   gauge
//
// and, when logger is non-nil, one structured log line per request. route
// maps a request to a bounded path label (cardinality guard); nil uses
// r.URL.Path verbatim, which is only safe behind a fixed mux.
func Middleware(next http.Handler, reg *Registry, logger *slog.Logger, route func(*http.Request) string) http.Handler {
	inFlight := reg.Gauge("http_requests_in_flight",
		"Requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if route != nil {
			path = route(r)
		}
		inFlight.Add(1)
		defer inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		reg.Counter("http_requests_total", "Requests served, by endpoint, method, and status code.",
			Label{"path", path}, Label{"method", r.Method}, Label{"code", strconv.Itoa(sw.status)}).Inc()
		reg.Histogram("http_request_duration_seconds", "Request latency, by endpoint.", DefBuckets,
			Label{"path", path}).Observe(elapsed.Seconds())
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", elapsed),
				slog.Int("bytes", sw.bytes),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
