package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs processed.").Add(3)
	r.Counter("jobs_total", "Jobs processed.", Label{"kind", "batch"}).Inc()
	g := r.Gauge("queue_depth", "Pending jobs.")
	g.Set(7)
	g.Add(-2.5)

	out := render(t, r)
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		`jobs_total{kind="batch"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 4.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	c := r.Counter("x_total", "", Label{"k", "v"})
	if a == c {
		t.Fatal("different labels should return a different series")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name should panic")
		}
	}()
	r.Gauge("dual", "")
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabeledBuckets(t *testing.T) {
	r := NewRegistry()
	r.Histogram("d_seconds", "", []float64{1}, Label{"path", "/a"}).Observe(0.5)
	out := render(t, r)
	for _, want := range []string{
		`d_seconds_bucket{path="/a",le="1"} 1`,
		`d_seconds_bucket{path="/a",le="+Inf"} 1`,
		`d_seconds_sum{path="/a"} 0.5`,
		`d_seconds_count{path="/a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscapingAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{"b", "x"}, Label{"a", `quo"te\slash` + "\nnl"}).Inc()
	out := render(t, r)
	want := `esc_total{a="quo\"te\\slash\nnl",b="x"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("output missing %q:\n%s", want, out)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h_seconds", "", []float64{0.5}).Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g", "").Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "ok_total 1") {
		t.Errorf("body missing counter: %s", buf[:n])
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", resp2.StatusCode)
	}
}
