package obs

import (
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareMetricsAndLogs(t *testing.T) {
	reg := NewRegistry()
	var logBuf strings.Builder
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			http.Error(w, "boom", http.StatusTeapot)
			return
		}
		w.Write([]byte("hello")) //nolint:errcheck
	})
	h := Middleware(inner, reg, logger, func(r *http.Request) string {
		if r.URL.Path == "/boom" || r.URL.Path == "/ok" {
			return r.URL.Path
		}
		return "other"
	})

	for _, path := range []string{"/ok", "/ok", "/boom", "/nope"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}

	out := render(t, reg)
	for _, want := range []string{
		`http_requests_total{code="200",method="GET",path="/ok"} 2`,
		`http_requests_total{code="418",method="GET",path="/boom"} 1`,
		`http_requests_total{code="200",method="GET",path="other"} 1`,
		`http_request_duration_seconds_count{path="/ok"} 2`,
		"http_requests_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}

	logs := logBuf.String()
	for _, want := range []string{"http request", "path=/boom", "status=418", "method=GET"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q:\n%s", want, logs)
		}
	}
}

func TestMiddlewareImplicitStatus(t *testing.T) {
	reg := NewRegistry()
	// Handler that never calls Write or WriteHeader: net/http implies 200.
	h := Middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}), reg, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	out := render(t, reg)
	want := `http_requests_total{code="200",method="GET",path="/x"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("metrics missing %q:\n%s", want, out)
	}
}
