// Package obs is the repository's stdlib-only observability toolkit: a
// small metrics registry (counters, gauges, histograms with fixed buckets)
// that renders the Prometheus text exposition format, plus log/slog-based
// HTTP middleware recording per-endpoint request counts, latencies, and
// in-flight gauges. It has no dependencies beyond the standard library, so
// every layer of the pipeline (core detector, serve front-end, commands)
// can report into one registry without pulling in a metrics vendor.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// DefBuckets suits sub-second pipeline stages (100µs … 10s), the range the
// detector's per-round work spans from a handful of sensors up to very wide
// arrays.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing count. Safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets. Safe for
// concurrent use.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; implicit +Inf bucket follows
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// family groups every series of one metric name.
type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	mu              sync.Mutex
	series          map[string]any // label signature → *Counter | *Gauge | *Histogram
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry. Safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family for name, creating it on first use, and panics
// if name was previously registered with a different type — mixing types
// under one name is a programming error the exposition format cannot
// express.
func (r *Registry) lookup(name, help, typ string) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// labelSignature renders labels into the canonical {a="b",c="d"} form used
// both as the series key and in the exposition output.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter returns the counter series for name and labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.lookup(name, help, "counter")
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := labelSignature(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[sig] = c
	return c
}

// Gauge returns the gauge series for name and labels, creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.lookup(name, help, "gauge")
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := labelSignature(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[sig] = g
	return g
}

// Histogram returns the histogram series for name and labels, creating it
// on first use with the given bucket upper bounds (nil means DefBuckets).
// Buckets are fixed at first registration; later calls reuse them.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	f := r.lookup(name, help, "histogram")
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.buckets == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		sort.Float64s(bounds)
		f.buckets = bounds
	}
	sig := labelSignature(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	f.series[sig] = h
	return h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the text exposition
// format (families and series in lexicographic order, so output is stable
// for tests and diffing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, sig := range sigs {
			switch m := f.series[sig].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sig, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, formatFloat(m.Value()))
			case *Histogram:
				writeHistogram(&b, f.name, sig, m)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count. sig is either "" or "{...}"; the le label is merged in.
func writeHistogram(b *strings.Builder, name, sig string, h *Histogram) {
	withLE := func(le string) string {
		if sig == "" {
			return `{le="` + le + `"}`
		}
		return sig[:len(sig)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, sig, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, sig, h.Count())
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
