// Package louvain implements the Louvain method for community detection
// (Blondel et al. 2008), the partitioning step CAD runs on every TSG
// (paper §IV-B). The implementation is deterministic: vertices are scanned
// in ascending id order and ties in modularity gain break toward the
// lowest community id, so repeated runs on the same graph yield the same
// partition — a property the paper's robustness claims rely on.
package louvain

import (
	"sort"

	"cad/internal/tsg"
)

// Partition assigns each vertex a community id in [0, Count). Ids are
// compacted (consecutive from 0) and canonicalized: community ids appear in
// order of their lowest member vertex.
type Partition struct {
	// Of[v] is the community id of vertex v.
	Of []int
	// Count is the number of communities.
	Count int
}

// Members returns the vertex sets of each community, indexed by community
// id, each sorted ascending.
func (p Partition) Members() [][]int {
	out := make([][]int, p.Count)
	for v, c := range p.Of {
		out[c] = append(out[c], v)
	}
	return out
}

// Same reports whether vertices u and v share a community.
func (p Partition) Same(u, v int) bool { return p.Of[u] == p.Of[v] }

// weightedGraph is the flattened, aggregated representation the passes
// operate on.
type weightedGraph struct {
	n        int
	adjIdx   [][]int     // neighbor ids per vertex
	adjW     [][]float64 // parallel weights (≥ 0)
	selfLoop []float64   // aggregated self-loop weight per vertex
	degree   []float64   // weighted degree incl. 2·selfLoop
	total2m  float64     // 2m = Σ degree
}

func fromTSG(g *tsg.Graph) *weightedGraph {
	n := g.N()
	wg := &weightedGraph{
		n:        n,
		adjIdx:   make([][]int, n),
		adjW:     make([][]float64, n),
		selfLoop: make([]float64, n),
		degree:   make([]float64, n),
	}
	for u := 0; u < n; u++ {
		for _, v := range g.NeighborsSorted(u) {
			w, _ := g.Weight(u, v)
			if w < 0 {
				w = -w // correlation strength
			}
			if w == 0 {
				continue
			}
			wg.adjIdx[u] = append(wg.adjIdx[u], v)
			wg.adjW[u] = append(wg.adjW[u], w)
			wg.degree[u] += w
		}
	}
	for _, d := range wg.degree {
		wg.total2m += d
	}
	return wg
}

// Communities partitions the TSG into communities by modularity
// optimization. Edgeless graphs (or all-zero weights) yield singleton
// communities.
func Communities(g *tsg.Graph) Partition {
	return communities(g)
}

// CommunitiesSeeded warm-starts community detection from a previous
// partition: it runs one local-moving pass seeded with the previous
// assignment, and if no vertex moves — the common case when the graph
// changed only slightly between rounds — the seed is still a local optimum
// and is returned directly, skipping the full multi-level rebuild. The
// moment any vertex does move, the warm path is abandoned and the whole
// optimization reruns cold, so structural change is handled exactly as
// Communities would.
//
// Two details keep the fast path honest. Vertices the current graph
// isolates (degree zero) are split out of their seeded communities first:
// cold-start leaves them as singletons, and keeping them grouped would
// fabricate co-appearance for sensors that lost all their correlations —
// exactly the ones anomaly detection must notice. And on an unchanged graph
// the result provably equals Communities: either the cold partition is
// vertex-level stable (no moves, seed returned as-is) or it is not (moves
// happen, cold rerun returns it).
//
// A seed of the wrong size (or empty) falls back to a cold start.
func CommunitiesSeeded(g *tsg.Graph, seed Partition) Partition {
	n := g.N()
	if len(seed.Of) != n || seed.Count <= 0 || n == 0 {
		return communities(g)
	}
	wg := fromTSG(g)
	if wg.total2m == 0 {
		return singletons(n)
	}
	seedOf := make([]int, n)
	next := seed.Count
	for v := 0; v < n; v++ {
		if wg.degree[v] == 0 {
			seedOf[v] = next // isolated: force a fresh singleton community
			next++
		} else {
			seedOf[v] = seed.Of[v]
		}
	}
	// Recompact ids into [0, n) — the split above can push them past n.
	seedOf = canonicalize(seedOf).Of
	comm, moved := onePass(wg, seedOf)
	if !moved {
		return canonicalize(comm)
	}
	return communities(g)
}

func communities(g *tsg.Graph) Partition {
	n := g.N()
	if n == 0 {
		return Partition{Of: nil, Count: 0}
	}
	wg := fromTSG(g)
	if wg.total2m == 0 {
		return singletons(n)
	}

	// node2final[v] tracks which aggregated node each original vertex
	// currently maps to.
	node2final := make([]int, n)
	for i := range node2final {
		node2final[i] = i
	}

	for {
		comm, moved := onePass(wg, nil)
		if !moved {
			// Map aggregated communities back to original vertices.
			of := make([]int, n)
			for v := range of {
				of[v] = comm[node2final[v]]
			}
			return canonicalize(of)
		}
		// Aggregate graph by communities and recurse.
		wg = aggregate(wg, comm)
		for v := range node2final {
			node2final[v] = comm[node2final[v]]
		}
		if wg.n == 1 {
			of := make([]int, n)
			return canonicalize(of)
		}
	}
}

func singletons(n int) Partition {
	of := make([]int, n)
	for i := range of {
		of[i] = i
	}
	return Partition{Of: of, Count: n}
}

// onePass runs local moving until no vertex improves modularity, returning
// the compacted community assignment of the aggregated graph and whether any
// move happened at all. A non-nil seedOf (length n, ids in [0,n)) replaces
// the singleton starting assignment.
func onePass(wg *weightedGraph, seedOf []int) (comm []int, movedAny bool) {
	n := wg.n
	comm = make([]int, n)
	commDegree := make([]float64, n) // Σ degree of members
	if seedOf != nil {
		for i := 0; i < n; i++ {
			comm[i] = seedOf[i]
			commDegree[seedOf[i]] += wg.degree[i]
		}
	} else {
		for i := 0; i < n; i++ {
			comm[i] = i
			commDegree[i] = wg.degree[i]
		}
	}
	twoM := wg.total2m
	neighW := make(map[int]float64, 16)

	improved := true
	for improved {
		improved = false
		for v := 0; v < n; v++ {
			cv := comm[v]
			// Weight from v to each neighboring community.
			for k := range neighW {
				delete(neighW, k)
			}
			for idx, u := range wg.adjIdx[v] {
				if u == v {
					continue
				}
				neighW[comm[u]] += wg.adjW[v][idx]
			}
			// Remove v from its community.
			commDegree[cv] -= wg.degree[v]
			// Gain of joining community c:
			//   ΔQ ∝ w(v→c) − degree(v)·Σdeg(c)/2m
			best, bestGain := cv, neighW[cv]-wg.degree[v]*commDegree[cv]/twoM
			// Deterministic order over candidate communities.
			cands := make([]int, 0, len(neighW))
			for c := range neighW {
				cands = append(cands, c)
			}
			sort.Ints(cands)
			for _, c := range cands {
				gain := neighW[c] - wg.degree[v]*commDegree[c]/twoM
				if gain > bestGain+1e-12 {
					best, bestGain = c, gain
				} else if gain > bestGain-1e-12 && c < best {
					// Tie: break toward the lower community id.
					best, bestGain = c, gain
				}
			}
			commDegree[best] += wg.degree[v]
			if best != cv {
				comm[v] = best
				improved = true
				movedAny = true
			}
		}
	}
	// Compact ids.
	remap := make(map[int]int, n)
	next := 0
	for v := 0; v < n; v++ {
		if _, ok := remap[comm[v]]; !ok {
			remap[comm[v]] = next
			next++
		}
		comm[v] = remap[comm[v]]
	}
	return comm, movedAny
}

// aggregate collapses each community into a single node.
func aggregate(wg *weightedGraph, comm []int) *weightedGraph {
	nc := 0
	for _, c := range comm {
		if c+1 > nc {
			nc = c + 1
		}
	}
	out := &weightedGraph{
		n:        nc,
		adjIdx:   make([][]int, nc),
		adjW:     make([][]float64, nc),
		selfLoop: make([]float64, nc),
		degree:   make([]float64, nc),
	}
	edges := make([]map[int]float64, nc)
	for i := range edges {
		edges[i] = make(map[int]float64)
	}
	for v := 0; v < wg.n; v++ {
		cv := comm[v]
		out.selfLoop[cv] += wg.selfLoop[v]
		for idx, u := range wg.adjIdx[v] {
			cu := comm[u]
			w := wg.adjW[v][idx]
			if cu == cv {
				// Each intra-community edge is visited from both
				// endpoints; halve to count once.
				out.selfLoop[cv] += w / 2
			} else {
				edges[cv][cu] += w
			}
		}
	}
	for c := 0; c < nc; c++ {
		ids := make([]int, 0, len(edges[c]))
		for u := range edges[c] {
			ids = append(ids, u)
		}
		sort.Ints(ids)
		for _, u := range ids {
			out.adjIdx[c] = append(out.adjIdx[c], u)
			out.adjW[c] = append(out.adjW[c], edges[c][u])
			out.degree[c] += edges[c][u]
		}
		out.degree[c] += 2 * out.selfLoop[c]
	}
	for _, d := range out.degree {
		out.total2m += d
	}
	return out
}

// canonicalize renumbers communities so ids increase with the lowest member
// vertex, making partitions comparable across runs.
func canonicalize(of []int) Partition {
	remap := make(map[int]int)
	next := 0
	out := make([]int, len(of))
	for v, c := range of {
		id, ok := remap[c]
		if !ok {
			id = next
			remap[c] = id
			next++
		}
		out[v] = id
	}
	return Partition{Of: out, Count: next}
}

// Modularity computes Newman's modularity Q of the partition on g, using
// absolute edge weights. Useful for testing and ablation.
func Modularity(g *tsg.Graph, p Partition) float64 {
	wg := fromTSG(g)
	if wg.total2m == 0 {
		return 0
	}
	var q float64
	commDeg := make([]float64, p.Count)
	for v := 0; v < wg.n; v++ {
		commDeg[p.Of[v]] += wg.degree[v]
	}
	var intra float64
	for v := 0; v < wg.n; v++ {
		for idx, u := range wg.adjIdx[v] {
			if p.Of[u] == p.Of[v] {
				intra += wg.adjW[v][idx]
			}
		}
	}
	q = intra / wg.total2m
	for _, d := range commDeg {
		q -= (d / wg.total2m) * (d / wg.total2m)
	}
	return q
}
