package louvain

import (
	"math/rand"
	"reflect"
	"testing"

	"cad/internal/tsg"
)

// randomGraph builds a random weighted graph over n vertices with the given
// edge probability.
func randomGraph(rng *rand.Rand, n int, p float64) *tsg.Graph {
	g := tsg.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.SetEdge(i, j, 0.2+0.8*rng.Float64())
			}
		}
	}
	return g
}

// TestSeededUnchangedGraphEqualsCold is the warm-start contract: seeding
// with the cold result on the very same graph must return the same
// communities. This holds by construction — either the cold partition is
// vertex-level stable (no moves, seed returned) or it is not (moves force a
// cold rerun) — and the test pins it across structured and random graphs.
func TestSeededUnchangedGraphEqualsCold(t *testing.T) {
	graphs := map[string]*tsg.Graph{
		"twoCliques":   twoCliques(5, 5, 0.1),
		"twoCliques73": twoCliques(7, 3, 0.3),
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		graphs["random"+string(rune('0'+i))] = randomGraph(rng, 24, 0.2)
	}
	for name, g := range graphs {
		cold := Communities(g)
		warm := CommunitiesSeeded(g, cold)
		if !reflect.DeepEqual(cold, warm) {
			t.Errorf("%s: warm %v (count %d), cold %v (count %d)",
				name, warm.Of, warm.Count, cold.Of, cold.Count)
		}
	}
}

// TestSeededPerturbedGraphConverges perturbs a graph after seeding and
// checks the warm start converges to a sensible partition — in particular
// that it terminates (the historical hazard of seeded local moving is an
// infinite refinement loop) and matches the cold result when the
// perturbation forces the fallback.
func TestSeededPerturbedGraphConverges(t *testing.T) {
	g := twoCliques(5, 5, 0.1)
	seed := Communities(g)

	// Perturbation 1: merge the cliques with a heavy bridge — the seed is
	// no longer optimal, so moves happen and the cold path takes over.
	merged := twoCliques(5, 5, 0)
	for i := 0; i < 5; i++ {
		merged.SetEdge(i, 5+i, 1)
		merged.SetEdge(i, 5+(i+1)%5, 1)
	}
	warm := CommunitiesSeeded(merged, seed)
	cold := Communities(merged)
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("merged: warm %v, cold %v", warm.Of, cold.Of)
	}

	// Perturbation 2: vertex 0 loses every edge. The warm start must not
	// leave it grouped with its old clique — an isolated vertex generates
	// no modularity gain to move anywhere, so without the explicit split
	// it would silently keep its stale membership.
	isolated := twoCliques(5, 5, 0)
	for v := 1; v < 5; v++ {
		isolated.RemoveEdge(0, v)
	}
	warm = CommunitiesSeeded(isolated, seed)
	for v := 1; v < 10; v++ {
		if warm.Same(0, v) {
			t.Fatalf("isolated vertex still shares a community with %d: %v", v, warm.Of)
		}
	}
	cold = Communities(isolated)
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("isolated: warm %v, cold %v", warm.Of, cold.Of)
	}
}

// TestSeededRandomPerturbations fuzzes the warm path: random graph, random
// edge flips, warm vs cold. Decisions downstream only stay aligned if the
// warm result is a genuine modularity local optimum, so at minimum the
// partition must be valid and the call must terminate; where the fallback
// fires the result must equal cold exactly.
func TestSeededRandomPerturbations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 30; iter++ {
		g := randomGraph(rng, 20, 0.25)
		seed := Communities(g)
		// Flip a few edges.
		for f := 0; f < 4; f++ {
			u, v := rng.Intn(20), rng.Intn(20)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				g.RemoveEdge(u, v)
			} else {
				g.SetEdge(u, v, 0.2+0.8*rng.Float64())
			}
		}
		warm := CommunitiesSeeded(g, seed)
		if len(warm.Of) != 20 || warm.Count < 1 || warm.Count > 20 {
			t.Fatalf("iter %d: invalid partition %v", iter, warm)
		}
		for _, c := range warm.Of {
			if c < 0 || c >= warm.Count {
				t.Fatalf("iter %d: community id %d out of range [0,%d)", iter, c, warm.Count)
			}
		}
	}
}

// TestSeededInvalidSeedFallsBack: wrong-size or empty seeds must not panic
// and must give the cold result.
func TestSeededInvalidSeedFallsBack(t *testing.T) {
	g := twoCliques(4, 4, 0.2)
	cold := Communities(g)
	for _, seed := range []Partition{
		{},
		{Of: []int{0, 1}, Count: 2},
		{Of: make([]int, 8), Count: 0},
	} {
		warm := CommunitiesSeeded(g, seed)
		if !reflect.DeepEqual(cold, warm) {
			t.Errorf("seed %v: warm %v, cold %v", seed, warm.Of, cold.Of)
		}
	}
}
