package louvain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cad/internal/tsg"
)

// twoCliques builds two dense cliques of the given sizes joined by one weak
// bridge edge.
func twoCliques(a, b int, bridge float64) *tsg.Graph {
	g := tsg.NewGraph(a + b)
	for i := 0; i < a; i++ {
		for j := i + 1; j < a; j++ {
			g.SetEdge(i, j, 1)
		}
	}
	for i := a; i < a+b; i++ {
		for j := i + 1; j < a+b; j++ {
			g.SetEdge(i, j, 1)
		}
	}
	if bridge > 0 {
		g.SetEdge(0, a, bridge)
	}
	return g
}

func TestTwoCliques(t *testing.T) {
	g := twoCliques(5, 5, 0.1)
	p := Communities(g)
	if p.Count != 2 {
		t.Fatalf("Count = %d, want 2 (partition %v)", p.Count, p.Of)
	}
	for i := 1; i < 5; i++ {
		if !p.Same(0, i) {
			t.Errorf("vertices 0 and %d should share a community", i)
		}
	}
	for i := 6; i < 10; i++ {
		if !p.Same(5, i) {
			t.Errorf("vertices 5 and %d should share a community", i)
		}
	}
	if p.Same(0, 5) {
		t.Error("cliques should separate")
	}
}

func TestThreeCliques(t *testing.T) {
	g := tsg.NewGraph(12)
	for c := 0; c < 3; c++ {
		base := c * 4
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.SetEdge(base+i, base+j, 0.9)
			}
		}
	}
	g.SetEdge(0, 4, 0.1)
	g.SetEdge(4, 8, 0.1)
	p := Communities(g)
	if p.Count != 3 {
		t.Fatalf("Count = %d, want 3 (%v)", p.Count, p.Of)
	}
	members := p.Members()
	sizes := []int{len(members[0]), len(members[1]), len(members[2])}
	for _, s := range sizes {
		if s != 4 {
			t.Errorf("community sizes = %v, want all 4", sizes)
		}
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := tsg.NewGraph(4)
	p := Communities(g)
	if p.Count != 4 {
		t.Fatalf("edgeless graph: Count = %d, want 4 singletons", p.Count)
	}
	for v, c := range p.Of {
		if c != v {
			t.Errorf("Of[%d] = %d, want singleton order", v, c)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	p := Communities(tsg.NewGraph(0))
	if p.Count != 0 || len(p.Of) != 0 {
		t.Errorf("empty graph: %+v", p)
	}
}

func TestSingleEdge(t *testing.T) {
	g := tsg.NewGraph(2)
	g.SetEdge(0, 1, 0.8)
	p := Communities(g)
	if p.Count != 1 || !p.Same(0, 1) {
		t.Errorf("single edge should merge: %+v", p)
	}
}

func TestNegativeWeightsUseStrength(t *testing.T) {
	// Strong negative correlations are strong relationships.
	g := tsg.NewGraph(4)
	g.SetEdge(0, 1, -0.95)
	g.SetEdge(2, 3, -0.95)
	g.SetEdge(1, 2, 0.05)
	p := Communities(g)
	if !p.Same(0, 1) || !p.Same(2, 3) {
		t.Errorf("negatively-correlated pairs should cluster: %v", p.Of)
	}
	if p.Same(1, 2) {
		t.Errorf("weak bridge should not merge: %v", p.Of)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := tsg.NewGraph(30)
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			if rng.Float64() < 0.2 {
				g.SetEdge(i, j, rng.Float64())
			}
		}
	}
	p1 := Communities(g)
	for trial := 0; trial < 5; trial++ {
		p2 := Communities(g)
		if p1.Count != p2.Count {
			t.Fatalf("non-deterministic community count: %d vs %d", p1.Count, p2.Count)
		}
		for v := range p1.Of {
			if p1.Of[v] != p2.Of[v] {
				t.Fatalf("non-deterministic assignment at vertex %d", v)
			}
		}
	}
}

func TestCanonicalIDs(t *testing.T) {
	g := twoCliques(3, 3, 0)
	p := Communities(g)
	// Community of vertex 0 must be id 0 (lowest member first).
	if p.Of[0] != 0 {
		t.Errorf("vertex 0 in community %d, want 0", p.Of[0])
	}
	if p.Of[3] != 1 {
		t.Errorf("vertex 3 in community %d, want 1", p.Of[3])
	}
}

// Property: partition is valid — ids compact in [0, Count), every vertex
// assigned, Members() is a disjoint cover; modularity of the found partition
// is at least that of the all-singleton partition.
func TestPartitionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := tsg.NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.SetEdge(i, j, rng.Float64()*2-1)
				}
			}
		}
		p := Communities(g)
		if len(p.Of) != n || p.Count < 1 && n > 0 {
			return false
		}
		seen := make([]bool, p.Count)
		for _, c := range p.Of {
			if c < 0 || c >= p.Count {
				return false
			}
			seen[c] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		total := 0
		for _, m := range p.Members() {
			total += len(m)
		}
		if total != n {
			return false
		}
		if g.Edges() > 0 {
			if Modularity(g, p) < Modularity(g, singletons(n))-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestModularity(t *testing.T) {
	g := twoCliques(4, 4, 0)
	good := Communities(g)
	if q := Modularity(g, good); q < 0.45 {
		t.Errorf("two-clique modularity = %v, want ≈ 0.5", q)
	}
	// All-in-one partition has Q = 0.
	all := Partition{Of: make([]int, 8), Count: 1}
	if q := Modularity(g, all); q > 1e-9 {
		t.Errorf("single-community modularity = %v, want 0", q)
	}
	if q := Modularity(tsg.NewGraph(3), singletons(3)); q != 0 {
		t.Errorf("edgeless modularity = %v, want 0", q)
	}
}

func BenchmarkCommunities200(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := tsg.NewGraph(200)
	// Planted partition: 10 groups of 20.
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			same := i/20 == j/20
			p := 0.02
			if same {
				p = 0.5
			}
			if rng.Float64() < p {
				g.SetEdge(i, j, 0.5+0.5*rng.Float64())
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Communities(g)
	}
}
