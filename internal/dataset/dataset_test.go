package dataset

import (
	"testing"

	"cad/internal/simulator"
)

func TestRecipesBuild(t *testing.T) {
	recipes := []Recipe{PSM().Scaled(0.5), SMD(0).Scaled(0.5), SWaT().Scaled(0.5)}
	for _, r := range recipes {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			ds, err := r.Build()
			if err != nil {
				t.Fatal(err)
			}
			if ds.Test.Sensors() != r.Sensors {
				t.Errorf("sensors = %d, want %d", ds.Test.Sensors(), r.Sensors)
			}
			if ds.Test.Len() != r.TestLen || ds.Train.Len() != r.TrainLen {
				t.Errorf("lengths train=%d test=%d, want %d/%d", ds.Train.Len(), ds.Test.Len(), r.TrainLen, r.TestLen)
			}
			if len(ds.Injections) != r.Anomalies.Count {
				t.Errorf("injections = %d, want %d", len(ds.Injections), r.Anomalies.Count)
			}
			if ds.SuggestedK != r.K {
				t.Errorf("K = %d, want %d", ds.SuggestedK, r.K)
			}
			if ds.Test.HasNaN() || ds.Train.HasNaN() {
				t.Error("NaN in generated data")
			}
		})
	}
}

func TestISRecipes(t *testing.T) {
	for i := 1; i <= 5; i++ {
		r, err := IS(i)
		if err != nil {
			t.Fatal(err)
		}
		if r.Sensors != ISSensorCounts[i-1] {
			t.Errorf("IS-%d sensors = %d, want %d", i, r.Sensors, ISSensorCounts[i-1])
		}
	}
	if _, err := IS(0); err == nil {
		t.Error("IS(0) should error")
	}
	if _, err := IS(6); err == nil {
		t.Error("IS(6) should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIS(9) should panic")
		}
	}()
	MustIS(9)
}

func TestIS1Builds(t *testing.T) {
	if testing.Short() {
		t.Skip("IS-1 build is moderately expensive")
	}
	ds, err := MustIS(1).Scaled(0.4).Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Test.Sensors() != 143 {
		t.Errorf("IS-1 sensors = %d", ds.Test.Sensors())
	}
}

func TestSMDSubsetNames(t *testing.T) {
	if SMD(0).Name != "SMD-1_1" || SMD(8).Name != "SMD-2_1" || SMD(27).Name != "SMD-4_4" {
		t.Errorf("SMD naming: %s %s %s", SMD(0).Name, SMD(8).Name, SMD(27).Name)
	}
	// All subsets differ in seed.
	seen := map[int64]bool{}
	for i := 0; i < SMDSubsets; i++ {
		r := SMD(i)
		if seen[r.Seed] {
			t.Fatalf("duplicate seed %d", r.Seed)
		}
		seen[r.Seed] = true
	}
}

func TestScaled(t *testing.T) {
	r := PSM()
	s := r.Scaled(0.5)
	if s.TestLen != r.TestLen/2 || s.TrainLen != r.TrainLen/2 {
		t.Errorf("Scaled lengths: %d/%d", s.TrainLen, s.TestLen)
	}
	if s.Anomalies.MaxLen != r.Anomalies.MaxLen/2 {
		t.Errorf("Scaled anomaly MaxLen: %d", s.Anomalies.MaxLen)
	}
	if r.Scaled(0).TestLen != r.TestLen {
		t.Error("Scaled(0) should be a no-op")
	}
}

func TestDeterministicBuild(t *testing.T) {
	a, err := PSM().Scaled(0.3).Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := PSM().Scaled(0.3).Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Test.At(3, 7) != b.Test.At(3, 7) || len(a.Injections) != len(b.Injections) {
		t.Error("recipe builds are not deterministic")
	}
}

func TestAll(t *testing.T) {
	all := All()
	if len(all) != 4 || all[0].Name != "PSM" || all[3].Name != "IS-2" {
		t.Errorf("All() = %v", all)
	}
}

func TestAnomalyKindsPerSource(t *testing.T) {
	// SWaT (network attack) must include stealthy kinds, not spikes.
	for _, k := range SWaT().Anomalies.Kinds {
		if k == simulator.Spike {
			t.Error("SWaT recipe should not use spikes")
		}
	}
}
