// Package dataset provides named benchmark recipes that mirror the shape of
// the paper's eight datasets (Table II): PSM, SMD (28 subsets), SWaT, and
// the industrial IS-1..IS-5 series. The real datasets are private or
// unavailable offline, so each recipe drives internal/simulator with a
// sensor count, community structure, noise level, and anomaly mix matched to
// the dataset's described data source; series lengths are scaled down (the
// Scale field) so the full experiment suite runs on a laptop. DESIGN.md
// records the substitution rationale.
package dataset

import (
	"fmt"

	"cad/internal/simulator"
)

// Recipe is a reproducible dataset specification. Build is deterministic in
// (Name, Seed, Scale).
type Recipe struct {
	// Name of the dataset (matches the paper's tables).
	Name string
	// Sensors is the exact sensor count from Table II.
	Sensors int
	// Communities in the generative model.
	Communities int
	// TrainLen and TestLen are the series lengths at Scale = 1.
	TrainLen, TestLen int
	// K is the suggested TSG neighbor count (Table II).
	K int
	// Seed for the simulator.
	Seed int64
	// NoiseStd, CrossCoupling, WearDrift forward to simulator.Config.
	NoiseStd, CrossCoupling, WearDrift float64
	// Anomalies to inject into the test series.
	Anomalies simulator.AnomalySpec
}

// Scaled returns a copy with lengths (and anomaly durations/margins)
// multiplied by f ≥ 0.1. Use to trade fidelity for speed.
func (r Recipe) Scaled(f float64) Recipe {
	if f <= 0 {
		return r
	}
	scale := func(x int) int {
		y := int(float64(x) * f)
		if y < 1 {
			y = 1
		}
		return y
	}
	r.TrainLen = scale(r.TrainLen)
	r.TestLen = scale(r.TestLen)
	r.Anomalies.MinLen = scale(r.Anomalies.MinLen)
	r.Anomalies.MaxLen = scale(r.Anomalies.MaxLen)
	r.Anomalies.Margin = scale(r.Anomalies.Margin)
	return r
}

// Build generates the dataset.
func (r Recipe) Build() (*simulator.Dataset, error) {
	gen, err := simulator.New(simulator.Config{
		Seed:          r.Seed,
		Sensors:       r.Sensors,
		Communities:   r.Communities,
		Length:        r.TestLen,
		NoiseStd:      r.NoiseStd,
		CrossCoupling: r.CrossCoupling,
		WearDrift:     r.WearDrift,
	})
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", r.Name, err)
	}
	ds, err := gen.Generate(r.Name, r.TrainLen, r.Anomalies)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", r.Name, err)
	}
	ds.SuggestedK = r.K
	return ds, nil
}

// PSM mirrors the PSM dataset: 26 server-node metrics. Server metrics carry
// moderate noise and mixed anomaly types (resource exhaustion shows as level
// shifts and spikes; cascading faults as correlation breaks).
func PSM() Recipe {
	return Recipe{
		Name: "PSM", Sensors: 26, Communities: 4,
		TrainLen: 1600, TestLen: 2400, K: 10, Seed: 2601,
		NoiseStd: 0.08, CrossCoupling: 0.1,
		Anomalies: simulator.AnomalySpec{
			// Server faults cascade through correlated metrics; level
			// shifts are rare (and invisible to correlation analysis —
			// the paper's §IV-F limitation), so the mix is dominated by
			// correlation-breaking kinds.
			Count: 6, MinLen: 40, MaxLen: 120, MinSensors: 3, MaxSensors: 6,
			Kinds:  []simulator.Kind{simulator.CorrelationBreak, simulator.Stuck, simulator.Drift, simulator.Spike},
			Margin: 130,
		},
	}
}

// SMDSubsets is the number of server-machine subsets (the paper evaluates
// all 28 independently, without warm-up).
const SMDSubsets = 28

// SMD mirrors subset i (0-based) of the Server Machine Dataset: 38 metrics
// per machine, each subset an independent machine.
func SMD(i int) Recipe {
	return Recipe{
		Name: fmt.Sprintf("SMD-%d_%d", i/8+1, i%8+1), Sensors: 38, Communities: 5,
		TrainLen: 1200, TestLen: 2000, K: 10, Seed: 3800 + int64(i),
		NoiseStd: 0.1, CrossCoupling: 0.08,
		Anomalies: simulator.AnomalySpec{
			Count: 4, MinLen: 40, MaxLen: 100, MinSensors: 3, MaxSensors: 8,
			Kinds:  []simulator.Kind{simulator.CorrelationBreak, simulator.LevelShift, simulator.Drift, simulator.Stuck},
			Margin: 110,
		},
	}
}

// SWaT mirrors the Secure Water Treatment testbed: 51 ICS sensors; attacks
// are longer, stealthier disturbances (drifts and correlation breaks that
// avoid large marginal deviations).
func SWaT() Recipe {
	return Recipe{
		Name: "SWaT", Sensors: 51, Communities: 6,
		TrainLen: 2000, TestLen: 3000, K: 20, Seed: 5101,
		NoiseStd: 0.06, CrossCoupling: 0.15, WearDrift: 0.2,
		Anomalies: simulator.AnomalySpec{
			Count: 6, MinLen: 60, MaxLen: 150, MinSensors: 3, MaxSensors: 8,
			Kinds:  []simulator.Kind{simulator.CorrelationBreak, simulator.Drift, simulator.Stuck},
			Margin: 120,
		},
	}
}

// ISSensorCounts are the Table II sensor counts of IS-1..IS-5.
var ISSensorCounts = [5]int{143, 264, 406, 702, 1266}

// IS mirrors the industrial datasets IS-1..IS-5 (i in 1..5): electric meters
// and assembly lines with pronounced community structure and
// correlation-break failures; short warm-up (Table II: |T_his| = 5664).
func IS(i int) (Recipe, error) {
	if i < 1 || i > 5 {
		return Recipe{}, fmt.Errorf("dataset: IS index %d out of 1..5", i)
	}
	n := ISSensorCounts[i-1]
	k := [5]int{20, 20, 30, 50, 50}[i-1]
	return Recipe{
		Name: fmt.Sprintf("IS-%d", i), Sensors: n, Communities: 4 + 4*i,
		TrainLen: 800, TestLen: 2000, K: k, Seed: 9000 + int64(i),
		NoiseStd: 0.07, CrossCoupling: 0.05,
		Anomalies: simulator.AnomalySpec{
			// Assembly-line failures propagate through neighboring
			// components (§I), so each anomaly touches a handful of the
			// station's sensors.
			Count: 5, MinLen: 50, MaxLen: 120, MinSensors: 4 + i, MaxSensors: 8 + 4*i,
			Kinds:  []simulator.Kind{simulator.CorrelationBreak, simulator.Stuck, simulator.Drift},
			Margin: 130,
		},
	}, nil
}

// MustIS is IS(i) for known-good indices; it panics otherwise (test/bench
// convenience).
func MustIS(i int) Recipe {
	r, err := IS(i)
	if err != nil {
		panic(err)
	}
	return r
}

// All returns the recipes of the four headline datasets (Table III order):
// PSM, SWaT, IS-1, IS-2.
func All() []Recipe {
	return []Recipe{PSM(), SWaT(), MustIS(1), MustIS(2)}
}
