package fleet

import "hash/fnv"

// SBF is a Stable Bloom Filter (Deng & Rafiei, SIGMOD'06): an
// approximate duplicate detector over an unbounded stream in fixed
// memory. Each of the cells holds a small counter; an insert first
// decrements P randomly chosen cells (the "stabilizing" step that
// continuously evicts stale keys) and then sets the key's K hashed
// cells to Max. A key whose K cells are all non-zero before the insert
// is reported as already seen.
//
// The stable decay is the property a fleet dedup layer wants: a plain
// Bloom filter fills up monotonically under an endless alarm stream,
// while the SBF converges to a stable fraction of zero cells, trading a
// bounded false-positive rate for the guarantee that duplicates within
// the recent past are caught. Observer-style alarm dedup measured a
// 98.7% event reduction with exactly this structure.
//
// Not safe for concurrent use; the Fleet serializes access.
type SBF struct {
	cells []uint8
	k     int   // hashed cells per key
	p     int   // random decrements per insert
	max   uint8 // value a fresh insert sets
	rng   uint64
	// seen/inserted count lookups for the false-positive telemetry.
	lookups uint64
	dups    uint64
}

// NewSBF builds a filter with the given cell count. k is the number of
// hashed cells per key, p the number of random decrements per insert,
// max the counter ceiling. Zero or negative arguments take the
// defaults (1<<16 cells, k=3, p=16, max=2 — measured at ~2.6%
// false-positive rate under a distinct-key stream while still catching
// ≥92% of duplicates up to a thousand inserts later; p must comfortably
// exceed k·max or the decay cannot keep up with insertion and the
// filter saturates). seed makes the decrement sequence deterministic.
func NewSBF(cells, k, p int, max uint8, seed int64) *SBF {
	if cells <= 0 {
		cells = 1 << 16
	}
	if k <= 0 {
		k = 3
	}
	if p <= 0 {
		p = 16
	}
	if max == 0 {
		max = 2
	}
	return &SBF{
		cells: make([]uint8, cells),
		k:     k,
		p:     p,
		max:   max,
		rng:   uint64(seed)*2862933555777941757 + 3037000493,
	}
}

// Seen reports whether key was (probably) inserted recently, and
// inserts it. The first call for a fresh key returns false; calls soon
// after return true; a key left alone long enough decays back to
// unseen — exactly the semantics alarm dedup wants, where the same
// stream alarming again much later is a new signal, not a duplicate.
func (s *SBF) Seen(key string) bool {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	// Second independent hash by mixing (splitmix64 finalizer); forced
	// odd so the double-hash probe sequence spans the table.
	h2 := h1
	h2 ^= h2 >> 30
	h2 *= 0xbf58476d1ce4e5b9
	h2 ^= h2 >> 27
	h2 *= 0x94d049bb133111eb
	h2 ^= h2 >> 31
	h2 |= 1

	n := uint64(len(s.cells))
	s.lookups++
	present := true
	for i := 0; i < s.k; i++ {
		if s.cells[(h1+uint64(i)*h2)%n] == 0 {
			present = false
			break
		}
	}
	// Stabilize: decrement p random non-zero cells.
	for i := 0; i < s.p; i++ {
		s.rng = s.rng*6364136223846793005 + 1442695040888963407
		c := (s.rng >> 16) % n
		if s.cells[c] > 0 {
			s.cells[c]--
		}
	}
	// Insert: pin the key's cells at max.
	for i := 0; i < s.k; i++ {
		s.cells[(h1+uint64(i)*h2)%n] = s.max
	}
	if present {
		s.dups++
	}
	return present
}

// Stats returns total lookups and how many were reported duplicates.
func (s *SBF) Stats() (lookups, dups uint64) { return s.lookups, s.dups }
