package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cad/internal/alert"
)

// TestConcurrentBusFanIn hammers a bus-attached fleet from many
// publisher goroutines while a ticker advances the clock and readers
// poll the query API — the -race exercise for the whole ingest path:
// bus fan-out → sink runner → Observe under the fleet lock → publish
// back onto the bus, concurrently with Advance and Incidents/Stats.
func TestConcurrentBusFanIn(t *testing.T) {
	bus, err := alert.NewBus(alert.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer bus.Close()

	cfg := DefaultConfig()
	cfg.BucketSize = time.Second
	cfg.ClusterWindow = 10 * time.Second
	cfg.QuietClose = 20 * time.Second
	f := New(cfg, nil)
	if err := f.Attach(bus); err != nil {
		t.Fatal(err)
	}

	base := time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)
	const publishers = 8
	const perPublisher = 200

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Clock advancer racing the ingest path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				i++
				f.Advance(base.Add(time.Duration(i) * time.Second))
			}
		}
	}()

	// Readers racing the writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = f.Incidents("")
					_ = f.Stats()
				}
			}
		}()
	}

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPublisher; i++ {
				bus.Publish(alert.Event{
					Type:    alert.TypeAlarm,
					Stream:  fmt.Sprintf("s-%d", p),
					Time:    base.Add(time.Duration(i) * 100 * time.Millisecond),
					Score:   2.0,
					Sensors: []int{i % 4},
				})
			}
		}(p)
	}
	pubWG.Wait()

	// Let the sink runner drain: the queue may shed under DropOldest, so
	// wait for the signal count to go quiet rather than for a total.
	deadline := time.Now().Add(10 * time.Second)
	var last uint64
	for stable := 0; stable < 5; {
		st := f.Stats()
		if st.RawSignals == last && st.RawSignals > 0 {
			stable++
		} else {
			stable, last = 0, st.RawSignals
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink never went quiet (drained %d signals)", st.RawSignals)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	st := f.Stats()
	if st.RawSignals == 0 || st.PassedSignals == 0 {
		t.Fatalf("nothing flowed: %+v", st)
	}
	if st.PassedSignals > st.RawSignals {
		t.Fatalf("passed %d > raw %d", st.PassedSignals, st.RawSignals)
	}
}
