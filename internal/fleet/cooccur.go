package fleet

import (
	"math"
	"time"
)

// coOccur is the Surprise correlator's memory: an exponentially
// decaying co-occurrence matrix over streams. Every closed incident
// records one observation for each involved stream and each involved
// pair; all counts decay with a shared half-life, so the matrix tracks
// what the fleet's alarm weather has looked like *recently*.
//
// Surprise for a prospective incident is derived from lift: for a pair
// (a,b), lift = n_ab·T / (n_a·n_b) — how much more often a and b alarm
// together than independence predicts. High lift means the pair is the
// fleet's normal weather (a flaky rack that always pages together);
// zero lift means they have never co-alarmed. Surprise maps lift into
// [0,1] via 1/(1+lift) and averages over the incident's suspect pairs,
// so 1 = a combination never seen before, → 0 = a routine combination.
type coOccur struct {
	halfLife time.Duration
	last     time.Time
	total    float64
	stream   map[string]float64
	pair     map[pairKey]float64
}

type pairKey struct{ a, b string }

func mkPair(a, b string) pairKey {
	if b < a {
		a, b = b, a
	}
	return pairKey{a, b}
}

func newCoOccur(halfLife time.Duration) *coOccur {
	if halfLife <= 0 {
		halfLife = 24 * time.Hour
	}
	return &coOccur{
		halfLife: halfLife,
		stream:   make(map[string]float64),
		pair:     make(map[pairKey]float64),
	}
}

// decayTo ages every count to time t. Counts below a floor are dropped
// so the maps stay bounded by the recently active population.
func (c *coOccur) decayTo(t time.Time) {
	if c.last.IsZero() {
		c.last = t
		return
	}
	dt := t.Sub(c.last)
	if dt <= 0 {
		return
	}
	c.last = t
	f := math.Exp2(-dt.Hours() / c.halfLife.Hours())
	c.total *= f
	const floor = 1e-3
	for k, v := range c.stream {
		if v *= f; v < floor {
			delete(c.stream, k)
		} else {
			c.stream[k] = v
		}
	}
	for k, v := range c.pair {
		if v *= f; v < floor {
			delete(c.pair, k)
		} else {
			c.pair[k] = v
		}
	}
}

// lift returns n_ab·T / (n_a·n_b), or 0 when the pair has never been
// observed together.
func (c *coOccur) lift(a, b string) float64 {
	nab := c.pair[mkPair(a, b)]
	if nab == 0 {
		return 0
	}
	na, nb := c.stream[a], c.stream[b]
	if na == 0 || nb == 0 || c.total == 0 {
		return 0
	}
	return nab * c.total / (na * nb)
}

// surprise scores a set of streams in [0,1]: the mean pair novelty
// 1/(1+lift). A single-stream set is maximally surprising only if that
// stream has no incident history at all.
func (c *coOccur) surprise(streams []string) float64 {
	if len(streams) == 0 {
		return 0
	}
	if len(streams) == 1 {
		if c.stream[streams[0]] > 0 {
			return 0
		}
		return 1
	}
	var sum float64
	var pairs int
	for i := 0; i < len(streams); i++ {
		for j := i + 1; j < len(streams); j++ {
			sum += 1 / (1 + c.lift(streams[i], streams[j]))
			pairs++
		}
	}
	return sum / float64(pairs)
}

// record adds one incident observation over streams at time t.
func (c *coOccur) record(streams []string, t time.Time) {
	c.decayTo(t)
	c.total++
	for i, a := range streams {
		c.stream[a]++
		for _, b := range streams[i+1:] {
			c.pair[mkPair(a, b)]++
		}
	}
}
