package fleet

import "testing"

// TestReplayAcceptance is the fleet acceptance gate (`make fleettest`):
// replaying the ten-scenario corpus across 32 staggered streams must
// dedup ≥90% of raw alarm signals, emit at most 2 incidents per
// injected fault, and order every primary incident's suspects by their
// ground-truth onsets. The replay is fully deterministic (seeded
// scenarios, seeded SBF), so these are exact gates, not flaky bounds.
func TestReplayAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus replay")
	}
	r, err := Replay(ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Streams < 32 {
		t.Fatalf("replayed %d streams, want ≥ 32", r.Streams)
	}
	if len(r.Scenarios) < 10 {
		t.Fatalf("replayed %d scenarios, want the full corpus", len(r.Scenarios))
	}
	if r.DedupRatio < 0.90 {
		t.Errorf("aggregate dedup ratio %.4f < 0.90 (raw %d, passed %d)",
			r.DedupRatio, r.RawSignals, r.Passed)
	}
	for _, s := range r.Scenarios {
		if s.AlarmRounds == 0 {
			t.Errorf("%s: reference run raised no alarms", s.Name)
		}
		if s.Incidents < 1 || s.Incidents > 2 {
			t.Errorf("%s: %d incidents for one injected fault, want 1–2", s.Name, s.Incidents)
		}
		if !s.OrderOK {
			t.Errorf("%s: primary incident suspect order does not match ground-truth onsets", s.Name)
		}
		if s.MaxStreams != r.Streams {
			t.Errorf("%s: widest incident names %d of %d streams", s.Name, s.MaxStreams, r.Streams)
		}
		if s.Surprise != 1 {
			t.Errorf("%s: first-ever incident surprise %.2f, want 1 (no prior history)", s.Name, s.Surprise)
		}
	}
}

// TestReplayDeterministic pins the exact aggregate counters: any change
// to the detector, the corpus, or the dedup pipeline that shifts the
// replay shows up as a diff here instead of as silent drift.
func TestReplayDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus replay")
	}
	a, err := Replay(ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(ReplayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.RawSignals != b.RawSignals || a.Passed != b.Passed {
		t.Fatalf("replay not deterministic: (%d,%d) vs (%d,%d)",
			a.RawSignals, a.Passed, b.RawSignals, b.Passed)
	}
	for i := range a.Scenarios {
		if a.Scenarios[i] != b.Scenarios[i] {
			t.Fatalf("scenario %s differs between runs:\n%+v\n%+v",
				a.Scenarios[i].Name, a.Scenarios[i], b.Scenarios[i])
		}
	}
}
