package fleet

import (
	"fmt"
	"testing"
)

func TestSBFDuplicateDetection(t *testing.T) {
	s := NewSBF(1<<12, 3, 16, 2, 1)
	if s.Seen("web-0/3@100") {
		t.Fatal("fresh key reported seen")
	}
	if !s.Seen("web-0/3@100") {
		t.Fatal("immediate repeat not reported seen")
	}
	if s.Seen("web-0/3@101") {
		t.Fatal("different bucket reported seen")
	}
	if s.Seen("web-1/3@100") {
		t.Fatal("different stream reported seen")
	}
}

// TestSBFStability is the property that distinguishes a stable Bloom
// filter from a plain one: under an endless stream of distinct keys the
// fraction of zero cells converges instead of vanishing, so fresh keys
// keep being admitted with a bounded false-positive rate.
func TestSBFStability(t *testing.T) {
	s := NewSBF(1<<12, 3, 16, 2, 7)
	const n = 200000
	falsePos := 0
	for i := 0; i < n; i++ {
		if s.Seen(fmt.Sprintf("key-%d", i)) {
			falsePos++
		}
	}
	rate := float64(falsePos) / n
	if rate > 0.10 {
		t.Fatalf("false-positive rate %.3f after %d distinct inserts; filter saturated", rate, n)
	}
	lookups, dups := s.Stats()
	if lookups != n || int(dups) != falsePos {
		t.Fatalf("stats = (%d, %d), want (%d, %d)", lookups, dups, n, falsePos)
	}
}

// TestSBFDecay: a key left alone while many others stream through is
// eventually forgotten — the recency semantics dedup wants.
func TestSBFDecay(t *testing.T) {
	s := NewSBF(1<<8, 3, 16, 2, 3) // small table so decay is fast
	s.Seen("old")
	for i := 0; i < 5000; i++ {
		s.Seen(fmt.Sprintf("churn-%d", i))
	}
	if s.Seen("old") {
		t.Fatal("key survived heavy churn; cells never decay")
	}
}

func TestSBFDeterministic(t *testing.T) {
	a := NewSBF(1<<10, 3, 16, 2, 42)
	b := NewSBF(1<<10, 3, 16, 2, 42)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k-%d", i%700)
		if a.Seen(k) != b.Seen(k) {
			t.Fatalf("same seed diverged at insert %d", i)
		}
	}
}

func TestSBFDefaults(t *testing.T) {
	s := NewSBF(0, 0, 0, 0, 0)
	if len(s.cells) != 1<<16 || s.k != 3 || s.p != 16 || s.max != 2 {
		t.Fatalf("defaults = cells %d k %d p %d max %d", len(s.cells), s.k, s.p, s.max)
	}
}
