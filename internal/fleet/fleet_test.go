package fleet

import (
	"testing"
	"time"

	"cad/internal/alert"
)

var t0 = time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)

// collect returns a fleet publishing into the returned slice pointer.
func collect(cfg Config) (*Fleet, *[]alert.Event) {
	f := New(cfg, nil)
	var events []alert.Event
	f.SetPublisher(func(ev alert.Event) { events = append(events, ev) })
	return f, &events
}

func alarm(stream string, at time.Time, score float64, sensors ...int) alert.Event {
	return alert.Event{Type: alert.TypeAlarm, Stream: stream, Time: at, Score: score, Sensors: sensors}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BucketSize = 10 * time.Second
	cfg.ClusterWindow = 30 * time.Second
	cfg.QuietClose = 2 * time.Minute
	return cfg
}

func TestIncidentLifecycle(t *testing.T) {
	f, events := collect(testConfig())

	// One stream alone: below MinStreams, nothing published.
	f.Observe(alarm("a", t0, 2.0, 1))
	if len(*events) != 0 {
		t.Fatalf("single stream published %d events", len(*events))
	}

	// Second stream 7s later: incident opens with LeadLag order a → b.
	f.Observe(alarm("b", t0.Add(7*time.Second), 3.0, 2))
	if len(*events) != 1 {
		t.Fatalf("got %d events, want 1 opened", len(*events))
	}
	opened := (*events)[0]
	if opened.Type != alert.TypeIncidentOpened {
		t.Fatalf("first event = %s", opened.Type)
	}
	inc := opened.Incident
	if inc == nil || inc.State != "open" || inc.Rev != 1 || inc.Streams != 2 {
		t.Fatalf("opened payload %+v", inc)
	}
	if inc.Suspects[0].Stream != "a" || inc.Suspects[1].Stream != "b" {
		t.Fatalf("suspect order %v", inc.Suspects)
	}
	if inc.Suspects[0].LagSeconds != 0 || inc.Suspects[1].LagSeconds != 7 {
		t.Fatalf("lags %v / %v", inc.Suspects[0].LagSeconds, inc.Suspects[1].LagSeconds)
	}
	if inc.Surprise != 1 {
		t.Fatalf("first-ever incident surprise = %v, want 1", inc.Surprise)
	}

	// Third stream joins within the cluster window: updated, rev 2.
	f.Observe(alarm("c", t0.Add(20*time.Second), 1.5))
	if len(*events) != 2 || (*events)[1].Type != alert.TypeIncidentUpdated {
		t.Fatalf("events after join: %v", *events)
	}
	if upd := (*events)[1].Incident; upd.Rev != 2 || upd.Streams != 3 {
		t.Fatalf("updated payload %+v", upd)
	}

	// Quiet: advancing the clock past QuietClose closes it.
	f.Advance(t0.Add(20*time.Second + f.cfg.QuietClose))
	if len(*events) != 3 || (*events)[2].Type != alert.TypeIncidentClosed {
		t.Fatalf("events after quiet: %v", *events)
	}
	closed := (*events)[2].Incident
	if closed.State != "closed" || closed.Rev != 3 || closed.ClosedAt.IsZero() {
		t.Fatalf("closed payload %+v", closed)
	}

	st := f.Stats()
	if st.OpenIncidents != 0 || st.ClosedIncidents != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDedupSuppressesRepeats(t *testing.T) {
	f, _ := collect(testConfig())
	// Same stream, same sensor, same 10s bucket → one survivor.
	f.Observe(alarm("a", t0, 2.0, 1))
	f.Observe(alarm("a", t0.Add(3*time.Second), 2.5, 1))
	f.Observe(alarm("a", t0.Add(6*time.Second), 2.2, 1))
	st := f.Stats()
	if st.RawSignals != 3 || st.PassedSignals != 1 {
		t.Fatalf("stats %+v, want 3 raw / 1 passed", st)
	}
	// Different sensor in the same bucket is a distinct signal.
	f.Observe(alarm("a", t0.Add(2*time.Second), 2.0, 4))
	if st = f.Stats(); st.PassedSignals != 2 {
		t.Fatalf("per-sensor key collapsed distinct sensors: %+v", st)
	}
	// Next bucket readmits the original sensor.
	f.Observe(alarm("a", t0.Add(12*time.Second), 2.0, 1))
	if st = f.Stats(); st.PassedSignals != 3 {
		t.Fatalf("bucket rollover did not readmit: %+v", st)
	}
}

func TestPerSensorOff(t *testing.T) {
	cfg := testConfig()
	cfg.PerSensor = false
	f, _ := collect(cfg)
	f.Observe(alarm("a", t0, 2.0, 1))
	f.Observe(alarm("a", t0.Add(2*time.Second), 2.0, 4))
	if st := f.Stats(); st.PassedSignals != 1 {
		t.Fatalf("PerSensor=false should collapse sensors: %+v", st)
	}
}

func TestTimeClusterSeparatesDistantEpisodes(t *testing.T) {
	f, events := collect(testConfig())
	f.Observe(alarm("a", t0, 2.0))
	f.Observe(alarm("b", t0.Add(5*time.Second), 2.0))
	// Far outside ClusterWindow: a separate incident.
	later := t0.Add(10 * time.Minute)
	f.Observe(alarm("c", later, 2.0))
	f.Observe(alarm("d", later.Add(5*time.Second), 2.0))
	openedIDs := map[string]bool{}
	for _, ev := range *events {
		if ev.Type == alert.TypeIncidentOpened {
			openedIDs[ev.Incident.ID] = true
		}
	}
	if len(openedIDs) != 2 {
		t.Fatalf("distant episodes merged: %d incidents", len(openedIDs))
	}
}

func TestSurpriseDropsForRoutinePairs(t *testing.T) {
	cfg := testConfig()
	f, events := collect(cfg)
	run := func(at time.Time) {
		f.Observe(alarm("a", at, 2.0))
		f.Observe(alarm("b", at.Add(5*time.Second), 2.0))
		f.Advance(at.Add(5*time.Second + cfg.QuietClose))
	}
	run(t0)
	// The same pair alarming together again shortly after is now the
	// fleet's known weather.
	run(t0.Add(30 * time.Minute))
	var opened []float64
	for _, ev := range *events {
		if ev.Type == alert.TypeIncidentOpened {
			opened = append(opened, ev.Incident.Surprise)
		}
	}
	if len(opened) != 2 {
		t.Fatalf("got %d opened events, want 2", len(opened))
	}
	if opened[0] != 1 {
		t.Fatalf("first incident surprise = %v, want 1", opened[0])
	}
	if opened[1] >= opened[0] {
		t.Fatalf("repeat incident surprise %v did not drop below %v", opened[1], opened[0])
	}
}

func TestIncidentAccessors(t *testing.T) {
	f, _ := collect(testConfig())
	f.Observe(alarm("a", t0, 2.0, 1, 3))
	f.Observe(alarm("b", t0.Add(4*time.Second), 3.5, 2))
	open := f.Incidents("open")
	if len(open) != 1 || open[0].State != "open" {
		t.Fatalf("open list %v", open)
	}
	id := open[0].ID
	got, ok := f.Incident(id)
	if !ok || got.ID != id || got.Streams != 2 {
		t.Fatalf("Incident(%q) = %+v, %v", id, got, ok)
	}
	if got.Suspects[0].Sensors[0] != 1 || got.Suspects[0].Sensors[1] != 3 {
		t.Fatalf("sensor union %v", got.Suspects[0].Sensors)
	}
	if _, ok := f.Incident("inc-999"); ok {
		t.Fatal("unknown id found")
	}
	f.Advance(t0.Add(time.Hour))
	if closed := f.Incidents("closed"); len(closed) != 1 || closed[0].ID != id {
		t.Fatalf("closed list %v", closed)
	}
	if all := f.Incidents(""); len(all) != 1 {
		t.Fatalf("combined list %v", all)
	}
}

// TestNonAlarmEventsIgnored proves there is no feedback loop: the
// fleet's own incident events and the anomaly lifecycle pass through
// untouched.
func TestNonAlarmEventsIgnored(t *testing.T) {
	f, events := collect(testConfig())
	f.Observe(alert.Event{Type: alert.TypeIncidentOpened, Time: t0, Incident: &alert.Incident{ID: "inc-9"}})
	f.Observe(alert.Event{Type: alert.TypeAnomalyOpened, Stream: "a", Time: t0, AnomalyID: 1})
	f.Observe(alert.Event{Type: alert.TypeDurabilityDegraded, Time: t0})
	if st := f.Stats(); st.RawSignals != 0 {
		t.Fatalf("non-alarm events counted: %+v", st)
	}
	if len(*events) != 0 {
		t.Fatalf("non-alarm events published: %v", *events)
	}
}

// TestBusRoundTrip wires a real bus: alarms published on the bus reach
// the fleet sink, and the incident events the fleet emits fan back out
// to a bus subscriber.
func TestBusRoundTrip(t *testing.T) {
	bus, err := alert.NewBus(alert.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer bus.Close()
	f := New(testConfig(), nil)
	if err := f.Attach(bus); err != nil {
		t.Fatal(err)
	}
	sub := bus.Subscribe("", 64)
	defer sub.Close()

	bus.Publish(alarm("a", t0, 2.0, 1))
	bus.Publish(alarm("b", t0.Add(5*time.Second), 2.5, 2))

	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-sub.C:
			if ev.Type == alert.TypeIncidentOpened {
				if ev.Incident.Streams != 2 || ev.Incident.Suspects[0].Stream != "a" {
					t.Fatalf("incident payload %+v", ev.Incident)
				}
				return
			}
		case <-deadline:
			t.Fatal("no incident_opened on the bus within 5s")
		}
	}
}
