package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cad/internal/alert"
	"cad/internal/core"
	"cad/internal/scenario"
)

// ReplayConfig parameterizes the fleet replay evaluation: the
// ground-truthed scenario corpus fanned out across a simulated fleet.
type ReplayConfig struct {
	// Streams is the fleet width per scenario (default 32).
	Streams int
	// Stagger is the per-stream onset offset: stream i runs the scenario
	// shifted i·Stagger later, giving LeadLag an unambiguous ground-truth
	// ordering (default 7s).
	Stagger time.Duration
	// PointPeriod maps scenario time points to wall-clock (default 1s).
	PointPeriod time.Duration
	// ScenarioGap separates scenario episodes on the replay clock so
	// unrelated scenarios can never cluster (default 1h).
	ScenarioGap time.Duration
	// Fleet overrides the pipeline configuration; the zero value uses
	// replay-scaled windows (see ReplayFleetConfig).
	Fleet Config
}

// ReplayFleetConfig is the pipeline tuning the replay uses: the same
// shape as production, with windows scaled to the corpus timing — a
// 600s dedup bucket (one failure episode's alarms collapse to one or
// two signals per stream/sensor), a 120s cluster window (bridges the
// gaps between a scenario's alarm rounds once stream staggering spreads
// them), and a 300s quiet close.
func ReplayFleetConfig() Config {
	cfg := DefaultConfig()
	cfg.BucketSize = 600 * time.Second
	cfg.ClusterWindow = 120 * time.Second
	cfg.QuietClose = 300 * time.Second
	// The acceptance dedup key is exactly `stream + time-bucket`: every
	// alarm a stream raises within a bucket is one signal regardless of
	// which sensors it names. (Production defaults keep per-sensor keys
	// for finer incident attribution; sensor evidence still reaches the
	// suspect list either way.)
	cfg.PerSensor = false
	cfg.Seed = 1
	return cfg
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Streams <= 0 {
		c.Streams = 32
	}
	if c.Stagger <= 0 {
		c.Stagger = 7 * time.Second
	}
	if c.PointPeriod <= 0 {
		c.PointPeriod = time.Second
	}
	if c.ScenarioGap <= 0 {
		c.ScenarioGap = time.Hour
	}
	if c.Fleet == (Config{}) {
		c.Fleet = ReplayFleetConfig()
	}
	c.Fleet = c.Fleet.withDefaults()
	return c
}

// ScenarioReplay is one scenario's replay outcome.
type ScenarioReplay struct {
	Name        string  `json:"name"`
	AlarmRounds int     `json:"alarmRounds"`
	RawSignals  uint64  `json:"rawSignals"`
	Passed      uint64  `json:"passedSignals"`
	DedupRatio  float64 `json:"dedupRatio"`
	// Incidents counts incidents opened for this scenario's single
	// injected fault episode (the acceptance bound is ≤ 2).
	Incidents int `json:"incidents"`
	// OrderOK reports whether the primary incident — the earliest-opened
	// one, anchored at the fault onset — listed its suspects in the
	// staggered ground-truth order (stream 0 leads, indexes ascend).
	// Secondary spill-over incidents have no index-order ground truth:
	// their membership is set by dedup-bucket boundaries crossing
	// several alarm groups, so only the ≤2-incident bound applies.
	OrderOK bool `json:"suspectOrderOK"`
	// MaxStreams is the widest incident's distinct-stream count.
	MaxStreams int `json:"maxStreams"`
	// Surprise is the first opened incident's surprise score.
	Surprise float64 `json:"surprise"`
}

// ReplayResult aggregates the corpus replay.
type ReplayResult struct {
	Streams    int              `json:"streams"`
	RawSignals uint64           `json:"rawSignals"`
	Passed     uint64           `json:"passedSignals"`
	DedupRatio float64          `json:"dedupRatio"`
	Scenarios  []ScenarioReplay `json:"scenarios"`
}

// MaxIncidents returns the largest per-scenario incident count.
func (r *ReplayResult) MaxIncidents() int {
	max := 0
	for _, s := range r.Scenarios {
		if s.Incidents > max {
			max = s.Incidents
		}
	}
	return max
}

// OrderOK reports whether LeadLag ordering matched ground truth on
// every scenario.
func (r *ReplayResult) OrderOK() bool {
	for _, s := range r.Scenarios {
		if !s.OrderOK {
			return false
		}
	}
	return true
}

// Replay runs the fleet acceptance evaluation: every corpus scenario is
// detected once under the calibrated base configuration, and the
// resulting alarm trace is fanned across cfg.Streams concurrent streams
// with staggered onsets — stream i is the same workload hit i·Stagger
// later, the classic cascading-fleet shape where LeadLag's answer is
// known by construction. Each abnormal round contributes one alarm
// event per implicated time point (the round's pointSpan — the same
// per-point granularity Observer-style CUSUM detectors alarm at), so
// the dedup stage faces the realistic signal flood rather than
// pre-collapsed rounds.
func Replay(cfg ReplayConfig) (*ReplayResult, error) {
	cfg = cfg.withDefaults()
	fleetCfg := cfg.Fleet
	detCfg := scenario.BaseConfig()

	f := New(fleetCfg, nil)
	var published []alert.Event
	f.SetPublisher(func(ev alert.Event) { published = append(published, ev) })

	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	result := &ReplayResult{Streams: cfg.Streams}

	for si, sc := range scenario.Corpus() {
		inst, err := sc.Build()
		if err != nil {
			return nil, err
		}
		trace, err := alarmTrace(inst, detCfg)
		if err != nil {
			return nil, err
		}

		base := epoch.Add(time.Duration(si) * cfg.ScenarioGap)
		events := make([]alert.Event, 0, len(trace)*detCfg.Window.S*cfg.Streams)
		var last time.Time
		for _, tr := range trace {
			from := tr.windowEnd - detCfg.Window.S
			if from < 0 {
				from = 0
			}
			for p := from; p < tr.windowEnd; p++ {
				for i := 0; i < cfg.Streams; i++ {
					at := base.Add(time.Duration(p)*cfg.PointPeriod + time.Duration(i)*cfg.Stagger)
					if at.After(last) {
						last = at
					}
					events = append(events, alert.Event{
						Type:    alert.TypeAlarm,
						Stream:  fmt.Sprintf("%s-%d", sc.Name, i),
						Time:    at,
						Score:   tr.score,
						Sensors: tr.sensors,
					})
				}
			}
		}
		sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })

		before := f.Stats()
		publishedBefore := len(published)
		for _, ev := range events {
			f.Observe(ev)
		}
		// Close out the episode before the next scenario's clock starts.
		f.Advance(last.Add(fleetCfg.QuietClose + fleetCfg.BucketSize))
		after := f.Stats()

		sr := ScenarioReplay{
			Name:        sc.Name,
			AlarmRounds: len(trace),
			RawSignals:  after.RawSignals - before.RawSignals,
			Passed:      after.PassedSignals - before.PassedSignals,
		}
		if sr.RawSignals > 0 {
			sr.DedupRatio = 1 - float64(sr.Passed)/float64(sr.RawSignals)
		}
		var primary *alert.Incident
		for _, ev := range published[publishedBefore:] {
			switch ev.Type {
			case alert.TypeIncidentOpened:
				sr.Incidents++
				if sr.Incidents == 1 {
					sr.Surprise = ev.Incident.Surprise
				}
			case alert.TypeIncidentClosed:
				// The closed snapshot carries the full suspect list.
				if primary == nil || ev.Incident.OpenedAt.Before(primary.OpenedAt) {
					primary = ev.Incident
				}
				if ev.Incident.Streams > sr.MaxStreams {
					sr.MaxStreams = ev.Incident.Streams
				}
			}
		}
		// The primary incident must name every fleet stream and order
		// them by their construction-time onsets.
		sr.OrderOK = primary != nil &&
			primary.Streams == cfg.Streams &&
			suspectOrderOK(primary.Suspects)
		result.Scenarios = append(result.Scenarios, sr)
	}

	st := f.Stats()
	result.RawSignals = st.RawSignals
	result.Passed = st.PassedSignals
	result.DedupRatio = st.DedupRatio()
	return result, nil
}

// traceEntry is one abnormal detection round of the reference run.
type traceEntry struct {
	windowEnd int
	score     float64
	sensors   []int
}

// alarmTrace streams one built scenario through the detector and
// returns its abnormal rounds.
func alarmTrace(inst *scenario.Instance, cfg core.Config) ([]traceEntry, error) {
	det, err := core.NewDetector(inst.Sensors, cfg)
	if err != nil {
		return nil, err
	}
	sr := core.NewStreamer(det)
	col := make([]float64, inst.Sensors)
	var trace []traceEntry
	for p := 0; p < inst.Series.Len(); p++ {
		inst.Series.Column(p, col)
		rep, ok, err := sr.Push(col)
		if err != nil {
			return nil, err
		}
		if ok && rep.Abnormal {
			trace = append(trace, traceEntry{
				windowEnd: rep.WindowEnd,
				score:     rep.Score,
				sensors:   append([]int(nil), rep.Outliers...),
			})
		}
	}
	return trace, nil
}

// suspectOrderOK checks a replay incident's LeadLag verdict against the
// construction: stream indexes must appear in ascending order and the
// leader must carry lag 0.
func suspectOrderOK(suspects []alert.Suspect) bool {
	if len(suspects) == 0 {
		return false
	}
	if suspects[0].LagSeconds != 0 {
		return false
	}
	prev := -1
	for _, sp := range suspects {
		i := strings.LastIndexByte(sp.Stream, '-')
		if i < 0 {
			return false
		}
		idx, err := strconv.Atoi(sp.Stream[i+1:])
		if err != nil || idx <= prev {
			return false
		}
		prev = idx
	}
	return true
}
