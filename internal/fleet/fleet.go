// Package fleet is the second-stage pipeline that turns per-stream CAD
// alarms into fleet-level incidents. CAD (PAPER.md) finds anomalies
// *within* one stream; at fleet scale the interesting question is which
// streams are failing *together* and who moved first. The package is
// modeled on the Observer architecture (SNIPPETS.md): raw alarm events
// off the alert bus are first deduplicated by a Stable Bloom filter
// keyed by stream + time-bucket (the 98.7%-reduction trick), then three
// cross-stream correlators run over the survivors —
//
//   - TimeCluster groups signals whose times fall within a proximity
//     window into one incident;
//   - LeadLag orders an incident's streams by first-alarm onset, so the
//     stream that moved first — the likeliest root cause — leads the
//     suspect list;
//   - Surprise scores the incident's stream combination against a
//     decaying historical co-occurrence matrix (lift), separating novel
//     failures from the fleet's routine weather.
//
// Incidents are published back onto the same bus as
// incident_opened/updated/closed events, so every existing delivery
// surface — SSE, webhooks, the NDJSON sink, the dead-letter queue —
// carries fleet diagnoses with the at-least-once contract alarms
// already have.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cad/internal/alert"
	"cad/internal/obs"
)

// Config tunes the fleet pipeline. DefaultConfig is the starting point;
// New fills zero numeric fields with the same defaults, but PerSensor
// is taken literally (DefaultConfig turns it on).
type Config struct {
	// BucketSize quantizes alarm times for the dedup key: repeats of one
	// stream/sensor within a bucket are duplicates (default 30s).
	BucketSize time.Duration
	// PerSensor includes the outlier sensor id in the dedup key, so two
	// different sensors of one stream alarming in the same bucket are
	// distinct signals — the Observer keys on the individual metric
	// source for the same reason. DefaultConfig enables it.
	PerSensor bool
	// ClusterWindow is TimeCluster's proximity window: a surviving
	// signal joins an open incident whose latest activity is within this
	// window, else it opens a new incident (default 60s).
	ClusterWindow time.Duration
	// QuietClose closes an incident after this much event-time silence
	// (default 5m).
	QuietClose time.Duration
	// MinStreams is how many distinct streams an incident needs before
	// it is published (default 2 — a single-stream episode is already
	// covered by the per-stream anomaly lifecycle events).
	MinStreams int
	// SBFCells, SBFHashes, SBFDecrements, SBFMax tune the Stable Bloom
	// filter (defaults 1<<16, 3, 16, 2; see NewSBF).
	SBFCells      int
	SBFHashes     int
	SBFDecrements int
	SBFMax        uint8
	// HalfLife is the co-occurrence matrix decay (default 24h).
	HalfLife time.Duration
	// MaxClosed bounds the retained closed-incident history (default 256).
	MaxClosed int
	// Seed makes the SBF's decrement sequence deterministic.
	Seed int64
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		BucketSize:    30 * time.Second,
		PerSensor:     true,
		ClusterWindow: 60 * time.Second,
		QuietClose:    5 * time.Minute,
		MinStreams:    2,
		SBFCells:      1 << 16,
		SBFHashes:     3,
		SBFDecrements: 16,
		SBFMax:        2,
		HalfLife:      24 * time.Hour,
		MaxClosed:     256,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BucketSize <= 0 {
		c.BucketSize = d.BucketSize
	}
	if c.ClusterWindow <= 0 {
		c.ClusterWindow = d.ClusterWindow
	}
	if c.QuietClose <= 0 {
		c.QuietClose = d.QuietClose
	}
	if c.MinStreams <= 0 {
		c.MinStreams = d.MinStreams
	}
	if c.SBFCells <= 0 {
		c.SBFCells = d.SBFCells
	}
	if c.SBFHashes <= 0 {
		c.SBFHashes = d.SBFHashes
	}
	if c.SBFDecrements <= 0 {
		c.SBFDecrements = d.SBFDecrements
	}
	if c.SBFMax == 0 {
		c.SBFMax = d.SBFMax
	}
	if c.HalfLife <= 0 {
		c.HalfLife = d.HalfLife
	}
	if c.MaxClosed <= 0 {
		c.MaxClosed = d.MaxClosed
	}
	return c
}

// suspect accumulates one stream's evidence inside an incident.
type suspect struct {
	stream  string
	onset   time.Time
	events  int
	peak    float64
	sensors map[int]struct{}
}

// incident is the mutable in-flight state behind the published
// alert.Incident snapshots.
type incident struct {
	id        string
	rev       int
	openedAt  time.Time
	lastAt    time.Time
	closedAt  time.Time
	events    int
	published int // distinct streams at the last published revision; 0 = unpublished
	suspects  map[string]*suspect
}

// Fleet is the correlation pipeline. Attach it to an alert.Bus to feed
// it in production, or call Observe directly (replay, tests). All
// methods are safe for concurrent use.
type Fleet struct {
	cfg Config

	mu      sync.Mutex
	sbf     *SBF
	co      *coOccur
	clock   time.Time // high-water event time
	nextID  int
	open    []*incident
	closed  []alert.Incident // bounded ring, oldest first
	raw     uint64           // signals before dedup
	passed  uint64           // signals after dedup
	pubMu   sync.Mutex       // serializes publishing, outside mu
	publish func(alert.Event)

	signals   *obs.Counter
	deduped   *obs.Counter
	incidents *obs.Counter
	openGauge *obs.Gauge
}

// New builds a fleet pipeline. reg nil keeps metrics private.
func New(cfg Config, reg *obs.Registry) *Fleet {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Fleet{
		cfg: cfg,
		sbf: NewSBF(cfg.SBFCells, cfg.SBFHashes, cfg.SBFDecrements, cfg.SBFMax, cfg.Seed),
		co:  newCoOccur(cfg.HalfLife),
		signals: reg.Counter("cad_fleet_signals_total",
			"Raw alarm signals entering the fleet dedup stage."),
		deduped: reg.Counter("cad_fleet_deduped_total",
			"Alarm signals suppressed as duplicates by the stable Bloom filter."),
		incidents: reg.Counter("cad_fleet_incidents_total",
			"Fleet incidents published (opened)."),
		openGauge: reg.Gauge("cad_fleet_incidents_open",
			"Fleet incidents currently open."),
	}
}

// Config returns the effective (defaulted) configuration.
func (f *Fleet) Config() Config { return f.cfg }

// SetPublisher routes published incident events to fn instead of a bus
// — the replay and test hook. Attach overrides it.
func (f *Fleet) SetPublisher(fn func(alert.Event)) {
	f.pubMu.Lock()
	f.publish = fn
	f.pubMu.Unlock()
}

// Attach registers the fleet as a sink named "fleet" on bus and routes
// published incident events back onto the same bus. The sink queue
// drops oldest under pressure: losing a raw alarm to backpressure costs
// one dedup-counted signal, never a detection (the per-stream anomaly
// events still flow), and the fleet must never stall the bus.
func (f *Fleet) Attach(bus *alert.Bus) error {
	if err := bus.AddSink("fleet", (*busSink)(f), alert.SinkConfig{
		Queue:  1024,
		Policy: alert.DropOldest,
	}); err != nil {
		return fmt.Errorf("fleet: attach: %w", err)
	}
	f.SetPublisher(bus.Publish)
	return nil
}

// busSink adapts Fleet to alert.Sink without exposing Deliver/Close on
// the Fleet API itself.
type busSink Fleet

func (s *busSink) Kind() string   { return "fleet" }
func (s *busSink) Target() string { return "fleet-correlator" }
func (s *busSink) Close() error   { return nil }

// Deliver feeds one bus event into the pipeline. Only raw alarms are
// correlated; everything else — anomaly lifecycle, durability, and the
// fleet's own incident events fanning back through the bus — is
// acknowledged untouched, so there is no feedback loop. Deliver never
// fails: the at-least-once contract is the bus's job, idempotence under
// redelivery is the dedup filter's.
func (s *busSink) Deliver(_ context.Context, ev alert.Event) error {
	(*Fleet)(s).Observe(ev)
	return nil
}

// Observe feeds one event into the pipeline directly (replay path; the
// bus path arrives here through Deliver).
func (f *Fleet) Observe(ev alert.Event) {
	if ev.Type != alert.TypeAlarm {
		return
	}
	f.mu.Lock()
	if ev.Time.After(f.clock) {
		f.clock = ev.Time
	}
	f.ingestLocked(ev)
	out := f.closeQuietLocked()
	f.mu.Unlock()
	f.emit(out)
}

// Advance moves the pipeline's event-time clock forward so quiet
// incidents close even when no further alarms arrive. Call it from a
// ticker in serving processes and once at the end of a replay.
func (f *Fleet) Advance(t time.Time) {
	f.mu.Lock()
	if t.After(f.clock) {
		f.clock = t
	}
	out := f.closeQuietLocked()
	f.mu.Unlock()
	f.emit(out)
}

// ingestLocked explodes ev into dedup signals and absorbs survivors.
// With PerSensor on, each outlier sensor is its own signal (two sensors
// of one stream alarming in a bucket are distinct evidence); off, the
// whole event is one stream-level signal. Either way a survivor carries
// its sensor attribution into the incident.
func (f *Fleet) ingestLocked(ev alert.Event) {
	bucket := ev.Time.UnixNano() / int64(f.cfg.BucketSize)
	type signal struct {
		key     string
		sensors []int
	}
	var signals []signal
	if f.cfg.PerSensor && len(ev.Sensors) > 0 {
		for i, sensor := range ev.Sensors {
			signals = append(signals, signal{
				key:     fmt.Sprintf("%s/%d@%d", ev.Stream, sensor, bucket),
				sensors: ev.Sensors[i : i+1],
			})
		}
	} else {
		signals = append(signals, signal{
			key:     fmt.Sprintf("%s@%d", ev.Stream, bucket),
			sensors: ev.Sensors,
		})
	}
	for _, sig := range signals {
		f.raw++
		f.signals.Inc()
		if f.sbf.Seen(sig.key) {
			f.deduped.Inc()
			continue
		}
		f.passed++
		f.absorbLocked(ev, sig.sensors)
	}
}

// absorbLocked runs TimeCluster on one surviving signal: join the open
// incident whose latest activity is nearest within ClusterWindow, else
// open a new one.
func (f *Fleet) absorbLocked(ev alert.Event, sensors []int) {
	var best *incident
	var bestGap time.Duration
	for _, inc := range f.open {
		gap := ev.Time.Sub(inc.lastAt)
		if gap < 0 {
			gap = -gap
		}
		if gap <= f.cfg.ClusterWindow && (best == nil || gap < bestGap) {
			best, bestGap = inc, gap
		}
	}
	if best == nil {
		f.nextID++
		best = &incident{
			id:       fmt.Sprintf("inc-%d", f.nextID),
			openedAt: ev.Time,
			lastAt:   ev.Time,
			suspects: make(map[string]*suspect),
		}
		f.open = append(f.open, best)
	}
	if ev.Time.Before(best.openedAt) {
		best.openedAt = ev.Time
	}
	if ev.Time.After(best.lastAt) {
		best.lastAt = ev.Time
	}
	best.events++
	sp := best.suspects[ev.Stream]
	if sp == nil {
		sp = &suspect{stream: ev.Stream, onset: ev.Time, sensors: make(map[int]struct{})}
		best.suspects[ev.Stream] = sp
	}
	if ev.Time.Before(sp.onset) {
		sp.onset = ev.Time
	}
	sp.events++
	if ev.Score > sp.peak {
		sp.peak = ev.Score
	}
	for _, sensor := range sensors {
		sp.sensors[sensor] = struct{}{}
	}
}

// snapshotLocked renders the published alert.Incident view: suspects in
// LeadLag order (onset ascending, stream id tie-break), lags relative
// to the leader, surprise against the current co-occurrence history.
func (f *Fleet) snapshotLocked(inc *incident, state string) alert.Incident {
	suspects := make([]alert.Suspect, 0, len(inc.suspects))
	streams := make([]string, 0, len(inc.suspects))
	for _, sp := range inc.suspects {
		sensors := make([]int, 0, len(sp.sensors))
		for s := range sp.sensors {
			sensors = append(sensors, s)
		}
		sort.Ints(sensors)
		suspects = append(suspects, alert.Suspect{
			Stream:  sp.stream,
			Onset:   sp.onset,
			Events:  sp.events,
			Score:   sp.peak,
			Sensors: sensors,
		})
		streams = append(streams, sp.stream)
	}
	sort.Slice(suspects, func(i, j int) bool {
		if !suspects[i].Onset.Equal(suspects[j].Onset) {
			return suspects[i].Onset.Before(suspects[j].Onset)
		}
		return suspects[i].Stream < suspects[j].Stream
	})
	if len(suspects) > 0 {
		leader := suspects[0].Onset
		for i := range suspects {
			suspects[i].LagSeconds = suspects[i].Onset.Sub(leader).Seconds()
		}
	}
	return alert.Incident{
		ID:       inc.id,
		State:    state,
		Rev:      inc.rev,
		OpenedAt: inc.openedAt,
		LastAt:   inc.lastAt,
		ClosedAt: inc.closedAt,
		Streams:  len(inc.suspects),
		Events:   inc.events,
		Surprise: f.co.surprise(streams),
		Suspects: suspects,
	}
}

// maybePublishLocked emits opened/updated transitions for incidents
// that crossed MinStreams or gained a new suspect stream since the last
// published revision. Returned events are published by the caller after
// the state lock is released.
func (f *Fleet) maybePublishLocked() []alert.Event {
	var out []alert.Event
	for _, inc := range f.open {
		n := len(inc.suspects)
		switch {
		case inc.published == 0 && n >= f.cfg.MinStreams:
			inc.rev = 1
			inc.published = n
			f.incidents.Inc()
			f.openGauge.Add(1)
			snap := f.snapshotLocked(inc, "open")
			out = append(out, alert.Event{
				Type:     alert.TypeIncidentOpened,
				Time:     inc.lastAt,
				Incident: &snap,
			})
		case inc.published > 0 && n > inc.published:
			inc.rev++
			inc.published = n
			snap := f.snapshotLocked(inc, "open")
			out = append(out, alert.Event{
				Type:     alert.TypeIncidentUpdated,
				Time:     inc.lastAt,
				Incident: &snap,
			})
		}
	}
	return out
}

// closeQuietLocked publishes pending open/update transitions, then
// closes incidents whose last activity is QuietClose behind the clock.
// Closing records the incident into the co-occurrence history — the
// surprise carried by the closed event is computed *before* recording,
// so an incident is scored against the world that preceded it.
func (f *Fleet) closeQuietLocked() []alert.Event {
	out := f.maybePublishLocked()
	keep := f.open[:0]
	for _, inc := range f.open {
		if f.clock.Sub(inc.lastAt) < f.cfg.QuietClose {
			keep = append(keep, inc)
			continue
		}
		inc.closedAt = f.clock
		if inc.published > 0 {
			inc.rev++
			f.openGauge.Add(-1)
			snap := f.snapshotLocked(inc, "closed")
			out = append(out, alert.Event{
				Type:     alert.TypeIncidentClosed,
				Time:     inc.closedAt,
				Incident: &snap,
			})
			f.closed = append(f.closed, snap)
			if len(f.closed) > f.cfg.MaxClosed {
				f.closed = f.closed[len(f.closed)-f.cfg.MaxClosed:]
			}
		}
		// Unpublished (below MinStreams) incidents close silently, but
		// still shape the history: a lone stream alarming on its own
		// makes its future appearance in a multi-stream incident less
		// surprising than a stream never seen alarming.
		streams := make([]string, 0, len(inc.suspects))
		for s := range inc.suspects {
			streams = append(streams, s)
		}
		sort.Strings(streams)
		f.co.record(streams, f.clock)
	}
	f.open = keep
	return out
}

// emit publishes events outside the state lock. pubMu keeps the
// transition order (an opened before its updates before its closed)
// even when Observe and Advance race.
func (f *Fleet) emit(events []alert.Event) {
	if len(events) == 0 {
		return
	}
	f.pubMu.Lock()
	defer f.pubMu.Unlock()
	if f.publish == nil {
		return
	}
	for _, ev := range events {
		f.publish(ev)
	}
}

// Stats is a point-in-time pipeline summary.
type Stats struct {
	// RawSignals counts alarm signals entering dedup; PassedSignals the
	// survivors. DedupRatio = 1 − Passed/Raw.
	RawSignals    uint64
	PassedSignals uint64
	// OpenIncidents / ClosedIncidents are current store sizes (closed is
	// bounded by Config.MaxClosed).
	OpenIncidents   int
	ClosedIncidents int
}

// DedupRatio returns the fraction of raw signals suppressed (0 when
// nothing was observed).
func (s Stats) DedupRatio() float64 {
	if s.RawSignals == 0 {
		return 0
	}
	return 1 - float64(s.PassedSignals)/float64(s.RawSignals)
}

// Stats returns current pipeline counters.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{
		RawSignals:      f.raw,
		PassedSignals:   f.passed,
		OpenIncidents:   len(f.open),
		ClosedIncidents: len(f.closed),
	}
}

// Incidents lists incident snapshots, newest first. state filters to
// "open" or "closed"; "" lists both. Only published incidents (those
// that crossed MinStreams) appear.
func (f *Fleet) Incidents(state string) []alert.Incident {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []alert.Incident
	if state == "" || state == "open" {
		for _, inc := range f.open {
			if inc.published > 0 {
				out = append(out, f.snapshotLocked(inc, "open"))
			}
		}
	}
	if state == "" || state == "closed" {
		out = append(out, f.closed...)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].OpenedAt.Equal(out[j].OpenedAt) {
			return out[i].OpenedAt.After(out[j].OpenedAt)
		}
		return out[i].ID > out[j].ID
	})
	return out
}

// Incident returns one incident snapshot by id.
func (f *Fleet) Incident(id string) (alert.Incident, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, inc := range f.open {
		if inc.id == id && inc.published > 0 {
			return f.snapshotLocked(inc, "open"), true
		}
	}
	for i := len(f.closed) - 1; i >= 0; i-- {
		if f.closed[i].ID == id {
			return f.closed[i], true
		}
	}
	return alert.Incident{}, false
}
