package core

import (
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

// staggered builds an MTS where sensor 0 decouples at breakA and sensor 1
// only later at breakB — the propagation pattern root-cause ranking should
// recover.
func staggered(seed int64, length, breakA, breakB int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	m := mts.Zeros(12, length)
	for t := 0; t < length; t++ {
		for g := 0; g < 3; g++ {
			latent := math.Sin(2*math.Pi*float64(t)/(18+7*float64(g)) + float64(g))
			for j := 0; j < 4; j++ {
				i := g*4 + j
				v := latent*(1+0.2*float64(j)) + 0.05*rng.NormFloat64()
				if i == 0 && t >= breakA {
					v = rng.NormFloat64()
				}
				if i == 1 && t >= breakB {
					v = rng.NormFloat64()
				}
				m.Set(i, t, v)
			}
		}
	}
	return m
}

func TestRootCauseOrdering(t *testing.T) {
	his := staggered(41, 600, 1<<30, 1<<30) // clean
	// Sensor 0 breaks at 300, sensor 1 at 380; both stay broken.
	test := staggered(42, 700, 300, 380)
	cfg := testConfig()
	det, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	// Find an anomaly containing both sensors 0 and 1.
	for _, a := range res.Anomalies {
		has0, has1 := false, false
		for _, s := range a.Sensors {
			has0 = has0 || s == 0
			has1 = has1 || s == 1
		}
		if has0 && has1 {
			ranked := a.RootCauses()
			if len(ranked) != len(a.Sensors) {
				t.Fatalf("RootCauses length %d vs %d sensors", len(ranked), len(a.Sensors))
			}
			pos := map[int]int{}
			for i, s := range ranked {
				pos[s] = i
			}
			if pos[0] > pos[1] {
				t.Errorf("sensor 0 broke first but ranks after sensor 1: %v (onsets %v of %v)", ranked, a.Onsets, a.Sensors)
			}
			return
		}
	}
	t.Skip("no anomaly captured both staggered sensors; detection grouped them separately")
}

func TestOnsetsParallelToSensors(t *testing.T) {
	test := synth(43, 3, 4, 700, []int{0, 1, 2}, 350, 460)
	det, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Anomalies {
		if len(a.Onsets) != len(a.Sensors) {
			t.Fatalf("Onsets %v not parallel to Sensors %v", a.Onsets, a.Sensors)
		}
		for _, o := range a.Onsets {
			if o < a.FirstRound || o > a.LastRound {
				t.Errorf("onset %d outside rounds [%d,%d]", o, a.FirstRound, a.LastRound)
			}
		}
	}
}
