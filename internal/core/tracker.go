package core

import (
	"sort"

	"cad/internal/mts"
)

// Tracker assembles streaming RoundReports into Anomaly records with the
// same grouping rule batch Detect uses: consecutive abnormal rounds form
// one anomaly, closed by the first normal round. It lets Streamer users
// consume whole anomalies instead of raw per-round alarms.
//
// The zero value is not usable; construct with NewTracker using the same
// config as the detector feeding it.
type Tracker struct {
	wd     mts.Windowing
	step   int
	open   *Anomaly
	onsets map[int]int
	// firstEnd/lastEnd record the open anomaly's actual window ends from
	// RoundReport.WindowEnd. After failed-round retries a streamer's
	// windows run ahead of the nominal cadence, so trusting
	// Bounds(round) alone would drift the time attribution. Zero means
	// the feeding reports predate WindowEnd; finish falls back to Bounds.
	firstEnd, lastEnd int
	// Completed anomalies not yet drained.
	done []Anomaly
}

// NewTracker builds a tracker for detectors running with cfg.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{wd: cfg.Window, step: cfg.Window.S}
}

// Push feeds one round report. When the report closes an anomaly (a normal
// round after one or more abnormal ones) the completed anomaly becomes
// available from Drain.
func (tr *Tracker) Push(rep RoundReport) {
	if rep.Abnormal {
		if tr.open == nil {
			tr.open = &Anomaly{FirstRound: rep.Round, LastRound: rep.Round, Score: rep.Score}
			tr.onsets = make(map[int]int)
			tr.firstEnd = rep.WindowEnd
		}
		tr.open.LastRound = rep.Round
		tr.lastEnd = rep.WindowEnd
		if rep.Score > tr.open.Score {
			tr.open.Score = rep.Score
		}
		for _, v := range rep.Outliers {
			if _, seen := tr.onsets[v]; !seen {
				tr.onsets[v] = rep.Round
			}
		}
		return
	}
	if tr.open != nil {
		tr.done = append(tr.done, tr.finish())
		tr.open = nil
	}
}

// Flush closes any still-open anomaly (use at stream end).
func (tr *Tracker) Flush() {
	if tr.open != nil {
		tr.done = append(tr.done, tr.finish())
		tr.open = nil
	}
}

// Open reports whether an anomaly is currently in progress.
func (tr *Tracker) Open() bool { return tr.open != nil }

// Drain returns the completed anomalies accumulated since the last call
// and clears the queue.
func (tr *Tracker) Drain() []Anomaly {
	out := tr.done
	tr.done = nil
	return out
}

func (tr *Tracker) finish() Anomaly {
	a := tr.open
	a.Sensors = make([]int, 0, len(tr.onsets))
	for v := range tr.onsets {
		a.Sensors = append(a.Sensors, v)
	}
	sort.Ints(a.Sensors)
	a.Onsets = make([]int, len(a.Sensors))
	for i, v := range a.Sensors {
		a.Onsets[i] = tr.onsets[v]
	}
	// Mirror Detector.pointSpan: each abnormal round implicates the final
	// step of its window, so the anomaly spans from the first round's new
	// points to the last round's window end. Prefer the actual window ends
	// the reports carried; fall back to the nominal cadence for reports
	// (or restored snapshots) that predate WindowEnd.
	firstEnd, lastEnd := tr.firstEnd, tr.lastEnd
	if firstEnd == 0 {
		_, firstEnd = tr.wd.Bounds(a.FirstRound)
	}
	if lastEnd == 0 {
		_, lastEnd = tr.wd.Bounds(a.LastRound)
	}
	a.Start = firstEnd - tr.step
	if a.Start < 0 {
		a.Start = 0
	}
	a.End = lastEnd
	return *a
}
