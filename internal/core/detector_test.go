package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cad/internal/mts"
)

// synth builds an MTS with `groups` blocks of `per` sensors, each block
// driven by its own latent sine plus per-sensor noise. If breakFrom >= 0,
// sensors breakSensors lose their latent signal (become pure noise) on
// [breakFrom, breakTo).
func synth(seed int64, groups, per, length int, breakSensors []int, breakFrom, breakTo int) *mts.MTS {
	rng := rand.New(rand.NewSource(seed))
	n := groups * per
	m := mts.Zeros(n, length)
	phase := make([]float64, groups)
	period := make([]float64, groups)
	for g := range phase {
		phase[g] = rng.Float64() * 2 * math.Pi
		period[g] = 15 + 10*float64(g)
	}
	broken := make(map[int]bool, len(breakSensors))
	for _, s := range breakSensors {
		broken[s] = true
	}
	for t := 0; t < length; t++ {
		for g := 0; g < groups; g++ {
			latent := math.Sin(2*math.Pi*float64(t)/period[g] + phase[g])
			for j := 0; j < per; j++ {
				i := g*per + j
				v := latent*(1+0.2*float64(j)) + 0.05*rng.NormFloat64()
				if broken[i] && t >= breakFrom && t < breakTo {
					v = 0.8 * rng.NormFloat64() // decoupled from the latent
				}
				m.Set(i, t, v)
			}
		}
	}
	return m
}

func testConfig() Config {
	return Config{
		Window:     mts.Windowing{W: 40, S: 4},
		K:          3,
		Tau:        0.4,
		Theta:      0.2, // groups of 4 in 12 sensors: normal RC ≈ 3/11
		Eta:        3,
		SigmaFloor: 0.5,
		MinHistory: 8,
		RCMode:     RCSliding,
		RCHorizon:  8,
	}
}

func TestConfigValidate(t *testing.T) {
	base := testConfig()
	if err := base.Validate(12); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mut := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.K = 12 },
		func(c *Config) { c.Tau = 1.5 },
		func(c *Config) { c.Theta = -0.1 },
		func(c *Config) { c.Theta = 1.1 },
		func(c *Config) { c.Eta = 0 },
		func(c *Config) { c.SigmaFloor = -1 },
		func(c *Config) { c.Window.S = c.Window.W },
		func(c *Config) { c.Window.W = 0 },
		func(c *Config) { c.RCMode = RCExponential; c.RCAlpha = 0 },
		func(c *Config) { c.DisableVariationRule = true; c.FixedXi = 0 },
	}
	for i, f := range mut {
		c := base
		f(&c)
		if err := c.Validate(12); !errors.Is(err, ErrBadConfig) {
			t.Errorf("mutation %d: want ErrBadConfig, got %v", i, err)
		}
	}
	if err := base.Validate(1); !errors.Is(err, ErrBadConfig) {
		t.Error("n=1 should be invalid")
	}
}

func TestDefaultConfig(t *testing.T) {
	for _, n := range []int{2, 5, 26, 143, 1266} {
		for _, length := range []int{200, 5000, 100000} {
			cfg := DefaultConfig(n, length)
			if err := cfg.Validate(n); err != nil {
				t.Errorf("DefaultConfig(%d, %d) invalid: %v", n, length, err)
			}
		}
	}
}

func TestRCModeString(t *testing.T) {
	if RCCumulative.String() != "cumulative" || RCExponential.String() != "exponential" {
		t.Error("RCMode names wrong")
	}
	if RCMode(9).String() != "RCMode(9)" {
		t.Error("unknown RCMode formatting")
	}
}

func TestDetectInjectedAnomaly(t *testing.T) {
	his := synth(1, 3, 4, 800, nil, -1, -1)
	// Anomaly: sensors 0 and 1 decouple during [400, 520).
	test := synth(2, 3, 4, 800, []int{0, 1}, 400, 520)

	det, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) == 0 {
		t.Fatal("no anomalies detected")
	}
	// At least one anomaly must overlap the injected interval and include
	// an injected sensor.
	found := false
	for _, a := range res.Anomalies {
		overlaps := a.Start < 520 && a.End > 400
		if !overlaps {
			continue
		}
		for _, s := range a.Sensors {
			if s == 0 || s == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no overlapping anomaly naming sensors 0/1; got %+v", res.Anomalies)
	}
	// Detection should be early: the first overlapping anomaly starts within
	// a few windows of the break.
	for _, a := range res.Anomalies {
		if a.Start < 520 && a.End > 400 {
			if a.Start > 400+3*40 {
				t.Errorf("late detection: anomaly starts at %d, break at 400", a.Start)
			}
			break
		}
	}
}

func TestDetectCleanSeries(t *testing.T) {
	his := synth(3, 3, 4, 800, nil, -1, -1)
	test := synth(4, 3, 4, 800, nil, -1, -1)
	det, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	// Clean continuation: few or no flagged points.
	flagged := 0
	for _, b := range res.PointLabels {
		if b {
			flagged++
		}
	}
	if flagged > test.Len()/10 {
		t.Errorf("clean series: %d/%d points flagged", flagged, test.Len())
	}
}

func TestResultShapes(t *testing.T) {
	test := synth(5, 2, 3, 400, nil, -1, -1)
	cfg := testConfig()
	cfg.K = 2
	det, err := NewDetector(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	R := cfg.Window.Rounds(test.Len())
	if len(res.Rounds) != R {
		t.Errorf("rounds = %d, want %d", len(res.Rounds), R)
	}
	if len(res.PointScores) != test.Len() || len(res.PointLabels) != test.Len() {
		t.Errorf("point series lengths %d/%d, want %d", len(res.PointScores), len(res.PointLabels), test.Len())
	}
	for r, rep := range res.Rounds {
		if rep.Round != r {
			t.Errorf("round %d numbered %d", r, rep.Round)
		}
		if rep.Variations < 0 || rep.Variations > 6 {
			t.Errorf("round %d: n_r = %d out of [0, n]", r, rep.Variations)
		}
		if rep.Score < 0 {
			t.Errorf("round %d: negative score", r)
		}
	}
}

func TestRCBounds(t *testing.T) {
	test := synth(6, 3, 4, 600, []int{0}, 300, 400)
	det, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(test); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 12; v++ {
		rc := det.RC(v)
		if rc < 0 || rc > 1 {
			t.Errorf("RC(%d) = %v out of [0,1]", v, rc)
		}
	}
}

func TestDeterminism(t *testing.T) {
	test := synth(7, 3, 4, 600, []int{2, 3}, 250, 350)
	run := func() *Result {
		det, err := NewDetector(12, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := det.Detect(test)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Anomalies) != len(b.Anomalies) {
		t.Fatalf("non-deterministic anomaly count %d vs %d", len(a.Anomalies), len(b.Anomalies))
	}
	for i := range a.Rounds {
		if a.Rounds[i].Variations != b.Rounds[i].Variations || a.Rounds[i].Abnormal != b.Rounds[i].Abnormal {
			t.Fatalf("round %d differs across runs", i)
		}
	}
}

func TestStreamerMatchesBatch(t *testing.T) {
	his := synth(8, 3, 4, 600, nil, -1, -1)
	test := synth(9, 3, 4, 600, []int{4, 5}, 300, 420)
	cfg := testConfig()

	batch, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	batchRes, err := batch.Detect(test)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	sr := NewStreamer(stream)
	reps, err := sr.PushSeries(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(batchRes.Rounds) {
		t.Fatalf("streamer emitted %d rounds, batch %d", len(reps), len(batchRes.Rounds))
	}
	for i := range reps {
		if reps[i].Variations != batchRes.Rounds[i].Variations {
			t.Errorf("round %d: stream n_r=%d batch n_r=%d", i, reps[i].Variations, batchRes.Rounds[i].Variations)
		}
		if reps[i].Abnormal != batchRes.Rounds[i].Abnormal {
			t.Errorf("round %d: stream abnormal=%v batch=%v", i, reps[i].Abnormal, batchRes.Rounds[i].Abnormal)
		}
	}
}

func TestStreamerErrors(t *testing.T) {
	det, err := NewDetector(4, Config{Window: mts.Windowing{W: 10, S: 2}, K: 2, Tau: 0.3, Theta: 0.3, Eta: 3, MinHistory: 4})
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamer(det)
	if _, _, err := sr.Push([]float64{1, 2}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short column: want ErrBadConfig, got %v", err)
	}
	if sr.Detector() != det {
		t.Error("Detector accessor broken")
	}
}

func TestDetectorErrors(t *testing.T) {
	if _, err := NewDetector(12, Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero config: want ErrBadConfig, got %v", err)
	}
	det, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	wrong := mts.Zeros(5, 100)
	if err := det.WarmUp(wrong); !errors.Is(err, ErrBadConfig) {
		t.Errorf("sensor mismatch warm-up: %v", err)
	}
	if _, err := det.Detect(wrong); !errors.Is(err, ErrBadConfig) {
		t.Errorf("sensor mismatch detect: %v", err)
	}
	short := mts.Zeros(12, 5)
	if err := det.WarmUp(short); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short warm-up: %v", err)
	}
	if _, err := det.Detect(short); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short detect: %v", err)
	}
	win := mts.Zeros(12, 7) // wrong window length
	if _, err := det.ProcessWindow(win); !errors.Is(err, ErrBadConfig) {
		t.Errorf("wrong window length: %v", err)
	}
}

func TestFixedXiAblation(t *testing.T) {
	test := synth(10, 3, 4, 600, []int{0, 1, 2}, 300, 400)
	cfg := testConfig()
	cfg.DisableVariationRule = true
	cfg.FixedXi = 2
	det, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Rounds {
		if rep.Abnormal && len(rep.Outliers) < 2 {
			t.Errorf("round %d flagged with %d outliers under ξ=2", rep.Round, len(rep.Outliers))
		}
	}
}

func TestExponentialRCMode(t *testing.T) {
	test := synth(11, 3, 4, 600, []int{0}, 300, 380)
	cfg := testConfig()
	cfg.RCMode = RCExponential
	cfg.RCAlpha = 0.2
	det, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Detect(test); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 12; v++ {
		rc := det.RC(v)
		if rc < 0 || rc > 1 {
			t.Errorf("EWMA RC(%d) = %v out of [0,1]", v, rc)
		}
	}
}

func TestHistoryAccessors(t *testing.T) {
	his := synth(12, 2, 3, 400, nil, -1, -1)
	cfg := testConfig()
	cfg.K = 2
	det, err := NewDetector(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	if det.Rounds() != cfg.Window.Rounds(his.Len()) {
		t.Errorf("Rounds = %d, want %d", det.Rounds(), cfg.Window.Rounds(his.Len()))
	}
	if math.IsNaN(det.HistoryMean()) || math.IsNaN(det.HistoryStdDev()) {
		t.Error("history stats NaN after warm-up")
	}
	if det.Sensors() != 6 {
		t.Errorf("Sensors = %d", det.Sensors())
	}
	if det.Config().K != 2 {
		t.Error("Config accessor broken")
	}
}

func BenchmarkDetectRound50Sensors(b *testing.B) {
	test := synth(13, 5, 10, 2000, nil, -1, -1)
	cfg := Config{Window: mts.Windowing{W: 100, S: 10}, K: 8, Tau: 0.4, Theta: 0.3, Eta: 3, SigmaFloor: 0.5, MinHistory: 8}
	det, err := NewDetector(50, cfg)
	if err != nil {
		b.Fatal(err)
	}
	win, _ := cfg.Window.Window(test, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.ProcessWindow(win); err != nil {
			b.Fatal(err)
		}
	}
}
