package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cad/internal/mts"
)

// nanFixture builds an 8-sensor MTS whose middle column hides one bad
// reading per flavor of non-finite value.
func nanFixture(t *testing.T, bad float64) *mts.MTS {
	t.Helper()
	rows := make([][]float64, 8)
	for i := range rows {
		rows[i] = []float64{float64(i), float64(i) + 1, float64(i) + 2}
	}
	rows[3][1] = bad
	m, err := mts.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasNaN() {
		t.Fatalf("fixture with %v not flagged by HasNaN", bad)
	}
	return m
}

// TestStreamerRejectsNonFinite guards the library boundary: a NaN or ±Inf
// reading must be refused by Push itself — not just by the HTTP layer — so
// WAL replay and direct library users can never poison the correlation
// state.
func TestStreamerRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		fixture := nanFixture(t, bad)
		det, err := NewDetector(8, streamTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		s := NewStreamer(det)
		// Column 0 of the fixture is clean, column 1 carries the bad value.
		if _, _, err := s.Push(fixture.Column(0, nil)); err != nil {
			t.Fatalf("clean column rejected: %v", err)
		}
		_, done, err := s.Push(fixture.Column(1, nil))
		if !errors.Is(err, ErrBadReading) {
			t.Fatalf("Push(%v column) = %v, want ErrBadReading", bad, err)
		}
		if done {
			t.Fatal("rejected column completed a round")
		}
		if got := s.Seq(); got != 1 {
			t.Fatalf("Seq after rejected push = %d, want 1 (rejection must not consume a sequence number)", got)
		}
	}
}

// TestStreamerRejectionKeepsStateIntact interleaves non-finite columns into
// a clean series and checks the reports still match an untouched run.
func TestStreamerRejectionKeepsStateIntact(t *testing.T) {
	const ticks = 120
	rng := rand.New(rand.NewSource(31))
	cols := make([][]float64, ticks)
	for tick := range cols {
		cols[tick] = streamColumn(rng, tick, false)
	}

	det, err := NewDetector(8, streamTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := NewStreamer(det)
	var want []RoundReport
	for _, col := range cols {
		rep, done, err := ref.Push(col)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			want = append(want, rep)
		}
	}

	det2, err := NewDetector(8, streamTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamer(det2)
	poison := []float64{0, 1, 2, math.NaN(), 4, 5, 6, 7}
	var got []RoundReport
	for tick, col := range cols {
		if tick%11 == 5 {
			if _, _, err := s.Push(poison); !errors.Is(err, ErrBadReading) {
				t.Fatalf("tick %d: poison column: %v, want ErrBadReading", tick, err)
			}
		}
		rep, done, err := s.Push(col)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			got = append(got, rep)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rejected columns perturbed the reports:\n got %d rounds\nwant %d rounds", len(got), len(want))
	}
}

// TestStreamerSeqPersists pins the replay cursor to the snapshot format:
// every accepted column advances Seq exactly once and the value survives a
// SaveState/LoadStreamer round trip.
func TestStreamerSeqPersists(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	det, err := NewDetector(8, streamTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamer(det)
	for tick := 0; tick < 47; tick++ {
		if _, _, err := s.Push(streamColumn(rng, tick, false)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Seq(); got != 47 {
		t.Fatalf("Seq = %d after 47 pushes", got)
	}
	var buf bytes.Buffer
	if err := s.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadStreamer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Seq(); got != 47 {
		t.Fatalf("Seq after save/load = %d, want 47", got)
	}
	if _, _, err := restored.Push(streamColumn(rng, 47, false)); err != nil {
		t.Fatal(err)
	}
	if got := restored.Seq(); got != 48 {
		t.Fatalf("Seq after post-restore push = %d, want 48", got)
	}
}
