package core_test

// Scenario-driven decision equivalence: incremental_test.go proves the
// batch ↔ incremental contract on synthetic and random-simulator data; this
// suite re-proves it on every named corpus scenario — real failure shapes
// (restart loops, saturation, staggered cascades, regime tears), not just
// random anomaly mixes. It lives in package core_test because the corpus
// itself imports core.

import (
	"reflect"
	"testing"

	"cad/internal/core"
	"cad/internal/scenario"
)

// replay streams the instance through a fresh detector under cfg and
// returns the per-round reports plus the tracker's assembled anomalies.
func replay(t *testing.T, inst *scenario.Instance, cfg core.Config) ([]core.RoundReport, []core.Anomaly) {
	t.Helper()
	det, err := core.NewDetector(inst.Sensors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sr := core.NewStreamer(det)
	tr := core.NewTracker(cfg)
	reps, err := sr.PushSeries(inst.Series)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		tr.Push(rep)
	}
	tr.Flush()
	return reps, tr.Drain()
}

func TestScenarioBatchIncrementalEquivalence(t *testing.T) {
	base := scenario.BaseConfig()
	inc := base
	inc.Incremental = true
	inc.RefreshEvery = 7 // off the round cadence on purpose

	anyAbnormal := false
	for _, s := range scenario.Corpus() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			inst, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			bReps, bAnoms := replay(t, inst, base)
			iReps, iAnoms := replay(t, inst, inc)

			if len(bReps) != len(iReps) {
				t.Fatalf("batch emitted %d rounds, incremental %d", len(bReps), len(iReps))
			}
			for i := range bReps {
				if iReps[i].Abnormal != bReps[i].Abnormal {
					t.Errorf("round %d: abnormal %v, batch %v", i, iReps[i].Abnormal, bReps[i].Abnormal)
				}
				if !reflect.DeepEqual(iReps[i].Outliers, bReps[i].Outliers) {
					t.Errorf("round %d: outliers %v, batch %v", i, iReps[i].Outliers, bReps[i].Outliers)
				}
				if iReps[i].Variations != bReps[i].Variations {
					t.Errorf("round %d: variations %d, batch %d", i, iReps[i].Variations, bReps[i].Variations)
				}
				if iReps[i].WindowEnd != bReps[i].WindowEnd {
					t.Errorf("round %d: windowEnd %d, batch %d", i, iReps[i].WindowEnd, bReps[i].WindowEnd)
				}
				if bReps[i].Abnormal {
					anyAbnormal = true
				}
			}
			// Identical round decisions must assemble into identical
			// anomaly records.
			if !reflect.DeepEqual(bAnoms, iAnoms) {
				t.Errorf("anomalies differ:\nbatch       %+v\nincremental %+v", bAnoms, iAnoms)
			}
		})
	}
	if !anyAbnormal {
		t.Fatal("suite has no power: no scenario produced an abnormal round")
	}
}

// TestScenarioRefreshCadenceInvariance: the exact-refresh cadence is an
// internal performance knob; decisions must not depend on it.
func TestScenarioRefreshCadenceInvariance(t *testing.T) {
	s, ok := scenario.ByName("cascading-backend-timeout")
	if !ok {
		t.Fatal("cascading-backend-timeout missing from corpus")
	}
	inst, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	var ref []core.RoundReport
	for i, every := range []int{0, 1, 16, 97} {
		cfg := scenario.BaseConfig()
		cfg.Incremental = true
		cfg.RefreshEvery = every
		reps, _ := replay(t, inst, cfg)
		if i == 0 {
			ref = reps
			continue
		}
		if len(reps) != len(ref) {
			t.Fatalf("refreshEvery=%d: %d rounds vs %d", every, len(reps), len(ref))
		}
		for r := range reps {
			if reps[r].Abnormal != ref[r].Abnormal || !reflect.DeepEqual(reps[r].Outliers, ref[r].Outliers) {
				t.Errorf("refreshEvery=%d round %d: decisions diverge", every, r)
			}
		}
	}
}
