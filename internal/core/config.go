// Package core implements CAD, the correlation-analysis-based anomaly
// detector of the paper (§IV): the MTS is windowed into rounds, each round
// becomes a Time-Series Graph, Louvain splits the TSG into communities,
// co-appearance mining scores how consistently each sensor stays with its
// community peers, and the per-round count of outlier transitions n_r is
// tested against a 3σ rule to flag abnormal rounds together with the
// affected sensors.
package core

import (
	"errors"
	"fmt"

	"cad/internal/mts"
	"cad/internal/tsg"
)

// ErrBadConfig reports an invalid detector configuration.
var ErrBadConfig = errors.New("cad: invalid config")

// ErrBadReading reports a non-finite (NaN or ±Inf) sensor reading pushed
// into a streamer.
var ErrBadReading = errors.New("cad: non-finite reading")

// RCMode selects how the ratio of co-appearance number (paper Def. 6) is
// accumulated over rounds.
type RCMode int

const (
	// RCSliding averages S_i(v) over the trailing RCHorizon rounds. This is
	// the default: it keeps Def. 6's "average co-appearance" semantics while
	// staying responsive after arbitrarily long histories (the literal
	// cumulative average moves by at most 1/r per round, which would defeat
	// the paper's early-detection claim once r is large).
	RCSliding RCMode = iota
	// RCCumulative is the paper's literal Def. 6: RC_{v,r} averages S_i(v)
	// over all rounds seen so far.
	RCCumulative
	// RCExponential replaces the average with an exponentially weighted
	// moving average (ablation).
	RCExponential
)

// String returns the mode name.
func (m RCMode) String() string {
	switch m {
	case RCSliding:
		return "sliding"
	case RCCumulative:
		return "cumulative"
	case RCExponential:
		return "exponential"
	default:
		return fmt.Sprintf("RCMode(%d)", int(m))
	}
}

// Config parameterizes a Detector. The fields mirror the paper's symbols.
type Config struct {
	// Window is the sliding window w and step s (§III-B).
	Window mts.Windowing
	// K is the number of nearest (most correlated) neighbors per sensor in
	// the TSG (Table II).
	K int
	// Tau is the correlation threshold τ pruning weak edges (§III-B).
	// Suggested 0.4–0.6.
	Tau float64
	// Theta is the outlier threshold θ on the ratio of co-appearance
	// number (Def. 7). Suggested ≈ 0.3.
	Theta float64
	// Eta is the σ multiplier η in the abnormal-round rule
	// |n_r − μ| ≥ η·σ (§IV-E). The paper fixes η = 3.
	Eta float64
	// SigmaFloor lower-bounds σ in the detection rule to keep it
	// meaningful when the warm-up variance collapses to ~0. Zero
	// reproduces the paper exactly. Deviations of fewer than
	// Eta·SigmaFloor outlier transitions then never alarm.
	SigmaFloor float64
	// MinHistory is the minimum number of n_r samples that must be in the
	// history before rounds may be flagged (warm-up rounds count).
	MinHistory int
	// HistoryHorizon bounds how many trailing n_r samples estimate μ and
	// σ. Zero keeps the paper's unbounded history (§IV-F: more samples →
	// more precise estimates); a bounded horizon instead adapts the
	// threshold when the plant's noise regime drifts over time.
	HistoryHorizon int
	// RCMode selects sliding (default), cumulative (paper-literal), or
	// exponential RC accumulation.
	RCMode RCMode
	// RCHorizon is the trailing number of rounds averaged under RCSliding
	// (ignored otherwise). Zero means the default of 10.
	RCHorizon int
	// RCAlpha is the EWMA factor for RCExponential (ignored otherwise).
	RCAlpha float64
	// ApproxTSG builds each round's TSG with an HNSW index (O(n log n))
	// instead of the exact O(n²·w) correlation matrix. Worthwhile above
	// roughly 500 sensors; the graph loses a few of its weakest edges.
	ApproxTSG bool
	// ApproxSeed drives the HNSW level draws when ApproxTSG is set; with a
	// fixed seed detection remains deterministic.
	ApproxSeed int64
	// Incremental switches the Streamer's round pipeline to the incremental
	// hot path: the correlation matrix is maintained with O(n²) rank-one
	// updates per column instead of the O(n²·w) per-round recompute, the TSG
	// is repaired in place, and Louvain warm-starts from the previous
	// round's partition. Exact mode only (incompatible with ApproxTSG);
	// batch Detect/WarmUp are unaffected. DefaultConfig turns it on — the
	// scenario matrix shows it decision-identical to the batch path — so
	// zero the field explicitly to opt back into the per-round recompute.
	Incremental bool
	// RefreshEvery is the incremental path's exact-refresh cadence: every
	// RefreshEvery rounds the correlation sums are recomputed from the raw
	// window, discarding accumulated floating-point drift. Zero means the
	// default of 64. Ignored unless Incremental is set.
	RefreshEvery int
	// DisableVariationRule switches the abnormal-round criterion from the
	// 3σ rule on n_r to a fixed count |O_r| ≥ FixedXi (ablation of §IV-E's
	// discussion).
	DisableVariationRule bool
	// FixedXi is the fixed abnormal-time threshold ξ used when
	// DisableVariationRule is set.
	FixedXi int
}

// DefaultConfig returns the paper-recommended configuration for an MTS with
// n sensors and the given series length: w ≈ 0.02|T|, s ≈ 0.015w, τ = 0.5,
// θ = 0.3, η = 3, k ≈ max(10, n/10) capped below n. The incremental hot
// path is on by default (it is decision-identical to the batch pipeline on
// the scenario corpus and strictly cheaper per column); callers that want
// the batch recompute — or ApproxTSG, which excludes it — clear
// Incremental explicitly.
func DefaultConfig(n, length int) Config {
	k := n / 10
	if k < 10 {
		k = 10
	}
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		k = 1
	}
	return Config{
		Window:      mts.SuggestWindowing(length),
		K:           k,
		Tau:         0.5,
		Theta:       0.3,
		Eta:         3,
		SigmaFloor:  0.5,
		MinHistory:  8,
		RCMode:      RCSliding,
		RCHorizon:   10,
		RCAlpha:     0.1,
		Incremental: true,
	}
}

// Validate checks cfg for an MTS with n sensors.
func (c Config) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("%w: need at least 2 sensors, got %d", ErrBadConfig, n)
	}
	if err := (tsg.Builder{K: c.K, Tau: c.Tau}).Validate(n); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.Theta < 0 || c.Theta > 1 {
		return fmt.Errorf("%w: θ=%v must be in [0,1]", ErrBadConfig, c.Theta)
	}
	if c.Eta <= 0 {
		return fmt.Errorf("%w: η=%v must be positive", ErrBadConfig, c.Eta)
	}
	if c.SigmaFloor < 0 {
		return fmt.Errorf("%w: SigmaFloor=%v must be ≥ 0", ErrBadConfig, c.SigmaFloor)
	}
	if c.Window.W <= 0 || c.Window.S <= 0 || c.Window.S >= c.Window.W {
		return fmt.Errorf("%w: windowing w=%d s=%d", ErrBadConfig, c.Window.W, c.Window.S)
	}
	if c.RCMode == RCExponential && (c.RCAlpha <= 0 || c.RCAlpha > 1) {
		return fmt.Errorf("%w: RCAlpha=%v must be in (0,1]", ErrBadConfig, c.RCAlpha)
	}
	if c.RCHorizon < 0 {
		return fmt.Errorf("%w: RCHorizon=%d must be ≥ 0", ErrBadConfig, c.RCHorizon)
	}
	if c.HistoryHorizon < 0 {
		return fmt.Errorf("%w: HistoryHorizon=%d must be ≥ 0", ErrBadConfig, c.HistoryHorizon)
	}
	if c.HistoryHorizon > 0 && c.HistoryHorizon < c.MinHistory {
		return fmt.Errorf("%w: HistoryHorizon=%d below MinHistory=%d", ErrBadConfig, c.HistoryHorizon, c.MinHistory)
	}
	if c.DisableVariationRule && c.FixedXi < 1 {
		return fmt.Errorf("%w: FixedXi=%d must be ≥ 1", ErrBadConfig, c.FixedXi)
	}
	if c.Incremental && c.ApproxTSG {
		return fmt.Errorf("%w: Incremental and ApproxTSG are mutually exclusive", ErrBadConfig)
	}
	if c.RefreshEvery < 0 {
		return fmt.Errorf("%w: RefreshEvery=%d must be ≥ 0", ErrBadConfig, c.RefreshEvery)
	}
	return nil
}
