package core

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"cad/internal/mts"
	"cad/internal/simulator"
	"cad/internal/stats"
)

func incConfig(refreshEvery int) Config {
	cfg := testConfig()
	cfg.Incremental = true
	cfg.RefreshEvery = refreshEvery
	return cfg
}

// pushAll drives every column of series through sr and returns the reports.
func pushAll(t *testing.T, sr *Streamer, series *mts.MTS) []RoundReport {
	t.Helper()
	reps, err := sr.PushSeries(series)
	if err != nil {
		t.Fatal(err)
	}
	return reps
}

// TestIncrementalMatchesBatchDecisions is the headline equivalence test: on
// a series with a planted correlation break, the incremental streamer must
// flag exactly the same abnormal rounds with exactly the same outlier sets
// as batch Detect.
func TestIncrementalMatchesBatchDecisions(t *testing.T) {
	series := synth(13, 3, 4, 500, []int{1, 6}, 200, 320)

	batch, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	batchRes, err := batch.Detect(series)
	if err != nil {
		t.Fatal(err)
	}

	det, err := NewDetector(12, incConfig(7)) // refresh often, off-cadence
	if err != nil {
		t.Fatal(err)
	}
	reps := pushAll(t, NewStreamer(det), series)

	if len(reps) != len(batchRes.Rounds) {
		t.Fatalf("incremental emitted %d rounds, batch %d", len(reps), len(batchRes.Rounds))
	}
	abnormal := 0
	for i := range reps {
		b := batchRes.Rounds[i]
		if reps[i].Abnormal != b.Abnormal {
			t.Errorf("round %d: abnormal %v, batch %v", i, reps[i].Abnormal, b.Abnormal)
		}
		if !reflect.DeepEqual(reps[i].Outliers, b.Outliers) {
			t.Errorf("round %d: outliers %v, batch %v", i, reps[i].Outliers, b.Outliers)
		}
		if reps[i].Variations != b.Variations {
			t.Errorf("round %d: variations %d, batch %d", i, reps[i].Variations, b.Variations)
		}
		if reps[i].WindowEnd != b.WindowEnd {
			t.Errorf("round %d: windowEnd %d, batch %d", i, reps[i].WindowEnd, b.WindowEnd)
		}
		if b.Abnormal {
			abnormal++
		}
	}
	if abnormal == 0 {
		t.Fatal("test has no power: batch flagged no abnormal rounds")
	}
}

// TestIncrementalMatchesBatchOnSimulator repeats the decision-equivalence
// check on richer simulator data — several anomaly kinds, cross-coupled
// communities — across a few seeds.
func TestIncrementalMatchesBatchOnSimulator(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		gen, err := simulator.New(simulator.Config{
			Seed: seed, Sensors: 36, Communities: 6, Length: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		series, _, _, err := gen.WithAnomalies(simulator.AnomalySpec{Count: 3})
		if err != nil {
			t.Fatal(err)
		}

		cfg := testConfig()
		cfg.K = 5
		icfg := cfg
		icfg.Incremental = true
		icfg.RefreshEvery = 16

		bd, err := NewDetector(36, cfg)
		if err != nil {
			t.Fatal(err)
		}
		id, err := NewDetector(36, icfg)
		if err != nil {
			t.Fatal(err)
		}
		bReps := pushAll(t, NewStreamer(bd), series)
		iReps := pushAll(t, NewStreamer(id), series)
		if len(bReps) != len(iReps) {
			t.Fatalf("seed %d: %d vs %d rounds", seed, len(bReps), len(iReps))
		}
		for i := range bReps {
			if iReps[i].Abnormal != bReps[i].Abnormal {
				t.Errorf("seed %d round %d: abnormal %v, batch %v", seed, i, iReps[i].Abnormal, bReps[i].Abnormal)
			}
			if !reflect.DeepEqual(iReps[i].Outliers, bReps[i].Outliers) {
				t.Errorf("seed %d round %d: outliers %v, batch %v", seed, i, iReps[i].Outliers, bReps[i].Outliers)
			}
		}
	}
}

// TestIncrementalCorrelationAccuracy pins the tentpole's numeric contract:
// between exact refreshes the maintained correlations stay within 1e-9 of
// the two-pass PearsonMatrix values on the same window.
func TestIncrementalCorrelationAccuracy(t *testing.T) {
	series := synth(21, 3, 4, 600, nil, -1, -1)
	det, err := NewDetector(12, incConfig(64)) // long stretches without refresh
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamer(det)
	real := sr.processCorr
	checked := 0
	sr.processCorr = func(corr [][]float64, dirty []bool) (RoundReport, error) {
		want, err := stats.PearsonMatrix(sr.window().Rows())
		if err != nil {
			t.Fatal(err)
		}
		for i := range corr {
			for j := range corr[i] {
				if d := math.Abs(corr[i][j] - want[i][j]); d > 1e-9 {
					t.Fatalf("corr[%d][%d] drifted %g from exact", i, j, d)
				}
			}
		}
		checked++
		return real(corr, dirty)
	}
	pushAll(t, sr, series)
	if checked < 100 {
		t.Fatalf("only %d rounds checked", checked)
	}
}

// TestIncrementalSaveLoadBitIdentical snapshots the incremental streamer
// mid-window and requires the restored copy to emit bit-identical reports —
// including across an exact-refresh boundary, which must fire at the same
// rounds whether or not a restore happened in between.
func TestIncrementalSaveLoadBitIdentical(t *testing.T) {
	series := synth(31, 3, 4, 520, []int{2, 9}, 250, 360)
	mk := func() *Streamer {
		det, err := NewDetector(12, incConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		return NewStreamer(det)
	}
	// cut mid-window, not on the round cadence.
	const cut = 173
	orig := mk()
	col := make([]float64, 12)
	for p := 0; p < cut; p++ {
		series.Column(p, col)
		if _, _, err := orig.Push(col); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadStreamer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []RoundReport
	for p := cut; p < series.Len(); p++ {
		series.Column(p, col)
		ra, oka, err := orig.Push(col)
		if err != nil {
			t.Fatal(err)
		}
		rb, okb, err := restored.Push(col)
		if err != nil {
			t.Fatal(err)
		}
		if oka != okb {
			t.Fatalf("tick %d: completion %v vs %v", p, oka, okb)
		}
		if oka {
			a = append(a, ra)
			b = append(b, rb)
		}
	}
	if len(a) == 0 {
		t.Fatal("no rounds completed after the cut")
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("round %d differs:\nlive     %+v\nrestored %+v", i, a[i], b[i])
		}
	}
}

// TestIncrementalSaveLoadRejectsAccMismatch: a snapshot taken in batch mode
// cannot silently restore into an incremental config or vice versa — the
// accumulator presence must match the config.
func TestIncrementalSaveLoadRejectsAccMismatch(t *testing.T) {
	det, err := NewDetector(12, incConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamer(det)
	var buf bytes.Buffer
	if err := sr.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt: flip HasAcc by rewriting through the persisted struct is not
	// practical with gob; instead verify the happy path round-trips and the
	// accumulator state actually travels.
	restored, err := LoadStreamer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.acc == nil {
		t.Fatal("restored incremental streamer has no accumulator")
	}
}

// TestIncrementalFailedRoundRetry mirrors the batch-path retry test on the
// incremental path: a transient ProcessCorr failure must not advance the
// detector, and the retried round's WindowEnd must reflect the extra column
// the window slid past.
func TestIncrementalFailedRoundRetry(t *testing.T) {
	series := synth(41, 3, 4, 120, nil, -1, -1)
	det, err := NewDetector(12, incConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamer(det)
	errBoom := errors.New("boom")
	calls := 0
	real := sr.processCorr
	sr.processCorr = func(corr [][]float64, dirty []bool) (RoundReport, error) {
		calls++
		if calls == 3 { // fail the third round attempt (tick 48) once
			return RoundReport{}, errBoom
		}
		return real(corr, dirty)
	}
	var completed []int
	var ends []int
	col := make([]float64, 12)
	for p := 0; p < 80; p++ {
		series.Column(p, col)
		rep, ok, err := sr.Push(col)
		if err != nil {
			if !errors.Is(err, errBoom) {
				t.Fatalf("tick %d: %v", p+1, err)
			}
			continue
		}
		if ok {
			completed = append(completed, p+1)
			ends = append(ends, rep.WindowEnd)
		}
	}
	want := []int{40, 44, 49, 53, 57, 61, 65, 69, 73, 77}
	if !reflect.DeepEqual(completed, want) {
		t.Fatalf("completed ticks = %v, want %v", completed, want)
	}
	// WindowEnd equals the tick the round actually completed at — it slides
	// with the retry instead of sticking to the nominal cadence.
	if !reflect.DeepEqual(ends, want) {
		t.Fatalf("window ends = %v, want %v", ends, want)
	}
	if det.Rounds() != len(completed) {
		t.Fatalf("detector advanced %d rounds, %d completed", det.Rounds(), len(completed))
	}
}
