package core

import (
	"fmt"
	"runtime"
	"sync"

	"cad/internal/louvain"
	"cad/internal/mts"
)

// DetectParallel is Detect with the stateless per-round work (TSG
// construction + Louvain) fanned out across a worker pool. The stateful
// co-appearance chain still runs in round order, so the result is
// bit-identical to Detect — this is the paper's §IV-F observation that
// detection can run concurrently with collection, applied across rounds.
// workers ≤ 0 uses GOMAXPROCS.
func (d *Detector) DetectParallel(t *mts.MTS, workers int) (*Result, error) {
	if t.Sensors() != d.n {
		return nil, fmt.Errorf("%w: series has %d sensors, detector expects %d", ErrBadConfig, t.Sensors(), d.n)
	}
	wd := d.cfg.Window
	R := wd.Rounds(t.Len())
	if R == 0 {
		return nil, fmt.Errorf("%w: series length %d too short for window w=%d", ErrBadConfig, t.Len(), wd.W)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > R {
		workers = R
	}

	parts := make([]louvain.Partition, R)
	times := make([]StageTimings, R)
	errs := make([]error, R)
	var wg sync.WaitGroup
	next := make(chan int, R)
	for r := 0; r < R; r++ {
		next <- r
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				win, err := wd.Window(t, r)
				if err != nil {
					errs[r] = err
					continue
				}
				parts[r], times[r], errs[r] = d.partition(win)
			}
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cad: round %d: %w", r, err)
		}
	}

	// Sequential stateful pass, identical to Detect's loop.
	return d.assemble(t, R, func(r int) (RoundReport, error) {
		return d.observedAdvance(parts[r], times[r]), nil
	})
}
