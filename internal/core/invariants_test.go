package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cad/internal/mts"
)

// TestResultInvariants drives the detector over random series and checks
// every structural invariant of Result.
func TestResultInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := 2 + rng.Intn(2)
		per := 3 + rng.Intn(3)
		n := groups * per
		length := 300 + rng.Intn(400)
		var breakSensors []int
		breakFrom, breakTo := -1, -1
		if rng.Float64() < 0.7 {
			breakFrom = length/3 + rng.Intn(length/4)
			breakTo = breakFrom + 40 + rng.Intn(80)
			for s := 0; s < 1+rng.Intn(3) && s < n; s++ {
				breakSensors = append(breakSensors, s)
			}
		}
		test := synth(seed, groups, per, length, breakSensors, breakFrom, breakTo)
		cfg := Config{
			Window:     mts.Windowing{W: 30 + rng.Intn(20), S: 2 + rng.Intn(4)},
			K:          2 + rng.Intn(per),
			Tau:        0.3 + rng.Float64()*0.3,
			Theta:      0.1 + rng.Float64()*0.15,
			Eta:        3,
			SigmaFloor: 0.5,
			MinHistory: 8,
			RCMode:     RCSliding,
			RCHorizon:  4 + rng.Intn(8),
		}
		if cfg.K >= n {
			cfg.K = n - 1
		}
		det, err := NewDetector(n, cfg)
		if err != nil {
			return false
		}
		res, err := det.Detect(test)
		if err != nil {
			return false
		}
		R := cfg.Window.Rounds(length)
		if len(res.Rounds) != R || len(res.PointScores) != length || len(res.PointLabels) != length {
			return false
		}
		for r, rep := range res.Rounds {
			if rep.Round != r || rep.Variations < 0 || rep.Variations > n {
				return false
			}
			if rep.Score < 0 || math.IsNaN(rep.Score) {
				return false
			}
			if rep.Communities < 0 || rep.Communities > n {
				return false
			}
			for _, v := range rep.Outliers {
				if v < 0 || v >= n {
					return false
				}
			}
		}
		prevEnd := -1
		for _, a := range res.Anomalies {
			if a.Start < 0 || a.End > length || a.Start >= a.End {
				return false
			}
			if a.FirstRound > a.LastRound || a.LastRound >= R {
				return false
			}
			if a.Start < prevEnd {
				return false // anomalies must be chronological
			}
			prevEnd = a.Start
			for i, s := range a.Sensors {
				if s < 0 || s >= n {
					return false
				}
				if i > 0 && a.Sensors[i-1] >= s {
					return false // sorted, unique
				}
			}
		}
		for _, sc := range res.PointScores {
			if sc < 0 || math.IsNaN(sc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
