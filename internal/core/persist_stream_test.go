package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cad/internal/mts"
)

func streamTestConfig() Config {
	return Config{
		Window: mts.Windowing{W: 30, S: 3}, K: 3, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8, RCMode: RCSliding, RCHorizon: 5,
	}
}

// streamColumn synthesizes one 8-sensor reading; sensors 0,1 decouple when
// broken.
func streamColumn(rng *rand.Rand, tick int, broken bool) []float64 {
	col := make([]float64, 8)
	a := math.Sin(2 * math.Pi * float64(tick) / 20)
	b := math.Cos(2 * math.Pi * float64(tick) / 33)
	for i := range col {
		latent := a
		if i >= 4 {
			latent = b
		}
		col[i] = latent*(1+0.2*float64(i%4)) + 0.04*rng.NormFloat64()
	}
	if broken {
		col[0] = rng.NormFloat64()
		col[1] = rng.NormFloat64()
	}
	return col
}

// TestStreamerSaveLoadMidWindow interrupts a streamer between rounds — at a
// tick that is NOT a round boundary, so the partial window matters — and
// checks the restored streamer continues with bit-identical reports.
func TestStreamerSaveLoadMidWindow(t *testing.T) {
	const ticks = 300
	rng := rand.New(rand.NewSource(9))
	cols := make([][]float64, ticks)
	for tick := range cols {
		cols[tick] = streamColumn(rng, tick, tick >= 150 && tick < 220)
	}

	det, err := NewDetector(8, streamTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := NewStreamer(det)
	var want []RoundReport
	for _, col := range cols {
		rep, done, err := ref.Push(col)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			want = append(want, rep)
		}
	}

	// Interrupted run: save/load at ticks chosen to land mid-window
	// (w=30, s=3 → rounds complete every 3 ticks after tick 30).
	det2, err := NewDetector(8, streamTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStreamer(det2)
	var got []RoundReport
	for tick, col := range cols {
		if tick == 17 || tick == 101 || tick == 200 {
			var buf bytes.Buffer
			if err := s.SaveState(&buf); err != nil {
				t.Fatal(err)
			}
			s, err = LoadStreamer(&buf)
			if err != nil {
				t.Fatal(err)
			}
		}
		rep, done, err := s.Push(col)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			got = append(got, rep)
		}
	}

	if len(got) != len(want) {
		t.Fatalf("interrupted run: %d rounds, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("round %d differs after save/load:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestLoadStreamerRejectsGarbage(t *testing.T) {
	if _, err := LoadStreamer(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadStreamer(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// TestTrackerSaveLoadOpenAnomaly interrupts a tracker while an anomaly is
// open and checks the restored tracker closes it exactly as the
// uninterrupted one does — same span, same root-cause order.
func TestTrackerSaveLoadOpenAnomaly(t *testing.T) {
	cfg := streamTestConfig()
	reports := []RoundReport{
		{Round: 10, Abnormal: false},
		{Round: 11, Abnormal: true, Outliers: []int{2}},
		{Round: 12, Abnormal: true, Outliers: []int{2, 5}},
		{Round: 13, Abnormal: false},
		{Round: 14, Abnormal: false},
		{Round: 15, Abnormal: true, Outliers: []int{1}},
		{Round: 16, Abnormal: false},
		{Round: 17, Abnormal: false},
	}

	ref := NewTracker(cfg)
	var want []Anomaly
	for _, rep := range reports {
		ref.Push(rep)
		want = append(want, ref.Drain()...)
	}

	tr := NewTracker(cfg)
	var got []Anomaly
	for i, rep := range reports {
		// Interrupt with an anomaly open (after round 12) and with one
		// closed-but-undrained (we deliberately do not Drain before saving
		// at i == 4).
		if i == 3 || i == 5 {
			var buf bytes.Buffer
			if err := tr.SaveState(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := LoadTracker(&buf)
			if err != nil {
				t.Fatal(err)
			}
			tr = restored
		}
		tr.Push(rep)
		got = append(got, tr.Drain()...)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("tracker save/load changed anomalies:\n got %+v\nwant %+v", got, want)
	}
	if len(want) == 0 {
		t.Fatal("test produced no anomalies — reports need adjusting")
	}
}

func TestLoadTrackerRejectsGarbage(t *testing.T) {
	if _, err := LoadTracker(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
}
