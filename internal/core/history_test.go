package core

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestHistoryUnbounded(t *testing.T) {
	h := newHistory(0)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistoryBounded(t *testing.T) {
	h := newHistory(4)
	for i := 1; i <= 10; i++ {
		h.Add(float64(i))
	}
	// Only the last 4 values (7,8,9,10) remain.
	if h.N() != 4 {
		t.Errorf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-8.5) > 1e-9 {
		t.Errorf("bounded mean = %v, want 8.5", h.Mean())
	}
	// Partially filled.
	h2 := newHistory(8)
	h2.Add(2)
	h2.Add(4)
	if h2.N() != 2 || h2.Mean() != 3 {
		t.Errorf("partial: N=%d mean=%v", h2.N(), h2.Mean())
	}
}

func TestHistoryHorizonConfig(t *testing.T) {
	cfg := testConfig()
	cfg.HistoryHorizon = -1
	if err := cfg.Validate(12); !errors.Is(err, ErrBadConfig) {
		t.Error("negative horizon should be invalid")
	}
	cfg = testConfig()
	cfg.HistoryHorizon = cfg.MinHistory - 1
	if err := cfg.Validate(12); !errors.Is(err, ErrBadConfig) {
		t.Error("horizon below MinHistory should be invalid")
	}
}

// TestHistoryHorizonAdaptsToRegimeChange: after a permanent noise-regime
// shift, the bounded-history detector recalibrates and stops alarming,
// while the unbounded one keeps a stale μ/σ blend.
func TestHistoryHorizonAdaptsToRegimeChange(t *testing.T) {
	his := synth(71, 3, 4, 600, nil, -1, -1)
	// A long fault on sensors 0..3 makes the "regime" noisier forever
	// after t=300 (fault never ends within the series).
	test := synth(72, 3, 4, 1500, []int{0, 1, 2, 3}, 300, 1500)

	run := func(horizon int) int {
		cfg := testConfig()
		cfg.HistoryHorizon = horizon
		det, err := NewDetector(12, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := det.WarmUp(his); err != nil {
			t.Fatal(err)
		}
		res, err := det.Detect(test)
		if err != nil {
			t.Fatal(err)
		}
		// Count alarms in the late tail, long after the regime settled.
		late := 0
		for _, rep := range res.Rounds {
			if rep.Abnormal && rep.Round > len(res.Rounds)*3/4 {
				late++
			}
		}
		return late
	}
	bounded := run(40)
	unbounded := run(0)
	// The bounded-history detector should be at least as quiet late on.
	if bounded > unbounded {
		t.Errorf("bounded history alarms more in steady state: %d vs %d", bounded, unbounded)
	}
}

func TestHistoryHorizonPersistence(t *testing.T) {
	his := synth(73, 3, 4, 600, nil, -1, -1)
	cfg := testConfig()
	cfg.HistoryHorizon = 32
	det, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.HistoryMean() != det.HistoryMean() || loaded.HistoryStdDev() != det.HistoryStdDev() {
		t.Error("bounded history not restored")
	}
}
