package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"cad/internal/louvain"
)

// persistedState is the gob wire format of a Detector. Fields are exported
// for encoding only; the format is versioned so a stale snapshot fails
// loudly instead of resuming with garbage.
type persistedState struct {
	Version    int
	N          int
	Config     Config
	Round      int
	HavePrev   bool
	PrevOf     []int
	PrevCnt    int
	SumS       []float64
	Ring       [][]float64
	RingPos    int
	RCRounds   int
	Outlier    []bool
	HistN      int
	HistMean   float64
	HistM2     float64
	HistRing   []float64
	HistPos    int
	HistFilled int
}

const persistVersion = 1

// SaveState serializes the detector's full streaming state — configuration,
// co-appearance history, outlier set, and the n_r statistics — so a process
// restart can resume detection without repeating the warm-up.
func (d *Detector) SaveState(w io.Writer) error {
	st := persistedState{
		Version:  persistVersion,
		N:        d.n,
		Config:   d.cfg,
		Round:    d.round,
		HavePrev: d.havePrev,
		SumS:     d.sumS,
		Ring:     d.ring,
		RingPos:  d.ringPos,
		RCRounds: d.rcRounds,
		Outlier:  d.outlier,
	}
	if d.havePrev {
		st.PrevOf = d.prevPart.Of
		st.PrevCnt = d.prevPart.Count
	}
	st.HistN, st.HistMean, st.HistM2 = d.hist.run.State()
	st.HistRing = d.hist.ring
	st.HistPos = d.hist.pos
	st.HistFilled = d.hist.filled
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("cad: save state: %w", err)
	}
	return nil
}

// LoadDetector reconstructs a detector from a SaveState snapshot. The
// returned detector continues exactly where the saved one stopped.
func LoadDetector(r io.Reader) (*Detector, error) {
	var st persistedState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("cad: load state: %w", err)
	}
	if st.Version != persistVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d", ErrBadConfig, st.Version, persistVersion)
	}
	d, err := NewDetector(st.N, st.Config)
	if err != nil {
		return nil, fmt.Errorf("cad: load state: %w", err)
	}
	if len(st.SumS) != st.N || len(st.Outlier) != st.N {
		return nil, fmt.Errorf("%w: snapshot arrays sized for %d sensors, header says %d", ErrBadConfig, len(st.SumS), st.N)
	}
	d.round = st.Round
	d.havePrev = st.HavePrev
	if st.HavePrev {
		if len(st.PrevOf) != st.N {
			return nil, fmt.Errorf("%w: snapshot partition sized %d, want %d", ErrBadConfig, len(st.PrevOf), st.N)
		}
		d.prevPart = louvain.Partition{Of: st.PrevOf, Count: st.PrevCnt}
	}
	copy(d.sumS, st.SumS)
	if d.ring != nil {
		if len(st.Ring) != st.N {
			return nil, fmt.Errorf("%w: snapshot ring sized %d, want %d", ErrBadConfig, len(st.Ring), st.N)
		}
		for v := range d.ring {
			if len(st.Ring[v]) != len(d.ring[v]) {
				return nil, fmt.Errorf("%w: snapshot ring horizon %d, want %d", ErrBadConfig, len(st.Ring[v]), len(d.ring[v]))
			}
			copy(d.ring[v], st.Ring[v])
		}
		d.ringPos = st.RingPos
	}
	d.rcRounds = st.RCRounds
	copy(d.outlier, st.Outlier)
	d.hist.run.SetState(st.HistN, st.HistMean, st.HistM2)
	if d.hist.ring != nil {
		if len(st.HistRing) != len(d.hist.ring) {
			return nil, fmt.Errorf("%w: snapshot history horizon %d, want %d", ErrBadConfig, len(st.HistRing), len(d.hist.ring))
		}
		copy(d.hist.ring, st.HistRing)
		d.hist.pos = st.HistPos
		d.hist.filled = st.HistFilled
	}
	return d, nil
}
