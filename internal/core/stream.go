package core

import (
	"fmt"

	"cad/internal/mts"
)

// Streamer feeds a Detector one time point at a time, emitting a RoundReport
// whenever a full step of new columns has arrived (§IV-F "Generalization":
// when a new round of data arrives, repeat Lines 6–11 of Algorithm 2). It
// maintains the trailing window internally, so callers only push columns.
//
// A Streamer is not safe for concurrent use.
type Streamer struct {
	det *Detector
	buf *mts.MTS // trailing window buffer, at most w columns
	// pending counts columns received since the last emitted round (or
	// since start, for the first round).
	pending int
	started bool
}

// NewStreamer wraps det for streaming ingestion. The detector may already be
// warmed up.
func NewStreamer(det *Detector) *Streamer {
	return &Streamer{det: det, buf: mts.Zeros(det.Sensors(), 0)}
}

// Detector returns the wrapped detector.
func (s *Streamer) Detector() *Detector { return s.det }

// Push appends one column of sensor readings. When enough data has
// accumulated to complete a round (w columns for the first round, s more for
// each later one) the round is processed and its report returned with
// ok=true; otherwise ok=false.
func (s *Streamer) Push(col []float64) (rep RoundReport, ok bool, err error) {
	if len(col) != s.det.Sensors() {
		return RoundReport{}, false, fmt.Errorf("%w: column has %d readings, want %d", ErrBadConfig, len(col), s.det.Sensors())
	}
	if err := s.buf.AppendColumn(col); err != nil {
		return RoundReport{}, false, err
	}
	w, step := s.det.cfg.Window.W, s.det.cfg.Window.S
	// Trim the buffer to the window length.
	if s.buf.Len() > w {
		trimmed, err := s.buf.Slice(s.buf.Len()-w, s.buf.Len())
		if err != nil {
			return RoundReport{}, false, err
		}
		s.buf = trimmed.Clone()
	}
	s.pending++
	need := w
	if s.started {
		need = step
	}
	if s.buf.Len() < w || s.pending < need {
		return RoundReport{}, false, nil
	}
	s.pending = 0
	s.started = true
	rep, err = s.det.ProcessWindow(s.buf)
	if err != nil {
		return RoundReport{}, false, err
	}
	return rep, true, nil
}

// PushSeries pushes every column of t in order and returns the reports of
// all rounds completed along the way.
func (s *Streamer) PushSeries(t *mts.MTS) ([]RoundReport, error) {
	var reps []RoundReport
	col := make([]float64, t.Sensors())
	for p := 0; p < t.Len(); p++ {
		t.Column(p, col)
		rep, ok, err := s.Push(col)
		if err != nil {
			return reps, err
		}
		if ok {
			reps = append(reps, rep)
		}
	}
	return reps, nil
}
