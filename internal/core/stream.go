package core

import (
	"fmt"
	"math"

	"cad/internal/mts"
	"cad/internal/stats"
)

// Streamer feeds a Detector one time point at a time, emitting a RoundReport
// whenever a full step of new columns has arrived (§IV-F "Generalization":
// when a new round of data arrives, repeat Lines 6–11 of Algorithm 2). It
// maintains the trailing window internally in a ring buffer, so callers only
// push columns and each push costs O(n); the window is materialized once per
// completed round, not per column.
//
// A Streamer is not safe for concurrent use.
type Streamer struct {
	det *Detector
	// ring holds the trailing w columns: ring[i][p] is sensor i's reading
	// at ring slot p. pos is the next write slot, which is also the oldest
	// column once the ring has filled.
	ring   [][]float64
	pos    int
	filled int
	// win is the scratch window the ring is unrolled into for each round.
	// It is reused across rounds; ProcessWindow does not retain it.
	win *mts.MTS
	// pending counts columns received since the last *successful* round (or
	// since start, for the first round).
	pending int
	started bool
	// seq counts every column ever accepted, including those of rounds
	// that later failed to process. It is persisted with the streamer and
	// is the replay cursor of the manager's write-ahead log: a WAL record
	// numbered at or below seq is already reflected in this state.
	seq uint64
	// base offsets seq into the detector's round-numbering coordinates for
	// WindowEnd stamping: a detector warmed up on R rounds starts the
	// stream R·S columns "into" its own timeline.
	base int
	// acc maintains the sliding correlation sums on the incremental path
	// (Config.Incremental); nil in batch mode. oldCol is scratch holding
	// the column evicted from the ring by the current Push.
	acc          *stats.SlidingCorr
	oldCol       []float64
	refreshEvery int
	// process runs one round; tests replace it to inject round failures.
	process func(*mts.MTS) (RoundReport, error)
	// processCorr is process's incremental-path counterpart.
	processCorr func(corr [][]float64, dirty []bool) (RoundReport, error)
}

// NewStreamer wraps det for streaming ingestion. The detector may already be
// warmed up.
func NewStreamer(det *Detector) *Streamer {
	n, w := det.Sensors(), det.cfg.Window.W
	ring := make([][]float64, n)
	backing := make([]float64, n*w)
	for i := range ring {
		ring[i] = backing[i*w : (i+1)*w]
	}
	s := &Streamer{
		det:     det,
		ring:    ring,
		win:     mts.Zeros(n, w),
		base:    det.round * det.cfg.Window.S,
		process: det.ProcessWindow,
	}
	if det.cfg.Incremental {
		s.acc = stats.NewSlidingCorr(n, w)
		s.oldCol = make([]float64, n)
		s.refreshEvery = det.cfg.RefreshEvery
		if s.refreshEvery <= 0 {
			s.refreshEvery = 64
		}
		s.processCorr = det.ProcessCorr
	}
	return s
}

// Detector returns the wrapped detector.
func (s *Streamer) Detector() *Detector { return s.det }

// Seq returns the number of columns accepted so far, counting across
// SaveState/LoadStreamer cycles. It increases by exactly one per accepted
// Push, making it a stable replay cursor for write-ahead logging.
func (s *Streamer) Seq() uint64 { return s.seq }

// Push appends one column of sensor readings. When enough data has
// accumulated to complete a round (w columns for the first round, s more for
// each later one) the round is processed and its report returned with
// ok=true; otherwise ok=false.
//
// If processing the round fails, the pushed column is kept but the round is
// NOT considered complete: the detector state did not advance, and the next
// Push retries with the window slid one column forward. The streamer
// therefore recovers from transient round errors without silently dropping
// rounds or shortening the next round's cadence.
func (s *Streamer) Push(col []float64) (rep RoundReport, ok bool, err error) {
	if len(col) != s.det.Sensors() {
		return RoundReport{}, false, fmt.Errorf("%w: column has %d readings, want %d", ErrBadConfig, len(col), s.det.Sensors())
	}
	// Reject non-finite readings before anything mutates: one NaN in the
	// ring would silently poison the Pearson correlations of every round
	// whose window covers it. HTTP ingest validates earlier, but direct
	// library users and WAL replay land here first.
	for i, v := range col {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return RoundReport{}, false, fmt.Errorf("%w: sensor %d", ErrBadReading, i)
		}
	}
	w, step := s.det.cfg.Window.W, s.det.cfg.Window.S
	wasFull := s.filled == w
	if s.acc != nil && wasFull {
		// Capture the evicted column before it is overwritten; the
		// accumulator needs it to subtract the leaving contribution.
		for i := range s.oldCol {
			s.oldCol[i] = s.ring[i][s.pos]
		}
	}
	for i, v := range col {
		s.ring[i][s.pos] = v
	}
	s.pos = (s.pos + 1) % w
	if s.filled < w {
		s.filled++
	}
	s.pending++
	s.seq++
	if s.acc != nil {
		if wasFull {
			s.acc.Slide(col, s.oldCol)
		} else {
			s.acc.Push(col)
		}
	}
	need := w
	if s.started {
		need = step
	}
	if s.filled < w || s.pending < need {
		return RoundReport{}, false, nil
	}
	if s.acc != nil {
		// Periodic exact refresh bounds the accumulator's floating-point
		// drift. The cadence keys off the persisted round counter, so a
		// restored streamer refreshes at exactly the same rounds a
		// never-interrupted one would — required for bit-identical replay.
		if s.det.round%s.refreshEvery == 0 {
			s.acc.Refresh(s.window().Rows())
		}
		rep, err = s.processCorr(s.acc.Corr(), nil)
	} else {
		rep, err = s.process(s.window())
	}
	if err != nil {
		// Leave pending/started untouched so the round is retried on the
		// next push instead of being silently dropped.
		return RoundReport{}, false, err
	}
	s.pending = 0
	s.started = true
	// Stamp the actual window end: the number of columns truly consumed.
	// After failed-round retries this runs ahead of the nominal cadence
	// Bounds(round).to, keeping downstream time attribution honest.
	rep.WindowEnd = s.base + int(s.seq)
	return rep, true, nil
}

// window unrolls the ring into s.win in chronological order and returns it.
// Only valid once the ring is full, when pos is the oldest slot.
func (s *Streamer) window() *mts.MTS {
	w := s.det.cfg.Window.W
	for i, r := range s.ring {
		dst := s.win.Row(i)
		copy(dst, r[s.pos:])
		copy(dst[w-s.pos:], r[:s.pos])
	}
	return s.win
}

// PushSeries pushes every column of t in order and returns the reports of
// all rounds completed along the way.
func (s *Streamer) PushSeries(t *mts.MTS) ([]RoundReport, error) {
	var reps []RoundReport
	col := make([]float64, t.Sensors())
	for p := 0; p < t.Len(); p++ {
		t.Column(p, col)
		rep, ok, err := s.Push(col)
		if err != nil {
			return reps, err
		}
		if ok {
			reps = append(reps, rep)
		}
	}
	return reps, nil
}
