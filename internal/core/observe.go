package core

import "time"

// StageTimings breaks one detection round into its pipeline stages, so an
// operator can see where a round's budget goes: correlation-graph
// construction dominates on wide sensor arrays, Louvain on dense ones, and
// the co-appearance advance is the cheap stateful tail.
type StageTimings struct {
	// TSGBuild is the time spent building the round's Time-Series Graph
	// (exact correlation matrix or HNSW-approximate).
	TSGBuild time.Duration
	// Louvain is the community-detection time.
	Louvain time.Duration
	// Advance covers co-appearance mining, outlier-set maintenance, and the
	// abnormal-round rule.
	Advance time.Duration
}

// RoundObserver receives telemetry after every processed round, warm-up
// included. ObserveRound is called synchronously on the detection path
// (one call per round, from the goroutine advancing the detector state), so
// implementations must be fast; they should also be safe for concurrent use
// when shared between detectors. rep.Round is the detector's global round
// counter. mu and sigma are the n_r history statistics after the round was
// appended.
type RoundObserver interface {
	ObserveRound(rep RoundReport, t StageTimings, mu, sigma float64)
}

// SetObserver attaches o to the detector (nil detaches). Set it before
// WarmUp/Detect/ProcessWindow; changing it concurrently with detection is a
// race.
func (d *Detector) SetObserver(o RoundObserver) { d.obs = o }
