package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cad/internal/mts"
)

// TestStreamerPushRecoversFromFailedRound is the regression test for the
// streaming-state corruption bug: Push used to commit pending=0/started=true
// *before* ProcessWindow ran, so a failed round was silently dropped and the
// next round fired after only s columns. With the fix the failed round is
// retried on the very next push and the cadence stays intact.
func TestStreamerPushRecoversFromFailedRound(t *testing.T) {
	series := synth(11, 3, 4, 400, nil, -1, -1)
	det, err := NewDetector(12, testConfig()) // w=40, s=4
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamer(det)

	errBoom := errors.New("boom")
	calls := 0
	real := sr.process
	sr.process = func(win *mts.MTS) (RoundReport, error) {
		calls++
		if calls == 3 { // fail the third round attempt (tick 48) once
			return RoundReport{}, errBoom
		}
		return real(win)
	}

	var completed []int // 1-based tick of each completed round
	var failedAt []int
	col := make([]float64, 12)
	for p := 0; p < 80; p++ {
		series.Column(p, col)
		_, ok, err := sr.Push(col)
		if err != nil {
			if !errors.Is(err, errBoom) {
				t.Fatalf("tick %d: unexpected error %v", p+1, err)
			}
			failedAt = append(failedAt, p+1)
			continue
		}
		if ok {
			completed = append(completed, p+1)
		}
	}

	if want := []int{48}; !reflect.DeepEqual(failedAt, want) {
		t.Fatalf("failed ticks = %v, want %v", failedAt, want)
	}
	// First round at tick 40, then every 4 ticks; the failed tick-48 round
	// is retried (and succeeds) at tick 49, re-anchoring the cadence there.
	want := []int{40, 44, 49, 53, 57, 61, 65, 69, 73, 77}
	if !reflect.DeepEqual(completed, want) {
		t.Fatalf("completed ticks = %v, want %v", completed, want)
	}
	// The failed attempt must not have advanced the detector.
	if det.Rounds() != len(completed) {
		t.Fatalf("detector advanced %d rounds, %d completed", det.Rounds(), len(completed))
	}
}

// TestStreamerFailedFirstRoundKeepsWarming checks the started flag is not
// committed when the very first round fails: the streamer must keep
// retrying full-window rounds, not switch to the s-column cadence.
func TestStreamerFailedFirstRoundKeepsWarming(t *testing.T) {
	series := synth(12, 3, 4, 100, nil, -1, -1)
	det, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamer(det)
	errBoom := errors.New("boom")
	calls := 0
	real := sr.process
	sr.process = func(win *mts.MTS) (RoundReport, error) {
		calls++
		if calls <= 2 { // first round fails twice (ticks 40 and 41)
			return RoundReport{}, errBoom
		}
		return real(win)
	}
	var completed []int
	col := make([]float64, 12)
	for p := 0; p < 50; p++ {
		series.Column(p, col)
		_, ok, err := sr.Push(col)
		if ok {
			completed = append(completed, p+1)
		}
		if err != nil && !errors.Is(err, errBoom) {
			t.Fatalf("tick %d: %v", p+1, err)
		}
	}
	want := []int{42, 46, 50}
	if !reflect.DeepEqual(completed, want) {
		t.Fatalf("completed ticks = %v, want %v", completed, want)
	}
}

// TestStreamerRingMatchesBatchExactly pins the ring-buffer window to the
// batch path bit for bit: every field of every report must match Detect on
// the same series.
func TestStreamerRingMatchesBatchExactly(t *testing.T) {
	series := synth(13, 3, 4, 500, []int{1, 6}, 200, 320)

	batch, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	batchRes, err := batch.Detect(series)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	reps, err := NewStreamer(stream).PushSeries(series)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(batchRes.Rounds) {
		t.Fatalf("streamer emitted %d rounds, batch %d", len(reps), len(batchRes.Rounds))
	}
	for i := range reps {
		if !reflect.DeepEqual(reps[i], batchRes.Rounds[i]) {
			t.Errorf("round %d differs:\nstream %+v\nbatch  %+v", i, reps[i], batchRes.Rounds[i])
		}
	}
}

// TestStreamerInvalidPushLeavesStateIntact feeds interleaved invalid
// columns (wrong arity) and checks the stream still matches the batch path
// on the clean series — rejected pushes must not consume buffer space or
// cadence.
func TestStreamerInvalidPushLeavesStateIntact(t *testing.T) {
	series := synth(14, 3, 4, 300, nil, -1, -1)

	batch, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	batchRes, err := batch.Detect(series)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamer(stream)
	var reps []RoundReport
	col := make([]float64, 12)
	for p := 0; p < series.Len(); p++ {
		if p%7 == 3 {
			if _, _, err := sr.Push([]float64{1, 2, 3}); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("tick %d: short column: want ErrBadConfig, got %v", p, err)
			}
		}
		series.Column(p, col)
		rep, ok, err := sr.Push(col)
		if err != nil {
			t.Fatalf("tick %d: %v", p, err)
		}
		if ok {
			reps = append(reps, rep)
		}
	}
	if len(reps) != len(batchRes.Rounds) {
		t.Fatalf("streamer emitted %d rounds, batch %d", len(reps), len(batchRes.Rounds))
	}
	for i := range reps {
		if !reflect.DeepEqual(reps[i], batchRes.Rounds[i]) {
			t.Errorf("round %d differs:\nstream %+v\nbatch  %+v", i, reps[i], batchRes.Rounds[i])
		}
	}
}

// TestStreamerRetryKeepsTimeAttribution is the regression test for the
// pointSpan drift after failed-round retries: each retry slides the window
// one extra column, so an anomaly's time span must follow the actual
// consumed columns (RoundReport.WindowEnd), not the nominal cadence
// Bounds(round). Before the fix the Tracker attributed anomalies to ticks
// that drifted one column earlier per preceding failure.
func TestStreamerRetryKeepsTimeAttribution(t *testing.T) {
	series := synth(16, 3, 4, 500, []int{1, 6}, 200, 320)
	cfg := testConfig() // w=40, s=4

	// Reference run, no failures.
	refDet, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refReps, err := NewStreamer(refDet).PushSeries(series)
	if err != nil {
		t.Fatal(err)
	}
	refTr := NewTracker(cfg)
	for _, rep := range refReps {
		refTr.Push(rep)
	}
	refTr.Flush()
	refAnoms := refTr.Drain()
	if len(refAnoms) == 0 {
		t.Fatal("test has no power: reference run found no anomalies")
	}

	// Faulty run: rounds 3, 4, and 10 each fail twice before succeeding,
	// so by the anomaly region the stream runs 6 columns ahead of the
	// nominal cadence.
	det, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamer(det)
	errBoom := errors.New("boom")
	fails := map[int]int{3: 2, 4: 2, 10: 2}
	attempt := 0
	real := sr.process
	sr.process = func(win *mts.MTS) (RoundReport, error) {
		rounds := det.Rounds()
		if fails[rounds] > 0 {
			fails[rounds]--
			attempt++
			return RoundReport{}, errBoom
		}
		return real(win)
	}
	tr := NewTracker(cfg)
	col := make([]float64, 12)
	var reps []RoundReport
	for p := 0; p < series.Len(); p++ {
		series.Column(p, col)
		rep, ok, err := sr.Push(col)
		if err != nil {
			if !errors.Is(err, errBoom) {
				t.Fatalf("tick %d: %v", p+1, err)
			}
			continue
		}
		if ok {
			reps = append(reps, rep)
			tr.Push(rep)
		}
	}
	tr.Flush()
	anoms := tr.Drain()
	if attempt != 6 {
		t.Fatalf("injected %d failures, want 6", attempt)
	}
	if len(anoms) == 0 {
		t.Fatal("faulty run found no anomalies")
	}

	// Every report's WindowEnd must be the actual 1-based tick the round
	// completed at, so the sequence is strictly increasing and the whole
	// run sits 6 ticks past the nominal Bounds cadence.
	for i, rep := range reps {
		if rep.WindowEnd <= 0 {
			t.Fatalf("report %d has no WindowEnd", i)
		}
		if i > 0 && rep.WindowEnd <= reps[i-1].WindowEnd {
			t.Fatalf("WindowEnd not increasing at report %d: %d then %d",
				i, reps[i-1].WindowEnd, rep.WindowEnd)
		}
		if _, nominal := cfg.Window.Bounds(rep.Round); rep.Round > 10 && rep.WindowEnd != nominal+6 {
			t.Fatalf("report %d (round %d): WindowEnd %d, nominal end %d — expected 6-tick retry drift",
				i, rep.Round, rep.WindowEnd, nominal)
		}
	}

	// Time attribution must follow the actual window ends. Re-derive the
	// expected spans straight from the report stream: consecutive abnormal
	// reports form one anomaly spanning (firstEnd − step, lastEnd]. Under
	// the old Bounds-based attribution every span after the retries would
	// land 6 ticks early.
	type span struct{ start, end int }
	var wantSpans []span
	openStart := -1
	lastEnd := 0
	for _, rep := range reps {
		if rep.Abnormal {
			if openStart < 0 {
				openStart = rep.WindowEnd - cfg.Window.S
				if openStart < 0 {
					openStart = 0
				}
			}
			lastEnd = rep.WindowEnd
			continue
		}
		if openStart >= 0 {
			wantSpans = append(wantSpans, span{openStart, lastEnd})
			openStart = -1
		}
	}
	if openStart >= 0 {
		wantSpans = append(wantSpans, span{openStart, lastEnd})
	}
	if len(anoms) != len(wantSpans) {
		t.Fatalf("tracker produced %d anomalies, report stream implies %d", len(anoms), len(wantSpans))
	}
	for i, a := range anoms {
		if a.Start != wantSpans[i].start || a.End != wantSpans[i].end {
			t.Errorf("anomaly %d span [%d, %d], want [%d, %d] from actual window ends",
				i, a.Start, a.End, wantSpans[i].start, wantSpans[i].end)
		}
		if a.End > series.Len() {
			t.Errorf("anomaly %d End %d beyond consumed columns %d", i, a.End, series.Len())
		}
	}
}

// BenchmarkStreamerPush measures the full streaming hot path: ring write,
// occasional window materialization, and round processing — for both the
// batch-recompute pipeline and the incremental one (the cmd/benchrecord
// baseline measures the same comparison at larger sensor counts).
func BenchmarkStreamerPush(b *testing.B) {
	for _, n := range []int{12, 48} {
		for _, mode := range []string{"batch", "incremental"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				cfg := testConfig()
				cfg.Window = mts.Windowing{W: 200, S: 4}
				cfg.K = 3
				cfg.Incremental = mode == "incremental"
				det, err := NewDetector(n, cfg)
				if err != nil {
					b.Fatal(err)
				}
				sr := NewStreamer(det)
				series := synth(15, n/4, 4, 1200, nil, -1, -1)
				cols := make([][]float64, series.Len())
				for p := range cols {
					cols[p] = series.Column(p, nil)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := sr.Push(cols[i%len(cols)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStreamerPushBuffer isolates the per-push buffer management (the
// part the ring buffer turned from O(n·w) into O(n)) by stubbing out round
// processing.
func BenchmarkStreamerPushBuffer(b *testing.B) {
	cfg := testConfig()
	cfg.Window = mts.Windowing{W: 400, S: 8}
	det, err := NewDetector(48, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sr := NewStreamer(det)
	sr.process = func(*mts.MTS) (RoundReport, error) { return RoundReport{}, nil }
	col := make([]float64, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sr.Push(col); err != nil {
			b.Fatal(err)
		}
	}
}
