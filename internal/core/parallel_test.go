package core

import "testing"

// TestDetectParallelMatchesSequential checks bit-identical results between
// Detect and DetectParallel for several worker counts.
func TestDetectParallelMatchesSequential(t *testing.T) {
	his := synth(31, 3, 4, 700, nil, -1, -1)
	test := synth(32, 3, 4, 700, []int{4, 5}, 350, 460)

	seq := func() *Result {
		det, err := NewDetector(12, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := det.WarmUp(his); err != nil {
			t.Fatal(err)
		}
		res, err := det.Detect(test)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	for _, workers := range []int{0, 1, 2, 4} {
		det, err := NewDetector(12, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := det.WarmUp(his); err != nil {
			t.Fatal(err)
		}
		par, err := det.DetectParallel(test, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Rounds) != len(seq.Rounds) {
			t.Fatalf("workers=%d: %d rounds vs %d", workers, len(par.Rounds), len(seq.Rounds))
		}
		for i := range par.Rounds {
			if par.Rounds[i].Variations != seq.Rounds[i].Variations ||
				par.Rounds[i].Abnormal != seq.Rounds[i].Abnormal ||
				par.Rounds[i].Score != seq.Rounds[i].Score {
				t.Fatalf("workers=%d: round %d differs", workers, i)
			}
		}
		if len(par.Anomalies) != len(seq.Anomalies) {
			t.Fatalf("workers=%d: %d anomalies vs %d", workers, len(par.Anomalies), len(seq.Anomalies))
		}
		for i := range par.Anomalies {
			a, b := par.Anomalies[i], seq.Anomalies[i]
			if a.Start != b.Start || a.End != b.End || len(a.Sensors) != len(b.Sensors) {
				t.Fatalf("workers=%d: anomaly %d differs: %+v vs %+v", workers, i, a, b)
			}
		}
		for p := range par.PointLabels {
			if par.PointLabels[p] != seq.PointLabels[p] || par.PointScores[p] != seq.PointScores[p] {
				t.Fatalf("workers=%d: point %d differs", workers, p)
			}
		}
	}
}

func TestDetectParallelErrors(t *testing.T) {
	det, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.DetectParallel(synth(33, 2, 3, 100, nil, -1, -1), 2); err == nil {
		t.Error("sensor mismatch should error")
	}
	short := synth(34, 3, 4, 10, nil, -1, -1)
	if _, err := det.DetectParallel(short, 2); err == nil {
		t.Error("too-short series should error")
	}
}

func BenchmarkDetectParallel(b *testing.B) {
	test := synth(35, 5, 10, 3000, nil, -1, -1)
	cfg := testConfig()
	cfg.K = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := NewDetector(50, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := det.DetectParallel(test, 0); err != nil {
			b.Fatal(err)
		}
	}
}
