package core

import (
	"bytes"
	"testing"
)

func TestSaveLoadResumesExactly(t *testing.T) {
	his := synth(51, 3, 4, 700, nil, -1, -1)
	test := synth(52, 3, 4, 700, []int{0, 1}, 350, 460)

	// Reference: one detector runs straight through.
	ref, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Detect(test)
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot after warm-up, load into a fresh process, continue.
	snap, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rounds() != snap.Rounds() || loaded.Sensors() != 12 {
		t.Fatalf("restored rounds=%d sensors=%d", loaded.Rounds(), loaded.Sensors())
	}
	loadedRes, err := loaded.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(loadedRes.Rounds) != len(refRes.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(loadedRes.Rounds), len(refRes.Rounds))
	}
	for i := range refRes.Rounds {
		a, b := refRes.Rounds[i], loadedRes.Rounds[i]
		if a.Variations != b.Variations || a.Abnormal != b.Abnormal || a.Score != b.Score {
			t.Fatalf("round %d diverged after restore", i)
		}
	}
	if len(loadedRes.Anomalies) != len(refRes.Anomalies) {
		t.Fatalf("anomaly counts differ: %d vs %d", len(loadedRes.Anomalies), len(refRes.Anomalies))
	}
}

func TestSaveLoadMidStream(t *testing.T) {
	test := synth(53, 3, 4, 800, []int{2, 3}, 500, 620)
	cfg := testConfig()

	ref, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Detect(test)
	if err != nil {
		t.Fatal(err)
	}

	// Split the series at a window boundary: first part through one
	// detector, snapshot, restore, second part through the restored one.
	split := 400 // multiple of s, beyond w
	first, err := test.Slice(0, split)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := d1.Detect(first)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d1.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Continue with a streamer over the remainder, overlapping the last
	// w−s points so windows line up.
	st := NewStreamer(d2)
	col := make([]float64, 12)
	var streamed []RoundReport
	from := split - cfg.Window.W + cfg.Window.S
	for p := from; p < test.Len(); p++ {
		test.Column(p, col)
		rep, ok, err := st.Push(col)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			streamed = append(streamed, rep)
		}
	}
	total := len(res1.Rounds) + len(streamed)
	if total != len(refRes.Rounds) {
		t.Fatalf("resumed rounds %d + %d != reference %d", len(res1.Rounds), len(streamed), len(refRes.Rounds))
	}
	for i, rep := range streamed {
		want := refRes.Rounds[len(res1.Rounds)+i]
		if rep.Variations != want.Variations || rep.Abnormal != want.Abnormal {
			t.Fatalf("resumed round %d diverged (n_r %d vs %d)", i, rep.Variations, want.Variations)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadDetector(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage snapshot should error")
	}
	// Wrong version.
	det, err := NewDetector(12, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding a hacked struct is messy; instead
	// check empty input.
	if _, err := LoadDetector(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot should error")
	}
}
