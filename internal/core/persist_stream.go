package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"cad/internal/mts"
)

// persistedStreamer is the gob wire format of a Streamer: the wrapped
// detector's full snapshot plus the trailing ring of raw columns, so a
// restored streamer completes its next round on exactly the same window a
// never-interrupted one would. Persisting the detector alone is not enough —
// the partial window between rounds lives only in the streamer.
type persistedStreamer struct {
	Version  int
	Detector []byte
	Ring     [][]float64
	Pos      int
	Filled   int
	Pending  int
	Started  bool
	Seq      uint64
	// Base offsets Seq into detector round coordinates for WindowEnd
	// stamping. Added after version 2 shipped; gob decodes it as zero from
	// older snapshots, which is correct for them (they predate warmed-up
	// streamer support for WindowEnd entirely).
	Base int
	// The incremental correlation accumulator, present iff the config runs
	// the incremental path. The drifted live sums are persisted verbatim —
	// recomputing them on load would diverge from an uninterrupted run at
	// the last few ulps, breaking bit-identical replay.
	HasAcc   bool
	AccRef   []float64
	AccSX    []float64
	AccSXY   []float64
	AccCount int
}

// streamerPersistVersion is 2 since the sequence number joined the format;
// version-1 snapshots predate write-ahead logging and are rejected rather
// than resumed with a replay cursor stuck at zero.
const streamerPersistVersion = 2

// SaveState serializes the streamer — the detector snapshot plus the
// in-flight window state — so ingestion can resume mid-window after a
// restart or eviction with bit-identical round reports.
func (s *Streamer) SaveState(w io.Writer) error {
	var det bytes.Buffer
	if err := s.det.SaveState(&det); err != nil {
		return err
	}
	st := persistedStreamer{
		Version:  streamerPersistVersion,
		Detector: det.Bytes(),
		Ring:     s.ring,
		Pos:      s.pos,
		Filled:   s.filled,
		Pending:  s.pending,
		Started:  s.started,
		Seq:      s.seq,
		Base:     s.base,
	}
	if s.acc != nil {
		st.HasAcc = true
		st.AccRef, st.AccSX, st.AccSXY, st.AccCount = s.acc.State()
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("cad: save streamer: %w", err)
	}
	return nil
}

// LoadStreamer reconstructs a streamer from a Streamer.SaveState snapshot.
// The next Push continues exactly where the saved streamer stopped.
func LoadStreamer(r io.Reader) (*Streamer, error) {
	var st persistedStreamer
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("cad: load streamer: %w", err)
	}
	if st.Version != streamerPersistVersion {
		return nil, fmt.Errorf("%w: streamer snapshot version %d, want %d", ErrBadConfig, st.Version, streamerPersistVersion)
	}
	det, err := LoadDetector(bytes.NewReader(st.Detector))
	if err != nil {
		return nil, err
	}
	s := NewStreamer(det)
	if len(st.Ring) != len(s.ring) {
		return nil, fmt.Errorf("%w: streamer snapshot ring has %d sensors, want %d", ErrBadConfig, len(st.Ring), len(s.ring))
	}
	for i := range s.ring {
		if len(st.Ring[i]) != len(s.ring[i]) {
			return nil, fmt.Errorf("%w: streamer snapshot window %d, want %d", ErrBadConfig, len(st.Ring[i]), len(s.ring[i]))
		}
		copy(s.ring[i], st.Ring[i])
	}
	s.pos = st.Pos
	s.filled = st.Filled
	s.pending = st.Pending
	s.started = st.Started
	s.seq = st.Seq
	s.base = st.Base
	if st.HasAcc != (s.acc != nil) {
		return nil, fmt.Errorf("%w: streamer snapshot accumulator presence %v, config says %v", ErrBadConfig, st.HasAcc, s.acc != nil)
	}
	if st.HasAcc && !s.acc.SetState(st.AccRef, st.AccSX, st.AccSXY, st.AccCount) {
		return nil, fmt.Errorf("%w: streamer snapshot accumulator shape mismatch", ErrBadConfig)
	}
	return s, nil
}

// persistedTracker is the gob wire format of a Tracker: the windowing it
// maps rounds with, the open anomaly (if any) with its per-sensor onsets,
// and the completed-but-undrained queue.
type persistedTracker struct {
	Version      int
	W, S         int
	HasOpen      bool
	Open         Anomaly
	OnsetSensors []int
	OnsetRounds  []int
	Done         []Anomaly
	// Actual window ends of the open anomaly (see Tracker). Decoded as zero
	// from older snapshots, which finish() treats as "fall back to the
	// nominal round cadence".
	FirstEnd, LastEnd int
}

const trackerPersistVersion = 1

// SaveState serializes the tracker so anomaly assembly resumes across a
// restart without splitting an in-progress anomaly in two.
func (tr *Tracker) SaveState(w io.Writer) error {
	st := persistedTracker{
		Version: trackerPersistVersion,
		W:       tr.wd.W,
		S:       tr.wd.S,
		Done:    tr.done,
	}
	if tr.open != nil {
		st.HasOpen = true
		st.Open = *tr.open
		st.FirstEnd, st.LastEnd = tr.firstEnd, tr.lastEnd
		for v, r := range tr.onsets {
			st.OnsetSensors = append(st.OnsetSensors, v)
			st.OnsetRounds = append(st.OnsetRounds, r)
		}
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("cad: save tracker: %w", err)
	}
	return nil
}

// LoadTracker reconstructs a tracker from a Tracker.SaveState snapshot.
func LoadTracker(r io.Reader) (*Tracker, error) {
	var st persistedTracker
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("cad: load tracker: %w", err)
	}
	if st.Version != trackerPersistVersion {
		return nil, fmt.Errorf("%w: tracker snapshot version %d, want %d", ErrBadConfig, st.Version, trackerPersistVersion)
	}
	if len(st.OnsetSensors) != len(st.OnsetRounds) {
		return nil, fmt.Errorf("%w: tracker snapshot onsets mismatched (%d sensors, %d rounds)", ErrBadConfig, len(st.OnsetSensors), len(st.OnsetRounds))
	}
	tr := &Tracker{wd: mts.Windowing{W: st.W, S: st.S}, step: st.S, done: st.Done}
	if st.HasOpen {
		open := st.Open
		tr.open = &open
		tr.onsets = make(map[int]int, len(st.OnsetSensors))
		for i, v := range st.OnsetSensors {
			tr.onsets[v] = st.OnsetRounds[i]
		}
		tr.firstEnd, tr.lastEnd = st.FirstEnd, st.LastEnd
	}
	return tr, nil
}
