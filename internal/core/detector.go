package core

import (
	"fmt"
	"sort"
	"time"

	"cad/internal/louvain"
	"cad/internal/mts"
	"cad/internal/stats"
	"cad/internal/tsg"
)

// Anomaly is one detected anomaly Z = (V_Z, R_Z) (paper Def. 1) mapped back
// to time points.
type Anomaly struct {
	// Sensors is V_Z: indices of the abnormal sensors, sorted ascending.
	Sensors []int
	// Onsets[i] is the first abnormal round in which Sensors[i] appeared
	// in the outlier set. Sensors with the earliest onset are the best
	// root-cause candidates: a failure typically decorrelates its own
	// sensors first and propagates to neighbors later (§I).
	Onsets []int
	// FirstRound and LastRound delimit R_Z (inclusive, 0-indexed rounds).
	FirstRound, LastRound int
	// Start and End delimit the covered time points [Start, End) in the
	// original series.
	Start, End int
	// Score is the peak normalized deviation max_r |n_r − μ| / σ over R_Z.
	Score float64
}

// RootCauses returns the sensors ordered by onset (earliest first, ties by
// sensor id) — the ranking a maintenance crew should inspect in.
func (a Anomaly) RootCauses() []int {
	idx := make([]int, len(a.Sensors))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		if a.Onsets[idx[x]] != a.Onsets[idx[y]] {
			return a.Onsets[idx[x]] < a.Onsets[idx[y]]
		}
		return a.Sensors[idx[x]] < a.Sensors[idx[y]]
	})
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = a.Sensors[j]
	}
	return out
}

// RoundReport describes the outcome of processing one round.
type RoundReport struct {
	// Round is the 0-indexed round number within the processed series.
	Round int
	// Outliers is O_r, sorted ascending.
	Outliers []int
	// Variations is n_r, the number of outlier transitions (Def. 8).
	Variations int
	// Score is |n_r − μ| / max(σ, SigmaFloor) against the history *before*
	// this round was appended. 0 while history is shorter than MinHistory.
	Score float64
	// Abnormal reports whether the round was flagged.
	Abnormal bool
	// Communities is the number of Louvain communities found.
	Communities int
	// WindowEnd is the 1-based index just past the last time point of this
	// round's window, in the coordinates of the series being processed. For
	// batch Detect it equals Window.Bounds(Round).to; for a Streamer it
	// counts actually-consumed columns, which can run ahead of the nominal
	// round cadence when a transient round failure forced a retry with the
	// window slid further. Zero in reports predating this field.
	WindowEnd int
}

// Result is the output of Detector.Detect.
type Result struct {
	// Anomalies in chronological order.
	Anomalies []Anomaly
	// Rounds holds one report per processed round.
	Rounds []RoundReport
	// PointScores maps the per-round scores onto time points: point t gets
	// the score of the first round whose window fully covers t (0 before
	// any round completes).
	PointScores []float64
	// PointLabels is the binary per-time-point prediction derived from the
	// abnormal rounds (see Detector.pointSpan for the mapping).
	PointLabels []bool
}

// Detector runs CAD. It is stateful: the co-appearance history, outlier set,
// and n_r statistics persist across calls, which is what makes WarmUp and
// streaming detection (ProcessWindow) work. A Detector is not safe for
// concurrent use.
type Detector struct {
	cfg     Config
	n       int
	builder tsg.Builder

	// incTSG maintains the TSG across rounds on the incremental path
	// (ProcessCorr). Lazily created; never persisted — its state is a pure
	// function of the correlation matrix, so the first repair after a
	// restore rebuilds it exactly.
	incTSG *tsg.Incremental

	round    int // rounds processed so far (warm-up included)
	havePrev bool
	prevPart louvain.Partition

	sumS     []float64   // Σ S_i(v) over the active horizon, or EWMA state
	ring     [][]float64 // per-vertex trailing S values (RCSliding only)
	ringPos  int
	rcRounds int    // co-appearance rounds accumulated
	outlier  []bool // O_{r-1}

	hist history // μ, σ estimator over n_r (unbounded or trailing horizon)

	obs RoundObserver // optional per-round telemetry sink
}

// history estimates μ and σ of the n_r series, either over the entire past
// (the paper's Algorithm 2) or over a trailing horizon of samples
// (Config.HistoryHorizon > 0), which lets the 3σ threshold adapt when the
// plant's noise regime drifts.
type history struct {
	run    stats.Running
	ring   []float64 // nil when unbounded
	pos    int
	filled int
}

func newHistory(horizon int) history {
	if horizon <= 0 {
		return history{}
	}
	return history{ring: make([]float64, horizon)}
}

func (h *history) Add(x float64) {
	if h.ring == nil {
		h.run.Add(x)
		return
	}
	h.ring[h.pos] = x
	h.pos = (h.pos + 1) % len(h.ring)
	if h.filled < len(h.ring) {
		h.filled++
	}
}

func (h *history) N() int {
	if h.ring == nil {
		return h.run.N()
	}
	return h.filled
}

func (h *history) Mean() float64 {
	if h.ring == nil {
		return h.run.Mean()
	}
	return stats.Mean(h.ring[:h.filled])
}

func (h *history) StdDev() float64 {
	if h.ring == nil {
		return h.run.StdDev()
	}
	return stats.StdDev(h.ring[:h.filled])
}

// NewDetector validates cfg for n sensors and returns a fresh detector.
func NewDetector(n int, cfg Config) (*Detector, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	if cfg.RCHorizon == 0 {
		cfg.RCHorizon = 10
	}
	d := &Detector{
		cfg:     cfg,
		n:       n,
		builder: tsg.Builder{K: cfg.K, Tau: cfg.Tau},
		sumS:    make([]float64, n),
		outlier: make([]bool, n),
		hist:    newHistory(cfg.HistoryHorizon),
	}
	if cfg.RCMode == RCSliding {
		d.ring = make([][]float64, n)
		backing := make([]float64, n*cfg.RCHorizon)
		for v := range d.ring {
			d.ring[v] = backing[v*cfg.RCHorizon : (v+1)*cfg.RCHorizon]
		}
	}
	return d, nil
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Sensors returns the number of sensors the detector was built for.
func (d *Detector) Sensors() int { return d.n }

// Rounds returns the number of rounds processed so far, warm-up included.
func (d *Detector) Rounds() int { return d.round }

// HistoryMean returns the running mean μ of n_r.
func (d *Detector) HistoryMean() float64 { return d.hist.Mean() }

// HistoryStdDev returns the running standard deviation σ of n_r.
func (d *Detector) HistoryStdDev() float64 { return d.hist.StdDev() }

// WarmUp processes the historical series T_his exactly as Algorithm 2's
// WarmUp function: every round is mined for outliers and its n_r feeds the
// μ/σ history, but no anomalies are reported. The co-appearance state
// carries over into subsequent Detect/ProcessWindow calls.
func (d *Detector) WarmUp(his *mts.MTS) error {
	if his.Sensors() != d.n {
		return fmt.Errorf("%w: warm-up has %d sensors, detector expects %d", ErrBadConfig, his.Sensors(), d.n)
	}
	wd := d.cfg.Window
	R := wd.Rounds(his.Len())
	if R == 0 {
		return fmt.Errorf("%w: warm-up series too short for window w=%d", ErrBadConfig, wd.W)
	}
	for r := 0; r < R; r++ {
		win, err := wd.Window(his, r)
		if err != nil {
			return err
		}
		if _, err := d.step(win); err != nil {
			return fmt.Errorf("cad: warm-up round %d: %w", r, err)
		}
	}
	return nil
}

// Detect runs Algorithm 2 over T and returns all detected anomalies. The
// detector's state advances; to analyze an unrelated series build a new
// Detector.
func (d *Detector) Detect(t *mts.MTS) (*Result, error) {
	if t.Sensors() != d.n {
		return nil, fmt.Errorf("%w: series has %d sensors, detector expects %d", ErrBadConfig, t.Sensors(), d.n)
	}
	wd := d.cfg.Window
	R := wd.Rounds(t.Len())
	if R == 0 {
		return nil, fmt.Errorf("%w: series length %d too short for window w=%d", ErrBadConfig, t.Len(), wd.W)
	}
	return d.assemble(t, R, func(r int) (RoundReport, error) {
		win, err := wd.Window(t, r)
		if err != nil {
			return RoundReport{}, err
		}
		return d.step(win)
	})
}

// assemble drives the per-round reports into a Result: anomaly grouping,
// point labels, and point scores. nextReport must advance the detector's
// state for round r and return its report.
func (d *Detector) assemble(t *mts.MTS, R int, nextReport func(r int) (RoundReport, error)) (*Result, error) {
	res := &Result{
		Rounds:      make([]RoundReport, 0, R),
		PointScores: make([]float64, t.Len()),
		PointLabels: make([]bool, t.Len()),
	}
	var open *Anomaly
	sensorOnset := make(map[int]int)
	for r := 0; r < R; r++ {
		rep, err := nextReport(r)
		if err != nil {
			return nil, fmt.Errorf("cad: round %d: %w", r, err)
		}
		rep.Round = r
		_, rep.WindowEnd = d.cfg.Window.Bounds(r)
		res.Rounds = append(res.Rounds, rep)

		if rep.Abnormal {
			if open == nil {
				open = &Anomaly{FirstRound: r, LastRound: r, Score: rep.Score}
				sensorOnset = make(map[int]int)
			}
			open.LastRound = r
			if rep.Score > open.Score {
				open.Score = rep.Score
			}
			for _, v := range rep.Outliers {
				if _, seen := sensorOnset[v]; !seen {
					sensorOnset[v] = r
				}
			}
			from, to := d.pointSpan(r)
			for p := from; p < to && p < t.Len(); p++ {
				res.PointLabels[p] = true
			}
		} else if open != nil {
			res.Anomalies = append(res.Anomalies, d.finish(open, sensorOnset))
			open = nil
		}
	}
	if open != nil {
		res.Anomalies = append(res.Anomalies, d.finish(open, sensorOnset))
	}
	// Point scores: point t takes the score of the first round covering it.
	for p := 0; p < t.Len(); p++ {
		r := d.cfg.Window.RoundOf(p)
		if r < 0 {
			r = 0
		}
		if r >= R {
			r = R - 1
		}
		res.PointScores[p] = res.Rounds[r].Score
	}
	return res, nil
}

// ProcessWindow advances the detector by one round with an explicit window
// (streaming use; the caller owns window assembly — see Streamer for a
// column-at-a-time wrapper). The window must be exactly w columns.
func (d *Detector) ProcessWindow(win *mts.MTS) (RoundReport, error) {
	if win.Sensors() != d.n {
		return RoundReport{}, fmt.Errorf("%w: window has %d sensors, detector expects %d", ErrBadConfig, win.Sensors(), d.n)
	}
	if win.Len() != d.cfg.Window.W {
		return RoundReport{}, fmt.Errorf("%w: window length %d, want w=%d", ErrBadConfig, win.Len(), d.cfg.Window.W)
	}
	rep, err := d.step(win)
	rep.Round = d.round - 1
	_, rep.WindowEnd = d.cfg.Window.Bounds(rep.Round)
	return rep, err
}

// finish converts an open anomaly plus its sensor onset map into the final
// record.
func (d *Detector) finish(a *Anomaly, onsets map[int]int) Anomaly {
	a.Sensors = make([]int, 0, len(onsets))
	for v := range onsets {
		a.Sensors = append(a.Sensors, v)
	}
	sort.Ints(a.Sensors)
	a.Onsets = make([]int, len(a.Sensors))
	for i, v := range a.Sensors {
		a.Onsets[i] = onsets[v]
	}
	from, _ := d.pointSpan(a.FirstRound)
	_, to := d.pointSpan(a.LastRound)
	a.Start, a.End = from, to
	return *a
}

// pointSpan maps an abnormal round to the time points it newly implicates:
// the final step's worth of columns of its window. Consecutive abnormal
// rounds therefore mark contiguous time, and the first marked point of an
// anomaly is the moment the anomaly became visible at the window's edge —
// which is what makes the alarm early under DPA.
func (d *Detector) pointSpan(r int) (from, to int) {
	_, to = d.cfg.Window.Bounds(r)
	from = to - d.cfg.Window.S
	if from < 0 {
		from = 0
	}
	return from, to
}

// partition runs the stateless half of Algorithm 1 — TSG construction and
// community detection — for one window, timing each stage. It is safe to
// call concurrently for different windows.
func (d *Detector) partition(win *mts.MTS) (louvain.Partition, StageTimings, error) {
	var (
		g   *tsg.Graph
		st  StageTimings
		err error
	)
	start := time.Now()
	if d.cfg.ApproxTSG {
		g, err = d.builder.BuildApprox(win, tsg.ApproxConfig{Seed: d.cfg.ApproxSeed})
	} else {
		g, err = d.builder.Build(win)
	}
	st.TSGBuild = time.Since(start)
	if err != nil {
		return louvain.Partition{}, st, err
	}
	start = time.Now()
	part := louvain.Communities(g)
	st.Louvain = time.Since(start)
	return part, st, nil
}

// ProcessCorr advances the detector by one round from a precomputed
// correlation matrix — the incremental hot path used by Streamer when
// Config.Incremental is set. The TSG is repaired in place rather than
// rebuilt, and community detection warm-starts from the previous round's
// partition. dirty is forwarded to tsg.Incremental.Repair (nil means treat
// everything as changed, which is always safe).
func (d *Detector) ProcessCorr(corr [][]float64, dirty []bool) (RoundReport, error) {
	if len(corr) != d.n {
		return RoundReport{}, fmt.Errorf("%w: correlation matrix has %d rows, detector expects %d", ErrBadConfig, len(corr), d.n)
	}
	part, st, err := d.partitionIncremental(corr, dirty)
	if err != nil {
		return RoundReport{}, err
	}
	rep := d.observedAdvance(part, st)
	rep.Round = d.round - 1
	_, rep.WindowEnd = d.cfg.Window.Bounds(rep.Round)
	return rep, nil
}

// partitionIncremental is partition's counterpart on the incremental path:
// dirty-edge TSG repair followed by warm-started Louvain.
func (d *Detector) partitionIncremental(corr [][]float64, dirty []bool) (louvain.Partition, StageTimings, error) {
	var st StageTimings
	start := time.Now()
	if d.incTSG == nil {
		inc, err := tsg.NewIncremental(d.builder, d.n)
		if err != nil {
			return louvain.Partition{}, st, err
		}
		d.incTSG = inc
		dirty = nil // first repair populates the graph from scratch
	}
	structural := d.incTSG.Repair(corr, dirty)
	st.TSGBuild = time.Since(start)
	start = time.Now()
	var part louvain.Partition
	if d.havePrev && structural == 0 && !d.anyOutlier() {
		// The edge set is unchanged since the previous round (weights may
		// have wiggled), so the previous partition is a strong seed:
		// CommunitiesSeeded verifies it is still a local optimum in one
		// cheap pass and reruns cold the moment anything moves. Rounds
		// that churn edges — anomalies — always take the cold path, which
		// keeps decisions aligned with the batch pipeline. The outlier-set
		// guard covers the remaining hazard: while an anomaly is in flight
		// the weights swing hard enough that the seed and a cold start can
		// be *different* vertex-stable local optima even on an identical
		// edge set (a regime tear holds the k-NN sets still for a round
		// while the boundary weights keep moving), so any round entered
		// with a non-empty outlier set runs cold too.
		part = louvain.CommunitiesSeeded(d.incTSG.Graph(), d.prevPart)
	} else {
		part = louvain.Communities(d.incTSG.Graph())
	}
	st.Louvain = time.Since(start)
	return part, st, nil
}

// anyOutlier reports whether the previous round left a non-empty outlier
// set O_{r−1} — the incremental path's signal that an anomaly is in flight
// and community detection must run cold.
func (d *Detector) anyOutlier() bool {
	for _, o := range d.outlier {
		if o {
			return true
		}
	}
	return false
}

// step runs Algorithm 1 (OutlierDetection) for one window and applies the
// abnormal-round rule.
func (d *Detector) step(win *mts.MTS) (RoundReport, error) {
	part, st, err := d.partition(win)
	if err != nil {
		return RoundReport{}, err
	}
	return d.observedAdvance(part, st), nil
}

// observedAdvance runs advance and reports the round to the attached
// observer, completing the stage timings with the advance duration.
func (d *Detector) observedAdvance(part louvain.Partition, st StageTimings) RoundReport {
	start := time.Now()
	rep := d.advance(part)
	if d.obs != nil {
		st.Advance = time.Since(start)
		d.obs.ObserveRound(rep, st, d.hist.Mean(), d.hist.StdDev())
	}
	return rep
}

// advance runs the stateful half of Algorithm 1 — co-appearance mining,
// outlier-set maintenance, and the abnormal-round rule — on an
// already-computed partition.
func (d *Detector) advance(part louvain.Partition) RoundReport {
	// Round carries the global counter (warm-up included); Detect-style
	// drivers overwrite it with the series-relative index in assemble.
	rep := RoundReport{Round: d.round, Communities: part.Count}

	// Phase 2: co-appearance mining (Defs. 4–6). S_r(v) counts the other
	// vertices sharing v's community in both round r−1 and round r. With
	// communities as sets, S_r(v) = |C_{r−1}(v) ∩ C_r(v)| − 1, computable
	// for all v in O(n) by bucketing on the (previous, current) pair.
	nOut := 0
	if d.havePrev {
		pairCount := make(map[[2]int]int, d.n)
		for v := 0; v < d.n; v++ {
			pairCount[[2]int{d.prevPart.Of[v], part.Of[v]}]++
		}
		outNow := make([]bool, d.n)
		for v := 0; v < d.n; v++ {
			s := float64(pairCount[[2]int{d.prevPart.Of[v], part.Of[v]}] - 1)
			switch d.cfg.RCMode {
			case RCExponential:
				if d.rcRounds == 0 {
					d.sumS[v] = s
				} else {
					d.sumS[v] = (1-d.cfg.RCAlpha)*d.sumS[v] + d.cfg.RCAlpha*s
				}
			case RCSliding:
				d.sumS[v] += s - d.ring[v][d.ringPos]
				d.ring[v][d.ringPos] = s
			default: // RCCumulative
				d.sumS[v] += s
			}
		}
		if d.cfg.RCMode == RCSliding {
			d.ringPos = (d.ringPos + 1) % d.cfg.RCHorizon
		}
		d.rcRounds++
		for v := 0; v < d.n; v++ {
			rc := d.rc(v)
			if rc < d.cfg.Theta {
				outNow[v] = true
				rep.Outliers = append(rep.Outliers, v)
			}
			if outNow[v] != d.outlier[v] {
				nOut++
			}
		}
		copy(d.outlier, outNow)
	}
	rep.Variations = nOut

	// Phase 3 + §IV-E: abnormal-round decision against history so far.
	mu, sigma := d.hist.Mean(), d.hist.StdDev()
	enough := d.hist.N() >= d.cfg.MinHistory && d.round > 0
	if enough {
		if d.cfg.DisableVariationRule {
			rep.Abnormal = len(rep.Outliers) >= d.cfg.FixedXi
			rep.Score = float64(len(rep.Outliers))
		} else {
			dev := float64(nOut) - mu
			if dev < 0 {
				dev = -dev
			}
			s := sigma
			if s < d.cfg.SigmaFloor {
				s = d.cfg.SigmaFloor
			}
			if s > 0 {
				rep.Score = dev / s
			} else if dev > 0 {
				rep.Score = dev * 1e9 // σ = 0 and no floor: any deviation alarms
			}
			rep.Abnormal = rep.Score >= d.cfg.Eta
		}
	}
	d.hist.Add(float64(nOut))

	d.prevPart = part
	d.havePrev = true
	d.round++
	return rep
}

// rc returns RC_{v,r} for the current accumulation state.
func (d *Detector) rc(v int) float64 {
	if d.rcRounds == 0 {
		return 1
	}
	switch d.cfg.RCMode {
	case RCExponential:
		return d.sumS[v] / float64(d.n-1)
	case RCSliding:
		h := d.rcRounds
		if h > d.cfg.RCHorizon {
			h = d.cfg.RCHorizon
		}
		return d.sumS[v] / (float64(h) * float64(d.n-1))
	default: // RCCumulative
		return d.sumS[v] / (float64(d.rcRounds) * float64(d.n-1))
	}
}

// RC exposes the current ratio of co-appearance number of sensor v, mainly
// for tests and diagnostics.
func (d *Detector) RC(v int) float64 { return d.rc(v) }
