package core

import (
	"testing"
)

// TestApproxTSGDetection verifies the HNSW-backed detector catches the same
// injected anomaly as the exact one and stays deterministic.
func TestApproxTSGDetection(t *testing.T) {
	his := synth(21, 3, 4, 800, nil, -1, -1)
	test := synth(22, 3, 4, 800, []int{0, 1}, 400, 520)

	run := func(approx bool) *Result {
		cfg := testConfig()
		cfg.ApproxTSG = approx
		cfg.ApproxSeed = 99
		det, err := NewDetector(12, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := det.WarmUp(his); err != nil {
			t.Fatal(err)
		}
		res, err := det.Detect(test)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	approxRes := run(true)
	if len(approxRes.Anomalies) == 0 {
		t.Fatal("approx detector found nothing")
	}
	found := false
	for _, a := range approxRes.Anomalies {
		if a.Start < 520 && a.End > 400 {
			for _, s := range a.Sensors {
				if s == 0 || s == 1 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("approx detector missed the injected sensors: %+v", approxRes.Anomalies)
	}
	// Determinism with a fixed ApproxSeed.
	again := run(true)
	if len(again.Rounds) != len(approxRes.Rounds) {
		t.Fatal("round counts differ across runs")
	}
	for i := range again.Rounds {
		if again.Rounds[i].Variations != approxRes.Rounds[i].Variations {
			t.Fatalf("round %d differs across identical approx runs", i)
		}
	}
}
