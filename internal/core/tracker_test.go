package core

import "testing"

// TestTrackerMatchesDetect feeds Detect's round reports through a Tracker
// and expects the same anomalies.
func TestTrackerMatchesDetect(t *testing.T) {
	his := synth(61, 3, 4, 700, nil, -1, -1)
	test := synth(62, 3, 4, 700, []int{0, 1}, 350, 470)
	cfg := testConfig()
	det, err := NewDetector(12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.WarmUp(his); err != nil {
		t.Fatal(err)
	}
	res, err := det.Detect(test)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(cfg)
	var got []Anomaly
	for _, rep := range res.Rounds {
		tr.Push(rep)
		got = append(got, tr.Drain()...)
	}
	tr.Flush()
	got = append(got, tr.Drain()...)

	if len(got) != len(res.Anomalies) {
		t.Fatalf("tracker found %d anomalies, Detect %d", len(got), len(res.Anomalies))
	}
	for i := range got {
		a, b := got[i], res.Anomalies[i]
		if a.FirstRound != b.FirstRound || a.LastRound != b.LastRound {
			t.Errorf("anomaly %d rounds [%d,%d] vs [%d,%d]", i, a.FirstRound, a.LastRound, b.FirstRound, b.LastRound)
		}
		if a.Start != b.Start || a.End != b.End {
			t.Errorf("anomaly %d span [%d,%d) vs [%d,%d)", i, a.Start, a.End, b.Start, b.End)
		}
		if a.Score != b.Score || len(a.Sensors) != len(b.Sensors) {
			t.Errorf("anomaly %d score/sensors differ: %+v vs %+v", i, a, b)
		}
		for j := range a.Sensors {
			if a.Sensors[j] != b.Sensors[j] || a.Onsets[j] != b.Onsets[j] {
				t.Errorf("anomaly %d sensor %d differs", i, j)
			}
		}
	}
}

func TestTrackerOpenAndFlush(t *testing.T) {
	cfg := testConfig()
	tr := NewTracker(cfg)
	if tr.Open() {
		t.Error("fresh tracker should not be open")
	}
	tr.Push(RoundReport{Round: 5, Abnormal: true, Score: 4, Outliers: []int{1, 2}})
	if !tr.Open() {
		t.Error("tracker should be open after an abnormal round")
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Errorf("open anomaly must not drain: %v", got)
	}
	tr.Flush()
	got := tr.Drain()
	if len(got) != 1 || tr.Open() {
		t.Fatalf("flush should close the anomaly: %v", got)
	}
	if got[0].FirstRound != 5 || got[0].LastRound != 5 || len(got[0].Sensors) != 2 {
		t.Errorf("flushed anomaly: %+v", got[0])
	}
	// Flush with nothing open is a no-op.
	tr.Flush()
	if len(tr.Drain()) != 0 {
		t.Error("second flush should produce nothing")
	}
}
