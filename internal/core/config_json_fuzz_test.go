package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzConfigJSON drives arbitrary documents through the Config wire
// format. Any input the parser accepts must reach a byte-exact fixed
// point — Marshal(Unmarshal(doc)) must itself survive another
// Unmarshal→Marshal unchanged — and an input with fields the format does
// not know must be rejected (the DisallowUnknownFields contract, here
// checked by re-adding a typo to accepted documents).
func FuzzConfigJSON(f *testing.F) {
	if seed, err := json.Marshal(DefaultConfig(26, 10000)); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"window":{"w":200,"s":4},"k":10,"tau":0.5,"rcMode":"cumulative"}`))
	f.Add([]byte(`{"rcMode":"exponential","rcAlpha":0.2,"approxTSG":true,"approxSeed":-7}`))
	f.Add([]byte(`{"k":3,"typo":1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, doc []byte) {
		var cfg Config
		if err := json.Unmarshal(doc, &cfg); err != nil {
			return // rejected input is out of contract
		}
		wire, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("accepted config does not marshal: %v (%+v)", err, cfg)
		}
		var back Config
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatalf("own output rejected: %v (%s)", err, wire)
		}
		if back != cfg {
			t.Fatalf("round trip lost state:\n got %+v\nwant %+v\nwire %s", back, cfg, wire)
		}
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, again) {
			t.Fatalf("no fixed point:\n first %s\nsecond %s", wire, again)
		}
		// The format stays closed: grafting an unknown field onto a valid
		// document must flip it from accepted to rejected.
		tainted := append([]byte(`{"zzz_unknown":1,`), wire[1:]...)
		if err := json.Unmarshal(tainted, &back); err == nil {
			t.Fatalf("unknown field accepted: %s", tainted)
		}
	})
}
