package core

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ParseRCMode is the inverse of RCMode.String: it maps the mode name back to
// the mode, so JSON config files and API bodies can spell modes by name.
func ParseRCMode(s string) (RCMode, error) {
	switch s {
	case "sliding", "":
		return RCSliding, nil
	case "cumulative":
		return RCCumulative, nil
	case "exponential":
		return RCExponential, nil
	default:
		return 0, fmt.Errorf("%w: unknown RC mode %q (want sliding, cumulative, or exponential)", ErrBadConfig, s)
	}
}

// configJSON is the JSON wire format of Config, shared by POST /v1/streams
// bodies and the caddetect/cadserve -config files. Field names are stable;
// RCMode travels as its string name. Every field is always emitted so a
// marshal→unmarshal round trip is lossless.
type configJSON struct {
	Window               windowingJSON `json:"window"`
	K                    int           `json:"k"`
	Tau                  float64       `json:"tau"`
	Theta                float64       `json:"theta"`
	Eta                  float64       `json:"eta"`
	SigmaFloor           float64       `json:"sigmaFloor"`
	MinHistory           int           `json:"minHistory"`
	HistoryHorizon       int           `json:"historyHorizon"`
	RCMode               string        `json:"rcMode"`
	RCHorizon            int           `json:"rcHorizon"`
	RCAlpha              float64       `json:"rcAlpha"`
	ApproxTSG            bool          `json:"approxTSG"`
	ApproxSeed           int64         `json:"approxSeed"`
	Incremental          bool          `json:"incremental"`
	RefreshEvery         int           `json:"refreshEvery"`
	DisableVariationRule bool          `json:"disableVariationRule"`
	FixedXi              int           `json:"fixedXi"`
}

type windowingJSON struct {
	W int `json:"w"`
	S int `json:"s"`
}

// MarshalJSON renders the config in the shared wire format (see configJSON).
func (c Config) MarshalJSON() ([]byte, error) {
	return json.Marshal(configJSON{
		Window:               windowingJSON{W: c.Window.W, S: c.Window.S},
		K:                    c.K,
		Tau:                  c.Tau,
		Theta:                c.Theta,
		Eta:                  c.Eta,
		SigmaFloor:           c.SigmaFloor,
		MinHistory:           c.MinHistory,
		HistoryHorizon:       c.HistoryHorizon,
		RCMode:               c.RCMode.String(),
		RCHorizon:            c.RCHorizon,
		RCAlpha:              c.RCAlpha,
		ApproxTSG:            c.ApproxTSG,
		ApproxSeed:           c.ApproxSeed,
		Incremental:          c.Incremental,
		RefreshEvery:         c.RefreshEvery,
		DisableVariationRule: c.DisableVariationRule,
		FixedXi:              c.FixedXi,
	})
}

// UnmarshalJSON parses the shared wire format. Unknown fields are rejected,
// so a typoed parameter in a config file or API body fails loudly instead of
// silently running with the default. Fields absent from the document keep
// their zero value; validation happens later in Config.Validate.
func (c *Config) UnmarshalJSON(data []byte) error {
	var aux configJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&aux); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	mode, err := ParseRCMode(aux.RCMode)
	if err != nil {
		return err
	}
	c.Window.W, c.Window.S = aux.Window.W, aux.Window.S
	c.K = aux.K
	c.Tau = aux.Tau
	c.Theta = aux.Theta
	c.Eta = aux.Eta
	c.SigmaFloor = aux.SigmaFloor
	c.MinHistory = aux.MinHistory
	c.HistoryHorizon = aux.HistoryHorizon
	c.RCMode = mode
	c.RCHorizon = aux.RCHorizon
	c.RCAlpha = aux.RCAlpha
	c.ApproxTSG = aux.ApproxTSG
	c.ApproxSeed = aux.ApproxSeed
	c.Incremental = aux.Incremental
	c.RefreshEvery = aux.RefreshEvery
	c.DisableVariationRule = aux.DisableVariationRule
	c.FixedXi = aux.FixedXi
	return nil
}
