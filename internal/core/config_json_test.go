package core

import (
	"encoding/json"
	"errors"
	"testing"

	"cad/internal/mts"
)

func TestParseRCMode(t *testing.T) {
	cases := []struct {
		in      string
		want    RCMode
		wantErr bool
	}{
		{"sliding", RCSliding, false},
		{"", RCSliding, false},
		{"cumulative", RCCumulative, false},
		{"exponential", RCExponential, false},
		{"Sliding", 0, true},
		{"ewma", 0, true},
	}
	for _, c := range cases {
		got, err := ParseRCMode(c.in)
		if c.wantErr {
			if !errors.Is(err, ErrBadConfig) {
				t.Errorf("ParseRCMode(%q) err = %v, want ErrBadConfig", c.in, err)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseRCMode(%q) = %v, %v, want %v", c.in, got, err, c.want)
		}
	}
	// Every mode's String must parse back to itself.
	for _, m := range []RCMode{RCSliding, RCCumulative, RCExponential} {
		back, err := ParseRCMode(m.String())
		if err != nil || back != m {
			t.Errorf("ParseRCMode(%v.String()) = %v, %v", m, back, err)
		}
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig(26, 10000)},
		{"zero", Config{}},
		{"cumulative", Config{
			Window: mts.Windowing{W: 200, S: 4}, K: 10, Tau: 0.5, Theta: 0.3,
			Eta: 3, RCMode: RCCumulative,
		}},
		{"exponential-approx", Config{
			Window: mts.Windowing{W: 64, S: 8}, K: 7, Tau: 0.45, Theta: 0.25,
			Eta: 2.5, SigmaFloor: 0.75, MinHistory: 12, HistoryHorizon: 100,
			RCMode: RCExponential, RCAlpha: 0.2,
			ApproxTSG: true, ApproxSeed: 42,
		}},
		{"ablation", Config{
			Window: mts.Windowing{W: 30, S: 3}, K: 3, Tau: 0.4, Theta: 0.2,
			Eta: 3, DisableVariationRule: true, FixedXi: 2,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			buf, err := json.Marshal(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			var back Config
			if err := json.Unmarshal(buf, &back); err != nil {
				t.Fatalf("unmarshal %s: %v", buf, err)
			}
			if back != c.cfg {
				t.Errorf("round trip lost state:\n got %+v\nwant %+v\nwire %s", back, c.cfg, buf)
			}
		})
	}
}

func TestConfigJSONWireFormat(t *testing.T) {
	cfg := Config{Window: mts.Windowing{W: 200, S: 4}, K: 10, Tau: 0.5, RCMode: RCCumulative}
	buf, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["rcMode"] != "cumulative" {
		t.Errorf("rcMode travels as %v, want the string name", raw["rcMode"])
	}
	win, ok := raw["window"].(map[string]any)
	if !ok || win["w"] != float64(200) || win["s"] != float64(4) {
		t.Errorf("window = %v", raw["window"])
	}
	// Every field is always emitted, so documents are self-describing.
	for _, key := range []string{"k", "tau", "theta", "eta", "sigmaFloor", "minHistory",
		"historyHorizon", "rcHorizon", "rcAlpha", "approxTSG", "approxSeed",
		"disableVariationRule", "fixedXi"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("wire format missing %q: %s", key, buf)
		}
	}
}

func TestConfigJSONErrors(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"unknown-top-level", `{"k":3,"typo":1}`},
		{"unknown-in-window", `{"window":{"w":30,"s":3,"x":1}}`},
		{"bad-mode", `{"rcMode":"ewma"}`},
		{"wrong-type", `{"k":"three"}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var cfg Config
			if err := json.Unmarshal([]byte(c.doc), &cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("Unmarshal(%s) = %v, want ErrBadConfig", c.doc, err)
			}
		})
	}
	// Absent fields keep their zero value rather than erroring; validation
	// is Config.Validate's job.
	var cfg Config
	if err := json.Unmarshal([]byte(`{}`), &cfg); err != nil {
		t.Errorf("empty document = %v", err)
	}
	if cfg != (Config{}) {
		t.Errorf("empty document produced %+v", cfg)
	}
}
