package stats

import (
	"math"
	"math/rand"
	"testing"
)

// windowRows returns the current window (last w columns of cols) as rows,
// the layout PearsonMatrix takes.
func windowRows(cols [][]float64, n, w int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, w)
	}
	start := len(cols) - w
	for t := 0; t < w; t++ {
		for i := 0; i < n; i++ {
			rows[i][t] = cols[start+t][i]
		}
	}
	return rows
}

func maxAbsDiff(a, b [][]float64) float64 {
	var m float64
	for i := range a {
		for j := range a[i] {
			if d := math.Abs(a[i][j] - b[i][j]); d > m {
				m = d
			}
		}
	}
	return m
}

func TestSlidingCorrMatchesPearsonMatrix(t *testing.T) {
	const (
		n, w   = 7, 24
		steps  = 300
		maxErr = 1e-9
	)
	rng := rand.New(rand.NewSource(42))
	c := NewSlidingCorr(n, w)
	var cols [][]float64
	newCol := func() []float64 {
		col := make([]float64, n)
		for i := range col {
			col[i] = 10*rng.NormFloat64() + float64(i)
		}
		// Sensor 3 is constant throughout; sensor 5 nearly tracks sensor 0.
		col[3] = 2.5
		col[5] = col[0] + 0.01*rng.NormFloat64()
		return col
	}
	for t := 0; t < w; t++ {
		col := newCol()
		cols = append(cols, col)
		c.Push(col)
	}
	for s := 0; s < steps; s++ {
		col := newCol()
		old := cols[len(cols)-w]
		cols = append(cols, col)
		c.Slide(col, old)

		got := c.Corr()
		want, err := PearsonMatrix(windowRows(cols, n, w))
		if err != nil {
			t.Fatalf("step %d: PearsonMatrix: %v", s, err)
		}
		if d := maxAbsDiff(got, want); d > maxErr {
			t.Fatalf("step %d: max |diff| = %g > %g", s, d, maxErr)
		}
		for j := 0; j < n; j++ {
			if got[3][j] != 0 || got[j][3] != 0 {
				t.Fatalf("step %d: constant sensor row/col not zeroed at j=%d", s, j)
			}
		}
	}
}

func TestSlidingCorrRefreshDiscardsDrift(t *testing.T) {
	const n, w = 4, 16
	rng := rand.New(rand.NewSource(7))
	c := NewSlidingCorr(n, w)
	var cols [][]float64
	for t := 0; t < w+200; t++ {
		col := make([]float64, n)
		for i := range col {
			col[i] = 1e6 + rng.NormFloat64() // large offset stresses cancellation
		}
		cols = append(cols, col)
		if t < w {
			c.Push(col)
		} else {
			c.Slide(col, cols[t-w])
		}
	}
	rows := windowRows(cols, n, w)
	c.Refresh(rows)
	got := c.Corr()
	want, err := PearsonMatrix(rows)
	if err != nil {
		t.Fatal(err)
	}
	// After an exact refresh the two formulations differ only by the
	// one-pass vs two-pass evaluation of the same window, not by drift.
	if d := maxAbsDiff(got, want); d > 1e-6 {
		t.Fatalf("post-refresh max |diff| = %g", d)
	}
	if c.Count() != w {
		t.Fatalf("Count() = %d, want %d", c.Count(), w)
	}
}

func TestSlidingCorrPartialWindow(t *testing.T) {
	const n, w = 3, 10
	c := NewSlidingCorr(n, w)
	cols := [][]float64{
		{1, 2, 5}, {2, 4, 5}, {3, 5, 5}, {4, 9, 5},
	}
	for _, col := range cols {
		c.Push(col)
	}
	if c.Count() != len(cols) {
		t.Fatalf("Count() = %d, want %d", c.Count(), len(cols))
	}
	got := c.Corr()
	want, err := PearsonMatrix(windowRows(cols, n, len(cols)))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("partial-window max |diff| = %g", d)
	}
}

func TestSlidingCorrStateRoundTrip(t *testing.T) {
	const n, w = 5, 12
	rng := rand.New(rand.NewSource(11))
	c := NewSlidingCorr(n, w)
	var cols [][]float64
	for t := 0; t < w+30; t++ {
		col := make([]float64, n)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		cols = append(cols, col)
		if t < w {
			c.Push(col)
		} else {
			c.Slide(col, cols[t-w])
		}
	}
	ref, sx, sxy, count := c.State()
	refCopy := append([]float64(nil), ref...)
	sxCopy := append([]float64(nil), sx...)
	sxyCopy := append([]float64(nil), sxy...)

	d := NewSlidingCorr(n, w)
	if !d.SetState(refCopy, sxCopy, sxyCopy, count) {
		t.Fatal("SetState rejected matching shapes")
	}
	a, b := c.Corr(), d.Corr()
	if diff := maxAbsDiff(a, b); diff != 0 {
		t.Fatalf("restored accumulator diverges: %g", diff)
	}
	if d.SetState(refCopy, sxCopy[:n-1], sxyCopy, count) {
		t.Fatal("SetState accepted wrong sx length")
	}
	if d.SetState(refCopy, sxCopy, sxyCopy, w+1) {
		t.Fatal("SetState accepted count > window")
	}
}
