package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{nil, math.NaN()},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := SampleVariance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7.0)
	}
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of single value should be NaN")
	}
}

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	got, err := Covariance(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Covariance = %v, want 2.5", got)
	}
	if _, err := Covariance(xs, ys[:2]); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := Covariance(nil, nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	xs := []float64{3, 3, 3, 3}
	ys := []float64{1, 2, 3, 4}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("constant series correlation = %v, want 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := Pearson(nil, nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

// Property: Pearson is symmetric, bounded in [-1,1], and invariant under
// positive affine transforms.
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(64)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		a, _ := Pearson(xs, ys)
		b, _ := Pearson(ys, xs)
		if !almostEq(a, b, 1e-9) {
			return false
		}
		if a < -1 || a > 1 {
			return false
		}
		// Positive affine transform of xs must not change r.
		scaled := make([]float64, n)
		for i, x := range xs {
			scaled[i] = 3.7*x + 11
		}
		c, _ := Pearson(scaled, ys)
		return almostEq(a, c, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPearsonMatrix(t *testing.T) {
	rows := [][]float64{
		{1, 2, 3, 4, 5},
		{2, 4, 6, 8, 10},  // perfectly correlated with row 0
		{5, 4, 3, 2, 1},   // perfectly anti-correlated
		{7, 7, 7, 7, 7},   // constant
		{1, -1, 1, -1, 1}, // oscillating
	}
	m, err := PearsonMatrix(rows)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m[0][1], 1, 1e-9) || !almostEq(m[0][2], -1, 1e-9) {
		t.Errorf("unexpected correlations: %v", m[0])
	}
	for j := range rows {
		if m[3][j] != 0 || m[j][3] != 0 {
			t.Errorf("constant row must have zero correlation, got m[3][%d]=%v", j, m[3][j])
		}
	}
	// Cross-check every entry against the scalar Pearson.
	for i := range rows {
		for j := range rows {
			want, _ := Pearson(rows[i], rows[j])
			if i == j && i != 3 {
				want = 1
			}
			if !almostEq(m[i][j], want, 1e-9) {
				t.Errorf("m[%d][%d] = %v, want %v", i, j, m[i][j], want)
			}
		}
	}
}

func TestPearsonMatrixErrors(t *testing.T) {
	if _, err := PearsonMatrix(nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if _, err := PearsonMatrix([][]float64{{1, 2}, {1}}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
}

// Property: PearsonMatrix is symmetric with unit (or zero) diagonal.
func TestPearsonMatrixProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		w := 4 + rng.Intn(16)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, w)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		m, err := PearsonMatrix(rows)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !almostEq(m[i][i], 1, 1e-9) {
				return false
			}
			for j := 0; j < n; j++ {
				if !almostEq(m[i][j], m[j][i], 1e-9) || m[i][j] < -1 || m[i][j] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Period-4 square-ish wave: ACF should peak at lag 4.
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 4)
	}
	acf := Autocorrelation(xs, 10)
	if !almostEq(acf[0], 1, 1e-9) {
		t.Errorf("acf[0] = %v, want 1", acf[0])
	}
	if acf[4] < 0.8 {
		t.Errorf("acf[4] = %v, want strong peak", acf[4])
	}
	if acf[2] > -0.5 {
		t.Errorf("acf[2] = %v, want strong trough", acf[2])
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	acf := Autocorrelation([]float64{5, 5, 5, 5}, 2)
	for i, v := range acf {
		if v != 0 {
			t.Errorf("constant ACF lag %d = %v, want 0", i, v)
		}
	}
}

func TestDominantPeriod(t *testing.T) {
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	if got := DominantPeriod(xs, 2, 64, 0.2, 10); got != 16 {
		t.Errorf("DominantPeriod = %d, want 16", got)
	}
	flat := make([]float64, 64)
	if got := DominantPeriod(flat, 2, 32, 0.2, 7); got != 7 {
		t.Errorf("DominantPeriod fallback = %d, want 7", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	// Quantile must not modify input.
	if xs[0] != 3 {
		t.Error("Quantile modified its input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax of empty should be (NaN, NaN)")
	}
}

func TestZNormalize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := ZNormalize(xs)
	if !almostEq(Mean(z), 0, 1e-12) {
		t.Errorf("normalized mean = %v, want 0", Mean(z))
	}
	if !almostEq(StdDev(z), 1, 1e-12) {
		t.Errorf("normalized std = %v, want 1", StdDev(z))
	}
	flat := ZNormalize([]float64{2, 2, 2})
	for _, v := range flat {
		if v != 0 {
			t.Errorf("constant normalizes to zeros, got %v", flat)
		}
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		r.Add(xs[i])
	}
	if r.N() != len(xs) {
		t.Errorf("N = %d, want %d", r.N(), len(xs))
	}
	if !almostEq(r.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %v != batch %v", r.Mean(), Mean(xs))
	}
	if !almostEq(r.Variance(), Variance(xs), 1e-9) {
		t.Errorf("running variance %v != batch %v", r.Variance(), Variance(xs))
	}
	r.Reset()
	if r.N() != 0 || !math.IsNaN(r.Mean()) {
		t.Error("Reset did not clear state")
	}
}

func BenchmarkPearsonMatrix100x200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = make([]float64, 200)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PearsonMatrix(rows); err != nil {
			b.Fatal(err)
		}
	}
}
