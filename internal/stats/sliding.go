package stats

import "math"

// slidingConstEps is the relative threshold below which a sensor's summed
// variance is treated as zero. Maintaining variances as w·Σx² − (Σx)² leaves
// ulp-sized residue on constant rows (the exact cancellation PearsonMatrix
// gets from centering first), so constancy is decided against the magnitude
// of the terms being cancelled rather than against absolute zero.
const slidingConstEps = 1e-12

// SlidingCorr maintains the pairwise Pearson correlation matrix of n sensors
// over a sliding window of up to w columns with O(n²) work per column — the
// rank-one alternative to recomputing PearsonMatrix at O(n²·w) per round.
// It keeps running sums Σd per sensor and Σd_i·d_j per sensor pair of the
// deviations d = x − ref, where ref is a fixed per-sensor reference value
// (Pearson correlation is shift-invariant, and shifting defeats the
// catastrophic cancellation a raw-sum formulation suffers on data with a
// large offset). Correlations are derived on demand in Corr.
//
// Floating-point drift accumulates in the sums as columns slide through, at
// roughly one ulp per update. Callers bound it by calling Refresh
// periodically (the Streamer refreshes every Config.RefreshEvery rounds),
// which recomputes the sums exactly and re-anchors ref to the current
// window; between refreshes the derived correlations stay within ~1e-12 of
// the exact two-pass values, comfortably inside the 1e-9 contract the
// incremental detection path tests against.
//
// A SlidingCorr is not safe for concurrent use.
type SlidingCorr struct {
	n, w  int
	count int       // columns currently summed (≤ w)
	ref   []float64 // per-sensor shift, anchored at first Push and each Refresh
	sx    []float64 // Σ (x_i − ref_i) per sensor
	sxy   []float64 // Σ d_i·d_j, n×n row-major, upper triangle incl. diagonal
	// corr is the materialized matrix Corr returns, reused across calls.
	corr  [][]float64
	cells []float64
	inv   []float64 // scratch: 1/√(count·Σd² − (Σd)²) per sensor, 0 if constant
	dev   []float64 // scratch: one column of deviations
	dev2  []float64
}

// NewSlidingCorr returns an empty accumulator for n sensors and window w.
func NewSlidingCorr(n, w int) *SlidingCorr {
	c := &SlidingCorr{
		n:     n,
		w:     w,
		ref:   make([]float64, n),
		sx:    make([]float64, n),
		sxy:   make([]float64, n*n),
		corr:  make([][]float64, n),
		cells: make([]float64, n*n),
		inv:   make([]float64, n),
		dev:   make([]float64, n),
		dev2:  make([]float64, n),
	}
	for i := range c.corr {
		c.corr[i] = c.cells[i*n : (i+1)*n]
	}
	return c
}

// Sensors returns n.
func (c *SlidingCorr) Sensors() int { return c.n }

// Window returns the configured window length w.
func (c *SlidingCorr) Window() int { return c.w }

// Count returns the number of columns currently contributing to the sums.
func (c *SlidingCorr) Count() int { return c.count }

// Push adds one column while the window is still filling (Count < Window).
// Once full, use Slide instead so the oldest column leaves as the new one
// enters. The very first column becomes the shift reference.
func (c *SlidingCorr) Push(col []float64) {
	n := c.n
	if c.count == 0 {
		copy(c.ref, col)
	}
	d := c.dev
	for i := 0; i < n; i++ {
		d[i] = col[i] - c.ref[i]
	}
	for i := 0; i < n; i++ {
		di := d[i]
		c.sx[i] += di
		row := c.sxy[i*n:]
		for j := i; j < n; j++ {
			row[j] += di * d[j]
		}
	}
	if c.count < c.w {
		c.count++
	}
}

// Slide applies one rank-one window step: newCol enters the window, oldCol
// (the evicted column, in the same sensor order) leaves it. The window must
// be full.
func (c *SlidingCorr) Slide(newCol, oldCol []float64) {
	n := c.n
	dn, do := c.dev, c.dev2
	for i := 0; i < n; i++ {
		dn[i] = newCol[i] - c.ref[i]
		do[i] = oldCol[i] - c.ref[i]
	}
	for i := 0; i < n; i++ {
		ni, oi := dn[i], do[i]
		c.sx[i] += ni - oi
		row := c.sxy[i*n:]
		for j := i; j < n; j++ {
			row[j] += ni*dn[j] - oi*do[j]
		}
	}
}

// Refresh recomputes the sums exactly from the window's current rows,
// discarding any drift the incremental updates accumulated, and re-anchors
// the shift reference to the window's first column. rows[i] must be sensor
// i's current window values in time order.
func (c *SlidingCorr) Refresh(rows [][]float64) {
	n := c.n
	c.count = 0
	if n > 0 {
		c.count = len(rows[0])
	}
	for i := 0; i < n; i++ {
		if len(rows[i]) > 0 {
			c.ref[i] = rows[i][0]
		} else {
			c.ref[i] = 0
		}
	}
	for i := 0; i < n; i++ {
		ri, refI := rows[i], c.ref[i]
		var s float64
		for _, x := range ri {
			s += x - refI
		}
		c.sx[i] = s
		row := c.sxy[i*n:]
		for j := i; j < n; j++ {
			rj, refJ := rows[j], c.ref[j]
			var dot float64
			for t := range ri {
				dot += (ri[t] - refI) * (rj[t] - refJ)
			}
			row[j] = dot
		}
	}
}

// Corr derives the Pearson correlation matrix from the current sums, with
// the same conventions as PearsonMatrix: entries are clamped to [-1, 1],
// constant (zero-variance) rows are all zero including the diagonal, and
// every other diagonal entry is 1. The returned matrix is owned by the
// accumulator and overwritten by the next call.
func (c *SlidingCorr) Corr() [][]float64 {
	n := c.n
	w := float64(c.count)
	for i := 0; i < n; i++ {
		ss := c.sxy[i*n+i]
		v := w*ss - c.sx[i]*c.sx[i]
		// Relative constancy test: v is the difference of the two
		// magnitude terms, so residue ~ulp·scale means a constant row.
		if scale := w*ss + c.sx[i]*c.sx[i]; v <= slidingConstEps*scale {
			c.inv[i] = 0
		} else {
			c.inv[i] = 1 / math.Sqrt(v)
		}
	}
	for i := 0; i < n; i++ {
		ci := c.corr[i]
		if c.inv[i] == 0 {
			for j := range ci {
				ci[j] = 0
				c.corr[j][i] = 0
			}
			continue
		}
		ci[i] = 1
		for j := i + 1; j < n; j++ {
			var r float64
			if c.inv[j] != 0 {
				r = (w*c.sxy[i*n+j] - c.sx[i]*c.sx[j]) * c.inv[i] * c.inv[j]
				if r > 1 {
					r = 1
				} else if r < -1 {
					r = -1
				}
			}
			ci[j] = r
			c.corr[j][i] = r
		}
	}
	return c.corr
}

// State exposes the accumulator's internals for persistence: the shift
// reference, the per-sensor deviation sums, the pair-sum triangle, and the
// column count. The returned slices alias internal storage; callers must
// copy or encode them before mutating the accumulator.
func (c *SlidingCorr) State() (ref, sx, sxy []float64, count int) {
	return c.ref, c.sx, c.sxy, c.count
}

// SetState restores the accumulator from persisted internals. It reports
// whether the slice shapes matched; on false the accumulator is unchanged.
func (c *SlidingCorr) SetState(ref, sx, sxy []float64, count int) bool {
	if len(ref) != c.n || len(sx) != c.n || len(sxy) != c.n*c.n || count < 0 || count > c.w {
		return false
	}
	copy(c.ref, ref)
	copy(c.sx, sx)
	copy(c.sxy, sxy)
	c.count = count
	return true
}
