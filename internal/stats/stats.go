// Package stats provides the descriptive statistics and correlation
// primitives used throughout the CAD pipeline: means, variances, Pearson
// correlation, autocorrelation, covariance, quantiles, and running
// (streaming) moment estimators.
//
// All functions operate on float64 slices and are deterministic. NaN inputs
// propagate NaN outputs unless documented otherwise.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned when paired-series functions receive slices
// of different lengths.
var ErrLengthMismatch = errors.New("stats: series length mismatch")

// ErrEmpty is returned when an operation requires at least one observation.
var ErrEmpty = errors.New("stats: empty series")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// It returns NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (dividing by n-1).
// It returns NaN when len(xs) < 2.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Covariance returns the population covariance of xs and ys.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)), nil
}

// Pearson returns the Pearson correlation coefficient of xs and ys in
// [-1, 1]. If either series is constant (zero variance) the correlation is
// undefined and 0 is returned, which is the convention the CAD TSG builder
// relies on: a constant sensor correlates with nothing.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard against floating point drift outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r, nil
}

// PearsonMatrix computes the full pairwise Pearson correlation matrix of the
// given rows (each row is one series). Entry [i][j] is Pearson(rows[i],
// rows[j]); the diagonal is 1 except for constant rows, which get 0 against
// everything including themselves.
//
// The computation standardizes each row once and then uses dot products,
// costing O(n²·w) for n rows of length w.
func PearsonMatrix(rows [][]float64) ([][]float64, error) {
	n := len(rows)
	if n == 0 {
		return nil, ErrEmpty
	}
	w := len(rows[0])
	for _, r := range rows {
		if len(r) != w {
			return nil, ErrLengthMismatch
		}
	}
	// Standardize: z[i] = (x - mean) / ||x - mean||.
	z := make([][]float64, n)
	constant := make([]bool, n)
	buf := make([]float64, n*w)
	for i, r := range rows {
		zi := buf[i*w : (i+1)*w]
		m := Mean(r)
		var ss float64
		for j, x := range r {
			d := x - m
			zi[j] = d
			ss += d * d
		}
		if ss == 0 {
			constant[i] = true
		} else {
			inv := 1 / math.Sqrt(ss)
			for j := range zi {
				zi[j] *= inv
			}
		}
		z[i] = zi
	}
	out := make([][]float64, n)
	cells := make([]float64, n*n)
	for i := range out {
		out[i] = cells[i*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		if constant[i] {
			continue // row stays all zero
		}
		out[i][i] = 1
		zi := z[i]
		for j := i + 1; j < n; j++ {
			if constant[j] {
				continue
			}
			var dot float64
			zj := z[j]
			for t := 0; t < w; t++ {
				dot += zi[t] * zj[t]
			}
			if dot > 1 {
				dot = 1
			} else if dot < -1 {
				dot = -1
			}
			out[i][j] = dot
			out[j][i] = dot
		}
	}
	return out, nil
}

// Autocorrelation returns the autocorrelation function of xs for lags
// 0..maxLag inclusive. Lag 0 is always 1 (or 0 for constant series).
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	m := Mean(xs)
	var denom float64
	d := make([]float64, n)
	for i, x := range xs {
		d[i] = x - m
		denom += d[i] * d[i]
	}
	acf := make([]float64, maxLag+1)
	if denom == 0 {
		return acf
	}
	for lag := 0; lag <= maxLag; lag++ {
		var num float64
		for i := 0; i+lag < n; i++ {
			num += d[i] * d[i+lag]
		}
		acf[lag] = num / denom
	}
	return acf
}

// DominantPeriod estimates the dominant period of xs from the first local
// maximum of the autocorrelation function above the given threshold,
// searching lags in [minLag, maxLag]. It returns fallback when no peak is
// found. This mirrors the ACF-based pattern length estimation the paper uses
// to configure SAND and NormA.
func DominantPeriod(xs []float64, minLag, maxLag int, threshold float64, fallback int) int {
	if minLag < 1 {
		minLag = 1
	}
	acf := Autocorrelation(xs, maxLag)
	if len(acf) == 0 {
		return fallback
	}
	best, bestLag := threshold, 0
	for lag := minLag; lag < len(acf)-1; lag++ {
		if acf[lag] > best && acf[lag] >= acf[lag-1] && acf[lag] >= acf[lag+1] {
			best, bestLag = acf[lag], lag
		}
	}
	if bestLag == 0 {
		return fallback
	}
	return bestLag
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the minimum and maximum of xs. It returns (NaN, NaN) for
// empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// ZNormalize returns a z-normalized copy of xs ((x-mean)/std). Constant
// series normalize to all zeros.
func ZNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 || math.IsNaN(sd) {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// Running maintains streaming mean and variance via Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations added.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (NaN when empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the running population variance (NaN when empty).
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Reset clears the estimator back to its zero state.
func (r *Running) Reset() { *r = Running{} }

// State exposes the estimator's internals (count, mean, M2 sum of squared
// deviations) for persistence.
func (r *Running) State() (n int, mean, m2 float64) { return r.n, r.mean, r.m2 }

// SetState restores the estimator from persisted internals.
func (r *Running) SetState(n int, mean, m2 float64) { r.n, r.mean, r.m2 = n, mean, m2 }
