// Package wal implements a checksummed, segmented write-ahead log. The
// manager keeps one log per stream and appends every ingested column to it
// before the column touches detector state, so a crash loses at most the
// records that never finished reaching the disk.
//
// On-disk layout: a log is a directory of fixed-name segments
// (00000001.wal, 00000002.wal, …) written strictly in order. Each record
// is framed as
//
//	uint32  payload length (little endian)
//	uint32  CRC32-C of the payload
//	payload = uint64 sequence number | int64 unix-nano timestamp | data
//
// A crash can only tear the final frame of the final segment; Open detects
// the torn tail (short frame, impossible length, or checksum mismatch),
// truncates the segment back to its last whole record, and discards any
// segments after the damage, so the log always reopens into a valid prefix
// of what was appended. Appends rotate to a new segment once the current
// one exceeds the configured size, keeping truncation scans and retained
// files bounded.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"cad/internal/faultfs"
)

// SyncPolicy picks when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — no acknowledged record is
	// ever lost, at one fsync per column.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per interval; a crash can lose the
	// records appended since the last sync.
	SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever
)

const (
	// headerSize frames every record: length + CRC32-C.
	headerSize = 8
	// metaSize prefixes every payload: sequence number + timestamp.
	metaSize = 16
	// maxRecordBytes bounds a single payload; larger length fields are
	// treated as corruption rather than allocated.
	maxRecordBytes = 1 << 26
	// DefaultSegmentBytes is the rotation threshold when none is given.
	DefaultSegmentBytes = 1 << 20

	segSuffix = ".wal"
)

// ErrClosed reports an append to a closed log.
var ErrClosed = errors.New("wal: log closed")

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one appended entry, returned in order by Replay.
type Record struct {
	// Seq is the caller-assigned, strictly increasing sequence number.
	Seq uint64
	// Time is the wall-clock instant recorded at append.
	Time time.Time
	// Data is the caller payload.
	Data []byte
}

// Options configures a log.
type Options struct {
	// FS is the filesystem seam; nil means the real OS.
	FS faultfs.FS
	// SegmentBytes rotates segments once they exceed this size
	// (≤ 0 means DefaultSegmentBytes).
	SegmentBytes int64
	// Sync picks the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the maximum fsync spacing under SyncInterval
	// (≤ 0 means 100ms).
	SyncInterval time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Log is a segmented append-only record log. Not safe for concurrent use;
// the manager serializes access under each stream's lock.
type Log struct {
	dir string
	fs  faultfs.FS
	opt Options
	now func() time.Time

	f        faultfs.File // current segment, nil once closed
	segIdx   int          // current segment number (1-based)
	segSize  int64
	segments []int // existing segment numbers in order, including segIdx
	lastSeq  uint64
	lastSync time.Time
	dirty    bool // unsynced appends outstanding
}

// segName renders the fixed-width segment file name for index i.
func segName(i int) string { return fmt.Sprintf("%08d%s", i, segSuffix) }

// segIndex parses a segment file name, reporting whether it is one.
func segIndex(name string) (int, bool) {
	base, ok := strings.CutSuffix(name, segSuffix)
	if !ok || len(base) != 8 {
		return 0, false
	}
	i, err := strconv.Atoi(base)
	if err != nil || i < 1 {
		return 0, false
	}
	return i, true
}

// Open scans dir (creating it if needed), repairs any torn tail, and
// returns a log positioned to append after the last whole record. Records
// written before the damage are preserved; the torn frame and anything
// after it are discarded.
func Open(dir string, o Options) (*Log, error) {
	if o.FS == nil {
		o.FS = faultfs.OS()
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	now := o.Now
	if now == nil {
		now = time.Now
	}
	if err := o.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, fs: o.FS, opt: o, now: now}
	if err := l.scan(); err != nil {
		return nil, err
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	return l, nil
}

// listSegments returns the segment numbers present in the directory, in
// order.
func listSegments(fsys faultfs.FS, dir string) ([]int, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan %s: %w", dir, err)
	}
	var segs []int
	for _, e := range entries {
		if i, ok := segIndex(e.Name()); ok {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// scan validates every segment in order, truncating at the first invalid
// frame and deleting any segments past it, and records where appends
// resume.
func (l *Log) scan() error {
	segs, err := listSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		l.segIdx = 1
		l.segments = []int{1}
		return nil
	}
	for i, seg := range segs {
		path := filepath.Join(l.dir, segName(seg))
		raw, err := l.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: scan %s: %w", path, err)
		}
		valid, lastSeq, _ := validPrefix(raw)
		if lastSeq != 0 {
			l.lastSeq = lastSeq
		}
		if valid == int64(len(raw)) {
			l.segIdx = seg
			l.segSize = valid
			continue
		}
		// Torn or corrupt frame: keep the whole-record prefix, drop the
		// rest of this segment and every later one.
		if err := l.fs.Truncate(path, valid); err != nil {
			return fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		for _, later := range segs[i+1:] {
			if err := l.fs.Remove(filepath.Join(l.dir, segName(later))); err != nil {
				return fmt.Errorf("wal: drop segment after torn tail: %w", err)
			}
		}
		l.segIdx = seg
		l.segSize = valid
		segs = segs[:i+1]
		break
	}
	l.segments = segs
	return nil
}

// validPrefix walks raw frame by frame and returns the byte length of the
// longest prefix of whole, checksum-valid records, the last record's
// sequence number (0 when none), and the record count.
func validPrefix(raw []byte) (n int64, lastSeq uint64, count int) {
	off := 0
	for {
		if len(raw)-off < headerSize {
			return int64(off), lastSeq, count
		}
		size := binary.LittleEndian.Uint32(raw[off:])
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		if size < metaSize || size > maxRecordBytes || len(raw)-off-headerSize < int(size) {
			return int64(off), lastSeq, count
		}
		payload := raw[off+headerSize : off+headerSize+int(size)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return int64(off), lastSeq, count
		}
		lastSeq = binary.LittleEndian.Uint64(payload)
		count++
		off += headerSize + int(size)
	}
}

// openSegment opens the current segment for appending.
func (l *Log) openSegment() error {
	path := filepath.Join(l.dir, segName(l.segIdx))
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", path, err)
	}
	l.f = f
	return nil
}

// LastSeq returns the sequence number of the last record on disk (0 when
// the log is empty).
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Append frames data under seq and t, writes it to the current segment,
// and applies the sync policy. The record is durable once Append returns
// under SyncAlways; weaker policies trade the tail for fewer fsyncs.
func (l *Log) Append(seq uint64, t time.Time, data []byte) error {
	if l.f == nil {
		return ErrClosed
	}
	payload := make([]byte, metaSize+len(data))
	binary.LittleEndian.PutUint64(payload, seq)
	binary.LittleEndian.PutUint64(payload[8:], uint64(t.UnixNano()))
	copy(payload[metaSize:], data)
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[headerSize:], payload)
	// One Write call per frame: a crash mid-call tears at most this record.
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += int64(len(frame))
	l.lastSeq = seq
	l.dirty = true
	if err := l.maybeSync(); err != nil {
		return err
	}
	if l.segSize >= l.opt.SegmentBytes {
		return l.rotate()
	}
	return nil
}

// maybeSync applies the sync policy after an append.
func (l *Log) maybeSync() error {
	switch l.opt.Sync {
	case SyncAlways:
		return l.sync()
	case SyncInterval:
		if now := l.now(); now.Sub(l.lastSync) >= l.opt.SyncInterval {
			return l.sync()
		}
	}
	return nil
}

func (l *Log) sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.lastSync = l.now()
	l.dirty = false
	return nil
}

// Sync forces outstanding appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	if l.f == nil {
		return ErrClosed
	}
	if !l.dirty {
		return nil
	}
	return l.sync()
}

// rotate seals the current segment and starts the next one.
func (l *Log) rotate() error {
	if l.dirty && l.opt.Sync != SyncNever {
		if err := l.sync(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.segIdx++
	l.segSize = 0
	l.segments = append(l.segments, l.segIdx)
	return l.openSegment()
}

// Replay streams every record on disk, oldest first, to fn. Call it after
// Open and before any Append; fn errors abort the replay.
func (l *Log) Replay(fn func(Record) error) error {
	for _, seg := range l.segments {
		raw, err := l.fs.ReadFile(filepath.Join(l.dir, segName(seg)))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // fresh segment not yet created by an append
			}
			return fmt.Errorf("wal: replay: %w", err)
		}
		off := 0
		for len(raw)-off >= headerSize {
			size := int(binary.LittleEndian.Uint32(raw[off:]))
			payload := raw[off+headerSize : off+headerSize+size]
			rec := Record{
				Seq:  binary.LittleEndian.Uint64(payload),
				Time: time.Unix(0, int64(binary.LittleEndian.Uint64(payload[8:]))),
				Data: payload[metaSize:],
			}
			if err := fn(rec); err != nil {
				return err
			}
			off += headerSize + size
		}
	}
	return nil
}

// Reset discards every record — used after the covered state has been
// checkpointed into a snapshot — and starts an empty segment. The last
// sequence number is retained so appends continue the stream's numbering.
func (l *Log) Reset() error {
	if l.f == nil {
		return ErrClosed
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.f = nil
	for _, seg := range l.segments {
		if err := l.fs.Remove(filepath.Join(l.dir, segName(seg))); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	l.segIdx = 1
	l.segSize = 0
	l.segments = []int{1}
	l.dirty = false
	return l.openSegment()
}

// Close flushes (unless the policy is SyncNever) and closes the log.
// Further appends fail with ErrClosed.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	if l.dirty && l.opt.Sync != SyncNever {
		if err := l.sync(); err != nil {
			l.f.Close()
			l.f = nil
			return err
		}
	}
	err := l.f.Close()
	l.f = nil
	return err
}
