package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cad/internal/faultfs"
)

// fakeClock hands out strictly increasing instants so interval-sync tests
// are deterministic.
func fakeClock() func() time.Time {
	n := int64(0)
	return func() time.Time {
		n++
		return time.Unix(0, n)
	}
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	err := l.Replay(func(r Record) error {
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		r.Data = data
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := l.Append(uint64(i), time.Unix(0, int64(100+i)), []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	recs := collect(t, l2)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for i, r := range recs {
		want := Record{Seq: uint64(i + 1), Time: time.Unix(0, int64(101+i)), Data: []byte(fmt.Sprintf("rec-%d", i+1))}
		if r.Seq != want.Seq || !r.Time.Equal(want.Time) || !bytes.Equal(r.Data, want.Data) {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
	}
	// Appends after a reopen continue the numbering on the same files.
	if err := l2.Append(6, time.Unix(0, 200), []byte("rec-6")); err != nil {
		t.Fatal(err)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record overflows the threshold and rotates.
	l, err := Open(dir, Options{SegmentBytes: 1, Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(uint64(i), time.Unix(0, int64(i)), []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Three sealed segments plus the empty one rotation opened for the
	// next append.
	if len(entries) != 4 {
		t.Fatalf("%d segments on disk, want 4", len(entries))
	}
	l2, err := Open(dir, Options{SegmentBytes: 1, Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := collect(t, l2); len(recs) != 3 || recs[2].Seq != 3 {
		t.Fatalf("replay across segments = %+v", recs)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	fault := faultfs.New(faultfs.OS())
	l, err := Open(dir, Options{FS: fault, Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	frameSize := int64(headerSize + metaSize + len(payload))
	for i := 1; i <= 3; i++ {
		if err := l.Append(uint64(i), time.Unix(0, int64(i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Crash 5 bytes into the 4th record's frame.
	fault.CrashAfterBytes(5)
	if err := l.Append(4, time.Unix(0, 4), payload); err == nil {
		t.Fatal("append through the crash point succeeded")
	}
	seg := filepath.Join(dir, segName(1))
	if fi, err := os.Stat(seg); err != nil || fi.Size() != 3*frameSize+5 {
		t.Fatalf("pre-repair segment size = %v, %v; want %d", fi.Size(), err, 3*frameSize+5)
	}

	// A restarted process reopens over the real filesystem.
	l2, err := Open(dir, Options{Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if fi, err := os.Stat(seg); err != nil || fi.Size() != 3*frameSize {
		t.Fatalf("post-repair segment size = %v, %v; want %d", fi.Size(), err, 3*frameSize)
	}
	recs := collect(t, l2)
	if len(recs) != 3 || recs[2].Seq != 3 {
		t.Fatalf("replay after torn tail = %d records (last %+v), want the 3 whole ones", len(recs), recs[len(recs)-1])
	}
	if got := l2.LastSeq(); got != 3 {
		t.Fatalf("LastSeq after repair = %d, want 3", got)
	}
}

func TestCorruptMiddleDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1, Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(uint64(i), time.Unix(0, int64(i)), []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in segment 2: its record fails the checksum, so
	// segment 2 truncates to empty and segment 3 is dropped entirely.
	seg2 := filepath.Join(dir, segName(2))
	raw, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+metaSize] ^= 0xff
	if err := os.WriteFile(seg2, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 1, Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("replay after mid-log corruption = %+v, want only record 1", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(3))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("segment 3 still present after damage in segment 2: %v", err)
	}
}

func TestResetStartsEmptyKeepsNumbering(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 4; i++ {
		if err := l.Append(uint64(i), time.Unix(0, int64(i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, l); len(recs) != 0 {
		t.Fatalf("replay after Reset = %d records, want 0", len(recs))
	}
	if got := l.LastSeq(); got != 4 {
		t.Fatalf("LastSeq after Reset = %d, want 4", got)
	}
	if err := l.Append(5, time.Unix(0, 5), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, l); len(recs) != 1 || recs[0].Seq != 5 {
		t.Fatalf("replay after post-Reset append = %+v", recs)
	}
}

func TestSyncPolicies(t *testing.T) {
	fault := faultfs.New(faultfs.OS())
	l, err := Open(t.TempDir(), Options{FS: fault, Sync: SyncAlways, Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(uint64(i), time.Unix(0, int64(i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := fault.Syncs(); got != 3 {
		t.Fatalf("SyncAlways: %d fsyncs for 3 appends, want 3", got)
	}
	l.Close()

	fault = faultfs.New(faultfs.OS())
	// The fake clock ticks 1ns per call; a huge interval means only the
	// first append (lastSync zero) syncs.
	l, err = Open(t.TempDir(), Options{FS: fault, Sync: SyncInterval, SyncInterval: time.Hour, Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(uint64(i), time.Unix(0, int64(i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := fault.Syncs(); got != 1 {
		t.Fatalf("SyncInterval: %d fsyncs, want 1", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fault.Syncs(); got != 2 {
		t.Fatalf("explicit Sync did not flush: %d", got)
	}
	l.Close()

	fault = faultfs.New(faultfs.OS())
	l, err = Open(t.TempDir(), Options{FS: fault, Sync: SyncNever, Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(uint64(i), time.Unix(0, int64(i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if got := fault.Syncs(); got != 0 {
		t.Fatalf("SyncNever: %d fsyncs, want 0", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Now: fakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, time.Unix(0, 1), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}
