package kshape

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"cad/internal/fft"
)

// twoShapeSeries builds n series: half sine-shaped, half square-shaped,
// with random phase shifts and small noise.
func twoShapeSeries(seed int64, n, l int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	series := make([][]float64, n)
	truth := make([]int, n)
	for i := range series {
		series[i] = make([]float64, l)
		shift := rng.Intn(l / 4)
		if i%2 == 0 {
			for t := 0; t < l; t++ {
				series[i][t] = math.Sin(2*math.Pi*float64(t+shift)/float64(l)) + 0.05*rng.NormFloat64()
			}
			truth[i] = 0
		} else {
			for t := 0; t < l; t++ {
				v := -1.0
				if (t+shift)%l < l/2 {
					v = 1.0
				}
				series[i][t] = v + 0.05*rng.NormFloat64()
			}
			truth[i] = 1
		}
	}
	return series, truth
}

func TestClusterTwoShapes(t *testing.T) {
	series, truth := twoShapeSeries(1, 20, 32)
	res, err := Cluster(series, 2, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 20 || len(res.Centroids) != 2 {
		t.Fatalf("result shapes: %d assigns, %d centroids", len(res.Assign), len(res.Centroids))
	}
	// Clustering must agree with the truth up to label permutation.
	agree, disagree := 0, 0
	for i := range truth {
		if res.Assign[i] == truth[i] {
			agree++
		} else {
			disagree++
		}
	}
	best := agree
	if disagree > best {
		best = disagree
	}
	if best < 18 {
		t.Errorf("only %d/20 consistent with ground truth (assign=%v)", best, res.Assign)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 20 {
		t.Errorf("sizes sum to %d", total)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, 2, 10, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty input: %v", err)
	}
	s := [][]float64{{1, 2}, {3, 4}}
	if _, err := Cluster(s, 0, 10, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := Cluster(s, 3, 10, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("k>n: %v", err)
	}
	if _, err := Cluster([][]float64{{1, 2}, {3}}, 1, 10, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("ragged: %v", err)
	}
	if _, err := Cluster([][]float64{{}}, 1, 10, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty series: %v", err)
	}
}

func TestClusterSingle(t *testing.T) {
	series, _ := twoShapeSeries(2, 6, 16)
	res, err := Cluster(series, 1, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Errorf("k=1 assignment %v", res.Assign)
		}
	}
	if res.Sizes[0] != 6 {
		t.Errorf("size %d", res.Sizes[0])
	}
}

func TestClusterDeterministicSeed(t *testing.T) {
	series, _ := twoShapeSeries(3, 16, 32)
	a, err := Cluster(series, 2, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(series, 2, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestAlignTo(t *testing.T) {
	ref := []float64{0, 0, 1, 2, 1, 0, 0, 0}
	x := []float64{1, 2, 1, 0, 0, 0, 0, 0} // ref advanced by 2
	aligned := AlignTo(ref, x)
	if d := fft.SBD(ref, aligned); d > 0.05 {
		t.Errorf("aligned SBD = %v, want ≈ 0", d)
	}
	if aligned[3] != 2 {
		t.Errorf("aligned = %v, want peak at index 3", aligned)
	}
}

func TestShapeExtractRecoverSine(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	members := make([][]float64, 10)
	l := 32
	for i := range members {
		members[i] = make([]float64, l)
		for t := 0; t < l; t++ {
			members[i][t] = math.Sin(2*math.Pi*float64(t)/float64(l)) + 0.02*rng.NormFloat64()
		}
	}
	shape := shapeExtract(members, 1)
	if len(shape) != l {
		t.Fatalf("shape length %d", len(shape))
	}
	// The extracted shape should strongly correlate with the sine.
	if d := fft.SBD(members[0], shape); d > 0.1 {
		t.Errorf("SBD(member, shape) = %v, want small", d)
	}
	if shapeExtract(nil, 1) != nil {
		t.Error("empty members should return nil")
	}
}

func BenchmarkCluster40x64(b *testing.B) {
	series, _ := twoShapeSeries(6, 40, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(series, 3, 10, 2); err != nil {
			b.Fatal(err)
		}
	}
}
