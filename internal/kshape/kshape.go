// Package kshape implements k-Shape clustering (Paparrizos & Gravano,
// SIGMOD 2015) for equal-length subsequences: assignment uses the
// shape-based distance (SBD, 1 − max normalized cross-correlation) and
// refinement extracts each cluster's shape as the dominant eigenvector of
// the centered similarity matrix of its aligned members (computed by power
// iteration). It is the clustering substrate of the SAND baseline.
package kshape

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cad/internal/fft"
	"cad/internal/stats"
)

// ErrBadInput reports invalid clustering input.
var ErrBadInput = errors.New("kshape: bad input")

// Result is the outcome of Cluster.
type Result struct {
	// Assign maps each input series to its cluster in [0, K).
	Assign []int
	// Centroids are the z-normalized cluster shapes.
	Centroids [][]float64
	// Sizes is the member count per cluster.
	Sizes []int
	// Iters is the number of refinement iterations executed.
	Iters int
}

// AlignTo returns x circularly shifted so that its cross-correlation with
// ref is maximal, padding with zeros (the k-Shape alignment step).
func AlignTo(ref, x []float64) []float64 {
	_, shift := fft.NCCMax(ref, x)
	out := make([]float64, len(x))
	for i := range x {
		j := i + shift
		if j >= 0 && j < len(out) {
			out[j] = x[i]
		}
	}
	return out
}

// shapeExtract computes the cluster shape from aligned, z-normalized
// members: the dominant eigenvector of M = Q·Sᵀ·S·Q with Q the centering
// matrix, via power iteration.
func shapeExtract(members [][]float64, seed int64) []float64 {
	m := len(members)
	if m == 0 {
		return nil
	}
	l := len(members[0])
	// S = Σ x xᵀ (ℓ×ℓ).
	s := make([][]float64, l)
	for i := range s {
		s[i] = make([]float64, l)
	}
	for _, x := range members {
		for i := 0; i < l; i++ {
			if x[i] == 0 {
				continue
			}
			for j := 0; j < l; j++ {
				s[i][j] += x[i] * x[j]
			}
		}
	}
	// M = Q S Q with Q = I − (1/ℓ)·11ᵀ. Apply centering on both sides.
	rowMean := make([]float64, l)
	var total float64
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			rowMean[i] += s[i][j]
		}
		total += rowMean[i]
		rowMean[i] /= float64(l)
	}
	total /= float64(l * l)
	colMean := make([]float64, l)
	for j := 0; j < l; j++ {
		for i := 0; i < l; i++ {
			colMean[j] += s[i][j]
		}
		colMean[j] /= float64(l)
	}
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			s[i][j] += total - rowMean[i] - colMean[j]
		}
	}
	// Power iteration for the dominant eigenvector.
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, l)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	tmp := make([]float64, l)
	for iter := 0; iter < 64; iter++ {
		for i := 0; i < l; i++ {
			var sum float64
			for j := 0; j < l; j++ {
				sum += s[i][j] * v[j]
			}
			tmp[i] = sum
		}
		var norm float64
		for _, x := range tmp {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for i := range v {
			v[i] = tmp[i] / norm
		}
	}
	// Fix sign: the shape should correlate positively with the members.
	var dot float64
	for _, x := range members {
		for i := 0; i < l; i++ {
			dot += x[i] * v[i]
		}
	}
	if dot < 0 {
		for i := range v {
			v[i] = -v[i]
		}
	}
	return stats.ZNormalize(v)
}

// Cluster partitions the z-normalized series into k shape clusters. All
// series must share one length. maxIter caps refinement passes (≤ 0 means
// 20). The seed drives the initial random assignment, making runs
// reproducible.
func Cluster(series [][]float64, k, maxIter int, seed int64) (Result, error) {
	n := len(series)
	if n == 0 {
		return Result{}, fmt.Errorf("%w: no series", ErrBadInput)
	}
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("%w: k=%d for %d series", ErrBadInput, k, n)
	}
	l := len(series[0])
	if l == 0 {
		return Result{}, fmt.Errorf("%w: empty series", ErrBadInput)
	}
	for _, s := range series {
		if len(s) != l {
			return Result{}, fmt.Errorf("%w: ragged series", ErrBadInput)
		}
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	norm := make([][]float64, n)
	for i, s := range series {
		norm[i] = stats.ZNormalize(s)
	}
	rng := rand.New(rand.NewSource(seed))
	res := Result{
		Assign:    make([]int, n),
		Centroids: make([][]float64, k),
		Sizes:     make([]int, k),
	}
	for i := range res.Assign {
		res.Assign[i] = rng.Intn(k)
	}
	for iter := 0; iter < maxIter; iter++ {
		res.Iters = iter + 1
		// Refinement: extract each cluster's shape.
		for c := 0; c < k; c++ {
			var members [][]float64
			var ref []float64
			if res.Centroids[c] != nil {
				ref = res.Centroids[c]
			}
			for i, a := range res.Assign {
				if a != c {
					continue
				}
				x := norm[i]
				if ref != nil {
					x = AlignTo(ref, x)
				}
				members = append(members, x)
			}
			if len(members) == 0 {
				// Empty cluster: reseed with a random series.
				res.Centroids[c] = append([]float64(nil), norm[rng.Intn(n)]...)
				continue
			}
			res.Centroids[c] = shapeExtract(members, seed+int64(c))
		}
		// Assignment.
		changed := false
		for i := range norm {
			best, bestD := res.Assign[i], math.Inf(1)
			for c := 0; c < k; c++ {
				d := fft.SBD(res.Centroids[c], norm[i])
				if d < bestD-1e-12 {
					best, bestD = c, d
				}
			}
			if best != res.Assign[i] {
				res.Assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	for c := range res.Sizes {
		res.Sizes[c] = 0
	}
	for _, a := range res.Assign {
		res.Sizes[a]++
	}
	return res, nil
}
