// Package fft provides a radix-2 Cooley–Tukey fast Fourier transform and
// FFT-based cross-correlation, the substrate for the shape-based distance
// (SBD) used by k-Shape clustering and the SAND baseline.
package fft

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrNotPowerOfTwo is returned by Transform for invalid lengths.
var ErrNotPowerOfTwo = errors.New("fft: length must be a power of two")

// NextPow2 returns the smallest power of two ≥ n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Transform computes the in-place FFT of x (inverse when inv is true; the
// inverse includes the 1/N scaling). len(x) must be a power of two.
func Transform(x []complex128, inv bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return ErrNotPowerOfTwo
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inv {
			ang = -ang
		}
		wBase := cmplx.Rect(1, ang)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wBase
			}
		}
	}
	if inv {
		invN := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= invN
		}
	}
	return nil
}

// Convolve returns the linear convolution of a and b (length
// len(a)+len(b)−1) via FFT.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := NextPow2(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	// Lengths are powers of two by construction; errors are impossible.
	_ = Transform(fa, false)
	_ = Transform(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	_ = Transform(fa, true)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// CrossCorrelation returns the full cross-correlation sequence CC_w(x, y)
// for shifts w = −(len(y)−1) … +(len(x)−1), indexed from 0:
// out[s] = Σ_t x[t+s−(len(y)−1)]·y[t] over valid t.
func CrossCorrelation(x, y []float64) []float64 {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	// CC(x, y)(shift) = conv(x, reverse(y)).
	ry := make([]float64, len(y))
	for i, v := range y {
		ry[len(y)-1-i] = v
	}
	return Convolve(x, ry)
}

// NCCMax returns the maximum normalized cross-correlation between x and y
// and the shift (relative, y delayed by `shift` against x) achieving it.
// Normalization is by ‖x‖·‖y‖; constant (zero-norm) inputs yield 0.
func NCCMax(x, y []float64) (ncc float64, shift int) {
	cc := CrossCorrelation(x, y)
	var nx, ny float64
	for _, v := range x {
		nx += v * v
	}
	for _, v := range y {
		ny += v * v
	}
	denom := math.Sqrt(nx * ny)
	if denom == 0 || len(cc) == 0 {
		return 0, 0
	}
	best, bestIdx := math.Inf(-1), 0
	for i, v := range cc {
		if v > best {
			best, bestIdx = v, i
		}
	}
	return best / denom, bestIdx - (len(y) - 1)
}

// SBD is the shape-based distance of k-Shape: 1 − max_w NCC_w(x, y),
// in [0, 2].
func SBD(x, y []float64) float64 {
	ncc, _ := NCCMax(x, y)
	return 1 - ncc
}
