package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTransformKnown(t *testing.T) {
	// FFT of [1,1,1,1] = [4,0,0,0].
	x := []complex128{1, 1, 1, 1}
	if err := Transform(x, false); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-4) > 1e-12 {
		t.Errorf("x[0] = %v, want 4", x[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want 0", i, x[i])
		}
	}
	// Impulse → flat spectrum.
	y := []complex128{1, 0, 0, 0}
	_ = Transform(y, false)
	for i := range y {
		if cmplx.Abs(y[i]-1) > 1e-12 {
			t.Errorf("impulse spectrum[%d] = %v", i, y[i])
		}
	}
}

func TestTransformErrors(t *testing.T) {
	if err := Transform(make([]complex128, 3), false); err != ErrNotPowerOfTwo {
		t.Errorf("len 3: %v", err)
	}
	if err := Transform(nil, false); err != ErrNotPowerOfTwo {
		t.Errorf("len 0: %v", err)
	}
}

// Property: inverse(FFT(x)) == x.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(9))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := Transform(x, false); err != nil {
			return false
		}
		if err := Transform(x, true); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func naiveConvolve(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := make([]float64, 1+rng.Intn(40))
		b := make([]float64, 1+rng.Intn(40))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := Convolve(a, b)
		want := naiveConvolve(a, b)
		if len(got) != len(want) {
			t.Fatalf("length %d vs %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: conv[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("empty input should return nil")
	}
}

func TestCrossCorrelationShiftRecovery(t *testing.T) {
	// y is x delayed by 5: max correlation at shift −5... define via NCCMax.
	n := 64
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	delay := 5
	for i := delay; i < n; i++ {
		y[i] = x[i-delay]
	}
	ncc, shift := NCCMax(x, y)
	if ncc < 0.8 {
		t.Errorf("NCC = %v, want high", ncc)
	}
	// Aligning y back onto x requires shifting by −delay (mod period
	// ambiguity for pure sinusoids: accept −5 or 16−5=11).
	if shift != -delay && shift != 16-delay {
		t.Errorf("shift = %d, want %d (or %d)", shift, -delay, 16-delay)
	}
}

func TestNCCMaxIdentical(t *testing.T) {
	x := []float64{1, 2, 3, 2, 1, 0, -1}
	ncc, shift := NCCMax(x, x)
	if math.Abs(ncc-1) > 1e-9 || shift != 0 {
		t.Errorf("self NCC = %v at shift %d, want 1 at 0", ncc, shift)
	}
}

func TestNCCMaxZeroNorm(t *testing.T) {
	ncc, _ := NCCMax([]float64{0, 0, 0}, []float64{1, 2, 3})
	if ncc != 0 {
		t.Errorf("zero-norm NCC = %v", ncc)
	}
}

func TestSBD(t *testing.T) {
	x := []float64{0, 1, 0, -1, 0, 1, 0, -1}
	if d := SBD(x, x); math.Abs(d) > 1e-9 {
		t.Errorf("SBD(x,x) = %v, want 0", d)
	}
	neg := make([]float64, len(x))
	for i, v := range x {
		neg[i] = -v
	}
	// Shift-invariance: a pure periodic inverse aligns at half period, so
	// SBD stays small; an uncorrelated series does not.
	rng := rand.New(rand.NewSource(3))
	noise := make([]float64, len(x))
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	if SBD(x, neg) > 0.5 {
		t.Errorf("SBD to shifted inverse = %v, want small", SBD(x, neg))
	}
	if d := SBD(x, noise); d < 0 || d > 2 {
		t.Errorf("SBD out of [0,2]: %v", d)
	}
}

// Property: SBD is within [0, 2] and symmetric up to the shift asymmetry of
// cross-correlation (SBD(x,y) == SBD(y,x) because max NCC is symmetric).
func TestSBDProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		a, b := SBD(x, y), SBD(y, x)
		if a < -1e-9 || a > 2+1e-9 {
			return false
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkConvolve1024(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 1024)
	y := make([]float64, 1024)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Convolve(x, y)
	}
}
