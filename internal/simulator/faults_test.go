package simulator

import (
	"math"
	"testing"

	"cad/internal/stats"
)

// buildWith renders a 2-community, 12-sensor series with one explicit
// injection and returns the observations plus a same-community peer of the
// first affected sensor that the injection leaves untouched.
func buildWith(t *testing.T, inj Injection) (rows [][]float64, victim, peer int) {
	t.Helper()
	g, err := New(Config{Seed: 11, Sensors: 12, Communities: 2, Length: 800})
	if err != nil {
		t.Fatal(err)
	}
	m, labels, err := g.WithInjections([]Injection{inj})
	if err != nil {
		t.Fatal(err)
	}
	for tk := inj.Start; tk < inj.End; tk++ {
		if !labels[tk] {
			t.Fatalf("point %d inside the injection is unlabeled", tk)
		}
	}
	victim = inj.Sensors[0]
	affected := make(map[int]bool, len(inj.Sensors))
	for _, s := range inj.Sensors {
		affected[s] = true
	}
	peer = -1
	for i, c := range g.Community() {
		if c == g.Community()[victim] && !affected[i] {
			peer = i
			break
		}
	}
	if peer < 0 {
		t.Fatal("no untouched same-community peer")
	}
	return m.Rows(), victim, peer
}

// corrOver is the Pearson correlation of two sensors over [from, to).
func corrOver(t *testing.T, rows [][]float64, a, b, from, to int) float64 {
	t.Helper()
	r, err := stats.Pearson(rows[a][from:to], rows[b][from:to])
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDecorrelatingKinds verifies the new fault kinds actually produce the
// correlation signature CAD keys on: the victim's correlation with an
// untouched community peer is high before the fault and collapses during it.
func TestDecorrelatingKinds(t *testing.T) {
	for _, kind := range []Kind{Intermittent, Saturate, NoiseBurst, Dampen, RegimeShift} {
		inj := Injection{Kind: kind, Start: 400, End: 640, Sensors: []int{0, 2}}
		rows, victim, peer := buildWith(t, inj)
		before := math.Abs(corrOver(t, rows, victim, peer, 100, 340))
		during := math.Abs(corrOver(t, rows, victim, peer, 420, 620))
		if before < 0.7 {
			t.Errorf("%v: pre-fault |corr| = %.3f, expected a correlated pair", kind, before)
		}
		if during > before-0.2 {
			t.Errorf("%v: fault did not decorrelate: |corr| %.3f before, %.3f during", kind, before, during)
		}
	}
}

// TestRegimeShiftKeepsGroupCorrelated pins RegimeShift's defining property:
// affected sensors decouple from the community but stay correlated with
// each other through the shared replacement latent.
func TestRegimeShiftKeepsGroupCorrelated(t *testing.T) {
	inj := Injection{Kind: RegimeShift, Start: 400, End: 640, Sensors: []int{0, 2, 4}}
	rows, _, _ := buildWith(t, inj)
	within := math.Abs(corrOver(t, rows, 0, 2, 420, 620))
	if within < 0.7 {
		t.Errorf("shifted group decorrelated internally: |corr| = %.3f", within)
	}
}

// TestStaggerDelaysOnsets verifies the cascade mechanism: with Stagger set,
// a later sensor in the list is still normal (correlated with its peer)
// during the early phase of the injection window.
func TestStaggerDelaysOnsets(t *testing.T) {
	inj := Injection{Kind: CorrelationBreak, Start: 300, End: 700, Sensors: []int{0, 2}, Stagger: 200}
	rows, _, peer := buildWith(t, inj)
	// Sensor 2's effective onset is 500; over [310, 490) it must still track
	// the latent while sensor 0 is already broken.
	late := math.Abs(corrOver(t, rows, 2, peer, 310, 490))
	early := math.Abs(corrOver(t, rows, 0, peer, 310, 490))
	if late < 0.7 {
		t.Errorf("staggered sensor broke early: |corr| = %.3f", late)
	}
	if early > 0.5 {
		t.Errorf("first sensor did not break at Start: |corr| = %.3f", early)
	}
}

// TestWithInjectionsDeterministic: equal seeds and injections give
// bit-identical series.
func TestWithInjectionsDeterministic(t *testing.T) {
	mk := func() [][]float64 {
		g, err := New(Config{Seed: 5, Sensors: 10, Communities: 2, Length: 500})
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := g.WithInjections([]Injection{
			{Kind: Intermittent, Start: 200, End: 320, Sensors: []int{1, 3}},
			{Kind: RegimeShift, Start: 380, End: 460, Sensors: []int{0, 2}, Stagger: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Rows()
	}
	a, b := mk(), mk()
	for i := range a {
		for tk := range a[i] {
			if a[i][tk] != b[i][tk] {
				t.Fatalf("sensor %d point %d: %v vs %v", i, tk, a[i][tk], b[i][tk])
			}
		}
	}
}

// TestWithInjectionsValidation rejects malformed injections.
func TestWithInjectionsValidation(t *testing.T) {
	g, err := New(Config{Seed: 1, Sensors: 8, Communities: 2, Length: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Injection{
		{Kind: numKinds, Start: 10, End: 20, Sensors: []int{0}},
		{Kind: Stuck, Start: -1, End: 20, Sensors: []int{0}},
		{Kind: Stuck, Start: 10, End: 301, Sensors: []int{0}},
		{Kind: Stuck, Start: 20, End: 20, Sensors: []int{0}},
		{Kind: Stuck, Start: 10, End: 20},
		{Kind: Stuck, Start: 10, End: 20, Sensors: []int{8}},
		{Kind: Stuck, Start: 10, End: 20, Sensors: []int{0}, Stagger: -1},
	} {
		if _, _, err := g.WithInjections([]Injection{bad}); err == nil {
			t.Errorf("injection %+v accepted", bad)
		}
	}
}
