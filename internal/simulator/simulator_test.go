package simulator

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cad/internal/stats"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Sensors: 1, Length: 100}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("sensors=1: %v", err)
	}
	if _, err := New(Config{Sensors: 10, Length: 5}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("length=5: %v", err)
	}
	if _, err := New(Config{Sensors: 10, Length: 100, CrossCoupling: 1.5}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("coupling=1.5: %v", err)
	}
	g, err := New(Config{Seed: 1, Sensors: 10, Length: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Community()) != 10 {
		t.Errorf("community map length %d", len(g.Community()))
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		CorrelationBreak: "correlation-break",
		LevelShift:       "level-shift",
		Spike:            "spike",
		Drift:            "drift",
		Stuck:            "stuck",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestCleanShapeAndDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Sensors: 12, Communities: 3, Length: 300}
	g1, _ := New(cfg)
	g2, _ := New(cfg)
	a, b := g1.Clean(), g2.Clean()
	if a.Sensors() != 12 || a.Len() != 300 {
		t.Fatalf("shape (%d,%d)", a.Sensors(), a.Len())
	}
	for i := 0; i < 12; i++ {
		for tt := 0; tt < 300; tt++ {
			if a.At(i, tt) != b.At(i, tt) {
				t.Fatalf("non-deterministic at (%d,%d)", i, tt)
			}
		}
	}
	if a.HasNaN() {
		t.Error("generated NaN")
	}
}

func TestCommunityCorrelationStructure(t *testing.T) {
	g, err := New(Config{Seed: 3, Sensors: 12, Communities: 3, Length: 600, NoiseStd: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	m := g.Clean()
	comm := g.Community()
	var inSum, outSum float64
	var inN, outN int
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			r, err := stats.Pearson(m.Row(i), m.Row(j))
			if err != nil {
				t.Fatal(err)
			}
			if comm[i] == comm[j] {
				inSum += math.Abs(r)
				inN++
			} else {
				outSum += math.Abs(r)
				outN++
			}
		}
	}
	in, out := inSum/float64(inN), outSum/float64(outN)
	if in < 0.8 {
		t.Errorf("within-community |r| = %v, want strong", in)
	}
	if in < out+0.3 {
		t.Errorf("within %v should clearly exceed across %v", in, out)
	}
}

func TestWithAnomaliesLabels(t *testing.T) {
	g, err := New(Config{Seed: 5, Sensors: 12, Communities: 3, Length: 1000})
	if err != nil {
		t.Fatal(err)
	}
	spec := AnomalySpec{Count: 3, MinLen: 30, MaxLen: 60, MinSensors: 2, MaxSensors: 4}
	m, labels, injections, err := g.WithAnomalies(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1000 || len(labels) != 1000 {
		t.Fatalf("shape mismatch")
	}
	if len(injections) != 3 {
		t.Fatalf("injections = %d, want 3", len(injections))
	}
	// Labels must exactly cover injection intervals.
	want := make([]bool, 1000)
	for k, inj := range injections {
		if inj.End <= inj.Start || inj.Start < 0 || inj.End > 1000 {
			t.Errorf("injection %d bounds [%d,%d)", k, inj.Start, inj.End)
		}
		if len(inj.Sensors) < 2 || len(inj.Sensors) > 4 {
			t.Errorf("injection %d sensors %v", k, inj.Sensors)
		}
		for t2 := inj.Start; t2 < inj.End; t2++ {
			want[t2] = true
		}
		if k > 0 && inj.Start < injections[k-1].End {
			t.Errorf("injections overlap or out of order: %v", injections)
		}
	}
	for i := range labels {
		if labels[i] != want[i] {
			t.Fatalf("label mismatch at %d", i)
		}
	}
}

func TestCorrelationBreakBreaksCorrelation(t *testing.T) {
	g, err := New(Config{Seed: 11, Sensors: 8, Communities: 2, Length: 1200, NoiseStd: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	spec := AnomalySpec{
		Count: 1, MinLen: 300, MaxLen: 300, MinSensors: 1, MaxSensors: 1,
		Kinds: []Kind{CorrelationBreak}, Margin: 350,
	}
	m, _, injections, err := g.WithAnomalies(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := injections[0]
	victim := inj.Sensors[0]
	// Find a community peer.
	peer := -1
	for i, c := range g.Community() {
		if i != victim && c == g.Community()[victim] {
			peer = i
			break
		}
	}
	if peer < 0 {
		t.Skip("no community peer")
	}
	before, _ := stats.Pearson(m.Row(victim)[:inj.Start], m.Row(peer)[:inj.Start])
	during, _ := stats.Pearson(m.Row(victim)[inj.Start:inj.End], m.Row(peer)[inj.Start:inj.End])
	if math.Abs(before) < 0.7 {
		t.Errorf("pre-anomaly |r| = %v, want strong", before)
	}
	if math.Abs(during) > math.Abs(before)-0.2 {
		t.Errorf("correlation did not break: before %v, during %v", before, during)
	}
}

func TestStuckFreezesSensor(t *testing.T) {
	g, _ := New(Config{Seed: 13, Sensors: 6, Communities: 2, Length: 500})
	spec := AnomalySpec{Count: 1, MinLen: 50, MaxLen: 50, MinSensors: 1, MaxSensors: 1, Kinds: []Kind{Stuck}, Margin: 60}
	m, _, injections, err := g.WithAnomalies(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := injections[0]
	v := inj.Sensors[0]
	first := m.At(v, inj.Start)
	for t2 := inj.Start; t2 < inj.End; t2++ {
		if m.At(v, t2) != first {
			t.Fatalf("stuck sensor moved at t=%d", t2)
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	g, err := New(Config{Seed: 17, Sensors: 10, Communities: 2, Length: 800})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.Generate("unit", 400, AnomalySpec{Count: 2, MinLen: 40, MaxLen: 60, MinSensors: 1, MaxSensors: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "unit" || ds.Train.Len() != 400 || ds.Test.Len() != 800 {
		t.Errorf("dataset shapes: train %d test %d", ds.Train.Len(), ds.Test.Len())
	}
	if ds.SuggestedK < 1 || ds.SuggestedK >= 10 {
		t.Errorf("SuggestedK = %d", ds.SuggestedK)
	}
	truths := ds.SensorTruths()
	if len(truths) != 2 {
		t.Fatalf("truths = %d", len(truths))
	}
	for i, tr := range truths {
		if tr.Segment.Start != ds.Injections[i].Start || len(tr.Sensors) != len(ds.Injections[i].Sensors) {
			t.Errorf("truth %d mismatch: %+v vs %+v", i, tr, ds.Injections[i])
		}
	}
	if _, err := g.Generate("bad", 5, AnomalySpec{Count: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("trainLen=5: %v", err)
	}
}

func TestPlacementErrors(t *testing.T) {
	g, _ := New(Config{Seed: 19, Sensors: 6, Communities: 2, Length: 100})
	// Impossible: anomalies longer than the series.
	_, _, _, err := g.WithAnomalies(AnomalySpec{Count: 1, MinLen: 90, MaxLen: 90, Margin: 20})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("oversized anomaly: %v", err)
	}
	// Too many anomalies to fit.
	g2, _ := New(Config{Seed: 19, Sensors: 6, Communities: 2, Length: 200})
	_, _, _, err = g2.WithAnomalies(AnomalySpec{Count: 50, MinLen: 20, MaxLen: 20, Margin: 10})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("unplaceable anomalies: %v", err)
	}
}

// Property: labels always match injections exactly; injected sensors are
// valid indices; anomalies respect margins.
func TestInjectionProperties(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{Seed: seed, Sensors: 8, Communities: 2, Length: 600}
		g, err := New(cfg)
		if err != nil {
			return false
		}
		spec := AnomalySpec{Count: 2, MinLen: 20, MaxLen: 40, MinSensors: 1, MaxSensors: 3, Margin: 45}
		_, labels, injections, err := g.WithAnomalies(spec)
		if err != nil {
			return false
		}
		covered := 0
		for _, inj := range injections {
			for _, s := range inj.Sensors {
				if s < 0 || s >= 8 {
					return false
				}
			}
			if inj.Start < spec.Margin || inj.End > 600-spec.Margin {
				return false
			}
			covered += inj.End - inj.Start
		}
		lcount := 0
		for _, b := range labels {
			if b {
				lcount++
			}
		}
		return lcount == covered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerate100Sensors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := New(Config{Seed: int64(i), Sensors: 100, Communities: 8, Length: 2000})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := g.WithAnomalies(AnomalySpec{Count: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
