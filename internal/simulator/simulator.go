// Package simulator generates labeled sensor-network multivariate time
// series with planted community structure and injected anomalies. It stands
// in for the paper's datasets (PSM, SMD, SWaT, IS-1..IS-5), which are either
// private or unavailable offline; DESIGN.md documents the substitution.
//
// The generative model follows the paper's motivation (§I): sensors mounted
// on the same machine are driven by shared latent processes, so sensors form
// correlated communities; anomalies decouple a few sensors from their latent
// driver (correlation break), shift their level, spike them, drift them, or
// freeze them. Every anomaly is labeled with its time span and the affected
// sensors, enabling PA/DPA/Ahead/Miss and sensor-localization evaluation.
package simulator

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cad/internal/eval"
	"cad/internal/mts"
)

// ErrBadConfig reports an invalid simulator configuration.
var ErrBadConfig = errors.New("simulator: invalid config")

// Kind enumerates the injected anomaly types.
type Kind int

const (
	// CorrelationBreak detaches the sensors from their community's latent
	// driver, replacing it with an independent process of similar marginal
	// scale. The early-detection signature CAD targets.
	CorrelationBreak Kind = iota
	// LevelShift adds a constant offset.
	LevelShift
	// Spike injects short high-magnitude impulses.
	Spike
	// Drift adds a ramp growing over the anomaly.
	Drift
	// Stuck freezes the sensor at its value from the anomaly's first point.
	Stuck
	// Intermittent alternates between normal operation and collapsed
	// readings on a fixed duty cycle — a service in a restart loop: each
	// "down" phase drops the sensor to its pre-fault floor, each "up" phase
	// briefly recovers before the next crash.
	Intermittent
	// Saturate clips the sensor against a ceiling derived from its
	// pre-fault range — a resource pinned at its limit (CPU throttling):
	// the peaks flatten, decorrelating the sensor from its latent driver
	// while the average level barely moves.
	Saturate
	// NoiseBurst multiplies the observation noise on the sensor — a bad
	// deploy adding jitter without changing the underlying signal.
	NoiseBurst
	// Dampen attenuates the sensor's deviation from its pre-fault mean to
	// a small fraction of itself, below the observation-noise floor — a
	// failing transducer whose signal fades into the noise while still
	// reporting.
	Dampen
	// RegimeShift re-drives all affected sensors with one shared
	// replacement latent: they stay correlated with each other but decouple
	// from the rest of their community — a partitioned rack still serving
	// (different) traffic, or a coordinated regime change.
	RegimeShift
	numKinds
)

// String names the anomaly kind.
func (k Kind) String() string {
	switch k {
	case CorrelationBreak:
		return "correlation-break"
	case LevelShift:
		return "level-shift"
	case Spike:
		return "spike"
	case Drift:
		return "drift"
	case Stuck:
		return "stuck"
	case Intermittent:
		return "intermittent"
	case Saturate:
		return "saturate"
	case NoiseBurst:
		return "noise-burst"
	case Dampen:
		return "dampen"
	case RegimeShift:
		return "regime-shift"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injection records one planted anomaly.
type Injection struct {
	Kind    Kind
	Start   int // first anomalous time point (inclusive)
	End     int // past-the-end time point
	Sensors []int
	// Stagger delays each successive sensor's onset by this many points
	// (sensor k in Sensors starts at Start + k·Stagger, clamped inside the
	// span) — a fault cascading through a dependency chain instead of
	// hitting everything at once. Zero hits all sensors at Start.
	Stagger int
}

// Config parameterizes the generator.
type Config struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// Sensors is the total sensor count n.
	Sensors int
	// Communities is the number of latent groups sensors are split into.
	Communities int
	// Length is the number of time points generated per series.
	Length int
	// NoiseStd is the per-sensor observation noise σ relative to the unit
	// latent amplitude. Zero means 0.05.
	NoiseStd float64
	// WalkStd is the σ of the slow random-walk component in each latent
	// (keeps series from being perfectly periodic). Zero means 0.02.
	WalkStd float64
	// CrossCoupling in [0,1) mixes a global factor into every community,
	// making communities correlated with each other. Zero disables.
	CrossCoupling float64
	// WearDrift adds a deterministic slow drift of the given total
	// amplitude across the series to every sensor (models wear and tear).
	WearDrift float64
}

func (c *Config) fill() error {
	if c.Sensors < 2 {
		return fmt.Errorf("%w: sensors=%d", ErrBadConfig, c.Sensors)
	}
	if c.Length < 10 {
		return fmt.Errorf("%w: length=%d", ErrBadConfig, c.Length)
	}
	if c.Communities < 1 {
		c.Communities = int(math.Max(2, math.Sqrt(float64(c.Sensors))/1.5))
	}
	if c.Communities > c.Sensors {
		c.Communities = c.Sensors
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.05
	}
	if c.WalkStd == 0 {
		c.WalkStd = 0.02
	}
	if c.CrossCoupling < 0 || c.CrossCoupling >= 1 {
		return fmt.Errorf("%w: crossCoupling=%v", ErrBadConfig, c.CrossCoupling)
	}
	return nil
}

// AnomalySpec controls the injection pass.
type AnomalySpec struct {
	// Count is the number of anomalies to plant.
	Count int
	// MinLen/MaxLen bound each anomaly's duration in time points.
	MinLen, MaxLen int
	// MinSensors/MaxSensors bound how many sensors each anomaly affects.
	MinSensors, MaxSensors int
	// Kinds is the pool drawn from uniformly; empty means
	// {CorrelationBreak, LevelShift, Drift, Stuck}.
	Kinds []Kind
	// Margin keeps anomalies at least this many points from the series
	// edges and from each other. Zero means MaxLen.
	Margin int
}

func (s *AnomalySpec) fill(length, sensors int) error {
	if s.Count < 0 {
		return fmt.Errorf("%w: anomaly count=%d", ErrBadConfig, s.Count)
	}
	if s.MinLen <= 0 {
		s.MinLen = length / 50
		if s.MinLen < 5 {
			s.MinLen = 5
		}
	}
	if s.MaxLen < s.MinLen {
		s.MaxLen = s.MinLen * 3
	}
	if s.MinSensors <= 0 {
		s.MinSensors = 1
	}
	if s.MaxSensors < s.MinSensors {
		s.MaxSensors = s.MinSensors + sensors/10
	}
	if s.MaxSensors > sensors {
		s.MaxSensors = sensors
	}
	if len(s.Kinds) == 0 {
		s.Kinds = []Kind{CorrelationBreak, LevelShift, Drift, Stuck}
	}
	if s.Margin <= 0 {
		s.Margin = s.MaxLen
	}
	return nil
}

// Dataset is a fully labeled generated benchmark instance.
type Dataset struct {
	// Name identifies the recipe that produced the dataset.
	Name string
	// Train is the clean historical series (the paper's T_his).
	Train *mts.MTS
	// Test is the evaluation series with injected anomalies.
	Test *mts.MTS
	// Labels marks anomalous time points of Test.
	Labels []bool
	// Injections lists the planted anomalies in chronological order.
	Injections []Injection
	// Community of each sensor in the generative model.
	Community []int
	// SuggestedK is a reasonable TSG neighbor count for this dataset.
	SuggestedK int
}

// SensorTruths converts the injections to the eval package's localization
// ground truth.
func (d *Dataset) SensorTruths() []eval.SensorTruth {
	out := make([]eval.SensorTruth, len(d.Injections))
	for i, inj := range d.Injections {
		out[i] = eval.SensorTruth{
			Segment: eval.Segment{Start: inj.Start, End: inj.End},
			Sensors: append([]int(nil), inj.Sensors...),
		}
	}
	return out
}

// Generator produces datasets from a Config.
type Generator struct {
	cfg Config
	rng *rand.Rand

	community []int
	gain      []float64
	bias      []float64
	// latent parameters per community: two sinusoids
	p1, p2, a1, a2, ph1, ph2 []float64
}

// New validates cfg and builds a generator. The sensor→community map and
// per-sensor gains are fixed at construction so Train and Test share them.
func New(cfg Config) (*Generator, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	n, c := cfg.Sensors, cfg.Communities
	g.community = make([]int, n)
	g.gain = make([]float64, n)
	g.bias = make([]float64, n)
	for i := 0; i < n; i++ {
		g.community[i] = i % c
		g.gain[i] = 0.5 + g.rng.Float64()*1.5
		if g.rng.Float64() < 0.25 {
			g.gain[i] = -g.gain[i] // some sensors anti-correlate
		}
		g.bias[i] = g.rng.NormFloat64() * 2
	}
	g.p1 = make([]float64, c)
	g.p2 = make([]float64, c)
	g.a1 = make([]float64, c)
	g.a2 = make([]float64, c)
	g.ph1 = make([]float64, c)
	g.ph2 = make([]float64, c)
	for j := 0; j < c; j++ {
		g.p1[j] = 20 + g.rng.Float64()*60
		g.p2[j] = 5 + g.rng.Float64()*15
		g.a1[j] = 0.7 + g.rng.Float64()*0.6
		g.a2[j] = 0.2 + g.rng.Float64()*0.3
		g.ph1[j] = g.rng.Float64() * 2 * math.Pi
		g.ph2[j] = g.rng.Float64() * 2 * math.Pi
	}
	return g, nil
}

// Community returns the generative community of each sensor.
func (g *Generator) Community() []int { return g.community }

// latents simulates the community latent processes for `length` steps.
func (g *Generator) latents(length int) [][]float64 {
	c := g.cfg.Communities
	out := make([][]float64, c)
	walk := make([]float64, c)
	var global float64
	for j := 0; j < c; j++ {
		out[j] = make([]float64, length)
	}
	for t := 0; t < length; t++ {
		global = math.Sin(2 * math.Pi * float64(t) / 97.3)
		for j := 0; j < c; j++ {
			walk[j] += g.rng.NormFloat64() * g.cfg.WalkStd
			v := g.a1[j]*math.Sin(2*math.Pi*float64(t)/g.p1[j]+g.ph1[j]) +
				g.a2[j]*math.Sin(2*math.Pi*float64(t)/g.p2[j]+g.ph2[j]) +
				walk[j]
			if g.cfg.CrossCoupling > 0 {
				v = (1-g.cfg.CrossCoupling)*v + g.cfg.CrossCoupling*global
			}
			out[j][t] = v
		}
	}
	return out
}

// render converts latents to sensor observations.
func (g *Generator) render(lat [][]float64, length int) *mts.MTS {
	n := g.cfg.Sensors
	m := mts.Zeros(n, length)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		cj := g.community[i]
		for t := 0; t < length; t++ {
			drift := g.cfg.WearDrift * float64(t) / float64(length)
			row[t] = g.gain[i]*lat[cj][t] + g.bias[i] + drift + g.rng.NormFloat64()*g.cfg.NoiseStd
		}
	}
	return m
}

// Clean generates an anomaly-free series of the configured length.
func (g *Generator) Clean() *mts.MTS {
	return g.render(g.latents(g.cfg.Length), g.cfg.Length)
}

// WithAnomalies generates a series with the given injections planted,
// returning the observations, the point labels, and the injection records.
func (g *Generator) WithAnomalies(spec AnomalySpec) (*mts.MTS, []bool, []Injection, error) {
	if err := spec.fill(g.cfg.Length, g.cfg.Sensors); err != nil {
		return nil, nil, nil, err
	}
	length := g.cfg.Length
	lat := g.latents(length)
	m := g.render(lat, length)
	labels := make([]bool, length)

	injections, err := g.placeAnomalies(spec, length)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, inj := range injections {
		g.apply(m, lat, inj)
		for t := inj.Start; t < inj.End; t++ {
			labels[t] = true
		}
	}
	return m, labels, injections, nil
}

// placeAnomalies picks non-overlapping intervals and sensor subsets.
func (g *Generator) placeAnomalies(spec AnomalySpec, length int) ([]Injection, error) {
	var out []Injection
	occupied := make([]bool, length)
	maxTries := spec.Count * 400
	for len(out) < spec.Count && maxTries > 0 {
		maxTries--
		dur := spec.MinLen
		if spec.MaxLen > spec.MinLen {
			dur += g.rng.Intn(spec.MaxLen - spec.MinLen + 1)
		}
		if dur+2*spec.Margin >= length {
			return nil, fmt.Errorf("%w: anomaly duration %d with margin %d exceeds series length %d", ErrBadConfig, dur, spec.Margin, length)
		}
		start := spec.Margin + g.rng.Intn(length-dur-2*spec.Margin)
		clash := false
		for t := start - spec.Margin; t < start+dur+spec.Margin; t++ {
			if t >= 0 && t < length && occupied[t] {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		for t := start; t < start+dur; t++ {
			occupied[t] = true
		}
		ns := spec.MinSensors
		if spec.MaxSensors > spec.MinSensors {
			ns += g.rng.Intn(spec.MaxSensors - spec.MinSensors + 1)
		}
		// Prefer sensors from one community (failures propagate locally,
		// §I), spilling into neighbors when the community is small.
		comm := g.rng.Intn(g.cfg.Communities)
		var pool []int
		for i, cj := range g.community {
			if cj == comm {
				pool = append(pool, i)
			}
		}
		for i := range g.community {
			if len(pool) >= ns*2 {
				break
			}
			if g.community[i] != comm {
				pool = append(pool, i)
			}
		}
		g.rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		if ns > len(pool) {
			ns = len(pool)
		}
		sensors := append([]int(nil), pool[:ns]...)
		kind := spec.Kinds[g.rng.Intn(len(spec.Kinds))]
		out = append(out, Injection{Kind: kind, Start: start, End: start + dur, Sensors: sensors})
	}
	if len(out) < spec.Count {
		return nil, fmt.Errorf("%w: could not place %d anomalies in length %d", ErrBadConfig, spec.Count, length)
	}
	// Sort chronologically (insertion order is random).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// apply mutates m in place with one injection.
func (g *Generator) apply(m *mts.MTS, lat [][]float64, inj Injection) {
	// RegimeShift drives every affected sensor with ONE shared replacement
	// latent (generated before the per-sensor loop), so the group stays
	// internally correlated.
	var shared []float64
	if inj.Kind == RegimeShift {
		shared = g.replacementLatent(inj.End - inj.Start)
	}
	for idx, i := range inj.Sensors {
		start := inj.Start
		if inj.Stagger > 0 {
			start += idx * inj.Stagger
			if start >= inj.End {
				start = inj.End - 1
			}
		}
		row := m.Row(i)
		switch inj.Kind {
		case CorrelationBreak:
			// Independent replacement latent of similar scale.
			p := 10 + g.rng.Float64()*40
			ph := g.rng.Float64() * 2 * math.Pi
			walk := 0.0
			for t := start; t < inj.End; t++ {
				walk += g.rng.NormFloat64() * g.cfg.WalkStd * 3
				v := math.Sin(2*math.Pi*float64(t)/p+ph) + walk
				row[t] = g.gain[i]*v + g.bias[i] + g.rng.NormFloat64()*g.cfg.NoiseStd
			}
		case LevelShift:
			delta := (1.5 + g.rng.Float64()) * math.Abs(g.gain[i])
			if g.rng.Float64() < 0.5 {
				delta = -delta
			}
			for t := start; t < inj.End; t++ {
				row[t] += delta
			}
		case Spike:
			for t := start; t < inj.End; t++ {
				if g.rng.Float64() < 0.3 {
					mag := (3 + 2*g.rng.Float64()) * math.Abs(g.gain[i])
					if g.rng.Float64() < 0.5 {
						mag = -mag
					}
					row[t] += mag
				}
			}
		case Drift:
			total := (2 + g.rng.Float64()*2) * math.Abs(g.gain[i])
			dur := float64(inj.End - start)
			for t := start; t < inj.End; t++ {
				row[t] += total * float64(t-start) / dur
			}
		case Stuck:
			frozen := row[start]
			for t := start; t < inj.End; t++ {
				row[t] = frozen
			}
		case Intermittent:
			// Restart loop: down for half the period (readings collapse to
			// the pre-fault floor), up for the other half.
			_, lo, _ := preStats(row, start)
			period := (inj.End - start) / 5
			if period < 8 {
				period = 8
			}
			for t := start; t < inj.End; t++ {
				if (t-start)%period < period/2 {
					row[t] = lo + g.rng.NormFloat64()*g.cfg.NoiseStd
				}
			}
		case Saturate:
			// Throttling: clip against a limit below the pre-fault mean, so
			// the sensor spends most of the fault pegged at its ceiling and
			// only the dips below the limit still carry signal.
			mean, lo, _ := preStats(row, start)
			ceil := lo + 0.25*(mean-lo)
			for t := start; t < inj.End; t++ {
				if row[t] > ceil {
					row[t] = ceil + g.rng.NormFloat64()*g.cfg.NoiseStd
				}
			}
		case NoiseBurst:
			burst := (1 + g.rng.Float64()) * math.Abs(g.gain[i])
			for t := start; t < inj.End; t++ {
				row[t] += g.rng.NormFloat64() * burst
			}
		case Dampen:
			// Attenuate below the observation-noise floor: Pearson is
			// scale-invariant, so a mild attenuation leaves correlations
			// intact — the signal must actually drown in the noise.
			mean, _, _ := preStats(row, start)
			for t := start; t < inj.End; t++ {
				row[t] = mean + (row[t]-mean)*0.02 + g.rng.NormFloat64()*g.cfg.NoiseStd
			}
		case RegimeShift:
			for t := start; t < inj.End; t++ {
				row[t] = g.gain[i]*shared[t-inj.Start] + g.bias[i] + g.rng.NormFloat64()*g.cfg.NoiseStd
			}
		}
	}
}

// replacementLatent generates an independent latent process of the same
// marginal scale as the community latents, used as the shared driver of a
// RegimeShift injection.
func (g *Generator) replacementLatent(n int) []float64 {
	p := 10 + g.rng.Float64()*40
	ph := g.rng.Float64() * 2 * math.Pi
	walk := 0.0
	out := make([]float64, n)
	for t := range out {
		walk += g.rng.NormFloat64() * g.cfg.WalkStd * 3
		out[t] = math.Sin(2*math.Pi*float64(t)/p+ph) + walk
	}
	return out
}

// preStats summarizes the sensor's behavior over a lookback window before
// the fault onset; the fault kinds that anchor to "normal" (floor, ceiling,
// mean) derive it from here so the injected values are plausible for that
// sensor.
func preStats(row []float64, start int) (mean, lo, hi float64) {
	from := start - 200
	if from < 0 {
		from = 0
	}
	if start <= from {
		return row[0], row[0], row[0]
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for t := from; t < start; t++ {
		mean += row[t]
		if row[t] < lo {
			lo = row[t]
		}
		if row[t] > hi {
			hi = row[t]
		}
	}
	mean /= float64(start - from)
	return mean, lo, hi
}

// WithInjections renders a series and applies the given explicitly placed
// injections — the deterministic counterpart of WithAnomalies, used by the
// scenario corpus where fault mechanism, onset, and affected sensors are
// ground truth rather than randomly drawn. Injections may overlap in time
// and sensors; labels mark the union of their spans.
func (g *Generator) WithInjections(injs []Injection) (*mts.MTS, []bool, error) {
	length := g.cfg.Length
	for k, inj := range injs {
		if inj.Kind < 0 || inj.Kind >= numKinds {
			return nil, nil, fmt.Errorf("%w: injection %d: unknown kind %d", ErrBadConfig, k, int(inj.Kind))
		}
		if inj.Start < 0 || inj.End > length || inj.Start >= inj.End {
			return nil, nil, fmt.Errorf("%w: injection %d: span [%d,%d) outside series of length %d", ErrBadConfig, k, inj.Start, inj.End, length)
		}
		if len(inj.Sensors) == 0 {
			return nil, nil, fmt.Errorf("%w: injection %d: no sensors", ErrBadConfig, k)
		}
		for _, s := range inj.Sensors {
			if s < 0 || s >= g.cfg.Sensors {
				return nil, nil, fmt.Errorf("%w: injection %d: sensor %d out of range", ErrBadConfig, k, s)
			}
		}
		if inj.Stagger < 0 {
			return nil, nil, fmt.Errorf("%w: injection %d: stagger %d", ErrBadConfig, k, inj.Stagger)
		}
	}
	lat := g.latents(length)
	m := g.render(lat, length)
	labels := make([]bool, length)
	for _, inj := range injs {
		g.apply(m, lat, inj)
		for t := inj.Start; t < inj.End; t++ {
			labels[t] = true
		}
	}
	return m, labels, nil
}

// Generate produces a complete dataset: a clean Train series of trainLen
// points and a Test series of the configured length with spec anomalies.
func (g *Generator) Generate(name string, trainLen int, spec AnomalySpec) (*Dataset, error) {
	if trainLen < 10 {
		return nil, fmt.Errorf("%w: trainLen=%d", ErrBadConfig, trainLen)
	}
	train := g.render(g.latents(trainLen), trainLen)
	test, labels, injections, err := g.WithAnomalies(spec)
	if err != nil {
		return nil, err
	}
	k := g.cfg.Sensors / 10
	if k < 5 {
		k = 5
	}
	if k >= g.cfg.Sensors {
		k = g.cfg.Sensors - 1
	}
	return &Dataset{
		Name:       name,
		Train:      train,
		Test:       test,
		Labels:     labels,
		Injections: injections,
		Community:  append([]int(nil), g.community...),
		SuggestedK: k,
	}, nil
}
