package scenario

import (
	"testing"

	"cad/internal/simulator"
)

func TestCorpusShape(t *testing.T) {
	corpus := Corpus()
	if len(corpus) < 10 {
		t.Fatalf("corpus has %d scenarios, want ≥ 10", len(corpus))
	}
	seen := make(map[string]bool)
	seeds := make(map[int64]string)
	for _, s := range corpus {
		if s.Name == "" || s.Problem == "" || s.Mechanism == "" {
			t.Fatalf("scenario %q: empty name/problem/mechanism", s.Name)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if prev, dup := seeds[s.Seed]; dup {
			t.Fatalf("scenarios %s and %s share seed %d", prev, s.Name, s.Seed)
		}
		seeds[s.Seed] = s.Name
		if len(s.Keywords) == 0 {
			t.Errorf("scenario %s: no keywords", s.Name)
		}
		if len(s.Injections) == 0 {
			t.Fatalf("scenario %s: no injections", s.Name)
		}
		onset := s.Onset()
		if onset <= 0 || onset >= s.Length {
			t.Errorf("scenario %s: onset %d outside (0,%d)", s.Name, onset, s.Length)
		}
		// The detector needs clean history before the fault: at the matrix
		// windowing (w=64 s=4, MinHistory 8) the 3σ baseline must be ready
		// well before the onset.
		if onset < 200 {
			t.Errorf("scenario %s: onset %d leaves too little clean history", s.Name, onset)
		}
		if len(s.AffectedSensors()) == 0 {
			t.Errorf("scenario %s: no affected sensors", s.Name)
		}
		for _, inj := range s.Injections {
			if inj.Start < 0 || inj.End > s.Length || inj.Start >= inj.End {
				t.Errorf("scenario %s: bad injection span [%d,%d)", s.Name, inj.Start, inj.End)
			}
		}
	}
}

func TestAffectedSensorsSortedUnion(t *testing.T) {
	s := Scenario{
		Sensors: 8,
		Injections: []simulator.Injection{
			{Sensors: []int{5, 1}},
			{Sensors: []int{1, 3}},
		},
	}
	got := s.AffectedSensors()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("affected = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("affected = %v, want %v", got, want)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	s, ok := ByName("crash-loop")
	if !ok {
		t.Fatal("crash-loop missing from corpus")
	}
	a, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Series.Sensors() != s.Sensors || a.Series.Len() != s.Length {
		t.Fatalf("built %d×%d, want %d×%d", a.Series.Sensors(), a.Series.Len(), s.Sensors, s.Length)
	}
	for i := 0; i < a.Series.Sensors(); i++ {
		ra, rb := a.Series.Row(i), b.Series.Row(i)
		for t2 := range ra {
			if ra[t2] != rb[t2] {
				t.Fatalf("sensor %d differs at point %d: %v vs %v", i, t2, ra[t2], rb[t2])
			}
		}
	}
	for t2 := range a.Labels {
		if a.Labels[t2] != b.Labels[t2] {
			t.Fatalf("labels differ at %d", t2)
		}
	}
}

func TestBuildGroundTruth(t *testing.T) {
	for _, s := range Corpus() {
		inst, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(inst.Truths) != len(s.Injections) {
			t.Fatalf("%s: %d truths for %d injections", s.Name, len(inst.Truths), len(s.Injections))
		}
		// Labels must cover exactly the union of the injection spans.
		want := make([]bool, s.Length)
		for _, inj := range s.Injections {
			for p := inj.Start; p < inj.End; p++ {
				want[p] = true
			}
		}
		for p := range want {
			if inst.Labels[p] != want[p] {
				t.Fatalf("%s: label mismatch at %d", s.Name, p)
			}
		}
		if !inst.Labels[s.Onset()] {
			t.Fatalf("%s: onset %d not labeled", s.Name, s.Onset())
		}
		if s.Onset() > 0 && inst.Labels[s.Onset()-1] {
			t.Fatalf("%s: point before onset labeled", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("no-such-scenario"); ok {
		t.Fatal("unknown name resolved")
	}
	s, ok := ByName("oom-kill")
	if !ok || s.Name != "oom-kill" {
		t.Fatalf("ByName(oom-kill) = %+v, %v", s, ok)
	}
}
