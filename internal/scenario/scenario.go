// Package scenario is the ground-truthed failure-scenario corpus: ~10 named
// production failure modes (crash-loop, oom-kill, cpu-throttle, …), each
// generated deterministically on top of internal/simulator with an explicit
// fault mechanism, expected onset point, and affected-sensor ground truth.
//
// The corpus replaces ad-hoc random anomaly mixes for quality evaluation:
// every scenario states WHAT failed (the mechanism), WHEN (the onset), and
// WHERE (the sensors), so detection quality — DPA-F1, detection delay,
// false alarms, sensor localization — can be asserted and tracked per
// failure mode across the scenario × config evaluation matrix (matrix.go,
// cmd/cadeval, BENCH_scenarios.json). The scenario list is modeled on the
// ten agentic-iteration ground truths of the DataDog Observer plan and the
// fault taxonomies of CSCAD/CAAD.
package scenario

import (
	"fmt"

	"cad/internal/eval"
	"cad/internal/mts"
	"cad/internal/simulator"
)

// Scenario is one named, ground-truthed failure mode. Build is
// deterministic: equal scenarios yield bit-identical datasets.
type Scenario struct {
	// Name identifies the scenario ("crash-loop", "oom-kill", …).
	Name string
	// Problem is the one-line problem type a responder would file.
	Problem string
	// Mechanism describes how the fault is injected into the generative
	// model: which sensors/community it perturbs and how.
	Mechanism string
	// Keywords a correct diagnosis of this scenario would mention.
	Keywords []string

	// Sensors, Communities, Length, Seed, Noise, Cross parameterize the
	// underlying simulator (see simulator.Config).
	Sensors     int
	Communities int
	Length      int
	Seed        int64
	Noise       float64
	Cross       float64

	// Injections are the explicitly placed faults (ground truth).
	Injections []simulator.Injection
}

// Onset returns the earliest fault point — the moment the failure begins.
func (s Scenario) Onset() int {
	onset := s.Length
	for _, inj := range s.Injections {
		if inj.Start < onset {
			onset = inj.Start
		}
	}
	return onset
}

// AffectedSensors returns the union of all injections' sensors, ascending.
func (s Scenario) AffectedSensors() []int {
	seen := make(map[int]bool)
	for _, inj := range s.Injections {
		for _, v := range inj.Sensors {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := 0; v < s.Sensors; v++ {
		if seen[v] {
			out = append(out, v)
		}
	}
	return out
}

// Instance is a built scenario: the generated series plus its ground truth
// in the eval package's terms.
type Instance struct {
	Scenario
	// Series is the generated observation matrix (Sensors × Length).
	Series *mts.MTS
	// Labels marks the anomalous time points (union of injection spans).
	Labels []bool
	// Truths is the per-injection sensor-localization ground truth.
	Truths []eval.SensorTruth
}

// Build generates the scenario's dataset. Equal scenarios build
// bit-identical instances (the simulator is seeded and injections are
// explicitly placed).
func (s Scenario) Build() (*Instance, error) {
	gen, err := simulator.New(simulator.Config{
		Seed:          s.Seed,
		Sensors:       s.Sensors,
		Communities:   s.Communities,
		Length:        s.Length,
		NoiseStd:      s.Noise,
		CrossCoupling: s.Cross,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	series, labels, err := gen.WithInjections(s.Injections)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	truths := make([]eval.SensorTruth, len(s.Injections))
	for i, inj := range s.Injections {
		truths[i] = eval.SensorTruth{
			Segment: eval.Segment{Start: inj.Start, End: inj.End},
			Sensors: append([]int(nil), inj.Sensors...),
		}
	}
	return &Instance{Scenario: s, Series: series, Labels: labels, Truths: truths}, nil
}

// ByName returns the corpus scenario with the given name.
func ByName(name string) (Scenario, bool) {
	for _, s := range Corpus() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
