package scenario

import (
	"encoding/json"
	"testing"
)

// fastPair is a cheap two-variant grid for tests: the reference batch
// config plus the incremental hot path.
func fastPair(t *testing.T) []ConfigVariant {
	t.Helper()
	var out []ConfigVariant
	for _, v := range Variants() {
		if v.Name == "batch" || v.Name == "incremental" {
			out = append(out, v)
		}
	}
	if len(out) != 2 {
		t.Fatalf("grid missing batch/incremental: %d found", len(out))
	}
	return out
}

func TestEvaluateMetricsInRange(t *testing.T) {
	s, _ := ByName("cpu-throttle")
	inst, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	cell, pred, err := Evaluate(inst, BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != inst.Series.Len() {
		t.Fatalf("pred length %d, want %d", len(pred), inst.Series.Len())
	}
	for name, v := range map[string]float64{
		"dpaF1": cell.DPAF1, "paF1": cell.PAF1, "rawF1": cell.RawF1,
		"sensorF1": cell.SensorF1, "falseAlarmRate": cell.FalseAlarmRate,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v outside [0,1]", name, v)
		}
	}
	if cell.Rounds <= 0 || cell.RoundsPerSec <= 0 {
		t.Errorf("rounds=%d roundsPerSec=%v", cell.Rounds, cell.RoundsPerSec)
	}
	if cell.Detected > cell.Segments || cell.Segments == 0 {
		t.Errorf("detected/segments = %d/%d", cell.Detected, cell.Segments)
	}
	// cpu-throttle is a strong, well-detected scenario under the base
	// config; a regression to zero here means the pipeline broke.
	if cell.DPAF1 < 0.5 {
		t.Errorf("cpu-throttle base DPA-F1 = %v, want ≥ 0.5", cell.DPAF1)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	s, _ := ByName("network-partition")
	inst, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, predA, err := Evaluate(inst, BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, predB, err := Evaluate(inst, BaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Everything except wall-clock throughput must be bit-identical.
	a.RoundsPerSec, b.RoundsPerSec = 0, 0
	if a != b {
		t.Fatalf("cells differ:\n%+v\n%+v", a, b)
	}
	for i := range predA {
		if predA[i] != predB[i] {
			t.Fatalf("pred differs at %d", i)
		}
	}
}

func TestRunAndFloors(t *testing.T) {
	scenarios := []Scenario{}
	for _, name := range []string{"crash-loop", "cpu-throttle"} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("missing scenario %s", name)
		}
		scenarios = append(scenarios, s)
	}
	variants := fastPair(t)
	m, err := Run(scenarios, variants)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFloors("incremental", 0.10); err != nil {
		t.Fatal(err)
	}
	m.Generated, m.GoVersion, m.GOARCH = "test", "test", "test"
	if err := m.Validate(2, 2); err != nil {
		t.Fatalf("validate: %v", err)
	}
	for _, sr := range m.Scenarios {
		gate, ok := sr.Cell("incremental")
		if !ok {
			t.Fatalf("%s: no incremental cell", sr.Name)
		}
		if sr.Floor > gate.DPAF1 {
			t.Errorf("%s: floor %v above gate DPA-F1 %v", sr.Name, sr.Floor, gate.DPAF1)
		}
		// The reference variant carries zero relative measures; the others
		// must have them populated in [0,1] (Validate range-checks too).
		ref := sr.Cells[0]
		if ref.AheadVsBatch != 0 || ref.MissVsBatch != 0 {
			t.Errorf("%s: reference cell has nonzero ahead/miss", sr.Name)
		}
	}
	// The JSON round-trip must preserve validity — this is the schema the
	// committed BENCH_scenarios.json artifact is checked against.
	buf, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(2, 2); err != nil {
		t.Fatalf("validate after round-trip: %v", err)
	}
}

func TestSetFloorsUnknownGate(t *testing.T) {
	s, _ := ByName("crash-loop")
	m, err := Run([]Scenario{s}, fastPair(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetFloors("no-such-config", 0.1); err == nil {
		t.Fatal("unknown gate accepted")
	}
}

func TestValidateRejectsBadMatrix(t *testing.T) {
	if err := (&Matrix{}).Validate(1, 1); err == nil {
		t.Fatal("empty matrix validated")
	}
	m := &Matrix{
		GateConfig: "batch",
		Configs:    []ConfigVariant{{Name: "batch"}},
		Scenarios: []ScenarioResult{{
			Name: "x", Problem: "p", Mechanism: "m", Keywords: []string{"k"},
			Length: 100, Onset: 50, Affected: []int{1},
			Cells: []Cell{{Config: "batch", DPAF1: 1.5, Rounds: 1}},
		}},
	}
	if err := m.Validate(1, 1); err == nil {
		t.Fatal("out-of-range DPA-F1 validated")
	}
}

func TestVariantsGrid(t *testing.T) {
	vs := Variants()
	if len(vs) < 4 {
		t.Fatalf("grid has %d variants, want ≥ 4", len(vs))
	}
	if vs[0].Name != "batch" {
		t.Fatalf("reference variant is %q, want batch", vs[0].Name)
	}
	seen := make(map[string]bool)
	for _, v := range vs {
		if v.Name == "" || v.Summary == "" {
			t.Fatalf("variant %+v missing name/summary", v)
		}
		if seen[v.Name] {
			t.Fatalf("duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
	}
	if !seen["incremental"] {
		t.Fatal("grid missing the incremental gate variant")
	}
}
