package scenario

import (
	"fmt"
	"math"
	"time"

	"cad/internal/core"
	"cad/internal/eval"
	"cad/internal/mts"
)

// matrix.go runs the scenario × config evaluation matrix: every corpus
// scenario is streamed through a grid of detector configurations and each
// cell reports the DaE quality metrics (DPA-F1, Ahead/Miss vs the batch
// reference, detection delay, false-alarm rate, sensor localization) plus
// throughput. cmd/cadeval serializes the result as BENCH_scenarios.json so
// detection quality gets a committed trajectory the same way speed does in
// BENCH_ingest.json.

// ConfigVariant is one named detector configuration of the grid.
type ConfigVariant struct {
	Name    string      `json:"name"`
	Summary string      `json:"summary"`
	Config  core.Config `json:"-"`
}

// BaseConfig is the matrix's reference configuration: the exact batch
// pipeline sized for the corpus fleet shape (32 sensors in 4 communities
// over 1200 points). θ is calibrated the way internal/experiments does it:
// just below the typical RC plateau (communitySize−1)/(n−1) = 7/31 ≈ 0.23,
// so a healthy sensor sits above θ and a decorrelated one crosses it within
// a few rounds. The short RC horizon keeps co-affected sensors' outlier
// transitions synchronized, which is what makes the 3σ rule fire early.
func BaseConfig() core.Config {
	return core.Config{
		Window: mts.Windowing{W: 64, S: 4}, K: 10, Tau: 0.4, Theta: 0.17,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8,
		RCMode: core.RCSliding, RCHorizon: 5,
	}
}

// Variants returns the evaluation grid. The first variant is the reference
// every other variant's Ahead/Miss is measured against.
func Variants() []ConfigVariant {
	base := BaseConfig()
	inc := base
	inc.Incremental, inc.RefreshEvery = true, 64
	approx := base
	approx.ApproxTSG, approx.ApproxSeed = true, 1
	wide := base
	wide.Window = mts.Windowing{W: 96, S: 6}
	cum := base
	cum.RCMode = core.RCCumulative
	xi := base
	xi.DisableVariationRule, xi.FixedXi = true, 3
	return []ConfigVariant{
		{Name: "batch", Summary: "exact batch pipeline, plateau-calibrated defaults (w=64 s=4 k=10 τ=0.4 θ=0.17 η=3)", Config: base},
		{Name: "incremental", Summary: "Config.Incremental hot path: rank-one correlation, in-place TSG repair, warm Louvain", Config: inc},
		{Name: "approx-tsg", Summary: "HNSW approximate TSG (Config.ApproxTSG, pinned seed)", Config: approx},
		{Name: "wide-window", Summary: "wider, coarser windowing (w=96 s=6)", Config: wide},
		{Name: "cumulative-rc", Summary: "paper-literal cumulative RC accumulation (Def. 6)", Config: cum},
		{Name: "fixed-xi", Summary: "fixed ξ=3 abnormal rule instead of the 3σ variation rule", Config: xi},
	}
}

// Cell is one scenario × config measurement.
type Cell struct {
	Config string `json:"config"`
	// DPA/PA/raw point F1 under the DaE scheme.
	DPAF1 float64 `json:"dpaF1"`
	PAF1  float64 `json:"paF1"`
	RawF1 float64 `json:"rawF1"`
	// SensorF1 is the localization score against the injected sensors.
	SensorF1 float64 `json:"sensorF1"`
	// FalseAlarmRate is the FPR of the raw (unadjusted) point predictions.
	FalseAlarmRate float64 `json:"falseAlarmRate"`
	// Detected / Segments count ground-truth anomalies hit vs total.
	Detected int `json:"detected"`
	Segments int `json:"segments"`
	// MeanDelayPoints / MeanDelayRounds measure onset-to-first-alarm lag
	// over the detected anomalies.
	MeanDelayPoints float64 `json:"meanDelayPoints"`
	MeanDelayRounds float64 `json:"meanDelayRounds"`
	// AheadVsBatch / MissVsBatch are the DaE relative measures against the
	// reference (first) variant; zero on the reference itself.
	AheadVsBatch float64 `json:"aheadVsBatch"`
	MissVsBatch  float64 `json:"missVsBatch"`
	// Rounds / AlarmRounds / RoundsPerSec describe the run itself.
	// RoundsPerSec is wall-clock and varies between machines; every other
	// field is deterministic under the scenario's pinned seed.
	Rounds       int     `json:"rounds"`
	AlarmRounds  int     `json:"alarmRounds"`
	RoundsPerSec float64 `json:"roundsPerSec"`
}

// ScenarioResult is one corpus scenario's row of the matrix.
type ScenarioResult struct {
	Name      string   `json:"name"`
	Problem   string   `json:"problem"`
	Mechanism string   `json:"mechanism"`
	Keywords  []string `json:"keywords"`
	Sensors   int      `json:"sensors"`
	Length    int      `json:"length"`
	Seed      int64    `json:"seed"`
	Onset     int      `json:"onset"`
	Affected  []int    `json:"affectedSensors"`
	// Floor is the committed DPA-F1 floor `make scenariotest` asserts
	// against, derived from the gate config's cell minus slack.
	Floor float64 `json:"floor"`
	Cells []Cell  `json:"cells"`
}

// Matrix is the BENCH_scenarios.json file format.
type Matrix struct {
	Generated string `json:"generated"`
	GoVersion string `json:"goVersion"`
	GOARCH    string `json:"goarch"`
	// GateConfig names the variant whose DPA-F1 sets each scenario floor.
	GateConfig string           `json:"gateConfig"`
	Configs    []ConfigVariant  `json:"configs"`
	Scenarios  []ScenarioResult `json:"scenarios"`
}

// Evaluate streams one built scenario through one detector configuration
// and scores it. The returned prediction vector (one bool per time point)
// feeds the relative Ahead/Miss comparison between variants.
func Evaluate(inst *Instance, cfg core.Config) (Cell, []bool, error) {
	det, err := core.NewDetector(inst.Sensors, cfg)
	if err != nil {
		return Cell{}, nil, err
	}
	sr := core.NewStreamer(det)
	tr := core.NewTracker(cfg)
	pred := make([]bool, inst.Series.Len())
	col := make([]float64, inst.Sensors)
	cell := Cell{}

	start := time.Now()
	for p := 0; p < inst.Series.Len(); p++ {
		inst.Series.Column(p, col)
		rep, ok, err := sr.Push(col)
		if err != nil {
			return Cell{}, nil, err
		}
		if !ok {
			continue
		}
		cell.Rounds++
		tr.Push(rep)
		if rep.Abnormal {
			cell.AlarmRounds++
			// Mirror Detector.pointSpan: an abnormal round implicates the
			// final step's worth of its window.
			from := rep.WindowEnd - cfg.Window.S
			if from < 0 {
				from = 0
			}
			for t := from; t < rep.WindowEnd && t < len(pred); t++ {
				pred[t] = true
			}
		}
	}
	elapsed := time.Since(start)
	tr.Flush()
	if cell.Rounds == 0 {
		return Cell{}, nil, fmt.Errorf("scenario %s: no rounds completed", inst.Name)
	}
	cell.RoundsPerSec = round2(float64(cell.Rounds) / elapsed.Seconds())

	if cell.DPAF1, err = eval.BinaryF1(pred, inst.Labels, eval.DPA); err != nil {
		return Cell{}, nil, err
	}
	if cell.PAF1, err = eval.BinaryF1(pred, inst.Labels, eval.PA); err != nil {
		return Cell{}, nil, err
	}
	if cell.RawF1, err = eval.BinaryF1(pred, inst.Labels, eval.None); err != nil {
		return Cell{}, nil, err
	}
	if cell.FalseAlarmRate, err = eval.FalseAlarmRate(pred, inst.Labels); err != nil {
		return Cell{}, nil, err
	}
	delays, err := eval.Delays(pred, inst.Labels)
	if err != nil {
		return Cell{}, nil, err
	}
	cell.Detected, cell.Segments = delays.Detected, delays.Total
	cell.MeanDelayPoints = round2(delays.MeanDelay)
	cell.MeanDelayRounds = round2(delays.MeanDelay / float64(cfg.Window.S))

	preds := make([]eval.SensorPrediction, 0, 4)
	for _, a := range tr.Drain() {
		preds = append(preds, eval.SensorPrediction{
			Segment: eval.Segment{Start: a.Start, End: a.End},
			Sensors: a.Sensors,
		})
	}
	cell.SensorF1 = eval.SensorF1(preds, inst.Truths)
	return cell, pred, nil
}

// Run evaluates every scenario against every variant. The first variant is
// the Ahead/Miss reference. Floors are NOT set here — SetFloors derives
// them, and cmd/cadeval records them into the committed artifact.
func Run(scenarios []Scenario, variants []ConfigVariant) (*Matrix, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("scenario: no config variants")
	}
	m := &Matrix{Configs: variants}
	for _, s := range scenarios {
		inst, err := s.Build()
		if err != nil {
			return nil, err
		}
		res := ScenarioResult{
			Name: s.Name, Problem: s.Problem, Mechanism: s.Mechanism,
			Keywords: s.Keywords, Sensors: s.Sensors, Length: s.Length,
			Seed: s.Seed, Onset: s.Onset(), Affected: s.AffectedSensors(),
		}
		var refPred []bool
		for i, v := range variants {
			cell, pred, err := Evaluate(inst, v.Config)
			if err != nil {
				return nil, fmt.Errorf("scenario %s × %s: %w", s.Name, v.Name, err)
			}
			cell.Config = v.Name
			if i == 0 {
				refPred = pred
			} else {
				rel, err := eval.AheadMiss(pred, refPred, inst.Labels)
				if err != nil {
					return nil, err
				}
				cell.AheadVsBatch = round2(rel.Ahead)
				cell.MissVsBatch = round2(rel.Miss)
			}
			cell.DPAF1 = round2(cell.DPAF1)
			cell.PAF1 = round2(cell.PAF1)
			cell.RawF1 = round2(cell.RawF1)
			cell.SensorF1 = round2(cell.SensorF1)
			cell.FalseAlarmRate = round4(cell.FalseAlarmRate)
			res.Cells = append(res.Cells, cell)
		}
		m.Scenarios = append(m.Scenarios, res)
	}
	return m, nil
}

// SetFloors records, per scenario, the DPA-F1 floor scenariotest asserts:
// the gate variant's measured DPA-F1 minus slack, clamped to [0,1] and
// rounded down to 2 decimals.
func (m *Matrix) SetFloors(gate string, slack float64) error {
	m.GateConfig = gate
	for i := range m.Scenarios {
		cell, ok := m.Scenarios[i].Cell(gate)
		if !ok {
			return fmt.Errorf("scenario %s has no %q cell", m.Scenarios[i].Name, gate)
		}
		floor := math.Floor((cell.DPAF1-slack)*100) / 100
		if floor < 0 {
			floor = 0
		}
		m.Scenarios[i].Floor = floor
	}
	return nil
}

// Cell returns the scenario's cell for the named config.
func (r ScenarioResult) Cell(config string) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Config == config {
			return c, true
		}
	}
	return Cell{}, false
}

// Validate is the schema sanity check on a (decoded) BENCH_scenarios.json:
// shape, required fields, and metric ranges. It does not re-run anything.
func (m *Matrix) Validate(minScenarios, minConfigs int) error {
	if len(m.Scenarios) < minScenarios {
		return fmt.Errorf("matrix has %d scenarios, want ≥ %d", len(m.Scenarios), minScenarios)
	}
	if len(m.Configs) < minConfigs {
		return fmt.Errorf("matrix has %d configs, want ≥ %d", len(m.Configs), minConfigs)
	}
	if m.GateConfig == "" {
		return fmt.Errorf("matrix has no gateConfig")
	}
	seen := make(map[string]bool)
	for _, s := range m.Scenarios {
		if s.Name == "" || s.Problem == "" || s.Mechanism == "" {
			return fmt.Errorf("scenario %q: missing name/problem/mechanism", s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Keywords) == 0 {
			return fmt.Errorf("scenario %s: no keywords", s.Name)
		}
		if s.Onset <= 0 || s.Onset >= s.Length {
			return fmt.Errorf("scenario %s: onset %d outside series of length %d", s.Name, s.Onset, s.Length)
		}
		if len(s.Affected) == 0 {
			return fmt.Errorf("scenario %s: no affected sensors", s.Name)
		}
		if s.Floor < 0 || s.Floor > 1 {
			return fmt.Errorf("scenario %s: floor %v outside [0,1]", s.Name, s.Floor)
		}
		if len(s.Cells) < minConfigs {
			return fmt.Errorf("scenario %s: %d cells, want ≥ %d", s.Name, len(s.Cells), minConfigs)
		}
		if _, ok := s.Cell(m.GateConfig); !ok {
			return fmt.Errorf("scenario %s: missing gate cell %q", s.Name, m.GateConfig)
		}
		for _, c := range s.Cells {
			for name, v := range map[string]float64{
				"dpaF1": c.DPAF1, "paF1": c.PAF1, "rawF1": c.RawF1,
				"sensorF1": c.SensorF1, "falseAlarmRate": c.FalseAlarmRate,
				"aheadVsBatch": c.AheadVsBatch, "missVsBatch": c.MissVsBatch,
			} {
				if v < 0 || v > 1 || math.IsNaN(v) {
					return fmt.Errorf("scenario %s × %s: %s = %v outside [0,1]", s.Name, c.Config, name, v)
				}
			}
			if c.Rounds <= 0 {
				return fmt.Errorf("scenario %s × %s: no rounds", s.Name, c.Config)
			}
			if c.Detected > c.Segments {
				return fmt.Errorf("scenario %s × %s: detected %d > segments %d", s.Name, c.Config, c.Detected, c.Segments)
			}
		}
	}
	return nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round4(v float64) float64 { return math.Round(v*10000) / 10000 }
