package scenario

import "cad/internal/simulator"

// Corpus returns the ten named failure scenarios in stable order.
//
// Every scenario uses the same fleet shape — 32 sensors in 4 latent
// communities over 1200 points — so the scenario × config matrix compares
// failure modes under identical detector configurations. With the
// generator's round-robin assignment, community j owns sensors
// {j, j+4, j+8, …}; the mechanism strings below name communities in those
// terms. Onsets sit past point 400, leaving the detector > 80 rounds of
// clean history at the default w=64/s=4 windowing before the fault.
func Corpus() []Scenario {
	const (
		sensors     = 32
		communities = 4
		length      = 1200
	)
	base := func(name, problem, mechanism string, seed int64, keywords []string, injs ...simulator.Injection) Scenario {
		return Scenario{
			Name: name, Problem: problem, Mechanism: mechanism,
			Keywords: keywords,
			Sensors:  sensors, Communities: communities, Length: length,
			Seed: seed, Noise: 0.05, Cross: 0.1,
			Injections: injs,
		}
	}
	return []Scenario{
		base("crash-loop",
			"service stuck in a restart loop",
			"sensors 0/4/8 (community 0) collapse to their pre-fault floor on a fixed duty cycle from point 520: each down phase flatlines them, each up phase briefly recovers before the next crash",
			101,
			[]string{"crash loop", "restart", "flapping", "exit code"},
			simulator.Injection{Kind: simulator.Intermittent, Start: 520, End: 760, Sensors: []int{0, 4, 8}},
		),
		base("oom-kill",
			"memory climb ending in an OOM kill",
			"sensors 1/5/9 (community 1) ramp upward from point 480 (allocation growth), then flatline from 620 after the kill — a Drift injection followed by Stuck on the same sensors",
			102,
			[]string{"OOM", "out of memory", "memory leak", "killed"},
			simulator.Injection{Kind: simulator.Drift, Start: 480, End: 620, Sensors: []int{1, 5, 9}},
			simulator.Injection{Kind: simulator.Stuck, Start: 620, End: 760, Sensors: []int{1, 5, 9}},
		),
		base("cpu-throttle",
			"CPU pinned at its cgroup limit",
			"sensors 2/6/10/14 (community 2) are clipped against a ceiling below their pre-fault mean from point 500 — pegged at the limit with only the dips still carrying signal (CFS throttling)",
			103,
			[]string{"CPU throttling", "throttled", "CPU limit", "saturation"},
			simulator.Injection{Kind: simulator.Saturate, Start: 500, End: 740, Sensors: []int{2, 6, 10, 14}},
		),
		base("network-partition",
			"a rack partitioned from the rest of the fleet",
			"sensors 3/7/11 (part of community 3) switch to one shared replacement latent from point 540: still serving and still correlated with each other, but decoupled from their community driver",
			104,
			[]string{"network partition", "unreachable", "split brain", "isolated"},
			simulator.Injection{Kind: simulator.RegimeShift, Start: 540, End: 720, Sensors: []int{3, 7, 11}},
		),
		base("cascading-backend-timeout",
			"backend failure cascading through dependent services",
			"a correlation break starting on sensor 0 at point 520 and propagating to sensors 4, 1, 5, 2 at 8-point intervals (Stagger) — each dependent decouples as its upstream times out",
			105,
			[]string{"cascading failure", "timeout", "upstream", "dependency"},
			simulator.Injection{Kind: simulator.CorrelationBreak, Start: 520, End: 780, Sensors: []int{0, 4, 1, 5, 2}, Stagger: 8},
		),
		base("slow-leak",
			"slow resource leak ending in starvation",
			"sensors 3/7 (community 3) drift upward from point 420 — a shallow additive ramp that rides on the workload signal and is invisible to correlation analysis — until the leak starves the process at 700 and the metrics decouple from the workload driver (the hardest early-detection case: only the starvation phase is catchable)",
			106,
			[]string{"leak", "gradual", "slow growth", "starvation", "degradation"},
			simulator.Injection{Kind: simulator.Drift, Start: 420, End: 900, Sensors: []int{3, 7}},
			simulator.Injection{Kind: simulator.Dampen, Start: 700, End: 900, Sensors: []int{3, 7}},
		),
		base("thundering-herd",
			"synchronized retry storm",
			"sensors 0–9 (all four communities) take short synchronized spike bursts over points 560–640 — a retry storm hammering the whole fleet at once",
			107,
			[]string{"thundering herd", "retry storm", "spike", "burst"},
			simulator.Injection{Kind: simulator.Spike, Start: 560, End: 640, Sensors: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		),
		base("partial-sensor-dropout",
			"failing transducers fading into the noise floor",
			"sensors 8/12 (community 0) have their deviation from the pre-fault mean attenuated to 2% from point 500 — still reporting, but the signal is below the noise floor",
			108,
			[]string{"sensor failure", "dropout", "flatline", "no signal"},
			simulator.Injection{Kind: simulator.Dampen, Start: 500, End: 700, Sensors: []int{8, 12}},
		),
		base("correlated-regime-shift",
			"most of a community switching operating regime together",
			"five of the eight sensors of community 1 (1/5/9/13/17) move to one shared replacement latent from point 540: the shifted group stays internally correlated but tears away from the three left behind — the adversarial case for co-appearance mining, visible only at the tear",
			109,
			[]string{"regime shift", "mode change", "coordinated", "operating point"},
			simulator.Injection{Kind: simulator.RegimeShift, Start: 540, End: 760, Sensors: []int{1, 5, 9, 13, 17}},
		),
		base("noisy-deploy",
			"bad deploy adding jitter across part of the fleet",
			"sensors 0–5 gain a heavy additive noise burst over points 520–660 — the underlying signal is unchanged but drowned in deploy-induced jitter",
			110,
			[]string{"deploy", "jitter", "noisy", "regression"},
			simulator.Injection{Kind: simulator.NoiseBurst, Start: 520, End: 660, Sensors: []int{0, 1, 2, 3, 4, 5}},
		),
	}
}
