package scenario

// floor_test.go is the `make scenariotest` quality gate: it loads the
// committed BENCH_scenarios.json, schema-checks it, and re-runs the gate
// config on every scenario, failing if any DPA-F1 lands below its committed
// floor. A detector change that silently degrades a failure mode fails here
// until the floor is consciously re-recorded with `make scenario-record`.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// loadCommittedMatrix reads the repo-root artifact relative to this
// package's directory.
func loadCommittedMatrix(t *testing.T) *Matrix {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join("..", "..", "BENCH_scenarios.json"))
	if err != nil {
		t.Fatalf("read committed baseline: %v", err)
	}
	var m Matrix
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("decode committed baseline: %v", err)
	}
	return &m
}

// TestCommittedMatrixSchema is the JSON sanity check on the committed
// artifact: ≥ 10 scenarios × ≥ 4 configs, all metrics in range, a floor and
// a gate cell per scenario.
func TestCommittedMatrixSchema(t *testing.T) {
	m := loadCommittedMatrix(t)
	if err := m.Validate(10, 4); err != nil {
		t.Fatalf("committed BENCH_scenarios.json invalid: %v", err)
	}
	if m.Generated == "" || m.GoVersion == "" {
		t.Error("committed baseline missing generated/goVersion stamps")
	}
	// The artifact must cover the current corpus under its current names —
	// a renamed or added scenario needs a re-record.
	committed := make(map[string]bool)
	for _, s := range m.Scenarios {
		committed[s.Name] = true
	}
	for _, s := range Corpus() {
		if !committed[s.Name] {
			t.Errorf("corpus scenario %s missing from committed baseline (run `make scenario-record`)", s.Name)
		}
	}
}

// TestScenarioFloors re-runs the committed gate config on every scenario
// with its pinned seed and asserts DPA-F1 ≥ the committed floor.
func TestScenarioFloors(t *testing.T) {
	m := loadCommittedMatrix(t)
	var gate *ConfigVariant
	for _, v := range Variants() {
		if v.Name == m.GateConfig {
			v := v
			gate = &v
		}
	}
	if gate == nil {
		t.Fatalf("committed gate config %q is not in the current grid", m.GateConfig)
	}
	for _, sr := range m.Scenarios {
		sr := sr
		t.Run(sr.Name, func(t *testing.T) {
			s, ok := ByName(sr.Name)
			if !ok {
				t.Fatalf("committed scenario %s no longer in the corpus", sr.Name)
			}
			if s.Seed != sr.Seed {
				t.Fatalf("scenario %s seed changed (%d → %d) without a re-record", sr.Name, sr.Seed, s.Seed)
			}
			inst, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			cell, _, err := Evaluate(inst, gate.Config)
			if err != nil {
				t.Fatal(err)
			}
			if cell.DPAF1 < sr.Floor {
				t.Errorf("%s: DPA-F1 %.4f below committed floor %.2f (gate %s) — detection quality regressed, or re-record with `make scenario-record`",
					sr.Name, cell.DPAF1, sr.Floor, m.GateConfig)
			}
		})
	}
}
