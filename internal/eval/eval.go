// Package eval implements the paper's evaluation machinery (§V): the
// classic Point Adjustment (PA), the proposed Delay-aware Evaluation (DaE)
// with Delay-Point Adjustment (DPA) and the relative measures Ahead and
// Miss, plus F1 grid search over score thresholds, VUS-ROC/VUS-PR surfaces,
// and sensor-localization F1.
package eval

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when labels and predictions differ in length.
var ErrLengthMismatch = errors.New("eval: length mismatch")

// Segment is a maximal run of consecutive anomalous points [Start, End).
type Segment struct {
	Start, End int
}

// Len returns the number of points in the segment.
func (s Segment) Len() int { return s.End - s.Start }

// Segments extracts the maximal anomalous runs from a boolean label series.
func Segments(labels []bool) []Segment {
	var out []Segment
	start := -1
	for i, b := range labels {
		switch {
		case b && start < 0:
			start = i
		case !b && start >= 0:
			out = append(out, Segment{start, i})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, Segment{start, len(labels)})
	}
	return out
}

// Adjuster rewrites binary predictions with respect to the ground truth
// before point-wise scoring.
type Adjuster int

const (
	// None scores raw point-wise predictions.
	None Adjuster = iota
	// PA is classic point adjustment: if any point of a ground-truth
	// anomaly is predicted, every point of that anomaly counts as detected.
	PA
	// DPA is the paper's delay-point adjustment: only the points from the
	// first true positive onward are adjusted; earlier points stay missed,
	// penalizing late detection.
	DPA
)

// String returns the adjuster name.
func (a Adjuster) String() string {
	switch a {
	case None:
		return "none"
	case PA:
		return "PA"
	case DPA:
		return "DPA"
	default:
		return "Adjuster(?)"
	}
}

// Adjust returns a copy of pred rewritten under the adjuster's rule against
// truth. None returns an unmodified copy.
func Adjust(pred, truth []bool, a Adjuster) ([]bool, error) {
	if len(pred) != len(truth) {
		return nil, ErrLengthMismatch
	}
	out := make([]bool, len(pred))
	copy(out, pred)
	if a == None {
		return out, nil
	}
	for _, seg := range Segments(truth) {
		first := -1
		for i := seg.Start; i < seg.End; i++ {
			if pred[i] {
				first = i
				break
			}
		}
		if first < 0 {
			continue
		}
		from := seg.Start
		if a == DPA {
			from = first
		}
		for i := from; i < seg.End; i++ {
			out[i] = true
		}
	}
	return out, nil
}

// Confusion counts point-wise TP/FP/FN/TN.
type Confusion struct {
	TP, FP, FN, TN int
}

// Count tallies the confusion matrix of pred against truth.
func Count(pred, truth []bool) (Confusion, error) {
	if len(pred) != len(truth) {
		return Confusion{}, ErrLengthMismatch
	}
	var c Confusion
	for i := range pred {
		switch {
		case pred[i] && truth[i]:
			c.TP++
		case pred[i] && !truth[i]:
			c.FP++
		case !pred[i] && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c, nil
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when undefined.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FPR returns FP/(FP+TN), or 0 when undefined.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// F1At binarizes scores at the threshold (score ≥ threshold ⇒ anomalous),
// applies the adjuster, and returns the F1.
func F1At(scores []float64, truth []bool, threshold float64, a Adjuster) (float64, error) {
	pred := make([]bool, len(scores))
	for i, s := range scores {
		pred[i] = s >= threshold
	}
	adj, err := Adjust(pred, truth, a)
	if err != nil {
		return 0, err
	}
	c, err := Count(adj, truth)
	if err != nil {
		return 0, err
	}
	return c.F1(), nil
}

// Normalize rescales scores into [0,1] by min-max. Constant scores map to
// all zeros. NaNs map to 0.
func Normalize(scores []float64) []float64 {
	out := make([]float64, len(scores))
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range scores {
		if math.IsNaN(s) {
			continue
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if !(hi > lo) {
		return out
	}
	for i, s := range scores {
		if math.IsNaN(s) {
			continue
		}
		out[i] = (s - lo) / (hi - lo)
	}
	return out
}

// GridResult is the outcome of a threshold grid search.
type GridResult struct {
	F1        float64
	Threshold float64 // on the normalized [0,1] scale
	Pred      []bool  // adjusted predictions at the best threshold
}

// GridSearchF1 normalizes scores to [0,1] and sweeps `steps` thresholds
// evenly over (0,1], returning the best F1 under the adjuster — the paper's
// protocol ("grid search the optimal abnormal threshold from 0 to 1 with an
// interval of 0.001" means steps = 1000).
func GridSearchF1(scores []float64, truth []bool, a Adjuster, steps int) (GridResult, error) {
	if len(scores) != len(truth) {
		return GridResult{}, ErrLengthMismatch
	}
	if steps < 1 {
		steps = 1000
	}
	norm := Normalize(scores)
	best := GridResult{Threshold: math.NaN()}
	pred := make([]bool, len(norm))
	for k := 1; k <= steps; k++ {
		th := float64(k) / float64(steps)
		for i, s := range norm {
			pred[i] = s >= th
		}
		adj, err := Adjust(pred, truth, a)
		if err != nil {
			return GridResult{}, err
		}
		c, _ := Count(adj, truth)
		if f1 := c.F1(); f1 > best.F1 {
			best = GridResult{F1: f1, Threshold: th, Pred: adj}
		}
	}
	if best.Pred == nil {
		adj, err := Adjust(make([]bool, len(truth)), truth, a)
		if err != nil {
			return GridResult{}, err
		}
		best.Pred = adj
		best.Threshold = 1
	}
	return best, nil
}

// BinaryF1 scores already-binary predictions under the adjuster.
func BinaryF1(pred, truth []bool, a Adjuster) (float64, error) {
	adj, err := Adjust(pred, truth, a)
	if err != nil {
		return 0, err
	}
	c, err := Count(adj, truth)
	if err != nil {
		return 0, err
	}
	return c.F1(), nil
}
