package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlopedLabels(t *testing.T) {
	truth := rangeBools(12, [2]int{5, 8})
	labels := slopedLabels(truth, 2)
	// Core stays at 1.
	for i := 5; i < 8; i++ {
		if labels[i] != 1 {
			t.Errorf("labels[%d] = %v, want 1", i, labels[i])
		}
	}
	// Linear decay outside: distance 1 → 2/3, distance 2 → 1/3.
	if math.Abs(labels[4]-2.0/3) > 1e-9 || math.Abs(labels[3]-1.0/3) > 1e-9 {
		t.Errorf("left slope = %v %v", labels[4], labels[3])
	}
	if math.Abs(labels[8]-2.0/3) > 1e-9 || math.Abs(labels[9]-1.0/3) > 1e-9 {
		t.Errorf("right slope = %v %v", labels[8], labels[9])
	}
	if labels[2] != 0 || labels[11] != 0 {
		t.Errorf("beyond buffer should be 0: %v %v", labels[2], labels[11])
	}
	// l=0 reproduces the binary labels.
	bin := slopedLabels(truth, 0)
	for i := range truth {
		want := 0.0
		if truth[i] {
			want = 1
		}
		if bin[i] != want {
			t.Errorf("l=0 labels[%d] = %v", i, bin[i])
		}
	}
}

func TestWeightedCounts(t *testing.T) {
	labels := []float64{1, 0.5, 0, 0}
	pred := []bool{true, true, true, false}
	tp, fp, fn, tn := weightedCounts(pred, labels)
	if tp != 1.5 || fp != 1.5 || fn != 0 || tn != 1 {
		t.Errorf("counts = %v %v %v %v", tp, fp, fn, tn)
	}
}

func TestExistenceReward(t *testing.T) {
	truth := rangeBools(10, [2]int{1, 3}, [2]int{6, 9})
	segs := Segments(truth)
	if r := existenceReward(boolsFrom([]int{2}, 10), segs); r != 0.5 {
		t.Errorf("one of two detected: %v", r)
	}
	if r := existenceReward(boolsFrom([]int{2, 7}, 10), segs); r != 1 {
		t.Errorf("both detected: %v", r)
	}
	if r := existenceReward(make([]bool, 10), segs); r != 0 {
		t.Errorf("none detected: %v", r)
	}
	if r := existenceReward(nil, nil); r != 0 {
		t.Errorf("no segments: %v", r)
	}
}

func TestVUSSlopedPerfect(t *testing.T) {
	truth := rangeBools(300, [2]int{100, 150})
	scores := make([]float64, 300)
	for i := range scores {
		if truth[i] {
			scores[i] = 1
		}
	}
	res, err := VUSSloped(scores, truth, VUSConfig{MaxBuffer: 8, Thresholds: 50, Adjust: PA})
	if err != nil {
		t.Fatal(err)
	}
	if res.ROC < 0.85 || res.PR < 0.75 {
		t.Errorf("perfect scores: %+v", res)
	}
}

func TestVUSSlopedRanksLikeBinary(t *testing.T) {
	// A good scorer must beat a random scorer under both variants.
	rng := rand.New(rand.NewSource(4))
	truth := rangeBools(600, [2]int{200, 260}, [2]int{400, 430})
	good := make([]float64, 600)
	bad := make([]float64, 600)
	for i := range good {
		if truth[i] {
			good[i] = 0.8 + 0.2*rng.Float64()
		} else {
			good[i] = 0.2 * rng.Float64()
		}
		bad[i] = rng.Float64()
	}
	cfg := VUSConfig{MaxBuffer: 10, Thresholds: 40, Adjust: DPA}
	gs, err := VUSSloped(good, truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := VUSSloped(bad, truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gs.ROC <= bs.ROC || gs.PR <= bs.PR {
		t.Errorf("sloped VUS failed to rank: good %+v vs bad %+v", gs, bs)
	}
	gb, _ := VUS(good, truth, cfg)
	bb, _ := VUS(bad, truth, cfg)
	if gb.ROC <= bb.ROC {
		t.Errorf("binary VUS failed to rank: %v vs %v", gb.ROC, bb.ROC)
	}
}

// Property: sloped VUS stays within [0, 1].
func TestVUSSlopedBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(200)
		truth := make([]bool, n)
		scores := make([]float64, n)
		for i := range truth {
			truth[i] = rng.Float64() < 0.15
			scores[i] = rng.Float64()
		}
		res, err := VUSSloped(scores, truth, VUSConfig{MaxBuffer: 6, Thresholds: 20, Adjust: PA})
		if err != nil {
			return false
		}
		return res.ROC >= -1e-9 && res.ROC <= 1+1e-9 && res.PR >= -1e-9 && res.PR <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestVUSSlopedErrors(t *testing.T) {
	if _, err := VUSSloped([]float64{1}, []bool{true, false}, VUSConfig{}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
}
