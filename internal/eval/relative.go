package eval

// relative.go implements the DaE scheme's relative comparison (§V): Ahead
// and Miss between two methods' binary predictions.

// FirstDetection returns, per ground-truth segment, the index of the first
// predicted point inside the segment, or -1 when the segment is missed.
func FirstDetection(pred []bool, segs []Segment) []int {
	out := make([]int, len(segs))
	for i, seg := range segs {
		out[i] = -1
		for t := seg.Start; t < seg.End && t < len(pred); t++ {
			if pred[t] {
				out[i] = t
				break
			}
		}
	}
	return out
}

// RelativeResult carries the Ahead and Miss measures of method M1 against
// method M2.
type RelativeResult struct {
	// Ahead = I_ahead / I_d: of the anomalies M1 detected, the fraction it
	// detected strictly ahead of M2 (anomalies M2 missed entirely count as
	// ahead). 0 when M1 detected nothing.
	Ahead float64
	// Miss = I_miss / (I − I_d): of the anomalies M1 missed, the fraction
	// M2 detected. 0 when M1 detected everything.
	Miss float64
	// Detected is I_d, the number of anomalies M1 detected.
	Detected int
	// Total is I, the number of ground-truth anomalies.
	Total int
}

// AheadMiss compares M1's predictions against M2's on the same ground
// truth. An anomaly counts as detected by a method when any of its points is
// predicted (the PA notion of detection); "ahead" compares the first
// detected point within the anomaly.
func AheadMiss(pred1, pred2, truth []bool) (RelativeResult, error) {
	if len(pred1) != len(truth) || len(pred2) != len(truth) {
		return RelativeResult{}, ErrLengthMismatch
	}
	segs := Segments(truth)
	f1 := FirstDetection(pred1, segs)
	f2 := FirstDetection(pred2, segs)
	res := RelativeResult{Total: len(segs)}
	ahead, miss := 0, 0
	for i := range segs {
		switch {
		case f1[i] >= 0:
			res.Detected++
			if f2[i] < 0 || f1[i] < f2[i] {
				ahead++
			}
		case f2[i] >= 0:
			miss++
		}
	}
	if res.Detected > 0 {
		res.Ahead = float64(ahead) / float64(res.Detected)
	}
	if missed := res.Total - res.Detected; missed > 0 {
		res.Miss = float64(miss) / float64(missed)
	}
	return res, nil
}

// DetectionDelay returns, per ground-truth segment, the delay in time
// points between the anomaly's start and the first detection (−1 when
// missed). This backs the paper's case study (Figure 7), which reports how
// many points each method needs before alarming.
func DetectionDelay(pred []bool, truth []bool) ([]int, error) {
	if len(pred) != len(truth) {
		return nil, ErrLengthMismatch
	}
	segs := Segments(truth)
	first := FirstDetection(pred, segs)
	out := make([]int, len(segs))
	for i := range segs {
		if first[i] < 0 {
			out[i] = -1
		} else {
			out[i] = first[i] - segs[i].Start
		}
	}
	return out, nil
}
