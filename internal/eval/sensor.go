package eval

// sensor.go implements the abnormal-sensor localization metric (paper
// §VI-C): per ground-truth anomaly, the predicted abnormal sensors are
// merged over the anomaly's period and compared against the labeled
// abnormal sensors with a set F1; F1_sensor is the mean over anomalies.

import "sort"

// SensorTruth labels one ground-truth anomaly: its time span and the
// sensors responsible.
type SensorTruth struct {
	Segment Segment
	Sensors []int
}

// SensorPrediction is one predicted anomaly with the sensors the detector
// blames.
type SensorPrediction struct {
	Segment Segment
	Sensors []int
}

func setF1(pred, truth []int) float64 {
	if len(truth) == 0 {
		if len(pred) == 0 {
			return 1
		}
		return 0
	}
	ts := make(map[int]struct{}, len(truth))
	for _, s := range truth {
		ts[s] = struct{}{}
	}
	tp := 0
	seen := make(map[int]struct{}, len(pred))
	for _, s := range pred {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		if _, ok := ts[s]; ok {
			tp++
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(len(seen))
	r := float64(tp) / float64(len(ts))
	return 2 * p * r / (p + r)
}

func overlaps(a, b Segment) bool { return a.Start < b.End && b.Start < a.End }

// SensorF1 merges, for each ground-truth anomaly, the sensors of every
// predicted anomaly overlapping its period, and returns the mean set-F1
// across all ground-truth anomalies (missed anomalies contribute 0).
func SensorF1(preds []SensorPrediction, truths []SensorTruth) float64 {
	if len(truths) == 0 {
		return 0
	}
	var total float64
	for _, gt := range truths {
		merged := make(map[int]struct{})
		for _, p := range preds {
			if overlaps(p.Segment, gt.Segment) {
				for _, s := range p.Sensors {
					merged[s] = struct{}{}
				}
			}
		}
		ps := make([]int, 0, len(merged))
		for s := range merged {
			ps = append(ps, s)
		}
		sort.Ints(ps)
		total += setF1(ps, gt.Sensors)
	}
	return total / float64(len(truths))
}

// TopKSensors converts a per-sensor score vector into the k highest-scoring
// sensor indices — the localization rule used to give score-based baselines
// (ECOD, RCoders) a sensor prediction.
func TopKSensors(scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make([]int, k)
	copy(out, idx[:k])
	sort.Ints(out)
	return out
}
