package eval

// vus_sloped.go implements the continuous-label variant of the VUS metrics,
// closer to the reference definition of Paparrizos et al. (PVLDB 2022):
// instead of extending ground-truth segments with binary buffers, each
// buffer point carries a weight decaying linearly from 1 at the segment
// edge to 0 at distance ℓ, and the confusion counts become weighted sums.
// The recall term additionally receives the reference's "existence" reward:
// a segment contributes its detection indicator so that detecting an
// anomaly at all is worth part of the credit.

import "sort"

// slopedLabels returns the continuous label vector for buffer width l.
func slopedLabels(truth []bool, l int) []float64 {
	out := make([]float64, len(truth))
	for i, b := range truth {
		if b {
			out[i] = 1
		}
	}
	if l == 0 {
		return out
	}
	for _, seg := range Segments(truth) {
		for d := 1; d <= l; d++ {
			w := 1 - float64(d)/float64(l+1)
			if i := seg.Start - d; i >= 0 && out[i] < w {
				out[i] = w
			}
			if i := seg.End - 1 + d; i < len(out) && out[i] < w {
				out[i] = w
			}
		}
	}
	return out
}

// weightedCounts computes the weighted confusion of binary pred against
// continuous labels: TP = Σ label over predicted points, FP = Σ (1−label)
// over predicted points, etc.
func weightedCounts(pred []bool, labels []float64) (tp, fp, fn, tn float64) {
	for i, p := range pred {
		l := labels[i]
		if p {
			tp += l
			fp += 1 - l
		} else {
			fn += l
			tn += 1 - l
		}
	}
	return tp, fp, fn, tn
}

// existenceReward returns the fraction of ground-truth segments with at
// least one predicted point.
func existenceReward(pred []bool, segs []Segment) float64 {
	if len(segs) == 0 {
		return 0
	}
	hit := 0
	for _, seg := range segs {
		for i := seg.Start; i < seg.End && i < len(pred); i++ {
			if pred[i] {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(segs))
}

// VUSSloped computes VUS-ROC and VUS-PR with sloped buffer labels and the
// existence-weighted recall. The cfg.Adjust rewriting applies before the
// weighted counting, as in VUS.
func VUSSloped(scores []float64, truth []bool, cfg VUSConfig) (VUSResult, error) {
	if len(scores) != len(truth) {
		return VUSResult{}, ErrLengthMismatch
	}
	if cfg.Thresholds <= 0 {
		cfg.Thresholds = 100
	}
	if cfg.MaxBuffer < 0 {
		cfg.MaxBuffer = 0
	}
	if cfg.Step <= 0 {
		cfg.Step = cfg.MaxBuffer / 4
		if cfg.Step < 1 {
			cfg.Step = 1
		}
	}
	norm := Normalize(scores)
	segs := Segments(truth)
	var sumROC, sumPR float64
	count := 0
	pred := make([]bool, len(norm))
	for l := 0; l <= cfg.MaxBuffer; l += cfg.Step {
		labels := slopedLabels(truth, l)
		// Binary truth for the PA/DPA rewriting step uses the widened
		// segments (label > 0).
		widened := make([]bool, len(labels))
		for i, v := range labels {
			widened[i] = v > 0
		}
		type pt struct{ fpr, tpr, prec float64 }
		pts := make([]pt, 0, cfg.Thresholds+2)
		for k := 1; k <= cfg.Thresholds; k++ {
			th := float64(k) / float64(cfg.Thresholds+1)
			for i, s := range norm {
				pred[i] = s >= th
			}
			adj, err := Adjust(pred, widened, cfg.Adjust)
			if err != nil {
				return VUSResult{}, err
			}
			tp, fp, fn, tn := weightedCounts(adj, labels)
			ex := existenceReward(adj, segs)
			var tpr, fpr, prec float64
			if tp+fn > 0 {
				// Existence-weighted recall, as in the reference: the
				// point-level recall scaled toward segment detection.
				tpr = (tp / (tp + fn)) * (0.5 + 0.5*ex)
			}
			if fp+tn > 0 {
				fpr = fp / (fp + tn)
			}
			if tp+fp > 0 {
				prec = tp / (tp + fp)
			}
			pts = append(pts, pt{fpr, tpr, prec})
		}
		pts = append(pts, pt{0, 0, 1}, pt{1, 1, 0})
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].fpr != pts[j].fpr {
				return pts[i].fpr < pts[j].fpr
			}
			return pts[i].tpr < pts[j].tpr
		})
		var roc float64
		for i := 1; i < len(pts); i++ {
			roc += (pts[i].fpr - pts[i-1].fpr) * (pts[i].tpr + pts[i-1].tpr) / 2
		}
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].tpr != pts[j].tpr {
				return pts[i].tpr < pts[j].tpr
			}
			return pts[i].prec > pts[j].prec
		})
		var pr float64
		for i := 1; i < len(pts); i++ {
			pr += (pts[i].tpr - pts[i-1].tpr) * (pts[i].prec + pts[i-1].prec) / 2
		}
		sumROC += roc
		sumPR += pr
		count++
	}
	return VUSResult{ROC: sumROC / float64(count), PR: sumPR / float64(count)}, nil
}
