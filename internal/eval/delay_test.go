package eval

import (
	"math"
	"testing"
)

func TestSummarizeDelays(t *testing.T) {
	s := SummarizeDelays([]int{0, 4, -1, 8})
	if s.Total != 4 || s.Detected != 3 {
		t.Fatalf("detected/total = %d/%d", s.Detected, s.Total)
	}
	if s.MeanDelay != 4 || s.MaxDelay != 8 {
		t.Fatalf("mean/max = %v/%v", s.MeanDelay, s.MaxDelay)
	}
	if z := SummarizeDelays([]int{-1, -1}); z.Detected != 0 || z.MeanDelay != 0 || z.MaxDelay != 0 {
		t.Fatalf("all-missed summary = %+v", z)
	}
	if z := SummarizeDelays(nil); z.Total != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestDelays(t *testing.T) {
	truth := []bool{false, true, true, true, false, true, true, false}
	pred := []bool{false, false, false, true, false, false, false, false}
	s, err := Delays(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Segment [1,4) detected at 3 (delay 2); segment [5,7) missed.
	if s.Total != 2 || s.Detected != 1 || s.MeanDelay != 2 || s.MaxDelay != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if _, err := Delays(pred[:3], truth); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestFalseAlarmRate(t *testing.T) {
	truth := []bool{false, false, true, true, false, false}
	pred := []bool{true, false, true, false, false, true}
	got, err := FalseAlarmRate(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	// 4 normal points, 2 flagged.
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FAR = %v, want 0.5", got)
	}
	if _, err := FalseAlarmRate(pred[:2], truth); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestOnsetHit(t *testing.T) {
	seg := Segment{Start: 100, End: 140}
	for _, tc := range []struct {
		at, slack int
		want      bool
	}{
		{99, 0, false},  // before onset
		{100, 0, true},  // at onset
		{139, 0, true},  // last in-segment point
		{140, 0, false}, // past end, no slack
		{145, 10, true}, // inside slack
		{150, 10, false},
	} {
		if got := OnsetHit(seg, tc.at, tc.slack); got != tc.want {
			t.Errorf("OnsetHit(%+v, %d, %d) = %v", seg, tc.at, tc.slack, got)
		}
	}
}
