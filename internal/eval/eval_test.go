package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func boolsFrom(idx []int, n int) []bool {
	out := make([]bool, n)
	for _, i := range idx {
		out[i] = true
	}
	return out
}

func rangeBools(n int, spans ...[2]int) []bool {
	out := make([]bool, n)
	for _, sp := range spans {
		for i := sp[0]; i < sp[1]; i++ {
			out[i] = true
		}
	}
	return out
}

func TestSegments(t *testing.T) {
	labels := rangeBools(10, [2]int{2, 5}, [2]int{7, 10})
	segs := Segments(labels)
	if len(segs) != 2 || segs[0] != (Segment{2, 5}) || segs[1] != (Segment{7, 10}) {
		t.Errorf("Segments = %v", segs)
	}
	if len(Segments(make([]bool, 5))) != 0 {
		t.Error("no segments expected")
	}
	all := Segments([]bool{true, true})
	if len(all) != 1 || all[0] != (Segment{0, 2}) {
		t.Errorf("full-run segment = %v", all)
	}
	if (Segment{2, 5}).Len() != 3 {
		t.Error("Segment.Len wrong")
	}
}

// TestPaperFigure3 reproduces the worked example of §V: ground truth
// anomalies at t2–t4 and t7–t10 (0-indexed), M1 predicting {t2, t10}.
// Raw F1 = 44.4%, F1_PA = 100%, F1_DPA = 72.7%.
func TestPaperFigure3(t *testing.T) {
	truth := rangeBools(12, [2]int{2, 5}, [2]int{7, 11})
	m1 := boolsFrom([]int{2, 10}, 12)

	raw, err := BinaryF1(m1, truth, None)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(raw-4.0/9.0) > 1e-9 {
		t.Errorf("raw F1 = %v, want 0.444…", raw)
	}
	pa, _ := BinaryF1(m1, truth, PA)
	if math.Abs(pa-1) > 1e-9 {
		t.Errorf("F1_PA = %v, want 1", pa)
	}
	dpa, _ := BinaryF1(m1, truth, DPA)
	if math.Abs(dpa-8.0/11.0) > 1e-9 {
		t.Errorf("F1_DPA = %v, want 0.727…", dpa)
	}

	// Relative comparison with M2 = {t3, t8}: M1 detects anomaly 1 earlier,
	// M2 detects anomaly 2 earlier → Ahead = 50%, Miss = 0.
	m2 := boolsFrom([]int{3, 8}, 12)
	rel, err := AheadMiss(m1, m2, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Ahead != 0.5 || rel.Miss != 0 || rel.Detected != 2 || rel.Total != 2 {
		t.Errorf("AheadMiss = %+v, want Ahead=0.5 Miss=0", rel)
	}
}

func TestAdjustModes(t *testing.T) {
	truth := rangeBools(8, [2]int{2, 6})
	pred := boolsFrom([]int{4}, 8)
	adjPA, _ := Adjust(pred, truth, PA)
	for i := 2; i < 6; i++ {
		if !adjPA[i] {
			t.Errorf("PA: point %d not adjusted", i)
		}
	}
	adjDPA, _ := Adjust(pred, truth, DPA)
	if adjDPA[2] || adjDPA[3] || !adjDPA[4] || !adjDPA[5] {
		t.Errorf("DPA adjusted = %v", adjDPA)
	}
	adjNone, _ := Adjust(pred, truth, None)
	if adjNone[5] {
		t.Error("None must not adjust")
	}
	// Missed anomaly stays missed under both.
	missed := make([]bool, 8)
	for _, a := range []Adjuster{PA, DPA} {
		adj, _ := Adjust(missed, truth, a)
		for i, b := range adj {
			if b {
				t.Errorf("%v adjusted point %d of an undetected anomaly", a, i)
			}
		}
	}
	if _, err := Adjust(pred, truth[:3], PA); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
}

func TestAdjusterString(t *testing.T) {
	if None.String() != "none" || PA.String() != "PA" || DPA.String() != "DPA" {
		t.Error("Adjuster names wrong")
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 6, FP: 2, FN: 2, TN: 10}
	if c.Precision() != 0.75 || c.Recall() != 0.75 {
		t.Errorf("P=%v R=%v", c.Precision(), c.Recall())
	}
	if c.F1() != 0.75 {
		t.Errorf("F1 = %v", c.F1())
	}
	if c.FPR() != 2.0/12.0 {
		t.Errorf("FPR = %v", c.FPR())
	}
	zero := Confusion{}
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.FPR() != 0 {
		t.Error("degenerate confusion should yield zeros")
	}
}

// Property: F1_DPA ≤ F1_PA for any prediction/truth pair (DPA is the more
// rigorous evaluation, §V).
func TestDPALEQPAProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		truth := make([]bool, n)
		pred := make([]bool, n)
		for i := range truth {
			truth[i] = rng.Float64() < 0.25
			pred[i] = rng.Float64() < 0.2
		}
		pa, err := BinaryF1(pred, truth, PA)
		if err != nil {
			return false
		}
		dpa, err := BinaryF1(pred, truth, DPA)
		if err != nil {
			return false
		}
		raw, _ := BinaryF1(pred, truth, None)
		return dpa <= pa+1e-9 && raw <= dpa+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6})
	if out[0] != 0 || out[1] != 0.5 || out[2] != 1 {
		t.Errorf("Normalize = %v", out)
	}
	flat := Normalize([]float64{3, 3})
	if flat[0] != 0 || flat[1] != 0 {
		t.Errorf("constant Normalize = %v", flat)
	}
	withNaN := Normalize([]float64{math.NaN(), 1, 3})
	if withNaN[0] != 0 || withNaN[2] != 1 {
		t.Errorf("NaN Normalize = %v", withNaN)
	}
}

func TestGridSearchF1(t *testing.T) {
	truth := rangeBools(20, [2]int{5, 10})
	scores := make([]float64, 20)
	for i := 5; i < 10; i++ {
		scores[i] = 0.9
	}
	scores[15] = 0.3 // noise below the best threshold
	res, err := GridSearchF1(scores, truth, None, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.F1 != 1 {
		t.Errorf("best F1 = %v, want 1 (scores separate perfectly)", res.F1)
	}
	if res.Threshold <= 0.3 {
		t.Errorf("threshold %v should exceed the noise score", res.Threshold)
	}
	// All-zero scores: F1 is 0 but call must not fail.
	res, err = GridSearchF1(make([]float64, 20), truth, PA, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.F1 != 0 || res.Pred == nil {
		t.Errorf("zero-score grid: %+v", res)
	}
	if _, err := GridSearchF1(scores, truth[:5], None, 10); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
}

func TestF1At(t *testing.T) {
	truth := rangeBools(10, [2]int{4, 8})
	scores := []float64{0, 0, 0, 0, 0.9, 0.1, 0.1, 0.1, 0, 0}
	f1, err := F1At(scores, truth, 0.5, PA)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != 1 {
		t.Errorf("F1At PA = %v, want 1 (first point detected)", f1)
	}
	f1, _ = F1At(scores, truth, 0.5, None)
	if f1 >= 1 {
		t.Errorf("F1At None = %v, want < 1", f1)
	}
}

func TestAheadMissEdgeCases(t *testing.T) {
	truth := rangeBools(10, [2]int{2, 4}, [2]int{6, 9})
	// M1 detects nothing: Ahead = 0; Miss counts M2's detections.
	none := make([]bool, 10)
	m2 := boolsFrom([]int{2}, 10)
	rel, err := AheadMiss(none, m2, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Ahead != 0 || rel.Miss != 0.5 || rel.Detected != 0 {
		t.Errorf("none vs m2: %+v", rel)
	}
	// M1 detects an anomaly M2 misses entirely → counted as ahead.
	m1 := boolsFrom([]int{7}, 10)
	rel, _ = AheadMiss(m1, none, truth)
	if rel.Ahead != 1 || rel.Miss != 0 {
		t.Errorf("m1 vs none: %+v", rel)
	}
	// Same first detection: not ahead.
	rel, _ = AheadMiss(m2, m2, truth)
	if rel.Ahead != 0 {
		t.Errorf("tie should not count as ahead: %+v", rel)
	}
	if _, err := AheadMiss(m1, m2, truth[:4]); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
}

func TestDetectionDelay(t *testing.T) {
	truth := rangeBools(12, [2]int{2, 6}, [2]int{8, 11})
	pred := boolsFrom([]int{4, 5}, 12)
	d, err := DetectionDelay(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || d[0] != 2 || d[1] != -1 {
		t.Errorf("delays = %v, want [2, -1]", d)
	}
	if _, err := DetectionDelay(pred, truth[:3]); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
}

func TestVUSPerfectScores(t *testing.T) {
	truth := rangeBools(200, [2]int{50, 80}, [2]int{120, 140})
	scores := make([]float64, 200)
	for i := range scores {
		if truth[i] {
			scores[i] = 1
		}
	}
	res, err := VUS(scores, truth, VUSConfig{MaxBuffer: 8, Thresholds: 50, Adjust: PA})
	if err != nil {
		t.Fatal(err)
	}
	if res.ROC < 0.9 || res.PR < 0.8 {
		t.Errorf("perfect scores: VUS = %+v, want near 1", res)
	}
}

func TestVUSRandomScores(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := rangeBools(500, [2]int{100, 150})
	scores := make([]float64, 500)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	res, err := VUS(scores, truth, VUSConfig{MaxBuffer: 0, Thresholds: 100, Adjust: None})
	if err != nil {
		t.Fatal(err)
	}
	if res.ROC < 0.3 || res.ROC > 0.7 {
		t.Errorf("random scores: VUS-ROC = %v, want ≈ 0.5", res.ROC)
	}
}

// Property: VUS values stay within [0,1].
func TestVUSBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		truth := make([]bool, n)
		scores := make([]float64, n)
		for i := range truth {
			truth[i] = rng.Float64() < 0.2
			scores[i] = rng.Float64()
		}
		res, err := VUS(scores, truth, VUSConfig{MaxBuffer: 4, Thresholds: 20, Adjust: DPA})
		if err != nil {
			return false
		}
		return res.ROC >= -1e-9 && res.ROC <= 1+1e-9 && res.PR >= -1e-9 && res.PR <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVUSErrors(t *testing.T) {
	if _, err := VUS([]float64{1}, []bool{true, false}, VUSConfig{}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
}

func TestSensorF1(t *testing.T) {
	truths := []SensorTruth{
		{Segment: Segment{10, 20}, Sensors: []int{0, 1, 2}},
		{Segment: Segment{40, 50}, Sensors: []int{5}},
	}
	preds := []SensorPrediction{
		{Segment: Segment{12, 18}, Sensors: []int{0, 1, 2}}, // perfect on anomaly 1
		{Segment: Segment{44, 46}, Sensors: []int{5, 6}},    // partial on anomaly 2
	}
	got := SensorF1(preds, truths)
	// Anomaly 1: F1 = 1. Anomaly 2: P = 1/2, R = 1 → F1 = 2/3. Mean = 5/6.
	if math.Abs(got-5.0/6.0) > 1e-9 {
		t.Errorf("SensorF1 = %v, want 5/6", got)
	}
	// Missed anomalies contribute 0.
	got = SensorF1(nil, truths)
	if got != 0 {
		t.Errorf("no predictions: SensorF1 = %v", got)
	}
	if SensorF1(preds, nil) != 0 {
		t.Error("no truths: want 0")
	}
	// Non-overlapping prediction contributes nothing.
	got = SensorF1([]SensorPrediction{{Segment: Segment{100, 110}, Sensors: []int{0}}}, truths)
	if got != 0 {
		t.Errorf("disjoint prediction: SensorF1 = %v", got)
	}
}

func TestSetF1Dedup(t *testing.T) {
	// Duplicate predicted sensors must not inflate precision.
	got := setF1([]int{1, 1, 2}, []int{1, 2})
	if got != 1 {
		t.Errorf("dedup setF1 = %v, want 1", got)
	}
	if setF1(nil, nil) != 1 {
		t.Error("empty-vs-empty should be 1")
	}
	if setF1([]int{1}, nil) != 0 {
		t.Error("prediction against empty truth should be 0")
	}
}

func TestTopKSensors(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	got := TopKSensors(scores, 3)
	want := []int{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("TopKSensors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopKSensors = %v, want %v", got, want)
		}
	}
	if len(TopKSensors(scores, 99)) != 5 {
		t.Error("k beyond len should clamp")
	}
}

func TestFirstDetection(t *testing.T) {
	truth := rangeBools(10, [2]int{2, 5}, [2]int{7, 9})
	segs := Segments(truth)
	pred := boolsFrom([]int{3, 4}, 10)
	f := FirstDetection(pred, segs)
	if f[0] != 3 || f[1] != -1 {
		t.Errorf("FirstDetection = %v", f)
	}
}
