package eval

import "testing"

func decodeBools(data []byte, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		if i < len(data) {
			out[i] = data[i]&1 == 1
		}
	}
	return out
}

// FuzzAdjust checks the adjustment invariants on arbitrary label pairs:
// never panics, never unsets a prediction, DPA ⊆ PA, and F1 ordering
// raw ≤ DPA ≤ PA.
func FuzzAdjust(f *testing.F) {
	f.Add([]byte{1, 0, 1}, []byte{0, 1, 1})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 1, 1, 1}, []byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, predBytes, truthBytes []byte) {
		n := len(predBytes)
		if len(truthBytes) < n {
			n = len(truthBytes)
		}
		if n > 4096 {
			n = 4096
		}
		pred := decodeBools(predBytes[:n], n)
		truth := decodeBools(truthBytes[:n], n)

		pa, err := Adjust(pred, truth, PA)
		if err != nil {
			t.Fatal(err)
		}
		dpa, err := Adjust(pred, truth, DPA)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if pred[i] && !pa[i] {
				t.Fatalf("PA unset a prediction at %d", i)
			}
			if dpa[i] && !pa[i] {
				t.Fatalf("DPA ⊄ PA at %d", i)
			}
			if (pa[i] && !pred[i]) && !truth[i] {
				t.Fatalf("PA set a point outside ground truth at %d", i)
			}
		}
		raw, _ := BinaryF1(pred, truth, None)
		fd, _ := BinaryF1(pred, truth, DPA)
		fp, _ := BinaryF1(pred, truth, PA)
		if raw > fd+1e-9 || fd > fp+1e-9 {
			t.Fatalf("F1 ordering violated: raw %v dpa %v pa %v", raw, fd, fp)
		}
	})
}

// FuzzSegments checks that Segments is a partition of the true points.
func FuzzSegments(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data)
		if n > 4096 {
			n = 4096
		}
		labels := decodeBools(data[:n], n)
		segs := Segments(labels)
		covered := make([]bool, n)
		prevEnd := -1
		for _, s := range segs {
			if s.Start >= s.End || s.Start < 0 || s.End > n {
				t.Fatalf("bad segment %+v", s)
			}
			if s.Start <= prevEnd {
				t.Fatalf("segments overlap or touch: %v", segs)
			}
			prevEnd = s.End
			for i := s.Start; i < s.End; i++ {
				if !labels[i] {
					t.Fatalf("segment covers false point %d", i)
				}
				covered[i] = true
			}
		}
		for i, l := range labels {
			if l && !covered[i] {
				t.Fatalf("true point %d uncovered", i)
			}
		}
	})
}
