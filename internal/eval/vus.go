package eval

// vus.go implements Volume Under the Surface metrics (VUS-ROC, VUS-PR) in
// the spirit of Paparrizos et al. (PVLDB 2022): the AUC of the ROC (resp.
// PR) curve is computed for a range of ground-truth buffer widths ℓ and
// averaged, making the measure robust to slight misalignment between
// predicted and labeled anomaly boundaries. The paper reports VUS after PA
// and after DPA, so each threshold's binary predictions are adjusted before
// the confusion counts.
//
// This implementation differs from the reference in one simplification,
// documented in DESIGN.md: the buffer extension is binary (a point within ℓ
// of a labeled segment is labeled anomalous) rather than a sloped weight.
// Rankings are preserved in practice, which is what the reproduced figures
// compare.

import "sort"

// VUSConfig parameterizes the surface.
type VUSConfig struct {
	// MaxBuffer is the largest boundary extension ℓ (in points). The
	// surface averages ℓ = 0, Step, 2·Step, …, MaxBuffer.
	MaxBuffer int
	// Step between consecutive buffer widths. Zero means MaxBuffer/4
	// (minimum 1).
	Step int
	// Thresholds caps how many score thresholds the curves sample. Zero
	// means 100.
	Thresholds int
	// Adjust is applied to each threshold's binary predictions before
	// counting.
	Adjust Adjuster
}

// VUSResult carries both surfaces.
type VUSResult struct {
	ROC float64 // volume under the ROC surface, in [0,1]
	PR  float64 // volume under the PR surface, in [0,1]
}

// extend returns truth with every labeled segment widened by ℓ points on
// each side.
func extend(truth []bool, l int) []bool {
	if l == 0 {
		out := make([]bool, len(truth))
		copy(out, truth)
		return out
	}
	out := make([]bool, len(truth))
	for _, seg := range Segments(truth) {
		from, to := seg.Start-l, seg.End+l
		if from < 0 {
			from = 0
		}
		if to > len(out) {
			to = len(out)
		}
		for i := from; i < to; i++ {
			out[i] = true
		}
	}
	return out
}

// aucPoints integrates the ROC and PR curves for one label vector.
func aucCurves(scores []float64, truth []bool, thresholds []float64, adj Adjuster) (rocAUC, prAUC float64) {
	type pt struct{ fpr, tpr, prec float64 }
	pts := make([]pt, 0, len(thresholds)+2)
	pred := make([]bool, len(scores))
	for _, th := range thresholds {
		for i, s := range scores {
			pred[i] = s >= th
		}
		a, err := Adjust(pred, truth, adj)
		if err != nil {
			return 0, 0
		}
		c, _ := Count(a, truth)
		pts = append(pts, pt{c.FPR(), c.Recall(), c.Precision()})
	}
	// Anchor points: everything predicted (threshold −∞) and nothing.
	allC, _ := Count(extend(truth, len(truth)), truth) // pred = all true
	pts = append(pts, pt{1, 1, allC.Precision()})
	pts = append(pts, pt{0, 0, 1})
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].fpr != pts[j].fpr {
			return pts[i].fpr < pts[j].fpr
		}
		return pts[i].tpr < pts[j].tpr
	})
	for i := 1; i < len(pts); i++ {
		rocAUC += (pts[i].fpr - pts[i-1].fpr) * (pts[i].tpr + pts[i-1].tpr) / 2
	}
	// PR: integrate precision over recall.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].tpr != pts[j].tpr {
			return pts[i].tpr < pts[j].tpr
		}
		return pts[i].prec > pts[j].prec
	})
	for i := 1; i < len(pts); i++ {
		prAUC += (pts[i].tpr - pts[i-1].tpr) * (pts[i].prec + pts[i-1].prec) / 2
	}
	return rocAUC, prAUC
}

// VUS computes the volume-under-surface metrics of the score series against
// the ground truth.
func VUS(scores []float64, truth []bool, cfg VUSConfig) (VUSResult, error) {
	if len(scores) != len(truth) {
		return VUSResult{}, ErrLengthMismatch
	}
	if cfg.Thresholds <= 0 {
		cfg.Thresholds = 100
	}
	if cfg.MaxBuffer < 0 {
		cfg.MaxBuffer = 0
	}
	if cfg.Step <= 0 {
		cfg.Step = cfg.MaxBuffer / 4
		if cfg.Step < 1 {
			cfg.Step = 1
		}
	}
	norm := Normalize(scores)
	thresholds := make([]float64, cfg.Thresholds)
	for k := range thresholds {
		thresholds[k] = float64(k+1) / float64(cfg.Thresholds+1)
	}
	var sumROC, sumPR float64
	count := 0
	for l := 0; l <= cfg.MaxBuffer; l += cfg.Step {
		t := extend(truth, l)
		roc, pr := aucCurves(norm, t, thresholds, cfg.Adjust)
		sumROC += roc
		sumPR += pr
		count++
	}
	return VUSResult{ROC: sumROC / float64(count), PR: sumPR / float64(count)}, nil
}
