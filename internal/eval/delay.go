package eval

// delay.go provides the aggregate detection-delay and false-alarm measures
// the scenario evaluation matrix reports per cell, built on the per-segment
// primitives of relative.go. The paper's case study (Figure 7) reports raw
// delays; the matrix needs them summarized so one number per
// scenario × config can be tracked across commits.

// DelaySummary aggregates the per-segment detection delays of one
// prediction against one ground truth.
type DelaySummary struct {
	// Detected and Total count ground-truth anomalies hit vs all.
	Detected, Total int
	// MeanDelay and MaxDelay are over the detected anomalies only, in time
	// points from the anomaly's onset to the first predicted point. Both
	// are 0 when nothing was detected.
	MeanDelay, MaxDelay float64
}

// SummarizeDelays folds the output of DetectionDelay (−1 = missed) into a
// DelaySummary.
func SummarizeDelays(delays []int) DelaySummary {
	s := DelaySummary{Total: len(delays)}
	sum := 0
	for _, d := range delays {
		if d < 0 {
			continue
		}
		s.Detected++
		sum += d
		if fd := float64(d); fd > s.MaxDelay {
			s.MaxDelay = fd
		}
	}
	if s.Detected > 0 {
		s.MeanDelay = float64(sum) / float64(s.Detected)
	}
	return s
}

// Delays is DetectionDelay + SummarizeDelays in one call.
func Delays(pred, truth []bool) (DelaySummary, error) {
	d, err := DetectionDelay(pred, truth)
	if err != nil {
		return DelaySummary{}, err
	}
	return SummarizeDelays(d), nil
}

// FalseAlarmRate is the fraction of normal time points the raw (unadjusted)
// predictions flag — the FPR of pred against truth. Point adjustment
// deliberately inflates recall, so false alarms must always be measured on
// the raw predictions.
func FalseAlarmRate(pred, truth []bool) (float64, error) {
	c, err := Count(pred, truth)
	if err != nil {
		return 0, err
	}
	return c.FPR(), nil
}

// OnsetHit reports whether a detection at time point `at` counts as hitting
// the anomaly segment under the DaE view: at or after the onset (earlier
// points belong to a different alarm) and before the segment ends plus the
// given slack (a detection trailing the fault by more than slack points is
// a late coincidence, not a hit).
func OnsetHit(seg Segment, at, slack int) bool {
	return at >= seg.Start && at < seg.End+slack
}
