// Package hnsw implements a Hierarchical Navigable Small World index
// (Malkov & Yashunin, TPAMI 2018) for approximate nearest-neighbor search
// under a pluggable distance. The paper's complexity analysis (§IV-F)
// relies on an O(n log n) TSG construction via such an index when the
// window is small; internal/tsg uses this package as its approximate
// builder for large sensor counts.
package hnsw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned when searching an index with no items.
var ErrEmpty = errors.New("hnsw: empty index")

// Distance computes the dissimilarity of two vectors. Smaller is closer.
// It must be symmetric and non-negative.
type Distance func(a, b []float64) float64

// Euclidean is the squared Euclidean distance (monotone in the true
// metric, cheaper to compute).
func Euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// CorrelationDistance is 1 − |dot(a, b)| for unit-normalized vectors, i.e.
// 1 − |Pearson correlation| when the inputs are standardized rows. Strong
// positive and strong negative correlations are both "close", matching the
// TSG's use of correlation magnitude.
func CorrelationDistance(a, b []float64) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	if dot < 0 {
		dot = -dot
	}
	if dot > 1 {
		dot = 1
	}
	return 1 - dot
}

// Config tunes the index.
type Config struct {
	// M is the maximum number of neighbors per node per layer (default
	// 12). Layer 0 allows 2·M.
	M int
	// EfConstruction is the candidate-list width during insertion
	// (default 100).
	EfConstruction int
	// Seed drives level assignment; equal seeds give identical graphs.
	Seed int64
}

func (c *Config) fill() {
	if c.M <= 0 {
		c.M = 12
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 100
	}
}

// Index is an HNSW graph over inserted vectors. It is not safe for
// concurrent mutation; concurrent Search is safe after construction.
type Index struct {
	cfg  Config
	dist Distance
	rng  *rand.Rand
	ml   float64

	vecs   [][]float64
	levels []int
	// links[level][node] = neighbor ids; level-0 slice covers all nodes.
	links [][][]int32
	entry int
	maxL  int
}

// New creates an empty index.
func New(dist Distance, cfg Config) *Index {
	cfg.fill()
	return &Index{
		cfg:   cfg,
		dist:  dist,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		ml:    1 / math.Log(float64(cfg.M)),
		entry: -1,
	}
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.vecs) }

// randomLevel draws the insertion level.
func (ix *Index) randomLevel() int {
	return int(-math.Log(ix.rng.Float64()+1e-12) * ix.ml)
}

type cand struct {
	id int
	d  float64
}

// searchLayer is the greedy best-first search of one layer, returning up to
// ef closest candidates to q.
func (ix *Index) searchLayer(q []float64, entry int, ef, level int) []cand {
	visited := map[int]bool{entry: true}
	start := cand{entry, ix.dist(q, ix.vecs[entry])}
	// Candidates: min-ordered slice; results: max-ordered (worst first).
	cands := []cand{start}
	results := []cand{start}
	for len(cands) > 0 {
		// Pop nearest candidate.
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].d < cands[best].d {
				best = i
			}
		}
		c := cands[best]
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
		// Worst result.
		worst := results[0]
		for _, r := range results {
			if r.d > worst.d {
				worst = r
			}
		}
		if c.d > worst.d && len(results) >= ef {
			break
		}
		for _, nb := range ix.neighbors(c.id, level) {
			if visited[int(nb)] {
				continue
			}
			visited[int(nb)] = true
			d := ix.dist(q, ix.vecs[nb])
			if len(results) < ef || d < worstOf(results).d {
				cands = append(cands, cand{int(nb), d})
				results = append(results, cand{int(nb), d})
				if len(results) > ef {
					// Drop the worst.
					wi := 0
					for i := 1; i < len(results); i++ {
						if results[i].d > results[wi].d {
							wi = i
						}
					}
					results[wi] = results[len(results)-1]
					results = results[:len(results)-1]
				}
			}
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].d != results[j].d {
			return results[i].d < results[j].d
		}
		return results[i].id < results[j].id
	})
	return results
}

func worstOf(rs []cand) cand {
	w := rs[0]
	for _, r := range rs[1:] {
		if r.d > w.d {
			w = r
		}
	}
	return w
}

func (ix *Index) neighbors(node, level int) []int32 {
	if level >= len(ix.links) {
		return nil
	}
	if node >= len(ix.links[level]) {
		return nil
	}
	return ix.links[level][node]
}

func (ix *Index) setNeighbors(node, level int, nbs []int32) {
	for level >= len(ix.links) {
		ix.links = append(ix.links, make([][]int32, len(ix.vecs)))
	}
	for node >= len(ix.links[level]) {
		ix.links[level] = append(ix.links[level], nil)
	}
	ix.links[level][node] = nbs
}

// selectNeighbors keeps the M closest candidates (simple heuristic; the
// paper's diversity heuristic adds little for correlation graphs of this
// size).
func selectNeighbors(cs []cand, m int) []cand {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].d != cs[j].d {
			return cs[i].d < cs[j].d
		}
		return cs[i].id < cs[j].id
	})
	if len(cs) > m {
		cs = cs[:m]
	}
	return cs
}

// Add inserts a vector and returns its id.
func (ix *Index) Add(vec []float64) int {
	id := len(ix.vecs)
	ix.vecs = append(ix.vecs, vec)
	level := ix.randomLevel()
	ix.levels = append(ix.levels, level)
	for l := 0; l <= level; l++ {
		ix.setNeighbors(id, l, nil)
	}
	if ix.entry < 0 {
		ix.entry = id
		ix.maxL = level
		return id
	}
	cur := ix.entry
	// Descend through upper layers greedily.
	for l := ix.maxL; l > level; l-- {
		cur = ix.greedyClosest(vec, cur, l)
	}
	// Insert into layers min(level, maxL)..0.
	top := level
	if top > ix.maxL {
		top = ix.maxL
	}
	for l := top; l >= 0; l-- {
		res := ix.searchLayer(vec, cur, ix.cfg.EfConstruction, l)
		m := ix.cfg.M
		if l == 0 {
			m = 2 * ix.cfg.M
		}
		selected := selectNeighbors(append([]cand(nil), res...), m)
		nbs := make([]int32, len(selected))
		for i, c := range selected {
			nbs[i] = int32(c.id)
		}
		ix.setNeighbors(id, l, nbs)
		// Back-links with pruning.
		for _, c := range selected {
			back := append(ix.neighbors(c.id, l), int32(id))
			if len(back) > m {
				bc := make([]cand, len(back))
				for i, b := range back {
					bc[i] = cand{int(b), ix.dist(ix.vecs[c.id], ix.vecs[b])}
				}
				bc = selectNeighbors(bc, m)
				back = back[:0]
				for _, b := range bc {
					back = append(back, int32(b.id))
				}
			}
			ix.setNeighbors(c.id, l, back)
		}
		if len(res) > 0 {
			cur = res[0].id
		}
	}
	if level > ix.maxL {
		ix.maxL = level
		ix.entry = id
	}
	return id
}

func (ix *Index) greedyClosest(q []float64, entry, level int) int {
	cur := entry
	curD := ix.dist(q, ix.vecs[cur])
	for {
		improved := false
		for _, nb := range ix.neighbors(cur, level) {
			if d := ix.dist(q, ix.vecs[nb]); d < curD {
				cur, curD = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// Result is one search hit.
type Result struct {
	ID       int
	Distance float64
}

// Search returns the (approximately) k nearest items to q. ef ≥ k widens
// the beam (0 means max(2k, 32)).
func (ix *Index) Search(q []float64, k, ef int) ([]Result, error) {
	if ix.entry < 0 {
		return nil, ErrEmpty
	}
	if ef < k {
		ef = 2 * k
		if ef < 32 {
			ef = 32
		}
	}
	cur := ix.entry
	for l := ix.maxL; l > 0; l-- {
		cur = ix.greedyClosest(q, cur, l)
	}
	res := ix.searchLayer(q, cur, ef, 0)
	if len(res) > k {
		res = res[:k]
	}
	out := make([]Result, len(res))
	for i, c := range res {
		out[i] = Result{ID: c.id, Distance: c.d}
	}
	return out, nil
}

// KNNGraph builds the k-NN lists of all indexed items, excluding each item
// itself. It is the bulk operation the TSG builder uses.
func (ix *Index) KNNGraph(k, ef int) ([][]Result, error) {
	if ix.entry < 0 {
		return nil, ErrEmpty
	}
	out := make([][]Result, len(ix.vecs))
	for id, vec := range ix.vecs {
		res, err := ix.Search(vec, k+1, ef)
		if err != nil {
			return nil, fmt.Errorf("hnsw: node %d: %w", id, err)
		}
		trimmed := make([]Result, 0, k)
		for _, r := range res {
			if r.ID == id {
				continue
			}
			trimmed = append(trimmed, r)
			if len(trimmed) == k {
				break
			}
		}
		out[id] = trimmed
	}
	return out, nil
}
