package hnsw

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randVecs(seed int64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}

// exactKNN is the brute-force reference.
func exactKNN(vecs [][]float64, q []float64, k int, dist Distance, skip int) []int {
	type nd struct {
		id int
		d  float64
	}
	var all []nd
	for i, v := range vecs {
		if i == skip {
			continue
		}
		all = append(all, nd{i, dist(q, v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	ids := make([]int, 0, k)
	for i := 0; i < k && i < len(all); i++ {
		ids = append(ids, all[i].id)
	}
	return ids
}

func TestEmptyIndex(t *testing.T) {
	ix := New(Euclidean, Config{})
	if ix.Len() != 0 {
		t.Error("fresh index not empty")
	}
	if _, err := ix.Search([]float64{1}, 3, 0); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if _, err := ix.KNNGraph(3, 0); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestSingleItem(t *testing.T) {
	ix := New(Euclidean, Config{Seed: 1})
	id := ix.Add([]float64{1, 2})
	if id != 0 || ix.Len() != 1 {
		t.Fatalf("id=%d len=%d", id, ix.Len())
	}
	res, err := ix.Search([]float64{1, 2}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 0 || res[0].Distance != 0 {
		t.Errorf("res = %v", res)
	}
}

func TestRecallAgainstExact(t *testing.T) {
	vecs := randVecs(2, 300, 8)
	ix := New(Euclidean, Config{M: 12, EfConstruction: 120, Seed: 3})
	for _, v := range vecs {
		ix.Add(v)
	}
	const k = 10
	queries := randVecs(4, 30, 8)
	hits, total := 0, 0
	for _, q := range queries {
		want := exactKNN(vecs, q, k, Euclidean, -1)
		got, err := ix.Search(q, k, 100)
		if err != nil {
			t.Fatal(err)
		}
		inWant := map[int]bool{}
		for _, id := range want {
			inWant[id] = true
		}
		for _, r := range got {
			if inWant[r.ID] {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	if recall < 0.9 {
		t.Errorf("recall = %.3f, want ≥ 0.9", recall)
	}
}

func TestKNNGraphRecall(t *testing.T) {
	vecs := randVecs(5, 200, 6)
	ix := New(Euclidean, Config{M: 10, EfConstruction: 100, Seed: 6})
	for _, v := range vecs {
		ix.Add(v)
	}
	const k = 8
	graph, err := ix.KNNGraph(k, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(graph) != 200 {
		t.Fatalf("graph size %d", len(graph))
	}
	hits, total := 0, 0
	for id, nbs := range graph {
		if len(nbs) != k {
			t.Fatalf("node %d has %d neighbors", id, len(nbs))
		}
		for _, r := range nbs {
			if r.ID == id {
				t.Fatalf("node %d lists itself", id)
			}
		}
		want := exactKNN(vecs, vecs[id], k, Euclidean, id)
		inWant := map[int]bool{}
		for _, w := range want {
			inWant[w] = true
		}
		for _, r := range nbs {
			if inWant[r.ID] {
				hits++
			}
		}
		total += k
	}
	if recall := float64(hits) / float64(total); recall < 0.85 {
		t.Errorf("graph recall = %.3f, want ≥ 0.85", recall)
	}
}

func TestCorrelationDistance(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 1, 0}
	if d := CorrelationDistance(a, b); d != 1 {
		t.Errorf("orthogonal distance = %v, want 1", d)
	}
	if d := CorrelationDistance(a, a); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
	neg := []float64{-1, 0, 0}
	if d := CorrelationDistance(a, neg); d != 0 {
		t.Errorf("anti-parallel distance = %v, want 0 (|r| metric)", d)
	}
	// Guards against numeric overshoot.
	long := []float64{1.0000001, 0, 0}
	if d := CorrelationDistance(long, long); d < 0 {
		t.Errorf("distance went negative: %v", d)
	}
}

func TestEuclidean(t *testing.T) {
	if d := Euclidean([]float64{0, 3}, []float64{4, 0}); d != 25 {
		t.Errorf("squared distance = %v, want 25", d)
	}
}

func TestDeterministicSeed(t *testing.T) {
	vecs := randVecs(7, 100, 4)
	build := func() *Index {
		ix := New(Euclidean, Config{Seed: 9})
		for _, v := range vecs {
			ix.Add(v)
		}
		return ix
	}
	a, b := build(), build()
	q := []float64{0.1, -0.2, 0.3, 0}
	ra, _ := a.Search(q, 5, 50)
	rb, _ := b.Search(q, 5, 50)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("same seed must reproduce searches")
		}
	}
}

// Property: search results are sorted by distance and contain no
// duplicates.
func TestSearchProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		vecs := randVecs(seed, n, 5)
		ix := New(Euclidean, Config{M: 8, EfConstruction: 60, Seed: seed})
		for _, v := range vecs {
			ix.Add(v)
		}
		q := make([]float64, 5)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(10)
		res, err := ix.Search(q, k, 0)
		if err != nil || len(res) == 0 || len(res) > k {
			return false
		}
		seen := map[int]bool{}
		for i, r := range res {
			if seen[r.ID] || math.IsNaN(r.Distance) {
				return false
			}
			seen[r.ID] = true
			if i > 0 && res[i-1].Distance > r.Distance+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd1000(b *testing.B) {
	vecs := randVecs(8, 1000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New(Euclidean, Config{Seed: int64(i)})
		for _, v := range vecs {
			ix.Add(v)
		}
	}
}

func BenchmarkSearch1000(b *testing.B) {
	vecs := randVecs(9, 1000, 8)
	ix := New(Euclidean, Config{Seed: 1})
	for _, v := range vecs {
		ix.Add(v)
	}
	q := vecs[500]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q, 10, 64); err != nil {
			b.Fatal(err)
		}
	}
}
