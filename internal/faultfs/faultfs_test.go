package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func openTemp(t *testing.T, fs FS) File {
	t.Helper()
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDisarmedFaultForwards(t *testing.T) {
	f := New(OS())
	file := openTemp(t, f)
	if n, err := file.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := file.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := file.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := f.BytesWritten(); got != 5 {
		t.Fatalf("BytesWritten = %d, want 5", got)
	}
	if got := f.Syncs(); got != 1 {
		t.Fatalf("Syncs = %d, want 1", got)
	}
	if f.Crashed() {
		t.Fatal("disarmed fault reports crashed")
	}
}

func TestCrashAfterBytesTearsTheCrossingWrite(t *testing.T) {
	f := New(OS())
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	file, err := f.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.CrashAfterBytes(7)
	if n, err := file.Write([]byte("1234")); err != nil || n != 4 {
		t.Fatalf("within budget: Write = %d, %v", n, err)
	}
	// This write crosses the boundary: only 3 of 5 bytes land.
	n, err := file.Write([]byte("abcde"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write error = %v, want ErrCrashed", err)
	}
	if n != 3 {
		t.Fatalf("crossing write wrote %d bytes, want 3 (torn)", n)
	}
	if !f.Crashed() {
		t.Fatal("fault not crashed after boundary")
	}
	// Every later operation on the dead filesystem fails.
	if _, err := file.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Write error = %v, want ErrCrashed", err)
	}
	if err := file.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Sync error = %v, want ErrCrashed", err)
	}
	if _, err := f.OpenFile(filepath.Join(dir, "g"), os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash OpenFile error = %v, want ErrCrashed", err)
	}
	if err := f.Rename(path, path+".x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Rename error = %v, want ErrCrashed", err)
	}
	// The torn prefix is what actually reached the disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "1234abc" {
		t.Fatalf("on-disk content %q, want %q", raw, "1234abc")
	}
}

func TestFailWrites(t *testing.T) {
	f := New(OS())
	file := openTemp(t, f)
	defer file.Close()
	f.FailWrites(syscall.ENOSPC)
	if _, err := file.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Write error = %v, want ENOSPC", err)
	}
	f.FailWrites(nil)
	if _, err := file.Write([]byte("x")); err != nil {
		t.Fatalf("Write after disarm: %v", err)
	}
}

func TestFailSyncs(t *testing.T) {
	f := New(OS())
	file := openTemp(t, f)
	defer file.Close()
	f.FailSyncs(syscall.EIO)
	if _, err := file.Write([]byte("x")); err != nil {
		t.Fatalf("Write should keep working: %v", err)
	}
	if err := file.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync error = %v, want EIO", err)
	}
	if got := f.Syncs(); got != 0 {
		t.Fatalf("failed syncs counted: %d", got)
	}
}
