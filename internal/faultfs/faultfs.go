// Package faultfs is the filesystem seam of the durability layer. All
// snapshot and write-ahead-log I/O in internal/manager goes through the FS
// interface, so production code talks to the real operating system while
// tests substitute a Fault wrapper that forces short writes, ENOSPC, fsync
// failures, and crash points at deterministic byte offsets — the failure
// modes a crash-safety design must survive but the real filesystem almost
// never produces on demand.
package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// File is the subset of *os.File the durability layer needs.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Close() error
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface of the durability layer. The OS
// implementation forwards to the os package; Fault wraps another FS and
// injects failures.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// Truncate cuts the named file to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
}

// osFS forwards every operation to the os package.
type osFS struct{}

// OS returns the real-filesystem implementation.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// ErrCrashed is returned by every operation once a Fault's crash point has
// been reached: the simulated process is dead and can no longer touch the
// disk. Tests abandon the crashed manager and recover with a fresh FS over
// the same directory, exactly as a restarted process would.
var ErrCrashed = errors.New("faultfs: simulated crash")

// Fault wraps an FS and injects failures. The zero configuration injects
// nothing; arm failure modes with CrashAfterBytes, FailWrites, and
// FailSyncs. Safe for concurrent use.
type Fault struct {
	inner FS

	mu       sync.Mutex
	crashed  bool
	budget   int64 // bytes writable before the crash point; -1 = unlimited
	writeErr error // forced error for every write (e.g. syscall.ENOSPC)
	syncErr  error // forced error for every Sync
	written  int64
	syncs    int64
}

// New wraps inner with fault injection disarmed.
func New(inner FS) *Fault {
	return &Fault{inner: inner, budget: -1}
}

// CrashAfterBytes arms the crash point: after n more bytes have been
// written (across all files), the write that crosses the boundary is cut
// short at exactly the boundary — a torn write — and every later operation
// fails with ErrCrashed. n = 0 crashes on the next write.
func (f *Fault) CrashAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
}

// FailWrites forces every write to fail with err (e.g. syscall.ENOSPC)
// without writing anything. nil disarms.
func (f *Fault) FailWrites(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr = err
}

// FailSyncs forces every Sync to fail with err. nil disarms. Writes keep
// succeeding, modeling a disk that accepts data into its cache but cannot
// commit it.
func (f *Fault) FailSyncs(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// Crashed reports whether the crash point has been reached.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// BytesWritten returns the total bytes successfully written through the
// fault layer — run a workload once to size the budget range for
// randomized crash points.
func (f *Fault) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Syncs returns how many Sync calls reached the inner filesystem.
func (f *Fault) Syncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// check fails the current operation when the crash point has been reached.
func (f *Fault) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *Fault) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, file: file}, nil
}

func (f *Fault) ReadFile(name string) ([]byte, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *Fault) RemoveAll(path string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.RemoveAll(path)
}

func (f *Fault) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Fault) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *Fault) Stat(name string) (fs.FileInfo, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *Fault) Truncate(name string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

// faultFile routes writes and syncs of one open file through the Fault.
type faultFile struct {
	f    *Fault
	file File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.f.check(); err != nil {
		return 0, err
	}
	return ff.file.Read(p)
}

// Write applies the armed failure modes: a forced error writes nothing; a
// crossed crash budget writes only the prefix that fits (a torn write) and
// kills the filesystem.
func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.f
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	if f.writeErr != nil {
		err := f.writeErr
		f.mu.Unlock()
		return 0, err
	}
	n := len(p)
	torn := false
	if f.budget >= 0 {
		if int64(n) > f.budget {
			n = int(f.budget)
			f.crashed = true
			torn = true
		} else {
			f.budget -= int64(n)
		}
	}
	f.mu.Unlock()
	wrote, err := ff.file.Write(p[:n])
	f.mu.Lock()
	f.written += int64(wrote)
	f.mu.Unlock()
	if err != nil {
		return wrote, err
	}
	if torn {
		return wrote, ErrCrashed
	}
	return wrote, nil
}

func (ff *faultFile) Sync() error {
	f := ff.f
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	if f.syncErr != nil {
		err := f.syncErr
		f.mu.Unlock()
		return err
	}
	f.syncs++
	f.mu.Unlock()
	return ff.file.Sync()
}

// Close always reaches the inner file: a dying process's descriptors are
// closed by the kernel regardless.
func (ff *faultFile) Close() error { return ff.file.Close() }

func (ff *faultFile) Name() string { return ff.file.Name() }
