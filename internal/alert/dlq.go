package alert

import (
	"encoding/json"
	"fmt"
	"sync"

	"cad/internal/faultfs"
	"cad/internal/wal"
)

// DeadLetter is one dead-lettered event: which sink exhausted its retries
// on it, the final delivery error, and the event itself.
type DeadLetter struct {
	Sink  string `json:"sink"`
	Error string `json:"error"`
	Event Event  `json:"event"`
}

// DLQ is a disk-backed dead-letter queue built on the WAL's checksummed
// record framing: appends survive crashes (one frame per record, torn
// tails repaired on open), and Drain consumes the backlog exactly once —
// records are read and the log reset in one critical section, so two
// drains never hand out the same record.
type DLQ struct {
	mu  sync.Mutex
	log *wal.Log
	seq uint64
	n   int // records on disk
}

// OpenDLQ opens (or creates) the dead-letter queue in dir. fsys nil means
// the real OS; tests inject a faultfs.Fault to exercise disk failure.
func OpenDLQ(dir string, fsys faultfs.FS) (*DLQ, error) {
	if fsys == nil {
		fsys = faultfs.OS()
	}
	l, err := wal.Open(dir, wal.Options{FS: fsys})
	if err != nil {
		return nil, fmt.Errorf("alert: open dlq: %w", err)
	}
	d := &DLQ{log: l, seq: l.LastSeq()}
	// Count the backlog so Len is cheap.
	_ = l.Replay(func(wal.Record) error { d.n++; return nil })
	return d, nil
}

// Append dead-letters one record durably.
func (d *DLQ) Append(rec DeadLetter) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("alert: encode dead letter: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	if err := d.log.Append(d.seq, rec.Event.Time, data); err != nil {
		return err
	}
	d.n++
	return nil
}

// Len returns the number of dead letters on disk.
func (d *DLQ) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Drain consumes every dead letter: the records are decoded, the log is
// reset, and the batch is returned once — a second Drain (or a drain after
// restart) returns nothing until new records arrive. Records that fail to
// decode (bit rot past the CRC) are skipped and counted in the second
// return value.
func (d *DLQ) Drain() ([]DeadLetter, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []DeadLetter
	bad := 0
	err := d.log.Replay(func(r wal.Record) error {
		var rec DeadLetter
		if jerr := json.Unmarshal(r.Data, &rec); jerr != nil {
			bad++
			return nil
		}
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, bad, fmt.Errorf("alert: drain dlq: %w", err)
	}
	if err := d.log.Reset(); err != nil {
		// Without the reset a later drain would hand the records out
		// again; fail the drain so the caller does not redeliver now and
		// again after the next restart.
		return nil, bad, fmt.Errorf("alert: drain dlq: %w", err)
	}
	d.n = 0
	return out, bad, nil
}

// Close flushes and closes the underlying log.
func (d *DLQ) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Close()
}
