package alert

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"sync"
	"time"

	"cad/internal/faultfs"
)

// Sink delivers one event to its destination. Deliver is called by the
// sink's single runner goroutine, one event at a time; a non-nil error
// triggers the retry/backoff/dead-letter machinery. ctx carries the
// per-attempt deadline.
type Sink interface {
	// Deliver sends ev. It must respect ctx's deadline.
	Deliver(ctx context.Context, ev Event) error
	// Kind names the sink type ("webhook", "file", "slog") for listings.
	Kind() string
	// Target describes the destination (URL, path) for listings.
	Target() string
	// Close releases resources once the runner has drained.
	Close() error
}

// SignatureHeader carries the hex HMAC-SHA256 of the webhook body,
// prefixed "sha256=", computed with the sink's shared secret. Receivers
// recompute it over the raw body and compare with hmac.Equal.
const SignatureHeader = "X-CAD-Signature"

// EventHeader carries the event type so receivers can route without
// parsing the body.
const EventHeader = "X-CAD-Event"

// Sign computes the SignatureHeader value for body under secret — exported
// so receiver-side code and tests share one definition.
func Sign(secret, body []byte) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write(body)
	return "sha256=" + hex.EncodeToString(mac.Sum(nil))
}

// WebhookSink POSTs each event as a JSON body to a fixed URL. A 2xx
// response is a delivery; anything else (including transport errors and
// per-attempt timeouts) is a retryable failure.
type WebhookSink struct {
	url    string
	secret []byte
	client *http.Client
}

// NewWebhookSink validates rawURL and builds a webhook sink. secret, when
// non-empty, enables the X-CAD-Signature HMAC header. timeout bounds each
// delivery attempt (≤ 0 means 5s).
func NewWebhookSink(rawURL string, secret []byte, timeout time.Duration) (*WebhookSink, error) {
	u, err := url.Parse(rawURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("alert: webhook URL %q: want an absolute http(s) URL", rawURL)
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &WebhookSink{
		url:    rawURL,
		secret: secret,
		client: &http.Client{Timeout: timeout},
	}, nil
}

func (s *WebhookSink) Kind() string   { return "webhook" }
func (s *WebhookSink) Target() string { return s.url }
func (s *WebhookSink) Close() error   { return nil }

func (s *WebhookSink) Deliver(ctx context.Context, ev Event) error {
	body, err := EncodeEvent(ev)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(EventHeader, string(ev.Type))
	if len(s.secret) > 0 {
		req.Header.Set(SignatureHeader, Sign(s.secret, body))
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	// Drain so the connection is reusable, but never unboundedly.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("alert: webhook %s: status %d", s.url, resp.StatusCode)
	}
	return nil
}

// FileSink appends each event as one NDJSON line. The file is opened
// lazily on the first delivery and kept open; writes go through the
// faultfs seam so the delivery path is fault-injectable like the
// durability layer.
type FileSink struct {
	path string
	fs   faultfs.FS

	mu sync.Mutex
	f  faultfs.File
}

// NewFileSink builds an NDJSON file sink. fsys nil means the real OS.
func NewFileSink(path string, fsys faultfs.FS) (*FileSink, error) {
	if path == "" {
		return nil, fmt.Errorf("alert: file sink needs a path")
	}
	if fsys == nil {
		fsys = faultfs.OS()
	}
	return &FileSink{path: path, fs: fsys}, nil
}

func (s *FileSink) Kind() string   { return "file" }
func (s *FileSink) Target() string { return s.path }

func (s *FileSink) Deliver(_ context.Context, ev Event) error {
	line, err := EncodeEvent(ev)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		f, err := s.fs.OpenFile(s.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.f = f
	}
	if _, err := s.f.Write(line); err != nil {
		// Reopen on the next attempt: the descriptor may be poisoned.
		_ = s.f.Close()
		s.f = nil
		return err
	}
	return nil
}

func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// SlogSink logs each event through a structured logger — the zero-config
// sink that makes alerts visible without any external receiver.
type SlogSink struct {
	logger *slog.Logger
}

// NewSlogSink builds a logging sink; a nil logger uses slog.Default.
func NewSlogSink(logger *slog.Logger) *SlogSink {
	if logger == nil {
		logger = slog.Default()
	}
	return &SlogSink{logger: logger}
}

func (s *SlogSink) Kind() string   { return "slog" }
func (s *SlogSink) Target() string { return "log" }
func (s *SlogSink) Close() error   { return nil }

func (s *SlogSink) Deliver(_ context.Context, ev Event) error {
	s.logger.Info("cad alert",
		"type", ev.Type, "stream", ev.Stream, "seq", ev.Seq,
		"anomalyId", ev.AnomalyID, "round", ev.Round, "score", ev.Score,
		"sensors", ev.Sensors, "reason", ev.Reason)
	return nil
}
