package alert

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cad/internal/obs"
)

// counterValue reads a counter back out of the registry (same name+labels
// return the same series instance).
func counterValue(reg *obs.Registry, name, sink string) uint64 {
	if sink == "" {
		return reg.Counter(name, "").Value()
	}
	return reg.Counter(name, "", obs.Label{Name: "sink", Value: sink}).Value()
}

// gaugeValue reads a gauge back out of the registry.
func gaugeValue(reg *obs.Registry, name, sink string) float64 {
	if sink == "" {
		return reg.Gauge(name, "").Value()
	}
	return reg.Gauge(name, "", obs.Label{Name: "sink", Value: sink}).Value()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestQueueDropOldest(t *testing.T) {
	drops := 0
	q := newQueue(2, DropOldest, func() { drops++ })
	for i := 1; i <= 4; i++ {
		if !q.push(Event{Seq: uint64(i)}) {
			t.Fatalf("push %d refused", i)
		}
	}
	if drops != 2 {
		t.Fatalf("drops = %d, want 2", drops)
	}
	// The two newest events survive.
	for _, want := range []uint64{3, 4} {
		ev, ok := q.pop()
		if !ok || ev.Seq != want {
			t.Fatalf("pop = (%d, %v), want (%d, true)", ev.Seq, ok, want)
		}
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Fatal("pop on closed empty queue reported an event")
	}
}

func TestQueueBlockPolicy(t *testing.T) {
	q := newQueue(1, Block, nil)
	if !q.push(Event{Seq: 1}) {
		t.Fatal("first push refused")
	}
	unblocked := make(chan struct{})
	go func() {
		q.push(Event{Seq: 2}) // must block until the pop below
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("push into a full Block queue did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if ev, ok := q.pop(); !ok || ev.Seq != 1 {
		t.Fatalf("pop = (%d, %v), want (1, true)", ev.Seq, ok)
	}
	select {
	case <-unblocked:
	case <-time.After(time.Second):
		t.Fatal("push did not unblock after pop")
	}
}

func TestBackoffBounded(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Jitter: 0.5}.withDefaults()
	limit := time.Duration(float64(p.MaxBackoff) * (1 + p.Jitter))
	for attempt := 1; attempt <= 30; attempt++ {
		if d := p.backoff(attempt); d <= 0 || d > limit {
			t.Fatalf("backoff(%d) = %v, want in (0, %v]", attempt, d, limit)
		}
	}
	// Without jitter the sequence is exactly exponential-then-capped.
	p.Jitter = -1
	p = RetryPolicy{BaseBackoff: p.BaseBackoff, MaxBackoff: p.MaxBackoff, MaxAttempts: 5, Jitter: -1}.withDefaults()
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if d := p.backoff(i + 1); d != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	b := newBreaker(BreakerPolicy{Threshold: 2, Cooldown: 10 * time.Second}, now)
	if w := b.wait(); w != 0 {
		t.Fatalf("closed breaker wait = %v, want 0", w)
	}
	b.failure()
	if b.state != BreakerClosed {
		t.Fatalf("one failure opened the breaker (threshold 2)")
	}
	b.failure()
	if b.state != BreakerOpen {
		t.Fatal("threshold failures did not open the breaker")
	}
	if w := b.wait(); w != 10*time.Second {
		t.Fatalf("open breaker wait = %v, want 10s", w)
	}
	clock = clock.Add(10 * time.Second)
	if w := b.wait(); w != 0 || b.state != BreakerHalfOpen {
		t.Fatalf("after cooldown: wait = %v, state = %d, want 0, half-open", w, b.state)
	}
	b.failure() // failed probe reopens immediately
	if b.state != BreakerOpen {
		t.Fatal("failed half-open probe did not reopen the breaker")
	}
	clock = clock.Add(10 * time.Second)
	_ = b.wait()
	b.success()
	if b.state != BreakerClosed || b.fails != 0 {
		t.Fatalf("successful probe left state %d fails %d, want closed 0", b.state, b.fails)
	}
}

// recordingSink captures delivered events and fails on command.
type recordingSink struct {
	mu     sync.Mutex
	events []Event
	fail   error
}

func (s *recordingSink) setFail(err error) {
	s.mu.Lock()
	s.fail = err
	s.mu.Unlock()
}

func (s *recordingSink) Deliver(_ context.Context, ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		return s.fail
	}
	s.events = append(s.events, ev)
	return nil
}

func (s *recordingSink) delivered() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

func (s *recordingSink) Kind() string   { return "test" }
func (s *recordingSink) Target() string { return "memory" }
func (s *recordingSink) Close() error   { return nil }

func TestBusDeliversInOrder(t *testing.T) {
	b, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingSink{}
	if err := b.AddSink("rec", sink, SinkConfig{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Publish(Event{Stream: "s", Type: TypeAlarm, Round: i})
	}
	waitFor(t, "10 deliveries", func() bool { return len(sink.delivered()) == 10 })
	for i, ev := range sink.delivered() {
		if ev.Round != i || ev.Seq != uint64(i+1) {
			t.Fatalf("event %d = round %d seq %d, want round %d seq %d", i, ev.Round, ev.Seq, i, i+1)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event %d has a zero time", i)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Publishes after close are silent no-ops.
	b.Publish(Event{Stream: "s", Type: TypeAlarm})
	if got := len(sink.delivered()); got != 10 {
		t.Fatalf("post-close publish delivered (%d events)", got)
	}
}

func TestSubscribeFanOutAndEviction(t *testing.T) {
	b, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	fast := b.Subscribe("s", 16)
	slow := b.Subscribe("s", 2) // never read → must be evicted
	other := b.Subscribe("else", 16)
	for i := 0; i < 8; i++ {
		b.Publish(Event{Stream: "s", Type: TypeAlarm, Round: i})
	}
	// The fast subscriber sees everything, in order.
	for i := 0; i < 8; i++ {
		select {
		case ev := <-fast.C:
			if ev.Round != i {
				t.Fatalf("fast got round %d, want %d", ev.Round, i)
			}
		case <-time.After(time.Second):
			t.Fatalf("fast subscriber missing event %d", i)
		}
	}
	waitFor(t, "slow eviction", slow.Evicted)
	// The evicted channel still holds its buffered prefix, then closes.
	n := 0
	for range slow.C {
		n++
	}
	if n != 2 {
		t.Fatalf("slow subscriber drained %d buffered events, want 2", n)
	}
	if got := counterValue(b.reg, "cad_sse_evicted_total", ""); got != 1 {
		t.Fatalf("cad_sse_evicted_total = %d, want 1", got)
	}
	// Stream filter: the "else" subscriber saw nothing.
	select {
	case ev := <-other.C:
		t.Fatalf("subscriber for stream else got event for %q", ev.Stream)
	default:
	}
	other.Close()
	if _, ok := <-other.C; ok {
		t.Fatal("closed subscription channel still open")
	}
	if other.Evicted() {
		t.Fatal("Close marked the subscription evicted")
	}
}

func TestRemoveSinkDrains(t *testing.T) {
	b, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sink := &recordingSink{}
	if err := b.AddSink("rec", sink, SinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSink("rec", sink, SinkConfig{}); err == nil {
		t.Fatal("duplicate AddSink succeeded")
	}
	b.Publish(Event{Stream: "s", Type: TypeAlarm})
	if err := b.RemoveSink("rec"); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.delivered()); got != 1 {
		t.Fatalf("RemoveSink drained %d events, want 1", got)
	}
	if err := b.RemoveSink("rec"); err == nil {
		t.Fatal("second RemoveSink succeeded")
	}
	if got := len(b.Sinks()); got != 0 {
		t.Fatalf("Sinks() lists %d after removal, want 0", got)
	}
}

func TestDedupKey(t *testing.T) {
	a := Event{Stream: "s", AnomalyID: 3, Type: TypeAnomalyOpened, Seq: 7}
	b := Event{Stream: "s", AnomalyID: 3, Type: TypeAnomalyOpened, Seq: 9}
	if a.DedupKey() != b.DedupKey() {
		t.Fatalf("redelivered event changed dedup key: %q vs %q", a.DedupKey(), b.DedupKey())
	}
	c := Event{Stream: "s", AnomalyID: 3, Type: TypeAnomalyClosed}
	if a.DedupKey() == c.DedupKey() {
		t.Fatal("different transitions share a dedup key")
	}
	if a.DedupKey() != "s,3,anomaly_opened" {
		t.Fatalf("dedup key = %q", a.DedupKey())
	}
}

func ExampleEvent_DedupKey() {
	ev := Event{Stream: "plant-a", AnomalyID: 12, Type: TypeAnomalyOpened}
	fmt.Println(ev.DedupKey())
	// Output: plant-a,12,anomaly_opened
}
