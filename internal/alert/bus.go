package alert

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cad/internal/faultfs"
	"cad/internal/obs"
)

// Registry errors, distinguished so the HTTP layer can map them onto
// stable machine-readable codes.
var (
	// ErrSinkExists reports an AddSink against a name already registered.
	ErrSinkExists = errors.New("alert: sink already exists")
	// ErrSinkNotFound reports an unknown sink name.
	ErrSinkNotFound = errors.New("alert: sink not found")
	// ErrClosed reports an operation on a closed bus.
	ErrClosed = errors.New("alert: bus closed")
)

// RetryPolicy bounds a sink's delivery attempts per event.
type RetryPolicy struct {
	// MaxAttempts is the total tries per event, first included (≤ 0
	// means 5); the event dead-letters after the last failure.
	MaxAttempts int
	// BaseBackoff is the delay after the first failure; it doubles per
	// attempt (≤ 0 means 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (≤ 0 means 5s).
	MaxBackoff time.Duration
	// Jitter adds up to this fraction of the backoff as random extra
	// delay, decorrelating retry storms (0 means the 0.2 default;
	// negative disables jitter entirely).
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// backoff returns the wait after the attempt-th failure (1-based):
// exponential from BaseBackoff, capped at MaxBackoff, plus jitter. The
// result is bounded by MaxBackoff·(1+Jitter) for every attempt.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		d += time.Duration(rand.Float64() * p.Jitter * float64(d))
	}
	return d
}

// SinkConfig tunes one sink's queue, retries, and breaker.
type SinkConfig struct {
	// Queue bounds the sink's in-memory event queue (≤ 0 means 256).
	Queue int
	// Policy picks what a full queue does (default DropOldest).
	Policy OverflowPolicy
	// Retry bounds per-event delivery attempts.
	Retry RetryPolicy
	// Breaker opens the circuit after consecutive failures.
	Breaker BreakerPolicy
}

// Options configures a Bus.
type Options struct {
	// Registry receives the delivery metrics; nil creates a private one.
	Registry *obs.Registry
	// DLQDir enables the disk-backed dead-letter queue; "" keeps
	// dead-lettered events only in the dropped metric.
	DLQDir string
	// FS overrides filesystem access for the DLQ (tests); nil means the
	// real OS.
	FS faultfs.FS
	// Logger receives delivery warnings; nil means slog.Default.
	Logger *slog.Logger
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Bus fans detection events out to registered sinks and live subscribers.
// Publish never blocks on a subscriber and only blocks on a sink whose
// queue uses the Block overflow policy. Safe for concurrent use.
type Bus struct {
	reg    *obs.Registry
	logger *slog.Logger
	now    func() time.Time
	dlq    *DLQ

	mu     sync.Mutex
	seq    uint64
	sinks  map[string]*sinkRunner
	subs   map[*Subscription]struct{}
	closed bool

	// sleepHook, when set (tests), observes every retry/cooldown pause
	// instead of sleeping wall-clock time.
	sleepHook func(time.Duration)

	published  func(t Type) *obs.Counter
	sseClients *obs.Gauge
	sseEvicted *obs.Counter
	dlqDrained *obs.Counter
	dlqDepth   *obs.Gauge
}

// NewBus builds a bus; with Options.DLQDir it opens (or creates) the
// dead-letter queue, repairing any torn tail left by a crash.
func NewBus(o Options) (*Bus, error) {
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	b := &Bus{
		reg:    o.Registry,
		logger: o.Logger,
		now:    o.Now,
		sinks:  make(map[string]*sinkRunner),
		subs:   make(map[*Subscription]struct{}),
		published: func(t Type) *obs.Counter {
			return o.Registry.Counter("cad_alerts_published_total",
				"Events published onto the alert bus, by type.",
				obs.Label{Name: "type", Value: string(t)})
		},
		sseClients: o.Registry.Gauge("cad_sse_subscribers",
			"Live event subscribers (SSE clients) on the alert bus."),
		sseEvicted: o.Registry.Counter("cad_sse_evicted_total",
			"Subscribers evicted because their buffer stayed full."),
		dlqDrained: o.Registry.Counter("cad_alerts_dlq_drained_total",
			"Dead-lettered events drained back into delivery."),
		dlqDepth: o.Registry.Gauge("cad_alerts_dlq_records",
			"Dead-lettered events currently on disk."),
	}
	if o.DLQDir != "" {
		dlq, err := OpenDLQ(o.DLQDir, o.FS)
		if err != nil {
			return nil, err
		}
		b.dlq = dlq
		b.dlqDepth.Set(float64(dlq.Len()))
	}
	return b, nil
}

// Registry returns the metrics registry the bus reports into.
func (b *Bus) Registry() *obs.Registry { return b.reg }

// Publish stamps ev (sequence number, time if zero) and fans it out: one
// copy per sink queue, one per matching subscriber. Subscribers whose
// buffer is full are evicted rather than waited on — a slow dashboard must
// never stall the detection hot path.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.seq++
	ev.Seq = b.seq
	if ev.Time.IsZero() {
		ev.Time = b.now()
	}
	runners := make([]*sinkRunner, 0, len(b.sinks))
	for _, r := range b.sinks {
		runners = append(runners, r)
	}
	for sub := range b.subs {
		if sub.stream != "" && sub.stream != ev.Stream {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			delete(b.subs, sub)
			sub.evicted.Store(true)
			close(sub.ch)
			b.sseEvicted.Inc()
			b.sseClients.Set(float64(len(b.subs)))
		}
	}
	b.mu.Unlock()
	b.published(ev.Type).Inc()
	// Queue pushes happen outside the bus lock so one Block-policy sink
	// cannot stall subscriber fan-out or sink registration. Ordering per
	// publisher is preserved: the detection path publishes under its
	// stream lock.
	for _, r := range runners {
		r.enqueue(ev)
	}
}

// Subscribe registers a live subscriber for one stream's events ("" means
// every stream, including manager-level events). buffer bounds the
// client's send queue (≤ 0 means 64); when it overflows the subscriber is
// evicted and its channel closed. Close the subscription when done.
func (b *Bus) Subscribe(stream string, buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 64
	}
	sub := &Subscription{bus: b, stream: stream, ch: make(chan Event, buffer)}
	sub.C = sub.ch
	b.mu.Lock()
	if b.closed {
		close(sub.ch)
	} else {
		b.subs[sub] = struct{}{}
		b.sseClients.Set(float64(len(b.subs)))
	}
	b.mu.Unlock()
	return sub
}

// Subscription is one live event feed. Receive from C; a closed C means
// the subscription ended — by Close, bus shutdown, or eviction (check
// Evicted to tell).
type Subscription struct {
	// C streams the subscriber's events.
	C <-chan Event

	bus     *Bus
	stream  string
	ch      chan Event
	evicted atomic.Bool
	once    sync.Once
}

// Evicted reports whether the bus dropped this subscriber for not keeping
// up.
func (s *Subscription) Evicted() bool { return s.evicted.Load() }

// Close unsubscribes. The channel is closed; pending buffered events are
// still receivable.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.bus.mu.Lock()
		if _, ok := s.bus.subs[s]; ok {
			delete(s.bus.subs, s)
			close(s.ch)
			s.bus.sseClients.Set(float64(len(s.bus.subs)))
		}
		s.bus.mu.Unlock()
	})
}

// AddSink registers sink under name and starts its delivery runner.
func (b *Bus) AddSink(name string, sink Sink, cfg SinkConfig) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("alert: sink name %q: want 1–64 characters", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.sinks[name]; ok {
		return fmt.Errorf("%w: %q", ErrSinkExists, name)
	}
	r := newSinkRunner(b, name, sink, cfg)
	b.sinks[name] = r
	go r.loop()
	return nil
}

// RemoveSink stops the named sink's runner (draining its queue with one
// final attempt per event) and unregisters it.
func (b *Bus) RemoveSink(name string) error {
	b.mu.Lock()
	r, ok := b.sinks[name]
	if ok {
		delete(b.sinks, name)
	}
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrSinkNotFound, name)
	}
	r.stop()
	return nil
}

// SinkStatus describes one registered sink for listings.
type SinkStatus struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Target string `json:"target"`
	// Queue is the configured capacity, Depth the events waiting in it.
	Queue  int    `json:"queue"`
	Depth  int    `json:"depth"`
	Policy string `json:"policy"`
	// Breaker is "closed", "open", or "half-open".
	Breaker      string `json:"breaker"`
	Delivered    uint64 `json:"delivered"`
	Retried      uint64 `json:"retried"`
	Dropped      uint64 `json:"dropped"`
	DeadLettered uint64 `json:"deadLettered"`
}

// Sinks lists the registered sinks sorted by name.
func (b *Bus) Sinks() []SinkStatus {
	b.mu.Lock()
	runners := make([]*sinkRunner, 0, len(b.sinks))
	for _, r := range b.sinks {
		runners = append(runners, r)
	}
	b.mu.Unlock()
	out := make([]SinkStatus, 0, len(runners))
	for _, r := range runners {
		out = append(out, r.status())
	}
	sortStatuses(out)
	return out
}

func sortStatuses(xs []SinkStatus) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].Name < xs[j-1].Name; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// DrainDLQ redelivers every dead-lettered event exactly once: the backlog
// is consumed from disk (and stays consumed — a crash after the drain
// cannot replay it) and each record is enqueued to its original sink.
// Records whose sink is no longer registered are dropped with a warning;
// an event that fails delivery again dead-letters again as a new record.
// Returns how many records were re-enqueued.
func (b *Bus) DrainDLQ() (int, error) {
	if b.dlq == nil {
		return 0, nil
	}
	recs, bad, err := b.dlq.Drain()
	if err != nil {
		return 0, err
	}
	if bad > 0 {
		b.logger.Warn("dead-letter queue had undecodable records", "skipped", bad)
	}
	b.dlqDepth.Set(float64(b.dlq.Len()))
	n := 0
	for _, rec := range recs {
		b.mu.Lock()
		r, ok := b.sinks[rec.Sink]
		b.mu.Unlock()
		if !ok {
			b.logger.Warn("dropping dead letter for unregistered sink",
				"sink", rec.Sink, "type", rec.Event.Type, "stream", rec.Event.Stream)
			continue
		}
		r.enqueue(rec.Event)
		b.dlqDrained.Inc()
		n++
	}
	return n, nil
}

// DLQLen returns the number of dead letters on disk (0 without a DLQ).
func (b *Bus) DLQLen() int {
	if b.dlq == nil {
		return 0
	}
	return b.dlq.Len()
}

// Close shuts the bus down: publishes become no-ops, subscribers' channels
// close, and every sink runner drains its remaining queue with one final
// attempt per event (failures dead-letter) before its sink is closed.
func (b *Bus) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	runners := make([]*sinkRunner, 0, len(b.sinks))
	for name, r := range b.sinks {
		runners = append(runners, r)
		delete(b.sinks, name)
	}
	for sub := range b.subs {
		delete(b.subs, sub)
		close(sub.ch)
	}
	b.sseClients.Set(0)
	b.mu.Unlock()
	for _, r := range runners {
		r.stop()
	}
	if b.dlq != nil {
		return b.dlq.Close()
	}
	return nil
}

// deadLetter persists an event that exhausted its retries.
func (b *Bus) deadLetter(sink string, ev Event, cause error) {
	if b.dlq == nil {
		return
	}
	rec := DeadLetter{Sink: sink, Event: ev}
	if cause != nil {
		rec.Error = cause.Error()
	}
	if err := b.dlq.Append(rec); err != nil {
		b.logger.Error("dead-letter append failed; event lost",
			"sink", sink, "type", ev.Type, "stream", ev.Stream, "err", err)
		return
	}
	b.dlqDepth.Set(float64(b.dlq.Len()))
}

// sinkRunner owns one sink: a bounded queue, a single delivery goroutine,
// retry/backoff state, and the circuit breaker.
type sinkRunner struct {
	bus  *Bus
	name string
	sink Sink
	cfg  SinkConfig
	q    *queue
	br   *breaker

	done   chan struct{}
	exited chan struct{}

	delivered    *obs.Counter
	retried      *obs.Counter
	dropped      *obs.Counter
	deadLettered *obs.Counter
	latency      *obs.Histogram
	breakerG     *obs.Gauge
	brState      atomic.Int32 // mirrors br.state for lock-free status()
}

func newSinkRunner(b *Bus, name string, sink Sink, cfg SinkConfig) *sinkRunner {
	cfg.Retry = cfg.Retry.withDefaults()
	cfg.Breaker = cfg.Breaker.withDefaults()
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	label := obs.Label{Name: "sink", Value: name}
	r := &sinkRunner{
		bus:    b,
		name:   name,
		sink:   sink,
		cfg:    cfg,
		br:     newBreaker(cfg.Breaker, b.now),
		done:   make(chan struct{}),
		exited: make(chan struct{}),
		delivered: b.reg.Counter("cad_alerts_delivered_total",
			"Events delivered by a sink.", label),
		retried: b.reg.Counter("cad_alerts_retried_total",
			"Delivery attempts retried after a failure.", label),
		dropped: b.reg.Counter("cad_alerts_dropped_total",
			"Events dropped by a full queue (drop-oldest policy).", label),
		deadLettered: b.reg.Counter("cad_alerts_dead_lettered_total",
			"Events that exhausted their retries and were dead-lettered.", label),
		latency: b.reg.Histogram("cad_alert_delivery_seconds",
			"Successful delivery latency per attempt.", nil, label),
		breakerG: b.reg.Gauge("cad_alert_breaker_state",
			"Circuit breaker state: 0 closed, 1 open, 2 half-open.", label),
	}
	r.q = newQueue(cfg.Queue, cfg.Policy, r.dropped.Inc)
	return r
}

func (r *sinkRunner) enqueue(ev Event) { r.q.push(ev) }

// loop is the runner goroutine: pop, deliver (with retries), repeat until
// the queue is closed and drained.
func (r *sinkRunner) loop() {
	defer close(r.exited)
	for {
		ev, ok := r.q.pop()
		if !ok {
			return
		}
		r.deliver(ev)
	}
}

// stop closes the queue, waits for the runner to drain it, and closes the
// sink. Pauses are cut short once done closes, so a stuck endpoint delays
// shutdown by at most one attempt per remaining event.
func (r *sinkRunner) stop() {
	close(r.done)
	r.q.close()
	<-r.exited
	if err := r.sink.Close(); err != nil {
		r.bus.logger.Warn("closing sink", "sink", r.name, "err", err)
	}
}

// stopping reports whether shutdown has begun.
func (r *sinkRunner) stopping() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// pause sleeps d (through the test hook when set), returning false when
// shutdown interrupted the sleep.
func (r *sinkRunner) pause(d time.Duration) bool {
	if hook := r.bus.sleepHook; hook != nil {
		hook(d)
		return !r.stopping()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.done:
		return false
	}
}

// setBreakerState publishes the breaker state to the gauge and status.
func (r *sinkRunner) setBreakerState() {
	r.brState.Store(int32(r.br.state))
	r.breakerG.Set(float64(r.br.state))
}

// deliver pushes one event through the sink with bounded retries. The
// breaker gates every attempt: while open the runner waits out the
// cooldown (shutdown cuts the wait short), then probes half-open. After
// MaxAttempts failures the event is dead-lettered.
func (r *sinkRunner) deliver(ev Event) {
	pol := r.cfg.Retry
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		for {
			w := r.br.wait()
			r.setBreakerState()
			if w <= 0 {
				break
			}
			if !r.pause(w) {
				// Shutdown while the breaker is open: the endpoint is
				// known bad, dead-letter without another probe.
				r.dead(ev, lastErr)
				return
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), attemptTimeout(pol))
		start := time.Now()
		err := r.sink.Deliver(ctx, ev)
		cancel()
		if err == nil {
			r.latency.Observe(time.Since(start).Seconds())
			r.br.success()
			r.setBreakerState()
			r.delivered.Inc()
			return
		}
		lastErr = err
		r.br.failure()
		r.setBreakerState()
		if attempt == pol.MaxAttempts || r.stopping() {
			break
		}
		r.retried.Inc()
		if !r.pause(pol.backoff(attempt)) {
			break
		}
	}
	r.dead(ev, lastErr)
}

// attemptTimeout bounds one delivery attempt. Webhook sinks carry their
// own client timeout; this is the backstop for sinks that do not.
func attemptTimeout(p RetryPolicy) time.Duration {
	t := 2 * p.MaxBackoff
	if t < 10*time.Second {
		t = 10 * time.Second
	}
	return t
}

func (r *sinkRunner) dead(ev Event, cause error) {
	r.deadLettered.Inc()
	r.bus.deadLetter(r.name, ev, cause)
	r.bus.logger.Warn("alert dead-lettered",
		"sink", r.name, "type", ev.Type, "stream", ev.Stream, "seq", ev.Seq, "err", cause)
}

func (r *sinkRunner) status() SinkStatus {
	st := SinkStatus{
		Name:         r.name,
		Kind:         r.sink.Kind(),
		Target:       r.sink.Target(),
		Queue:        r.cfg.Queue,
		Depth:        r.q.depth(),
		Policy:       r.cfg.Policy.String(),
		Delivered:    r.delivered.Value(),
		Retried:      r.retried.Value(),
		Dropped:      r.dropped.Value(),
		DeadLettered: r.deadLettered.Value(),
	}
	switch r.brState.Load() {
	case BreakerOpen:
		st.Breaker = "open"
	case BreakerHalfOpen:
		st.Breaker = "half-open"
	default:
		st.Breaker = "closed"
	}
	return st
}
