// Package alert is the push-based delivery layer of the CAD service: an
// anomaly event bus fed from the per-stream detection path, fanned out to
// pluggable sinks (HTTP webhook, NDJSON file, slog) and to live SSE
// subscribers. The paper's whole point is the head start — Ahead rewards
// raising the alarm before the labeled anomaly — and a pull-only API wastes
// that head start until someone polls; this package closes the gap between
// detection and notification.
//
// Delivery is at-least-once: every event carries a dedup key
// (stream, anomalyId, type) consumers can use to drop replays. Each sink
// owns a bounded in-memory queue with an explicit overflow policy (block or
// drop-oldest), bounded retries with exponential backoff and jitter, and a
// circuit breaker that opens after consecutive failures and probes
// half-open after a cooldown. Events that exhaust their retries land in a
// disk-backed dead-letter queue (the WAL record framing from internal/wal)
// and are redelivered exactly one drain at a time on the next restart.
package alert

import (
	"fmt"
	"time"
)

// Type classifies an event. The anomaly lifecycle types mirror the
// tracker's state machine: one anomaly_opened when the first abnormal
// round starts an anomaly, anomaly_updated for every further abnormal
// round, one anomaly_closed when a normal round ends it.
type Type string

const (
	// TypeAlarm is one abnormal detection round (a raw alarm).
	TypeAlarm Type = "alarm"
	// TypeAnomalyOpened marks the first abnormal round of a new anomaly.
	TypeAnomalyOpened Type = "anomaly_opened"
	// TypeAnomalyUpdated marks a further abnormal round of an open anomaly.
	TypeAnomalyUpdated Type = "anomaly_updated"
	// TypeAnomalyClosed marks the normal round that ended an anomaly; the
	// event carries the assembled anomaly (span, score, root-cause order).
	TypeAnomalyClosed Type = "anomaly_closed"
	// TypeDurabilityDegraded marks the manager losing durability and
	// falling back to memory-only operation.
	TypeDurabilityDegraded Type = "durability_degraded"
	// TypeIncidentOpened marks a fleet-level incident forming: the
	// second-stage pipeline clustered deduplicated alarms from enough
	// distinct streams. The event carries the incident payload with the
	// onset-ordered suspect list.
	TypeIncidentOpened Type = "incident_opened"
	// TypeIncidentUpdated marks a new stream joining an open incident (the
	// payload's Rev increases with every published update).
	TypeIncidentUpdated Type = "incident_updated"
	// TypeIncidentClosed marks an incident going quiet; the payload is the
	// final diagnosis (suspects, surprise, span).
	TypeIncidentClosed Type = "incident_closed"
)

// Event is one bus message — the JSON payload webhooks POST and SSE
// subscribers stream. Zero-valued fields are omitted, so an alarm event
// carries round/score/sensors while a degraded event carries only the
// reason.
type Event struct {
	// Seq is the bus-assigned, strictly increasing delivery number.
	Seq uint64 `json:"seq"`
	// Stream is the emitting stream's id ("" for manager-level events).
	Stream string `json:"stream,omitempty"`
	// Type classifies the event.
	Type Type `json:"type"`
	// Time is the event's wall-clock instant (the ingested column's
	// arrival for detection events).
	Time time.Time `json:"time"`
	// AnomalyID numbers anomalies per stream, starting at 1; it ties the
	// opened/updated/closed transitions of one anomaly together and is
	// part of the dedup key.
	AnomalyID int `json:"anomalyId,omitempty"`
	// Round is the detection round that produced the event.
	Round int `json:"round,omitempty"`
	// Tick is the stream's ingest counter at the event.
	Tick int `json:"tick,omitempty"`
	// Score is the normalized deviation |n_r − μ| / σ (peak score for
	// anomaly_closed).
	Score float64 `json:"score,omitempty"`
	// Variations is n_r at the alarm round.
	Variations int `json:"variations,omitempty"`
	// Sensors are the outlier sensors (root-cause order for
	// anomaly_closed).
	Sensors []int `json:"sensors,omitempty"`
	// Start and End delimit a closed anomaly's covered points [Start, End).
	Start int `json:"start,omitempty"`
	End   int `json:"end,omitempty"`
	// Reason explains a durability_degraded event.
	Reason string `json:"reason,omitempty"`
	// Incident carries the fleet-level payload of incident_* events.
	Incident *Incident `json:"incident,omitempty"`
}

// Incident is the fleet-level payload of incident_opened/updated/closed
// events: the second-stage pipeline's diagnosis of one correlated episode
// of per-stream alarms. It is also the /v1/incidents resource shape.
type Incident struct {
	// ID identifies the incident ("inc-7"); stable across its lifecycle.
	ID string `json:"id"`
	// State is "open" or "closed".
	State string `json:"state"`
	// Rev counts published revisions of this incident, starting at 1 with
	// the opened event; it disambiguates the dedup keys of successive
	// incident_updated events.
	Rev int `json:"rev"`
	// OpenedAt is the earliest absorbed alarm's time, LastAt the latest;
	// ClosedAt is set once the incident went quiet.
	OpenedAt time.Time `json:"openedAt"`
	LastAt   time.Time `json:"lastAt"`
	ClosedAt time.Time `json:"closedAt,omitzero"`
	// Streams counts distinct suspect streams, Events the deduplicated
	// alarm signals the incident absorbed.
	Streams int `json:"streams"`
	Events  int `json:"events"`
	// Surprise ∈ [0,1] scores how historically unusual this combination of
	// streams is under the decaying co-occurrence matrix: 1 means the
	// suspects have never alarmed together before, 0 means they routinely
	// do (so the incident is probably the fleet's normal weather).
	Surprise float64 `json:"surprise"`
	// Suspects lists the involved streams in lead-lag order: the stream
	// that moved first — the likeliest root cause — comes first.
	Suspects []Suspect `json:"suspects"`
}

// Suspect is one stream implicated in an incident.
type Suspect struct {
	// Stream is the suspect stream's id.
	Stream string `json:"stream"`
	// Onset is the stream's first deduplicated alarm inside the incident.
	Onset time.Time `json:"onset"`
	// LagSeconds is Onset minus the incident leader's onset (0 for the
	// leader) — the lead-lag evidence for causal ordering.
	LagSeconds float64 `json:"lagSeconds"`
	// Events counts the stream's deduplicated alarm signals, Score the
	// peak alarm score seen.
	Events int     `json:"events"`
	Score  float64 `json:"peakScore"`
	// Sensors is the union of outlier sensors reported by the stream's
	// alarms (ascending), when the alarms carried any.
	Sensors []int `json:"sensors,omitempty"`
}

// DedupKey identifies an event's logical transition. At-least-once
// delivery means a consumer can see the same transition twice (a retried
// webhook whose first attempt succeeded after the timeout, a drained
// dead-letter record that had in fact arrived); dropping repeated keys
// makes processing effectively exactly-once. Seq is deliberately excluded:
// a redelivered event keeps its key but may be re-sequenced. Incident
// events key on the incident id and revision instead of the per-stream
// anomaly numbering.
func (e Event) DedupKey() string {
	if e.Incident != nil {
		return fmt.Sprintf("incident,%s,%d,%s", e.Incident.ID, e.Incident.Rev, e.Type)
	}
	return fmt.Sprintf("%s,%d,%s", e.Stream, e.AnomalyID, e.Type)
}
