// Package alert is the push-based delivery layer of the CAD service: an
// anomaly event bus fed from the per-stream detection path, fanned out to
// pluggable sinks (HTTP webhook, NDJSON file, slog) and to live SSE
// subscribers. The paper's whole point is the head start — Ahead rewards
// raising the alarm before the labeled anomaly — and a pull-only API wastes
// that head start until someone polls; this package closes the gap between
// detection and notification.
//
// Delivery is at-least-once: every event carries a dedup key
// (stream, anomalyId, type) consumers can use to drop replays. Each sink
// owns a bounded in-memory queue with an explicit overflow policy (block or
// drop-oldest), bounded retries with exponential backoff and jitter, and a
// circuit breaker that opens after consecutive failures and probes
// half-open after a cooldown. Events that exhaust their retries land in a
// disk-backed dead-letter queue (the WAL record framing from internal/wal)
// and are redelivered exactly one drain at a time on the next restart.
package alert

import (
	"fmt"
	"time"
)

// Type classifies an event. The anomaly lifecycle types mirror the
// tracker's state machine: one anomaly_opened when the first abnormal
// round starts an anomaly, anomaly_updated for every further abnormal
// round, one anomaly_closed when a normal round ends it.
type Type string

const (
	// TypeAlarm is one abnormal detection round (a raw alarm).
	TypeAlarm Type = "alarm"
	// TypeAnomalyOpened marks the first abnormal round of a new anomaly.
	TypeAnomalyOpened Type = "anomaly_opened"
	// TypeAnomalyUpdated marks a further abnormal round of an open anomaly.
	TypeAnomalyUpdated Type = "anomaly_updated"
	// TypeAnomalyClosed marks the normal round that ended an anomaly; the
	// event carries the assembled anomaly (span, score, root-cause order).
	TypeAnomalyClosed Type = "anomaly_closed"
	// TypeDurabilityDegraded marks the manager losing durability and
	// falling back to memory-only operation.
	TypeDurabilityDegraded Type = "durability_degraded"
)

// Event is one bus message — the JSON payload webhooks POST and SSE
// subscribers stream. Zero-valued fields are omitted, so an alarm event
// carries round/score/sensors while a degraded event carries only the
// reason.
type Event struct {
	// Seq is the bus-assigned, strictly increasing delivery number.
	Seq uint64 `json:"seq"`
	// Stream is the emitting stream's id ("" for manager-level events).
	Stream string `json:"stream,omitempty"`
	// Type classifies the event.
	Type Type `json:"type"`
	// Time is the event's wall-clock instant (the ingested column's
	// arrival for detection events).
	Time time.Time `json:"time"`
	// AnomalyID numbers anomalies per stream, starting at 1; it ties the
	// opened/updated/closed transitions of one anomaly together and is
	// part of the dedup key.
	AnomalyID int `json:"anomalyId,omitempty"`
	// Round is the detection round that produced the event.
	Round int `json:"round,omitempty"`
	// Tick is the stream's ingest counter at the event.
	Tick int `json:"tick,omitempty"`
	// Score is the normalized deviation |n_r − μ| / σ (peak score for
	// anomaly_closed).
	Score float64 `json:"score,omitempty"`
	// Variations is n_r at the alarm round.
	Variations int `json:"variations,omitempty"`
	// Sensors are the outlier sensors (root-cause order for
	// anomaly_closed).
	Sensors []int `json:"sensors,omitempty"`
	// Start and End delimit a closed anomaly's covered points [Start, End).
	Start int `json:"start,omitempty"`
	End   int `json:"end,omitempty"`
	// Reason explains a durability_degraded event.
	Reason string `json:"reason,omitempty"`
}

// DedupKey identifies an event's logical transition. At-least-once
// delivery means a consumer can see the same transition twice (a retried
// webhook whose first attempt succeeded after the timeout, a drained
// dead-letter record that had in fact arrived); dropping repeated keys
// makes processing effectively exactly-once. Seq is deliberately excluded:
// a redelivered event keeps its key but may be re-sequenced.
func (e Event) DedupKey() string {
	return fmt.Sprintf("%s,%d,%s", e.Stream, e.AnomalyID, e.Type)
}
