package alert

import (
	"encoding/json"
	"fmt"
	"time"
)

// EnvelopeVersion is the wire-schema version every sink emits today.
const EnvelopeVersion = 1

// Envelope is the versioned wire frame shared by every delivery surface —
// SSE data fields, webhook POST bodies, and the NDJSON file sink all carry
// exactly this shape:
//
//	{"v":1,"type":"alarm","stream":"web-7","seq":42,"ts":"…","payload":{…}}
//
// The routing fields every consumer needs (type, stream, sequence, time)
// sit at the top level; everything event-specific lives under payload, so
// new event kinds extend the payload without breaking consumers that only
// route. Before the envelope each sink hand-rolled its own flat shape;
// DecodeEvent still accepts that legacy form as a compatibility shim.
type Envelope struct {
	// V is the schema version (EnvelopeVersion).
	V int `json:"v"`
	// Type classifies the event (see Type).
	Type Type `json:"type"`
	// Stream is the emitting stream's id ("" for fleet- or manager-level
	// events).
	Stream string `json:"stream,omitempty"`
	// Seq is the bus-assigned delivery number.
	Seq uint64 `json:"seq"`
	// TS is the event's wall-clock instant.
	TS time.Time `json:"ts"`
	// Payload carries the event-specific fields.
	Payload Payload `json:"payload"`
}

// Payload is the event-specific body of an envelope: the Event minus its
// routing fields. Zero-valued fields are omitted.
type Payload struct {
	AnomalyID  int       `json:"anomalyId,omitempty"`
	Round      int       `json:"round,omitempty"`
	Tick       int       `json:"tick,omitempty"`
	Score      float64   `json:"score,omitempty"`
	Variations int       `json:"variations,omitempty"`
	Sensors    []int     `json:"sensors,omitempty"`
	Start      int       `json:"start,omitempty"`
	End        int       `json:"end,omitempty"`
	Reason     string    `json:"reason,omitempty"`
	Incident   *Incident `json:"incident,omitempty"`
}

// Envelope wraps the event in the v1 wire frame.
func (e Event) Envelope() Envelope {
	return Envelope{
		V:      EnvelopeVersion,
		Type:   e.Type,
		Stream: e.Stream,
		Seq:    e.Seq,
		TS:     e.Time,
		Payload: Payload{
			AnomalyID:  e.AnomalyID,
			Round:      e.Round,
			Tick:       e.Tick,
			Score:      e.Score,
			Variations: e.Variations,
			Sensors:    e.Sensors,
			Start:      e.Start,
			End:        e.End,
			Reason:     e.Reason,
			Incident:   e.Incident,
		},
	}
}

// Event unwraps the envelope back into the bus event it framed.
func (env Envelope) Event() Event {
	p := env.Payload
	return Event{
		Seq:        env.Seq,
		Stream:     env.Stream,
		Type:       env.Type,
		Time:       env.TS,
		AnomalyID:  p.AnomalyID,
		Round:      p.Round,
		Tick:       p.Tick,
		Score:      p.Score,
		Variations: p.Variations,
		Sensors:    p.Sensors,
		Start:      p.Start,
		End:        p.End,
		Reason:     p.Reason,
		Incident:   p.Incident,
	}
}

// EncodeEvent renders ev in the v1 wire envelope — the one encoder every
// sink and the SSE feed share.
func EncodeEvent(ev Event) ([]byte, error) {
	data, err := json.Marshal(ev.Envelope())
	if err != nil {
		return nil, fmt.Errorf("alert: encode event: %w", err)
	}
	return data, nil
}

// DecodeEvent parses one wire event: the v1 envelope, or — compatibility
// shim — the legacy flat shape the sinks emitted before the envelope
// existed (no "v" member, every field at the top level). Consumers and
// old NDJSON archives go through this one entry point, so the legacy
// shape can be retired without touching them. An envelope with an
// unknown version is an error rather than a silent partial decode.
func DecodeEvent(data []byte) (Event, error) {
	var probe struct {
		V int `json:"v"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return Event{}, fmt.Errorf("alert: decode event: %w", err)
	}
	switch probe.V {
	case 0: // legacy flat shape predating the envelope
		var ev Event
		if err := json.Unmarshal(data, &ev); err != nil {
			return Event{}, fmt.Errorf("alert: decode legacy event: %w", err)
		}
		return ev, nil
	case EnvelopeVersion:
		var env Envelope
		if err := json.Unmarshal(data, &env); err != nil {
			return Event{}, fmt.Errorf("alert: decode event envelope: %w", err)
		}
		return env.Event(), nil
	default:
		return Event{}, fmt.Errorf("alert: unsupported event envelope version %d", probe.V)
	}
}
