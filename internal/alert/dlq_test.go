package alert

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cad/internal/faultfs"
)

func TestDLQAppendDrainCycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dlq")
	d, err := OpenDLQ(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		rec := DeadLetter{Sink: "hook", Error: "status 500",
			Event: Event{Stream: "s", Type: TypeAlarm, Round: i, Time: time.Unix(int64(i), 0)}}
		if err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (a restart) — the backlog survives, counted correctly.
	d, err = OpenDLQ(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Len() != 3 {
		t.Fatalf("Len after reopen = %d, want 3", d.Len())
	}
	recs, bad, err := d.Drain()
	if err != nil || bad != 0 {
		t.Fatalf("Drain = (%d recs, %d bad, %v)", len(recs), bad, err)
	}
	if len(recs) != 3 || recs[0].Event.Round != 1 || recs[2].Event.Round != 3 {
		t.Fatalf("drained %d records in wrong order: %+v", len(recs), recs)
	}
	if recs[0].Sink != "hook" || recs[0].Error != "status 500" {
		t.Fatalf("record lost sink/error: %+v", recs[0])
	}
	// Exactly-once: a second drain, and a drain after reopen, are empty.
	if recs, _, _ := d.Drain(); len(recs) != 0 {
		t.Fatalf("second drain returned %d records", len(recs))
	}
	d.Close()
	d, err = OpenDLQ(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if recs, _, _ := d.Drain(); len(recs) != 0 || d.Len() != 0 {
		t.Fatalf("drain after reopen returned %d records (len %d)", len(recs), d.Len())
	}
}

// TestDLQTornTail corrupts the final record on disk; the WAL framing must
// truncate it and hand back the intact prefix.
func TestDLQTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dlq")
	d, err := OpenDLQ(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := d.Append(DeadLetter{Sink: "hook", Event: Event{Round: i, Time: time.Unix(1, 0)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop bytes off the segment so the last frame is short.
	seg := filepath.Join(dir, "00000001.wal")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	d, err = OpenDLQ(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	recs, bad, err := d.Drain()
	if err != nil || bad != 0 {
		t.Fatalf("Drain after torn tail = (%v, %d bad)", err, bad)
	}
	if len(recs) != 1 || recs[0].Event.Round != 1 {
		t.Fatalf("torn-tail drain = %+v, want the first record only", recs)
	}
}

// TestDLQDiskFailure injects ENOSPC through the faultfs seam: the append
// fails loudly instead of silently losing the dead letter, and the bus
// keeps serving.
func TestDLQDiskFailure(t *testing.T) {
	fault := faultfs.New(faultfs.OS())
	dir := filepath.Join(t.TempDir(), "dlq")
	b, err := NewBus(Options{DLQDir: dir, FS: fault})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sink := &recordingSink{}
	sink.setFail(syscall.ECONNREFUSED)
	cfg := SinkConfig{Retry: RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Millisecond, Jitter: -1}}
	if err := b.AddSink("rec", sink, cfg); err != nil {
		t.Fatal(err)
	}
	fault.FailWrites(syscall.ENOSPC)
	b.Publish(Event{Stream: "s", Type: TypeAlarm})
	waitFor(t, "dead-letter attempt", func() bool {
		return counterValue(b.reg, "cad_alerts_dead_lettered_total", "rec") == 1
	})
	// The append failed; nothing landed on disk and the bus still works.
	if n := b.DLQLen(); n != 0 {
		t.Fatalf("DLQ len = %d after ENOSPC, want 0", n)
	}
	fault.FailWrites(nil)
	sink.setFail(nil)
	b.Publish(Event{Stream: "s", Type: TypeAlarm})
	waitFor(t, "recovery delivery", func() bool {
		return counterValue(b.reg, "cad_alerts_delivered_total", "rec") == 1
	})
}
