package alert

import (
	"bytes"
	"context"
	"crypto/hmac"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedServer runs an httptest.Server whose responses follow a script:
// "ok" answers 200, "500"/"503" answer that status, "hang" sleeps past the
// client timeout. Once the script is exhausted every request answers 200.
type scriptedServer struct {
	mu       sync.Mutex
	script   []string
	requests []Event
	sigs     []string
	srv      *httptest.Server
}

func newScriptedServer(t *testing.T, script ...string) *scriptedServer {
	s := &scriptedServer{script: script}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		step := "ok"
		if len(s.script) > 0 {
			step = s.script[0]
			s.script = s.script[1:]
		}
		s.mu.Unlock()
		switch step {
		case "500":
			w.WriteHeader(http.StatusInternalServerError)
			return
		case "503":
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		case "hang":
			time.Sleep(300 * time.Millisecond)
			return
		}
		ev, err := DecodeEvent(body)
		if err != nil {
			t.Errorf("webhook body: %v", err)
		}
		s.mu.Lock()
		s.requests = append(s.requests, ev)
		s.sigs = append(s.sigs, r.Header.Get(SignatureHeader))
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *scriptedServer) delivered() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.requests))
	copy(out, s.requests)
	return out
}

// fastRetry keeps test wall-clock short while exercising real sleeps.
var fastRetry = RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Jitter: -1}

// TestWebhookFlakyDelivery scripts two 5xx responses before success and
// asserts the retry metrics — not just logs — plus bounded backoff via the
// sleep hook.
func TestWebhookFlakyDelivery(t *testing.T) {
	srv := newScriptedServer(t, "500", "503")
	b, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var sleeps []time.Duration
	var sleepMu sync.Mutex
	b.sleepHook = func(d time.Duration) {
		sleepMu.Lock()
		sleeps = append(sleeps, d)
		sleepMu.Unlock()
	}
	sink, err := NewWebhookSink(srv.srv.URL, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddSink("hook", sink, SinkConfig{Retry: fastRetry, Breaker: BreakerPolicy{Threshold: 10}}); err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Stream: "s", Type: TypeAlarm, Round: 1})
	waitFor(t, "delivery after retries", func() bool { return len(srv.delivered()) == 1 })
	if got := counterValue(b.reg, "cad_alerts_retried_total", "hook"); got != 2 {
		t.Fatalf("cad_alerts_retried_total = %d, want 2", got)
	}
	if got := counterValue(b.reg, "cad_alerts_delivered_total", "hook"); got != 1 {
		t.Fatalf("cad_alerts_delivered_total = %d, want 1", got)
	}
	if got := counterValue(b.reg, "cad_alerts_dead_lettered_total", "hook"); got != 0 {
		t.Fatalf("cad_alerts_dead_lettered_total = %d, want 0", got)
	}
	// Backoff is bounded: every sleep ≤ MaxBackoff (jitter disabled), and
	// the sequence grows exponentially from the base.
	sleepMu.Lock()
	defer sleepMu.Unlock()
	if len(sleeps) != 2 {
		t.Fatalf("observed %d retry sleeps, want 2", len(sleeps))
	}
	for i, d := range sleeps {
		if d > fastRetry.MaxBackoff {
			t.Fatalf("sleep %d = %v exceeds MaxBackoff %v", i, d, fastRetry.MaxBackoff)
		}
	}
	if sleeps[0] != time.Millisecond || sleeps[1] != 2*time.Millisecond {
		t.Fatalf("backoff sequence = %v, want [1ms 2ms]", sleeps)
	}
}

// TestWebhookTimeoutIsRetryable scripts a response that outlives the
// client timeout; the attempt must fail and be retried like a 5xx.
func TestWebhookTimeoutIsRetryable(t *testing.T) {
	srv := newScriptedServer(t, "hang")
	b, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sink, err := NewWebhookSink(srv.srv.URL, nil, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddSink("hook", sink, SinkConfig{Retry: fastRetry, Breaker: BreakerPolicy{Threshold: 10}}); err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Stream: "s", Type: TypeAlarm})
	waitFor(t, "delivery after timeout retry", func() bool { return len(srv.delivered()) == 1 })
	if got := counterValue(b.reg, "cad_alerts_retried_total", "hook"); got != 1 {
		t.Fatalf("cad_alerts_retried_total = %d, want 1", got)
	}
}

// TestWebhookBreakerOpensAndRecovers drives the breaker through
// closed → open → half-open(fail) → open → half-open(success) → closed and
// asserts the state gauge at each stage.
func TestWebhookBreakerOpensAndRecovers(t *testing.T) {
	// Script: 2 failures open the breaker (threshold 2); the half-open
	// probe fails (reopen); the next probe succeeds (close).
	srv := newScriptedServer(t, "500", "500", "500")
	b, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var states []float64
	var mu sync.Mutex
	b.sleepHook = func(time.Duration) {
		mu.Lock()
		states = append(states, gaugeValue(b.reg, "cad_alert_breaker_state", "hook"))
		mu.Unlock()
	}
	sink, err := NewWebhookSink(srv.srv.URL, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SinkConfig{
		Retry:   RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Jitter: -1},
		Breaker: BreakerPolicy{Threshold: 2, Cooldown: 2 * time.Millisecond},
	}
	if err := b.AddSink("hook", sink, cfg); err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Stream: "s", Type: TypeAlarm})
	waitFor(t, "delivery through the breaker", func() bool { return len(srv.delivered()) == 1 })
	if got := gaugeValue(b.reg, "cad_alert_breaker_state", "hook"); got != BreakerClosed {
		t.Fatalf("final breaker state = %v, want closed (%d)", got, BreakerClosed)
	}
	// The breaker must have been observed open at least twice (after the
	// threshold trip and after the failed half-open probe).
	mu.Lock()
	opens := 0
	for _, s := range states {
		if s == BreakerOpen {
			opens++
		}
	}
	mu.Unlock()
	if opens < 2 {
		t.Fatalf("breaker observed open %d times during sleeps (%v), want ≥ 2", opens, states)
	}
	st := b.Sinks()
	if len(st) != 1 || st[0].Breaker != "closed" {
		t.Fatalf("sink status breaker = %+v, want closed", st)
	}
}

// TestWebhookDeadLetterAndDrain exhausts retries against a dead endpoint,
// asserts the event lands in the disk-backed DLQ, then restores the
// endpoint and drains the DLQ exactly once.
func TestWebhookDeadLetterAndDrain(t *testing.T) {
	var healthy atomic.Bool
	var got []Event
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		body, _ := io.ReadAll(r.Body)
		ev, _ := DecodeEvent(body)
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}))
	defer srv.Close()

	dir := t.TempDir()
	newBus := func() *Bus {
		b, err := NewBus(Options{DLQDir: filepath.Join(dir, "dlq")})
		if err != nil {
			t.Fatal(err)
		}
		sink, err := NewWebhookSink(srv.URL, nil, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cfg := SinkConfig{
			Retry:   RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond, Jitter: -1},
			Breaker: BreakerPolicy{Threshold: 100},
		}
		if err := b.AddSink("hook", sink, cfg); err != nil {
			t.Fatal(err)
		}
		return b
	}

	b := newBus()
	b.Publish(Event{Stream: "s", Type: TypeAnomalyOpened, AnomalyID: 1})
	waitFor(t, "dead-lettering", func() bool {
		return counterValue(b.reg, "cad_alerts_dead_lettered_total", "hook") == 1
	})
	if n := b.DLQLen(); n != 1 {
		t.Fatalf("DLQ holds %d records, want 1", n)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart" delivery: new bus over the same DLQ directory, endpoint
	// healthy again. The drain must redeliver the event exactly once.
	healthy.Store(true)
	b2 := newBus()
	defer b2.Close()
	n, err := b2.DrainDLQ()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("DrainDLQ re-enqueued %d, want 1", n)
	}
	waitFor(t, "redelivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	if got[0].DedupKey() != "s,1,anomaly_opened" {
		t.Fatalf("redelivered dedup key = %q", got[0].DedupKey())
	}
	mu.Unlock()
	if n := b2.DLQLen(); n != 0 {
		t.Fatalf("DLQ holds %d records after drain, want 0", n)
	}
	// A second drain finds nothing — the backlog was consumed exactly once.
	if n, err := b2.DrainDLQ(); err != nil || n != 0 {
		t.Fatalf("second DrainDLQ = (%d, %v), want (0, nil)", n, err)
	}
}

// TestWebhookHMACSignature verifies the X-CAD-Signature header against a
// receiver-side recomputation over the raw body.
func TestWebhookHMACSignature(t *testing.T) {
	secret := []byte("shared-secret")
	var sigOK atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		want := Sign(secret, body)
		sigOK.Store(hmac.Equal([]byte(want), []byte(r.Header.Get(SignatureHeader))))
	}))
	defer srv.Close()
	b, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sink, err := NewWebhookSink(srv.URL, secret, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddSink("hook", sink, SinkConfig{Retry: fastRetry}); err != nil {
		t.Fatal(err)
	}
	b.Publish(Event{Stream: "s", Type: TypeAnomalyOpened, AnomalyID: 7, Sensors: []int{3, 1}})
	waitFor(t, "signed delivery", func() bool {
		return counterValue(b.reg, "cad_alerts_delivered_total", "hook") == 1
	})
	if !sigOK.Load() {
		t.Fatal("X-CAD-Signature did not verify against the body")
	}
}

func TestWebhookURLValidation(t *testing.T) {
	for _, bad := range []string{"", "not-a-url", "ftp://x/y", "http://"} {
		if _, err := NewWebhookSink(bad, nil, 0); err == nil {
			t.Fatalf("NewWebhookSink(%q) succeeded", bad)
		}
	}
	if _, err := NewWebhookSink("https://alerts.example.com/hook", nil, 0); err != nil {
		t.Fatalf("valid URL rejected: %v", err)
	}
}

func TestFileSinkNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.ndjson")
	b, err := NewBus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewFileSink(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddSink("file", sink, SinkConfig{}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		b.Publish(Event{Stream: "s", Type: TypeAlarm, Round: i})
	}
	waitFor(t, "file deliveries", func() bool {
		return counterValue(b.reg, "cad_alerts_delivered_total", "file") == 3
	})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d NDJSON lines, want 3", len(lines))
	}
	for i, line := range lines {
		ev, err := DecodeEvent(line)
		if err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if ev.Round != i+1 {
			t.Fatalf("line %d has round %d", i+1, ev.Round)
		}
	}
}

func TestSlogSinkDelivers(t *testing.T) {
	s := NewSlogSink(nil)
	if err := s.Deliver(context.Background(), Event{Stream: "s", Type: TypeAlarm}); err != nil {
		t.Fatal(err)
	}
	if s.Kind() != "slog" {
		t.Fatalf("kind = %q", s.Kind())
	}
}
