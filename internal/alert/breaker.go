package alert

import "time"

// Breaker states, exported as the cad_alert_breaker_state gauge value.
const (
	// BreakerClosed: deliveries flow normally.
	BreakerClosed = 0
	// BreakerOpen: the sink failed Threshold times in a row; deliveries
	// wait out the cooldown instead of hammering a dead endpoint.
	BreakerOpen = 1
	// BreakerHalfOpen: the cooldown elapsed; the next delivery is a probe.
	// Success closes the breaker, failure reopens it for another cooldown.
	BreakerHalfOpen = 2
)

// BreakerPolicy configures a sink's circuit breaker.
type BreakerPolicy struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (≤ 0 means 5).
	Threshold int
	// Cooldown is how long an open breaker waits before the half-open
	// probe (≤ 0 means 10s).
	Cooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold <= 0 {
		p.Threshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 10 * time.Second
	}
	return p
}

// breaker is a per-sink circuit breaker. It is only touched by the sink's
// single runner goroutine (state queries from listings go through the
// runner's atomic gauge), so it needs no lock of its own.
type breaker struct {
	pol   BreakerPolicy
	now   func() time.Time
	state int
	fails int
	until time.Time // when an open breaker may probe
}

func newBreaker(pol BreakerPolicy, now func() time.Time) *breaker {
	return &breaker{pol: pol.withDefaults(), now: now}
}

// wait returns how long the caller must wait before attempting a delivery:
// zero when the breaker is closed or ready to probe, the remaining
// cooldown otherwise. Reaching the cooldown boundary transitions
// open → half-open.
func (b *breaker) wait() time.Duration {
	if b.state != BreakerOpen {
		return 0
	}
	if d := b.until.Sub(b.now()); d > 0 {
		return d
	}
	b.state = BreakerHalfOpen
	return 0
}

// success records a delivered event: any state collapses back to closed.
func (b *breaker) success() {
	b.state = BreakerClosed
	b.fails = 0
}

// failure records a failed attempt: a failed half-open probe reopens
// immediately, and Threshold consecutive failures open a closed breaker.
func (b *breaker) failure() {
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.pol.Threshold {
		b.state = BreakerOpen
		b.until = b.now().Add(b.pol.Cooldown)
	}
}
