package alert

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sampleEvents covers one event of every type with its characteristic
// fields populated — the schema round-trip corpus.
func sampleEvents(t *testing.T) []Event {
	t.Helper()
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	inc := &Incident{
		ID:       "inc-3",
		State:    "open",
		Rev:      2,
		OpenedAt: at,
		LastAt:   at.Add(40 * time.Second),
		Streams:  2,
		Events:   7,
		Surprise: 0.83,
		Suspects: []Suspect{
			{Stream: "web-0", Onset: at, LagSeconds: 0, Events: 4, Score: 3.2, Sensors: []int{1, 5}},
			{Stream: "web-1", Onset: at.Add(7 * time.Second), LagSeconds: 7, Events: 3, Score: 2.9},
		},
	}
	closed := *inc
	closed.State = "closed"
	closed.Rev = 3
	closed.ClosedAt = at.Add(5 * time.Minute)
	return []Event{
		{Seq: 1, Stream: "web-0", Type: TypeAlarm, Time: at, Round: 12, Tick: 48, Score: 2.5, Variations: 4, Sensors: []int{0, 3}},
		{Seq: 2, Stream: "web-0", Type: TypeAnomalyOpened, Time: at, AnomalyID: 1, Round: 12, Tick: 48, Score: 2.5, Sensors: []int{0, 3}},
		{Seq: 3, Stream: "web-0", Type: TypeAnomalyUpdated, Time: at.Add(4 * time.Second), AnomalyID: 1, Round: 13, Tick: 52, Score: 3.1, Sensors: []int{0, 3, 7}},
		{Seq: 4, Stream: "web-0", Type: TypeAnomalyClosed, Time: at.Add(8 * time.Second), AnomalyID: 1, Round: 14, Score: 3.1, Sensors: []int{3, 0, 7}, Start: 40, End: 56},
		{Seq: 5, Type: TypeDurabilityDegraded, Time: at, Reason: "snapshot write failed"},
		{Seq: 6, Type: TypeIncidentOpened, Time: at, Incident: inc},
		{Seq: 7, Type: TypeIncidentUpdated, Time: at.Add(time.Minute), Incident: inc},
		{Seq: 8, Type: TypeIncidentClosed, Time: at.Add(6 * time.Minute), Incident: &closed},
	}
}

// TestEnvelopeRoundTrip proves Encode→Decode is the identity for every
// event type, and that the wire bytes carry the v1 envelope shape.
func TestEnvelopeRoundTrip(t *testing.T) {
	for _, ev := range sampleEvents(t) {
		data, err := EncodeEvent(ev)
		if err != nil {
			t.Fatalf("%s: encode: %v", ev.Type, err)
		}
		var shape map[string]json.RawMessage
		if err := json.Unmarshal(data, &shape); err != nil {
			t.Fatalf("%s: wire bytes are not an object: %v", ev.Type, err)
		}
		for _, key := range []string{"v", "type", "seq", "ts", "payload"} {
			if _, ok := shape[key]; !ok {
				t.Errorf("%s: envelope missing %q: %s", ev.Type, key, data)
			}
		}
		if string(shape["v"]) != "1" {
			t.Errorf("%s: envelope version = %s, want 1", ev.Type, shape["v"])
		}
		got, err := DecodeEvent(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", ev.Type, err)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", ev.Type, got, ev)
		}
	}
}

// TestEnvelopeDoubleRoundTrip proves the wire form is a fixed point:
// encoding the decoded event reproduces the bytes.
func TestEnvelopeDoubleRoundTrip(t *testing.T) {
	for _, ev := range sampleEvents(t) {
		first, err := EncodeEvent(ev)
		if err != nil {
			t.Fatalf("%s: encode: %v", ev.Type, err)
		}
		got, err := DecodeEvent(first)
		if err != nil {
			t.Fatalf("%s: decode: %v", ev.Type, err)
		}
		second, err := EncodeEvent(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", ev.Type, err)
		}
		if string(first) != string(second) {
			t.Errorf("%s: encode is not a fixed point:\n first %s\nsecond %s", ev.Type, first, second)
		}
	}
}

// TestDecodeEventLegacyShim proves the compatibility shim: flat event
// JSON as the sinks emitted before the envelope decodes identically.
func TestDecodeEventLegacyShim(t *testing.T) {
	for _, ev := range sampleEvents(t) {
		legacy, err := json.Marshal(ev) // Event's own JSON is the legacy wire shape
		if err != nil {
			t.Fatalf("%s: marshal legacy: %v", ev.Type, err)
		}
		got, err := DecodeEvent(legacy)
		if err != nil {
			t.Fatalf("%s: decode legacy: %v", ev.Type, err)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Errorf("%s: legacy shim mismatch:\n got %+v\nwant %+v", ev.Type, got, ev)
		}
	}
}

func TestDecodeEventRejectsUnknownVersion(t *testing.T) {
	_, err := DecodeEvent([]byte(`{"v":2,"type":"alarm","seq":1,"ts":"2026-08-08T00:00:00Z","payload":{}}`))
	if err == nil || !strings.Contains(err.Error(), "version 2") {
		t.Fatalf("want unsupported-version error, got %v", err)
	}
}

func TestDecodeEventRejectsGarbage(t *testing.T) {
	if _, err := DecodeEvent([]byte(`{"v":`)); err == nil {
		t.Fatal("want error for truncated JSON")
	}
}
