package alert

import "sync"

// OverflowPolicy picks what a full sink queue does with the next event.
type OverflowPolicy int

const (
	// DropOldest evicts the oldest queued event to admit the new one, so
	// the publisher (the detection hot path) never blocks. Drops are
	// surfaced through cad_alerts_dropped_total.
	DropOldest OverflowPolicy = iota
	// Block makes the publisher wait for queue space — lossless, at the
	// price of backpressure into the ingest path.
	Block
)

// String renders the policy for sink listings.
func (p OverflowPolicy) String() string {
	if p == Block {
		return "block"
	}
	return "drop-oldest"
}

// queue is a bounded FIFO ring of events with an explicit overflow policy.
// One publisher side (the bus) and one consumer side (the sink runner);
// safe for concurrent use.
type queue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []Event
	head     int // index of the oldest event
	n        int // events queued
	policy   OverflowPolicy
	closed   bool
	onDrop   func() // counts DropOldest evictions; never nil
}

func newQueue(capacity int, policy OverflowPolicy, onDrop func()) *queue {
	if capacity <= 0 {
		capacity = 256
	}
	if onDrop == nil {
		onDrop = func() {}
	}
	q := &queue{buf: make([]Event, capacity), policy: policy, onDrop: onDrop}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// push enqueues ev, applying the overflow policy when full. It reports
// whether the event was admitted (false only for a closed queue).
func (q *queue) push(ev Event) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == len(q.buf) && !q.closed {
		if q.policy == DropOldest {
			q.head = (q.head + 1) % len(q.buf)
			q.n--
			q.onDrop()
			break
		}
		q.notFull.Wait()
	}
	if q.closed {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = ev
	q.n++
	q.notEmpty.Signal()
	return true
}

// pop blocks until an event is available or the queue is closed and empty.
func (q *queue) pop() (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		return Event{}, false
	}
	ev := q.buf[q.head]
	q.buf[q.head] = Event{} // drop the reference for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.notFull.Signal()
	return ev, true
}

// depth returns the number of queued events.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// close stops admissions; queued events remain poppable until drained.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
