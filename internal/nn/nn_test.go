package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestActivations(t *testing.T) {
	if ReLU.apply(-2) != 0 || ReLU.apply(3) != 3 {
		t.Error("ReLU")
	}
	if math.Abs(Sigmoid.apply(0)-0.5) > 1e-12 {
		t.Error("Sigmoid(0)")
	}
	if math.Abs(Tanh.apply(0)) > 1e-12 {
		t.Error("Tanh(0)")
	}
	if Identity.apply(7) != 7 {
		t.Error("Identity")
	}
	// Derivatives in terms of output.
	if ReLU.derivative(2) != 1 || ReLU.derivative(0) != 0 {
		t.Error("ReLU'")
	}
	if math.Abs(Sigmoid.derivative(0.5)-0.25) > 1e-12 {
		t.Error("Sigmoid'")
	}
	if math.Abs(Tanh.derivative(0)-1) > 1e-12 {
		t.Error("Tanh'")
	}
	if Identity.derivative(9) != 1 {
		t.Error("Identity'")
	}
}

func TestNewNetworkErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNetwork([]int{4}, ReLU, Identity, rng); err == nil {
		t.Error("single size should error")
	}
	n, err := NewNetwork([]int{4, 8, 2}, ReLU, Identity, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Layers) != 2 || n.Layers[0].Act != ReLU || n.Layers[1].Act != Identity {
		t.Error("layer construction wrong")
	}
	if n.Params() != 4*8+8+8*2+2 {
		t.Errorf("Params = %d", n.Params())
	}
}

// Finite-difference gradient check on a tiny network.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, _ := NewNetwork([]int{3, 4, 2}, Tanh, Identity, rng)
	x := []float64{0.5, -1, 0.3}
	target := []float64{1, -0.5}

	loss := func() float64 {
		out := net.Forward(x)
		l, _ := MSE(out, target, nil)
		return l
	}
	// Analytic gradients.
	net.ZeroGrad()
	out := net.Forward(x)
	grad := make([]float64, len(out))
	if _, err := MSE(out, target, grad); err != nil {
		t.Fatal(err)
	}
	net.Backward(grad)

	const eps = 1e-6
	for li, layer := range net.Layers {
		for wi := range layer.W {
			orig := layer.W[wi]
			layer.W[wi] = orig + eps
			lp := loss()
			layer.W[wi] = orig - eps
			lm := loss()
			layer.W[wi] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-layer.gw[wi]) > 1e-5 {
				t.Fatalf("layer %d W[%d]: numeric %v analytic %v", li, wi, numeric, layer.gw[wi])
			}
		}
		for bi := range layer.B {
			orig := layer.B[bi]
			layer.B[bi] = orig + eps
			lp := loss()
			layer.B[bi] = orig - eps
			lm := loss()
			layer.B[bi] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-layer.gb[bi]) > 1e-5 {
				t.Fatalf("layer %d B[%d]: numeric %v analytic %v", li, bi, numeric, layer.gb[bi])
			}
		}
	}
}

// An autoencoder must learn to reconstruct points from a 1-D manifold.
func TestAutoencoderLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, _ := NewNetwork([]int{4, 2, 4}, Tanh, Identity, rng)
	opt := NewAdam(0.01)
	sample := func() []float64 {
		s := rng.Float64()*2 - 1
		return []float64{s, 2 * s, -s, 0.5 * s}
	}
	grad := make([]float64, 4)
	var last float64
	for epoch := 0; epoch < 400; epoch++ {
		x := sample()
		out := net.Forward(x)
		l, _ := MSE(out, x, grad)
		last = l
		net.Backward(grad)
		opt.Step(1, net)
	}
	if last > 0.01 {
		t.Errorf("autoencoder failed to converge: final loss %v", last)
	}
	// Off-manifold points reconstruct worse.
	onOut := net.Forward([]float64{0.5, 1, -0.5, 0.25})
	onLoss, _ := MSE(onOut, []float64{0.5, 1, -0.5, 0.25}, nil)
	off := []float64{1, -1, 1, -1}
	offOut := net.Forward(off)
	offLoss, _ := MSE(offOut, off, nil)
	if offLoss < 5*onLoss {
		t.Errorf("off-manifold loss %v should exceed on-manifold %v", offLoss, onLoss)
	}
}

func TestBackwardThroughComposition(t *testing.T) {
	// Gradient check across two chained networks (the USAD pattern
	// D2(E(x))): backprop through net2 then net1.
	rng := rand.New(rand.NewSource(4))
	enc, _ := NewNetwork([]int{3, 2}, Tanh, Tanh, rng)
	dec, _ := NewNetwork([]int{2, 3}, Tanh, Identity, rng)
	x := []float64{0.2, -0.4, 0.9}
	target := []float64{0, 0, 0}
	loss := func() float64 {
		out := dec.Forward(enc.Forward(x))
		l, _ := MSE(out, target, nil)
		return l
	}
	enc.ZeroGrad()
	dec.ZeroGrad()
	out := dec.Forward(enc.Forward(x))
	grad := make([]float64, 3)
	if _, err := MSE(out, target, grad); err != nil {
		t.Fatal(err)
	}
	enc.Backward(dec.Backward(grad))
	const eps = 1e-6
	l0 := enc.Layers[0]
	for wi := range l0.W {
		orig := l0.W[wi]
		l0.W[wi] = orig + eps
		lp := loss()
		l0.W[wi] = orig - eps
		lm := loss()
		l0.W[wi] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-l0.gw[wi]) > 1e-5 {
			t.Fatalf("encoder W[%d]: numeric %v analytic %v", wi, numeric, l0.gw[wi])
		}
	}
}

func TestMSEErrors(t *testing.T) {
	if _, err := MSE([]float64{1}, []float64{1, 2}, nil); err != ErrShape {
		t.Errorf("want ErrShape, got %v", err)
	}
	l, err := MSE([]float64{1, 2}, []float64{1, 2}, nil)
	if err != nil || l != 0 {
		t.Errorf("perfect MSE = %v, %v", l, err)
	}
}

func TestSeededReproducibility(t *testing.T) {
	build := func() *Network {
		rng := rand.New(rand.NewSource(9))
		n, _ := NewNetwork([]int{5, 3, 5}, ReLU, Identity, rng)
		return n
	}
	a, b := build(), build()
	for i := range a.Layers[0].W {
		if a.Layers[0].W[i] != b.Layers[0].W[i] {
			t.Fatal("same seed must initialize identically")
		}
	}
}
