// Package nn is a minimal feed-forward neural network substrate (dense
// layers, ReLU/sigmoid/tanh activations, Adam optimizer, MSE loss) used to
// reproduce the deep learning baselines USAD and RCoders in pure Go. It is
// deliberately small: float64 everywhere, explicit backpropagation, seeded
// initialization for reproducible training.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrShape reports a dimension mismatch.
var ErrShape = errors.New("nn: shape mismatch")

// Activation selects a layer nonlinearity.
type Activation int

const (
	// Identity applies no nonlinearity.
	Identity Activation = iota
	// ReLU is max(0, x).
	ReLU
	// Sigmoid is 1/(1+e^−x).
	Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivative in terms of the activated output y.
func (a Activation) derivative(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// Dense is one fully connected layer with Out×In weights.
type Dense struct {
	In, Out int
	Act     Activation
	W       []float64 // row-major Out×In
	B       []float64

	// gradients accumulated by Backward
	gw []float64
	gb []float64
	// Adam state
	mw, vw, mb, vb []float64
	// cached forward values
	in  []float64
	out []float64
}

// NewDense allocates a layer with Glorot-uniform initialization from rng.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
		mw: make([]float64, in*out),
		vw: make([]float64, in*out),
		mb: make([]float64, out),
		vb: make([]float64, out),
	}
	limit := math.Sqrt(6 / float64(in+out))
	for i := range d.W {
		d.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes the layer output, caching values for Backward. A fresh
// output slice is allocated per call so earlier results stay valid when the
// layer is re-run (required by the composed forward passes of USAD).
func (d *Dense) Forward(x []float64) []float64 {
	d.in = x
	d.out = make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		d.out[o] = d.Act.apply(sum)
	}
	return d.out
}

// Backward takes ∂L/∂out, accumulates parameter gradients, and returns
// ∂L/∂in.
func (d *Dense) Backward(gradOut []float64) []float64 {
	gradIn := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := gradOut[o] * d.Act.derivative(d.out[o])
		d.gb[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gw[o*d.In : (o+1)*d.In]
		for i, xi := range d.in {
			grow[i] += g * xi
			gradIn[i] += g * row[i]
		}
	}
	return gradIn
}

// Network is a sequential stack of dense layers.
type Network struct {
	Layers []*Dense
}

// NewNetwork builds a stack from the given layer sizes, with hidden layers
// using hiddenAct and the final layer outAct.
func NewNetwork(sizes []int, hiddenAct, outAct Activation, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("%w: need at least input and output sizes", ErrShape)
	}
	n := &Network{}
	for i := 0; i < len(sizes)-1; i++ {
		act := hiddenAct
		if i == len(sizes)-2 {
			act = outAct
		}
		n.Layers = append(n.Layers, NewDense(sizes[i], sizes[i+1], act, rng))
	}
	return n, nil
}

// Forward runs the stack.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates ∂L/∂out through the stack, accumulating gradients,
// and returns ∂L/∂in.
func (n *Network) Backward(gradOut []float64) []float64 {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		gradOut = n.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// ZeroGrad clears accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.Layers {
		for i := range l.gw {
			l.gw[i] = 0
		}
		for i := range l.gb {
			l.gb[i] = 0
		}
	}
}

// Params returns the total parameter count.
func (n *Network) Params() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + len(l.B)
	}
	return total
}

// Adam is the optimizer state shared across the networks it steps.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	t       int
}

// NewAdam returns Adam with the usual defaults (β1 = 0.9, β2 = 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one update to every network from its accumulated gradients
// (scaled by 1/batchSize) and clears them.
func (a *Adam) Step(batchSize int, nets ...*Network) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	scale := 1.0
	if batchSize > 1 {
		scale = 1 / float64(batchSize)
	}
	for _, n := range nets {
		for _, l := range n.Layers {
			stepParams(a, l.W, l.gw, l.mw, l.vw, scale, bc1, bc2)
			stepParams(a, l.B, l.gb, l.mb, l.vb, scale, bc1, bc2)
		}
	}
}

func stepParams(a *Adam, w, g, m, v []float64, scale, bc1, bc2 float64) {
	for i := range w {
		gi := g[i] * scale
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
		mh := m[i] / bc1
		vh := v[i] / bc2
		w[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		g[i] = 0
	}
}

// MSE returns the mean squared error and writes ∂L/∂pred into grad (sized
// like pred) when non-nil.
func MSE(pred, target, grad []float64) (float64, error) {
	if len(pred) != len(target) {
		return 0, ErrShape
	}
	var loss float64
	n := float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		if grad != nil {
			grad[i] = 2 * d / n
		}
	}
	return loss / n, nil
}
