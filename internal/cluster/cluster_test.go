package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newTestCluster(t *testing.T, peers ...Node) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:      "self",
		Advertise: "http://self:8080",
		Peers:     peers,
		// One failed probe marks a peer down, so tests drive transitions
		// with single CheckPeers passes.
		HealthFailures: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Advertise: "http://x"}); err == nil {
		t.Error("New accepted an empty self id")
	}
	if _, err := New(Config{Self: "a"}); err == nil {
		t.Error("New accepted an empty advertise URL")
	}
	if _, err := New(Config{Self: "a", Advertise: "http://x", Peers: []Node{{ID: "a", URL: "http://y"}}}); err == nil {
		t.Error("New accepted self listed in peers")
	}
}

// TestHealthTransitions drives the probe loop against real listeners: a
// peer answering 503 stays routable (degraded, not dead), an unreachable
// peer goes down after HealthFailures probes, and recovery fires OnPeerUp.
func TestHealthTransitions(t *testing.T) {
	var status int = http.StatusOK
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		w.WriteHeader(status)
	}))
	defer srv.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // port is now unreachable

	var cameUp []string
	c, err := New(Config{
		Self:           "self",
		Advertise:      "http://self:8080",
		Peers:          []Node{{ID: "p1", URL: srv.URL}, {ID: "p2", URL: dead.URL}},
		HealthFailures: 2,
		OnPeerUp:       func(p Node) { cameUp = append(cameUp, p.ID) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Optimistic start: both peers count as alive before any probe.
	if !c.Alive("p1") || !c.Alive("p2") {
		t.Fatal("peers must start alive")
	}

	// First pass: p1 answers (firing the boot-time OnPeerUp), p2 fails once
	// — below the threshold, still alive.
	c.CheckPeers(ctx)
	if len(cameUp) != 1 || cameUp[0] != "p1" {
		t.Fatalf("OnPeerUp after first pass = %v, want [p1]", cameUp)
	}
	if !c.Alive("p2") {
		t.Fatal("p2 went down after one failure with HealthFailures=2")
	}
	c.CheckPeers(ctx)
	if c.Alive("p2") {
		t.Fatal("p2 still alive after two consecutive failures")
	}
	if got := c.DownPeers(); len(got) != 1 || got[0] != "p2" {
		t.Fatalf("DownPeers = %v, want [p2]", got)
	}

	// A degraded peer (503 /readyz) is reachable and must stay routable.
	status = http.StatusServiceUnavailable
	c.CheckPeers(ctx)
	if !c.Alive("p1") {
		t.Fatal("p1 went down on a 503 readyz; degraded peers still serve")
	}

	// Ownership routes around the down peer and self always answers.
	for i := 0; i < 200; i++ {
		n, ok := c.Owner("stream-" + string(rune('a'+i%26)))
		if !ok || n.ID == "p2" {
			t.Fatalf("Owner routed to down peer: %v %v", n, ok)
		}
	}

	// Status reflects the view.
	st := c.Status()
	if st.Self != "self" || len(st.Nodes) != 3 {
		t.Fatalf("Status = %+v", st)
	}
	for _, n := range st.Nodes {
		if n.ID == "p2" && (n.Alive || n.Error == "") {
			t.Errorf("down peer status = %+v", n)
		}
		if n.ID == "p1" && !n.Alive {
			t.Errorf("live peer status = %+v", n)
		}
	}
}

func TestMarkDownAndRecovery(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	var cameUp int
	c, err := New(Config{
		Self:      "self",
		Advertise: "http://self:8080",
		Peers:     []Node{{ID: "p1", URL: srv.URL}},
		OnPeerUp:  func(Node) { cameUp++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.CheckPeers(context.Background())
	if cameUp != 1 {
		t.Fatalf("boot OnPeerUp ran %d times, want 1", cameUp)
	}
	c.MarkDown("p1")
	if c.Alive("p1") {
		t.Fatal("MarkDown did not take")
	}
	if got := c.AlivePeers(); len(got) != 0 {
		t.Fatalf("AlivePeers = %v with p1 down", got)
	}
	// One successful probe brings it back and fires OnPeerUp again.
	c.CheckPeers(context.Background())
	if !c.Alive("p1") || cameUp != 2 {
		t.Fatalf("recovery: alive=%v cameUp=%d", c.Alive("p1"), cameUp)
	}
}
