package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"cad/internal/alert"
)

// maxScatterBody bounds one peer's scatter response. Shard-local reads are
// paged (limit ≤ 1000), so anything near this is a peer misbehaving, not a
// legitimate answer.
const maxScatterBody = 32 << 20

// PeerResponse is one peer's answer to a scatter-gather fan-out.
type PeerResponse struct {
	Peer   Node
	Status int
	Body   []byte
	Err    error
}

// OK reports whether the peer answered 200.
func (pr PeerResponse) OK() bool { return pr.Err == nil && pr.Status == http.StatusOK }

// ScatterGet fans a shard-local GET out to every live peer and collects the
// raw responses; the caller merges. pathAndQuery is the request target
// ("/v1/alarms?limit=1000"). Failed peers come back with Err set rather
// than being dropped, so callers can distinguish "no data" from "no
// answer" — a partial merge without that distinction would silently
// under-report alarms.
func (c *Cluster) ScatterGet(ctx context.Context, pathAndQuery string) []PeerResponse {
	peers := c.AlivePeers()
	out := make([]PeerResponse, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = c.localGet(ctx, p, pathAndQuery)
		}()
	}
	wg.Wait()
	return out
}

// localGet issues one shard-local GET against a peer.
func (c *Cluster) localGet(ctx context.Context, peer Node, pathAndQuery string) PeerResponse {
	pr := PeerResponse{Peer: peer}
	c.scattered(peer.ID).Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(peer.URL, "/")+pathAndQuery, nil)
	if err != nil {
		pr.Err = err
		c.scatterErrors(peer.ID).Inc()
		return pr
	}
	req.Header.Set(HeaderScope, ScopeLocal)
	resp, err := c.client.Do(req)
	if err != nil {
		pr.Err = err
		c.scatterErrors(peer.ID).Inc()
		return pr
	}
	defer resp.Body.Close()
	pr.Status = resp.StatusCode
	pr.Body, pr.Err = io.ReadAll(io.LimitReader(resp.Body, maxScatterBody))
	if pr.Err != nil {
		c.scatterErrors(peer.ID).Inc()
	}
	return pr
}

// StreamPeerEvents subscribes to one peer's shard-local SSE feed at
// pathAndQuery and decodes each frame's data field through the versioned
// envelope, delivering events to out until the feed ends or ctx is done.
// It returns the terminal error (nil on a clean EOF or context end).
//
// The subscription uses the cluster transport but no overall timeout — an
// event feed is meant to stay open indefinitely.
func (c *Cluster) StreamPeerEvents(ctx context.Context, peer Node, pathAndQuery string, out chan<- alert.Event) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(peer.URL, "/")+pathAndQuery, nil)
	if err != nil {
		return err
	}
	req.Header.Set(HeaderScope, ScopeLocal)
	req.Header.Set("Accept", "text/event-stream")
	stream := &http.Client{Transport: c.client.Transport}
	resp, err := stream.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s events: HTTP %d", peer.ID, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 {
				if ev, err := alert.DecodeEvent(data.Bytes()); err == nil {
					select {
					case out <- ev:
					case <-ctx.Done():
						return nil
					}
				}
				data.Reset()
			}
		case strings.HasPrefix(line, "data:"):
			// Per the SSE spec a multi-line data field concatenates with \n.
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event:/retry: fields and comments carry nothing the
			// envelope doesn't already.
		}
	}
	if ctx.Err() != nil {
		return nil
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return err
	}
	return nil
}
