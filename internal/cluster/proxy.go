package cluster

import (
	"net/http"
	"net/http/httputil"
	"net/url"
	"time"
)

// Cluster request headers.
const (
	// HeaderNode names the node that actually served a response, so clients
	// (and operators with curl) can see where a request landed.
	HeaderNode = "X-CAD-Node"
	// HeaderForwardedBy marks a request already forwarded once. The receiver
	// serves it locally even if its own ring view disagrees — trusting the
	// forwarder's placement is what makes routing single-hop: a request can
	// bounce at most once, never loop, even while two nodes briefly disagree
	// about membership.
	HeaderForwardedBy = "X-CAD-Forwarded-By"
	// HeaderScope set to ScopeLocal asks a node to answer a read from its
	// own shard only, suppressing scatter-gather recursion on fan-out
	// requests.
	HeaderScope = "X-CAD-Scope"
	// ScopeLocal is the HeaderScope value for shard-local reads.
	ScopeLocal = "local"
)

// Forwarded reports whether the request was already forwarded by a peer
// (and therefore must be served locally, never re-forwarded).
func Forwarded(r *http.Request) bool {
	return r.Header.Get(HeaderForwardedBy) != ""
}

// LocalScope reports whether the request asks for a shard-local answer.
func LocalScope(r *http.Request) bool {
	return r.Header.Get(HeaderScope) == ScopeLocal
}

// Forward proxies the request to peer, stamping HeaderForwardedBy with this
// node's id so the receiver serves it locally. onError writes the error
// response when the peer is unreachable (the caller owns the error envelope
// shape); the peer is also marked down so subsequent requests route around
// it without waiting for the health loop.
func (c *Cluster) Forward(w http.ResponseWriter, r *http.Request, peer Node, onError func(w http.ResponseWriter, r *http.Request, err error)) {
	target, err := url.Parse(peer.URL)
	if err != nil {
		onError(w, r, err)
		return
	}
	c.forwarded(peer.ID).Inc()
	proxy := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(target)
			pr.Out.Host = target.Host
			pr.Out.Header.Set(HeaderForwardedBy, c.self.ID)
		},
		// A negative FlushInterval flushes immediately after each write,
		// which keeps proxied SSE responses live.
		FlushInterval: -1 * time.Millisecond,
		Transport:     c.client.Transport,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			c.forwardErrors(peer.ID).Inc()
			c.MarkDown(peer.ID)
			onError(w, r, err)
		},
	}
	proxy.ServeHTTP(w, r)
}
