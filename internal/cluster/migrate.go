package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"
	"strings"

	"cad/internal/manager"
)

// HandoffPath is the peer-to-peer endpoint migration bundles POST to.
const HandoffPath = "/v1/cluster/handoff"

// StreamMover is the manager surface the rebalancer drives: enumerate the
// node's streams, export one as a migration bundle, drop it once a peer
// owns it.
type StreamMover interface {
	List() []manager.Info
	Export(id string) (manager.StreamExport, error)
	Delete(id string) error
}

// SendHandoff ships one migration bundle to a peer's handoff endpoint.
// The stream is NOT deleted locally — the caller does that only on
// success, so a failed send never loses state.
func (c *Cluster) SendHandoff(ctx context.Context, peer Node, exp manager.StreamExport) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&exp); err != nil {
		return fmt.Errorf("cluster: handoff %s: %w", exp.ID, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(peer.URL, "/")+HandoffPath, &buf)
	if err != nil {
		return fmt.Errorf("cluster: handoff %s: %w", exp.ID, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(HeaderNode, c.self.ID)
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: handoff %s to %s: %w", exp.ID, peer.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: handoff %s to %s: HTTP %d: %s",
			exp.ID, peer.ID, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	c.handoffsSent.Inc()
	return nil
}

// DecodeHandoff parses a handoff request body back into its bundle.
func DecodeHandoff(r io.Reader) (manager.StreamExport, error) {
	var exp manager.StreamExport
	if err := gob.NewDecoder(r).Decode(&exp); err != nil {
		return exp, fmt.Errorf("cluster: decode handoff: %w", err)
	}
	return exp, nil
}

// ImportHandoff applies a received bundle to the local manager and counts
// it. Returns how many WAL-tail records were replayed.
func (c *Cluster) ImportHandoff(mgr interface {
	Import(manager.StreamExport) (int, error)
}, exp manager.StreamExport) (int, error) {
	replayed, err := mgr.Import(exp)
	if err != nil {
		return 0, err
	}
	c.handoffsRecv.Inc()
	c.tailColumns.Add(uint64(replayed))
	return replayed, nil
}

// Rebalance pushes every local stream whose ring owner is another live
// node to that node via snapshot + WAL-tail handoff, deleting the local
// copy only after the peer acknowledged. Returns how many streams moved;
// the error (if any) is the first send failure, after attempting the
// rest. Run it when membership changes — a peer joining or recovering
// takes back the streams that hash to it.
func (c *Cluster) Rebalance(ctx context.Context, mgr StreamMover) (int, error) {
	return c.moveStreams(ctx, mgr, c.Alive)
}

// Drain hands every local stream — including the ones this node owns —
// to its owner among the LIVE PEERS, for graceful shutdown: after a clean
// drain the node holds no streams and can leave the membership without
// losing a column. With no live peer to receive them, streams stay local
// (their WAL still recovers them on restart) and Drain reports the error.
func (c *Cluster) Drain(ctx context.Context, mgr StreamMover) (int, error) {
	alive := func(id string) bool { return id != c.self.ID && c.Alive(id) }
	return c.moveStreams(ctx, mgr, alive)
}

// moveStreams exports and hands off every local stream whose owner under
// the alive predicate is a peer, deleting each local copy on acknowledged
// receipt.
func (c *Cluster) moveStreams(ctx context.Context, mgr StreamMover, alive func(id string) bool) (int, error) {
	moved := 0
	var firstErr error
	for _, info := range mgr.List() {
		owner, ok := c.ring.OwnerAmong(info.ID, alive)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: no live node to own %s", info.ID)
			}
			continue
		}
		if owner.ID == c.self.ID {
			continue
		}
		exp, err := mgr.Export(info.ID)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := c.SendHandoff(ctx, owner, exp); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := mgr.Delete(info.ID); err != nil && firstErr == nil {
			firstErr = err
		}
		moved++
		if c.logger != nil {
			c.logger.Info("cluster stream handed off",
				"stream", info.ID, "to", owner.ID, "tail", len(exp.Tail))
		}
	}
	return moved, firstErr
}
