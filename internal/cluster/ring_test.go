package cluster

import (
	"fmt"
	"testing"
)

func threeNodes() []Node {
	return []Node{
		{ID: "n1", URL: "http://h1:8080"},
		{ID: "n2", URL: "http://h2:8080"},
		{ID: "n3", URL: "http://h3:8080"},
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing accepted an empty membership")
	}
	if _, err := NewRing(0, Node{ID: ""}); err == nil {
		t.Error("NewRing accepted an empty node id")
	}
	if _, err := NewRing(0, Node{ID: "a"}, Node{ID: "a"}); err == nil {
		t.Error("NewRing accepted a duplicate node id")
	}
}

// TestRingPlacementDeterministic is the property the whole routing layer
// rests on: every node computes the same owner for every stream, whatever
// order its -peers flag lists the membership in.
func TestRingPlacementDeterministic(t *testing.T) {
	nodes := threeNodes()
	a, err := NewRing(0, nodes[0], nodes[1], nodes[2])
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(0, nodes[2], nodes[0], nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("stream-%d", i)
		if a.Owner(key).ID != b.Owner(key).ID {
			t.Fatalf("ring order changed placement of %q: %s vs %s",
				key, a.Owner(key).ID, b.Owner(key).ID)
		}
	}
}

// TestRingSpread checks virtual nodes keep the shard sizes sane: with 3
// members and the default vnode count, no node owns less than 15% or more
// than 55% of 3000 keys.
func TestRingSpread(t *testing.T) {
	r, err := NewRing(0, threeNodes()...)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("stream-%d", i)).ID]++
	}
	for id, c := range counts {
		if c < keys*15/100 || c > keys*55/100 {
			t.Errorf("node %s owns %d/%d keys", id, c, keys)
		}
	}
	if len(counts) != 3 {
		t.Errorf("only %d nodes own keys: %v", len(counts), counts)
	}
}

// TestOwnerAmongFailover pins the fallback rule: with the nominal owner
// down, ownership moves to the next distinct live node clockwise; keys
// owned by live nodes never move; with everyone down ok is false.
func TestOwnerAmongFailover(t *testing.T) {
	r, err := NewRing(0, threeNodes()...)
	if err != nil {
		t.Fatal(err)
	}
	up := func(down string) func(string) bool {
		return func(id string) bool { return id != down }
	}
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("stream-%d", i)
		nominal := r.Owner(key)
		after, ok := r.OwnerAmong(key, up("n2"))
		if !ok || after.ID == "n2" {
			t.Fatalf("OwnerAmong(%q) with n2 down = %v, %v", key, after, ok)
		}
		if nominal.ID != "n2" && after.ID != nominal.ID {
			t.Fatalf("%q moved from live owner %s to %s", key, nominal.ID, after.ID)
		}
		if nominal.ID == "n2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by n2; failover untested")
	}
	if _, ok := r.OwnerAmong("any", func(string) bool { return false }); ok {
		t.Error("OwnerAmong with no live node returned ok")
	}
}
