package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"cad/internal/obs"
)

// Config parameterizes a Cluster.
type Config struct {
	// Self is this node's id; Advertise the base URL peers reach it at.
	Self      string
	Advertise string
	// Peers are the other members (static membership: every node is
	// configured with the same set, minus itself).
	Peers []Node
	// VNodes is the virtual-node count per member (≤ 0 means DefaultVNodes).
	VNodes int
	// HealthInterval spaces the peer /readyz probes (≤ 0 means 2s).
	HealthInterval time.Duration
	// HealthFailures is how many consecutive failed probes mark a peer down
	// (≤ 0 means 3). One successful probe marks it up again.
	HealthFailures int
	// HealthTimeout bounds one probe (≤ 0 means 2s).
	HealthTimeout time.Duration
	// Client issues forwarded requests, scatter-gather fan-outs, and health
	// probes; nil means a private client with sane timeouts.
	Client *http.Client
	// Registry receives the cluster metrics; nil creates a private one.
	Registry *obs.Registry
	// Logger, when non-nil, gets membership-transition lines.
	Logger *slog.Logger
	// OnPeerUp, when non-nil, runs after a peer transitions down→up (also
	// once per peer that is up at the first health pass). cadserve hooks
	// rebalancing here: a joining or recovering peer should receive the
	// local streams it now owns.
	OnPeerUp func(peer Node)
}

// peerState tracks one peer's liveness.
type peerState struct {
	node     Node
	down     bool
	failures int
	probed   bool // at least one probe completed
	lastErr  string
}

// Cluster is one node's view of the membership: the ring, peer liveness,
// and the HTTP plumbing for forwarding and fan-out. Safe for concurrent use.
type Cluster struct {
	self   Node
	ring   *Ring
	client *http.Client
	reg    *obs.Registry
	logger *slog.Logger
	onUp   func(Node)

	interval time.Duration
	failures int
	timeout  time.Duration

	mu    sync.Mutex
	peers map[string]*peerState

	forwarded     func(peer string) *obs.Counter
	forwardErrors func(peer string) *obs.Counter
	scattered     func(peer string) *obs.Counter
	scatterErrors func(peer string) *obs.Counter
	peerUp        func(peer string) *obs.Gauge
	handoffsSent  *obs.Counter
	handoffsRecv  *obs.Counter
	tailColumns   *obs.Counter
}

// New builds this node's cluster view. Self must not appear in Peers.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: empty self node id")
	}
	if cfg.Advertise == "" {
		return nil, fmt.Errorf("cluster: node %s: empty advertise URL", cfg.Self)
	}
	if _, err := url.Parse(cfg.Advertise); err != nil {
		return nil, fmt.Errorf("cluster: advertise %q: %w", cfg.Advertise, err)
	}
	self := Node{ID: cfg.Self, URL: cfg.Advertise}
	members := append([]Node{self}, cfg.Peers...)
	ring, err := NewRing(cfg.VNodes, members...)
	if err != nil {
		return nil, err
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthFailures <= 0 {
		cfg.HealthFailures = 3
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	c := &Cluster{
		self:     self,
		ring:     ring,
		client:   cfg.Client,
		reg:      cfg.Registry,
		logger:   cfg.Logger,
		onUp:     cfg.OnPeerUp,
		interval: cfg.HealthInterval,
		failures: cfg.HealthFailures,
		timeout:  cfg.HealthTimeout,
		peers:    make(map[string]*peerState, len(cfg.Peers)),
	}
	for _, p := range cfg.Peers {
		// Peers start optimistically up: routing to a dead peer fails fast
		// and the health loop demotes it within a few probes, whereas
		// starting down would black-hole a healthy cluster until the first
		// full health pass.
		c.peers[p.ID] = &peerState{node: p}
	}
	reg := cfg.Registry
	c.forwarded = func(peer string) *obs.Counter {
		return reg.Counter("cad_cluster_forwarded_total",
			"Requests forwarded to their owning node, by peer.",
			obs.Label{Name: "peer", Value: peer})
	}
	c.forwardErrors = func(peer string) *obs.Counter {
		return reg.Counter("cad_cluster_forward_errors_total",
			"Forwarded requests that failed to reach their peer.",
			obs.Label{Name: "peer", Value: peer})
	}
	c.scattered = func(peer string) *obs.Counter {
		return reg.Counter("cad_cluster_scatter_requests_total",
			"Scatter-gather fan-out requests issued, by peer.",
			obs.Label{Name: "peer", Value: peer})
	}
	c.scatterErrors = func(peer string) *obs.Counter {
		return reg.Counter("cad_cluster_scatter_errors_total",
			"Scatter-gather fan-out requests that failed, by peer.",
			obs.Label{Name: "peer", Value: peer})
	}
	c.peerUp = func(peer string) *obs.Gauge {
		return reg.Gauge("cad_cluster_peer_up",
			"1 while the peer answers health probes, 0 while it is down.",
			obs.Label{Name: "peer", Value: peer})
	}
	c.handoffsSent = reg.Counter("cad_cluster_handoffs_sent_total",
		"Stream migration bundles handed off to a peer.")
	c.handoffsRecv = reg.Counter("cad_cluster_handoffs_received_total",
		"Stream migration bundles imported from a peer.")
	c.tailColumns = reg.Counter("cad_cluster_handoff_tail_columns_total",
		"WAL-tail columns replayed while importing migration bundles.")
	for _, p := range cfg.Peers {
		c.peerUp(p.ID).Set(1)
	}
	return c, nil
}

// Self returns this node's identity.
func (c *Cluster) Self() Node { return c.self }

// Ring returns the placement ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Registry returns the metrics registry the cluster reports into.
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// Alive reports whether the member is routable: self always is, a peer is
// until the health checker marks it down.
func (c *Cluster) Alive(id string) bool {
	if id == c.self.ID {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[id]
	return ok && !p.down
}

// Owner returns the live owner of the stream (ownership falls clockwise
// past down members). ok is false only when every member is down — which
// cannot happen while this node answers, since self is always alive.
func (c *Cluster) Owner(stream string) (Node, bool) {
	return c.ring.OwnerAmong(stream, c.Alive)
}

// IsLocal reports whether this node owns the stream right now.
func (c *Cluster) IsLocal(stream string) bool {
	n, ok := c.Owner(stream)
	return ok && n.ID == c.self.ID
}

// AlivePeers returns the peers currently routable, sorted by id.
func (c *Cluster) AlivePeers() []Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Node, 0, len(c.peers))
	for _, p := range c.peers {
		if !p.down {
			out = append(out, p.node)
		}
	}
	sortNodes(out)
	return out
}

func sortNodes(nodes []Node) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].ID < nodes[j-1].ID; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// MarkDown demotes a peer immediately (e.g. after a failed forward), without
// waiting for the health loop to notice. The next successful probe brings it
// back.
func (c *Cluster) MarkDown(id string) {
	c.mu.Lock()
	p, ok := c.peers[id]
	if ok && !p.down {
		p.down = true
		p.failures = c.failures
		p.lastErr = "marked down after a failed request"
	}
	c.mu.Unlock()
	if ok {
		c.peerUp(id).Set(0)
	}
}

// Start runs the health loop until ctx is done: every HealthInterval each
// peer's /readyz is probed, HealthFailures consecutive failures mark it
// down, one success marks it up (firing OnPeerUp on the transition).
func (c *Cluster) Start(ctx context.Context) {
	go func() {
		tick := time.NewTicker(c.interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				c.CheckPeers(ctx)
			}
		}
	}()
}

// CheckPeers runs one synchronous health pass over every peer. Exposed so
// tests (and boot) can force a deterministic membership view.
func (c *Cluster) CheckPeers(ctx context.Context) {
	c.mu.Lock()
	peers := make([]Node, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p.node)
	}
	c.mu.Unlock()
	for _, p := range peers {
		c.probe(ctx, p)
	}
}

// probe health-checks one peer and applies the up/down transition rules.
// A 503 /readyz still proves the process is reachable — a degraded peer
// keeps serving its streams from memory, so it stays routable; only a
// transport-level failure (no answer at all) counts toward down.
func (c *Cluster) probe(ctx context.Context, peer Node) {
	pctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, strings.TrimSuffix(peer.URL, "/")+"/readyz", nil)
	if err == nil {
		var resp *http.Response
		resp, err = c.client.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
	c.mu.Lock()
	p, ok := c.peers[peer.ID]
	if !ok {
		c.mu.Unlock()
		return
	}
	var cameUp bool
	if err != nil {
		p.lastErr = err.Error()
		if p.failures < c.failures {
			p.failures++
		}
		if !p.down && p.failures >= c.failures {
			p.down = true
			if c.logger != nil {
				c.logger.Warn("cluster peer down", "peer", peer.ID, "err", err)
			}
		}
	} else {
		p.lastErr = ""
		p.failures = 0
		// The first successful probe also fires OnPeerUp so boot-time
		// rebalancing runs once the peer is provably reachable.
		cameUp = p.down || !p.probed
		if p.down && c.logger != nil {
			c.logger.Info("cluster peer up", "peer", peer.ID)
		}
		p.down = false
	}
	p.probed = true
	down := p.down
	c.mu.Unlock()
	if down {
		c.peerUp(peer.ID).Set(0)
	} else {
		c.peerUp(peer.ID).Set(1)
	}
	if cameUp && c.onUp != nil {
		c.onUp(peer)
	}
}

// PeerStatus is one member's entry in the /v1/cluster payload.
type PeerStatus struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Self  bool   `json:"self,omitempty"`
	Alive bool   `json:"alive"`
	// Error is the last probe failure while the peer is down.
	Error string `json:"error,omitempty"`
}

// Status is the GET /v1/cluster payload: this node's view of the membership
// and placement parameters.
type Status struct {
	Self   string       `json:"self"`
	VNodes int          `json:"vnodes"`
	Nodes  []PeerStatus `json:"nodes"`
}

// Status returns this node's membership view.
func (c *Cluster) Status() Status {
	st := Status{Self: c.self.ID, VNodes: c.ring.vnodes}
	c.mu.Lock()
	for _, n := range c.ring.Nodes() {
		ps := PeerStatus{ID: n.ID, URL: n.URL, Alive: true, Self: n.ID == c.self.ID}
		if p, ok := c.peers[n.ID]; ok {
			ps.Alive = !p.down
			if p.down {
				ps.Error = p.lastErr
			}
		}
		st.Nodes = append(st.Nodes, ps)
	}
	c.mu.Unlock()
	return st
}

// DownPeers returns the ids of peers currently marked down, sorted.
func (c *Cluster) DownPeers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for id, p := range c.peers {
		if p.down {
			out = append(out, id)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
