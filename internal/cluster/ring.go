// Package cluster is the horizontal scale-out layer of cadserve: a static
// cluster of nodes shards the stream fleet by consistent hashing, any node
// accepts /v1 traffic and transparently forwards writes to the stream's
// owner, reads scatter-gather across the membership, and streams move
// between nodes as snapshot + WAL-tail bundles — the same migration
// primitive the crash-recovery layer already proves bit-identical.
//
// The paper's early-detection premise only pays off when correlation
// analysis runs over many metric streams at once; one process with
// per-stream locks is a hard ceiling. The cluster layer raises it without
// giving up any single-node guarantee: each stream still lives entirely on
// one node (its detector state never splits), so every alarm, anomaly, and
// replay property of the single-node pipeline holds verbatim — the ring
// only decides which node that is.
//
// Membership is static (the -peers flag), with liveness layered on top:
// every node health-checks its peers' /readyz and routes around nodes that
// stop answering. Ownership is decided by a consistent-hash ring with
// virtual nodes, so stream placement is stable under membership churn —
// adding or losing one node only moves the streams that hash to it.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Node identifies one cluster member: a short stable id (same syntax as a
// stream id) and the base URL peers reach it at.
type Node struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// point is one virtual node on the ring: a hash position claimed by a node.
type point struct {
	hash uint64
	id   string
}

// Ring is a consistent-hash ring with virtual nodes. Placement depends only
// on the member ids and the virtual-node count — never on insertion order —
// so every node of a cluster computes the same owner for every stream.
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	vnodes int
	nodes  map[string]Node
	points []point // sorted by hash
}

// DefaultVNodes spreads each node across this many ring positions. 64
// virtual nodes keep the per-node share within a few percent of uniform for
// small clusters while the ring stays tiny (3 nodes → 192 points).
const DefaultVNodes = 64

// NewRing builds a ring over the given members. vnodes ≤ 0 means
// DefaultVNodes. Duplicate ids are an error — two nodes claiming the same
// ring positions would disagree about ownership forever.
func NewRing(vnodes int, nodes ...Node) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	r := &Ring{
		vnodes: vnodes,
		nodes:  make(map[string]Node, len(nodes)),
		points: make([]point, 0, vnodes*len(nodes)),
	}
	for _, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node with empty id")
		}
		if _, dup := r.nodes[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		r.nodes[n.ID] = n
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(n.ID, v), id: n.ID})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by id so placement stays
		// deterministic across nodes.
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// pointHash positions one virtual node: FNV-1a over "id#v", then a strong
// finalizer. FNV is not cryptographic, but placement only needs uniformity
// and cross-node determinism, and the stdlib implementation is
// allocation-free here.
func pointHash(id string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(v)))
	return mix64(h.Sum64())
}

// keyHash positions a stream id on the ring.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is murmur3's 64-bit finalizer. Raw FNV-1a hashes of short ids with
// shared prefixes ("stream-1", "stream-2", …) land in narrow bands — the
// per-byte mixing barely diffuses into the high bits that order the ring —
// which skews shard sizes badly. Full avalanche restores a near-uniform
// spread.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Nodes returns the membership sorted by id.
func (r *Ring) Nodes() []Node {
	out := make([]Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Node returns the member with the given id.
func (r *Ring) Node(id string) (Node, bool) {
	n, ok := r.nodes[id]
	return n, ok
}

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the stream's owner: the first virtual node at or after the
// stream's hash, walking the ring clockwise.
func (r *Ring) Owner(stream string) Node {
	n, _ := r.OwnerAmong(stream, nil)
	return n
}

// OwnerAmong returns the stream's owner among the members alive reports
// healthy (nil means everyone). When the nominal owner is down, ownership
// falls to the next distinct live node clockwise — the same rule every
// healthy peer computes, so the cluster agrees on the fallback without
// coordination. ok is false when no member is alive.
func (r *Ring) OwnerAmong(stream string, alive func(id string) bool) (Node, bool) {
	h := keyHash(stream)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		if alive == nil || alive(p.id) {
			return r.nodes[p.id], true
		}
		if len(seen) == len(r.nodes) {
			break
		}
	}
	return Node{}, false
}
