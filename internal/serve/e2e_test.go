package serve

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cad/internal/alert"
	"cad/internal/obs"
)

// webhookRecorder is the e2e receiving end: it captures every delivery
// (body plus signature headers) and can be "killed" mid-run by flipping
// failing, after which it answers 500 until revived.
type webhookRecorder struct {
	failing atomic.Bool

	mu       sync.Mutex
	requests []webhookRequest
}

type webhookRequest struct {
	body      []byte
	signature string
	eventType string
}

func (r *webhookRecorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r.failing.Load() {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	body, err := io.ReadAll(req.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	r.requests = append(r.requests, webhookRequest{
		body:      body,
		signature: req.Header.Get(alert.SignatureHeader),
		eventType: req.Header.Get(alert.EventHeader),
	})
	r.mu.Unlock()
}

func (r *webhookRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.requests)
}

func (r *webhookRecorder) snapshot() []webhookRequest {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]webhookRequest, len(r.requests))
	copy(out, r.requests)
	return out
}

// fastSinkConfig keeps retries and breaker cooldowns in the millisecond
// range so dead-lettering happens within test time.
func fastSinkConfig() alert.SinkConfig {
	return alert.SinkConfig{
		Retry:   alert.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Jitter: -1},
		Breaker: alert.BreakerPolicy{Threshold: 3, Cooldown: time.Millisecond},
	}
}

// TestAlertDeliveryEndToEnd walks the full acceptance path: a simulated
// sensor fault must reach both a webhook (with a verifiable HMAC
// signature) and a live SSE subscriber while the anomaly is still open;
// killing the webhook mid-run dead-letters the remaining events; and a
// restarted delivery pipeline drains the DLQ exactly once.
func TestAlertDeliveryEndToEnd(t *testing.T) {
	secret := []byte("e2e-secret")
	hook := &webhookRecorder{}
	whSrv := httptest.NewServer(hook)
	defer whSrv.Close()

	dlqDir := t.TempDir()
	svc, bus := newAlertService(t, alert.Options{DLQDir: dlqDir})
	sink, err := alert.NewWebhookSink(whSrv.URL, secret, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.AddSink("hook", sink, fastSinkConfig()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	// Closing the bus ends the SSE handler; it must happen before ts.Close,
	// which waits for in-flight requests. Idempotent with the mid-test
	// Close below.
	defer bus.Close()
	sse := dialSSE(t, ts.URL+"/v1/streams/default/events")

	// Drive the simulator: sensors 0 and 1 decouple from tick 200 until
	// tick 340, long enough that plenty of alarms land after the webhook
	// dies at the open transition.
	rng := rand.New(rand.NewSource(7))
	ingest := func(tick int) {
		t.Helper()
		broken := tick >= 200 && tick < 340
		rec := postJSON(t, svc.Handler(), "/ingest", IngestRequest{Readings: column(rng, tick, broken)})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d: %d: %s", tick, rec.Code, rec.Body)
		}
	}

	// A direct bus subscription is synchronous with Publish, so draining it
	// after each tick gives exact ground truth on what the detector has
	// announced. Ingestion stops the moment an anomaly opens — the closing
	// round is never ingested, so the anomaly is genuinely still open while
	// the push channels are checked.
	truth := bus.Subscribe("default", 8192)
	defer truth.Close()
	var published []alert.Event
	drainTruth := func() {
		for {
			select {
			case ev := <-truth.C:
				published = append(published, ev)
			default:
				return
			}
		}
	}
	var opened alert.Event
	tick := 0
	for ; tick < 340; tick++ {
		ingest(tick)
		drainTruth()
		for _, ev := range published {
			if ev.Type == alert.TypeAnomalyOpened {
				opened = ev
			}
		}
		if opened.AnomalyID != 0 {
			break
		}
	}
	if opened.AnomalyID == 0 {
		t.Fatal("no anomaly opened during the fault window")
	}
	for _, ev := range published {
		if ev.Type == alert.TypeAnomalyClosed && ev.AnomalyID == opened.AnomalyID {
			t.Fatal("anomaly closed before ingestion paused")
		}
	}
	// The early-detection point: the SSE subscriber hears about the
	// anomaly while it is still open.
	waitFor(t, "anomaly_opened on the SSE feed", func() bool {
		ev, ok := sse.find(alert.TypeAnomalyOpened)
		return ok && ev.AnomalyID == opened.AnomalyID
	})

	// The webhook got the same alert, signed.
	waitFor(t, "webhook delivery", func() bool { return hook.count() > 0 })
	for i, req := range hook.snapshot() {
		if want := alert.Sign(secret, req.body); req.signature != want {
			t.Fatalf("webhook request %d: signature %q, want %q", i, req.signature, want)
		}
		ev, err := alert.DecodeEvent(req.body)
		if err != nil {
			t.Fatalf("webhook request %d: bad body %s: %v", i, req.body, err)
		}
		if ev.Stream != "default" || string(ev.Type) != req.eventType {
			t.Fatalf("webhook request %d: payload %+v vs %s header %q", i, ev, alert.EventHeader, req.eventType)
		}
	}

	// Kill the webhook mid-anomaly: everything from here on must
	// dead-letter instead of vanishing.
	hook.failing.Store(true)
	for tick++; tick < 400; tick++ {
		ingest(tick)
	}
	waitFor(t, "SSE anomaly_closed", func() bool {
		ev, ok := sse.find(alert.TypeAnomalyClosed)
		return ok && ev.AnomalyID == opened.AnomalyID
	})
	waitFor(t, "dead letters on disk", func() bool { return bus.DLQLen() > 0 })
	if err := bus.Close(); err != nil { // final-attempt drain still fails; more dead letters
		t.Fatal(err)
	}

	// Restart delivery: a fresh bus over the same DLQ directory, webhook
	// healthy again. The backlog drains exactly once.
	hook.failing.Store(false)
	before := hook.count()
	reg2 := obs.NewRegistry()
	bus2, err := alert.NewBus(alert.Options{Registry: reg2, DLQDir: dlqDir})
	if err != nil {
		t.Fatal(err)
	}
	defer bus2.Close()
	sink2, err := alert.NewWebhookSink(whSrv.URL, secret, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus2.AddSink("hook", sink2, fastSinkConfig()); err != nil {
		t.Fatal(err)
	}
	n, err := bus2.DrainDLQ()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("DrainDLQ re-enqueued nothing")
	}
	delivered := reg2.Counter("cad_alerts_delivered_total", "", obs.Label{Name: "sink", Value: "hook"})
	waitFor(t, "DLQ backlog redelivered", func() bool { return delivered.Value() == uint64(n) })
	if got := hook.count() - before; got != n {
		t.Fatalf("webhook saw %d redeliveries for %d drained records", got, n)
	}
	if again, err := bus2.DrainDLQ(); err != nil || again != 0 {
		t.Fatalf("second drain = (%d, %v), want (0, nil): backlog must drain exactly once", again, err)
	}
	if bus2.DLQLen() != 0 {
		t.Fatalf("%d dead letters left after a clean drain", bus2.DLQLen())
	}
}
