package serve

// Scenario-driven serve e2e: one ground-truthed corpus scenario is replayed
// through the /v1 NDJSON ingest path and the anomaly_opened push event must
// land inside the DaE window of the scenario's expected onset — the "stitch
// in time" acceptance path, asserted against a named failure mode instead
// of an ad-hoc random fault.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cad/internal/alert"
	"cad/internal/eval"
	"cad/internal/manager"
	"cad/internal/obs"
	"cad/internal/scenario"
)

func TestScenarioReplayEndToEnd(t *testing.T) {
	// partial-sensor-dropout detects with zero false alarms under the
	// matrix base config (see BENCH_scenarios.json), so the assertions can
	// be strict: no anomaly may open before the fault, and the first one
	// must open inside it.
	s, ok := scenario.ByName("partial-sensor-dropout")
	if !ok {
		t.Fatal("partial-sensor-dropout missing from corpus")
	}
	inst, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	bus, err := alert.NewBus(alert.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	mgr := manager.New(manager.Options{
		Capacity:  4,
		MaxAlarms: 64,
		Registry:  reg,
		Alerts:    bus,
	})
	svc := NewWithOptions(testDetector(t), Options{Manager: mgr, Alerts: bus})
	h := svc.Handler()
	ts := httptest.NewServer(h)
	defer ts.Close()
	// Closing the bus ends the SSE handler; it must happen before ts.Close,
	// which waits for in-flight requests — hence registered after it.
	defer bus.Close()

	cfg := scenario.BaseConfig()
	rec := postJSON(t, h, "/v1/streams", CreateStreamRequest{ID: "scn", Sensors: s.Sensors, Config: &cfg})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create stream = %d: %s", rec.Code, rec.Body)
	}
	sse := dialSSE(t, ts.URL+"/v1/streams/scn/events")

	// A synchronous bus subscription is the ground truth on what was
	// pushed; the SSE feed is checked against it at the end.
	truth := bus.Subscribe("scn", 8192)
	defer truth.Close()

	var pushed []alert.Event
	drain := func() {
		for {
			select {
			case ev := <-truth.C:
				pushed = append(pushed, ev)
			default:
				return
			}
		}
	}

	// Replay the full scenario as NDJSON batches of 100 columns.
	col := make([]float64, s.Sensors)
	for at := 0; at < inst.Series.Len(); at += 100 {
		end := at + 100
		if end > inst.Series.Len() {
			end = inst.Series.Len()
		}
		var body strings.Builder
		for p := at; p < end; p++ {
			inst.Series.Column(p, col)
			buf, err := json.Marshal(IngestRequest{Readings: col})
			if err != nil {
				t.Fatal(err)
			}
			body.Write(buf)
			body.WriteByte('\n')
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/streams/scn/ingest", strings.NewReader(body.String()))
		recB := httptest.NewRecorder()
		h.ServeHTTP(recB, req)
		if recB.Code != http.StatusOK {
			t.Fatalf("batch at %d = %d: %s", at, recB.Code, recB.Body)
		}
		var resp BatchIngestResponse
		if err := json.Unmarshal(recB.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Accepted != end-at {
			t.Fatalf("batch at %d accepted %d columns, want %d", at, resp.Accepted, end-at)
		}
		drain()
	}
	drain()

	var opened []alert.Event
	for _, ev := range pushed {
		if ev.Type == alert.TypeAnomalyOpened {
			opened = append(opened, ev)
		}
	}
	if len(opened) == 0 {
		t.Fatal("scenario replay pushed no anomaly_opened event")
	}

	// DaE timing: the first opened anomaly must land inside the fault span
	// (never before the onset — this scenario has a zero false-alarm rate —
	// and no later than one window past its end).
	seg := eval.Segment{Start: s.Onset(), End: s.Injections[0].End}
	first := opened[0]
	if first.Tick < s.Onset() {
		t.Fatalf("anomaly opened at tick %d, before the onset %d", first.Tick, s.Onset())
	}
	if !eval.OnsetHit(seg, first.Tick, cfg.Window.W) {
		t.Fatalf("anomaly opened at tick %d, outside the DaE window of [%d,%d)", first.Tick, seg.Start, seg.End)
	}

	// Localization: the opening alarm names the injected sensors.
	affected := make(map[int]bool)
	for _, v := range s.AffectedSensors() {
		affected[v] = true
	}
	hit := false
	for _, v := range first.Sensors {
		hit = hit || affected[v]
	}
	if !hit {
		t.Fatalf("opened event sensors %v miss the injected set %v", first.Sensors, s.AffectedSensors())
	}

	// The live SSE subscriber hears the same opening, same tick.
	waitFor(t, "anomaly_opened on the SSE feed", func() bool {
		ev, ok := sse.find(alert.TypeAnomalyOpened)
		return ok && ev.AnomalyID == first.AnomalyID && ev.Tick == first.Tick
	})

	// The fault ends inside the series, so the anomaly also closes, and the
	// closed record's span must overlap the injected one.
	var closed alert.Event
	for _, ev := range pushed {
		if ev.Type == alert.TypeAnomalyClosed && ev.AnomalyID == first.AnomalyID {
			closed = ev
		}
	}
	if closed.AnomalyID == 0 {
		t.Fatal("anomaly never closed after the fault ended")
	}
	if closed.End <= seg.Start || closed.Start >= seg.End+cfg.Window.W {
		t.Fatalf("closed anomaly spans [%d,%d), fault is [%d,%d)", closed.Start, closed.End, seg.Start, seg.End)
	}
}
