package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"cad/internal/core"
	"cad/internal/manager"
)

// Stable machine-readable error codes. Clients dispatch on Code; Message is
// human-oriented and may change between releases.
const (
	// CodeBadJSON reports an undecodable request body.
	CodeBadJSON = "bad_json"
	// CodeBadReadings reports a column the detector cannot accept:
	// non-finite readings or wrong arity.
	CodeBadReadings = "bad_readings"
	// CodeBadCSV reports an unparseable CSV upload.
	CodeBadCSV = "bad_csv"
	// CodeBadConfig reports an invalid detector configuration.
	CodeBadConfig = "bad_config"
	// CodeBadQuery reports an invalid query parameter (e.g. ?limit=).
	CodeBadQuery = "bad_query"
	// CodeBadStreamID reports a syntactically invalid stream id.
	CodeBadStreamID = "bad_stream_id"
	// CodeBadSink reports an invalid sink definition (unknown type, bad
	// URL, missing path, bad policy).
	CodeBadSink = "bad_sink"
	// CodeSinkExists reports a sink registration against a taken name.
	CodeSinkExists = "sink_exists"
	// CodeSinkNotFound reports an unknown sink name.
	CodeSinkNotFound = "sink_not_found"
	// CodeBatchTooLarge reports an NDJSON ingest batch over the column cap.
	CodeBatchTooLarge = "batch_too_large"
	// CodeStreamNotFound reports an unknown stream id.
	CodeStreamNotFound = "stream_not_found"
	// CodeIncidentNotFound reports an unknown incident id.
	CodeIncidentNotFound = "incident_not_found"
	// CodeStreamExists reports a create against an existing stream id.
	CodeStreamExists = "stream_exists"
	// CodeCapacityExhausted reports a full stream registry with nothing
	// evictable.
	CodeCapacityExhausted = "capacity_exhausted"
	// CodeClusterUnavailable reports that a stream's owning node cannot be
	// reached (or no live node owns it); retry after the cluster heals.
	CodeClusterUnavailable = "cluster_unavailable"
	// CodeBadHandoff reports an undecodable stream-migration bundle.
	CodeBadHandoff = "bad_handoff"
	// CodeMethodNotAllowed reports an unsupported HTTP method.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound reports an unknown route.
	CodeNotFound = "not_found"
	// CodeInternal reports an unexpected server-side failure.
	CodeInternal = "internal"
)

// ErrorInfo is the error payload inside the envelope.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the structured error envelope every non-2xx response
// carries: {"error": {"code": "...", "message": "..."}}.
type ErrorResponse struct {
	Error ErrorInfo `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the structured error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: ErrorInfo{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeStreamError maps manager- and core-layer errors onto the envelope
// with their stable codes.
func writeStreamError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, manager.ErrNotFound):
		writeError(w, http.StatusNotFound, CodeStreamNotFound, "%v", err)
	case errors.Is(err, manager.ErrExists):
		writeError(w, http.StatusConflict, CodeStreamExists, "%v", err)
	case errors.Is(err, manager.ErrCapacity):
		writeError(w, http.StatusServiceUnavailable, CodeCapacityExhausted, "%v", err)
	case errors.Is(err, manager.ErrBadID):
		writeError(w, http.StatusBadRequest, CodeBadStreamID, "%v", err)
	case errors.Is(err, manager.ErrBadColumn):
		writeError(w, http.StatusBadRequest, CodeBadReadings, "%v", err)
	case errors.Is(err, core.ErrBadConfig):
		writeError(w, http.StatusBadRequest, CodeBadConfig, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
	}
}
