package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cad/internal/core"
	"cad/internal/mts"
)

func testDetector(t *testing.T) *core.Detector {
	t.Helper()
	cfg := core.Config{
		Window: mts.Windowing{W: 30, S: 3}, K: 3, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8, RCMode: core.RCSliding, RCHorizon: 5,
	}
	det, err := core.NewDetector(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// column simulates one reading: two sensor banks; sensors 0,1 decouple when
// broken.
func column(rng *rand.Rand, tick int, broken bool) []float64 {
	col := make([]float64, 8)
	a := math.Sin(2 * math.Pi * float64(tick) / 20)
	b := math.Cos(2 * math.Pi * float64(tick) / 33)
	for i := range col {
		latent := a
		if i >= 4 {
			latent = b
		}
		col[i] = latent*(1+0.2*float64(i%4)) + 0.04*rng.NormFloat64()
	}
	if broken {
		col[0] = rng.NormFloat64()
		col[1] = rng.NormFloat64()
	}
	return col
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// wantEnvelope asserts a non-2xx response carries the structured error
// envelope with the given code.
func wantEnvelope(t *testing.T, rec *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if rec.Code != status {
		t.Errorf("status = %d, want %d: %s", rec.Code, status, rec.Body)
	}
	var resp ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("non-envelope error body: %v: %s", err, rec.Body)
	}
	if resp.Error.Code != code {
		t.Errorf("error code = %q, want %q (message %q)", resp.Error.Code, code, resp.Error.Message)
	}
	if resp.Error.Message == "" {
		t.Error("error envelope without a message")
	}
}

func TestIngestStatusAlarms(t *testing.T) {
	det := testDetector(t)
	svc := New(det, 10)
	h := svc.Handler()
	rng := rand.New(rand.NewSource(1))

	rounds := 0
	for tick := 0; tick < 600; tick++ {
		rec := postJSON(t, h, "/ingest", IngestRequest{Readings: column(rng, tick, tick >= 300 && tick < 450)})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d: status %d: %s", tick, rec.Code, rec.Body)
		}
		var resp IngestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Tick != tick+1 {
			t.Fatalf("tick mismatch: %d vs %d", resp.Tick, tick+1)
		}
		if resp.RoundCompleted {
			rounds++
		}
	}
	if rounds == 0 {
		t.Fatal("no rounds completed")
	}

	// Status reflects the ingestion.
	req := httptest.NewRequest(http.MethodGet, "/status", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 600 || st.Rounds != rounds || st.Sensors != 8 {
		t.Errorf("status = %+v", st)
	}
	if st.Alarms == 0 {
		t.Error("expected at least one alarm from the injected fault")
	}

	// Alarms endpoint returns them, bounded by limit.
	req = httptest.NewRequest(http.MethodGet, "/alarms?limit=2", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var alarms []Alarm
	if err := json.Unmarshal(rec.Body.Bytes(), &alarms); err != nil {
		t.Fatal(err)
	}
	if len(alarms) == 0 || len(alarms) > 2 {
		t.Errorf("alarms = %v", alarms)
	}
	for _, a := range alarms {
		if a.Tick < 300 {
			t.Errorf("alarm before the fault at tick %d", a.Tick)
		}
	}
}

func TestIngestErrors(t *testing.T) {
	svc := New(testDetector(t), 0)
	h := svc.Handler()
	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/ingest", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	// Bad JSON.
	req = httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader("{"))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusBadRequest, CodeBadJSON)
	// Wrong column width.
	rec = postJSON(t, h, "/ingest", IngestRequest{Readings: []float64{1, 2}})
	wantEnvelope(t, rec, http.StatusBadRequest, CodeBadReadings)
}

func TestStatusAndAlarmsMethodErrors(t *testing.T) {
	svc := New(testDetector(t), 0)
	h := svc.Handler()
	for _, path := range []string{"/status", "/alarms"} {
		req := httptest.NewRequest(http.MethodPost, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		wantEnvelope(t, rec, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	}
	// Bad ?limit= and ?offset= values must be rejected, not silently
	// defaulted.
	for _, query := range []string{"limit=zero", "limit=-1", "limit=0", "limit=1.5", "offset=-2", "offset=x"} {
		req := httptest.NewRequest(http.MethodGet, "/alarms?"+query, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		wantEnvelope(t, rec, http.StatusBadRequest, CodeBadQuery)
	}
}

func TestBatchDetect(t *testing.T) {
	svc := New(testDetector(t), 0)
	h := svc.Handler()

	// Build a CSV with a correlation break.
	rng := rand.New(rand.NewSource(3))
	series := mts.Zeros(8, 500)
	for tick := 0; tick < 500; tick++ {
		col := column(rng, tick, tick >= 250 && tick < 350)
		for i, v := range col {
			series.Set(i, tick, v)
		}
	}
	var buf bytes.Buffer
	if err := series.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/detect", &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("detect = %d: %s", rec.Code, rec.Body)
	}
	var resp DetectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Rounds == 0 {
		t.Error("no rounds processed")
	}
	// Batch detection must not disturb streaming state.
	reqSt := httptest.NewRequest(http.MethodGet, "/status", nil)
	recSt := httptest.NewRecorder()
	h.ServeHTTP(recSt, reqSt)
	var st Status
	if err := json.Unmarshal(recSt.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 0 {
		t.Errorf("batch detect advanced streaming ticks: %d", st.Ticks)
	}
}

func TestBatchDetectErrors(t *testing.T) {
	svc := New(testDetector(t), 0)
	h := svc.Handler()
	req := httptest.NewRequest(http.MethodGet, "/detect", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	req = httptest.NewRequest(http.MethodPost, "/detect", strings.NewReader("not,a\nvalid,csv,extra\n"))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusBadRequest, CodeBadCSV)
	// Valid CSV but too few sensors for the configured K.
	req = httptest.NewRequest(http.MethodPost, "/detect", strings.NewReader("a,b\n1,2\n3,4\n"))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusBadRequest, CodeBadConfig)
}

// TestAlarmPagination drives a faulty stream and pages through its alarms
// with ?limit= and ?offset=: the pages must tile the full chronological
// list without overlap or gaps.
func TestAlarmPagination(t *testing.T) {
	det := testDetector(t)
	svc := New(det, 64)
	h := svc.Handler()
	rng := rand.New(rand.NewSource(7))
	for tick := 0; tick < 900; tick++ {
		// Repeated fault bursts: each on/off transition restructures the
		// correlation communities and fires alarms.
		broken := tick >= 200 && (tick/75)%2 == 0
		rec := postJSON(t, h, "/ingest", IngestRequest{Readings: column(rng, tick, broken)})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d: %d: %s", tick, rec.Code, rec.Body)
		}
	}
	fetch := func(query string) []Alarm {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/alarms?"+query, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /alarms?%s = %d: %s", query, rec.Code, rec.Body)
		}
		var alarms []Alarm
		if err := json.Unmarshal(rec.Body.Bytes(), &alarms); err != nil {
			t.Fatal(err)
		}
		return alarms
	}
	all := fetch("limit=64")
	if len(all) < 4 {
		t.Fatalf("want at least 4 alarms from a 300-tick fault, got %d", len(all))
	}
	// limit over the ring size is capped, not an error.
	if got := fetch("limit=100000"); len(got) != len(all) {
		t.Errorf("oversized limit returned %d alarms, want %d", len(got), len(all))
	}
	// Page backwards two at a time and reassemble the full list.
	var pages []Alarm
	for offset := 0; offset < len(all); offset += 2 {
		page := fetch(fmt.Sprintf("limit=2&offset=%d", offset))
		pages = append(page, pages...)
	}
	if len(pages) != len(all) {
		t.Fatalf("pages reassemble to %d alarms, want %d", len(pages), len(all))
	}
	for i := range all {
		if pages[i].Round != all[i].Round {
			t.Fatalf("page alarm %d has round %d, want %d", i, pages[i].Round, all[i].Round)
		}
	}
	// Offset past the end is an empty page, not an error.
	if got := fetch(fmt.Sprintf("limit=2&offset=%d", len(all)+5)); len(got) != 0 {
		t.Errorf("offset past the end returned %d alarms", len(got))
	}
}

func TestDefaultMaxAlarms(t *testing.T) {
	svc := New(testDetector(t), 0)
	if got := svc.Manager().MaxAlarms(); got != 256 {
		t.Errorf("default maxAlarm = %d", got)
	}
}

// Ensure the JSON shapes stay stable (a downstream contract).
func TestJSONShapes(t *testing.T) {
	a := Alarm{Round: 1, Tick: 2, Variations: 3, Score: 4.5, Sensors: []int{0}}
	buf, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"round", "tick", "variations", "score", "sensors", "time"} {
		if !bytes.Contains(buf, []byte(fmt.Sprintf("%q", key))) {
			t.Errorf("alarm JSON missing %q: %s", key, buf)
		}
	}
}

func TestAnomaliesEndpoint(t *testing.T) {
	det := testDetector(t)
	svc := New(det, 10)
	h := svc.Handler()
	rng := rand.New(rand.NewSource(5))
	// Fault in the middle, recovery after — the tracker should close at
	// least one anomaly by the end.
	for tick := 0; tick < 700; tick++ {
		rec := postJSON(t, h, "/ingest", IngestRequest{Readings: column(rng, tick, tick >= 300 && tick < 450)})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d: %d", tick, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/anomalies", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("anomalies = %d: %s", rec.Code, rec.Body)
	}
	var resp AnomaliesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Anomalies) == 0 {
		t.Fatal("no completed anomalies reported")
	}
	found := false
	for _, a := range resp.Anomalies {
		if a.Start < 460 && a.End > 290 {
			found = true
			if len(a.Sensors) == 0 {
				t.Error("anomaly without sensors")
			}
		}
	}
	if !found {
		t.Errorf("no anomaly overlapping the fault window: %+v", resp.Anomalies)
	}
	// Wrong method.
	req = httptest.NewRequest(http.MethodPost, "/anomalies", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /anomalies = %d", rec.Code)
	}
}
