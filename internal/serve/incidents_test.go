package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cad/internal/alert"
	"cad/internal/fleet"
	"cad/internal/manager"
	"cad/internal/obs"
)

// fleetAlarm builds one raw alarm event for the fleet pipeline.
func fleetAlarm(stream string, at time.Time, sensors ...int) alert.Event {
	return alert.Event{Type: alert.TypeAlarm, Stream: stream, Time: at, Score: 2.5, Sensors: sensors}
}

// seededFleet returns a fleet holding one closed incident (streams a, b)
// and one still-open incident (streams c, d) opened ten minutes later.
func seededFleet(t *testing.T) *fleet.Fleet {
	t.Helper()
	cfg := fleet.DefaultConfig()
	cfg.BucketSize = 10 * time.Second
	cfg.ClusterWindow = 30 * time.Second
	cfg.QuietClose = 2 * time.Minute
	f := fleet.New(cfg, nil)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	f.Observe(fleetAlarm("a", base, 1))
	f.Observe(fleetAlarm("b", base.Add(7*time.Second), 1))
	f.Advance(base.Add(cfg.QuietClose + time.Minute)) // closes the first incident
	later := base.Add(10 * time.Minute)
	f.Observe(fleetAlarm("c", later, 2))
	f.Observe(fleetAlarm("d", later.Add(5*time.Second), 2))
	return f
}

func getIncidents(t *testing.T, h http.Handler, query string) IncidentListResponse {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/incidents"+query, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("incidents%s = %d: %s", query, rec.Code, rec.Body)
	}
	var resp IncidentListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestIncidentsAPI(t *testing.T) {
	svc := NewWithOptions(testDetector(t), Options{Fleet: seededFleet(t)})
	h := svc.Handler()

	all := getIncidents(t, h, "").Incidents
	if len(all) != 2 {
		t.Fatalf("%d incidents, want 2: %+v", len(all), all)
	}
	// Newest first: the open incident leads, the closed one follows.
	if all[0].State != "open" || all[1].State != "closed" {
		t.Fatalf("states = %s, %s; want open, closed", all[0].State, all[1].State)
	}
	if got := all[1].Suspects; len(got) != 2 || got[0].Stream != "a" || got[1].Stream != "b" {
		t.Fatalf("closed incident suspects = %+v, want a then b", got)
	}
	if all[1].Suspects[0].LagSeconds != 0 || all[1].Suspects[1].LagSeconds != 7 {
		t.Fatalf("lags = %v, %v; want 0, 7", all[1].Suspects[0].LagSeconds, all[1].Suspects[1].LagSeconds)
	}

	// State filter.
	if open := getIncidents(t, h, "?state=open").Incidents; len(open) != 1 || open[0].State != "open" {
		t.Fatalf("state=open = %+v", open)
	}
	if closed := getIncidents(t, h, "?state=closed").Incidents; len(closed) != 1 || closed[0].State != "closed" {
		t.Fatalf("state=closed = %+v", closed)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/incidents?state=resolved", nil))
	wantEnvelope(t, rec, http.StatusBadRequest, CodeBadQuery)

	// Pagination follows the uniform contract.
	if page := getIncidents(t, h, "?limit=1").Incidents; len(page) != 1 || page[0].ID != all[0].ID {
		t.Fatalf("limit=1 = %+v, want the newest incident", page)
	}
	if page := getIncidents(t, h, "?limit=1&offset=1").Incidents; len(page) != 1 || page[0].ID != all[1].ID {
		t.Fatalf("second page = %+v, want the closed incident", page)
	}
	if page := getIncidents(t, h, "?offset=99").Incidents; len(page) != 0 {
		t.Fatalf("offset past end = %+v, want an empty page", page)
	}

	// Detail route round-trips the listing snapshot.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/incidents/"+all[1].ID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("detail = %d: %s", rec.Code, rec.Body)
	}
	var detail alert.Incident
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.ID != all[1].ID || detail.Streams != 2 || len(detail.Suspects) != 2 {
		t.Fatalf("detail = %+v", detail)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/incidents/inc-999", nil))
	wantEnvelope(t, rec, http.StatusNotFound, CodeIncidentNotFound)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/incidents", nil))
	wantEnvelope(t, rec, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
}

// TestIncidentRoutesNeedFleet checks the incident routes are cleanly
// absent on services built without a fleet pipeline.
func TestIncidentRoutesNeedFleet(t *testing.T) {
	svc := New(testDetector(t), 10)
	h := svc.Handler()
	for _, path := range []string{"/v1/incidents", "/v1/incidents/inc-1", "/v1/incidents/events"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		wantEnvelope(t, rec, http.StatusNotFound, CodeNotFound)
	}
	// A fleet without a bus still has no live feed to serve.
	svc = NewWithOptions(testDetector(t), Options{Fleet: seededFleet(t)})
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/incidents/events", nil))
	wantEnvelope(t, rec, http.StatusNotFound, CodeNotFound)
}

// TestIncidentEventsSSE wires the full production topology — manager →
// bus → fleet sink → bus → SSE — and checks the fleet-scoped feed carries
// incident transitions in the v1 envelope while filtering per-stream
// noise.
func TestIncidentEventsSSE(t *testing.T) {
	reg := obs.NewRegistry()
	bus, err := alert.NewBus(alert.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer bus.Close()
	cfg := fleet.DefaultConfig()
	cfg.BucketSize = 10 * time.Second
	f := fleet.New(cfg, reg)
	mgr := manager.New(manager.Options{MaxAlarms: 64, Registry: reg, Alerts: bus, Fleet: f})
	if mgr.Fleet() != f {
		t.Fatal("manager does not carry its fleet")
	}
	// Options.Fleet is nil: the service must fall back to the manager's.
	svc := NewWithOptions(testDetector(t), Options{Manager: mgr, Alerts: bus})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer bus.Close()

	c := dialSSE(t, ts.URL+"/v1/incidents/events")
	base := time.Date(2026, 8, 8, 15, 0, 0, 0, time.UTC)
	bus.Publish(fleetAlarm("s-a", base, 0))
	bus.Publish(fleetAlarm("s-b", base.Add(9*time.Second), 0))

	waitFor(t, "incident_opened on the SSE feed", func() bool {
		_, ok := c.find(alert.TypeIncidentOpened)
		return ok
	})
	ev, _ := c.find(alert.TypeIncidentOpened)
	if ev.Incident == nil || ev.Incident.Streams != 2 {
		t.Fatalf("opened incident = %+v", ev.Incident)
	}
	if len(ev.Incident.Suspects) != 2 || ev.Incident.Suspects[0].Stream != "s-a" {
		t.Fatalf("suspects = %+v, want s-a leading", ev.Incident.Suspects)
	}
	// Raw alarms must not leak into the incident feed.
	for _, got := range c.snapshot() {
		if got.Type == alert.TypeAlarm {
			t.Fatalf("incident feed leaked a raw alarm: %+v", got)
		}
	}
}

// TestLegacyDeprecationHeaders: every unversioned route answers with the
// RFC 8594 deprecation trio and is counted, while its /v1 successor stays
// clean.
func TestLegacyDeprecationHeaders(t *testing.T) {
	svc := New(testDetector(t), 10)
	h := svc.Handler()
	legacy := map[string]string{
		"/status":    "/v1/streams/{id}/status",
		"/alarms":    "/v1/streams/{id}/alarms",
		"/anomalies": "/v1/streams/{id}/anomalies",
	}
	for path, successor := range legacy {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d: %s", path, rec.Code, rec.Body)
		}
		if got := rec.Header().Get("Deprecation"); got != "true" {
			t.Errorf("%s Deprecation = %q, want true", path, got)
		}
		if got := rec.Header().Get("Sunset"); got == "" {
			t.Errorf("%s missing Sunset header", path)
		}
		if got := rec.Header().Get("Link"); !strings.Contains(got, successor) || !strings.Contains(got, `rel="successor-version"`) {
			t.Errorf("%s Link = %q, want successor %s", path, got, successor)
		}
		if got := svc.legacyRequests(path).Value(); got != 1 {
			t.Errorf("cad_legacy_requests_total{route=%q} = %d, want 1", path, got)
		}
	}
	// The successor routes carry no deprecation marker.
	req := httptest.NewRequest(http.MethodGet, "/v1/streams/default/status", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("Deprecation") != "" {
		t.Fatalf("/v1 status = %d, Deprecation %q; want 200 with no header",
			rec.Code, rec.Header().Get("Deprecation"))
	}
}

// TestPaginationBoundaries is the table-driven boundary sweep of the
// uniform ?limit=/?offset= contract across every listing route.
func TestPaginationBoundaries(t *testing.T) {
	svc := NewWithOptions(testDetector(t), Options{Fleet: seededFleet(t)})
	h := svc.Handler()
	routes := []string{
		"/v1/streams",
		"/v1/streams/default/alarms",
		"/v1/streams/default/anomalies",
		"/v1/incidents",
	}
	bad := []string{"?limit=0", "?limit=-3", "?limit=abc", "?limit=1.5", "?offset=-1", "?offset=abc"}
	for _, route := range routes {
		for _, query := range bad {
			req := httptest.NewRequest(http.MethodGet, route+query, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusBadRequest {
				t.Errorf("%s%s = %d, want 400", route, query, rec.Code)
				continue
			}
			var resp ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Error.Code != CodeBadQuery {
				t.Errorf("%s%s error = %s, want code %s", route, query, rec.Body, CodeBadQuery)
			}
		}
		// Offset past the end is an empty page on every route, never an error.
		req := httptest.NewRequest(http.MethodGet, route+"?limit=5&offset=100000", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("%s offset past end = %d: %s", route, rec.Code, rec.Body)
		}
	}
	// /v1/streams honors limit/offset over its full listing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams?limit=1&offset=0", nil))
	var list StreamListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list.Streams) != 1 {
		t.Fatalf("streams limit=1 = %s (%v)", rec.Body, err)
	}
}
