package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"cad/internal/alert"
)

// sseBuffer bounds one SSE client's send queue. A subscriber that falls
// this far behind is evicted by the bus instead of stalling publishers.
const sseBuffer = 64

// handleEvents serves GET /v1/streams/{id}/events: a Server-Sent Events
// feed of the stream's alert bus events (anomaly transitions, alarms).
// Each message carries the bus sequence number as its SSE id, the event
// type as its event name, and the JSON payload webhooks receive as its
// data. The feed ends when the client disconnects, the bus shuts down, or
// the client is evicted for not keeping up.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if s.alerts == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "alerting is not enabled")
		return
	}
	// Resolve the stream first so an unknown id is a clean 404 rather than
	// a silent, empty feed.
	if _, err := s.mgr.Status(id); err != nil {
		writeStreamError(w, err)
		return
	}
	// The controller reaches through the instrumentation wrapper (see
	// statusWriter.Unwrap) for flushing — SSE is useless buffered — and for
	// pushing the write deadline forward per event: the server's
	// WriteTimeout covers whole responses, and an event feed is open-ended.
	// A client that stops reading still gets cut off one deadline after its
	// last successful write.
	rc := http.NewResponseController(w)
	sub := s.alerts.Subscribe(id, sseBuffer)
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return // the writer cannot stream; the feed is unusable
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				// Bus shutdown or eviction; either way the feed is over.
				return
			}
			data, err := alert.EncodeEvent(ev)
			if err != nil {
				continue
			}
			_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

// CreateSinkRequest is the POST /v1/sinks body. Type picks the sink:
// "webhook" needs URL (Secret optional), "file" needs Path, "slog" needs
// nothing. Queue and Policy ("drop_oldest" or "block") tune the sink's
// delivery queue; zero values take the bus defaults.
type CreateSinkRequest struct {
	Name   string `json:"name"`
	Type   string `json:"type"`
	URL    string `json:"url,omitempty"`
	Secret string `json:"secret,omitempty"`
	Path   string `json:"path,omitempty"`
	Queue  int    `json:"queue,omitempty"`
	Policy string `json:"policy,omitempty"`
}

// SinkListResponse is the GET /v1/sinks payload.
type SinkListResponse struct {
	Sinks []alert.SinkStatus `json:"sinks"`
}

// handleSinks serves the sink collection: GET lists, POST registers.
func (s *Service) handleSinks(w http.ResponseWriter, r *http.Request) {
	if s.alerts == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "alerting is not enabled")
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, SinkListResponse{Sinks: s.alerts.Sinks()})
	case http.MethodPost:
		s.handleCreateSink(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or POST required")
	}
}

func (s *Service) handleCreateSink(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req CreateSinkRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadJSON, "bad JSON: %v", err)
		return
	}
	var sink alert.Sink
	var err error
	switch req.Type {
	case "webhook":
		sink, err = alert.NewWebhookSink(req.URL, []byte(req.Secret), 0)
	case "file":
		sink, err = alert.NewFileSink(req.Path, nil)
	case "slog":
		sink = alert.NewSlogSink(s.logger)
	default:
		writeError(w, http.StatusBadRequest, CodeBadSink, "sink type %q: want webhook, file, or slog", req.Type)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSink, "%v", err)
		return
	}
	cfg := alert.SinkConfig{Queue: req.Queue}
	switch req.Policy {
	case "", "drop_oldest":
	case "block":
		cfg.Policy = alert.Block
	default:
		writeError(w, http.StatusBadRequest, CodeBadSink, "policy %q: want drop_oldest or block", req.Policy)
		return
	}
	if err := s.alerts.AddSink(req.Name, sink, cfg); err != nil {
		if errors.Is(err, alert.ErrSinkExists) {
			writeError(w, http.StatusConflict, CodeSinkExists, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadSink, "%v", err)
		return
	}
	for _, st := range s.alerts.Sinks() {
		if st.Name == req.Name {
			writeJSON(w, http.StatusCreated, st)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
}

// handleSink serves the sink item route: DELETE unregisters (draining the
// queue with one final attempt per event).
func (s *Service) handleSink(w http.ResponseWriter, r *http.Request) {
	if s.alerts == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "alerting is not enabled")
		return
	}
	if r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "DELETE required")
		return
	}
	name := r.PathValue("name")
	if err := s.alerts.RemoveSink(name); err != nil {
		if errors.Is(err, alert.ErrSinkNotFound) {
			writeError(w, http.StatusNotFound, CodeSinkNotFound, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// VersionResponse is the GET /version payload, assembled once from the
// binary's embedded build info.
type VersionResponse struct {
	// Version is the main module's version ("devel" for untagged builds).
	Version string `json:"version"`
	// Revision and BuildTime come from the VCS stamp, when present.
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"buildTime,omitempty"`
	Module    string `json:"module,omitempty"`
	GoVersion string `json:"goVersion"`
}

var versionOnce = sync.OnceValue(func() VersionResponse {
	v := VersionResponse{Version: "devel", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Path
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		v.Version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			v.Revision = kv.Value
		case "vcs.time":
			v.BuildTime = kv.Value
		}
	}
	return v
})

// Version returns the build identity served by GET /version.
func Version() VersionResponse { return versionOnce() }

// versionHeader is the compact form sent as the X-CAD-Version response
// header on stream listings.
func versionHeader() string {
	v := versionOnce()
	if v.Revision != "" {
		rev := v.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return v.Version + "+" + rev
	}
	return v.Version
}

// handleVersion serves GET /version.
func (s *Service) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, versionOnce())
}
