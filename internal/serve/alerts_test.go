package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cad/internal/alert"
	"cad/internal/manager"
	"cad/internal/obs"
)

// newAlertService builds a service whose manager publishes into a fresh
// alert bus wired through the HTTP layer.
func newAlertService(t *testing.T, busOpts alert.Options) (*Service, *alert.Bus) {
	t.Helper()
	reg := obs.NewRegistry()
	busOpts.Registry = reg
	bus, err := alert.NewBus(busOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bus.Close() })
	mgr := manager.New(manager.Options{MaxAlarms: 64, Registry: reg, Alerts: bus})
	svc := NewWithOptions(testDetector(t), Options{Manager: mgr, Alerts: bus})
	return svc, bus
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sseClient reads one SSE feed, decoding each data: line into an Event.
type sseClient struct {
	mu     sync.Mutex
	events []alert.Event
	resp   *http.Response
}

func dialSSE(t *testing.T, url string) *sseClient {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("SSE dial: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	c := &sseClient{resp: resp}
	t.Cleanup(func() { resp.Body.Close() })
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			ev, err := alert.DecodeEvent([]byte(strings.TrimPrefix(line, "data: ")))
			if err != nil {
				continue
			}
			c.mu.Lock()
			c.events = append(c.events, ev)
			c.mu.Unlock()
		}
	}()
	return c
}

func (c *sseClient) snapshot() []alert.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]alert.Event, len(c.events))
	copy(out, c.events)
	return out
}

func (c *sseClient) find(typ alert.Type) (alert.Event, bool) {
	for _, ev := range c.snapshot() {
		if ev.Type == typ {
			return ev, true
		}
	}
	return alert.Event{}, false
}

// blockedWriter is a ResponseWriter whose Write blocks until the gate
// opens — a client that stopped reading, without depending on OS socket
// buffer sizes.
type blockedWriter struct {
	gate   chan struct{}
	header http.Header
}

func newBlockedWriter() *blockedWriter {
	return &blockedWriter{gate: make(chan struct{}), header: http.Header{}}
}

func (w *blockedWriter) Header() http.Header { return w.header }
func (w *blockedWriter) WriteHeader(int)     {}
func (w *blockedWriter) Flush()              {}
func (w *blockedWriter) Write(p []byte) (int, error) {
	<-w.gate
	return len(p), nil
}

// TestSSEFeedAndSlowClientEviction subscribes a healthy client and a stuck
// one, then floods events: the healthy client must see every event in
// order, the stuck one must be evicted, and the publisher (the detection
// hot path) must never block on either.
func TestSSEFeedAndSlowClientEviction(t *testing.T) {
	svc, bus := newAlertService(t, alert.Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	// Closing the bus ends the SSE handlers; it must happen before
	// ts.Close, which waits for in-flight requests.
	defer bus.Close()

	fast := dialSSE(t, ts.URL+"/v1/streams/default/events")

	// The stuck client drives the real handler against a writer that never
	// completes a write, so its subscription buffer must fill and evict.
	slow := newBlockedWriter()
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(slow.gate) }) }
	defer openGate()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		req := httptest.NewRequest(http.MethodGet, "/v1/streams/default/events", nil).WithContext(ctx)
		svc.handleEvents(slow, req, "default")
	}()
	waitFor(t, "both subscribers", func() bool {
		return svc.reg.Gauge("cad_sse_subscribers", "").Value() == 2
	})

	// sseBuffer plus slack, so the stuck client must overflow. Publishing is
	// paced to the fast client's reads — the stuck one never drains at all,
	// so it still fills and evicts — and each Publish is individually timed:
	// the detection hot path must never wait on a subscriber.
	const n = 200
	for i := 0; i < n; i++ {
		start := time.Now()
		bus.Publish(alert.Event{Stream: "default", Type: alert.TypeAlarm, Round: i})
		if d := time.Since(start); d > time.Second {
			t.Fatalf("Publish took %v with a stuck subscriber", d)
		}
		waitFor(t, "fast client catching up", func() bool { return len(fast.snapshot()) > i })
	}
	for i, ev := range fast.snapshot() {
		if ev.Round != i {
			t.Fatalf("fast client event %d has round %d; feed out of order", i, ev.Round)
		}
	}
	if got := svc.reg.Counter("cad_sse_evicted_total", "").Value(); got != 1 {
		t.Fatalf("cad_sse_evicted_total = %d, want 1", got)
	}
	// The evicted handler unwinds on its own once the writer unblocks.
	openGate()
	select {
	case <-slowDone:
	case <-time.After(5 * time.Second):
		t.Fatal("evicted handler did not exit")
	}

	// Unknown stream: a clean 404, not an empty feed.
	resp, err := http.Get(ts.URL + "/v1/streams/ghost/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown stream: status %d", resp.StatusCode)
	}
}

func TestSinksCRUD(t *testing.T) {
	svc, _ := newAlertService(t, alert.Options{})
	h := svc.Handler()

	// Invalid definitions.
	wantEnvelope(t, postJSON(t, h, "/v1/sinks", CreateSinkRequest{Name: "x", Type: "carrier-pigeon"}),
		http.StatusBadRequest, CodeBadSink)
	wantEnvelope(t, postJSON(t, h, "/v1/sinks", CreateSinkRequest{Name: "x", Type: "webhook", URL: "not a url"}),
		http.StatusBadRequest, CodeBadSink)
	wantEnvelope(t, postJSON(t, h, "/v1/sinks", CreateSinkRequest{Name: "x", Type: "file"}),
		http.StatusBadRequest, CodeBadSink)
	wantEnvelope(t, postJSON(t, h, "/v1/sinks", CreateSinkRequest{Name: "x", Type: "slog", Policy: "panic"}),
		http.StatusBadRequest, CodeBadSink)

	// Create, duplicate, list, delete.
	rec := postJSON(t, h, "/v1/sinks", CreateSinkRequest{Name: "log", Type: "slog"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create sink = %d: %s", rec.Code, rec.Body)
	}
	var created alert.SinkStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil || created.Name != "log" || created.Kind != "slog" {
		t.Fatalf("created sink payload %s (%v)", rec.Body, err)
	}
	wantEnvelope(t, postJSON(t, h, "/v1/sinks", CreateSinkRequest{Name: "log", Type: "slog"}),
		http.StatusConflict, CodeSinkExists)

	req := httptest.NewRequest(http.MethodGet, "/v1/sinks", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var list SinkListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list.Sinks) != 1 {
		t.Fatalf("sink list = %s (%v)", rec.Body, err)
	}

	req = httptest.NewRequest(http.MethodDelete, "/v1/sinks/log", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete sink = %d: %s", rec.Code, rec.Body)
	}
	req = httptest.NewRequest(http.MethodDelete, "/v1/sinks/log", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusNotFound, CodeSinkNotFound)
}

// TestAlertRoutesNeedBus checks the push-delivery routes are cleanly absent
// on services built without an alert bus.
func TestAlertRoutesNeedBus(t *testing.T) {
	svc := New(testDetector(t), 10)
	h := svc.Handler()
	for _, path := range []string{"/v1/sinks", "/v1/streams/default/events"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		wantEnvelope(t, rec, http.StatusNotFound, CodeNotFound)
	}
}

func TestVersionEndpoint(t *testing.T) {
	svc := New(testDetector(t), 10)
	h := svc.Handler()
	req := httptest.NewRequest(http.MethodGet, "/version", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/version = %d", rec.Code)
	}
	var v VersionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Version == "" || v.GoVersion == "" {
		t.Fatalf("version payload incomplete: %+v", v)
	}
	// The stream listing advertises the same build in a header.
	req = httptest.NewRequest(http.MethodGet, "/v1/streams", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-CAD-Version"); !strings.HasPrefix(got, v.Version) {
		t.Fatalf("X-CAD-Version = %q, want prefix %q", got, v.Version)
	}
	req = httptest.NewRequest(http.MethodPost, "/version", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
}

// TestAnomaliesPagination mirrors the /alarms paging contract on
// /anomalies, including the error codes.
func TestAnomaliesPagination(t *testing.T) {
	det := testDetector(t)
	svc := New(det, 10)
	h := svc.Handler()
	rng := rand.New(rand.NewSource(5))
	// Two separate fault windows, so at least two anomalies complete.
	for tick := 0; tick < 900; tick++ {
		broken := (tick >= 300 && tick < 400) || (tick >= 600 && tick < 700)
		rec := postJSON(t, h, "/ingest", IngestRequest{Readings: column(rng, tick, broken)})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d: %d", tick, rec.Code)
		}
	}
	get := func(query string) AnomaliesResponse {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/v1/streams/default/anomalies"+query, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("anomalies%s = %d: %s", query, rec.Code, rec.Body)
		}
		var resp AnomaliesResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	all := get("").Anomalies
	if len(all) < 2 {
		t.Fatalf("%d anomalies, want ≥ 2 to page over", len(all))
	}
	if one := get("?limit=1").Anomalies; len(one) != 1 || one[0].LastRound != all[len(all)-1].LastRound {
		t.Fatalf("limit=1 = %+v, want the newest anomaly", one)
	}
	if off := get(fmt.Sprintf("?limit=1&offset=%d", len(all)-1)).Anomalies; len(off) != 1 || off[0].LastRound != all[0].LastRound {
		t.Fatalf("last page = %+v, want the oldest anomaly", off)
	}
	// Same error codes as /alarms.
	for _, query := range []string{"?limit=0", "?limit=-1", "?limit=x", "?offset=-2", "?offset=x"} {
		req := httptest.NewRequest(http.MethodGet, "/v1/streams/default/anomalies"+query, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		wantEnvelope(t, rec, http.StatusBadRequest, CodeBadQuery)
	}
}
