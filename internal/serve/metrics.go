package serve

import (
	"cad/internal/core"
	"cad/internal/obs"
)

// detectorMetrics bridges core.RoundObserver onto the obs registry,
// exporting one histogram per pipeline stage plus round/alarm counters and
// the current n_r history statistics.
type detectorMetrics struct {
	tsgBuild   *obs.Histogram
	louvain    *obs.Histogram
	advance    *obs.Histogram
	rounds     *obs.Counter
	alarms     *obs.Counter
	variations *obs.Gauge
	mu         *obs.Gauge
	sigma      *obs.Gauge
}

func newDetectorMetrics(reg *obs.Registry) *detectorMetrics {
	return &detectorMetrics{
		tsgBuild: reg.Histogram("cad_tsg_build_seconds",
			"Time building each round's Time-Series Graph.", obs.DefBuckets),
		louvain: reg.Histogram("cad_louvain_seconds",
			"Louvain community-detection time per round.", obs.DefBuckets),
		advance: reg.Histogram("cad_advance_seconds",
			"Co-appearance mining and abnormal-round rule time per round.", obs.DefBuckets),
		rounds: reg.Counter("cad_rounds_total",
			"Detection rounds processed."),
		alarms: reg.Counter("cad_alarms_total",
			"Rounds flagged abnormal."),
		variations: reg.Gauge("cad_round_variations",
			"Outlier transitions n_r of the last processed round."),
		mu: reg.Gauge("cad_history_mu",
			"Running mean of n_r."),
		sigma: reg.Gauge("cad_history_sigma",
			"Running standard deviation of n_r."),
	}
}

// ObserveRound implements core.RoundObserver.
func (m *detectorMetrics) ObserveRound(rep core.RoundReport, t core.StageTimings, mu, sigma float64) {
	m.tsgBuild.Observe(t.TSGBuild.Seconds())
	m.louvain.Observe(t.Louvain.Seconds())
	m.advance.Observe(t.Advance.Seconds())
	m.rounds.Inc()
	if rep.Abnormal {
		m.alarms.Inc()
	}
	m.variations.Set(float64(rep.Variations))
	m.mu.Set(finiteOrZero(mu))
	m.sigma.Set(finiteOrZero(sigma))
}

// ingestRejected counts columns the API boundary refused, by reason:
// "nonfinite" (NaN/Inf readings), "badjson" (undecodable body), and
// "stream" (the streamer itself refused the column, e.g. wrong arity).
func (s *Service) ingestRejected(reason string) *obs.Counter {
	return s.reg.Counter("cad_ingest_rejected_total",
		"Ingest columns rejected at the API boundary, by reason.",
		obs.Label{Name: "reason", Value: reason})
}
