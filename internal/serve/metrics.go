package serve

import (
	"cad/internal/obs"
)

// ingestRejected counts columns the API boundary refused, by stream and
// reason: "nonfinite" (NaN/Inf readings), "badjson" (undecodable body), and
// "stream" (the streamer itself refused the column, e.g. wrong arity).
// Cardinality is bounded by the manager's stream capacity. The per-stream
// detector pipeline metrics live in internal/manager, attached when a
// stream is created or restored.
func (s *Service) ingestRejected(stream, reason string) *obs.Counter {
	return s.reg.Counter("cad_ingest_rejected_total",
		"Ingest columns rejected at the API boundary, by stream and reason.",
		obs.Label{Name: "reason", Value: reason},
		obs.Label{Name: "stream", Value: stream})
}

// legacyRequests counts hits on the deprecated unversioned routes, by
// route. Cardinality is bounded: only the five fixed legacy paths are
// ever passed in (the wrapper is applied per registered route).
func (s *Service) legacyRequests(route string) *obs.Counter {
	return s.reg.Counter("cad_legacy_requests_total",
		"Requests served by deprecated unversioned routes, by route.",
		obs.Label{Name: "route", Value: route})
}
