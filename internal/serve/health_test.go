package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"

	"cad/internal/faultfs"
	"cad/internal/manager"
)

func getHealth(t *testing.T, h http.Handler, path string) (int, HealthResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s: non-JSON body: %v: %s", path, err, rec.Body)
	}
	return rec.Code, resp
}

func TestHealthEndpoints(t *testing.T) {
	svc := New(testDetector(t), 10)
	h := svc.Handler()
	if code, resp := getHealth(t, h, "/healthz"); code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("/healthz = %d, %+v", code, resp)
	}
	code, resp := getHealth(t, h, "/readyz")
	if code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("/readyz = %d, %+v", code, resp)
	}
	// An in-memory single-node service reports every optional subsystem as
	// disabled — present in the map, so operators see what is configured.
	for _, sub := range []string{"wal", "fleet", "cluster"} {
		if got := resp.Subsystems[sub].Status; got != "disabled" {
			t.Errorf("readyz subsystem %s = %q, want disabled", sub, got)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
}

// TestReadyzReportsDegraded fills the disk under a durable manager and
// checks /readyz flips to 503 with the cause while /healthz and ingest keep
// answering 200.
func TestReadyzReportsDegraded(t *testing.T) {
	fault := faultfs.New(faultfs.OS())
	mgr := manager.New(manager.Options{
		WALDir: t.TempDir(),
		Fsync:  manager.FsyncNever,
		FS:     fault,
	})
	svc := NewWithOptions(testDetector(t), Options{Manager: mgr})
	h := svc.Handler()

	fault.FailWrites(syscall.ENOSPC)
	rec := postJSON(t, h, "/ingest", IngestRequest{Readings: []float64{0, 1, 2, 3, 4, 5, 6, 7}})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest under ENOSPC = %d: %s", rec.Code, rec.Body)
	}
	if code, resp := getHealth(t, h, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while degraded = %d, %+v", code, resp)
	}
	code, resp := getHealth(t, h, "/readyz")
	if code != http.StatusServiceUnavailable || resp.Status != "degraded" || resp.Reason == "" {
		t.Fatalf("/readyz while degraded = %d, %+v; want 503 with a reason", code, resp)
	}
	if wal := resp.Subsystems["wal"]; wal.Status != "degraded" || wal.Reason == "" {
		t.Fatalf("readyz wal subsystem while degraded = %+v", wal)
	}
}

// TestRecoveredDefaultStreamWins boots a service over a directory holding a
// previous run's default stream: Recover restores it first, and the fresh
// detector NewWithOptions would adopt must yield to the recovered state.
func TestRecoveredDefaultStreamWins(t *testing.T) {
	dir := t.TempDir()
	first := manager.New(manager.Options{WALDir: dir, Fsync: manager.FsyncNever})
	if err := first.Adopt(DefaultStream, testDetector(t)); err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 50; tick++ {
		if _, err := first.Ingest(DefaultStream, []float64{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon the first manager; boot a second service over the same disk.
	mgr := manager.New(manager.Options{WALDir: dir, Fsync: manager.FsyncNever})
	if stats, err := mgr.Recover(); err != nil || stats.Recovered != 1 {
		t.Fatalf("Recover = %+v, %v", stats, err)
	}
	svc := NewWithOptions(testDetector(t), Options{Manager: mgr})
	req := httptest.NewRequest(http.MethodGet, "/status", nil)
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/status = %d: %s", rec.Code, rec.Body)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 50 {
		t.Fatalf("recovered default stream has %d ticks, want 50 (fresh detector clobbered it)", st.Ticks)
	}
}
