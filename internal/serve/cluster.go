package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"cad/internal/alert"
	"cad/internal/cluster"
	"cad/internal/manager"
)

// maxHandoffBytes bounds one migration bundle (snapshot + WAL tail).
const maxHandoffBytes = 256 << 20

// maxCreatePeek bounds the body buffered by the router to learn a create
// request's stream id; matches the practical size of a create payload.
const maxCreatePeek = 1 << 20

// scatterLimit is the page size used for shard-local fan-out reads: large
// enough to cover any bounded store (incident and alarm rings are far
// smaller), so the coordinator always merges complete shard answers.
const scatterLimit = 1_000_000

// scatterActive reports whether this request should fan out: the node is
// clustered, the request is a fresh client request (not a peer's
// shard-local read), and not already forwarded.
func (s *Service) scatterActive(r *http.Request) bool {
	return s.cluster != nil && !cluster.LocalScope(r) && !cluster.Forwarded(r)
}

// streamIDForRouting extracts the stream id a request operates on, for
// ownership routing: the {id} element of /v1/streams/{id}[/…], or the
// default stream for the legacy single-stream routes. "" means the route
// is not stream-scoped.
func streamIDForRouting(r *http.Request) string {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/v1/streams/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		return rest
	}
	switch r.URL.Path {
	case "/ingest", "/status", "/alarms", "/anomalies":
		return DefaultStream
	}
	return ""
}

// routeToOwner is the ingest-routing middleware: any node accepts any /v1
// request, and stream-scoped traffic is transparently forwarded to the
// stream's ring owner. Forwarded requests (X-CAD-Forwarded-By) are served
// locally even if this node's ring view disagrees — trusting the
// forwarder caps routing at a single hop, so requests never loop while
// two nodes briefly disagree about liveness. Responses served locally
// carry X-CAD-Node naming this node.
func (s *Service) routeToOwner(next http.Handler) http.Handler {
	if s.cluster == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if cluster.Forwarded(r) || cluster.LocalScope(r) {
			w.Header().Set(cluster.HeaderNode, s.cluster.Self().ID)
			next.ServeHTTP(w, r)
			return
		}
		id := streamIDForRouting(r)
		if id == "" && r.Method == http.MethodPost && r.URL.Path == "/v1/streams" {
			id = s.peekCreateID(r)
		}
		// The built-in default stream is node-local by design: every node
		// adopts its own at boot (the legacy single-stream routes depend on
		// it), so it is never forwarded or rebalanced.
		if id != "" && id != DefaultStream && manager.ValidateID(id) == nil {
			owner, ok := s.cluster.Owner(id)
			if !ok {
				writeError(w, http.StatusServiceUnavailable, CodeClusterUnavailable,
					"no live node owns stream %q", id)
				return
			}
			if owner.ID != s.cluster.Self().ID {
				s.cluster.Forward(w, r, owner, s.forwardError(owner))
				return
			}
		}
		w.Header().Set(cluster.HeaderNode, s.cluster.Self().ID)
		next.ServeHTTP(w, r)
	})
}

// peekCreateID buffers a POST /v1/streams body far enough to learn the id
// it creates, restoring the body for the handler. An undecodable body
// returns "" and is served locally, where the handler produces the
// proper 400.
func (s *Service) peekCreateID(r *http.Request) string {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxCreatePeek))
	if err != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
		return ""
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	var probe struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &probe) != nil {
		return ""
	}
	return probe.ID
}

// forwardError maps a failed forward onto the error envelope. The peer
// has already been marked down, so the next attempt re-routes.
func (s *Service) forwardError(owner cluster.Node) func(http.ResponseWriter, *http.Request, error) {
	return func(w http.ResponseWriter, r *http.Request, err error) {
		writeError(w, http.StatusBadGateway, CodeClusterUnavailable,
			"stream owner %s unreachable: %v", owner.ID, err)
	}
}

// ClusterMover adapts a manager for cluster rebalancing and draining,
// excluding the node-local default stream (see routeToOwner).
type ClusterMover struct{ Mgr *manager.Manager }

// List enumerates the movable streams: everything but the default stream.
func (m ClusterMover) List() []manager.Info {
	infos := m.Mgr.List()
	out := infos[:0]
	for _, info := range infos {
		if info.ID != DefaultStream {
			out = append(out, info)
		}
	}
	return out
}

// Export captures one stream as a migration bundle.
func (m ClusterMover) Export(id string) (manager.StreamExport, error) { return m.Mgr.Export(id) }

// Delete drops the local copy after a peer acknowledged the handoff.
func (m ClusterMover) Delete(id string) error { return m.Mgr.Delete(id) }

// Mover returns the rebalancing surface of this service's manager, for
// cluster.Rebalance / cluster.Drain.
func (s *Service) Mover() cluster.StreamMover { return ClusterMover{Mgr: s.mgr} }

// ClusterResponse is the GET /v1/cluster payload: this node's membership
// view plus its local shard size.
type ClusterResponse struct {
	cluster.Status
	// LocalStreams counts the streams resident on or snapshotted by the
	// answering node.
	LocalStreams int `json:"localStreams"`
}

// handleCluster serves GET /v1/cluster. 404 unless clustered.
func (s *Service) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "cluster mode is not enabled")
		return
	}
	writeJSON(w, http.StatusOK, ClusterResponse{
		Status:       s.cluster.Status(),
		LocalStreams: len(s.mgr.List()),
	})
}

// HandoffResponse acknowledges one imported migration bundle.
type HandoffResponse struct {
	Stream string `json:"stream"`
	// Replayed counts the WAL-tail columns applied on top of the snapshot.
	Replayed int `json:"replayed"`
}

// handleClusterHandoff serves POST /v1/cluster/handoff: a peer ships a
// stream's migration bundle (sealed snapshot + WAL tail, gob-encoded) and
// this node imports it and starts owning the stream. 409 if the stream is
// already resident here — the sender then keeps its copy, so a duplicate
// handoff can never silently clobber live state.
func (s *Service) handleClusterHandoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "cluster mode is not enabled")
		return
	}
	exp, err := cluster.DecodeHandoff(io.LimitReader(r.Body, maxHandoffBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadHandoff, "%v", err)
		return
	}
	replayed, err := s.cluster.ImportHandoff(s.mgr, exp)
	if err != nil {
		writeStreamError(w, err)
		return
	}
	if s.logger != nil {
		s.logger.Info("cluster stream imported",
			"stream", exp.ID, "from", r.Header.Get(cluster.HeaderNode), "replayed", replayed)
	}
	writeJSON(w, http.StatusOK, HandoffResponse{Stream: exp.ID, Replayed: replayed})
}

// scatterStreamList merges the stream listings of every live member:
// local streams plus each peer's shard-local /v1/streams, deduplicated by
// id (an id caught mid-migration may appear on two nodes; the active copy
// wins), sorted by id like the single-node listing, then paged with the
// caller's limit/offset. Peers that fail to answer are named in an
// X-CAD-Partial header so a partial merge is never mistaken for the whole
// fleet.
func (s *Service) scatterStreamList(w http.ResponseWriter, r *http.Request, p page) {
	byID := make(map[string]manager.Info)
	keep := func(infos []manager.Info) {
		for _, info := range infos {
			if cur, ok := byID[info.ID]; ok && cur.State == "active" && info.State != "active" {
				continue
			}
			byID[info.ID] = info
		}
	}
	keep(s.mgr.List())
	var failed []string
	for _, pr := range s.cluster.ScatterGet(r.Context(), "/v1/streams") {
		var list StreamListResponse
		if !pr.OK() || json.Unmarshal(pr.Body, &list) != nil {
			failed = append(failed, pr.Peer.ID)
			continue
		}
		keep(list.Streams)
	}
	merged := make([]manager.Info, 0, len(byID))
	for _, info := range byID {
		merged = append(merged, info)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	if len(failed) > 0 {
		sort.Strings(failed)
		w.Header().Set("X-CAD-Partial", strings.Join(failed, ","))
	}
	writeJSON(w, http.StatusOK, StreamListResponse{Streams: pageSlice(merged, p)})
}

// scatterIncidents merges the incident stores of every live member,
// re-sorted with the fleet's ordering (OpenedAt desc, id desc) and paged
// by the caller. Incident ids are node-scoped ("inc-1" can exist on two
// nodes for different episodes), so entries are NOT deduplicated by id —
// each represents a distinct correlation on its node.
func (s *Service) scatterIncidents(w http.ResponseWriter, r *http.Request, state string, p page) {
	merged := s.fleet.Incidents(state)
	target := fmt.Sprintf("/v1/incidents?limit=%d", scatterLimit)
	if state != "" {
		target += "&state=" + state
	}
	var failed []string
	for _, pr := range s.cluster.ScatterGet(r.Context(), target) {
		var list IncidentListResponse
		if !pr.OK() || json.Unmarshal(pr.Body, &list) != nil {
			failed = append(failed, pr.Peer.ID)
			continue
		}
		merged = append(merged, list.Incidents...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].OpenedAt.Equal(merged[j].OpenedAt) {
			return merged[i].OpenedAt.After(merged[j].OpenedAt)
		}
		return merged[i].ID > merged[j].ID
	})
	if merged == nil {
		merged = []alert.Incident{}
	}
	if len(failed) > 0 {
		sort.Strings(failed)
		w.Header().Set("X-CAD-Partial", strings.Join(failed, ","))
	}
	writeJSON(w, http.StatusOK, IncidentListResponse{Incidents: pageSlice(merged, p)})
}

// scatterIncident looks an incident id up across the peers after a local
// miss, passing the first hit through verbatim.
func (s *Service) scatterIncident(w http.ResponseWriter, r *http.Request, id string) bool {
	for _, pr := range s.cluster.ScatterGet(r.Context(), "/v1/incidents/"+id) {
		if pr.OK() {
			w.Header().Set(cluster.HeaderNode, pr.Peer.ID)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(pr.Body)
			return true
		}
	}
	return false
}

// handleFleetEvents serves GET /v1/events: one SSE feed of every alert
// event in the fleet, in the versioned envelope. On a single node it is
// the whole-bus feed; on a cluster member it additionally fans in each
// live peer's shard-local /v1/events, so one subscription observes every
// node's alarms, anomaly transitions, and incidents. SSE ids are the
// originating node's bus sequence numbers and are therefore only ordered
// per node.
func (s *Service) handleFleetEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if s.alerts == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "alerting is not enabled")
		return
	}
	rc := http.NewResponseController(w)
	sub := s.alerts.Subscribe("", sseBuffer)
	defer sub.Close()
	ctx := r.Context()
	var peerEvents chan alert.Event // nil (never ready) when not fanning in
	if s.scatterActive(r) {
		peerEvents = make(chan alert.Event, sseBuffer)
		for _, p := range s.cluster.AlivePeers() {
			go func(p cluster.Node) {
				_ = s.cluster.StreamPeerEvents(ctx, p, "/v1/events", peerEvents)
			}(p)
		}
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}
	write := func(ev alert.Event) bool {
		data, err := alert.EncodeEvent(ev)
		if err != nil {
			return true
		}
		_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if !write(ev) {
				return
			}
		case ev := <-peerEvents:
			if !write(ev) {
				return
			}
		}
	}
}
