package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cad/internal/core"
	"cad/internal/mts"
	"cad/internal/obs"
)

func scrapeMetrics(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	return rec.Body.String()
}

func TestMetricsEndpoint(t *testing.T) {
	det := testDetector(t)
	svc := New(det, 10)
	h := svc.Handler()
	rng := rand.New(rand.NewSource(2))

	for tick := 0; tick < 120; tick++ {
		rec := postJSON(t, h, "/ingest", IngestRequest{Readings: column(rng, tick, false)})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d: status %d: %s", tick, rec.Code, rec.Body)
		}
	}

	out := scrapeMetrics(t, h)
	// 120 ticks at w=30, s=3 complete (120-30)/3+1 = 31 rounds.
	for _, want := range []string{
		"# TYPE cad_tsg_build_seconds histogram",
		`cad_tsg_build_seconds_count{stream="default"} 31`,
		`cad_louvain_seconds_count{stream="default"} 31`,
		`cad_advance_seconds_count{stream="default"} 31`,
		`cad_rounds_total{stream="default"} 31`,
		"# TYPE cad_alarms_total counter",
		"# TYPE cad_history_mu gauge",
		"# TYPE cad_history_sigma gauge",
		"# TYPE cad_streams_resident gauge",
		`http_requests_total{code="200",method="POST",path="/ingest"} 120`,
		`http_request_duration_seconds_count{path="/ingest"} 120`,
		"# TYPE http_requests_in_flight gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestFirstNonFinite(t *testing.T) {
	cases := []struct {
		xs   []float64
		want int
	}{
		{nil, -1},
		{[]float64{1, 2, 3}, -1},
		{[]float64{1, math.NaN(), 3}, 1},
		{[]float64{math.Inf(1)}, 0},
		{[]float64{0, 0, math.Inf(-1)}, 2},
	}
	for i, c := range cases {
		if got := firstNonFinite(c.xs); got != c.want {
			t.Errorf("case %d: firstNonFinite = %d, want %d", i, got, c.want)
		}
	}
}

func TestIngestRejectsNonFinite(t *testing.T) {
	det := testDetector(t)
	svc := New(det, 10)
	h := svc.Handler()

	// Over JSON a non-finite literal cannot survive decoding: it is
	// rejected before reaching the streamer, as a bad-JSON 400.
	for i, body := range []string{
		`{"readings":[0,0,0,1e999,0,0,0,0]}`,
		`{"readings":[0,0,0,-1e999,0,0,0,0]}`,
		`{nope`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400: %s", i, rec.Code, rec.Body)
		}
	}
	// Rejected columns must not consume ticks or touch the streamer.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/status", nil))
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 0 {
		t.Errorf("ticks = %d after only rejected columns, want 0", st.Ticks)
	}
	out := scrapeMetrics(t, h)
	if want := `cad_ingest_rejected_total{reason="badjson",stream="default"} 3`; !strings.Contains(out, want) {
		t.Errorf("/metrics missing %q:\n%s", want, out)
	}
}

func TestDetectRejectsNonFiniteCSV(t *testing.T) {
	det := testDetector(t)
	svc := New(det, 10)
	h := svc.Handler()

	// CSV is the path whose parser accepts NaN/Inf tokens verbatim.
	var b strings.Builder
	b.WriteString("a,b\n")
	for i := 0; i < 40; i++ {
		if i == 20 {
			b.WriteString("NaN,1\n")
			continue
		}
		fmt.Fprintf(&b, "%d,%d\n", i%7, (i+3)%5)
	}
	req := httptest.NewRequest(http.MethodPost, "/detect", strings.NewReader(b.String()))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "non-finite") {
		t.Errorf("error should mention non-finite readings: %s", rec.Body)
	}
	out := scrapeMetrics(t, h)
	if want := `cad_ingest_rejected_total{reason="nonfinite",stream="default"} 1`; !strings.Contains(out, want) {
		t.Errorf("/metrics missing %q:\n%s", want, out)
	}
}

// TestServiceConcurrency hammers every endpoint from parallel clients; run
// under -race it proves the service's locking and the registry's atomics.
func TestServiceConcurrency(t *testing.T) {
	det := testDetector(t)
	svc := New(det, 32)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	get := func(path string) {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}
	for _, path := range []string{"/status", "/alarms", "/anomalies", "/metrics"} {
		wg.Add(1)
		go get(path)
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 60; i++ {
				buf, _ := json.Marshal(IngestRequest{Readings: column(rng, i, false)})
				resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader(string(buf)))
				if err != nil {
					t.Errorf("POST /ingest: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/status", nil))
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 4*60 {
		t.Errorf("ticks = %d, want %d", st.Ticks, 4*60)
	}
}

// TestStreamedWithTransientErrorsMatchesBatch streams a series through
// /ingest while interleaving rejected columns (NaN readings and wrong
// arity) and checks the per-round results still match the batch Detect path
// on the clean series: transient boundary errors must leave the streaming
// state untouched.
func TestStreamedWithTransientErrorsMatchesBatch(t *testing.T) {
	newDet := func() *core.Detector {
		t.Helper()
		cfg := core.Config{
			Window: mts.Windowing{W: 30, S: 3}, K: 3, Tau: 0.4, Theta: 0.2,
			Eta: 3, SigmaFloor: 0.5, MinHistory: 8, RCMode: core.RCSliding, RCHorizon: 5,
		}
		det, err := core.NewDetector(8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return det
	}

	const ticks = 360
	rng := rand.New(rand.NewSource(3))
	cols := make([][]float64, ticks)
	rows := make([][]float64, 8)
	for i := range rows {
		rows[i] = make([]float64, ticks)
	}
	for tick := 0; tick < ticks; tick++ {
		cols[tick] = column(rng, tick, tick >= 180 && tick < 270)
		for i, v := range cols[tick] {
			rows[i][tick] = v
		}
	}
	series, err := mts.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}

	batchRes, err := newDet().Detect(series)
	if err != nil {
		t.Fatal(err)
	}

	svc := New(newDet(), 1024)
	h := svc.Handler()
	var got []IngestResponse
	for tick := 0; tick < ticks; tick++ {
		// Interleave columns the boundary must reject without side effects.
		if tick%11 == 5 {
			req := httptest.NewRequest(http.MethodPost, "/ingest",
				strings.NewReader(`{"readings":[0,0,0,1e999,0,0,0,0]}`))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("tick %d: overflow column: status %d, want 400", tick, rec.Code)
			}
		}
		if tick%17 == 2 {
			if rec := postJSON(t, h, "/ingest", IngestRequest{Readings: []float64{1, 2}}); rec.Code != http.StatusBadRequest {
				t.Fatalf("tick %d: short column: status %d, want 400", tick, rec.Code)
			}
		}
		rec := postJSON(t, h, "/ingest", IngestRequest{Readings: cols[tick]})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d: status %d: %s", tick, rec.Code, rec.Body)
		}
		var resp IngestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.RoundCompleted {
			got = append(got, resp)
		}
	}

	if len(got) != len(batchRes.Rounds) {
		t.Fatalf("streamed %d rounds, batch %d", len(got), len(batchRes.Rounds))
	}
	for i, rep := range batchRes.Rounds {
		if got[i].Abnormal != rep.Abnormal {
			t.Errorf("round %d: streamed abnormal=%v batch=%v", i, got[i].Abnormal, rep.Abnormal)
		}
		if rep.Abnormal && got[i].Variations != rep.Variations {
			t.Errorf("round %d: streamed n_r=%d batch=%d", i, got[i].Variations, rep.Variations)
		}
	}
	for _, reason := range []string{"badjson", "stream"} {
		if fails := svc.Registry().Counter("cad_ingest_rejected_total", "",
			obs.Label{Name: "reason", Value: reason},
			obs.Label{Name: "stream", Value: DefaultStream}).Value(); fails == 0 {
			t.Errorf("expected %s rejections to be counted", reason)
		}
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	svc := New(testDetector(t), 10)
	h := svc.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: status %d, want 405", rec.Code)
	}
	out := scrapeMetrics(t, h)
	if want := fmt.Sprintf("http_requests_total{code=%q,method=%q,path=%q} 1", "405", "POST", "/metrics"); !strings.Contains(out, want) {
		t.Errorf("/metrics missing %q:\n%s", want, out)
	}
}
