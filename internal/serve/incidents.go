package serve

import (
	"fmt"
	"net/http"
	"time"

	"cad/internal/alert"
)

// IncidentListResponse is the GET /v1/incidents payload: fleet-level
// incident snapshots, newest first.
type IncidentListResponse struct {
	Incidents []alert.Incident `json:"incidents"`
}

// handleIncidents serves GET /v1/incidents: the fleet correlator's
// incident store, newest first. ?state=open|closed filters by lifecycle
// state; ?limit=/?offset= page with the uniform contract (default 50).
// Answers 404 unless the service was built with a fleet pipeline
// (Options.Fleet or a manager that carries one).
func (s *Service) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "fleet correlation is not enabled")
		return
	}
	state := r.URL.Query().Get("state")
	switch state {
	case "", "open", "closed":
	default:
		writeError(w, http.StatusBadRequest, CodeBadQuery, "bad state %q: want open or closed", state)
		return
	}
	p, ok := parsePage(w, r, 50)
	if !ok {
		return
	}
	if s.scatterActive(r) {
		s.scatterIncidents(w, r, state, p)
		return
	}
	incidents := s.fleet.Incidents(state)
	if incidents == nil {
		incidents = []alert.Incident{}
	}
	writeJSON(w, http.StatusOK, IncidentListResponse{Incidents: pageSlice(incidents, p)})
}

// handleIncident serves GET /v1/incidents/{id}: one incident snapshot
// with its full onset-ordered suspect list.
func (s *Service) handleIncident(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "fleet correlation is not enabled")
		return
	}
	id := r.PathValue("id")
	inc, ok := s.fleet.Incident(id)
	if !ok {
		// Incidents are node-scoped; a miss here may be a hit on a peer.
		if s.scatterActive(r) && s.scatterIncident(w, r, id) {
			return
		}
		writeError(w, http.StatusNotFound, CodeIncidentNotFound, "incident %q not found", id)
		return
	}
	writeJSON(w, http.StatusOK, inc)
}

// handleIncidentEvents serves GET /v1/incidents/events: a Server-Sent
// Events feed of incident transitions (incident_opened, incident_updated,
// incident_closed) across every stream, in the same unified v1 envelope
// the per-stream feed uses. It subscribes to the whole bus and filters,
// because incidents are fleet-scoped: their events carry no single
// originating stream.
func (s *Service) handleIncidentEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "fleet correlation is not enabled")
		return
	}
	if s.alerts == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "alerting is not enabled")
		return
	}
	rc := http.NewResponseController(w)
	sub := s.alerts.Subscribe("", sseBuffer)
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			switch ev.Type {
			case alert.TypeIncidentOpened, alert.TypeIncidentUpdated, alert.TypeIncidentClosed:
			default:
				continue
			}
			data, err := alert.EncodeEvent(ev)
			if err != nil {
				continue
			}
			_ = rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}
