// Package serve exposes a multi-tenant fleet of streaming CAD detectors
// over a versioned HTTP API: operators create named streams, data
// collectors POST columns of sensor readings (singly or as NDJSON
// batches), and dashboards poll per-stream status, alarms, and assembled
// anomalies. It is the ingestion front-end cmd/cadserve wires up, built on
// internal/manager's sharded locking so traffic to one stream never
// serializes behind a detection round on another.
//
// Versioned API (one stream per tenant, {id} is 1–64 chars of [A-Za-z0-9._-]):
//
//	POST   /v1/streams                    {"id","sensors","config"?}  → 201 (200 when restored from a snapshot)
//	GET    /v1/streams                                                → list of known streams (active + snapshotted)
//	POST   /v1/streams/{id}/ingest        {"readings":[…]} or NDJSON  → ingest result(s)
//	GET    /v1/streams/{id}               alias of …/status           → stream health
//	GET    /v1/streams/{id}/status                                    → stream health
//	GET    /v1/streams/{id}/alarms?limit=N&offset=M                   → recent abnormal rounds (offset pages backwards)
//	GET    /v1/streams/{id}/anomalies?limit=N&offset=M                → assembled anomalies (same paging as /alarms)
//	GET    /v1/streams/{id}/events                                    → live SSE feed of alert events
//	DELETE /v1/streams/{id}                                           → remove the stream and its snapshot
//	POST   /v1/sinks                      {"name","type",…}           → register an alert sink (201)
//	GET    /v1/sinks                                                  → registered sinks with delivery stats
//	DELETE /v1/sinks/{name}                                           → unregister a sink (drains its queue)
//	GET    /v1/incidents?limit&offset&state=open|closed               → fleet-level incidents, newest first
//	GET    /v1/incidents/{id}                                         → one incident with onset-ordered suspects
//	GET    /v1/incidents/events                                       → live SSE feed of incident transitions
//	GET    /v1/events                                                 → fleet-wide SSE feed (fans in peers when clustered)
//	GET    /v1/cluster                                                → membership, ring size, per-peer liveness
//	POST   /v1/cluster/handoff            migration bundle            → peer-to-peer stream adoption (internal)
//	POST   /v1/detect                     CSV body                    → one-shot batch detection
//	GET    /version                                                   → build identity (module version, VCS revision)
//
// The SSE and sink routes answer 404 unless the service was built with an
// alert bus (Options.Alerts); the incident routes answer 404 unless a fleet
// correlator is wired (Options.Fleet, or a manager carrying one). GET
// /v1/streams also reports the build in an X-CAD-Version header.
//
// When the service is built with a cluster (Options.Cluster), every node
// answers the full API for any stream: stream-scoped writes and reads are
// transparently proxied to the consistent-hash owner, collection reads
// (/v1/streams, alarms, anomalies, incidents) scatter-gather across the
// live membership, and /v1/events fans in every peer's feed. Responses name
// the node that actually served them in an X-CAD-Node header; forwarded
// requests carry X-CAD-Forwarded-By (single-hop — a receiver always serves
// locally) and scatter responses list unreachable peers in X-CAD-Partial.
// The "default" stream is node-local and never routed. An unreachable owner
// yields 503 cluster_unavailable; an undecodable migration bundle on
// /v1/cluster/handoff yields 400 bad_handoff.
//
// The legacy unversioned routes (/ingest, /status, /alarms, /anomalies,
// /detect) are deprecated thin delegates to the /v1 handlers on the
// "default" stream: single-detector deployments keep working unchanged,
// but every response carries Deprecation/Sunset/Link headers naming the
// /v1 successor and hits are counted in cad_legacy_requests_total (the
// removal horizon is documented in README). GET /metrics serves the
// Prometheus text exposition. GET /healthz reports liveness (always 200
// while the process serves) and GET /readyz readiness: 503 with the cause
// once the manager lost durability and degraded to memory-only operation,
// so orchestrators can route traffic away from a replica that would forget
// its streams on the next restart. /readyz also breaks readiness down per
// subsystem ("wal", "fleet", "cluster" — ok/degraded/disabled with a
// reason), and down cluster peers degrade the cluster subsystem without
// unreadying the node: its own shard still serves.
//
// Every non-2xx response carries one structured JSON error envelope,
//
//	{"error": {"code": "stream_not_found", "message": "…"}}
//
// with stable machine-readable codes (bad_json, bad_readings, bad_csv,
// bad_config, bad_query, bad_stream_id, bad_sink, batch_too_large,
// stream_not_found, stream_exists, incident_not_found, sink_exists,
// sink_not_found, capacity_exhausted, cluster_unavailable, bad_handoff,
// method_not_allowed, not_found, internal). Listing routes share one ?limit=/?offset= contract (see
// parsePage): limit must be positive when present, offset non-negative,
// and paging past the end yields an empty page.
//
// Stream lifecycle: a created stream is resident until the registry hits
// its capacity bound or the stream sits idle past the TTL; it is then
// evicted — its full streaming state (detector, in-flight window, tracker,
// alarm history) snapshotted to disk — and transparently restored on the
// next access, resuming mid-window with bit-identical round reports and no
// repeated warm-up. Ingested readings must be finite; a column containing
// NaN or ±Inf is rejected with 400 before it can poison the Pearson
// correlations of the following rounds.
//
// Every handler is wrapped in obs.Middleware, so the /metrics endpoint
// exports per-endpoint request counts (http_requests_total), latencies
// (http_request_duration_seconds), and an in-flight gauge alongside the
// per-stream detector pipeline metrics: cad_tsg_build_seconds,
// cad_louvain_seconds, cad_advance_seconds, cad_rounds_total,
// cad_alarms_total, cad_round_variations, cad_history_mu,
// cad_history_sigma (all labeled {stream}), the registry metrics
// cad_streams_resident, cad_stream_evictions_total,
// cad_stream_restores_total, cad_stream_snapshot_errors_total, and
// cad_ingest_rejected_total{stream,reason}.
package serve

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strings"

	"cad/internal/alert"
	"cad/internal/cluster"
	"cad/internal/core"
	"cad/internal/fleet"
	"cad/internal/manager"
	"cad/internal/mts"
	"cad/internal/obs"
)

// DefaultStream is the stream id the legacy unversioned routes operate on.
const DefaultStream = "default"

// maxBatchColumns caps one NDJSON ingest request; larger batches are
// rejected with batch_too_large before any column is applied.
const maxBatchColumns = 10000

// Alarm is one abnormal round kept in a stream's ring buffer.
type Alarm = manager.Alarm

// Status is the stream-health payload of GET /status and /v1/…/status.
type Status = manager.StreamStatus

// Service routes HTTP traffic onto a stream manager. Safe for concurrent
// use.
type Service struct {
	mgr    *manager.Manager
	reg    *obs.Registry
	logger *slog.Logger
	alerts *alert.Bus
	fleet  *fleet.Fleet
	// cluster, when non-nil, turns this node into a cluster member: writes
	// route to their ring owner, collection reads scatter-gather, and the
	// /v1/cluster routes come alive.
	cluster *cluster.Cluster
}

// Options configures optional service dependencies.
type Options struct {
	// Manager, when non-nil, is the stream registry to serve (cadserve
	// builds one with capacity/TTL/snapshot flags). Nil creates a private
	// manager with defaults.
	Manager *manager.Manager
	// MaxAlarms bounds the alarm/anomaly ring buffers of the private
	// manager (≤ 0 means 256); ignored when Manager is given.
	MaxAlarms int
	// Registry receives the service and detector metrics of the private
	// manager; ignored when Manager is given (its registry wins).
	Registry *obs.Registry
	// Logger, when non-nil, gets one structured line per HTTP request.
	Logger *slog.Logger
	// Alerts, when non-nil, enables the push-delivery routes: the SSE
	// event feed and the sink CRUD. Pass the same bus the manager
	// publishes into.
	Alerts *alert.Bus
	// Fleet, when non-nil, enables the /v1/incidents routes. Nil falls
	// back to the fleet the manager was built with (if any).
	Fleet *fleet.Fleet
	// Cluster, when non-nil, makes this node a member of a cadserve
	// cluster: per-stream requests are transparently forwarded to the
	// stream's ring owner, collection reads scatter-gather across live
	// peers, and the /v1/cluster status and handoff routes are enabled.
	Cluster *cluster.Cluster
}

// New wraps det (already warmed up, if desired) as the default stream of a
// fresh manager, keeping up to maxAlarms recent alarms (≤ 0 means 256).
func New(det *core.Detector, maxAlarms int) *Service {
	return NewWithOptions(det, Options{MaxAlarms: maxAlarms})
}

// NewWithOptions is New with explicit dependencies. det is registered as
// the "default" stream the legacy routes serve; the manager must not
// already hold that id. The manager attaches a metrics observer to det, so
// the detector should not be shared with another service.
func NewWithOptions(det *core.Detector, o Options) *Service {
	mgr := o.Manager
	if mgr == nil {
		if o.Registry == nil {
			o.Registry = obs.NewRegistry()
		}
		mgr = manager.New(manager.Options{MaxAlarms: o.MaxAlarms, Registry: o.Registry})
	}
	if err := mgr.Adopt(DefaultStream, det); err != nil && !errors.Is(err, manager.ErrExists) {
		panic("serve: adopting the default stream: " + err.Error())
	}
	// ErrExists means startup recovery already restored a default stream
	// from disk; the recovered state (warm detector, alarm history) wins
	// over the caller's fresh detector.
	fl := o.Fleet
	if fl == nil {
		fl = mgr.Fleet()
	}
	return &Service{mgr: mgr, reg: mgr.Registry(), logger: o.Logger, alerts: o.Alerts, fleet: fl, cluster: o.Cluster}
}

// Registry returns the metrics registry the service reports into.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Manager returns the underlying stream manager.
func (s *Service) Manager() *manager.Manager { return s.mgr }

// routeLabel maps a request to a bounded path label for metrics: stream ids
// collapse into {id}, unknown paths into "other", so label cardinality
// stays fixed no matter what clients request.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/ingest", "/status", "/alarms", "/anomalies", "/detect", "/metrics",
		"/healthz", "/readyz", "/version", "/v1/streams", "/v1/sinks",
		"/v1/detect", "/v1/incidents", "/v1/incidents/events", "/v1/events",
		"/v1/cluster", "/v1/cluster/handoff":
		return p
	}
	if rest, ok := strings.CutPrefix(p, "/v1/sinks/"); ok {
		if rest != "" && !strings.Contains(rest, "/") {
			return "/v1/sinks/{name}"
		}
		return "other"
	}
	if rest, ok := strings.CutPrefix(p, "/v1/incidents/"); ok {
		if rest != "" && !strings.Contains(rest, "/") {
			return "/v1/incidents/{id}"
		}
		return "other"
	}
	if rest, ok := strings.CutPrefix(p, "/v1/streams/"); ok {
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			if rest != "" {
				return "/v1/streams/{id}"
			}
			return "other"
		}
		switch action := rest[i:]; action {
		case "/ingest", "/status", "/alarms", "/anomalies", "/events":
			return "/v1/streams/{id}" + action
		}
	}
	return "other"
}

// Handler returns the routed HTTP handler, wrapped with request metrics and
// (when a logger was configured) structured request logging.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	// Versioned multi-tenant API. Method dispatch happens inside the
	// handlers so 405s carry the structured envelope instead of the mux's
	// plain-text default.
	mux.HandleFunc("/v1/streams", s.handleStreams)
	mux.HandleFunc("/v1/streams/{id}", s.handleStream)
	mux.HandleFunc("/v1/streams/{id}/ingest", s.byID(s.handleIngest))
	mux.HandleFunc("/v1/streams/{id}/status", s.byID(s.handleStatus))
	mux.HandleFunc("/v1/streams/{id}/alarms", s.byID(s.handleAlarms))
	mux.HandleFunc("/v1/streams/{id}/anomalies", s.byID(s.handleAnomalies))
	mux.HandleFunc("/v1/streams/{id}/events", s.byID(s.handleEvents))
	mux.HandleFunc("/v1/sinks", s.handleSinks)
	mux.HandleFunc("/v1/sinks/{name}", s.handleSink)
	// Fleet-level incident correlation (404 unless a fleet is wired).
	mux.HandleFunc("/v1/incidents", s.handleIncidents)
	mux.HandleFunc("/v1/incidents/events", s.handleIncidentEvents)
	mux.HandleFunc("/v1/incidents/{id}", s.handleIncident)
	// One-shot batch detection under the versioned prefix.
	mux.HandleFunc("/v1/detect", s.handleDetect)
	// Cluster membership view, peer-to-peer stream handoff, and the
	// fleet-wide event feed (fans in peer feeds when clustered).
	mux.HandleFunc("/v1/cluster", s.handleCluster)
	mux.HandleFunc(cluster.HandoffPath, s.handleClusterHandoff)
	mux.HandleFunc("/v1/events", s.handleFleetEvents)
	// Legacy single-stream routes: deprecated thin delegates to the /v1
	// handlers on the default stream. Responses carry Deprecation/Sunset/
	// Link headers and traffic is counted per route so operators can see
	// who still depends on them before the removal horizon (see README).
	mux.HandleFunc("/ingest", s.deprecated("/v1/streams/{id}/ingest", s.onDefault(s.handleIngest)))
	mux.HandleFunc("/status", s.deprecated("/v1/streams/{id}/status", s.onDefault(s.handleStatus)))
	mux.HandleFunc("/alarms", s.deprecated("/v1/streams/{id}/alarms", s.onDefault(s.handleAlarms)))
	mux.HandleFunc("/anomalies", s.deprecated("/v1/streams/{id}/anomalies", s.onDefault(s.handleAnomalies)))
	mux.HandleFunc("/detect", s.deprecated("/v1/detect", s.handleDetect))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/version", s.handleVersion)
	mux.HandleFunc("/", s.handleNotFound)
	// Ingest routing sits inside the metrics middleware so forwarded
	// requests still count toward this node's per-route series.
	return obs.Middleware(s.routeToOwner(mux), s.reg, s.logger, routeLabel)
}

// byID adapts a stream handler to the /v1/streams/{id}/… routes.
func (s *Service) byID(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h(w, r, r.PathValue("id"))
	}
}

// onDefault adapts a stream handler to the legacy unversioned routes.
func (s *Service) onDefault(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h(w, r, DefaultStream)
	}
}

// legacySunset is the removal horizon for the unversioned routes,
// RFC 8594 HTTP-date form (documented in README).
const legacySunset = "Wed, 30 Jun 2027 00:00:00 GMT"

// deprecated marks a legacy unversioned route: every response carries
// Deprecation + Sunset headers and a Link to the /v1 successor route, and
// the hit is counted in cad_legacy_requests_total{route}. The delegate
// handler is otherwise unchanged, so existing clients keep working until
// the sunset date.
func (s *Service) deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hd := w.Header()
		hd.Set("Deprecation", "true")
		hd.Set("Sunset", legacySunset)
		hd.Set("Link", `<`+successor+`>; rel="successor-version"`)
		s.legacyRequests(r.URL.Path).Inc()
		h(w, r)
	}
}

func (s *Service) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, CodeNotFound, "no route for %s", r.URL.Path)
}

// handleMetrics guards the exposition handler so its 405 also carries the
// envelope.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	s.reg.Handler().ServeHTTP(w, r)
}

// SubsystemStatus is one subsystem's entry in the /readyz payload:
// "ok", "degraded" (with the reason), or "disabled" (not configured).
type SubsystemStatus struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// HealthResponse is the /healthz and /readyz payload. /readyz adds the
// per-subsystem breakdown so operators (and the cluster health checker)
// can tell WHY a node is degraded, not just that it is; the top-level
// Status/Reason pair keeps its original meaning for probes that only
// look there.
type HealthResponse struct {
	Status string `json:"status"`
	// Reason explains a not-ready verdict (e.g. why durability degraded).
	Reason string `json:"reason,omitempty"`
	// Subsystems details wal (durability), fleet (incident correlation),
	// and cluster (membership) health on /readyz.
	Subsystems map[string]SubsystemStatus `json:"subsystems,omitempty"`
}

// handleHealthz reports liveness: the process is up and serving requests.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// handleReadyz reports readiness with per-subsystem detail. Only lost
// durability makes the node unready (503): a manager that lost its WAL
// keeps ingesting from memory but would forget its streams on the next
// restart, so orchestrators should shift traffic away. Down cluster peers
// are reported under subsystems but do NOT unready this node — its own
// shard is fine, and marking the whole cluster unready because one member
// died would amplify the outage.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	resp := HealthResponse{Status: "ok", Subsystems: map[string]SubsystemStatus{}}
	status := http.StatusOK

	wal := SubsystemStatus{Status: "ok"}
	if !s.mgr.Durable() {
		wal.Status = "disabled"
	}
	if degraded, reason := s.mgr.Degraded(); degraded {
		wal = SubsystemStatus{Status: "degraded", Reason: reason}
		resp.Status = "degraded"
		resp.Reason = reason
		status = http.StatusServiceUnavailable
	}
	resp.Subsystems["wal"] = wal

	if s.fleet == nil {
		resp.Subsystems["fleet"] = SubsystemStatus{Status: "disabled"}
	} else {
		resp.Subsystems["fleet"] = SubsystemStatus{Status: "ok"}
	}

	if s.cluster == nil {
		resp.Subsystems["cluster"] = SubsystemStatus{Status: "disabled"}
	} else if down := s.cluster.DownPeers(); len(down) > 0 {
		resp.Subsystems["cluster"] = SubsystemStatus{
			Status: "degraded",
			Reason: "peers down: " + strings.Join(down, ", "),
		}
	} else {
		resp.Subsystems["cluster"] = SubsystemStatus{Status: "ok"}
	}
	writeJSON(w, status, resp)
}

// finiteOrZero maps NaN/Inf (e.g. μ before any round) to 0 so the status
// payload stays valid JSON.
func finiteOrZero(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// firstNonFinite returns the index of the first NaN/±Inf reading, or -1.
func firstNonFinite(xs []float64) int {
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// CreateStreamRequest is the POST /v1/streams body. Config is optional;
// without it the paper-recommended defaults for the sensor count are used.
// Unknown fields — including inside config — are rejected.
type CreateStreamRequest struct {
	ID      string       `json:"id"`
	Sensors int          `json:"sensors"`
	Config  *core.Config `json:"config"`
}

// handleStreams serves the collection route: POST creates, GET lists.
func (s *Service) handleStreams(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleCreateStream(w, r)
	case http.MethodGet:
		p, ok := parsePage(w, r, 0) // default: the full list
		if !ok {
			return
		}
		w.Header().Set("X-CAD-Version", versionHeader())
		if s.scatterActive(r) {
			s.scatterStreamList(w, r, p)
			return
		}
		writeJSON(w, http.StatusOK, StreamListResponse{Streams: pageSlice(s.mgr.List(), p)})
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or POST required")
	}
}

// StreamListResponse is the GET /v1/streams payload.
type StreamListResponse struct {
	Streams []manager.Info `json:"streams"`
}

func (s *Service) handleCreateStream(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req CreateStreamRequest
	if err := dec.Decode(&req); err != nil {
		if errors.Is(err, core.ErrBadConfig) || strings.Contains(err.Error(), "invalid config") {
			writeError(w, http.StatusBadRequest, CodeBadConfig, "config: %v", err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadJSON, "bad JSON: %v", err)
		return
	}
	cfg := core.DefaultConfig(req.Sensors, 10000)
	if req.Config != nil {
		cfg = *req.Config
	}
	restored, err := s.mgr.Create(req.ID, req.Sensors, cfg)
	if err != nil {
		writeStreamError(w, err)
		return
	}
	st, err := s.mgr.Status(req.ID)
	if err != nil {
		writeStreamError(w, err)
		return
	}
	code := http.StatusCreated
	if restored {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleStream serves the item route: GET is an alias of …/status, DELETE
// removes the stream and any snapshot of it.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		s.handleStatus(w, r, id)
	case http.MethodDelete:
		if err := s.mgr.Delete(id); err != nil {
			writeStreamError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or DELETE required")
	}
}

// IngestRequest is one column of the POST …/ingest body; an NDJSON body
// carries one object per column.
type IngestRequest struct {
	Readings []float64 `json:"readings"`
}

// IngestResponse reports what one column did.
type IngestResponse struct {
	Tick           int   `json:"tick"`
	RoundCompleted bool  `json:"roundCompleted"`
	Abnormal       bool  `json:"abnormal"`
	Variations     int   `json:"variations,omitempty"`
	Sensors        []int `json:"sensors,omitempty"`
}

// BatchIngestResponse reports an NDJSON batch: per-column results plus the
// round tally.
type BatchIngestResponse struct {
	Accepted        int              `json:"accepted"`
	RoundsCompleted int              `json:"roundsCompleted"`
	Results         []IngestResponse `json:"results"`
}

func ingestResponse(res manager.IngestResult) IngestResponse {
	out := IngestResponse{Tick: res.Tick, RoundCompleted: res.RoundCompleted}
	if res.RoundCompleted && res.Report.Abnormal {
		out.Abnormal = true
		out.Variations = res.Report.Variations
		out.Sensors = res.Report.Outliers
	}
	return out
}

// handleIngest accepts a single JSON column or an NDJSON batch of columns
// (whitespace-separated JSON objects). The whole request is validated
// before any column is applied, so a 400 never leaves the stream partially
// advanced.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	dec := json.NewDecoder(r.Body)
	var cols [][]float64
	for {
		var req IngestRequest
		err := dec.Decode(&req)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			s.ingestRejected(id, "badjson").Inc()
			writeError(w, http.StatusBadRequest, CodeBadJSON, "bad JSON at column %d: %v", len(cols), err)
			return
		}
		if len(cols) >= maxBatchColumns {
			writeError(w, http.StatusBadRequest, CodeBatchTooLarge, "batch exceeds %d columns", maxBatchColumns)
			return
		}
		cols = append(cols, req.Readings)
	}
	if len(cols) == 0 {
		s.ingestRejected(id, "badjson").Inc()
		writeError(w, http.StatusBadRequest, CodeBadJSON, "empty body: want a JSON column or an NDJSON batch")
		return
	}
	// Validate at the boundary: one NaN/Inf reading would silently poison
	// the Pearson correlations of every round whose window covers it. The
	// stdlib JSON decoder already refuses non-finite number literals, so
	// this also guards programmatic callers and future encodings.
	for c, col := range cols {
		if i := firstNonFinite(col); i >= 0 {
			s.ingestRejected(id, "nonfinite").Inc()
			writeError(w, http.StatusBadRequest, CodeBadReadings, "column %d: non-finite reading for sensor %d", c, i)
			return
		}
	}
	results, err := s.mgr.IngestBatch(id, cols)
	if err != nil {
		if errors.Is(err, manager.ErrBadColumn) {
			s.ingestRejected(id, "stream").Inc()
		}
		writeStreamError(w, err)
		return
	}
	if len(cols) == 1 {
		writeJSON(w, http.StatusOK, ingestResponse(results[0]))
		return
	}
	resp := BatchIngestResponse{Accepted: len(results), Results: make([]IngestResponse, 0, len(results))}
	for _, res := range results {
		if res.RoundCompleted {
			resp.RoundsCompleted++
		}
		resp.Results = append(resp.Results, ingestResponse(res))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	st, err := s.mgr.Status(id)
	if err != nil {
		writeStreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleAlarms serves the alarm ring buffer. ?limit= bounds the page size
// (default 50, capped at the ring size; 0 is rejected) and ?offset= skips
// the N most recent alarms, paging backwards through the ring.
func (s *Service) handleAlarms(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	p, ok := parsePage(w, r, 50)
	if !ok {
		return
	}
	alarms, err := s.mgr.Alarms(id, p.Limit, p.Offset)
	if err != nil {
		writeStreamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, alarms)
}

// AnomalyRecord is one completed streaming anomaly of GET …/anomalies.
type AnomalyRecord struct {
	Start      int     `json:"start"`
	End        int     `json:"end"`
	FirstRound int     `json:"firstRound"`
	LastRound  int     `json:"lastRound"`
	Score      float64 `json:"score"`
	// Sensors in root-cause order (earliest decorrelation first).
	Sensors []int `json:"sensors"`
}

// AnomaliesResponse is the GET …/anomalies payload.
type AnomaliesResponse struct {
	// Anomalies completed so far (bounded ring buffer).
	Anomalies []AnomalyRecord `json:"anomalies"`
	// Open reports whether an anomaly is in progress right now.
	Open bool `json:"open"`
}

// handleAnomalies serves the completed streaming anomalies assembled by the
// stream's tracker, newest last. Paging matches /alarms: ?limit= bounds the
// page size (default 50, capped at the ring size; 0 is rejected) and
// ?offset= skips the N most recent anomalies.
func (s *Service) handleAnomalies(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	p, ok := parsePage(w, r, 50)
	if !ok {
		return
	}
	anomalies, open, err := s.mgr.Anomalies(id, p.Limit, p.Offset)
	if err != nil {
		writeStreamError(w, err)
		return
	}
	resp := AnomaliesResponse{Anomalies: []AnomalyRecord{}, Open: open}
	for _, a := range anomalies {
		resp.Anomalies = append(resp.Anomalies, AnomalyRecord{
			Start: a.Start, End: a.End,
			FirstRound: a.FirstRound, LastRound: a.LastRound,
			Score: a.Score, Sensors: a.RootCauses(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// DetectResponse is the POST /detect payload.
type DetectResponse struct {
	Rounds    int           `json:"rounds"`
	Anomalies []BatchResult `json:"anomalies"`
}

// BatchResult is one anomaly of a batch detection.
type BatchResult struct {
	Start   int     `json:"start"`
	End     int     `json:"end"`
	Score   float64 `json:"score"`
	Sensors []int   `json:"sensors"`
}

// handleDetect runs a one-shot batch detection on an uploaded CSV with a
// fresh detector sharing the default stream's configuration. The streaming
// state is not touched.
func (s *Service) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	series, err := mts.ReadCSV(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadCSV, "bad CSV: %v", err)
		return
	}
	// CSV is the one ingestion path whose parser accepts "NaN"/"Inf"
	// tokens, so the finite-readings rule must hold here too.
	if series.HasNaN() {
		s.ingestRejected(DefaultStream, "nonfinite").Inc()
		writeError(w, http.StatusBadRequest, CodeBadReadings, "series contains non-finite readings")
		return
	}
	cfg, err := s.mgr.Config(DefaultStream)
	if err != nil {
		writeStreamError(w, err)
		return
	}
	det, err := core.NewDetector(series.Sensors(), cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadConfig, "detector: %v", err)
		return
	}
	res, err := det.Detect(series)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadConfig, "detect: %v", err)
		return
	}
	resp := DetectResponse{Rounds: len(res.Rounds), Anomalies: []BatchResult{}}
	for _, a := range res.Anomalies {
		resp.Anomalies = append(resp.Anomalies, BatchResult{
			Start: a.Start, End: a.End, Score: a.Score, Sensors: a.Sensors,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
