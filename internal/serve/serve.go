// Package serve exposes a streaming CAD detector over HTTP: data
// collectors POST one column of sensor readings at a time, the service runs
// CAD incrementally, and operators poll the detected anomalies and detector
// health. It is the ingestion front-end cmd/cadserve wires up.
//
// Endpoints:
//
//	POST /ingest     {"readings": [..n floats..]}       → ingest result
//	GET  /status                                        → detector health
//	GET  /alarms?limit=N                                → recent abnormal rounds
//	GET  /anomalies                                     → assembled anomalies
//	POST /detect     CSV body (sensors as columns)      → batch detection
//	GET  /metrics                                       → Prometheus text format
//
// Ingested readings must be finite; a column containing NaN or ±Inf is
// rejected with 400 before it can poison the Pearson correlations of the
// following rounds.
//
// Every handler is wrapped in obs.Middleware, so the /metrics endpoint
// exports per-endpoint request counts (http_requests_total), latencies
// (http_request_duration_seconds), and an in-flight gauge alongside the
// detector pipeline metrics: cad_tsg_build_seconds, cad_louvain_seconds,
// cad_advance_seconds, cad_rounds_total, cad_alarms_total,
// cad_round_variations, cad_history_mu, cad_history_sigma, and
// cad_ingest_rejected_total{reason}.
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cad/internal/core"
	"cad/internal/mts"
	"cad/internal/obs"
)

// Alarm is one abnormal round kept in the service's ring buffer.
type Alarm struct {
	// Round is the detector's global round counter at alarm time.
	Round int `json:"round"`
	// Tick is the ingest counter (columns received) when the alarm fired.
	Tick int `json:"tick"`
	// Variations is n_r, Score the normalized deviation.
	Variations int     `json:"variations"`
	Score      float64 `json:"score"`
	// Sensors are the outlier sensors O_r at the alarm round.
	Sensors []int `json:"sensors"`
	// Time is the wall-clock arrival of the alarming column.
	Time time.Time `json:"time"`
}

// Service wraps a streaming detector behind HTTP handlers. Safe for
// concurrent use.
type Service struct {
	mu        sync.Mutex
	det       *core.Detector
	streamer  *core.Streamer
	tracker   *core.Tracker
	tick      int
	rounds    int
	alarms    []Alarm
	anomalies []core.Anomaly
	maxAlarm  int
	now       func() time.Time

	reg    *obs.Registry
	logger *slog.Logger
}

// Options configures optional service dependencies.
type Options struct {
	// MaxAlarms bounds the alarm/anomaly ring buffers (≤ 0 means 256).
	MaxAlarms int
	// Registry receives the service and detector metrics; nil creates a
	// private one (exposed via Registry / the /metrics endpoint).
	Registry *obs.Registry
	// Logger, when non-nil, gets one structured line per HTTP request.
	Logger *slog.Logger
}

// New wraps det (already warmed up, if desired) in a service that keeps up
// to maxAlarms recent alarms (≤ 0 means 256).
func New(det *core.Detector, maxAlarms int) *Service {
	return NewWithOptions(det, Options{MaxAlarms: maxAlarms})
}

// NewWithOptions is New with explicit observability dependencies. It
// attaches a metrics observer to det, so the detector should not be shared
// with another service.
func NewWithOptions(det *core.Detector, o Options) *Service {
	if o.MaxAlarms <= 0 {
		o.MaxAlarms = 256
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	s := &Service{
		det:      det,
		streamer: core.NewStreamer(det),
		tracker:  core.NewTracker(det.Config()),
		maxAlarm: o.MaxAlarms,
		now:      time.Now,
		reg:      o.Registry,
		logger:   o.Logger,
	}
	det.SetObserver(newDetectorMetrics(s.reg))
	return s
}

// Registry returns the metrics registry the service reports into.
func (s *Service) Registry() *obs.Registry { return s.reg }

// routeLabel maps a request to a bounded path label for metrics; unknown
// paths collapse into "other" so label cardinality stays fixed.
func routeLabel(r *http.Request) string {
	switch r.URL.Path {
	case "/ingest", "/status", "/alarms", "/anomalies", "/detect", "/metrics":
		return r.URL.Path
	default:
		return "other"
	}
}

// Handler returns the routed HTTP handler, wrapped with request metrics and
// (when a logger was configured) structured request logging.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/alarms", s.handleAlarms)
	mux.HandleFunc("/anomalies", s.handleAnomalies)
	mux.HandleFunc("/detect", s.handleDetect)
	mux.Handle("/metrics", s.reg.Handler())
	return obs.Middleware(mux, s.reg, s.logger, routeLabel)
}

// finiteOrZero maps NaN/Inf (e.g. μ before any round) to 0 so the status
// payload stays valid JSON.
func finiteOrZero(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// firstNonFinite returns the index of the first NaN/±Inf reading, or -1.
func firstNonFinite(xs []float64) int {
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// IngestRequest is the POST /ingest body.
type IngestRequest struct {
	Readings []float64 `json:"readings"`
}

// IngestResponse reports what one column did.
type IngestResponse struct {
	Tick           int   `json:"tick"`
	RoundCompleted bool  `json:"roundCompleted"`
	Abnormal       bool  `json:"abnormal"`
	Variations     int   `json:"variations,omitempty"`
	Sensors        []int `json:"sensors,omitempty"`
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.ingestRejected("badjson").Inc()
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// Validate at the boundary: one NaN/Inf reading would silently poison
	// the Pearson correlations of every round whose window covers it. The
	// stdlib JSON decoder already refuses non-finite number literals, so
	// this also guards programmatic callers and future encodings.
	if i := firstNonFinite(req.Readings); i >= 0 {
		s.ingestRejected("nonfinite").Inc()
		writeError(w, http.StatusBadRequest, "non-finite reading for sensor %d", i)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, done, err := s.streamer.Push(req.Readings)
	if err != nil {
		s.ingestRejected("stream").Inc()
		writeError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	s.tick++
	resp := IngestResponse{Tick: s.tick, RoundCompleted: done}
	if done {
		s.rounds++
		s.tracker.Push(rep)
		if finished := s.tracker.Drain(); len(finished) > 0 {
			s.anomalies = append(s.anomalies, finished...)
			if len(s.anomalies) > s.maxAlarm {
				s.anomalies = s.anomalies[len(s.anomalies)-s.maxAlarm:]
			}
		}
		if rep.Abnormal {
			resp.Abnormal = true
			resp.Variations = rep.Variations
			resp.Sensors = rep.Outliers
			s.alarms = append(s.alarms, Alarm{
				Round:      rep.Round,
				Tick:       s.tick,
				Variations: rep.Variations,
				Score:      rep.Score,
				Sensors:    rep.Outliers,
				Time:       s.now(),
			})
			if len(s.alarms) > s.maxAlarm {
				s.alarms = s.alarms[len(s.alarms)-s.maxAlarm:]
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Status is the GET /status payload.
type Status struct {
	Sensors     int     `json:"sensors"`
	Ticks       int     `json:"ticks"`
	Rounds      int     `json:"rounds"`
	TotalRounds int     `json:"totalRounds"` // including warm-up
	Mu          float64 `json:"mu"`
	Sigma       float64 `json:"sigma"`
	Alarms      int     `json:"alarms"`
	Window      int     `json:"window"`
	Step        int     `json:"step"`
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := s.det.Config()
	writeJSON(w, http.StatusOK, Status{
		Sensors:     s.det.Sensors(),
		Ticks:       s.tick,
		Rounds:      s.rounds,
		TotalRounds: s.det.Rounds(),
		Mu:          finiteOrZero(s.det.HistoryMean()),
		Sigma:       finiteOrZero(s.det.HistoryStdDev()),
		Alarms:      len(s.alarms),
		Window:      cfg.Window.W,
		Step:        cfg.Window.S,
	})
}

func (s *Service) handleAlarms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	limit := 50
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad limit %q", q)
			return
		}
		limit = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.alarms
	if len(out) > limit {
		out = out[len(out)-limit:]
	}
	// Copy under lock so the encoder works on a stable snapshot.
	snapshot := make([]Alarm, len(out))
	copy(snapshot, out)
	writeJSON(w, http.StatusOK, snapshot)
}

// AnomalyRecord is one completed streaming anomaly of GET /anomalies.
type AnomalyRecord struct {
	Start      int     `json:"start"`
	End        int     `json:"end"`
	FirstRound int     `json:"firstRound"`
	LastRound  int     `json:"lastRound"`
	Score      float64 `json:"score"`
	// Sensors in root-cause order (earliest decorrelation first).
	Sensors []int `json:"sensors"`
}

// AnomaliesResponse is the GET /anomalies payload.
type AnomaliesResponse struct {
	// Anomalies completed so far (bounded ring buffer).
	Anomalies []AnomalyRecord `json:"anomalies"`
	// Open reports whether an anomaly is in progress right now.
	Open bool `json:"open"`
}

// handleAnomalies serves the completed streaming anomalies assembled by the
// tracker, newest last.
func (s *Service) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := AnomaliesResponse{Anomalies: []AnomalyRecord{}, Open: s.tracker.Open()}
	for _, a := range s.anomalies {
		resp.Anomalies = append(resp.Anomalies, AnomalyRecord{
			Start: a.Start, End: a.End,
			FirstRound: a.FirstRound, LastRound: a.LastRound,
			Score: a.Score, Sensors: a.RootCauses(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// DetectResponse is the POST /detect payload.
type DetectResponse struct {
	Rounds    int           `json:"rounds"`
	Anomalies []BatchResult `json:"anomalies"`
}

// BatchResult is one anomaly of a batch detection.
type BatchResult struct {
	Start   int     `json:"start"`
	End     int     `json:"end"`
	Score   float64 `json:"score"`
	Sensors []int   `json:"sensors"`
}

// handleDetect runs a one-shot batch detection on an uploaded CSV with a
// fresh detector sharing this service's configuration. The streaming state
// is not touched.
func (s *Service) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	series, err := mts.ReadCSV(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad CSV: %v", err)
		return
	}
	// CSV is the one ingestion path whose parser accepts "NaN"/"Inf"
	// tokens, so the finite-readings rule must hold here too.
	if series.HasNaN() {
		s.ingestRejected("nonfinite").Inc()
		writeError(w, http.StatusBadRequest, "series contains non-finite readings")
		return
	}
	s.mu.Lock()
	cfg := s.det.Config()
	s.mu.Unlock()
	det, err := core.NewDetector(series.Sensors(), cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "detector: %v", err)
		return
	}
	res, err := det.Detect(series)
	if err != nil {
		writeError(w, http.StatusBadRequest, "detect: %v", err)
		return
	}
	resp := DetectResponse{Rounds: len(res.Rounds), Anomalies: []BatchResult{}}
	for _, a := range res.Anomalies {
		resp.Anomalies = append(resp.Anomalies, BatchResult{
			Start: a.Start, End: a.End, Score: a.Score, Sensors: a.Sensors,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
