package serve

import (
	"net/http"
	"strconv"
)

// page is the uniform ?limit=/?offset= contract shared by every listing
// route (/v1/streams, …/alarms, …/anomalies, /v1/incidents and their
// legacy delegates). Bounds and error codes are identical everywhere:
// limit, when present, must be a positive integer (limit=0 is rejected —
// an empty page is requested by offsetting past the end, not by asking
// for nothing); offset must be a non-negative integer; both reject
// non-numeric values with bad_query. An offset past the end of the
// collection yields an empty page, never an error.
type page struct {
	// Limit is the page size; ≤ 0 means "no bound" (only possible when
	// the route's default is unbounded, e.g. /v1/streams).
	Limit int
	// Offset skips the N first entries of the route's natural order.
	Offset int
}

// parsePage parses the pagination parameters against a route default.
// defLimit ≤ 0 means an absent ?limit= leaves the page unbounded. On a
// bad parameter it writes the bad_query envelope and returns ok=false.
func parsePage(w http.ResponseWriter, r *http.Request, defLimit int) (page, bool) {
	p := page{Limit: defLimit}
	q := r.URL.Query()
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, CodeBadQuery,
				"bad limit %q: want a positive integer", raw)
			return page{}, false
		}
		p.Limit = v
	}
	if raw := q.Get("offset"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, CodeBadQuery,
				"bad offset %q: want a non-negative integer", raw)
			return page{}, false
		}
		p.Offset = v
	}
	return p, true
}

// slice applies the page to an already-ordered slice: offset past the
// end yields an empty (non-nil) slice.
func pageSlice[T any](xs []T, p page) []T {
	if p.Offset >= len(xs) {
		return []T{}
	}
	xs = xs[p.Offset:]
	if p.Limit > 0 && len(xs) > p.Limit {
		xs = xs[:p.Limit]
	}
	return xs
}
