package serve

// Three-node cluster e2e: a ground-truthed scenario is replayed through a
// consistent-hash sharded cadserve cluster — streams created and ingested
// through arbitrary entry nodes, transparently forwarded to their owners —
// and every stream's alarms and anomalies must match a single-node run of
// the same series. Then one member drains out and its streams must resume
// on the survivors with no lost columns.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"cad/internal/alert"
	"cad/internal/cluster"
	"cad/internal/manager"
	"cad/internal/obs"
	"cad/internal/scenario"
)

// clusterNode is one in-process cadserve member.
type clusterNode struct {
	id  string
	ts  *httptest.Server
	cl  *cluster.Cluster
	mgr *manager.Manager
	svc *Service
	bus *alert.Bus
}

// startTestCluster boots n fully wired members on real listeners. The
// listeners exist before the clusters, so every member advertises a real
// URL; handlers are swapped in once the services are built.
func startTestCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	servers := make([]*httptest.Server, n)
	handlers := make([]*atomic.Value, n)
	members := make([]cluster.Node, n)
	for i := range servers {
		hv := &atomic.Value{}
		handlers[i] = hv
		servers[i] = httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hv.Load().(http.Handler).ServeHTTP(w, r)
		}))
		members[i] = cluster.Node{
			ID:  fmt.Sprintf("n%d", i),
			URL: "http://" + servers[i].Listener.Addr().String(),
		}
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		reg := obs.NewRegistry()
		bus, err := alert.NewBus(alert.Options{Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		mgr := manager.New(manager.Options{
			Capacity:  32,
			MaxAlarms: 256,
			Registry:  reg,
			Alerts:    bus,
			WALDir:    t.TempDir(),
			Fsync:     manager.FsyncNever,
		})
		peers := make([]cluster.Node, 0, n-1)
		for j, m := range members {
			if j != i {
				peers = append(peers, m)
			}
		}
		cl, err := cluster.New(cluster.Config{
			Self:      members[i].ID,
			Advertise: members[i].URL,
			Peers:     peers,
			Registry:  reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc := NewWithOptions(testDetector(t), Options{Manager: mgr, Alerts: bus, Cluster: cl, Registry: reg})
		handlers[i].Store(svc.Handler())
		servers[i].Start()
		nodes[i] = &clusterNode{id: members[i].ID, ts: servers[i], cl: cl, mgr: mgr, svc: svc, bus: bus}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.bus.Close()
		}
		for _, nd := range nodes {
			nd.ts.Close()
		}
	})
	return nodes
}

// httpJSON issues a request against a live server and decodes the JSON
// answer, returning the response for header checks.
func httpJSON(t *testing.T, method, url string, body io.Reader, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("%s %s = %d: %s", method, url, resp.StatusCode, buf)
	}
	if out != nil {
		if err := json.Unmarshal(buf, out); err != nil {
			t.Fatalf("%s %s: decode: %v\n%s", method, url, err, buf)
		}
	}
	return resp
}

// ndjsonBatches renders a scenario series as NDJSON ingest bodies.
func ndjsonBatches(t *testing.T, inst *scenario.Instance, batch int) []string {
	t.Helper()
	col := make([]float64, inst.Scenario.Sensors)
	var out []string
	for at := 0; at < inst.Series.Len(); at += batch {
		end := at + batch
		if end > inst.Series.Len() {
			end = inst.Series.Len()
		}
		var b strings.Builder
		for p := at; p < end; p++ {
			inst.Series.Column(p, col)
			buf, err := json.Marshal(IngestRequest{Readings: col})
			if err != nil {
				t.Fatal(err)
			}
			b.Write(buf)
			b.WriteByte('\n')
		}
		out = append(out, b.String())
	}
	return out
}

// alarmDecisions strips alarm timestamps: the cluster's clocks and the
// reference run's differ, but every decision field must match.
type alarmDecision struct {
	Round, Tick, Variations int
	Score                   float64
}

func decisionsOf(alarms []manager.Alarm) []alarmDecision {
	out := make([]alarmDecision, len(alarms))
	for i, a := range alarms {
		out[i] = alarmDecision{Round: a.Round, Tick: a.Tick, Variations: a.Variations, Score: a.Score}
	}
	return out
}

func TestClusterShardedScenarioEquivalence(t *testing.T) {
	s, ok := scenario.ByName("partial-sensor-dropout")
	if !ok {
		t.Fatal("partial-sensor-dropout missing from corpus")
	}
	inst, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.BaseConfig()
	batches := ndjsonBatches(t, inst, 300)
	streamIDs := []string{"scn-a", "scn-b", "scn-c", "scn-d", "scn-e", "scn-f"}

	// Single-node reference: the same series through one unclustered
	// service.
	refSvc := NewWithOptions(testDetector(t), Options{Manager: manager.New(manager.Options{MaxAlarms: 256})})
	refH := refSvc.Handler()
	rec := postJSON(t, refH, "/v1/streams", CreateStreamRequest{ID: "ref", Sensors: s.Sensors, Config: &cfg})
	if rec.Code != http.StatusCreated {
		t.Fatalf("reference create = %d: %s", rec.Code, rec.Body)
	}
	for _, body := range batches {
		req := httptest.NewRequest(http.MethodPost, "/v1/streams/ref/ingest", strings.NewReader(body))
		brec := httptest.NewRecorder()
		refH.ServeHTTP(brec, req)
		if brec.Code != http.StatusOK {
			t.Fatalf("reference batch = %d: %s", brec.Code, brec.Body)
		}
	}
	var refAlarms []manager.Alarm
	req := httptest.NewRequest(http.MethodGet, "/v1/streams/ref/alarms?limit=256", nil)
	arec := httptest.NewRecorder()
	refH.ServeHTTP(arec, req)
	if err := json.Unmarshal(arec.Body.Bytes(), &refAlarms); err != nil {
		t.Fatal(err)
	}
	if len(refAlarms) == 0 {
		t.Fatal("reference run produced no alarms; the equivalence check would be vacuous")
	}
	var refAnoms AnomaliesResponse
	req = httptest.NewRequest(http.MethodGet, "/v1/streams/ref/anomalies?limit=256", nil)
	arec = httptest.NewRecorder()
	refH.ServeHTTP(arec, req)
	if err := json.Unmarshal(arec.Body.Bytes(), &refAnoms); err != nil {
		t.Fatal(err)
	}

	nodes := startTestCluster(t, 3)
	byID := map[string]*clusterNode{}
	for _, nd := range nodes {
		byID[nd.id] = nd
	}

	// One whole-fleet SSE subscription on n2 must hear events from every
	// shard (its own bus plus the fan-in from both peers).
	fleetSSE := dialSSE(t, nodes[2].ts.URL+"/v1/events")

	// Create every stream through node 0; the router forwards each create
	// to its ring owner and names the serving node.
	owners := map[string]string{}
	for _, id := range streamIDs {
		buf, _ := json.Marshal(CreateStreamRequest{ID: id, Sensors: s.Sensors, Config: &cfg})
		resp := httpJSON(t, http.MethodPost, nodes[0].ts.URL+"/v1/streams", strings.NewReader(string(buf)), nil)
		owner, ok := nodes[0].cl.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		owners[id] = owner.ID
		if got := resp.Header.Get(cluster.HeaderNode); got != owner.ID {
			t.Fatalf("create %s served by %q, ring owner is %s", id, got, owner.ID)
		}
	}

	// The placement must actually shard: no single node owns everything,
	// and every stream is resident exactly on its owner.
	distinct := map[string]bool{}
	for _, o := range owners {
		distinct[o] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d streams landed on one node: %v", len(streamIDs), owners)
	}
	for id, o := range owners {
		for _, nd := range nodes {
			resident := false
			for _, info := range nd.mgr.List() {
				if info.ID == id {
					resident = true
				}
			}
			if resident != (nd.id == o) {
				t.Fatalf("stream %s resident on %s, owner is %s", id, nd.id, o)
			}
		}
	}

	// Replay the scenario into every stream, rotating the entry node so
	// most batches arrive via a non-owner and must be forwarded.
	for bi, body := range batches {
		for si, id := range streamIDs {
			entry := nodes[(bi+si)%len(nodes)]
			resp := httpJSON(t, http.MethodPost, entry.ts.URL+"/v1/streams/"+id+"/ingest", strings.NewReader(body), nil)
			if got := resp.Header.Get(cluster.HeaderNode); got != owners[id] {
				t.Fatalf("batch for %s served by %q, want owner %s", id, got, owners[id])
			}
		}
	}

	// Every stream, read through a non-owner entry node, matches the
	// single-node reference decision for decision.
	readVia := func(id string) *clusterNode {
		for _, nd := range nodes {
			if nd.id != owners[id] {
				return nd
			}
		}
		t.Fatalf("no non-owner for %s", id)
		return nil
	}
	for _, id := range streamIDs {
		entry := readVia(id)
		var alarms []manager.Alarm
		httpJSON(t, http.MethodGet, entry.ts.URL+"/v1/streams/"+id+"/alarms?limit=256", nil, &alarms)
		if !reflect.DeepEqual(decisionsOf(alarms), decisionsOf(refAlarms)) {
			t.Fatalf("stream %s alarms diverge from the single-node reference", id)
		}
		var anoms AnomaliesResponse
		httpJSON(t, http.MethodGet, entry.ts.URL+"/v1/streams/"+id+"/anomalies?limit=256", nil, &anoms)
		if !reflect.DeepEqual(anoms, refAnoms) {
			t.Fatalf("stream %s anomalies diverge: got %+v want %+v", id, anoms, refAnoms)
		}
		var st manager.StreamStatus
		httpJSON(t, http.MethodGet, entry.ts.URL+"/v1/streams/"+id+"/status", nil, &st)
		if st.Ticks != inst.Series.Len() {
			t.Fatalf("stream %s has %d ticks, want %d", id, st.Ticks, inst.Series.Len())
		}
	}

	// Scatter-gathered /v1/streams lists the whole fleet from any entry
	// node — the six sharded streams plus the node-local default — and
	// pages like the single-node listing.
	wantIDs := append([]string{DefaultStream}, streamIDs...)
	var list StreamListResponse
	httpJSON(t, http.MethodGet, nodes[1].ts.URL+"/v1/streams", nil, &list)
	gotIDs := make([]string, len(list.Streams))
	for i, info := range list.Streams {
		gotIDs[i] = info.ID
	}
	if !reflect.DeepEqual(gotIDs, wantIDs) {
		t.Fatalf("scattered stream list = %v, want %v", gotIDs, wantIDs)
	}
	var pageList StreamListResponse
	httpJSON(t, http.MethodGet, nodes[1].ts.URL+"/v1/streams?limit=3&offset=2", nil, &pageList)
	pagedIDs := make([]string, len(pageList.Streams))
	for i, info := range pageList.Streams {
		pagedIDs[i] = info.ID
	}
	if !reflect.DeepEqual(pagedIDs, wantIDs[2:5]) {
		t.Fatalf("scattered page = %v, want %v", pagedIDs, wantIDs[2:5])
	}

	// GET /v1/cluster reports the membership from every node's view.
	var cs ClusterResponse
	httpJSON(t, http.MethodGet, nodes[0].ts.URL+"/v1/cluster", nil, &cs)
	if cs.Self != "n0" || len(cs.Nodes) != 3 {
		t.Fatalf("/v1/cluster = %+v", cs)
	}
	for _, n := range cs.Nodes {
		if !n.Alive {
			t.Fatalf("/v1/cluster reports %s down in a healthy cluster", n.ID)
		}
	}

	// The fleet-wide SSE feed heard anomaly events from shards on peers of
	// n2, not just its own.
	waitFor(t, "fan-in of a peer shard's anomaly_opened on /v1/events", func() bool {
		for _, ev := range fleetSSE.snapshot() {
			if ev.Type == alert.TypeAnomalyOpened && owners[ev.Stream] != "" && owners[ev.Stream] != "n2" {
				return true
			}
		}
		return false
	})

	// --- Failover: drain one member and keep serving. ---

	// End the fleet SSE subscription first: its fan-in holds a streaming
	// request open against every peer, and httptest.Server.Close blocks
	// until in-flight requests finish.
	fleetSSE.resp.Body.Close()

	// Drain the node owning scn-a: every movable stream it holds is handed
	// to the surviving members as snapshot + WAL-tail bundles.
	victim := byID[owners["scn-a"]]
	moved, err := victim.cl.Drain(context.Background(), ClusterMover{Mgr: victim.mgr})
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if moved == 0 {
		t.Fatal("Drain moved no streams")
	}
	if got := len(ClusterMover{Mgr: victim.mgr}.List()); got != 0 {
		t.Fatalf("%d movable streams left on the drained node", got)
	}
	victim.ts.Close()
	var survivors []*clusterNode
	for _, nd := range nodes {
		if nd != victim {
			nd.cl.MarkDown(victim.id)
			survivors = append(survivors, nd)
		}
	}

	// Every stream is still served — the moved ones from their new owners,
	// with every column intact and the same alarm history.
	for _, id := range streamIDs {
		newOwner, ok := survivors[0].cl.Owner(id)
		if !ok || newOwner.ID == victim.id {
			t.Fatalf("stream %s still routed to the drained node", id)
		}
		var st manager.StreamStatus
		httpJSON(t, http.MethodGet, survivors[0].ts.URL+"/v1/streams/"+id+"/status", nil, &st)
		if st.Ticks != inst.Series.Len() {
			t.Fatalf("stream %s lost columns in the handoff: %d ticks, want %d", id, st.Ticks, inst.Series.Len())
		}
		var alarms []manager.Alarm
		httpJSON(t, http.MethodGet, survivors[1].ts.URL+"/v1/streams/"+id+"/alarms?limit=256", nil, &alarms)
		if !reflect.DeepEqual(decisionsOf(alarms), decisionsOf(refAlarms)) {
			t.Fatalf("stream %s alarms diverge after the handoff", id)
		}
	}

	// The scattered listing still covers the whole fleet (minus the dead
	// node's default stream) and ingest keeps flowing through survivors.
	var after StreamListResponse
	httpJSON(t, http.MethodGet, survivors[0].ts.URL+"/v1/streams", nil, &after)
	found := map[string]bool{}
	for _, info := range after.Streams {
		found[info.ID] = true
	}
	for _, id := range streamIDs {
		if !found[id] {
			t.Fatalf("stream %s missing from the post-drain listing %v", id, after.Streams)
		}
	}
	resp := httpJSON(t, http.MethodPost, survivors[1].ts.URL+"/v1/streams/scn-a/ingest", strings.NewReader(batches[0]), nil)
	if resp.Header.Get(cluster.HeaderNode) == victim.id {
		t.Fatal("post-drain ingest served by the drained node")
	}
	var st manager.StreamStatus
	httpJSON(t, http.MethodGet, survivors[0].ts.URL+"/v1/streams/scn-a/status", nil, &st)
	if st.Ticks != inst.Series.Len()+300 {
		t.Fatalf("post-drain ingest: %d ticks, want %d", st.Ticks, inst.Series.Len()+300)
	}
}
