package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cad/internal/core"
	"cad/internal/manager"
	"cad/internal/mts"
	"cad/internal/obs"
)

func testConfig() core.Config {
	return core.Config{
		Window: mts.Windowing{W: 30, S: 3}, K: 3, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8, RCMode: core.RCSliding, RCHorizon: 5,
	}
}

// newV1Service builds a service whose manager snapshots into a temp dir.
func newV1Service(t *testing.T, capacity int) *Service {
	t.Helper()
	mgr := manager.New(manager.Options{
		Capacity:    capacity,
		SnapshotDir: t.TempDir(),
		MaxAlarms:   64,
		Registry:    obs.NewRegistry(),
	})
	return NewWithOptions(testDetector(t), Options{Manager: mgr})
}

func createStream(t *testing.T, h http.Handler, id string) {
	t.Helper()
	cfg := testConfig()
	rec := postJSON(t, h, "/v1/streams", CreateStreamRequest{ID: id, Sensors: 8, Config: &cfg})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create %s = %d: %s", id, rec.Code, rec.Body)
	}
}

func TestV1StreamLifecycle(t *testing.T) {
	svc := newV1Service(t, 8)
	h := svc.Handler()

	createStream(t, h, "plant-a")

	// Duplicate create conflicts.
	cfg := testConfig()
	rec := postJSON(t, h, "/v1/streams", CreateStreamRequest{ID: "plant-a", Sensors: 8, Config: &cfg})
	wantEnvelope(t, rec, http.StatusConflict, CodeStreamExists)

	// Listing shows the default stream and the new one.
	recL := httptest.NewRecorder()
	h.ServeHTTP(recL, httptest.NewRequest(http.MethodGet, "/v1/streams", nil))
	if recL.Code != http.StatusOK {
		t.Fatalf("list = %d: %s", recL.Code, recL.Body)
	}
	var list StreamListResponse
	if err := json.Unmarshal(recL.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]string)
	for _, info := range list.Streams {
		ids[info.ID] = info.State
	}
	if ids[DefaultStream] != "active" || ids["plant-a"] != "active" {
		t.Errorf("list = %v", ids)
	}

	// Ingest and status on the new stream.
	rng := rand.New(rand.NewSource(11))
	for tick := 0; tick < 60; tick++ {
		rec := postJSON(t, h, "/v1/streams/plant-a/ingest", IngestRequest{Readings: column(rng, tick, false)})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d: %d: %s", tick, rec.Code, rec.Body)
		}
	}
	recS := httptest.NewRecorder()
	h.ServeHTTP(recS, httptest.NewRequest(http.MethodGet, "/v1/streams/plant-a/status", nil))
	var st Status
	if err := json.Unmarshal(recS.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "plant-a" || st.Ticks != 60 || st.Sensors != 8 {
		t.Errorf("status = %+v", st)
	}
	// GET /v1/streams/{id} is an alias of …/status.
	recA := httptest.NewRecorder()
	h.ServeHTTP(recA, httptest.NewRequest(http.MethodGet, "/v1/streams/plant-a", nil))
	var alias Status
	if err := json.Unmarshal(recA.Body.Bytes(), &alias); err != nil {
		t.Fatal(err)
	}
	if alias != st {
		t.Errorf("alias status = %+v, want %+v", alias, st)
	}

	// Delete, then every read 404s with the envelope.
	recD := httptest.NewRecorder()
	h.ServeHTTP(recD, httptest.NewRequest(http.MethodDelete, "/v1/streams/plant-a", nil))
	if recD.Code != http.StatusOK {
		t.Fatalf("delete = %d: %s", recD.Code, recD.Body)
	}
	for _, path := range []string{
		"/v1/streams/plant-a",
		"/v1/streams/plant-a/status",
		"/v1/streams/plant-a/alarms",
		"/v1/streams/plant-a/anomalies",
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		wantEnvelope(t, rec, http.StatusNotFound, CodeStreamNotFound)
	}
	recD = httptest.NewRecorder()
	h.ServeHTTP(recD, httptest.NewRequest(http.MethodDelete, "/v1/streams/plant-a", nil))
	wantEnvelope(t, recD, http.StatusNotFound, CodeStreamNotFound)
}

// TestV1ErrorEnvelopes hits every remaining failure path and checks each
// non-2xx body parses as the structured envelope with its stable code.
func TestV1ErrorEnvelopes(t *testing.T) {
	mgr := manager.New(manager.Options{Capacity: 2, MaxAlarms: 8, Registry: obs.NewRegistry()}) // no snapshot dir
	svc := NewWithOptions(testDetector(t), Options{Manager: mgr})
	h := svc.Handler()

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader(body)))
		return rec
	}

	// Unknown route.
	wantEnvelope(t, do(http.MethodGet, "/nope", ""), http.StatusNotFound, CodeNotFound)
	// Method errors on every v1 route.
	wantEnvelope(t, do(http.MethodDelete, "/v1/streams", ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	wantEnvelope(t, do(http.MethodPut, "/v1/streams/default", ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	wantEnvelope(t, do(http.MethodGet, "/v1/streams/default/ingest", ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	wantEnvelope(t, do(http.MethodPost, "/v1/streams/default/status", ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	wantEnvelope(t, do(http.MethodPost, "/v1/streams/default/alarms", ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	wantEnvelope(t, do(http.MethodPost, "/v1/streams/default/anomalies", ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	wantEnvelope(t, do(http.MethodPost, "/metrics", ""), http.StatusMethodNotAllowed, CodeMethodNotAllowed)
	// Create: undecodable body, unknown field, bad id, bad config.
	wantEnvelope(t, do(http.MethodPost, "/v1/streams", "{"), http.StatusBadRequest, CodeBadJSON)
	wantEnvelope(t, do(http.MethodPost, "/v1/streams", `{"id":"x","sensors":8,"nope":1}`), http.StatusBadRequest, CodeBadJSON)
	wantEnvelope(t, do(http.MethodPost, "/v1/streams", `{"id":"-bad","sensors":8}`), http.StatusBadRequest, CodeBadStreamID)
	wantEnvelope(t, do(http.MethodPost, "/v1/streams", `{"id":"x","sensors":1}`), http.StatusBadRequest, CodeBadConfig)
	wantEnvelope(t, do(http.MethodPost, "/v1/streams", `{"id":"x","sensors":8,"config":{"bogus":true}}`), http.StatusBadRequest, CodeBadConfig)
	// Unknown stream and syntactically invalid id on the item routes.
	wantEnvelope(t, do(http.MethodPost, "/v1/streams/ghost/ingest", `{"readings":[1,2,3,4,5,6,7,8]}`), http.StatusNotFound, CodeStreamNotFound)
	wantEnvelope(t, do(http.MethodGet, "/v1/streams/bad%20id/status", ""), http.StatusBadRequest, CodeBadStreamID)
	// Bad query parameters.
	wantEnvelope(t, do(http.MethodGet, "/v1/streams/default/alarms?limit=-3", ""), http.StatusBadRequest, CodeBadQuery)
	wantEnvelope(t, do(http.MethodGet, "/v1/streams/default/alarms?offset=no", ""), http.StatusBadRequest, CodeBadQuery)
	// Bad readings through the v1 ingest route.
	wantEnvelope(t, do(http.MethodPost, "/v1/streams/default/ingest", `{"readings":[1,2]}`), http.StatusBadRequest, CodeBadReadings)
	wantEnvelope(t, do(http.MethodPost, "/v1/streams/default/ingest", ""), http.StatusBadRequest, CodeBadJSON)
	// Capacity: the manager has room for 2 streams, "default" occupies one,
	// and without a snapshot directory nothing can be evicted.
	if rec := postJSON(t, h, "/v1/streams", CreateStreamRequest{ID: "second", Sensors: 8}); rec.Code != http.StatusCreated {
		t.Fatalf("create second = %d: %s", rec.Code, rec.Body)
	}
	wantEnvelope(t, postJSON(t, h, "/v1/streams", CreateStreamRequest{ID: "third", Sensors: 8}),
		http.StatusServiceUnavailable, CodeCapacityExhausted)
}

// TestV1TwoStreamsIndependent runs a healthy and a faulty stream side by
// side: the fault must alarm only on its own stream, and per-stream metric
// labels must keep the two apart.
func TestV1TwoStreamsIndependent(t *testing.T) {
	svc := newV1Service(t, 8)
	h := svc.Handler()
	createStream(t, h, "healthy")
	createStream(t, h, "faulty")

	rngH := rand.New(rand.NewSource(21))
	rngF := rand.New(rand.NewSource(22))
	for tick := 0; tick < 600; tick++ {
		recH := postJSON(t, h, "/v1/streams/healthy/ingest", IngestRequest{Readings: column(rngH, tick, false)})
		recF := postJSON(t, h, "/v1/streams/faulty/ingest", IngestRequest{Readings: column(rngF, tick, tick >= 300 && tick < 450)})
		if recH.Code != http.StatusOK || recF.Code != http.StatusOK {
			t.Fatalf("tick %d: healthy=%d faulty=%d", tick, recH.Code, recF.Code)
		}
	}
	status := func(id string) Status {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams/"+id+"/status", nil))
		var st Status
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := status("healthy"); st.Alarms != 0 {
		t.Errorf("healthy stream alarmed %d times", st.Alarms)
	}
	if st := status("faulty"); st.Alarms == 0 {
		t.Error("faulty stream never alarmed")
	}
	out := scrapeMetrics(t, h)
	if want := `cad_rounds_total{stream="healthy"}`; !strings.Contains(out, want) {
		t.Errorf("/metrics missing %q", want)
	}
	if want := `cad_rounds_total{stream="faulty"}`; !strings.Contains(out, want) {
		t.Errorf("/metrics missing %q", want)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `cad_alarms_total{stream="healthy"}`) && !strings.HasSuffix(line, " 0") {
			t.Errorf("healthy stream counted alarms: %s", line)
		}
	}
}

// TestV1NDJSONBatch ingests the same series once column-by-column and once
// as NDJSON batches; both paths must report identical rounds, and the batch
// response must tally them.
func TestV1NDJSONBatch(t *testing.T) {
	svc := newV1Service(t, 8)
	h := svc.Handler()
	createStream(t, h, "single")
	createStream(t, h, "batched")

	const ticks = 240
	rng := rand.New(rand.NewSource(31))
	cols := make([][]float64, ticks)
	for tick := range cols {
		cols[tick] = column(rng, tick, tick >= 120 && tick < 180)
	}

	var singles []IngestResponse
	for _, col := range cols {
		rec := postJSON(t, h, "/v1/streams/single/ingest", IngestRequest{Readings: col})
		if rec.Code != http.StatusOK {
			t.Fatalf("single ingest = %d: %s", rec.Code, rec.Body)
		}
		var resp IngestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		singles = append(singles, resp)
	}

	// Ship the same columns in NDJSON chunks of 50.
	var batched []IngestResponse
	for at := 0; at < ticks; at += 50 {
		end := at + 50
		if end > ticks {
			end = ticks
		}
		var body strings.Builder
		for _, col := range cols[at:end] {
			buf, err := json.Marshal(IngestRequest{Readings: col})
			if err != nil {
				t.Fatal(err)
			}
			body.Write(buf)
			body.WriteByte('\n')
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/streams/batched/ingest", strings.NewReader(body.String()))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch ingest = %d: %s", rec.Code, rec.Body)
		}
		var resp BatchIngestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Accepted != end-at {
			t.Fatalf("batch accepted %d columns, want %d", resp.Accepted, end-at)
		}
		rounds := 0
		for _, r := range resp.Results {
			if r.RoundCompleted {
				rounds++
			}
		}
		if rounds != resp.RoundsCompleted {
			t.Fatalf("batch tally %d rounds, results say %d", resp.RoundsCompleted, rounds)
		}
		batched = append(batched, resp.Results...)
	}

	if len(batched) != len(singles) {
		t.Fatalf("batched %d columns, single %d", len(batched), len(singles))
	}
	for i := range singles {
		if singles[i].Tick != batched[i].Tick ||
			singles[i].RoundCompleted != batched[i].RoundCompleted ||
			singles[i].Abnormal != batched[i].Abnormal ||
			singles[i].Variations != batched[i].Variations {
			t.Fatalf("column %d: single %+v, batched %+v", i, singles[i], batched[i])
		}
	}

	// A batch with one bad column is rejected whole: the stream must not
	// advance.
	before := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams/batched/status", nil))
		var st Status
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st.Ticks
	}()
	body := `{"readings":[1,1,1,1,1,1,1,1]}` + "\n" + `{"readings":[1,2]}` + "\n"
	req := httptest.NewRequest(http.MethodPost, "/v1/streams/batched/ingest", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusBadRequest, CodeBadReadings)
	if after := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams/batched/status", nil))
		var st Status
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st.Ticks
	}(); after != before {
		t.Errorf("rejected batch advanced ticks %d → %d", before, after)
	}
}

// TestV1EvictRestoreThroughAPI fills a capacity-2 manager so creating a
// third stream evicts the LRU one, then touches the evicted stream: it must
// come back transparently with its streaming state intact.
func TestV1EvictRestoreThroughAPI(t *testing.T) {
	svc := newV1Service(t, 2) // "default" + 1
	h := svc.Handler()
	createStream(t, h, "first")

	rng := rand.New(rand.NewSource(41))
	for tick := 0; tick < 100; tick++ {
		rec := postJSON(t, h, "/v1/streams/first/ingest", IngestRequest{Readings: column(rng, tick, false)})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d: %d: %s", tick, rec.Code, rec.Body)
		}
	}

	// "default" is now the LRU stream; creating a second tenant evicts it.
	createStream(t, h, "second")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/streams", nil))
	var list StreamListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	states := make(map[string]string)
	for _, info := range list.Streams {
		states[info.ID] = info.State
	}
	if states[DefaultStream] != "snapshotted" {
		t.Fatalf("expected the default stream evicted, list = %v", states)
	}

	// Touching the evicted stream restores it transparently.
	recS := httptest.NewRecorder()
	h.ServeHTTP(recS, httptest.NewRequest(http.MethodGet, "/status", nil))
	if recS.Code != http.StatusOK {
		t.Fatalf("status after restore = %d: %s", recS.Code, recS.Body)
	}
	// Re-creating an evicted stream restores it too (200, not 201), keeping
	// its ticks: make "first" the LRU resident, then push it out with a new
	// tenant.
	cfg := testConfig()
	recT := httptest.NewRecorder()
	h.ServeHTTP(recT, httptest.NewRequest(http.MethodGet, "/v1/streams/first/status", nil))
	if recT.Code != http.StatusOK {
		t.Fatalf("touch first = %d: %s", recT.Code, recT.Body)
	}
	recT = httptest.NewRecorder()
	h.ServeHTTP(recT, httptest.NewRequest(http.MethodGet, "/v1/streams/second/status", nil))
	if recT.Code != http.StatusOK {
		t.Fatalf("touch second = %d: %s", recT.Code, recT.Body)
	}
	recC := postJSON(t, h, "/v1/streams", CreateStreamRequest{ID: "third", Sensors: 8, Config: &cfg})
	if recC.Code != http.StatusCreated {
		t.Fatalf("create third = %d: %s", recC.Code, recC.Body)
	}
	recR := postJSON(t, h, "/v1/streams", CreateStreamRequest{ID: "first", Sensors: 8, Config: &cfg})
	if recR.Code != http.StatusOK {
		t.Fatalf("re-create of evicted stream = %d, want 200 (restored): %s", recR.Code, recR.Body)
	}
	var restored Status
	if err := json.Unmarshal(recR.Body.Bytes(), &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Ticks != 100 {
		t.Errorf("restored stream has %d ticks, want 100 (state lost?)", restored.Ticks)
	}
}

// TestLegacyRoutesShareDefaultStream proves the unversioned routes are thin
// delegates: state written through /ingest is visible through /v1 and vice
// versa.
func TestLegacyRoutesShareDefaultStream(t *testing.T) {
	svc := New(testDetector(t), 16)
	h := svc.Handler()
	rng := rand.New(rand.NewSource(51))
	for tick := 0; tick < 40; tick++ {
		path := "/ingest"
		if tick%2 == 1 {
			path = "/v1/streams/" + DefaultStream + "/ingest"
		}
		rec := postJSON(t, h, path, IngestRequest{Readings: column(rng, tick, false)})
		if rec.Code != http.StatusOK {
			t.Fatalf("tick %d via %s: %d: %s", tick, path, rec.Code, rec.Body)
		}
	}
	for _, path := range []string{"/status", "/v1/streams/" + DefaultStream + "/status"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		var st Status
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Ticks != 40 {
			t.Errorf("%s: ticks = %d, want 40", path, st.Ticks)
		}
	}
}

// TestBatchTooLarge sends more NDJSON columns than the cap allows.
func TestBatchTooLarge(t *testing.T) {
	svc := New(testDetector(t), 16)
	h := svc.Handler()
	var body strings.Builder
	for i := 0; i <= maxBatchColumns; i++ {
		body.WriteString(`{"readings":[0,0,0,0,0,0,0,0]}`)
		body.WriteByte('\n')
	}
	req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body.String()))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	wantEnvelope(t, rec, http.StatusBadRequest, CodeBatchTooLarge)
	// Nothing may have been applied.
	recS := httptest.NewRecorder()
	h.ServeHTTP(recS, httptest.NewRequest(http.MethodGet, "/status", nil))
	var st Status
	if err := json.Unmarshal(recS.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 0 {
		t.Errorf("oversized batch advanced ticks to %d", st.Ticks)
	}
}
