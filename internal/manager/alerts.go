package manager

import (
	"time"

	"cad/internal/alert"
	"cad/internal/core"
)

// emitRound advances the stream's anomaly numbering for one completed
// detection round and publishes the resulting alert events: the lifecycle
// transitions (opened on the first abnormal round, updated on every
// further one, closed when a normal round drains the assembled anomaly)
// plus a raw alarm event per abnormal round. The numbering always runs —
// it is persisted state, and a replayed stream must reach the same
// anomalySeq as the original run. Publishing is skipped without a bus and
// muted during WAL replay: the original run already notified, and
// at-least-once delivery does not license re-announcing every historic
// anomaly on each restart. Caller holds st.mu; Bus.Publish never blocks
// on a sink queue while holding bus-internal locks.
func (m *Manager) emitRound(st *stream, rep core.RoundReport, finished []core.Anomaly, t time.Time) {
	emit := m.alerts != nil && !st.muted
	if emit && t.IsZero() {
		t = m.now()
	}
	for _, a := range finished {
		id := st.openID
		if id == 0 {
			// The opening round predates anomaly numbering (a snapshot from
			// an older version); number it now so the closed event still
			// carries a usable dedup key.
			st.anomalySeq++
			id = st.anomalySeq
		}
		st.openID = 0
		if !emit {
			continue
		}
		m.alerts.Publish(alert.Event{
			Stream:    st.id,
			Type:      alert.TypeAnomalyClosed,
			Time:      t,
			AnomalyID: id,
			Round:     a.LastRound,
			Tick:      st.tick,
			Score:     a.Score,
			Sensors:   a.RootCauses(),
			Start:     a.Start,
			End:       a.End,
		})
	}
	if !rep.Abnormal {
		return
	}
	typ := alert.TypeAnomalyUpdated
	if st.openID == 0 {
		st.anomalySeq++
		st.openID = st.anomalySeq
		typ = alert.TypeAnomalyOpened
	}
	if !emit {
		return
	}
	ev := alert.Event{
		Stream:     st.id,
		Type:       typ,
		Time:       t,
		AnomalyID:  st.openID,
		Round:      rep.Round,
		Tick:       st.tick,
		Score:      rep.Score,
		Variations: rep.Variations,
		Sensors:    rep.Outliers,
	}
	m.alerts.Publish(ev)
	ev.Type = alert.TypeAlarm
	m.alerts.Publish(ev)
}

// emitDegraded publishes the durability_degraded transition. Called once
// per manager lifetime (degrade latches the reason).
func (m *Manager) emitDegraded(id, reason string) {
	if m.alerts == nil {
		return
	}
	m.alerts.Publish(alert.Event{
		Stream: id,
		Type:   alert.TypeDurabilityDegraded,
		Time:   m.now(),
		Reason: reason,
	})
}
