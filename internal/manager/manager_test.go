package manager

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"cad/internal/core"
	"cad/internal/mts"
	"cad/internal/obs"
)

func testConfig() core.Config {
	return core.Config{
		Window: mts.Windowing{W: 30, S: 3}, K: 3, Tau: 0.4, Theta: 0.2,
		Eta: 3, SigmaFloor: 0.5, MinHistory: 8, RCMode: core.RCSliding, RCHorizon: 5,
	}
}

// column simulates one reading of 8 sensors in two correlated banks;
// sensors 0,1 decouple when broken.
func column(rng *rand.Rand, tick int, broken bool) []float64 {
	col := make([]float64, 8)
	a := math.Sin(2 * math.Pi * float64(tick) / 20)
	b := math.Cos(2 * math.Pi * float64(tick) / 33)
	for i := range col {
		latent := a
		if i >= 4 {
			latent = b
		}
		col[i] = latent*(1+0.2*float64(i%4)) + 0.04*rng.NormFloat64()
	}
	if broken {
		col[0] = rng.NormFloat64()
		col[1] = rng.NormFloat64()
	}
	return col
}

func TestValidateID(t *testing.T) {
	for _, id := range []string{"a", "plant-7", "A.B_c-9", "x" + string(make([]byte, 0))} {
		if err := ValidateID(id); err != nil {
			t.Errorf("ValidateID(%q) = %v", id, err)
		}
	}
	long := ""
	for i := 0; i < 65; i++ {
		long += "x"
	}
	for _, id := range []string{"", long, "has space", "slash/y", ".hidden", "-flag", "ütf8", "a\n"} {
		if err := ValidateID(id); !errors.Is(err, ErrBadID) {
			t.Errorf("ValidateID(%q) = %v, want ErrBadID", id, err)
		}
	}
}

func TestCreateGetDelete(t *testing.T) {
	m := New(Options{Capacity: 4})
	if restored, err := m.Create("a", 8, testConfig()); err != nil || restored {
		t.Fatalf("Create = %v, restored %v", err, restored)
	}
	if _, err := m.Create("a", 8, testConfig()); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Create = %v, want ErrExists", err)
	}
	st, err := m.Status("a")
	if err != nil || st.Sensors != 8 || st.Ticks != 0 {
		t.Errorf("Status = %+v, %v", st, err)
	}
	if _, err := m.Status("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Status(ghost) = %v, want ErrNotFound", err)
	}
	if _, err := m.Status("bad id"); !errors.Is(err, ErrBadID) {
		t.Errorf("Status(bad id) = %v, want ErrBadID", err)
	}
	if err := m.Delete("a"); err != nil {
		t.Fatalf("Delete = %v", err)
	}
	if err := m.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second Delete = %v, want ErrNotFound", err)
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d after delete", m.Len())
	}
}

func TestCapacityWithoutSnapshots(t *testing.T) {
	m := New(Options{Capacity: 2})
	for _, id := range []string{"a", "b"} {
		if _, err := m.Create(id, 8, testConfig()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create("c", 8, testConfig()); !errors.Is(err, ErrCapacity) {
		t.Errorf("Create over capacity = %v, want ErrCapacity", err)
	}
}

func TestIngestValidation(t *testing.T) {
	m := New(Options{})
	if _, err := m.Create("a", 8, testConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest("a", []float64{1, 2}); !errors.Is(err, ErrBadColumn) {
		t.Errorf("short column = %v, want ErrBadColumn", err)
	}
	if _, err := m.Ingest("a", []float64{0, 1, 2, math.NaN(), 4, 5, 6, 7}); !errors.Is(err, ErrBadColumn) {
		t.Errorf("NaN column = %v, want ErrBadColumn", err)
	}
	// A batch with one bad column must leave the stream untouched.
	good := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	if _, err := m.IngestBatch("a", [][]float64{good, {1}}); !errors.Is(err, ErrBadColumn) {
		t.Errorf("mixed batch = %v, want ErrBadColumn", err)
	}
	st, err := m.Status("a")
	if err != nil || st.Ticks != 0 {
		t.Errorf("ticks = %d after rejected batch, want 0 (%v)", st.Ticks, err)
	}
}

// driveStreamer replays cols through a bare core.Streamer and returns the
// completed round reports — the ground truth the manager must reproduce.
func driveStreamer(t *testing.T, cols [][]float64) []core.RoundReport {
	t.Helper()
	return driveStreamerCfg(t, testConfig(), cols)
}

// driveStreamerCfg is driveStreamer with an explicit detector config, used
// by tests that compare durable runs against both batch and incremental
// pipelines.
func driveStreamerCfg(t *testing.T, cfg core.Config, cols [][]float64) []core.RoundReport {
	t.Helper()
	det, err := core.NewDetector(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStreamer(det)
	var reps []core.RoundReport
	for _, col := range cols {
		rep, done, err := s.Push(col)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			reps = append(reps, rep)
		}
	}
	return reps
}

func makeCols(seed int64, ticks int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, ticks)
	for tick := range cols {
		cols[tick] = column(rng, tick, tick >= ticks/2 && tick < ticks*3/4)
	}
	return cols
}

func roundsOf(results []IngestResult) []core.RoundReport {
	var reps []core.RoundReport
	for _, r := range results {
		if r.RoundCompleted {
			reps = append(reps, r.Report)
		}
	}
	return reps
}

func sameReports(t *testing.T, label string, got, want []core.RoundReport) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rounds, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Abnormal != want[i].Abnormal || got[i].Variations != want[i].Variations ||
			got[i].Score != want[i].Score || !reflect.DeepEqual(got[i].Outliers, want[i].Outliers) {
			t.Fatalf("%s: round %d differs:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// TestEvictRestoreRoundEquivalence interrupts a stream with an eviction
// mid-window and checks the restored stream finishes with exactly the
// rounds an uninterrupted streamer produces: snapshots must capture the
// partial window, history, and tracker, not just the detector.
func TestEvictRestoreRoundEquivalence(t *testing.T) {
	cols := makeCols(3, 400)
	want := driveStreamer(t, cols)

	dir := t.TempDir()
	m := New(Options{Capacity: 4, SnapshotDir: dir})
	if _, err := m.Create("a", 8, testConfig()); err != nil {
		t.Fatal(err)
	}
	var got []core.RoundReport
	push := func(from, to int) {
		t.Helper()
		res, err := m.IngestBatch("a", cols[from:to])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, roundsOf(res)...)
	}
	// 100 is not a multiple of the step offset, so the eviction lands
	// mid-window.
	push(0, 100)
	st := m.residentStream("a")
	if done, err := m.evict(st, time.Time{}); err != nil || !done {
		t.Fatalf("evict = %v, %v", done, err)
	}
	if m.Len() != 0 {
		t.Fatalf("stream still resident after evict")
	}
	if _, err := os.Stat(filepath.Join(dir, "a"+snapSuffix)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	// Next ingest transparently restores and the snapshot file is consumed.
	push(100, 250)
	if _, err := os.Stat(filepath.Join(dir, "a"+snapSuffix)); !os.IsNotExist(err) {
		t.Errorf("snapshot file still present after restore: %v", err)
	}
	// A second eviction/restore cycle, then finish the series.
	st = m.residentStream("a")
	if done, err := m.evict(st, time.Time{}); err != nil || !done {
		t.Fatalf("second evict = %v, %v", done, err)
	}
	push(250, len(cols))

	sameReports(t, "evict/restore", got, want)

	// The alarm ring and anomaly list survived both evictions.
	status, err := m.Status("a")
	if err != nil {
		t.Fatal(err)
	}
	wantAlarms := 0
	for _, rep := range want {
		if rep.Abnormal {
			wantAlarms++
		}
	}
	if status.Alarms != wantAlarms {
		t.Errorf("alarms after restore = %d, want %d", status.Alarms, wantAlarms)
	}
	if status.Ticks != len(cols) {
		t.Errorf("ticks after restore = %d, want %d", status.Ticks, len(cols))
	}
}

// TestLRUEvictionOnCapacity fills the registry past capacity and checks the
// least-recently-used stream is the one snapshotted.
func TestLRUEvictionOnCapacity(t *testing.T) {
	now := time.Unix(1000, 0)
	m := New(Options{Capacity: 2, SnapshotDir: t.TempDir(), Now: func() time.Time { return now }})
	if _, err := m.Create("old", 8, testConfig()); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Minute)
	if _, err := m.Create("mid", 8, testConfig()); err != nil {
		t.Fatal(err)
	}
	// Touch "old" so "mid" becomes the LRU stream.
	now = now.Add(time.Minute)
	if _, err := m.Status("old"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Minute)
	if _, err := m.Create("new", 8, testConfig()); err != nil {
		t.Fatal(err)
	}
	if m.residentStream("mid") != nil {
		t.Error("expected mid evicted")
	}
	if m.residentStream("old") == nil || m.residentStream("new") == nil {
		t.Error("expected old and new resident")
	}
	infos := m.List()
	states := map[string]string{}
	for _, info := range infos {
		states[info.ID] = info.State
	}
	want := map[string]string{"old": "active", "new": "active", "mid": "snapshotted"}
	if !reflect.DeepEqual(states, want) {
		t.Errorf("List states = %v, want %v", states, want)
	}
	// Touching the evicted stream restores it (and evicts another).
	if _, err := m.Status("mid"); err != nil {
		t.Errorf("Status on evicted stream = %v", err)
	}
	if m.Registry().Counter("cad_stream_restores_total", "").Value() == 0 {
		t.Error("restore not counted")
	}
}

func TestSweepEvictsIdleStreams(t *testing.T) {
	now := time.Unix(1000, 0)
	m := New(Options{Capacity: 8, SnapshotDir: t.TempDir(), IdleTTL: time.Hour,
		Now: func() time.Time { return now }})
	for _, id := range []string{"a", "b"} {
		if _, err := m.Create(id, 8, testConfig()); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing is idle yet.
	if n := m.Sweep(); n != 0 {
		t.Errorf("early Sweep evicted %d", n)
	}
	now = now.Add(2 * time.Hour)
	// Touch "b" so only "a" is idle.
	if _, err := m.Status("b"); err != nil {
		t.Fatal(err)
	}
	if n := m.Sweep(); n != 1 {
		t.Errorf("Sweep evicted %d, want 1", n)
	}
	if m.residentStream("a") != nil {
		t.Error("idle stream still resident")
	}
	if m.residentStream("b") == nil {
		t.Error("busy stream was evicted")
	}
	// Sweep without TTL or snapshot dir is a no-op.
	if n := New(Options{}).Sweep(); n != 0 {
		t.Errorf("no-op Sweep = %d", n)
	}
}

func TestDeleteRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	m := New(Options{Capacity: 4, SnapshotDir: dir})
	if _, err := m.Create("a", 8, testConfig()); err != nil {
		t.Fatal(err)
	}
	if done, err := m.evict(m.residentStream("a"), time.Time{}); err != nil || !done {
		t.Fatalf("evict = %v, %v", done, err)
	}
	if err := m.Delete("a"); err != nil {
		t.Fatalf("Delete of snapshotted stream = %v", err)
	}
	if _, err := m.Status("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Status after Delete = %v, want ErrNotFound", err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Errorf("snapshot dir not empty after Delete: %v", entries)
	}
}

// TestCreateRestoresSnapshot proves Create on an id with a snapshot resumes
// the old stream instead of building a fresh detector.
func TestCreateRestoresSnapshot(t *testing.T) {
	m := New(Options{Capacity: 4, SnapshotDir: t.TempDir()})
	if _, err := m.Create("a", 8, testConfig()); err != nil {
		t.Fatal(err)
	}
	cols := makeCols(5, 90)
	if _, err := m.IngestBatch("a", cols); err != nil {
		t.Fatal(err)
	}
	if done, err := m.evict(m.residentStream("a"), time.Time{}); err != nil || !done {
		t.Fatalf("evict = %v, %v", done, err)
	}
	restored, err := m.Create("a", 3, core.Config{}) // sensors/cfg ignored on restore
	if err != nil || !restored {
		t.Fatalf("Create after evict = restored %v, %v", restored, err)
	}
	st, err := m.Status("a")
	if err != nil || st.Ticks != 90 || st.Sensors != 8 {
		t.Errorf("restored status = %+v, %v", st, err)
	}
}

// TestConcurrentStreams drives 8 streams from parallel goroutines while a
// janitor keeps evicting and a capacity squeeze forces restores; run under
// -race this is the locking proof. Every stream's rounds must stay
// bit-identical to an uninterrupted single-stream Streamer on the same
// columns.
func TestConcurrentStreams(t *testing.T) {
	const streams = 8
	const ticks = 300
	cols := make([][][]float64, streams)
	want := make([][]core.RoundReport, streams)
	for i := range cols {
		cols[i] = makeCols(int64(100+i), ticks)
		want[i] = driveStreamer(t, cols[i])
	}

	// Capacity below the stream count keeps eviction/restore churning in the
	// middle of the parallel ingest.
	m := New(Options{Capacity: 5, SnapshotDir: t.TempDir(), IdleTTL: time.Nanosecond,
		Registry: obs.NewRegistry()})
	for i := 0; i < streams; i++ {
		if _, err := m.Create(fmt.Sprintf("s%d", i), 8, testConfig()); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var janitor sync.WaitGroup
	janitor.Add(1)
	go func() {
		defer janitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Sweep()
			}
		}
	}()

	var wg sync.WaitGroup
	got := make([][]core.RoundReport, streams)
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", i)
			for _, col := range cols[i] {
				res, err := m.Ingest(id, col)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", id, err)
					return
				}
				if res.RoundCompleted {
					got[i] = append(got[i], res.Report)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	janitor.Wait()

	for i := 0; i < streams; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		sameReports(t, fmt.Sprintf("stream %d", i), got[i], want[i])
	}
	// The churn must have exercised the eviction path.
	if m.Registry().Counter("cad_stream_evictions_total", "").Value() == 0 {
		t.Error("no evictions during concurrent churn (janitor ineffective)")
	}
	if m.Registry().Counter("cad_stream_snapshot_errors_total", "").Value() != 0 {
		t.Error("snapshot writes failed during churn")
	}
}
